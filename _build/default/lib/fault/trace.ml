type dist =
  | Exponential of { rate : float }
  | Weibull of { shape : float; scale : float }
  | Lognormal of { mu : float; sigma : float }

let gamma_fn = Numerics.Specfun.gamma

let dist_mean = function
  | Exponential { rate } -> 1.0 /. rate
  | Weibull { shape; scale } -> scale *. gamma_fn (1.0 +. (1.0 /. shape))
  | Lognormal { mu; sigma } -> exp (mu +. (0.5 *. sigma *. sigma))

let dist_survival dist x =
  if x <= 0.0 then 1.0
  else
    match dist with
    | Exponential { rate } -> exp (-.rate *. x)
    | Weibull { shape; scale } -> exp (-.((x /. scale) ** shape))
    | Lognormal { mu; sigma } ->
        Numerics.Specfun.normal_sf ~mu ~sigma (log x)

let weibull_with_mtbf ~shape ~mtbf =
  if shape <= 0.0 || mtbf <= 0.0 then
    invalid_arg "Trace.weibull_with_mtbf: arguments must be positive";
  let scale = mtbf /. gamma_fn (1.0 +. (1.0 /. shape)) in
  Weibull { shape; scale }

let lognormal_with_mtbf ~sigma ~mtbf =
  if sigma < 0.0 || mtbf <= 0.0 then
    invalid_arg "Trace.lognormal_with_mtbf: sigma >= 0 and mtbf > 0 required";
  let mu = log mtbf -. (0.5 *. sigma *. sigma) in
  Lognormal { mu; sigma }

type source = Generator of Numerics.Rng.t * dist | Fixed

type t = {
  mutable iats : float array;  (* memoised prefix *)
  mutable len : int;  (* number of valid entries in [iats] *)
  source : source;
}

let create ~dist ~seed =
  {
    iats = Array.make 16 0.0;
    len = 0;
    source = Generator (Numerics.Rng.create ~seed, dist);
  }

let of_iats iats =
  Array.iter
    (fun x ->
      if not (Float.is_finite x && x > 0.0) then
        invalid_arg "Trace.of_iats: IATs must be positive and finite")
    iats;
  { iats = Array.copy iats; len = Array.length iats; source = Fixed }

let draw rng = function
  | Exponential { rate } -> Numerics.Rng.exponential rng ~rate
  | Weibull { shape; scale } -> Numerics.Rng.weibull rng ~shape ~scale
  | Lognormal { mu; sigma } -> Numerics.Rng.lognormal rng ~mu ~sigma

let ensure t j =
  if j >= t.len then begin
    match t.source with
    | Fixed ->
        invalid_arg
          (Printf.sprintf "Trace.iat: index %d beyond fixed trace of length %d"
             j t.len)
    | Generator (rng, dist) ->
        if j >= Array.length t.iats then begin
          let cap = max (j + 1) (2 * Array.length t.iats) in
          let bigger = Array.make cap 0.0 in
          Array.blit t.iats 0 bigger 0 t.len;
          t.iats <- bigger
        end;
        for i = t.len to j do
          t.iats.(i) <- draw rng dist
        done;
        t.len <- j + 1
  end

let iat t j =
  if j < 0 then invalid_arg "Trace.iat: negative index";
  ensure t j;
  t.iats.(j)

let batch ~dist ~seed ~n =
  if n < 0 then invalid_arg "Trace.batch: n < 0";
  let master = Numerics.Rng.create ~seed in
  Array.init n (fun _ ->
      let sub = Numerics.Rng.split master in
      {
        iats = Array.make 16 0.0;
        len = 0;
        source = Generator (sub, dist);
      })

let rec prefetch_from t ~until ~index ~clock =
  if clock <= until then
    prefetch_from t ~until ~index:(index + 1) ~clock:(clock +. iat t (index + 1))

let iats_until t ~until =
  let rec count i acc =
    let stop =
      match t.source with
      | Fixed -> i >= t.len
      | Generator _ -> false
    in
    if stop then i
    else begin
      let acc = acc +. iat t i in
      if acc > until then i + 1 else count (i + 1) acc
    end
  in
  let n = count 0 0.0 in
  Array.init n (iat t)

let prefetch t ~until =
  match t.source with
  | Fixed -> ()  (* fully materialised by construction *)
  | Generator _ -> prefetch_from t ~until ~index:0 ~clock:(iat t 0)

type cursor = {
  trace : t;
  mutable index : int;  (* next failure not yet consumed *)
  mutable clock : float;  (* exposed time of failure [index] *)
}

let cursor trace = { trace; index = 0; clock = iat trace 0 }

let next_failure_exposed cur = cur.clock

let consume cur =
  cur.index <- cur.index + 1;
  cur.clock <- cur.clock +. iat cur.trace cur.index

let failures_seen cur = cur.index
