let save ~path ~horizon traces =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     Array.iter
       (fun trace ->
         let iats = Trace.iats_until trace ~until:horizon in
         Array.iteri
           (fun i x ->
             if i > 0 then output_char oc ' ';
             output_string oc (Printf.sprintf "%.17g" x))
           iats;
         output_char oc '\n')
       traces
   with e ->
     close_out oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let parse_line ~lineno line =
  let fields =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  in
  if fields = [] then
    failwith (Printf.sprintf "Trace_io.load: empty trace on line %d" lineno);
  let iats =
    List.map
      (fun field ->
        match float_of_string_opt field with
        | Some x when Float.is_finite x && x > 0.0 -> x
        | Some _ ->
            failwith
              (Printf.sprintf "Trace_io.load: non-positive IAT on line %d"
                 lineno)
        | None ->
            failwith
              (Printf.sprintf "Trace_io.load: malformed number %S on line %d"
                 field lineno))
      fields
  in
  Trace.of_iats (Array.of_list iats)

let load ~path =
  let ic = open_in path in
  let traces = ref [] in
  let lineno = ref 0 in
  (try
     (try
        while true do
          let line = input_line ic in
          incr lineno;
          traces := parse_line ~lineno:!lineno line :: !traces
        done
      with End_of_file -> ())
   with e ->
     close_in ic;
     raise e);
  close_in ic;
  Array.of_list (List.rev !traces)
