lib/fault/params.ml: Float Format
