lib/fault/trace_io.mli: Trace
