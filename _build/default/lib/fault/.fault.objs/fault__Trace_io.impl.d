lib/fault/trace_io.ml: Array Float List Printf String Sys Trace
