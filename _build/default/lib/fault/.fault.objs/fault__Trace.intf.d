lib/fault/trace.mli:
