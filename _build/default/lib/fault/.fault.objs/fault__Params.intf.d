lib/fault/params.mli: Format
