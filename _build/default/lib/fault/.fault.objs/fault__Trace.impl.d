lib/fault/trace.ml: Array Float Numerics Printf
