(** Persistence of failure traces.

    A saved trace set makes a whole campaign replayable without the
    generator: traces are stored as text, one trace per line, IATs
    space-separated with full round-trip precision. Loading yields fixed
    traces that replay identically on any platform. *)

val save : path:string -> horizon:float -> Trace.t array -> unit
(** [save ~path ~horizon traces] materialises each trace far enough to
    cover any reservation of length [<= horizon] and writes them. The
    write is atomic (temporary file + rename). *)

val load : path:string -> Trace.t array
(** Re-read a trace set as fixed traces. Raises [Failure] with a
    message naming the line on malformed input (non-numeric field,
    non-positive IAT, empty line). *)
