type series = { label : string; points : (float * float) list }

type config = {
  width : int;
  height : int;
  x_label : string;
  y_label : string;
  y_min : float option;
  y_max : float option;
}

let default_config =
  {
    width = 72;
    height = 20;
    x_label = "x";
    y_label = "y";
    y_min = None;
    y_max = None;
  }

let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let finite (x, y) = Float.is_finite x && Float.is_finite y

let render ?(config = default_config) ~title series =
  let { width; height; x_label; y_label; y_min; y_max } = config in
  if width < 8 || height < 4 then invalid_arg "Ascii_plot: plot area too small";
  let all_points = List.concat_map (fun s -> List.filter finite s.points) series in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  (match all_points with
  | [] -> Buffer.add_string buf "  (no data)\n"
  | _ ->
      let xs = List.map fst all_points and ys = List.map snd all_points in
      let fold f = List.fold_left f in
      let x_lo = fold Float.min infinity xs and x_hi = fold Float.max neg_infinity xs in
      let y_lo =
        match y_min with Some v -> v | None -> fold Float.min infinity ys
      in
      let y_hi =
        match y_max with Some v -> v | None -> fold Float.max neg_infinity ys
      in
      let x_span = if x_hi > x_lo then x_hi -. x_lo else 1.0 in
      let y_span = if y_hi > y_lo then y_hi -. y_lo else 1.0 in
      let grid = Array.make_matrix height width ' ' in
      List.iteri
        (fun si s ->
          let glyph = glyphs.(si mod Array.length glyphs) in
          List.iter
            (fun (x, y) ->
              if finite (x, y) then begin
                let cx =
                  int_of_float
                    (Float.round ((x -. x_lo) /. x_span *. float_of_int (width - 1)))
                in
                let cy =
                  int_of_float
                    (Float.round ((y -. y_lo) /. y_span *. float_of_int (height - 1)))
                in
                let cx = max 0 (min (width - 1) cx) in
                let cy = max 0 (min (height - 1) cy) in
                let row = height - 1 - cy in
                (* Later series overwrite earlier ones only on blanks, so
                   overlapping curves stay distinguishable. *)
                if grid.(row).(cx) = ' ' then grid.(row).(cx) <- glyph
              end)
            s.points)
        series;
      let y_tick row =
        let frac = float_of_int (height - 1 - row) /. float_of_int (height - 1) in
        y_lo +. (frac *. y_span)
      in
      for row = 0 to height - 1 do
        let tick =
          if row = 0 || row = height - 1 || row = (height - 1) / 2 then
            Printf.sprintf "%8.3g |" (y_tick row)
          else Printf.sprintf "%8s |" ""
        in
        Buffer.add_string buf tick;
        Buffer.add_string buf (String.init width (fun c -> grid.(row).(c)));
        Buffer.add_char buf '\n'
      done;
      Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
      Buffer.add_string buf
        (Printf.sprintf "%8s  %-8.4g%*s%8.4g\n" "" x_lo (width - 16) "" x_hi);
      Buffer.add_string buf
        (Printf.sprintf "%8s  x: %s   y: %s\n" "" x_label y_label));
  List.iteri
    (fun si s ->
      Buffer.add_string buf
        (Printf.sprintf "  %c %s\n" glyphs.(si mod Array.length glyphs) s.label))
    series;
  Buffer.contents buf

let print ?config ~title series = print_string (render ?config ~title series)
