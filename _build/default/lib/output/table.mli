(** Aligned plain-text tables for terminal reports. *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** Header row; raises [Invalid_argument] on an empty column list. *)

val add_row : t -> string list -> unit
(** Row cells, one per column (padded with empty cells if shorter;
    raises [Invalid_argument] if longer). *)

val add_float_row : ?fmt:(float -> string) -> t -> string -> float list -> t
(** Convenience: first cell is a label, remaining cells are formatted
    floats (default [%.4g]). Returns [t] for chaining. *)

val add_separator : t -> unit
(** Horizontal rule between row groups. *)

val render : t -> string
(** Render with columns padded to their widest cell, two-space gutters,
    and a rule under the header. *)

val print : t -> unit
(** [render] to stdout followed by a newline flush. *)
