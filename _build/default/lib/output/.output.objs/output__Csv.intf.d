lib/output/csv.mli:
