lib/output/csv.ml: Buffer List Printf Stdlib String Sys
