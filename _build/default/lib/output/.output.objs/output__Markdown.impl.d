lib/output/markdown.ml: Buffer List Printf String Sys
