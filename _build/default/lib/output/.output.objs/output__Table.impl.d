lib/output/table.ml: Char List Printf String
