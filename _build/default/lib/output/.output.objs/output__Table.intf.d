lib/output/table.mli:
