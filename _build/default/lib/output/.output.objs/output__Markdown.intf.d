lib/output/markdown.mli:
