(** Multi-series line plots rendered as text — the terminal rendition of
    the paper's figures. *)

type series = { label : string; points : (float * float) list }

type config = {
  width : int;  (** plot area width in characters (default 72) *)
  height : int;  (** plot area height in rows (default 20) *)
  x_label : string;
  y_label : string;
  y_min : float option;  (** fixed lower bound; [None] = data-driven *)
  y_max : float option;
}

val default_config : config

val render : ?config:config -> title:string -> series list -> string
(** Scatter the points of each series onto a character grid (each series
    uses its own glyph), with axes, tick labels, and a legend. Series
    with no finite point are listed in the legend but not drawn.
    Points outside the configured y-range are clamped to the border. *)

val print : ?config:config -> title:string -> series list -> unit
