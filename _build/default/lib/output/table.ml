type align = Left | Right

type row = Cells of string list | Separator

type t = {
  columns : (string * align) list;
  mutable rows : row list;  (* reversed *)
}

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { columns; rows = [] }

let arity t = List.length t.columns

let add_row t cells =
  let n = List.length cells and width = arity t in
  if n > width then invalid_arg "Table.add_row: more cells than columns";
  let padded =
    if n = width then cells else cells @ List.init (width - n) (fun _ -> "")
  in
  t.rows <- Cells padded :: t.rows

let default_fmt x = Printf.sprintf "%.4g" x

let add_float_row ?(fmt = default_fmt) t label xs =
  add_row t (label :: List.map fmt xs);
  t

(* UTF-8-aware display width: counts scalar values, which is enough for
   the Latin/Greek/box characters these tables use. *)
let display_width s =
  let n = ref 0 in
  String.iter (fun ch -> if Char.code ch land 0xC0 <> 0x80 then incr n) s;
  !n

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let headers = List.map fst t.columns in
  let rows = List.rev t.rows in
  let cell_rows =
    headers :: List.filter_map (function Cells c -> Some c | Separator -> None) rows
  in
  let widths =
    List.mapi
      (fun i _ ->
        List.fold_left
          (fun acc cells -> max acc (display_width (List.nth cells i)))
          0 cell_rows)
      t.columns
  in
  let pad align width s =
    let gap = width - display_width s in
    if gap <= 0 then s
    else begin
      let fill = String.make gap ' ' in
      match align with Left -> s ^ fill | Right -> fill ^ s
    end
  in
  let render_cells cells =
    String.concat "  "
      (List.map2
         (fun (s, (_, align)) width -> pad align width s)
         (List.combine cells t.columns)
         widths)
  in
  let rule =
    String.concat "--"
      (List.map (fun w -> String.make w '-') widths)
  in
  let body =
    List.map
      (function Cells cells -> render_cells cells | Separator -> rule)
      rows
  in
  String.concat "\n" (render_cells headers :: rule :: body)

let print t =
  print_string (render t);
  print_newline ()
