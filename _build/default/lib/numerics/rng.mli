(** Deterministic pseudo-random number generation.

    The generator is xoshiro256++, seeded through splitmix64, so that a
    64-bit seed yields a reproducible stream on every platform. All
    simulation randomness in this project flows through this module: the
    standard-library generator is never used, which makes every experiment
    replayable from its seed. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] builds a generator whose stream is a pure function of
    [seed]. Two generators with the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator from [t],
    advancing [t]. Used to give each trace / worker its own stream without
    correlation. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy and the original then
    produce identical streams, without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output of the generator. *)

val float : t -> float
(** [float t] draws uniformly in [\[0, 1)], using the top 53 bits. *)

val float_range : t -> lo:float -> hi:float -> float
(** Uniform draw in [\[lo, hi)]. Requires [lo <= hi]. *)

val int : t -> bound:int -> int
(** [int t ~bound] draws uniformly in [\[0, bound)]. Requires [bound > 0]. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] draws from the Exponential distribution of rate
    [rate] (mean [1 /. rate]) by inversion. Requires [rate > 0]. *)

val weibull : t -> shape:float -> scale:float -> float
(** Weibull draw by inversion; [shape] is the usual [k], [scale] is [λ].
    [shape = 1] degenerates to [exponential ~rate:(1 /. scale)]. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal draw: [exp (mu + sigma * z)] with [z] standard normal. *)

val normal : t -> mu:float -> sigma:float -> float
(** Gaussian draw by the Box–Muller transform (no state caching, each call
    performs a fresh transform). *)

val gamma_int : t -> shape:int -> scale:float -> float
(** Erlang (integer-shape Gamma) draw as a sum of exponentials. Requires
    [shape >= 1]. Used for stochastic checkpoint durations. *)
