(** Derivative-free maximisation by the Nelder–Mead simplex method.

    Used to optimise checkpoint positions when the objective (expected
    saved work) is smooth but has no tractable gradient. *)

type result = {
  x : float array;  (** best point found *)
  value : float;  (** objective at [x] *)
  iterations : int;
  converged : bool;  (** simplex diameter fell below [tol] *)
}

val maximize :
  ?tol:float ->
  ?max_iter:int ->
  ?step:float ->
  f:(float array -> float) ->
  float array ->
  result
(** [maximize ~f x0] runs Nelder–Mead from an initial simplex built
    around [x0] (each vertex offsets one coordinate by [step], default
    [0.05 * (1 + |x0_i|)]). Standard coefficients (reflection 1,
    expansion 2, contraction 1/2, shrink 1/2). [f] may return
    [neg_infinity] to reject infeasible points. The input array is not
    modified. Raises [Invalid_argument] on an empty [x0]. *)

val maximize_bounded :
  ?tol:float ->
  ?max_iter:int ->
  f:(float array -> float) ->
  lo:float array ->
  hi:float array ->
  float array ->
  result
(** Box-constrained variant: candidate points are clamped into
    [\[lo, hi\]] componentwise before evaluation, so the returned [x]
    always satisfies the bounds. *)
