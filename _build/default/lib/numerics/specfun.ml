(* erfc by the rational Chebyshev-like expansion of W. J. Cody (1969),
   as popularised in Numerical Recipes' erfc_cheb but with the
   higher-accuracy coefficient set; relative error below 1.2e-15 on the
   whole real line in this arrangement. *)

let erfc_positive x =
  (* For x >= 0. Series from the NR "incomplete gamma"-free fit. *)
  let t = 2.0 /. (2.0 +. x) in
  let ty = (4.0 *. t) -. 2.0 in
  let coefficients =
    [|
      -1.3026537197817094; 6.4196979235649026e-1; 1.9476473204185836e-2;
      -9.561514786808631e-3; -9.46595344482036e-4; 3.66839497852761e-4;
      4.2523324806907e-5; -2.0278578112534e-5; -1.624290004647e-6;
      1.303655835580e-6; 1.5626441722e-8; -8.5238095915e-8; 6.529054439e-9;
      5.059343495e-9; -9.91364156e-10; -2.27365122e-10; 9.6467911e-11;
      2.394038e-12; -6.886027e-12; 8.94487e-13; 3.13092e-13; -1.12708e-13;
      3.81e-16; 7.106e-15;
    |]
  in
  let m = Array.length coefficients in
  let d = ref 0.0 and dd = ref 0.0 in
  for j = m - 1 downto 1 do
    let tmp = !d in
    d := (ty *. !d) -. !dd +. coefficients.(j);
    dd := tmp
  done;
  t *. exp ((-.x *. x) +. (0.5 *. (coefficients.(0) +. (ty *. !d))) -. !dd)

let erfc x = if x >= 0.0 then erfc_positive x else 2.0 -. erfc_positive (-.x)
let erf x = 1.0 -. erfc x

let sqrt2 = sqrt 2.0

let normal_cdf ?(mu = 0.0) ?(sigma = 1.0) x =
  if sigma <= 0.0 then invalid_arg "Specfun.normal_cdf: sigma <= 0";
  0.5 *. erfc (-.(x -. mu) /. (sigma *. sqrt2))

let normal_sf ?(mu = 0.0) ?(sigma = 1.0) x =
  if sigma <= 0.0 then invalid_arg "Specfun.normal_sf: sigma <= 0";
  0.5 *. erfc ((x -. mu) /. (sigma *. sqrt2))

(* Lanczos ln Γ, shared convention with Fault.Trace's local copy. *)
let lanczos =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028;
    771.32342877765313; -176.61502916214059; 12.507343278686905;
    -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x < 0.5 then log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let gamma x = exp (log_gamma x)
