(* xoshiro256++ with splitmix64 seeding. Reference: Blackman & Vigna,
   "Scrambled linear pseudorandom number generators", 2019. All arithmetic
   is on boxed int64 for portability; the generator is only used to seed
   simulations, so the allocation cost is irrelevant next to the
   simulation work it drives. *)

type t = {
  mutable s0 : int64;
  mutable s1 : int64;
  mutable s2 : int64;
  mutable s3 : int64;
}

let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let state = ref seed in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  (* A xoshiro state of all zeros is absorbing; splitmix64 cannot produce
     four zero outputs in a row, so no further check is needed. *)
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = create ~seed:(bits64 t)

let float t =
  (* Top 53 bits give a uniform double in [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. 0x1p-53

let float_range t ~lo ~hi =
  assert (lo <= hi);
  lo +. ((hi -. lo) *. float t)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let bound64 = Int64.of_int bound in
  let rec draw () =
    let raw = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem raw bound64 in
    if Int64.sub raw v > Int64.sub Int64.max_int (Int64.sub bound64 1L) then
      draw ()
    else Int64.to_int v
  in
  draw ()

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  (* 1 - u is in (0, 1], so log is finite. *)
  -.log1p (-.float t) /. rate

let weibull t ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg "Rng.weibull: shape and scale must be positive";
  scale *. ((-.log1p (-.float t)) ** (1.0 /. shape))

let normal t ~mu ~sigma =
  let u1 = 1.0 -. float t in
  let u2 = float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let gamma_int t ~shape ~scale =
  if shape < 1 then invalid_arg "Rng.gamma_int: shape must be >= 1";
  let acc = ref 0.0 in
  for _ = 1 to shape do
    acc := !acc +. exponential t ~rate:1.0
  done;
  scale *. !acc
