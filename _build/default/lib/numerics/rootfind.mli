(** Scalar root finding on [float -> float] functions. *)

exception No_bracket of string
(** Raised when a bracketing interval with a sign change cannot be found. *)

val bisect :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** [bisect ~f a b] returns a zero of [f] in [\[a, b\]]. Requires
    [f a] and [f b] to have opposite (or zero) signs; raises [No_bracket]
    otherwise. [tol] is the absolute width of the final interval
    (default [1e-12] scaled by interval magnitude). *)

val brent :
  ?tol:float -> ?max_iter:int -> f:(float -> float) -> float -> float -> float
(** Brent's method: inverse quadratic interpolation with bisection
    fallback. Same contract as {!bisect}, converges much faster on smooth
    functions. *)

val expand_bracket :
  ?grow:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  float ->
  float ->
  float * float
(** [expand_bracket ~f lo hi] grows the upper bound geometrically
    (factor [grow], default 1.6) until [f lo] and [f hi] differ in sign,
    keeping [lo] fixed. Raises [No_bracket] on failure. *)

val first_crossing :
  f:(float -> float) -> lo:float -> hi:float -> steps:int -> (float * float) option
(** [first_crossing ~f ~lo ~hi ~steps] scans [steps] equal subintervals of
    [\[lo, hi\]] left to right and returns the first one on which [f]
    changes sign, or [None]. Useful when [f] has several zeros and the
    smallest one is wanted. *)

val newton :
  ?tol:float ->
  ?max_iter:int ->
  f:(float -> float) ->
  df:(float -> float) ->
  float ->
  float
(** Newton iteration with step damping; falls back to raising
    [No_bracket] if it fails to converge in [max_iter] steps. *)
