(** Special functions needed by the non-exponential failure models. *)

val erf : float -> float
(** Error function; odd, [erf 0 = 0], [erf ∞ = 1].
    Absolute accuracy better than 1e-12. *)

val erfc : float -> float
(** Complementary error function [1 - erf x], computed directly so the
    tail does not lose precision. *)

val normal_cdf : ?mu:float -> ?sigma:float -> float -> float
(** Gaussian cumulative distribution function (default standard normal).
    Requires [sigma > 0]. *)

val normal_sf : ?mu:float -> ?sigma:float -> float -> float
(** Gaussian survival function [1 - cdf], accurate in the upper tail. *)

val log_gamma : float -> float
(** Natural log of the Gamma function (Lanczos, g = 7), for positive
    arguments; uses the reflection formula below 0.5. *)

val gamma : float -> float
(** [exp (log_gamma x)]. *)
