let trapezoid ~f ~lo ~hi ~n =
  if n < 1 then invalid_arg "Integrate.trapezoid: n < 1";
  let h = (hi -. lo) /. float_of_int n in
  let acc = ref (0.5 *. (f lo +. f hi)) in
  for i = 1 to n - 1 do
    acc := !acc +. f (lo +. (float_of_int i *. h))
  done;
  !acc *. h

let simpson ~f ~lo ~hi ~n =
  if n < 1 then invalid_arg "Integrate.simpson: n < 1";
  let n = if n mod 2 = 0 then n else n + 1 in
  let h = (hi -. lo) /. float_of_int n in
  let acc = ref (f lo +. f hi) in
  for i = 1 to n - 1 do
    let x = lo +. (float_of_int i *. h) in
    let w = if i mod 2 = 1 then 4.0 else 2.0 in
    acc := !acc +. (w *. f x)
  done;
  !acc *. h /. 3.0

let adaptive_simpson ?(tol = 1e-10) ?(max_depth = 50) ~f lo hi =
  let simpson_3 a fa b fb =
    let m = 0.5 *. (a +. b) in
    let fm = f m in
    (m, fm, (b -. a) /. 6.0 *. (fa +. (4.0 *. fm) +. fb))
  in
  (* Classic recursion with the 1/15 Richardson correction. *)
  let rec go a fa b fb whole m fm eps depth =
    let lm, flm, left = simpson_3 a fa m fm in
    let rm, frm, right = simpson_3 m fm b fb in
    let delta = left +. right -. whole in
    if depth >= max_depth || abs_float delta <= 15.0 *. eps then
      left +. right +. (delta /. 15.0)
    else
      go a fa m fm left lm flm (eps /. 2.0) (depth + 1)
      +. go m fm b fb right rm frm (eps /. 2.0) (depth + 1)
  in
  if lo = hi then 0.0
  else begin
    let fa = f lo and fb = f hi in
    let m, fm, whole = simpson_3 lo fa hi fb in
    go lo fa hi fb whole m fm tol 0
  end

let trapezoid_samples ~h ys =
  let n = Array.length ys in
  if n = 0 then invalid_arg "Integrate.trapezoid_samples: empty array";
  if n = 1 then 0.0
  else begin
    let acc = ref (0.5 *. (ys.(0) +. ys.(n - 1))) in
    for i = 1 to n - 2 do
      acc := !acc +. ys.(i)
    done;
    !acc *. h
  end
