type result = {
  x : float array;
  value : float;
  iterations : int;
  converged : bool;
}

(* Internally we minimise -f with the textbook Nelder-Mead moves. *)
let maximize ?(tol = 1e-10) ?(max_iter = 2000) ?step ~f x0 =
  let n = Array.length x0 in
  if n = 0 then invalid_arg "Neldermead.maximize: empty start point";
  let neg_f x = -.f x in
  let default_step i = 0.05 *. (1.0 +. abs_float x0.(i)) in
  let step i = match step with Some s -> s | None -> default_step i in
  (* simplex: n+1 vertices with their values *)
  let vertices =
    Array.init (n + 1) (fun v ->
        let x = Array.copy x0 in
        if v > 0 then x.(v - 1) <- x.(v - 1) +. step (v - 1);
        x)
  in
  let values = Array.map neg_f vertices in
  let order () =
    let idx = Array.init (n + 1) (fun i -> i) in
    Array.sort (fun a b -> compare values.(a) values.(b)) idx;
    idx
  in
  let centroid_except worst =
    let c = Array.make n 0.0 in
    Array.iteri
      (fun v x ->
        if v <> worst then
          Array.iteri (fun i xi -> c.(i) <- c.(i) +. (xi /. float_of_int n)) x)
      vertices;
    c
  in
  let blend a b alpha =
    Array.init n (fun i -> a.(i) +. (alpha *. (b.(i) -. a.(i))))
  in
  let iterations = ref 0 in
  let converged = ref false in
  while (not !converged) && !iterations < max_iter do
    incr iterations;
    let idx = order () in
    let best = idx.(0) and worst = idx.(n) in
    let second_worst = idx.(n - 1) in
    (* convergence: simplex value spread and diameter *)
    let spread = values.(worst) -. values.(best) in
    let diameter =
      Array.fold_left
        (fun acc x ->
          let d = ref 0.0 in
          Array.iteri
            (fun i xi -> d := Float.max !d (abs_float (xi -. vertices.(best).(i))))
            x;
          Float.max acc !d)
        0.0 vertices
    in
    if spread <= tol *. (1.0 +. abs_float values.(best)) && diameter <= sqrt tol
    then converged := true
    else begin
      let c = centroid_except worst in
      let reflected = blend c vertices.(worst) (-1.0) in
      let fr = neg_f reflected in
      if fr < values.(best) then begin
        (* try to expand *)
        let expanded = blend c vertices.(worst) (-2.0) in
        let fe = neg_f expanded in
        if fe < fr then begin
          vertices.(worst) <- expanded;
          values.(worst) <- fe
        end
        else begin
          vertices.(worst) <- reflected;
          values.(worst) <- fr
        end
      end
      else if fr < values.(second_worst) then begin
        vertices.(worst) <- reflected;
        values.(worst) <- fr
      end
      else begin
        (* contraction (outside if the reflection improved on the worst) *)
        let towards = if fr < values.(worst) then -0.5 else 0.5 in
        let contracted = blend c vertices.(worst) towards in
        let fc = neg_f contracted in
        let reference = Float.min fr values.(worst) in
        if fc < reference then begin
          vertices.(worst) <- contracted;
          values.(worst) <- fc
        end
        else begin
          (* shrink everything towards the best vertex *)
          let best_x = Array.copy vertices.(best) in
          Array.iteri
            (fun v x ->
              if v <> best then begin
                let shrunk =
                  Array.init n (fun i -> best_x.(i) +. (0.5 *. (x.(i) -. best_x.(i))))
                in
                vertices.(v) <- shrunk;
                values.(v) <- neg_f shrunk
              end)
            vertices
        end
      end
    end
  done;
  let idx = order () in
  let best = idx.(0) in
  {
    x = Array.copy vertices.(best);
    value = -.values.(best);
    iterations = !iterations;
    converged = !converged;
  }

let maximize_bounded ?tol ?max_iter ~f ~lo ~hi x0 =
  let n = Array.length x0 in
  if Array.length lo <> n || Array.length hi <> n then
    invalid_arg "Neldermead.maximize_bounded: dimension mismatch";
  Array.iteri
    (fun i l -> if l > hi.(i) then invalid_arg "Neldermead: lo > hi")
    lo;
  let clamp x =
    Array.mapi (fun i xi -> Float.max lo.(i) (Float.min hi.(i) xi)) x
  in
  let f_clamped x = f (clamp x) in
  let r = maximize ?tol ?max_iter ~f:f_clamped (clamp x0) in
  { r with x = clamp r.x; value = f (clamp r.x) }
