exception No_bracket of string

let same_sign a b = (a >= 0.0 && b >= 0.0) || (a <= 0.0 && b <= 0.0)

let bisect ?(tol = 1e-12) ?(max_iter = 200) ~f a b =
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else if same_sign fa fb then
    raise (No_bracket (Printf.sprintf "bisect: no sign change on [%g, %g]" a b))
  else begin
    let lo = ref a and hi = ref b and flo = ref fa in
    let iter = ref 0 in
    while !hi -. !lo > tol *. (1.0 +. abs_float !lo) && !iter < max_iter do
      incr iter;
      let mid = 0.5 *. (!lo +. !hi) in
      let fmid = f mid in
      if fmid = 0.0 then begin
        lo := mid;
        hi := mid
      end
      else if same_sign !flo fmid then begin
        lo := mid;
        flo := fmid
      end
      else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end

let brent ?(tol = 1e-13) ?(max_iter = 200) ~f a b =
  (* Standard Brent: see Brent, "Algorithms for Minimization without
     Derivatives", ch. 4. Variables follow the usual naming: b is the
     current best iterate, a the previous one, c the contrapoint. *)
  let fa = f a and fb = f b in
  if fa = 0.0 then a
  else if fb = 0.0 then b
  else if same_sign fa fb then
    raise (No_bracket (Printf.sprintf "brent: no sign change on [%g, %g]" a b))
  else begin
    let a = ref a and b = ref b and fa = ref fa and fb = ref fb in
    if abs_float !fa < abs_float !fb then begin
      let t = !a in
      a := !b;
      b := t;
      let t = !fa in
      fa := !fb;
      fb := t
    end;
    let c = ref !a and fc = ref !fa in
    let d = ref (!b -. !a) and e = ref (!b -. !a) in
    let result = ref nan in
    let iter = ref 0 in
    (try
       while !iter < max_iter do
         incr iter;
         if !fb = 0.0 then begin
           result := !b;
           raise Exit
         end;
         if same_sign !fb !fc then begin
           c := !a;
           fc := !fa;
           d := !b -. !a;
           e := !d
         end;
         if abs_float !fc < abs_float !fb then begin
           a := !b;
           b := !c;
           c := !a;
           fa := !fb;
           fb := !fc;
           fc := !fa
         end;
         let tol1 = (2.0 *. epsilon_float *. abs_float !b) +. (0.5 *. tol) in
         let xm = 0.5 *. (!c -. !b) in
         if abs_float xm <= tol1 then begin
           result := !b;
           raise Exit
         end;
         if abs_float !e >= tol1 && abs_float !fa > abs_float !fb then begin
           (* Attempt inverse quadratic / secant interpolation. *)
           let s = !fb /. !fa in
           let p, q =
             if !a = !c then
               let p = 2.0 *. xm *. s in
               let q = 1.0 -. s in
               (p, q)
             else begin
               let q = !fa /. !fc and r = !fb /. !fc in
               let p =
                 s *. ((2.0 *. xm *. q *. (q -. r)) -. ((!b -. !a) *. (r -. 1.0)))
               in
               let q = (q -. 1.0) *. (r -. 1.0) *. (s -. 1.0) in
               (p, q)
             end
           in
           let p, q = if p > 0.0 then (p, -.q) else (-.p, q) in
           if
             2.0 *. p < 3.0 *. xm *. q -. abs_float (tol1 *. q)
             && p < abs_float (0.5 *. !e *. q)
           then begin
             e := !d;
             d := p /. q
           end
           else begin
             d := xm;
             e := !d
           end
         end
         else begin
           d := xm;
           e := !d
         end;
         a := !b;
         fa := !fb;
         if abs_float !d > tol1 then b := !b +. !d
         else b := !b +. (if xm > 0.0 then tol1 else -.tol1);
         fb := f !b
       done;
       result := !b
     with Exit -> ());
    !result
  end

let expand_bracket ?(grow = 1.6) ?(max_iter = 100) ~f lo hi =
  if hi <= lo then invalid_arg "Rootfind.expand_bracket: hi <= lo";
  let flo = f lo in
  let hi = ref hi in
  let iter = ref 0 in
  let rec loop () =
    let fhi = f !hi in
    if not (same_sign flo fhi) then (lo, !hi)
    else if !iter >= max_iter then
      raise
        (No_bracket
           (Printf.sprintf "expand_bracket: no sign change up to %g" !hi))
    else begin
      incr iter;
      hi := lo +. ((!hi -. lo) *. grow);
      loop ()
    end
  in
  loop ()

let first_crossing ~f ~lo ~hi ~steps =
  if steps <= 0 then invalid_arg "Rootfind.first_crossing: steps <= 0";
  let h = (hi -. lo) /. float_of_int steps in
  let rec scan i x fx =
    if i > steps then None
    else begin
      let x' = lo +. (float_of_int i *. h) in
      let fx' = f x' in
      if not (same_sign fx fx') || fx' = 0.0 then Some (x, x')
      else scan (i + 1) x' fx'
    end
  in
  scan 1 lo (f lo)

let newton ?(tol = 1e-12) ?(max_iter = 100) ~f ~df x0 =
  let rec loop x i =
    if i >= max_iter then raise (No_bracket "newton: failed to converge")
    else begin
      let fx = f x in
      let dfx = df x in
      if dfx = 0.0 then raise (No_bracket "newton: zero derivative")
      else begin
        let x' = x -. (fx /. dfx) in
        if abs_float (x' -. x) <= tol *. (1.0 +. abs_float x) then x'
        else loop x' (i + 1)
      end
    end
  in
  loop x0 0
