(** One-dimensional numerical quadrature. *)

val trapezoid : f:(float -> float) -> lo:float -> hi:float -> n:int -> float
(** Composite trapezoid rule with [n] equal subintervals ([n >= 1]).
    Exact for affine integrands; error [O(h²)] otherwise. *)

val simpson : f:(float -> float) -> lo:float -> hi:float -> n:int -> float
(** Composite Simpson rule with [n] subintervals (rounded up to even).
    Error [O(h⁴)] for smooth integrands. *)

val adaptive_simpson :
  ?tol:float -> ?max_depth:int -> f:(float -> float) -> float -> float -> float
(** [adaptive_simpson ~f lo hi]: adaptive Simpson quadrature with interval halving until the local
    Richardson error estimate is below [tol] (default [1e-10], scaled by
    the interval contribution). *)

val trapezoid_samples : h:float -> float array -> float
(** [trapezoid_samples ~h ys] integrates pre-sampled values [ys] on a
    uniform grid of step [h] (at least one sample; a single sample yields
    0). Used by grid-based integral-equation solvers. *)
