let inv_e = exp (-1.0)

(* Halley iteration on f(w) = w e^w - x; cubic convergence from any
   reasonable starting point on the correct branch. *)
let halley ~x w0 =
  let w = ref w0 in
  let continue = ref true in
  let iter = ref 0 in
  while !continue && !iter < 100 do
    incr iter;
    let w_ = !w in
    let ew = exp w_ in
    let f = (w_ *. ew) -. x in
    let denom = (ew *. (w_ +. 1.0)) -. ((w_ +. 2.0) *. f /. (2.0 *. (w_ +. 1.0))) in
    if denom = 0.0 then continue := false
    else begin
      let w' = w_ -. (f /. denom) in
      if abs_float (w' -. w_) <= 1e-15 *. (1.0 +. abs_float w') then begin
        w := w';
        continue := false
      end
      else w := w'
    end
  done;
  !w

let at_branch_point x = abs_float (x +. inv_e) < 1e-15

let w0 x =
  if x < -.inv_e -. 1e-15 then invalid_arg "Lambert.w0: x < -1/e"
  else if x = 0.0 then 0.0
  else if at_branch_point x then -1.0
  else begin
    let x = Float.max x (-.inv_e) in
    let start =
      if x < 0.0 then begin
        (* Near the branch point use the square-root expansion
           w ≈ -1 + p - p²/3 with p = sqrt(2(ex + 1)). *)
        let p = sqrt (2.0 *. ((Float.exp 1.0 *. x) +. 1.0)) in
        -1.0 +. p -. (p *. p /. 3.0)
      end
      else if x < Float.exp 1.0 then x /. (1.0 +. x)
      else begin
        (* Asymptotic start: log x - log log x. *)
        let l1 = log x in
        l1 -. log l1
      end
    in
    halley ~x start
  end

let wm1 x =
  if x < -.inv_e -. 1e-15 || x >= 0.0 then
    invalid_arg "Lambert.wm1: domain is [-1/e, 0)"
  else if at_branch_point x then -1.0
  else begin
    let x = Float.max x (-.inv_e) in
    let start =
      if x > -0.25 then begin
        (* w = log(-x) - log(-log(-x)) asymptotic near 0⁻. *)
        let l1 = log (-.x) in
        l1 -. log (-.l1)
      end
      else begin
        let p = sqrt (2.0 *. ((Float.exp 1.0 *. x) +. 1.0)) in
        -1.0 -. p -. (p *. p /. 3.0)
      end
    in
    halley ~x start
  end
