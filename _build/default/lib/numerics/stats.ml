type accumulator = {
  mutable n : int;
  mutable mu : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let acc_create () =
  { n = 0; mu = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity }

let acc_add acc x =
  acc.n <- acc.n + 1;
  let delta = x -. acc.mu in
  acc.mu <- acc.mu +. (delta /. float_of_int acc.n);
  acc.m2 <- acc.m2 +. (delta *. (x -. acc.mu));
  if x < acc.lo then acc.lo <- x;
  if x > acc.hi then acc.hi <- x

let acc_count acc = acc.n
let acc_mean acc = if acc.n = 0 then nan else acc.mu

let acc_variance acc =
  if acc.n < 2 then nan else acc.m2 /. float_of_int (acc.n - 1)

let acc_stddev acc = sqrt (acc_variance acc)
let acc_min acc = if acc.n = 0 then nan else acc.lo
let acc_max acc = if acc.n = 0 then nan else acc.hi

let acc_merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mu -. a.mu in
    let mu = a.mu +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    { n; mu; m2; lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
  end

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95_half_width : float;
}

let summarize acc =
  let count = acc.n in
  let mean = acc_mean acc in
  let stddev = if count < 2 then 0.0 else acc_stddev acc in
  let ci95_half_width =
    if count < 2 then 0.0 else 1.96 *. stddev /. sqrt (float_of_int count)
  in
  { count; mean; stddev; min = acc_min acc; max = acc_max acc; ci95_half_width }

let of_array xs =
  let acc = acc_create () in
  Array.iter (acc_add acc) xs;
  summarize acc

let mean xs = (of_array xs).mean

let variance xs =
  let acc = acc_create () in
  Array.iter (acc_add acc) xs;
  acc_variance acc

let stddev xs = sqrt (variance xs)

let quantile xs ~q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0, 1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let w = pos -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let median xs = quantile xs ~q:0.5
