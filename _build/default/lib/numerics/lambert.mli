(** Lambert W function: solutions of [w * exp w = x].

    Used for the closed-form optimal fixed-work checkpointing period (Daly
    2006, Bougeret et al. 2011), against which the Young/Daly first-order
    approximation is assessed. *)

val w0 : float -> float
(** Principal branch [W₀], defined for [x >= -1/e]; [W₀ x >= -1].
    Raises [Invalid_argument] below the branch point. Accuracy ~1e-14. *)

val wm1 : float -> float
(** Secondary real branch [W₋₁], defined for [-1/e <= x < 0];
    [W₋₁ x <= -1]. Raises [Invalid_argument] outside the domain. *)
