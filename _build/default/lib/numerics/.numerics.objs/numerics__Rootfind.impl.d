lib/numerics/rootfind.ml: Printf
