lib/numerics/stats.mli:
