lib/numerics/lambert.mli:
