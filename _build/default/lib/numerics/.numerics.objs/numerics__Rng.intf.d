lib/numerics/rng.mli:
