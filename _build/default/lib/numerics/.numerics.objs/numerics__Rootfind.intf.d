lib/numerics/rootfind.mli:
