lib/numerics/integrate.mli:
