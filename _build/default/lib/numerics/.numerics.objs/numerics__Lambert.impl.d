lib/numerics/lambert.ml: Float
