lib/numerics/specfun.mli:
