lib/numerics/neldermead.ml: Array Float
