lib/numerics/neldermead.mli:
