lib/parallel/pool.mli:
