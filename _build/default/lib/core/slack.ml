let with_slack ~params ~slack policy =
  if slack < 0.0 then invalid_arg "Slack.with_slack: negative slack";
  let c = params.Fault.Params.c and r = params.Fault.Params.r in
  let plan ~tleft ~recovering =
    match policy.Sim.Policy.plan ~tleft ~recovering with
    | [] -> []
    | offsets ->
        let rec shift = function
          | [] -> []
          | [ last ] ->
              (* keep the final segment long enough for its checkpoint *)
              let base = if recovering then r else 0.0 in
              let floor_ = base +. c in
              [ Float.max floor_ (last -. slack) ]
          | prev :: (_ :: _ as rest) -> (
              match shift rest with
              | [ shifted ] when shifted < prev +. c ->
                  (* the shifted final checkpoint collided with its
                     predecessor: clamp against it instead *)
                  prev :: [ Float.max (prev +. c) shifted ]
              | shifted -> prev :: shifted)
        in
        shift offsets
  in
  Sim.Policy.make
    ~name:(Printf.sprintf "%s+slack(%g)" policy.Sim.Policy.name slack)
    plan

let erlang_cdf ~shape ~mean x =
  if shape < 1 then invalid_arg "Slack.erlang_cdf: shape < 1";
  if mean <= 0.0 then invalid_arg "Slack.erlang_cdf: mean <= 0";
  if x <= 0.0 then 0.0
  else begin
    let rate = float_of_int shape /. mean in
    let y = rate *. x in
    (* P(X <= x) = 1 - e^{-y} sum_{i<shape} y^i / i! *)
    let term = ref 1.0 and acc = ref 1.0 in
    for i = 1 to shape - 1 do
      term := !term *. y /. float_of_int i;
      acc := !acc +. !term
    done;
    1.0 -. (exp (-.y) *. !acc)
  end

let first_order_slack ~params ~shape ~tleft =
  let c = params.Fault.Params.c in
  let w_last =
    Float.min (Model.young_daly_period params) (Float.max 0.0 (tleft -. c))
  in
  if w_last <= 0.0 then 0.0
  else begin
    (* maximise F(c + s) * (w_last - s) over s in [0, w_last] by
       golden-section search (unimodal: increasing cdf times a
       decreasing affine factor). *)
    let value s = erlang_cdf ~shape ~mean:c (c +. s) *. (w_last -. s) in
    let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
    let lo = ref 0.0 and hi = ref w_last in
    let x1 = ref (!hi -. (phi *. (!hi -. !lo))) in
    let x2 = ref (!lo +. (phi *. (!hi -. !lo))) in
    let f1 = ref (value !x1) and f2 = ref (value !x2) in
    while !hi -. !lo > 1e-6 *. (1.0 +. w_last) do
      if !f1 < !f2 then begin
        lo := !x1;
        x1 := !x2;
        f1 := !f2;
        x2 := !lo +. (phi *. (!hi -. !lo));
        f2 := value !x2
      end
      else begin
        hi := !x2;
        x2 := !x1;
        f2 := !f1;
        x1 := !hi -. (phi *. (!hi -. !lo));
        f1 := value !x1
      end
    done;
    let s = 0.5 *. (!lo +. !hi) in
    if value s <= value 0.0 then 0.0 else s
  end

let tune ?(grid = 16) ~params ~fresh_sampler ~policy_of_slack ~horizon traces =
  if grid < 1 then invalid_arg "Slack.tune: grid < 1";
  let c = params.Fault.Params.c in
  let best = ref (0.0, neg_infinity) in
  for i = 0 to grid do
    let slack = 2.0 *. c *. float_of_int i /. float_of_int grid in
    let policy = policy_of_slack slack in
    let r =
      Sim.Runner.evaluate ~ckpt_sampler:(fresh_sampler ()) ~params ~horizon
        ~policy traces
    in
    let mean = r.Sim.Runner.proportion.Numerics.Stats.mean in
    if mean > snd !best then best := (slack, mean)
  done;
  !best
