let young_daly_period p =
  let open Fault.Params in
  sqrt (2.0 *. mtbf p *. p.c)

let daly_second_order_period p =
  let open Fault.Params in
  let mu = mtbf p in
  if p.c >= 2.0 *. mu then mu
  else begin
    let ratio = p.c /. (2.0 *. mu) in
    let w = sqrt (2.0 *. mu *. p.c) in
    (w *. (1.0 +. (sqrt ratio /. 3.0) +. (ratio /. 9.0))) -. p.c
  end

let optimal_period p =
  let open Fault.Params in
  (* Minimise h(W) = E(W)/W. Setting h'(W) = 0 yields
     e^{λ(W+C)} (λW − 1) + 1 = 0, i.e. (λW − 1) e^{λW − 1} = −e^{−λC − 1};
     the branch giving W > 0 is W₀ since −e^{−λC−1} ∈ (−1/e, 0) and
     λW − 1 ∈ (−1, 0). *)
  let x = -.exp ((-.p.lambda *. p.c) -. 1.0) in
  (1.0 +. Numerics.Lambert.w0 x) /. p.lambda

let expected_time_fixed_work p ~w =
  let open Fault.Params in
  if w < 0.0 then invalid_arg "Model.expected_time_fixed_work: negative work";
  (mtbf p +. p.d) *. exp (p.lambda *. p.r) *. expm1 (p.lambda *. (w +. p.c))

let expected_time_per_work p ~w =
  if w <= 0.0 then invalid_arg "Model.expected_time_per_work: w <= 0";
  expected_time_fixed_work p ~w /. w

let expected_lost_time p ~x =
  let open Fault.Params in
  if x <= 0.0 then 0.0
  else (1.0 /. p.lambda) -. (x /. expm1 (p.lambda *. x))

let checkpoint_count_young_daly p ~horizon =
  let open Fault.Params in
  if horizon < p.c then 0
  else begin
    (* Mirror Policy.periodic: full strides of W_YD + C while at least
       period + 2C remain, then one final checkpoint at the end. *)
    let stride = young_daly_period p +. p.c in
    let rec count last acc =
      let rem = horizon -. last in
      if rem <= stride +. p.c then if rem < p.c then acc else acc + 1
      else count (last +. stride) (acc + 1)
    in
    count 0.0 0
  end
