(** Slack against stochastic checkpoint durations.

    The fixed-time-optimal strategies schedule their last checkpoint to
    complete exactly at the end of the reservation. When checkpoint
    durations are random with mean [C], any overrun of that final
    checkpoint forfeits the whole final segment — the one regime where
    Young/Daly's periodic slack beats the optimum (see EXPERIMENTS.md).
    The cure is cheap: finish the last checkpoint [slack] early, trading
    [slack] units of planned work for the probability of completing.

    This module provides the policy transformer and two ways to choose
    the slack: a closed-form first-order rule for Erlang-distributed
    durations, and simulation-based autotuning for anything else. *)

val with_slack : params:Fault.Params.t -> slack:float -> Sim.Policy.t -> Sim.Policy.t
(** [with_slack ~params ~slack policy] shifts the {e final} checkpoint
    of every plan earlier by [slack] (clamped so the plan stays valid:
    the final completion never moves below the previous checkpoint plus
    [C], or below the feasibility base). [slack = 0] is the identity.
    Requires [slack >= 0]. *)

val erlang_cdf : shape:int -> mean:float -> float -> float
(** Distribution function of the Erlang([shape]) distribution with the
    given [mean] ([P(X <= x)]), via the truncated Poisson sum. Requires
    [shape >= 1] and [mean > 0]. *)

val first_order_slack :
  params:Fault.Params.t -> shape:int -> tleft:float -> float
(** The slack maximising the final-segment trade-off in isolation:
    [argmax_s F(C + s) · (w_last - s)] where [F] is the Erlang
    distribution of the checkpoint duration and [w_last] the final
    segment's work (approximated by the Young/Daly period capped by
    [tleft - c]). Solved by golden-section search; [0] when jitter never
    pays. *)

val tune :
  ?grid:int ->
  params:Fault.Params.t ->
  fresh_sampler:(unit -> unit -> float) ->
  policy_of_slack:(float -> Sim.Policy.t) ->
  horizon:float ->
  Fault.Trace.t array ->
  float * float
(** [tune ~params ~fresh_sampler ~policy_of_slack ~horizon traces]
    evaluates [policy_of_slack s] for [grid + 1] (default 16) slack
    values in [0, 2C], each on the {e same} traces and with a {e fresh}
    checkpoint-duration sampler from [fresh_sampler ()] (so identically
    seeded samplers give common random numbers across slack values), and
    returns [(best_slack, best_mean_proportion)]. *)
