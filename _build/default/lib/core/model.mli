(** Closed-form results for the classical {e fixed-work} checkpointing
    problem, used as references and baselines for the fixed-time problem.

    Notation: parameters [p] carry [λ, C, R, D]; [µ = 1/λ] is the MTBF. *)

val young_daly_period : Fault.Params.t -> float
(** First-order optimal work between checkpoints:
    [W_YD = sqrt (2 µ C)] (Young 1974, Daly 2006). *)

val daly_second_order_period : Fault.Params.t -> float
(** Daly's higher-order estimate:
    [W = sqrt(2µC) · (1 + (1/3)·sqrt(C/(2µ)) + (1/9)·(C/(2µ))) − C] for
    [C < 2µ], and [W = µ] otherwise (Daly 2006, eq. (20)). *)

val optimal_period : Fault.Params.t -> float
(** Exact optimal work per segment for memoryless failures, via the
    Lambert function: the minimiser of {!expected_time_per_work}; equals
    [(1 + W₀(−e^{−λC−1})) / λ] (Bougeret et al. 2011). *)

val expected_time_fixed_work : Fault.Params.t -> w:float -> float
(** Expected time to execute [w] units of work followed by one checkpoint,
    restarting from scratch after each failure:
    [E(W) = (µ + D) e^{λR} (e^{λ(W+C)} − 1)].
    (The research report prints a spurious [1/λ] factor; this is the
    standard closed form, which our simulation tests confirm.) *)

val expected_time_per_work : Fault.Params.t -> w:float -> float
(** Normalised cost [expected_time_fixed_work / w]; minimised at
    {!optimal_period}. Requires [w > 0]. *)

val expected_lost_time : Fault.Params.t -> x:float -> float
(** [E(T_lost(x))]: expected time elapsed before the failure, knowing one
    strikes within an attempt of length [x]:
    [1/λ − x / (e^{λx} − 1)]. *)

val checkpoint_count_young_daly : Fault.Params.t -> horizon:float -> int
(** Number of checkpoints the Young/Daly strategy provisions in a
    failure-free reservation of length [horizon] (at least one as soon as
    [horizon >= c]). *)
