(** Numerical evaluation of expected saved work.

    Three independent evaluators used to cross-validate the heuristics,
    the dynamic program and the Monte-Carlo simulator:

    - {!single_final_value}: solves the recursive integral equations of
      Section 4.1 for the strategy that always takes a unique checkpoint
      at the very end of the (remaining) reservation;
    - {!first_failure_value}: exact expected work saved {e until the first
      failure} for an arbitrary fixed plan — the comparison metric used by
      the paper to rank strategies (Sections 4.3 and 5);
    - {!policy_value}: expected saved work of an arbitrary policy on the
      quantised model, by memoisation over (time left, recovery flag). *)

type grid = { quantum : float; values : float array }
(** [values.(i)] is the expectation for a reservation of [i] quanta. *)

val single_final_value :
  params:Fault.Params.t -> quantum:float -> horizon:float -> grid * grid
(** [(e, e_r)] where [e.values.(i)] solves
    [E_end(T,1) = e^{-λT}(T - C) + ∫₀^{T-D-R-C} λe^{-λt} E_end_R(T-t-D,1) dt]
    and [e_r] the variant starting with a recovery (Section 4.1; we use
    the unconditional failure density [λe^{-λt}] — see DESIGN.md).
    Requires [c], [r], [d] to be integer multiples of [quantum]
    (within rounding). *)

val first_failure_value :
  params:Fault.Params.t -> recovering:bool -> offsets:float list -> float
(** Expected work saved until the first failure (or until the plan
    completes) for a fixed plan of checkpoint completion [offsets];
    [recovering] charges an initial recovery to the first segment.
    Offsets must be a valid plan (see {!Sim.Policy.validate_plan}). *)

val gain_vs :
  params:Fault.Params.t -> offsets1:float list -> offsets2:float list -> float
(** [first_failure_value offsets1 - first_failure_value offsets2], both
    without initial recovery: the paper's strategy-comparison metric. *)

val policy_value :
  params:Fault.Params.t ->
  quantum:float ->
  horizon:float ->
  policy:Sim.Policy.t ->
  float
(** Expected saved work of [policy] over the whole reservation, computed
    exactly on the quantised model (failures at quantum boundaries, plan
    offsets rounded to quanta). Converges to the continuous expectation
    as [quantum → 0]. *)

val policy_value_grids :
  params:Fault.Params.t ->
  quantum:float ->
  horizon:float ->
  policy:Sim.Policy.t ->
  grid * grid
(** Full value tables [(v, v_r)] of {!policy_value} for every number of
    remaining quanta, without ([v]) and with ([v_r]) initial recovery. *)
