(** Analytical case studies of the paper's Section 4, demonstrating why
    fixed-time checkpointing is hard: the optimal strategy is neither
    always periodic nor always checkpointing at the very end. *)

(** {2 Section 4.2 — a single checkpoint in a short reservation} *)

val short_reservation_gain : lambda:float -> float
(** Expected gain of checkpointing at the very end over checkpointing one
    unit earlier, in the paper's concrete setting [T = 6], [C = R = 4],
    [D = 0]: [2 e^{-6λ} - e^{-5λ}]. Negative iff [λ > ln 2]. *)

val short_reservation_crossover : float
(** [ln 2], the failure rate above which it pays to checkpoint early. *)

val single_shift_gain : params:Fault.Params.t -> t:float -> shift:float -> float
(** Generalisation: expected gain (until the first failure) of completing
    the unique checkpoint at time [t] rather than at [t - shift], under
    the example's assumption that no work can be saved after a failure
    (valid when [r + c > t]):
    [P_succ(t)·shift − P_succ(t - shift)·P_fail(shift)·(t - shift - c)].
    Requires [0 <= shift <= t - c]. *)

val best_single_shift : params:Fault.Params.t -> t:float -> float
(** The shift maximising the expected work of a single-checkpoint
    strategy (still under the no-work-after-failure assumption), found by
    golden-section search on [\[0, t - c\]]. 0 means "checkpoint at the
    very end is optimal". *)

(** {2 Section 4.3 — two checkpoints} *)

val two_ckpt_gain : params:Fault.Params.t -> t:float -> alpha:float -> float
(** Expected gain (until the first failure) of [Strat2(α)] — checkpoints
    completing at [αT] and [T] — over [Strat1] (single checkpoint at
    [T]): [e^{-λαT}(αT - C) - e^{-λT}·αT]. *)

val alpha_opt : params:Fault.Params.t -> t:float -> float
(** The optimal split [α_opt(t)]: unique zero of
    [g(α) = 1 - λ(αT - C) - e^{-λ(1-α)T}] in [\[c/t, 1 - c/t\]], clamped
    to that interval when [g] has constant sign over it (then the optimum
    sits on the boundary). Requires [t >= 2c]. As [λ → 0] with
    [t = Θ(λ^{-1/2})], [α_opt → 1/2]. *)
