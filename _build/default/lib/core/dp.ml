type t = {
  params : Fault.Params.t;
  u : float;
  tstar : int;
  kmax : int;
  cq : int;
  rq : int;
  dq : int;
  e0 : float array array;  (* e0.(k).(n) = E(n, k, 0), in quanta *)
  e1 : float array array;
  ib0 : int array array;  (* optimal first-checkpoint quantum; 0 = none *)
  ib1 : int array array;
  argm1 : int array array;  (* argm1.(k).(n) = argmax_{m<=k} e1.(m).(n) *)
  bestk0 : int array;  (* argmax_k e0.(k).(n) *)
}

let quanta_round x ~u = int_of_float (Float.round (x /. u))

let suggested_kmax ~params ~horizon =
  let open Fault.Params in
  let u_yd = Model.young_daly_period params in
  let exact = max 1 (int_of_float (floor (horizon /. params.c))) in
  let guess = int_of_float (ceil (4.0 *. horizon /. (u_yd +. params.c))) + 8 in
  min exact (max 1 guess)

let build ?kmax ~params ~quantum ~horizon () =
  if quantum <= 0.0 then invalid_arg "Dp.build: quantum must be positive";
  if horizon < quantum then invalid_arg "Dp.build: horizon below one quantum";
  let open Fault.Params in
  let u = quantum in
  let tstar = int_of_float (floor ((horizon /. u) +. 1e-9)) in
  let cq = max 1 (quanta_round params.c ~u) in
  let rq = max 0 (quanta_round params.r ~u) in
  let dq = max 0 (quanta_round params.d ~u) in
  let kmax_exact = max 1 (tstar / cq) in
  let kmax =
    match kmax with
    | None -> kmax_exact
    | Some k ->
        if k < 1 then invalid_arg "Dp.build: kmax < 1";
        min k kmax_exact
  in
  let lam = params.lambda in
  let psucc = Array.init (tstar + 1) (fun i -> exp (-.lam *. float_of_int i *. u)) in
  let p = Array.make (tstar + 1) 0.0 in
  for f = 1 to tstar do
    p.(f) <- psucc.(f - 1) -. psucc.(f)
  done;
  let mk_f () = Array.init (kmax + 1) (fun _ -> Array.make (tstar + 1) 0.0) in
  let mk_i () = Array.init (kmax + 1) (fun _ -> Array.make (tstar + 1) 0) in
  let e0 = mk_f () and e1 = mk_f () in
  let ib0 = mk_i () and ib1 = mk_i () in
  let argm1 = mk_i () in
  (* bestv.(n) = max_{m<=k} E(n, m, 1) for the sweep's current k;
     updated in place as soon as E(n, k, 1) is known, which is safe
     because states only reference strictly smaller n. *)
  let bestv = Array.make (tstar + 1) 0.0 in
  let argv = Array.make (tstar + 1) 0 in
  for k = 1 to kmax do
    let e0k = e0.(k)
    and e1k = e1.(k)
    and ib0k = ib0.(k)
    and ib1k = ib1.(k) in
    let cont = if k >= 2 then e0.(k - 1) else [||] in
    for n = 1 to tstar do
      (* One state (n, k, delta): maximise over the completion quantum i
         of the first checkpoint, carrying the failure-term prefix sum
         S(i) = sum_{f=1..i} p_f * bestv(n - f - dq). *)
      let solve ~delta =
        let base = if delta then rq else 0 in
        let ilo = base + cq + 1 in
        let ihi = if k >= 2 then n - ((k - 1) * cq) else n in
        if ihi < ilo then (0.0, 0)
        else begin
          let running = ref 0.0 in
          for f = 1 to ilo - 1 do
            let n' = n - f - dq in
            if n' >= 1 then running := !running +. (p.(f) *. bestv.(n'))
          done;
          let best = ref 0.0 and besti = ref 0 in
          for i = ilo to ihi do
            let n' = n - i - dq in
            if n' >= 1 then running := !running +. (p.(i) *. bestv.(n'));
            let continuation = if k >= 2 then cont.(n - i) else 0.0 in
            let work = float_of_int (i - cq - base) in
            let cand = (psucc.(i) *. (work +. continuation)) +. !running in
            if cand > !best then begin
              best := cand;
              besti := i
            end
          done;
          (!best, !besti)
        end
      in
      let v1, i1 = solve ~delta:true in
      e1k.(n) <- v1;
      ib1k.(n) <- i1;
      let v0, i0 = solve ~delta:false in
      e0k.(n) <- v0;
      ib0k.(n) <- i0;
      if v1 > bestv.(n) then begin
        bestv.(n) <- v1;
        argv.(n) <- k
      end
    done;
    Array.blit argv 0 argm1.(k) 0 (tstar + 1)
  done;
  let bestk0 = Array.make (tstar + 1) 0 in
  let beste0 = Array.make (tstar + 1) 0.0 in
  for k = 1 to kmax do
    for n = 1 to tstar do
      if e0.(k).(n) > beste0.(n) then begin
        beste0.(n) <- e0.(k).(n);
        bestk0.(n) <- k
      end
    done
  done;
  { params; u; tstar; kmax; cq; rq; dq; e0; e1; ib0; ib1; argm1; bestk0 }

let quantum t = t.u
let horizon_quanta t = t.tstar
let kmax t = t.kmax

let check_state t ~n ~k =
  if n < 0 || n > t.tstar then invalid_arg "Dp: n outside [0, T*]";
  if k < 1 || k > t.kmax then invalid_arg "Dp: k outside [1, kmax]"

let expected_work_q t ~n ~k ~delta =
  check_state t ~n ~k;
  (if delta then t.e1 else t.e0).(k).(n) *. t.u

let best_expected_work_q t ~n ~delta =
  if n < 0 || n > t.tstar then invalid_arg "Dp: n outside [0, T*]";
  let table = if delta then t.e1 else t.e0 in
  let best = ref 0.0 in
  for k = 1 to t.kmax do
    if table.(k).(n) > !best then best := table.(k).(n)
  done;
  !best *. t.u

let clamp_n t tleft =
  let n = int_of_float (floor ((tleft /. t.u) +. 1e-9)) in
  if n < 0 then 0 else min n t.tstar

let expected_work t ~tleft =
  let n = clamp_n t tleft in
  let k = t.bestk0.(n) in
  if k = 0 then 0.0 else t.e0.(k).(n) *. t.u

let best_k t ~n ~delta =
  if n < 0 || n > t.tstar then invalid_arg "Dp: n outside [0, T*]";
  if delta then t.argm1.(t.kmax).(n) else t.bestk0.(n)

let plan_q t ~n ~k ~delta =
  check_state t ~n ~k;
  let rec go n k delta acc base =
    if k = 0 then List.rev acc
    else begin
      let ib = (if delta then t.ib1 else t.ib0).(k).(n) in
      if ib = 0 then List.rev acc
      else go (n - ib) (k - 1) false ((base + ib) :: acc) (base + ib)
    end
  in
  go n k delta [] 0

let policy t =
  (* Per-reservation state to recover k_remaining after a failure: the
     recursion of Equation (8) re-plans with at most as many checkpoints
     as were still outstanding when the failure struck. *)
  let last : (float * float list * int) option ref = ref None in
  let to_offsets quanta = List.map (fun q -> float_of_int q *. t.u) quanta in
  let plan ~tleft ~recovering =
    let n = clamp_n t tleft in
    if n = 0 then []
    else if not recovering then begin
      let k = t.bestk0.(n) in
      if k = 0 then []
      else begin
        let offsets = to_offsets (plan_q t ~n ~k ~delta:false) in
        last := Some (tleft, offsets, k);
        offsets
      end
    end
    else begin
      let k_cap =
        match !last with
        | None -> t.kmax
        | Some (prev_tleft, offsets, k_prev) ->
            let elapsed =
              prev_tleft -. tleft -. t.params.Fault.Params.d
            in
            let completed =
              List.length (List.filter (fun o -> o <= elapsed +. 1e-9) offsets)
            in
            max 1 (k_prev - completed)
      in
      let m = t.argm1.(min k_cap t.kmax).(n) in
      if m = 0 then []
      else begin
        let offsets = to_offsets (plan_q t ~n ~k:m ~delta:true) in
        last := Some (tleft, offsets, m);
        offsets
      end
    end
  in
  Sim.Policy.make ~name:"DynamicProgramming" plan
