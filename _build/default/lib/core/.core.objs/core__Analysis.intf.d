lib/core/analysis.mli: Fault
