lib/core/dp.ml: Array Fault Float List Model Sim
