lib/core/threshold.ml: Array Expected Fault Float List Numerics
