lib/core/plan_opt.mli: Dp Fault Sim
