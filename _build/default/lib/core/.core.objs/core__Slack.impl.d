lib/core/slack.ml: Fault Float Model Numerics Printf Sim
