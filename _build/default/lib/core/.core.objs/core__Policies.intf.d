lib/core/policies.mli: Fault Sim Threshold
