lib/core/slack.mli: Fault Sim
