lib/core/model.mli: Fault
