lib/core/dp.mli: Fault Sim
