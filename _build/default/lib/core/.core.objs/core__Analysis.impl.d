lib/core/analysis.ml: Fault Numerics
