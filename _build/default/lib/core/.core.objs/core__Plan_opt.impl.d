lib/core/plan_opt.ml: Array Dp Fault Float Hashtbl List Numerics Sim Threshold
