lib/core/optimal.ml: Array Fault Float List Sim
