lib/core/dp_renewal.mli: Fault Sim
