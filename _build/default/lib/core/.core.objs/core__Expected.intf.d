lib/core/expected.mli: Fault Sim
