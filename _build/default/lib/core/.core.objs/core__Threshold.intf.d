lib/core/threshold.mli: Fault
