lib/core/dp_renewal.ml: Array Fault Float List Sim
