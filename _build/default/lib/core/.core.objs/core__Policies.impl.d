lib/core/policies.ml: Dp Fault Model Sim Threshold
