lib/core/model.ml: Fault Numerics
