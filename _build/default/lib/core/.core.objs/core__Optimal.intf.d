lib/core/optimal.mli: Fault Sim
