lib/core/expected.ml: Array Fault Float Format List Sim
