let short_reservation_gain ~lambda =
  (2.0 *. exp (-6.0 *. lambda)) -. exp (-5.0 *. lambda)

let short_reservation_crossover = log 2.0

let single_shift_gain ~params ~t ~shift =
  let open Fault.Params in
  if shift < 0.0 || shift > t -. params.c then
    invalid_arg "Analysis.single_shift_gain: shift outside [0, t - c]";
  (psucc params t *. shift)
  -. (psucc params (t -. shift) *. pfail params shift *. (t -. shift -. params.c))

let best_single_shift ~params ~t =
  let open Fault.Params in
  if t <= params.c then invalid_arg "Analysis.best_single_shift: t <= c";
  (* Expected work of the shifted strategy (no work after failure):
     the checkpoint completes at t - s, saving t - s - c with probability
     P_succ(t - s). Maximise over s by golden-section search (the
     function is unimodal: product of a decreasing exponential and an
     affine term). *)
  let value s = psucc params (t -. s) *. (t -. s -. params.c) in
  let lo = ref 0.0 and hi = ref (t -. params.c) in
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  let x1 = ref (!hi -. (phi *. (!hi -. !lo))) in
  let x2 = ref (!lo +. (phi *. (!hi -. !lo))) in
  let f1 = ref (value !x1) and f2 = ref (value !x2) in
  while !hi -. !lo > 1e-10 *. (1.0 +. t) do
    if !f1 < !f2 then begin
      lo := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !lo +. (phi *. (!hi -. !lo));
      f2 := value !x2
    end
    else begin
      hi := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !hi -. (phi *. (!hi -. !lo));
      f1 := value !x1
    end
  done;
  0.5 *. (!lo +. !hi)

let two_ckpt_gain ~params ~t ~alpha =
  let open Fault.Params in
  if alpha <= 0.0 || alpha >= 1.0 then
    invalid_arg "Analysis.two_ckpt_gain: alpha outside (0, 1)";
  (psucc params (alpha *. t) *. ((alpha *. t) -. params.c))
  -. (psucc params t *. alpha *. t)

let alpha_opt ~params ~t =
  let open Fault.Params in
  if t < 2.0 *. params.c then invalid_arg "Analysis.alpha_opt: t < 2c";
  let lambda = params.lambda and c = params.c in
  let g alpha =
    1.0 -. (lambda *. ((alpha *. t) -. c)) -. exp (-.lambda *. (1.0 -. alpha) *. t)
  in
  let lo = c /. t and hi = 1.0 -. (c /. t) in
  (* g is strictly decreasing (Section 4.3), so the sign at the interval
     ends decides between an interior zero and a boundary optimum. *)
  if g lo <= 0.0 then lo
  else if g hi >= 0.0 then hi
  else Numerics.Rootfind.brent ~f:g lo hi
