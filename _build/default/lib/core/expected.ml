type grid = { quantum : float; values : float array }

let quanta_of ~quantum x = int_of_float (Float.round (x /. quantum))

let check_multiple ~quantum name x =
  let q = quanta_of ~quantum x in
  if abs_float ((float_of_int q *. quantum) -. x) > 1e-6 *. (1.0 +. abs_float x)
  then
    Format.kasprintf invalid_arg
      "Expected: %s = %g is not a multiple of the quantum %g" name x quantum

(* Solve the Volterra-type recursion on a uniform grid by building values
   for increasing T. With D = 0 the integrand at t = 0 references the
   value being computed; the trapezoid half-weight term is moved to the
   left-hand side. *)
let single_final_value ~params ~quantum ~horizon =
  let { Fault.Params.lambda; c; r; d } = params in
  check_multiple ~quantum "C" c;
  check_multiple ~quantum "R" r;
  check_multiple ~quantum "D" d;
  let h = quantum in
  let n = quanta_of ~quantum horizon in
  let cq = quanta_of ~quantum c
  and rq = quanta_of ~quantum r
  and dq = quanta_of ~quantum d in
  let er = Array.make (n + 1) 0.0 in
  let e = Array.make (n + 1) 0.0 in
  (* Integral ∫₀^{U} λ e^{-λt} v(T - t - D) dt on the grid, where v = er
     and U = (i - dq - rq - cq) h. Self-referencing j = 0 term (D = 0
     only) is excluded and returned separately as its trapezoid weight. *)
  let integral_tail i =
    let upper = i - dq - rq - cq in
    if upper <= 0 then 0.0
    else begin
      let acc = ref 0.0 in
      for j = 0 to upper do
        let weight = if j = 0 || j = upper then 0.5 else 1.0 in
        let arg = i - j - dq in
        let value = if arg >= 0 && arg <= n then er.(arg) else 0.0 in
        if not (j = 0 && dq = 0) then
          acc :=
            !acc
            +. (weight *. lambda *. exp (-.lambda *. float_of_int j *. h) *. value)
      done;
      !acc *. h
    end
  in
  let self_weight i =
    (* Trapezoid weight of the excluded j = 0 term when D = 0. *)
    let upper = i - dq - rq - cq in
    if dq = 0 && upper > 0 then 0.5 *. h *. lambda else 0.0
  in
  for i = 0 to n do
    let t = float_of_int i *. h in
    (* Strategy value starting with a recovery. *)
    if i > rq + cq then begin
      let base = exp (-.lambda *. t) *. (t -. r -. c) in
      let tail = integral_tail i in
      er.(i) <- (base +. tail) /. (1.0 -. self_weight i)
    end;
    (* Strategy value without initial recovery: same failure recursion,
       different no-failure work term. Note the recursion always falls
       back on [er], never on [e]. *)
    if i > cq then begin
      let base = exp (-.lambda *. t) *. (t -. c) in
      let upper = i - dq - rq - cq in
      let tail =
        if upper <= 0 then 0.0
        else begin
          let acc = ref 0.0 in
          for j = 0 to upper do
            let weight = if j = 0 || j = upper then 0.5 else 1.0 in
            let arg = i - j - dq in
            let value = if arg >= 0 && arg <= n then er.(arg) else 0.0 in
            acc :=
              !acc
              +. weight *. lambda
                 *. exp (-.lambda *. float_of_int j *. h)
                 *. value
          done;
          !acc *. h
        end
      in
      e.(i) <- base +. tail
    end
  done;
  ({ quantum; values = e }, { quantum; values = er })

let first_failure_value ~params ~recovering ~offsets =
  let { Fault.Params.lambda; c; r; d = _ } = params in
  let base = if recovering then r else 0.0 in
  let psucc x = exp (-.lambda *. x) in
  (* saved.(j): cumulative work once checkpoint j+1 has completed. *)
  let rec go prev cumulative first = function
    | [] -> 0.0
    | [ off ] ->
        let work = off -. prev -. c -. (if first then base else 0.0) in
        (cumulative +. work) *. psucc off
    | off :: (next :: _ as rest) ->
        let work = off -. prev -. c -. (if first then base else 0.0) in
        let cumulative = cumulative +. work in
        (cumulative *. (psucc off -. psucc next)) +. go off cumulative false rest
  in
  match offsets with [] -> 0.0 | _ -> go 0.0 0.0 true offsets

let gain_vs ~params ~offsets1 ~offsets2 =
  first_failure_value ~params ~recovering:false ~offsets:offsets1
  -. first_failure_value ~params ~recovering:false ~offsets:offsets2

let policy_value_grids ~params ~quantum ~horizon ~policy =
  let { Fault.Params.lambda; c = _; r = _; d } = params in
  let h = quantum in
  let n = quanta_of ~quantum horizon in
  let dq = quanta_of ~quantum d in
  let psucc_q i = exp (-.lambda *. float_of_int i *. h) in
  (* p.(f): probability the first failure strikes during quantum f. *)
  let p = Array.init (n + 2) (fun f -> psucc_q (f - 1) -. psucc_q f) in
  let v0 = Array.make (n + 1) 0.0 in
  let v1 = Array.make (n + 1) 0.0 in
  let eval ~recovering ~store i =
    let tleft = float_of_int i *. h in
    let offsets = policy.Sim.Policy.plan ~tleft ~recovering in
    Sim.Policy.validate_plan ~params ~tleft ~recovering offsets;
    match offsets with
    | [] -> ()
    | _ ->
        let qoffsets =
          (* Round completions UP to the next quantum boundary: a
             checkpoint is only safe once the whole quantum containing it
             has passed. This keeps the evaluator conservative, so the DP
             optimum (whose plans are exact quantum multiples) dominates
             every evaluated policy. *)
          List.filter_map
            (fun off ->
              let q = int_of_float (ceil ((off /. quantum) -. 1e-9)) in
              if q >= 1 && q <= i then Some (q, off) else None)
            offsets
        in
        (* Work per segment, from the continuous offsets (work is what
           the plan commits; quantisation only moves failure boundaries). *)
        let works =
          let rec go prev first = function
            | [] -> []
            | (q, off) :: rest ->
                let overhead =
                  params.Fault.Params.c
                  +. if first && recovering then params.Fault.Params.r else 0.0
                in
                (q, Float.max 0.0 (off -. prev -. overhead)) :: go off false rest
          in
          go 0.0 true qoffsets
        in
        let last_q = match List.rev works with [] -> 0 | (q, _) :: _ -> q in
        let total = List.fold_left (fun acc (_, w) -> acc +. w) 0.0 works in
        let acc = ref (psucc_q last_q *. total) in
        (* committed work before each failure quantum, via a single sweep. *)
        let remaining = ref works in
        let committed = ref 0.0 in
        for f = 1 to last_q do
          let advancing = ref true in
          while !advancing do
            match !remaining with
            | (q, w) :: rest when q < f ->
                committed := !committed +. w;
                remaining := rest
            | _ -> advancing := false
          done;
          let n' = i - f - dq in
          let cont = if n' >= 1 then v1.(n') else 0.0 in
          acc := !acc +. (p.(f) *. (!committed +. cont))
        done;
        store.(i) <- !acc
  in
  for i = 1 to n do
    eval ~recovering:true ~store:v1 i;
    eval ~recovering:false ~store:v0 i
  done;
  ({ quantum; values = v0 }, { quantum; values = v1 })

let policy_value ~params ~quantum ~horizon ~policy =
  let v0, _ = policy_value_grids ~params ~quantum ~horizon ~policy in
  v0.values.(Array.length v0.values - 1)
