(** Executes a figure spec: sweeps the reservation-length grid for every
    (checkpoint cost, strategy) pair, in parallel over a domain pool. *)

type point = {
  t : float;  (** reservation length *)
  mean : float;  (** mean proportion of work done *)
  ci95 : float;  (** 95% confidence half-width of the mean *)
  mean_failures : float;
  mean_checkpoints : float;
}

type curve = {
  c : float;
  strategy : Spec.strategy;
  name : string;
  points : point array;  (** ordered by [t] *)
}

type result = { spec : Spec.t; curves : curve list }

val run : ?pool:Parallel.Pool.t -> ?progress:(string -> unit) -> Spec.t -> result
(** Precomputations (threshold tables, DP tables — one per distinct
    quantum, covering the whole grid) are shared across the sweep; each
    grid point replays the same prefetched traces, so strategies are
    compared on identical failure scenarios. [progress] receives
    human-readable stage messages. *)

val curve_for : result -> c:float -> strategy:Spec.strategy -> curve option
