(** The paper's figure specifications (Section 7 and Appendix A).

    Every spec defaults to the paper's full campaign settings (1000
    traces, all reservation lengths up to 2000); {!scale} shrinks them
    uniformly for quick runs. *)

val paper_strategies : Spec.strategy list
(** YoungDaly, FirstOrder, NumericalOptimum, DynamicProgramming (u=1). *)

val quantum_strategies : Spec.strategy list
(** DP at u ∈ {0.5, 1, 2, 5, 10} plus the paper strategies for
    reference, as in Figures 4, 5 and 12. *)

val all : Spec.t list
(** fig2 … fig12 (fig7 is fig2's duplicate in the appendix and is listed
    once under both ids), plus the robustness extensions ext-weibull,
    ext-lognormal and ext-stochastic-ckpt. *)

val find : string -> Spec.t option
val ids : string list

val scale : ?n_traces:int -> ?t_step:float -> ?t_max:float -> Spec.t -> Spec.t
(** Override campaign sizes (fewer traces / coarser grid) while keeping
    the physics of the spec. *)
