(** Noise-free figure regeneration.

    For exponential failures and deterministic checkpoint durations, the
    quantised evaluator {!Core.Expected.policy_value_grids} yields the
    expected proportion of work for {e every} reservation length in one
    pass per strategy — no Monte-Carlo, no confidence intervals. Curves
    differ from the simulated ones only by the failure-date quantisation
    (vanishing with the quantum).

    The dynamic-programming strategy is represented by {!Core.Optimal}
    (stateless, provably equal values), since the stateful re-planning
    of {!Core.Dp.policy} has no meaning outside a simulation. *)

type curve = {
  c : float;
  name : string;
  points : (float * float) array;  (** (T, exact expected proportion) *)
}

val supported_strategy : Spec.strategy -> bool
(** VariableSegments and RenewalDP are excluded (the former is too slow
    to evaluate at every state, the latter models a different failure
    law). *)

val figure : ?quantum:float -> Spec.t -> curve list
(** Exact curves for every supported strategy of the spec (quantum
    defaults to 1). Raises [Invalid_argument] if the spec's failure
    distribution is not exponential or its checkpoints are stochastic. *)

val to_csv : curves:curve list -> id:string -> path:string -> unit
val plots : ?width:int -> ?height:int -> Spec.t -> curve list -> string
