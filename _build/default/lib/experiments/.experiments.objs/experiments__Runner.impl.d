lib/experiments/runner.ml: Array Core Fault Fun Int64 Lazy List Numerics Parallel Printf Sim Spec
