lib/experiments/spec.ml: Array Fault Float Format List Printf String
