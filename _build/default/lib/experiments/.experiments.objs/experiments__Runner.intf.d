lib/experiments/runner.mli: Parallel Spec
