lib/experiments/report.mli: Output Runner
