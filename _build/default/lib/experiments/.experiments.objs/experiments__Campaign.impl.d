lib/experiments/campaign.ml: Figures Filename Fun List Output Parallel Printf Report Runner Spec String Sys
