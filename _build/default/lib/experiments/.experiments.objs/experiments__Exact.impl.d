lib/experiments/exact.ml: Array Buffer Core Fault List Output Printf Sim Spec
