lib/experiments/exact.mli: Spec
