lib/experiments/figures.ml: List Spec
