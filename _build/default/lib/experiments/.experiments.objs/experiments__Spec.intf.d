lib/experiments/spec.mli: Fault Format
