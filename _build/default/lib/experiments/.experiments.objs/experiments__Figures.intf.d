lib/experiments/figures.mli: Spec
