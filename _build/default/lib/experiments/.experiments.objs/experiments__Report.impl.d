lib/experiments/report.ml: Array Buffer Core Fault Float List Output Printf Runner Spec String
