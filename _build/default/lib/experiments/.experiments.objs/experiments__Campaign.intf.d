lib/experiments/campaign.mli: Output Parallel Runner Spec
