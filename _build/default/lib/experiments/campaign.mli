(** Whole-campaign orchestration: run every figure (or a subset), export
    the data, and build the Markdown experiment report used as the basis
    of EXPERIMENTS.md. *)

type config = {
  out_dir : string;  (** CSVs land here, one per figure *)
  n_traces : int option;
  t_step : float option;
  t_max : float option;
  figure_ids : string list option;  (** [None] = all *)
}

val default_config : config
(** out_dir "results", paper-scale everything, all figures. *)

val run :
  ?pool:Parallel.Pool.t ->
  ?progress:(string -> unit) ->
  config ->
  (Spec.t * Runner.result) list
(** Runs the selected figures sequentially (each internally parallel over
    the pool), writing [<out_dir>/<figure>.csv] as results complete.
    Raises [Invalid_argument] on an unknown figure id. *)

val markdown_report : (Spec.t * Runner.result) list -> Output.Markdown.t
(** Per figure: parameters, the summary table, and the qualitative
    paper-shape checks; prefixed by a campaign-wide verdict. *)

val write_report : (Spec.t * Runner.result) list -> path:string -> unit
