lib/sim/policy.ml: Fault Float Format List Printf
