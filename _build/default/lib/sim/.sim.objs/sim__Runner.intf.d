lib/sim/runner.mli: Fault Format Numerics Policy
