lib/sim/series.ml: Engine Fault Numerics Policy
