lib/sim/series.mli: Fault Numerics Policy
