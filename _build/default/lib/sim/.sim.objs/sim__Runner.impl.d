lib/sim/runner.ml: Array Engine Format Numerics Policy
