lib/sim/engine.mli: Fault Policy
