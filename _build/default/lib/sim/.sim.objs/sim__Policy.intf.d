lib/sim/policy.mli: Fault
