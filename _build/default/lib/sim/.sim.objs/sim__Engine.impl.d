lib/sim/engine.ml: Fault Float List Policy
