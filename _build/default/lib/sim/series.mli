(** Reservation series: the paper's motivating scenario.

    A job with a fixed total amount of work executes as a sequence of
    fixed-length reservations; the work committed by checkpoints inside
    each reservation carries over to the next (the final checkpoint of a
    reservation is the restart point of the following one). The number
    of reservations a strategy needs — i.e. the billed machine time — is
    the end-to-end figure of merit for fixed-time checkpointing. *)

type outcome = {
  reservations : int;  (** reservations consumed *)
  total_work : float;  (** work committed when the series stopped *)
  failures : int;  (** failures across the whole series *)
  completed : bool;  (** reached [total_work >= target] *)
}

val run :
  ?max_reservations:int ->
  params:Fault.Params.t ->
  policy:Policy.t ->
  reservation:float ->
  target_work:float ->
  trace_for:(int -> Fault.Trace.t) ->
  unit ->
  outcome
(** [run ~params ~policy ~reservation ~target_work ~trace_for] simulates
    reservations [0, 1, 2, …] (failure trace of reservation [i] given by
    [trace_for i]) until the accumulated committed work reaches
    [target_work] or [max_reservations] (default 10 000) is hit — the
    cap guards against policies that never commit anything. Requires a
    positive target and reservation length. *)

type summary = {
  policy : string;
  repetitions : int;
  reservations : Numerics.Stats.summary;
  billed_time_mean : float;  (** mean reservations × reservation length *)
  incomplete : int;  (** repetitions that hit the reservation cap *)
}

val evaluate :
  ?max_reservations:int ->
  ?repetitions:int ->
  params:Fault.Params.t ->
  policy:Policy.t ->
  reservation:float ->
  target_work:float ->
  seed:int64 ->
  unit ->
  summary
(** Repeats {!run} (default 100 times) with independent trace streams
    derived from [seed] and aggregates. *)
