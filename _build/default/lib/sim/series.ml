type outcome = {
  reservations : int;
  total_work : float;
  failures : int;
  completed : bool;
}

let run ?(max_reservations = 10_000) ~params ~policy ~reservation ~target_work
    ~trace_for () =
  if target_work <= 0.0 then invalid_arg "Series.run: target_work <= 0";
  if reservation <= 0.0 then invalid_arg "Series.run: reservation <= 0";
  let rec go ~i ~work ~failures =
    if work >= target_work then
      { reservations = i; total_work = work; failures; completed = true }
    else if i >= max_reservations then
      { reservations = i; total_work = work; failures; completed = false }
    else begin
      let outcome =
        Engine.run ~params ~horizon:reservation ~policy (trace_for i)
      in
      go ~i:(i + 1)
        ~work:(work +. outcome.Engine.work_saved)
        ~failures:(failures + outcome.Engine.failures)
    end
  in
  go ~i:0 ~work:0.0 ~failures:0

type summary = {
  policy : string;
  repetitions : int;
  reservations : Numerics.Stats.summary;
  billed_time_mean : float;
  incomplete : int;
}

let evaluate ?max_reservations ?(repetitions = 100) ~params ~policy
    ~reservation ~target_work ~seed () =
  if repetitions < 1 then invalid_arg "Series.evaluate: repetitions < 1";
  let master = Numerics.Rng.create ~seed in
  let dist =
    Fault.Trace.Exponential { rate = params.Fault.Params.lambda }
  in
  let acc = Numerics.Stats.acc_create () in
  let incomplete = ref 0 in
  for _ = 1 to repetitions do
    (* One derived generator per repetition; each reservation inside
       draws a fresh trace from it. *)
    let rep_rng = Numerics.Rng.split master in
    let trace_for _i =
      Fault.Trace.create ~dist ~seed:(Numerics.Rng.bits64 rep_rng)
    in
    let outcome =
      run ?max_reservations ~params ~policy ~reservation ~target_work
        ~trace_for ()
    in
    Numerics.Stats.acc_add acc (float_of_int outcome.reservations);
    if not outcome.completed then incr incomplete
  done;
  let reservations = Numerics.Stats.summarize acc in
  {
    policy = policy.Policy.name;
    repetitions;
    reservations;
    billed_time_mean = reservations.Numerics.Stats.mean *. reservation;
    incomplete = !incomplete;
  }
