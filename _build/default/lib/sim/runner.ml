type result = {
  policy : string;
  horizon : float;
  traces : int;
  proportion : Numerics.Stats.summary;
  quantiles : float * float * float;
  mean_work : float;
  mean_failures : float;
  mean_checkpoints : float;
}

let evaluate ?ckpt_sampler ~params ~horizon ~policy traces =
  let n = Array.length traces in
  if n = 0 then invalid_arg "Runner.evaluate: no traces";
  let prop = Numerics.Stats.acc_create () in
  let samples = Array.make n 0.0 in
  let work = ref 0.0 and fails = ref 0 and ckpts = ref 0 in
  Array.iteri
    (fun i trace ->
      let outcome = Engine.run ?ckpt_sampler ~params ~horizon ~policy trace in
      let p = Engine.proportion_of_work ~params ~horizon outcome in
      Numerics.Stats.acc_add prop p;
      samples.(i) <- p;
      work := !work +. outcome.Engine.work_saved;
      fails := !fails + outcome.Engine.failures;
      ckpts := !ckpts + outcome.Engine.checkpoints)
    traces;
  let fn = float_of_int n in
  {
    policy = policy.Policy.name;
    horizon;
    traces = n;
    proportion = Numerics.Stats.summarize prop;
    quantiles =
      ( Numerics.Stats.quantile samples ~q:0.05,
        Numerics.Stats.median samples,
        Numerics.Stats.quantile samples ~q:0.95 );
    mean_work = !work /. fn;
    mean_failures = float_of_int !fails /. fn;
    mean_checkpoints = float_of_int !ckpts /. fn;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "%-22s T=%-8g traces=%-5d work=%.4f (±%.4f) failures=%.2f ckpts=%.2f"
    r.policy r.horizon r.traces r.proportion.Numerics.Stats.mean
    r.proportion.Numerics.Stats.ci95_half_width r.mean_failures
    r.mean_checkpoints
