(** Multi-trace evaluation of a policy at one parameter point. *)

type result = {
  policy : string;
  horizon : float;
  traces : int;
  proportion : Numerics.Stats.summary;
      (** distribution of [work_saved / (horizon - c)] across traces *)
  quantiles : float * float * float;
      (** (p5, median, p95) of the proportion across traces *)
  mean_work : float;
  mean_failures : float;
  mean_checkpoints : float;
}

val evaluate :
  ?ckpt_sampler:(unit -> float) ->
  params:Fault.Params.t ->
  horizon:float ->
  policy:Policy.t ->
  Fault.Trace.t array ->
  result
(** Runs the policy on every trace and aggregates. Each trace is replayed
    from its beginning, so passing the same array to several policies
    compares them on identical failure scenarios. *)

val pp_result : Format.formatter -> result -> unit
