(* Tests for Numerics.Lambert: the defining identity w e^w = x on both
   real branches, known values, and the connection to the optimal
   checkpointing period. *)

module L = Numerics.Lambert

let close ?(eps = 1e-12) = Alcotest.(check (float eps))

let identity_holds branch x =
  let w = branch x in
  close ~eps:(1e-12 *. (1.0 +. abs_float x)) (Printf.sprintf "identity at %g" x)
    x (w *. exp w)

let test_w0_identity () =
  List.iter (identity_holds L.w0)
    [ -0.36; -0.2; -1e-6; 1e-6; 0.1; 0.5; 1.0; 2.718281828; 10.0; 1e3; 1e8 ]

let test_w0_known_values () =
  close "W0(0) = 0" 0.0 (L.w0 0.0);
  close "W0(e) = 1" 1.0 (L.w0 (exp 1.0));
  close "W0(-1/e) = -1" (-1.0) (L.w0 (-.exp (-1.0)));
  close ~eps:1e-12 "W0(1) = omega" 0.5671432904097838 (L.w0 1.0)

let test_wm1_identity () =
  List.iter (identity_holds L.wm1) [ -0.367; -0.3; -0.2; -0.1; -0.01; -1e-4 ]

let test_wm1_known_values () =
  close "Wm1(-1/e) = -1" (-1.0) (L.wm1 (-.exp (-1.0)));
  (* W_{-1}(-ln 2 / 2) = -2 ln 2 since (-2 ln 2) e^{-2 ln 2} = -ln2/2. *)
  close ~eps:1e-12 "Wm1(-ln2/2)" (-2.0 *. log 2.0) (L.wm1 (-.log 2.0 /. 2.0))

let test_branch_ordering () =
  (* On the common domain, W-1 <= -1 <= W0. *)
  List.iter
    (fun x ->
      Alcotest.(check bool) "w0 >= -1" true (L.w0 x >= -1.0 -. 1e-12);
      Alcotest.(check bool) "wm1 <= -1" true (L.wm1 x <= -1.0 +. 1e-12))
    [ -0.36; -0.2; -0.05 ]

let test_domain_errors () =
  Alcotest.check_raises "w0 below branch point"
    (Invalid_argument "Lambert.w0: x < -1/e") (fun () -> ignore (L.w0 (-1.0)));
  Alcotest.check_raises "wm1 above 0"
    (Invalid_argument "Lambert.wm1: domain is [-1/e, 0)") (fun () ->
      ignore (L.wm1 0.5))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"w0 identity on random positive inputs"
         ~count:1000
         QCheck.(float_range 1e-9 1e6)
         (fun x ->
           let w = L.w0 x in
           abs_float ((w *. exp w) -. x) <= 1e-9 *. (1.0 +. x)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"wm1 identity on its domain" ~count:1000
         QCheck.(float_range 1e-6 0.999)
         (fun t ->
           (* map t into (-1/e, 0) *)
           let x = -.exp (-1.0) *. t in
           let w = L.wm1 x in
           abs_float ((w *. exp w) -. x) <= 1e-9));
  ]

let () =
  Alcotest.run "lambert"
    [
      ( "w0",
        [
          Alcotest.test_case "identity" `Quick test_w0_identity;
          Alcotest.test_case "known values" `Quick test_w0_known_values;
        ] );
      ( "wm1",
        [
          Alcotest.test_case "identity" `Quick test_wm1_identity;
          Alcotest.test_case "known values" `Quick test_wm1_known_values;
        ] );
      ( "branches",
        [
          Alcotest.test_case "ordering" `Quick test_branch_ordering;
          Alcotest.test_case "domain errors" `Quick test_domain_errors;
        ] );
      ("properties", qcheck_tests);
    ]
