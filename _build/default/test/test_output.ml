(* Tests for the output substrate: tables, CSV, ASCII plots. *)

module Table = Output.Table
module Csv = Output.Csv
module Plot = Output.Ascii_plot

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Tables *)

let test_table_golden () =
  let t =
    Table.create
      ~columns:[ ("name", Table.Left); ("value", Table.Right) ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "23.5" ];
  let expected =
    "name   value\n------------\nalpha      1\nb       23.5"
  in
  Alcotest.(check string) "render" expected (Table.render t)

let test_table_padding_short_rows () =
  let t = Table.create ~columns:[ ("a", Table.Left); ("b", Table.Left) ] in
  Table.add_row t [ "only" ];
  Alcotest.(check bool) "renders without error" true
    (String.length (Table.render t) > 0)

let test_table_too_many_cells () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: more cells than columns")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_empty_columns () =
  Alcotest.check_raises "no columns" (Invalid_argument "Table.create: no columns")
    (fun () -> ignore (Table.create ~columns:[]))

let test_table_separator_and_floats () =
  let t = Table.create ~columns:[ ("k", Table.Left); ("v", Table.Right) ] in
  let t = Table.add_float_row t "pi" [ 3.14159 ] in
  Table.add_separator t;
  let t = Table.add_float_row t "e" [ 2.71828 ] in
  let rendered = Table.render t in
  Alcotest.(check bool) "has rule rows" true
    (List.length (String.split_on_char '\n' rendered) = 5);
  Alcotest.(check bool) "floats formatted" true (contains rendered "3.142")

let test_table_utf8_width () =
  (* Multi-byte glyphs must count as one column. *)
  let t = Table.create ~columns:[ ("λ", Table.Right); ("x", Table.Right) ] in
  Table.add_row t [ "±1"; "2" ];
  let lines = String.split_on_char '\n' (Table.render t) in
  match lines with
  | header :: _ ->
      Alcotest.(check bool) "header not over-padded" true
        (String.length header < 20)
  | [] -> Alcotest.fail "no output"

(* CSV *)

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape "a\nb")

let test_csv_row () =
  Alcotest.(check string) "row" "a,\"b,c\",d" (Csv.row_to_string [ "a"; "b,c"; "d" ])

let test_csv_write_read_back () =
  let path = Filename.temp_file "fixedlen_test" ".csv" in
  Csv.write ~path ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "4,5" ] ];
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check (list string)) "file content"
    [ "x,y"; "1,2"; "3,\"4,5\"" ]
    (List.rev !lines)

let test_csv_writer_arity () =
  let path = Filename.temp_file "fixedlen_test" ".csv" in
  let w = Csv.open_out ~path ~header:[ "a"; "b" ] in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Csv.write_row: cell count differs from header")
    (fun () -> Csv.write_row w [ "only" ]);
  Csv.close w;
  Sys.remove path

let test_csv_floats_roundtrip () =
  let path = Filename.temp_file "fixedlen_test" ".csv" in
  let w = Csv.open_out ~path ~header:[ "label"; "v" ] in
  let x = 0.1 +. 0.2 in
  Csv.write_floats w ~label:[ "row" ] [ x ];
  Csv.close w;
  let ic = open_in path in
  ignore (input_line ic);
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  match String.split_on_char ',' line with
  | [ _; v ] ->
      Alcotest.(check (float 0.0)) "exact round-trip" x (float_of_string v)
  | _ -> Alcotest.fail "unexpected row shape"

(* ASCII plots *)

let test_plot_contains_glyphs_and_labels () =
  let s =
    Plot.render ~title:"demo"
      [
        { Plot.label = "rising"; points = [ (0.0, 0.0); (1.0, 1.0); (2.0, 2.0) ] };
        { Plot.label = "falling"; points = [ (0.0, 2.0); (2.0, 0.0) ] };
      ]
  in
  Alcotest.(check bool) "title" true (String.length s > 0);
  let has c = String.contains s c in
  Alcotest.(check bool) "first glyph" true (has '*');
  Alcotest.(check bool) "second glyph" true (has '+');
  Alcotest.(check bool) "legend entries" true
    (String.split_on_char '\n' s
    |> List.exists (fun l -> l = "  * rising"))

let test_plot_no_data () =
  let s = Plot.render ~title:"empty" [ { Plot.label = "nothing"; points = [] } ] in
  Alcotest.(check bool) "no-data marker" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "  (no data)"))

let test_plot_clamps_outliers () =
  let config = { Plot.default_config with y_min = Some 0.0; y_max = Some 1.0 } in
  let s =
    Plot.render ~config ~title:"clamped"
      [ { Plot.label = "wild"; points = [ (0.0, -5.0); (1.0, 10.0) ] } ]
  in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_plot_rejects_tiny_area () =
  let config = { Plot.default_config with width = 2; height = 2 } in
  (match
     Plot.render ~config ~title:"tiny"
       [ { Plot.label = "x"; points = [ (0.0, 0.0) ] } ]
   with
  | _ -> Alcotest.fail "tiny area accepted"
  | exception Invalid_argument _ -> ())

let test_plot_nan_points_skipped () =
  let s =
    Plot.render ~title:"nan"
      [ { Plot.label = "mixed"; points = [ (0.0, nan); (1.0, 1.0); (2.0, 1.5) ] } ]
  in
  Alcotest.(check bool) "renders with finite subset" true (String.contains s '*')

let () =
  Alcotest.run "output"
    [
      ( "table",
        [
          Alcotest.test_case "golden render" `Quick test_table_golden;
          Alcotest.test_case "short rows padded" `Quick test_table_padding_short_rows;
          Alcotest.test_case "too many cells" `Quick test_table_too_many_cells;
          Alcotest.test_case "no columns" `Quick test_table_empty_columns;
          Alcotest.test_case "separator and floats" `Quick
            test_table_separator_and_floats;
          Alcotest.test_case "utf8 width" `Quick test_table_utf8_width;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escape;
          Alcotest.test_case "row building" `Quick test_csv_row;
          Alcotest.test_case "write and read back" `Quick test_csv_write_read_back;
          Alcotest.test_case "writer arity" `Quick test_csv_writer_arity;
          Alcotest.test_case "float round-trip" `Quick test_csv_floats_roundtrip;
        ] );
      ( "ascii plot",
        [
          Alcotest.test_case "glyphs and legend" `Quick
            test_plot_contains_glyphs_and_labels;
          Alcotest.test_case "no data" `Quick test_plot_no_data;
          Alcotest.test_case "outliers clamped" `Quick test_plot_clamps_outliers;
          Alcotest.test_case "tiny area rejected" `Quick test_plot_rejects_tiny_area;
          Alcotest.test_case "nan skipped" `Quick test_plot_nan_points_skipped;
        ] );
    ]
