(* End-to-end tests for the experiments library: spec registry, a small
   sweep through the runner, report rendering, CSV export and the
   qualitative checks. *)

module Spec = Experiments.Spec
module Figures = Experiments.Figures
module Runner = Experiments.Runner
module Report = Experiments.Report

let tiny_spec () =
  match Figures.find "fig3" with
  | None -> Alcotest.fail "fig3 missing"
  | Some spec ->
      {
        (Figures.scale ~n_traces:60 ~t_step:200.0 ~t_max:1200.0 spec) with
        Spec.cs = [ 80.0 ];
      }

let run_tiny =
  (* One shared run for all the report tests (the sweep is the slow part). *)
  lazy (Runner.run (tiny_spec ()))

(* registry *)

let test_registry_complete () =
  (* All eleven paper figures plus the three extensions. *)
  List.iter
    (fun id ->
      if Figures.find id = None then Alcotest.failf "missing figure %s" id)
    [
      "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10";
      "fig11"; "fig12"; "ext-weibull"; "ext-lognormal"; "ext-stochastic-ckpt";
    ];
  Alcotest.(check bool) "unknown id" true (Figures.find "fig99" = None)

let test_registry_parameters_match_paper () =
  let get id = Option.get (Figures.find id) in
  let fig2 = get "fig2" in
  Alcotest.(check (float 0.0)) "fig2 lambda" 0.001 fig2.Spec.lambda;
  Alcotest.(check (float 0.0)) "fig2 d" 0.0 fig2.Spec.d;
  Alcotest.(check int) "fig2 five costs" 5 (List.length fig2.Spec.cs);
  Alcotest.(check int) "fig2 traces" 1000 fig2.Spec.n_traces;
  let fig9 = get "fig9" in
  Alcotest.(check (float 0.0)) "fig9 lambda" 0.01 fig9.Spec.lambda;
  Alcotest.(check (float 0.0)) "fig9 d" 5.0 fig9.Spec.d;
  let fig5 = get "fig5" in
  Alcotest.(check (float 0.0)) "fig5 short horizon" 100.0 fig5.Spec.t_max;
  Alcotest.(check int) "fig5 has 5 quanta + 3 references" 8
    (List.length fig5.Spec.strategies)

let test_strategy_names () =
  Alcotest.(check string) "canonical DP name" "DynamicProgramming"
    (Spec.strategy_name (Spec.Dynamic_programming { quantum = 1.0 }));
  Alcotest.(check string) "quantum variant" "DP(u=0.5)"
    (Spec.strategy_name (Spec.Dynamic_programming { quantum = 0.5 }));
  Alcotest.(check string) "young daly" "YoungDaly" (Spec.strategy_name Spec.Young_daly)

let test_t_grid () =
  let spec = Figures.scale ~t_step:50.0 ~t_max:300.0 (Option.get (Figures.find "fig2")) in
  let grid = Spec.t_grid spec ~c:100.0 in
  Alcotest.(check (array (float 1e-9))) "grid starts past c"
    [| 150.0; 200.0; 250.0; 300.0 |] grid

let test_scale_validation () =
  let spec = Option.get (Figures.find "fig2") in
  (match Figures.scale ~n_traces:0 spec with
  | _ -> Alcotest.fail "n_traces 0 accepted"
  | exception Invalid_argument _ -> ());
  (match Figures.scale ~t_step:(-1.0) spec with
  | _ -> Alcotest.fail "negative step accepted"
  | exception Invalid_argument _ -> ())

let test_trace_dist_calibration () =
  let spec = Option.get (Figures.find "ext-weibull") in
  Alcotest.(check (float 1e-6)) "weibull MTBF = 1/lambda" 1000.0
    (Fault.Trace.dist_mean (Spec.trace_dist spec));
  let base = Option.get (Figures.find "fig2") in
  Alcotest.(check (float 1e-9)) "exp MTBF" 1000.0
    (Fault.Trace.dist_mean (Spec.trace_dist base))

(* runner *)

let test_run_produces_all_curves () =
  let result = Lazy.force run_tiny in
  Alcotest.(check int) "4 strategies x 1 cost" 4
    (List.length result.Runner.curves);
  List.iter
    (fun curve ->
      Alcotest.(check int)
        (curve.Runner.name ^ " grid points")
        5
        (Array.length curve.Runner.points))
    result.Runner.curves

let test_run_points_in_unit_interval () =
  let result = Lazy.force run_tiny in
  List.iter
    (fun curve ->
      Array.iter
        (fun p ->
          if p.Runner.mean < 0.0 || p.Runner.mean > 1.0 then
            Alcotest.failf "%s: proportion %g outside [0,1]" curve.Runner.name
              p.Runner.mean)
        curve.Runner.points)
    result.Runner.curves

let test_run_is_deterministic () =
  let r1 = Lazy.force run_tiny in
  let r2 = Runner.run (tiny_spec ()) in
  List.iter2
    (fun (c1 : Runner.curve) (c2 : Runner.curve) ->
      Array.iteri
        (fun i p ->
          Alcotest.(check (float 1e-12))
            (Printf.sprintf "%s point %d" c1.Runner.name i)
            p.Runner.mean c2.Runner.points.(i).Runner.mean)
        c1.Runner.points)
    r1.Runner.curves r2.Runner.curves

let test_parallel_matches_own_pool () =
  (* The runner through an explicit pool must produce identical numbers. *)
  let r1 = Lazy.force run_tiny in
  let r2 =
    Parallel.Pool.with_pool ~domains:2 (fun pool ->
        Runner.run ~pool (tiny_spec ()))
  in
  List.iter2
    (fun (c1 : Runner.curve) (c2 : Runner.curve) ->
      Array.iteri
        (fun i p ->
          Alcotest.(check (float 1e-12))
            (Printf.sprintf "%s point %d" c1.Runner.name i)
            p.Runner.mean c2.Runner.points.(i).Runner.mean)
        c1.Runner.points)
    r1.Runner.curves r2.Runner.curves

let test_curve_for () =
  let result = Lazy.force run_tiny in
  Alcotest.(check bool) "finds YD" true
    (Runner.curve_for result ~c:80.0 ~strategy:Spec.Young_daly <> None);
  Alcotest.(check bool) "missing cost" true
    (Runner.curve_for result ~c:42.0 ~strategy:Spec.Young_daly = None)

(* report *)

let test_csv_export () =
  let result = Lazy.force run_tiny in
  let path = Filename.temp_file "fixedlen_fig" ".csv" in
  Report.to_csv result ~path;
  let ic = open_in path in
  let header = input_line ic in
  let count = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr count
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header"
    "figure,c,strategy,t,mean_proportion,ci95,mean_failures,mean_checkpoints"
    header;
  Alcotest.(check int) "one row per point" (4 * 5) !count

let test_plots_render () =
  let result = Lazy.force run_tiny in
  let s = Report.plots result in
  Alcotest.(check bool) "mentions the figure" true
    (String.length s > 200 && String.contains s '*')

let test_summary_table () =
  let result = Lazy.force run_tiny in
  let rendered = Output.Table.render (Report.summary_table result) in
  List.iter
    (fun name ->
      if
        not
          (String.split_on_char '\n' rendered
          |> List.exists (fun line ->
                 String.length line >= String.length name
                 && String.trim line <> ""
                 &&
                 let rec contains i =
                   i + String.length name <= String.length line
                   && (String.sub line i (String.length name) = name
                      || contains (i + 1))
                 in
                 contains 0))
      then Alcotest.failf "summary misses %s" name)
    [ "YoungDaly"; "FirstOrder"; "NumericalOptimum"; "DynamicProgramming" ]

let test_qualitative_checks_present () =
  let result = Lazy.force run_tiny in
  let checks = Report.qualitative_checks result in
  Alcotest.(check bool) "has checks" true (List.length checks >= 3);
  (* On fig3's parameters the paper's ordering claims must hold even on a
     small sample. *)
  List.iter
    (fun check ->
      if not check.Report.passed then
        Alcotest.failf "check failed: %s (%s)" check.Report.label
          check.Report.detail)
    checks

let () =
  Alcotest.run "experiments"
    [
      ( "registry",
        [
          Alcotest.test_case "all figures present" `Quick test_registry_complete;
          Alcotest.test_case "parameters match the paper" `Quick
            test_registry_parameters_match_paper;
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
          Alcotest.test_case "reservation grid" `Quick test_t_grid;
          Alcotest.test_case "scale validation" `Quick test_scale_validation;
          Alcotest.test_case "trace calibration" `Quick test_trace_dist_calibration;
        ] );
      ( "runner",
        [
          Alcotest.test_case "all curves" `Slow test_run_produces_all_curves;
          Alcotest.test_case "proportions in [0,1]" `Slow
            test_run_points_in_unit_interval;
          Alcotest.test_case "deterministic" `Slow test_run_is_deterministic;
          Alcotest.test_case "pool-invariant" `Slow test_parallel_matches_own_pool;
          Alcotest.test_case "curve lookup" `Slow test_curve_for;
        ] );
      ( "report",
        [
          Alcotest.test_case "csv export" `Slow test_csv_export;
          Alcotest.test_case "plots render" `Slow test_plots_render;
          Alcotest.test_case "summary table" `Slow test_summary_table;
          Alcotest.test_case "qualitative checks" `Slow
            test_qualitative_checks_present;
        ] );
    ]
