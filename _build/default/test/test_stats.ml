(* Tests for Numerics.Stats. *)

module S = Numerics.Stats

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let feed xs =
  let acc = S.acc_create () in
  Array.iter (S.acc_add acc) xs;
  acc

let test_empty () =
  let acc = S.acc_create () in
  Alcotest.(check int) "count" 0 (S.acc_count acc);
  Alcotest.(check bool) "mean nan" true (Float.is_nan (S.acc_mean acc))

let test_single () =
  let acc = feed [| 42.0 |] in
  close "mean" 42.0 (S.acc_mean acc);
  Alcotest.(check bool) "variance nan" true (Float.is_nan (S.acc_variance acc));
  close "min" 42.0 (S.acc_min acc);
  close "max" 42.0 (S.acc_max acc)

let test_known_moments () =
  let acc = feed [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  close "mean" 5.0 (S.acc_mean acc);
  (* sample variance with n-1: sum sq dev = 32, / 7 *)
  close "variance" (32.0 /. 7.0) (S.acc_variance acc);
  close "stddev" (sqrt (32.0 /. 7.0)) (S.acc_stddev acc)

let test_welford_stability () =
  (* Large offset: the naive sum-of-squares formula would lose all
     precision; Welford must not. *)
  let offset = 1e9 in
  let xs = Array.init 1000 (fun i -> offset +. float_of_int (i mod 10)) in
  let acc = feed xs in
  close ~eps:1e-6 "variance at large offset" (S.variance (Array.map (fun x -> x -. offset) xs))
    (S.acc_variance acc)

let test_merge_equals_sequential () =
  let xs = Array.init 100 (fun i -> sin (float_of_int i)) in
  let ys = Array.init 57 (fun i -> cos (float_of_int i) *. 3.0) in
  let merged = S.acc_merge (feed xs) (feed ys) in
  let all = feed (Array.append xs ys) in
  close ~eps:1e-12 "mean" (S.acc_mean all) (S.acc_mean merged);
  close ~eps:1e-10 "variance" (S.acc_variance all) (S.acc_variance merged);
  Alcotest.(check int) "count" (S.acc_count all) (S.acc_count merged);
  close "min" (S.acc_min all) (S.acc_min merged);
  close "max" (S.acc_max all) (S.acc_max merged)

let test_merge_with_empty () =
  let xs = feed [| 1.0; 2.0; 3.0 |] in
  let e = S.acc_create () in
  close "left empty" 2.0 (S.acc_mean (S.acc_merge e xs));
  close "right empty" 2.0 (S.acc_mean (S.acc_merge xs e))

let test_summary () =
  let s = S.of_array (Array.init 100 (fun i -> float_of_int i)) in
  Alcotest.(check int) "count" 100 s.S.count;
  close "mean" 49.5 s.S.mean;
  close "min" 0.0 s.S.min;
  close "max" 99.0 s.S.max;
  close ~eps:1e-9 "ci95" (1.96 *. s.S.stddev /. 10.0) s.S.ci95_half_width

let test_quantiles () =
  let xs = [| 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 |] in
  close "q0 = min" 1.0 (S.quantile xs ~q:0.0);
  close "q1 = max" 9.0 (S.quantile xs ~q:1.0);
  close "median interpolates" 3.5 (S.median xs);
  (* xs must be untouched *)
  Alcotest.(check (float 0.0)) "input unmodified" 3.0 xs.(0)

let test_quantile_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.quantile: empty array")
    (fun () -> ignore (S.quantile [||] ~q:0.5));
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Stats.quantile: q outside [0, 1]") (fun () ->
      ignore (S.quantile [| 1.0 |] ~q:1.5))

let qcheck_tests =
  let arr = QCheck.(array_of_size (Gen.int_range 2 200) (float_range (-100.0) 100.0)) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"mean within [min, max]" ~count:500 arr (fun xs ->
           let s = S.of_array xs in
           s.S.mean >= s.S.min -. 1e-9 && s.S.mean <= s.S.max +. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"variance nonnegative" ~count:500 arr (fun xs ->
           S.variance xs >= -1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"quantile is monotone in q" ~count:500 arr
         (fun xs ->
           S.quantile xs ~q:0.25 <= S.quantile xs ~q:0.75 +. 1e-12));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"merge is commutative" ~count:300
         QCheck.(pair arr arr)
         (fun (xs, ys) ->
           let m1 = S.acc_merge (feed xs) (feed ys) in
           let m2 = S.acc_merge (feed ys) (feed xs) in
           abs_float (S.acc_mean m1 -. S.acc_mean m2) < 1e-9
           && abs_float (S.acc_variance m1 -. S.acc_variance m2) < 1e-6));
  ]

let () =
  Alcotest.run "stats"
    [
      ( "accumulator",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single" `Quick test_single;
          Alcotest.test_case "known moments" `Quick test_known_moments;
          Alcotest.test_case "numerical stability" `Quick test_welford_stability;
        ] );
      ( "merge",
        [
          Alcotest.test_case "equals sequential" `Quick test_merge_equals_sequential;
          Alcotest.test_case "with empty" `Quick test_merge_with_empty;
        ] );
      ( "summaries",
        [
          Alcotest.test_case "summary fields" `Quick test_summary;
          Alcotest.test_case "quantiles" `Quick test_quantiles;
          Alcotest.test_case "quantile errors" `Quick test_quantile_errors;
        ] );
      ("properties", qcheck_tests);
    ]
