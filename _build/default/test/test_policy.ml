(* Tests for Sim.Policy: plan validity, the shapes of the generic
   policies, and property-based validation across random parameters. *)

module P = Sim.Policy

let params = Fault.Params.make ~lambda:0.001 ~c:10.0 ~r:8.0 ~d:2.0

let close ?(eps = 1e-9) = Alcotest.(check (float eps))
let offsets = Alcotest.(list (float 1e-9))

let plan policy ~tleft ~recovering = policy.P.plan ~tleft ~recovering

let test_validate_accepts () =
  P.validate_plan ~params ~tleft:100.0 ~recovering:false [ 30.0; 60.0; 100.0 ];
  P.validate_plan ~params ~tleft:100.0 ~recovering:true [ 18.0; 100.0 ];
  P.validate_plan ~params ~tleft:100.0 ~recovering:false []

let test_validate_rejects () =
  let expect_invalid name p ~recovering =
    match P.validate_plan ~params ~tleft:100.0 ~recovering p with
    | () -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "beyond tleft" [ 120.0 ] ~recovering:false;
  expect_invalid "first before C" [ 5.0; 100.0 ] ~recovering:false;
  expect_invalid "first before R+C" [ 12.0; 100.0 ] ~recovering:true;
  expect_invalid "segment shorter than C" [ 30.0; 35.0 ] ~recovering:false;
  expect_invalid "not increasing" [ 50.0; 50.0 ] ~recovering:false

let test_no_checkpoint () =
  Alcotest.(check offsets) "always empty" []
    (plan P.no_checkpoint ~tleft:1000.0 ~recovering:false)

let test_single_final () =
  let p = P.single_final ~params in
  Alcotest.(check offsets) "checkpoint at end" [ 80.0 ]
    (plan p ~tleft:80.0 ~recovering:false);
  Alcotest.(check offsets) "too short" [] (plan p ~tleft:9.0 ~recovering:false);
  Alcotest.(check offsets) "too short with recovery" []
    (plan p ~tleft:17.0 ~recovering:true);
  Alcotest.(check offsets) "fits with recovery" [ 18.5 ]
    (plan p ~tleft:18.5 ~recovering:true)

let test_single_at () =
  let p = P.single_at ~params ~offset_from_end:5.0 in
  Alcotest.(check offsets) "shifted" [ 95.0 ] (plan p ~tleft:100.0 ~recovering:false);
  (* clamped so the checkpoint still fits *)
  Alcotest.(check offsets) "clamped" [ 10.0 ] (plan p ~tleft:12.0 ~recovering:false)

let test_equal_segments () =
  let p = P.equal_segments ~params ~count:4 in
  Alcotest.(check offsets) "four equal" [ 25.0; 50.0; 75.0; 100.0 ]
    (plan p ~tleft:100.0 ~recovering:false);
  (* with recovery, segments split tleft - r *)
  Alcotest.(check offsets) "recovery shifts" [ 31.0; 54.0; 77.0; 100.0 ]
    (plan p ~tleft:100.0 ~recovering:true);
  (* degrade when fewer checkpoints fit *)
  Alcotest.(check offsets) "degrades to fit" [ 12.5; 25.0 ]
    (plan p ~tleft:25.0 ~recovering:false)

let test_two_checkpoints () =
  let p = P.two_checkpoints ~params ~alpha:0.3 in
  Alcotest.(check offsets) "alpha split" [ 30.0; 100.0 ]
    (plan p ~tleft:100.0 ~recovering:false);
  (* alpha clamped to keep first segment >= C *)
  let p_small = P.two_checkpoints ~params ~alpha:0.01 in
  Alcotest.(check offsets) "clamped low" [ 10.0; 100.0 ]
    (plan p_small ~tleft:100.0 ~recovering:false);
  (* degrade to single checkpoint when two do not fit *)
  Alcotest.(check offsets) "degrades" [ 15.0 ]
    (plan p ~tleft:15.0 ~recovering:false)

let test_periodic () =
  let p = P.periodic ~params ~period:20.0 in
  (* stride 30; remaining after 2 checkpoints: 100-60=40 < 30+10 -> final
     checkpoint at the end. *)
  Alcotest.(check offsets) "periodic with final" [ 30.0; 60.0; 100.0 ]
    (plan p ~tleft:100.0 ~recovering:false);
  (* short reservation: only the final checkpoint *)
  Alcotest.(check offsets) "short" [ 35.0 ] (plan p ~tleft:35.0 ~recovering:false)

let test_max_work () =
  close "fresh" 90.0 (P.max_work ~params ~tleft:100.0 ~recovering:false);
  close "recovering" 82.0 (P.max_work ~params ~tleft:100.0 ~recovering:true);
  close "negative clamped" 0.0 (P.max_work ~params ~tleft:5.0 ~recovering:false)

(* Property tests: every generic policy must emit valid plans for any
   feasible state. *)

let param_gen =
  QCheck.Gen.(
    let* lambda = float_range 1e-5 0.05 in
    let* c = float_range 0.5 50.0 in
    let* r = float_range 0.0 50.0 in
    let* d = float_range 0.0 10.0 in
    return (Fault.Params.make ~lambda ~c ~r ~d))

let state_gen =
  QCheck.Gen.(
    let* params = param_gen in
    let* tleft = float_range 0.1 3000.0 in
    let* recovering = bool in
    return (params, tleft, recovering))

let state_arb =
  QCheck.make state_gen ~print:(fun (p, tleft, rec_) ->
      Printf.sprintf "%s tleft=%g recovering=%b" (Fault.Params.to_string p)
        tleft rec_)

let policy_emits_valid_plans name make_policy =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name ~count:2000 state_arb
       (fun (params, tleft, recovering) ->
         let policy = make_policy params in
         let plan = policy.P.plan ~tleft ~recovering in
         match P.validate_plan ~params ~tleft ~recovering plan with
         | () -> true
         | exception Invalid_argument msg ->
             QCheck.Test.fail_reportf "invalid plan: %s" msg))

let qcheck_tests =
  [
    policy_emits_valid_plans "single_final plans are valid" (fun params ->
        P.single_final ~params);
    policy_emits_valid_plans "single_at plans are valid" (fun params ->
        P.single_at ~params ~offset_from_end:(params.Fault.Params.c *. 0.7));
    policy_emits_valid_plans "equal_segments plans are valid" (fun params ->
        P.equal_segments ~params ~count:5);
    policy_emits_valid_plans "two_checkpoints plans are valid" (fun params ->
        P.two_checkpoints ~params ~alpha:0.37);
    policy_emits_valid_plans "periodic plans are valid" (fun params ->
        P.periodic ~params ~period:(3.0 *. params.Fault.Params.c));
  ]

let () =
  Alcotest.run "policy"
    [
      ( "validation",
        [
          Alcotest.test_case "accepts valid plans" `Quick test_validate_accepts;
          Alcotest.test_case "rejects invalid plans" `Quick test_validate_rejects;
        ] );
      ( "generic policies",
        [
          Alcotest.test_case "no_checkpoint" `Quick test_no_checkpoint;
          Alcotest.test_case "single_final" `Quick test_single_final;
          Alcotest.test_case "single_at" `Quick test_single_at;
          Alcotest.test_case "equal_segments" `Quick test_equal_segments;
          Alcotest.test_case "two_checkpoints" `Quick test_two_checkpoints;
          Alcotest.test_case "periodic" `Quick test_periodic;
          Alcotest.test_case "max_work" `Quick test_max_work;
        ] );
      ("properties", qcheck_tests);
    ]
