(* Tests for Sim.Series (reservation series) and the engine's wall-clock
   breakdown. *)

module S = Sim.Series
module E = Sim.Engine
module P = Sim.Policy

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let params = Fault.Params.make ~lambda:0.001 ~c:10.0 ~r:8.0 ~d:5.0

(* --- series --- *)

let quiet_trace_for _ = Fault.Trace.of_iats [| 1.0e9 |]

let test_series_failure_free_count () =
  (* Reservation 100 with a single final checkpoint commits 90 per
     reservation: 500 work needs ceil(500/90) = 6 reservations. *)
  let outcome =
    S.run ~params ~policy:(P.single_final ~params) ~reservation:100.0
      ~target_work:500.0 ~trace_for:quiet_trace_for ()
  in
  Alcotest.(check int) "6 reservations" 6 outcome.S.reservations;
  Alcotest.(check bool) "completed" true outcome.S.completed;
  close "540 work" 540.0 outcome.S.total_work;
  Alcotest.(check int) "no failures" 0 outcome.S.failures

let test_series_cap () =
  let outcome =
    S.run ~max_reservations:7 ~params ~policy:P.no_checkpoint
      ~reservation:100.0 ~target_work:10.0 ~trace_for:quiet_trace_for ()
  in
  Alcotest.(check bool) "not completed" false outcome.S.completed;
  Alcotest.(check int) "hit the cap" 7 outcome.S.reservations;
  close "no work" 0.0 outcome.S.total_work

let test_series_with_failures () =
  (* Each reservation sees a failure at exposed time 50: with a single
     final checkpoint, replanning saves 100-50-5-8-10 = 27 per
     reservation. *)
  let trace_for _ = Fault.Trace.of_iats [| 50.0; 1.0e9 |] in
  let outcome =
    S.run ~params ~policy:(P.single_final ~params) ~reservation:100.0
      ~target_work:54.0 ~trace_for ()
  in
  Alcotest.(check int) "two reservations" 2 outcome.S.reservations;
  Alcotest.(check int) "two failures" 2 outcome.S.failures;
  close "54 work" 54.0 outcome.S.total_work

let test_series_validation () =
  (match
     S.run ~params ~policy:P.no_checkpoint ~reservation:100.0 ~target_work:0.0
       ~trace_for:quiet_trace_for ()
   with
  | _ -> Alcotest.fail "zero target accepted"
  | exception Invalid_argument _ -> ())

let test_evaluate_deterministic () =
  let policy = P.single_final ~params in
  let s1 =
    S.evaluate ~repetitions:20 ~params ~policy ~reservation:150.0
      ~target_work:800.0 ~seed:5L ()
  in
  let s2 =
    S.evaluate ~repetitions:20 ~params ~policy ~reservation:150.0
      ~target_work:800.0 ~seed:5L ()
  in
  close "same mean" s1.S.reservations.Numerics.Stats.mean
    s2.S.reservations.Numerics.Stats.mean;
  Alcotest.(check int) "no incompletes" 0 s1.S.incomplete;
  close "billed time consistent"
    (s1.S.reservations.Numerics.Stats.mean *. 150.0)
    s1.S.billed_time_mean

let test_evaluate_better_policy_fewer_reservations () =
  (* Against real failures, the threshold policy needs no more
     reservations than never checkpointing until the end... compare
     single_final vs equal_segments(3) in a failure-heavy setting. *)
  let params = Fault.Params.paper ~lambda:0.01 ~c:5.0 ~d:0.0 in
  let run policy =
    (S.evaluate ~repetitions:60 ~params ~policy ~reservation:200.0
       ~target_work:1500.0 ~seed:11L ())
      .S.reservations.Numerics.Stats.mean
  in
  let single = run (P.single_final ~params) in
  let split = run (P.equal_segments ~params ~count:3) in
  Alcotest.(check bool)
    (Printf.sprintf "split %.1f <= single %.1f" split single)
    true (split <= single)

(* --- engine breakdown --- *)

let breakdown_sums ~horizon (b : E.breakdown) =
  b.E.working +. b.E.checkpointing +. b.E.recovering +. b.E.down +. b.E.lost
  +. b.E.unused
  |> close ~eps:1e-6 "components sum to horizon" horizon

let test_breakdown_failure_free () =
  let outcome =
    E.run ~params ~horizon:100.0 ~policy:(P.equal_segments ~params ~count:2)
      (Fault.Trace.of_iats [| 1.0e9 |])
  in
  let b = outcome.E.breakdown in
  close "working" 80.0 b.E.working;
  close "checkpointing" 20.0 b.E.checkpointing;
  close "recovering" 0.0 b.E.recovering;
  close "down" 0.0 b.E.down;
  close "lost" 0.0 b.E.lost;
  close "unused" 0.0 b.E.unused;
  breakdown_sums ~horizon:100.0 b

let test_breakdown_with_failure () =
  (* Single final checkpoint on 100, failure at 50: lost 50, down 5,
     recovery 8, then work 27 + checkpoint 10 completes at 100. *)
  let outcome =
    E.run ~params ~horizon:100.0 ~policy:(P.single_final ~params)
      (Fault.Trace.of_iats [| 50.0; 1.0e9 |])
  in
  let b = outcome.E.breakdown in
  close "lost" 50.0 b.E.lost;
  close "down" 5.0 b.E.down;
  close "recovering" 8.0 b.E.recovering;
  close "working" 27.0 b.E.working;
  close "checkpointing" 10.0 b.E.checkpointing;
  close "unused" 0.0 b.E.unused;
  breakdown_sums ~horizon:100.0 b

let test_breakdown_unused_tail () =
  (* Hammering failures: nothing can be saved; everything is lost,
     downtime, or an unusable tail. *)
  let outcome =
    E.run ~params ~horizon:100.0 ~policy:(P.single_final ~params)
      (Fault.Trace.of_iats (Array.make 50 3.0))
  in
  let b = outcome.E.breakdown in
  close "no work" 0.0 b.E.working;
  Alcotest.(check bool) "substantial loss" true (b.E.lost > 0.0);
  Alcotest.(check bool) "some tail" true (b.E.unused > 0.0);
  breakdown_sums ~horizon:100.0 b

let test_breakdown_downtime_clipped () =
  (* Failure so close to the end that the downtime overruns the horizon:
     the breakdown must still sum exactly. *)
  let outcome =
    E.run ~params ~horizon:100.0 ~policy:(P.single_final ~params)
      (Fault.Trace.of_iats [| 98.0; 1.0e9 |])
  in
  breakdown_sums ~horizon:100.0 outcome.E.breakdown

let test_breakdown_random_invariant () =
  let traces =
    Fault.Trace.batch
      ~dist:(Fault.Trace.Exponential { rate = 0.005 })
      ~seed:77L ~n:500
  in
  Array.iter
    (fun trace ->
      let outcome =
        E.run ~params ~horizon:321.0
          ~policy:(P.equal_segments ~params ~count:3)
          trace
      in
      breakdown_sums ~horizon:321.0 outcome.E.breakdown;
      let b = outcome.E.breakdown in
      List.iter
        (fun (name, v) ->
          if v < -1e-9 then Alcotest.failf "negative %s: %g" name v)
        [
          ("working", b.E.working); ("checkpointing", b.E.checkpointing);
          ("recovering", b.E.recovering); ("down", b.E.down);
          ("lost", b.E.lost); ("unused", b.E.unused);
        ])
    traces

let () =
  Alcotest.run "series"
    [
      ( "series",
        [
          Alcotest.test_case "failure-free count" `Quick
            test_series_failure_free_count;
          Alcotest.test_case "reservation cap" `Quick test_series_cap;
          Alcotest.test_case "with failures" `Quick test_series_with_failures;
          Alcotest.test_case "validation" `Quick test_series_validation;
          Alcotest.test_case "evaluate is deterministic" `Quick
            test_evaluate_deterministic;
          Alcotest.test_case "splitting helps under failures" `Slow
            test_evaluate_better_policy_fewer_reservations;
        ] );
      ( "breakdown",
        [
          Alcotest.test_case "failure-free" `Quick test_breakdown_failure_free;
          Alcotest.test_case "with failure" `Quick test_breakdown_with_failure;
          Alcotest.test_case "unusable tail" `Quick test_breakdown_unused_tail;
          Alcotest.test_case "downtime clipped" `Quick
            test_breakdown_downtime_clipped;
          Alcotest.test_case "random invariant" `Quick
            test_breakdown_random_invariant;
        ] );
    ]
