(* Tests for Core.Slack: the policy transformer, the Erlang CDF, and the
   headline claim — slack recovers the DP's lead under stochastic
   checkpoint durations. *)

module S = Core.Slack
module P = Fault.Params

let close ?(eps = 1e-9) = Alcotest.(check (float eps))
let offsets = Alcotest.(list (float 1e-9))

let params = P.paper ~lambda:0.002 ~c:20.0 ~d:0.0

(* with_slack *)

let test_with_slack_shifts_final () =
  let base = Sim.Policy.equal_segments ~params ~count:3 in
  let slacked = S.with_slack ~params ~slack:7.0 base in
  Alcotest.(check offsets) "only the final checkpoint moves"
    [ 100.0; 200.0; 293.0 ]
    (slacked.Sim.Policy.plan ~tleft:300.0 ~recovering:false)

let test_with_slack_zero_identity () =
  let base = Core.Policies.young_daly ~params in
  let slacked = S.with_slack ~params ~slack:0.0 base in
  Alcotest.(check offsets) "identity"
    (base.Sim.Policy.plan ~tleft:777.0 ~recovering:false)
    (slacked.Sim.Policy.plan ~tleft:777.0 ~recovering:false)

let test_with_slack_clamped () =
  (* Huge slack: the final checkpoint clamps against its predecessor
     plus C, never producing an invalid plan. *)
  let base = Sim.Policy.equal_segments ~params ~count:2 in
  let slacked = S.with_slack ~params ~slack:1.0e6 base in
  let plan = slacked.Sim.Policy.plan ~tleft:100.0 ~recovering:false in
  Sim.Policy.validate_plan ~params ~tleft:100.0 ~recovering:false plan;
  Alcotest.(check offsets) "clamped to prev + C" [ 50.0; 70.0 ] plan

let test_with_slack_single_checkpoint () =
  let base = Sim.Policy.single_final ~params in
  let slacked = S.with_slack ~params ~slack:10.0 base in
  Alcotest.(check offsets) "shifted single" [ 90.0 ]
    (slacked.Sim.Policy.plan ~tleft:100.0 ~recovering:false);
  (* with recovery the base is r + c *)
  let plan = slacked.Sim.Policy.plan ~tleft:45.0 ~recovering:true in
  Sim.Policy.validate_plan ~params ~tleft:45.0 ~recovering:true plan

let test_with_slack_validation () =
  (match S.with_slack ~params ~slack:(-1.0) Sim.Policy.no_checkpoint with
  | _ -> Alcotest.fail "negative slack accepted"
  | exception Invalid_argument _ -> ())

let qcheck_valid_plans =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"slacked plans stay valid" ~count:1000
       QCheck.(triple (float_range 1.0 2000.0) bool (float_range 0.0 100.0))
       (fun (tleft, recovering, slack) ->
         let base = Core.Policies.numerical_optimum ~params ~horizon:2000.0 in
         let slacked = S.with_slack ~params ~slack base in
         match
           Sim.Policy.validate_plan ~params ~tleft ~recovering
             (slacked.Sim.Policy.plan ~tleft ~recovering)
         with
         | () -> true
         | exception Invalid_argument msg ->
             QCheck.Test.fail_reportf "invalid: %s" msg))

(* erlang_cdf *)

let test_erlang_cdf_shape1_is_exponential () =
  List.iter
    (fun x ->
      close ~eps:1e-12
        (Printf.sprintf "x = %g" x)
        (1.0 -. exp (-.x /. 20.0))
        (S.erlang_cdf ~shape:1 ~mean:20.0 x))
    [ 0.5; 5.0; 20.0; 100.0 ]

let test_erlang_cdf_properties () =
  close "zero at 0" 0.0 (S.erlang_cdf ~shape:4 ~mean:20.0 0.0);
  close ~eps:1e-9 "1 far out" 1.0 (S.erlang_cdf ~shape:4 ~mean:20.0 1000.0);
  (* median below mean for right-skewed Erlang *)
  Alcotest.(check bool) "F(mean) > 1/2" true
    (S.erlang_cdf ~shape:4 ~mean:20.0 20.0 > 0.5);
  (* monotone *)
  Alcotest.(check bool) "monotone" true
    (S.erlang_cdf ~shape:4 ~mean:20.0 15.0 < S.erlang_cdf ~shape:4 ~mean:20.0 25.0)

let test_erlang_cdf_vs_sampling () =
  let shape = 4 and mean = 20.0 in
  let rng = Numerics.Rng.create ~seed:5L in
  let n = 100_000 in
  let x = 23.0 in
  let hits = ref 0 in
  for _ = 1 to n do
    if
      Numerics.Rng.gamma_int rng ~shape ~scale:(mean /. float_of_int shape) <= x
    then incr hits
  done;
  close ~eps:5e-3 "matches empirical"
    (float_of_int !hits /. float_of_int n)
    (S.erlang_cdf ~shape ~mean x)

(* first-order slack *)

let test_first_order_slack_positive () =
  let s = S.first_order_slack ~params ~shape:4 ~tleft:600.0 in
  Alcotest.(check bool) (Printf.sprintf "slack %.2f in (0, C]" s) true
    (s > 0.0 && s <= 2.0 *. params.P.c)

let test_first_order_slack_degenerate () =
  close "no room, no slack" 0.0
    (S.first_order_slack ~params ~shape:4 ~tleft:params.P.c)

(* the headline: slack recovers the stochastic-checkpoint loss *)

let test_slack_recovers_dp_lead () =
  let horizon = 600.0 in
  let dp_tables = Core.Dp.build ~params ~quantum:1.0 ~horizon () in
  let traces =
    Fault.Trace.batch
      ~dist:(Fault.Trace.Exponential { rate = params.P.lambda })
      ~seed:99L ~n:6000
  in
  let fresh_sampler () =
    let rng = Numerics.Rng.create ~seed:31L in
    fun () -> Numerics.Rng.gamma_int rng ~shape:4 ~scale:(params.P.c /. 4.0)
  in
  let mean policy =
    (Sim.Runner.evaluate ~ckpt_sampler:(fresh_sampler ()) ~params ~horizon
       ~policy traces)
      .Sim.Runner.proportion.Numerics.Stats.mean
  in
  let plain = mean (Core.Dp.policy dp_tables) in
  let slack = S.first_order_slack ~params ~shape:4 ~tleft:horizon in
  let slacked =
    mean (S.with_slack ~params ~slack (Core.Dp.policy dp_tables))
  in
  Alcotest.(check bool)
    (Printf.sprintf "slacked %.4f > plain %.4f (slack %.1f)" slacked plain slack)
    true (slacked > plain)

let test_tune_finds_positive_slack_under_jitter () =
  let horizon = 500.0 in
  let traces =
    Fault.Trace.batch
      ~dist:(Fault.Trace.Exponential { rate = params.P.lambda })
      ~seed:7L ~n:3000
  in
  let base = Core.Policies.numerical_optimum ~params ~horizon in
  let fresh_sampler () =
    let rng = Numerics.Rng.create ~seed:13L in
    fun () -> Numerics.Rng.gamma_int rng ~shape:2 ~scale:(params.P.c /. 2.0)
  in
  let best_slack, best_mean =
    S.tune ~grid:8 ~params ~fresh_sampler
      ~policy_of_slack:(fun slack -> S.with_slack ~params ~slack base)
      ~horizon traces
  in
  Alcotest.(check bool)
    (Printf.sprintf "tuned slack %.1f, value %.4f" best_slack best_mean)
    true
    (best_slack > 0.0 && best_mean > 0.0)

let () =
  Alcotest.run "slack"
    [
      ( "with_slack",
        [
          Alcotest.test_case "shifts the final checkpoint" `Quick
            test_with_slack_shifts_final;
          Alcotest.test_case "zero is identity" `Quick test_with_slack_zero_identity;
          Alcotest.test_case "clamped" `Quick test_with_slack_clamped;
          Alcotest.test_case "single checkpoint" `Quick
            test_with_slack_single_checkpoint;
          Alcotest.test_case "validation" `Quick test_with_slack_validation;
          qcheck_valid_plans;
        ] );
      ( "erlang cdf",
        [
          Alcotest.test_case "shape 1 = exponential" `Quick
            test_erlang_cdf_shape1_is_exponential;
          Alcotest.test_case "properties" `Quick test_erlang_cdf_properties;
          Alcotest.test_case "matches sampling" `Slow test_erlang_cdf_vs_sampling;
        ] );
      ( "slack selection",
        [
          Alcotest.test_case "first-order positive" `Quick
            test_first_order_slack_positive;
          Alcotest.test_case "degenerate" `Quick test_first_order_slack_degenerate;
          Alcotest.test_case "recovers the DP lead" `Slow
            test_slack_recovers_dp_lead;
          Alcotest.test_case "autotuning" `Slow
            test_tune_finds_positive_slack_under_jitter;
        ] );
    ]
