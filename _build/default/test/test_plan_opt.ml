(* Tests for Core.Plan_opt: the continuous-offset objective against the
   closed-form evaluators, and the optimiser against known optima from
   Section 4. *)

module PO = Core.Plan_opt
module P = Fault.Params

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let params = P.paper ~lambda:0.003 ~c:10.0 ~d:0.0
let no_continuation _ = 0.0

let test_objective_matches_first_failure_value () =
  (* With a zero continuation, the objective must coincide with the
     until-first-failure expectation. *)
  List.iter
    (fun offsets ->
      close ~eps:1e-6
        (Printf.sprintf "plan [%s]"
           (String.concat "; " (List.map string_of_float offsets)))
        (Core.Expected.first_failure_value ~params ~recovering:false ~offsets)
        (PO.expected_work ~params ~tleft:400.0 ~recovering:false
           ~continuation:no_continuation ~offsets))
    [ [ 400.0 ]; [ 200.0; 400.0 ]; [ 120.0; 260.0; 400.0 ]; [ 50.0; 390.0 ] ]

let test_objective_with_recovery () =
  close ~eps:1e-6 "recovery charged"
    (Core.Expected.first_failure_value ~params ~recovering:true
       ~offsets:[ 300.0 ])
    (PO.expected_work ~params ~tleft:300.0 ~recovering:true
       ~continuation:no_continuation ~offsets:[ 300.0 ])

let test_empty_plan () =
  close "empty plan" 0.0
    (PO.expected_work ~params ~tleft:100.0 ~recovering:false
       ~continuation:no_continuation ~offsets:[])

let test_optimize_two_matches_alpha_opt () =
  (* With no continuation and the last checkpoint pinned near the end by
     optimality, the two-checkpoint optimiser must recover α_opt(T) of
     Section 4.3 for the first checkpoint... except that it may also
     move the SECOND checkpoint off the end. Restrict the comparison to
     the gain achieved: the optimiser must do at least as well as the
     analytic α_opt plan. *)
  let t = 500.0 in
  let alpha = Core.Analysis.alpha_opt ~params ~t in
  let analytic_plan = [ alpha *. t; t ] in
  let analytic_value =
    PO.expected_work ~params ~tleft:t ~recovering:false
      ~continuation:no_continuation ~offsets:analytic_plan
  in
  let r =
    PO.optimize ~params ~tleft:t ~recovering:false ~k:2
      ~continuation:no_continuation ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "optimised %.4f >= analytic-alpha %.4f" r.PO.expected_work
       analytic_value)
    true
    (r.PO.expected_work >= analytic_value -. 1e-4)

let test_optimize_single_checkpoint_heavy_failures () =
  (* Section 4.2 regime: λ so large that the single checkpoint should
     move AWAY from the end of the reservation. *)
  let params = P.make ~lambda:0.5 ~c:4.0 ~r:4.0 ~d:0.0 in
  let r =
    PO.optimize ~params ~tleft:10.0 ~recovering:false ~k:1
      ~continuation:no_continuation ()
  in
  match r.PO.offsets with
  | [ o ] ->
      Alcotest.(check bool)
        (Printf.sprintf "checkpoint at %.3f, strictly before 10" o)
        true
        (o < 10.0 -. 0.5);
      (* the analytic optimum maximises e^{-λo}(o - c): o = c + 1/λ = 6 *)
      close ~eps:0.05 "analytic optimum o = c + 1/λ" 6.0 o
  | other ->
      Alcotest.failf "expected one checkpoint, got %d" (List.length other)

let test_optimize_respects_feasibility () =
  let r =
    PO.optimize ~params ~tleft:200.0 ~recovering:true ~k:3
      ~continuation:no_continuation ()
  in
  Sim.Policy.validate_plan ~params ~tleft:200.0 ~recovering:true r.PO.offsets

let test_optimize_infeasible_k () =
  let r =
    PO.optimize ~params ~tleft:25.0 ~recovering:false ~k:5
      ~continuation:no_continuation ()
  in
  Alcotest.(check (list (float 0.0))) "no plan" [] r.PO.offsets;
  close "zero value" 0.0 r.PO.expected_work

let test_optimize_beats_equal_segments () =
  (* The optimised plan can never do worse than the equal-segment start
     (the optimiser keeps the best of both). *)
  List.iter
    (fun k ->
      let equal =
        List.init k (fun i -> 450.0 *. float_of_int (i + 1) /. float_of_int k)
      in
      let equal_value =
        PO.expected_work ~params ~tleft:450.0 ~recovering:false
          ~continuation:no_continuation ~offsets:equal
      in
      let r =
        PO.optimize ~params ~tleft:450.0 ~recovering:false ~k
          ~continuation:no_continuation ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "k=%d: %.4f >= %.4f" k r.PO.expected_work equal_value)
        true
        (r.PO.expected_work >= equal_value -. 1e-9))
    [ 1; 2; 3; 4 ]

let test_variable_segments_policy () =
  (* VariableSegments must emit valid plans and, evaluated exactly,
     land between NumericalOptimum and the quantised optimum (allowing
     noise from quadrature and the optimiser). *)
  let params = P.paper ~lambda:0.01 ~c:20.0 ~d:0.0 in
  let horizon = 300.0 in
  let dp =
    Core.Dp.build ~params ~quantum:1.0 ~horizon ()
  in
  let policy = PO.variable_segments_policy ~params ~horizon ~dp in
  List.iter
    (fun (tleft, recovering) ->
      Sim.Policy.validate_plan ~params ~tleft ~recovering
        (policy.Sim.Policy.plan ~tleft ~recovering))
    [ (300.0, false); (299.5, true); (100.0, false); (45.0, true); (10.0, false) ];
  let value p = Core.Expected.policy_value ~params ~quantum:1.0 ~horizon ~policy:p in
  let vs = value policy in
  let dp_v = Core.Dp.expected_work dp ~tleft:horizon in
  let no_v = value (Core.Policies.numerical_optimum ~params ~horizon) in
  Alcotest.(check bool)
    (Printf.sprintf "NO %.3f <= VS %.3f <= DP %.3f (with slack)" no_v vs dp_v)
    true
    (vs >= no_v -. 0.5 && vs <= dp_v +. 0.5)

let () =
  Alcotest.run "plan_opt"
    [
      ( "objective",
        [
          Alcotest.test_case "matches first-failure value" `Quick
            test_objective_matches_first_failure_value;
          Alcotest.test_case "with recovery" `Quick test_objective_with_recovery;
          Alcotest.test_case "empty plan" `Quick test_empty_plan;
        ] );
      ( "optimiser",
        [
          Alcotest.test_case "two checkpoints vs alpha_opt" `Quick
            test_optimize_two_matches_alpha_opt;
          Alcotest.test_case "early checkpoint under heavy failures" `Quick
            test_optimize_single_checkpoint_heavy_failures;
          Alcotest.test_case "feasibility" `Quick test_optimize_respects_feasibility;
          Alcotest.test_case "infeasible k" `Quick test_optimize_infeasible_k;
          Alcotest.test_case "never below equal segments" `Quick
            test_optimize_beats_equal_segments;
        ] );
      ( "policy",
        [
          Alcotest.test_case "VariableSegments" `Slow test_variable_segments_policy;
        ] );
    ]
