(* Tests for Core.Analysis: the Section 4 case studies, cross-validated
   against Monte-Carlo simulation and the generic expected-gain
   evaluator. *)

module A = Core.Analysis
module P = Fault.Params

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

(* 4.2: single checkpoint in a short reservation *)

let test_gain_formula_values () =
  close "gain at crossover is zero" 0.0
    (A.short_reservation_gain ~lambda:A.short_reservation_crossover);
  Alcotest.(check bool) "end wins for small lambda" true
    (A.short_reservation_gain ~lambda:0.3 > 0.0);
  Alcotest.(check bool) "early wins for large lambda" true
    (A.short_reservation_gain ~lambda:1.0 < 0.0)

let test_gain_matches_general_formula () =
  (* The concrete example is the shift = 1 instance of single_shift_gain
     with T = 6, C = R = 4. *)
  let params = P.make ~lambda:0.9 ~c:4.0 ~r:4.0 ~d:0.0 in
  close ~eps:1e-12 "general formula agrees"
    (A.short_reservation_gain ~lambda:0.9)
    (A.single_shift_gain ~params ~t:6.0 ~shift:1.0)

let simulate_single_shift ~lambda ~shift ~reps =
  (* T=6, C=R=4, D=0: work saved is (6 - shift) - 4 iff no failure before
     the checkpoint completes at 6 - shift; no recursion is possible. *)
  let params = P.make ~lambda ~c:4.0 ~r:4.0 ~d:0.0 in
  let policy = Sim.Policy.single_at ~params ~offset_from_end:shift in
  let traces =
    Fault.Trace.batch ~dist:(Fault.Trace.Exponential { rate = lambda })
      ~seed:31L ~n:reps
  in
  let r = Sim.Runner.evaluate ~params ~horizon:6.0 ~policy traces in
  r.Sim.Runner.mean_work

let test_gain_matches_simulation () =
  (* At λ = 1.2 > ln 2 the early strategy must beat the final one, and
     the measured difference must match the closed form. *)
  let lambda = 1.2 in
  let reps = 300_000 in
  let at_end = simulate_single_shift ~lambda ~shift:0.0 ~reps in
  let early = simulate_single_shift ~lambda ~shift:1.0 ~reps in
  let measured_gain = at_end -. early in
  let analytic = A.short_reservation_gain ~lambda in
  Alcotest.(check bool) "early strategy wins" true (early > at_end);
  close ~eps:5e-3 "measured gain matches formula" analytic measured_gain

let test_best_single_shift () =
  let params = P.make ~lambda:2.0 ~c:4.0 ~r:4.0 ~d:0.0 in
  let s = A.best_single_shift ~params ~t:6.0 in
  (* value function: e^{-2(6-s)} (2 - s); optimum at s = 2 - 1/2 = 1.5
     (stationary point of (2-s) e^{2s}). *)
  close ~eps:1e-6 "interior optimum" 1.5 s;
  (* tiny lambda: checkpoint at the very end *)
  let params0 = P.make ~lambda:1e-6 ~c:4.0 ~r:4.0 ~d:0.0 in
  close ~eps:1e-6 "no shift for reliable platforms" 0.0
    (A.best_single_shift ~params:params0 ~t:6.0)

(* 4.3: two checkpoints *)

let test_two_ckpt_gain_consistency () =
  (* The closed form must agree with the generic until-first-failure
     evaluator on the explicit plans. *)
  let params = P.paper ~lambda:0.004 ~c:15.0 ~d:0.0 in
  let t = 300.0 in
  List.iter
    (fun alpha ->
      let expected =
        Core.Expected.gain_vs ~params
          ~offsets1:[ alpha *. t; t ]
          ~offsets2:[ t ]
      in
      close ~eps:1e-10
        (Printf.sprintf "alpha = %g" alpha)
        expected
        (A.two_ckpt_gain ~params ~t ~alpha))
    [ 0.2; 0.35; 0.5; 0.65; 0.8 ]

let test_alpha_opt_is_stationary () =
  let params = P.paper ~lambda:0.003 ~c:10.0 ~d:0.0 in
  let t = 500.0 in
  let alpha = A.alpha_opt ~params ~t in
  let g a = A.two_ckpt_gain ~params ~t ~alpha:a in
  let eps = 1e-5 in
  Alcotest.(check bool)
    (Printf.sprintf "alpha_opt = %.4f maximises the gain" alpha)
    true
    (g alpha >= g (alpha +. eps) && g alpha >= g (alpha -. eps))

let test_alpha_opt_not_half () =
  (* The headline of Section 4.3: equal splitting is not optimal. *)
  let params = P.paper ~lambda:0.01 ~c:10.0 ~d:0.0 in
  let alpha = A.alpha_opt ~params ~t:400.0 in
  Alcotest.(check bool) "alpha differs from 1/2" true
    (abs_float (alpha -. 0.5) > 0.01)

let test_alpha_opt_limit_half () =
  (* λ -> 0 with T at the Young/Daly scale: α -> 1/2 (first-order
     result at the end of Section 4.3). *)
  let deviation lambda =
    let c = 10.0 in
    let params = P.paper ~lambda ~c ~d:0.0 in
    let t = sqrt (2.0 *. c /. lambda) *. 1.5 in
    abs_float (A.alpha_opt ~params ~t -. 0.5)
  in
  Alcotest.(check bool) "deviation shrinks" true
    (deviation 1e-6 < deviation 1e-4 && deviation 1e-4 < deviation 1e-2);
  Alcotest.(check bool) "close to half at 1e-7" true (deviation 1e-7 < 0.02)

let test_alpha_opt_bounds () =
  let params = P.paper ~lambda:0.5 ~c:10.0 ~d:0.0 in
  (* Very failure-heavy: the zero of g may fall outside [c/t, 1 - c/t];
     the result must be clamped inside. *)
  let t = 25.0 in
  let alpha = A.alpha_opt ~params ~t in
  Alcotest.(check bool) "within feasible band" true
    (alpha >= 10.0 /. t -. 1e-12 && alpha <= 1.0 -. (10.0 /. t) +. 1e-12)

let test_validation () =
  let params = P.paper ~lambda:0.01 ~c:10.0 ~d:0.0 in
  Alcotest.check_raises "t < 2c" (Invalid_argument "Analysis.alpha_opt: t < 2c")
    (fun () -> ignore (A.alpha_opt ~params ~t:15.0));
  Alcotest.check_raises "shift out of range"
    (Invalid_argument "Analysis.single_shift_gain: shift outside [0, t - c]")
    (fun () -> ignore (A.single_shift_gain ~params ~t:20.0 ~shift:15.0))

let qcheck_tests =
  let arb =
    QCheck.make
      QCheck.Gen.(
        let* lambda = float_range 1e-4 0.05 in
        let* c = float_range 1.0 30.0 in
        let* factor = float_range 2.5 20.0 in
        return (P.paper ~lambda ~c ~d:0.0, factor *. c))
      ~print:(fun (p, t) -> Printf.sprintf "%s t=%g" (P.to_string p) t)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"alpha_opt stays feasible" ~count:1000 arb
         (fun (params, t) ->
           let alpha = A.alpha_opt ~params ~t in
           let c = params.P.c in
           alpha >= (c /. t) -. 1e-9 && alpha <= 1.0 -. (c /. t) +. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"alpha_opt no worse than equal split"
         ~count:1000 arb (fun (params, t) ->
           let alpha = A.alpha_opt ~params ~t in
           A.two_ckpt_gain ~params ~t ~alpha
           >= A.two_ckpt_gain ~params ~t ~alpha:0.5 -. 1e-9));
  ]

let () =
  Alcotest.run "analysis"
    [
      ( "short reservation (4.2)",
        [
          Alcotest.test_case "closed form and crossover" `Quick
            test_gain_formula_values;
          Alcotest.test_case "matches general formula" `Quick
            test_gain_matches_general_formula;
          Alcotest.test_case "matches simulation" `Slow test_gain_matches_simulation;
          Alcotest.test_case "best shift" `Quick test_best_single_shift;
        ] );
      ( "two checkpoints (4.3)",
        [
          Alcotest.test_case "gain closed form" `Quick test_two_ckpt_gain_consistency;
          Alcotest.test_case "alpha_opt stationarity" `Quick
            test_alpha_opt_is_stationary;
          Alcotest.test_case "not 1/2 in general" `Quick test_alpha_opt_not_half;
          Alcotest.test_case "limit 1/2" `Quick test_alpha_opt_limit_half;
          Alcotest.test_case "clamped to feasible band" `Quick test_alpha_opt_bounds;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ("properties", qcheck_tests);
    ]
