(* Tests for Core.Dp_renewal: the renewal-aware optimum.

   Key validations:
   - with exponential IATs the age must be irrelevant and the module
     must coincide exactly with Core.Optimal;
   - on Weibull traces, the renewal policy's simulated mean must match
     its own value tables (the trace semantics and the DP model are the
     same process) and dominate the exponential-derived optimum. *)

module R = Core.Dp_renewal
module O = Core.Optimal
module P = Fault.Params
module T = Fault.Trace

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let params = P.paper ~lambda:0.005 ~c:10.0 ~d:5.0
let exp_dist = T.Exponential { rate = 0.005 }

let test_exponential_reduces_to_optimal () =
  let horizon = 250.0 in
  let renewal = R.build ~params ~dist:exp_dist ~quantum:1.0 ~horizon () in
  let optimal = O.build ~params ~quantum:1.0 ~horizon () in
  for n = 1 to 250 do
    close ~eps:1e-9
      (Printf.sprintf "V(%d, 0)" n)
      (O.value_q optimal ~n ~delta:false)
      (R.value_q renewal ~n ~age:0)
  done

let test_exponential_age_irrelevant () =
  let horizon = 200.0 in
  let renewal = R.build ~params ~dist:exp_dist ~quantum:1.0 ~horizon () in
  (* memorylessness: V(n, a) must not depend on a *)
  List.iter
    (fun n ->
      let base = R.value_q renewal ~n ~age:0 in
      for age = 1 to 200 - n do
        let v = R.value_q renewal ~n ~age in
        if abs_float (v -. base) > 1e-9 then
          Alcotest.failf "V(%d, %d) = %g differs from V(%d, 0) = %g" n age v n
            base
      done)
    [ 20; 75; 130 ]

let test_weibull_age_matters () =
  (* Decreasing hazard (k < 1): a node that just failed is MORE likely
     to fail again soon, so the value right after a failure (age 0) is
     lower than with an aged node. *)
  let dist = T.weibull_with_mtbf ~shape:0.7 ~mtbf:200.0 in
  let renewal = R.build ~params ~dist ~quantum:1.0 ~horizon:250.0 () in
  let young = R.value_q renewal ~n:100 ~age:0 in
  let old_ = R.value_q renewal ~n:100 ~age:150 in
  Alcotest.(check bool)
    (Printf.sprintf "V(100, 150) = %.2f > V(100, 0) = %.2f" old_ young)
    true (old_ > young)

let test_plans_valid () =
  let dist = T.weibull_with_mtbf ~shape:0.7 ~mtbf:200.0 in
  let renewal = R.build ~params ~dist ~quantum:1.0 ~horizon:300.0 () in
  let policy = R.policy renewal in
  List.iter
    (fun (tleft, recovering) ->
      Sim.Policy.validate_plan ~params ~tleft ~recovering
        (policy.Sim.Policy.plan ~tleft ~recovering))
    [ (300.0, false); (300.0, true); (123.0, true); (40.0, false); (9.0, true) ]

let mc_mean ~dist ~policy ~horizon ~n =
  let traces = T.batch ~dist ~seed:4242L ~n in
  let r = Sim.Runner.evaluate ~params ~horizon ~policy traces in
  ( r.Sim.Runner.mean_work,
    r.Sim.Runner.proportion.Numerics.Stats.ci95_half_width
    *. (horizon -. params.P.c) )

let test_weibull_value_matches_simulation () =
  (* The DP model and the trace semantics are the same renewal process,
     so the simulated mean must approach the table value (up to the
     quantisation of failure dates). *)
  let dist = T.weibull_with_mtbf ~shape:0.7 ~mtbf:200.0 in
  let horizon = 300.0 in
  let renewal = R.build ~params ~dist ~quantum:1.0 ~horizon () in
  let v = R.value renewal ~tleft:horizon in
  let mc, ci = mc_mean ~dist ~policy:(R.policy renewal) ~horizon ~n:40_000 in
  Alcotest.(check bool)
    (Printf.sprintf "V %.2f vs MC %.2f ± %.2f" v mc ci)
    true
    (abs_float (v -. mc) < ci +. 2.0)

let test_weibull_beats_exponential_dp () =
  (* On Weibull failures, the renewal-aware optimum must (weakly)
     dominate the exponential-derived optimum executed on the same
     traces. *)
  let dist = T.weibull_with_mtbf ~shape:0.7 ~mtbf:200.0 in
  let horizon = 300.0 in
  let renewal = R.build ~params ~dist ~quantum:1.0 ~horizon () in
  let optimal = O.build ~params ~quantum:1.0 ~horizon () in
  let mc_renewal, ci1 =
    mc_mean ~dist ~policy:(R.policy renewal) ~horizon ~n:40_000
  in
  let mc_exp, ci2 = mc_mean ~dist ~policy:(O.policy optimal) ~horizon ~n:40_000 in
  Alcotest.(check bool)
    (Printf.sprintf "renewal %.2f ± %.2f vs exponential-derived %.2f ± %.2f"
       mc_renewal ci1 mc_exp ci2)
    true
    (mc_renewal >= mc_exp -. ci1 -. ci2)

let test_lognormal_value_matches_simulation () =
  let dist = T.lognormal_with_mtbf ~sigma:1.2 ~mtbf:200.0 in
  let horizon = 250.0 in
  let renewal = R.build ~params ~dist ~quantum:1.0 ~horizon () in
  let v = R.value renewal ~tleft:horizon in
  let mc, ci = mc_mean ~dist ~policy:(R.policy renewal) ~horizon ~n:40_000 in
  Alcotest.(check bool)
    (Printf.sprintf "V %.2f vs MC %.2f ± %.2f" v mc ci)
    true
    (abs_float (v -. mc) < ci +. 2.0)

let test_lognormal_builds () =
  let dist = T.lognormal_with_mtbf ~sigma:1.2 ~mtbf:200.0 in
  let renewal = R.build ~params ~dist ~quantum:2.0 ~horizon:200.0 () in
  let v = R.value renewal ~tleft:200.0 in
  Alcotest.(check bool) "positive value" true (v > 0.0);
  Alcotest.(check bool) "below bound" true (v <= 190.0)

let test_validation () =
  (match R.build ~params ~dist:exp_dist ~quantum:0.0 ~horizon:10.0 () with
  | _ -> Alcotest.fail "quantum 0 accepted"
  | exception Invalid_argument _ -> ());
  let renewal = R.build ~params ~dist:exp_dist ~quantum:1.0 ~horizon:50.0 () in
  (match R.value_q renewal ~n:40 ~age:20 with
  | _ -> Alcotest.fail "outside triangle accepted"
  | exception Invalid_argument _ -> ());
  (match R.plan_q renewal ~n:30 ~age:5 ~delta:true with
  | _ -> Alcotest.fail "recovery at age > 0 accepted"
  | exception Invalid_argument _ -> ())

let () =
  Alcotest.run "dp_renewal"
    [
      ( "exponential sanity",
        [
          Alcotest.test_case "reduces to Optimal" `Quick
            test_exponential_reduces_to_optimal;
          Alcotest.test_case "age irrelevant" `Quick test_exponential_age_irrelevant;
        ] );
      ( "non-memoryless",
        [
          Alcotest.test_case "age matters for Weibull" `Quick
            test_weibull_age_matters;
          Alcotest.test_case "plans valid" `Quick test_plans_valid;
          Alcotest.test_case "value = simulation" `Slow
            test_weibull_value_matches_simulation;
          Alcotest.test_case "beats exponential-derived optimum" `Slow
            test_weibull_beats_exponential_dp;
          Alcotest.test_case "log-normal builds" `Quick test_lognormal_builds;
          Alcotest.test_case "log-normal value = simulation" `Slow
            test_lognormal_value_matches_simulation;
        ] );
      ("validation", [ Alcotest.test_case "errors" `Quick test_validation ]);
    ]
