(* Tests for Numerics.Integrate. *)

module I = Numerics.Integrate

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let test_trapezoid_affine_exact () =
  close "affine is exact" 12.0
    (I.trapezoid ~f:(fun x -> (2.0 *. x) +. 1.0) ~lo:0.0 ~hi:3.0 ~n:1);
  close "affine exact, many panels" 12.0
    (I.trapezoid ~f:(fun x -> (2.0 *. x) +. 1.0) ~lo:0.0 ~hi:3.0 ~n:17)

let test_trapezoid_quadratic_converges () =
  let exact = 1.0 /. 3.0 in
  let err n =
    abs_float (I.trapezoid ~f:(fun x -> x *. x) ~lo:0.0 ~hi:1.0 ~n -. exact)
  in
  Alcotest.(check bool) "error shrinks ~4x when n doubles" true
    (err 64 /. err 128 > 3.5 && err 64 /. err 128 < 4.5)

let test_simpson_cubic_exact () =
  (* Simpson is exact for cubics. *)
  close ~eps:1e-12 "cubic exact" 4.0
    (I.simpson ~f:(fun x -> x *. x *. x) ~lo:0.0 ~hi:2.0 ~n:2)

let test_simpson_odd_n_rounded () =
  close ~eps:1e-12 "odd n handled" 4.0
    (I.simpson ~f:(fun x -> x *. x *. x) ~lo:0.0 ~hi:2.0 ~n:3)

let test_simpson_exp () =
  close ~eps:1e-8 "exp over [0,1]" (exp 1.0 -. 1.0)
    (I.simpson ~f:exp ~lo:0.0 ~hi:1.0 ~n:64)

let test_adaptive_smooth () =
  close ~eps:1e-9 "sin over [0, pi]" 2.0 (I.adaptive_simpson ~f:sin 0.0 Float.pi)

let test_adaptive_peaked () =
  (* Narrow Gaussian-like peak: adaptive refinement must find it. *)
  let f x = exp (-200.0 *. (x -. 0.5) *. (x -. 0.5)) in
  let exact = sqrt (Float.pi /. 200.0) in
  close ~eps:1e-7 "narrow peak" exact (I.adaptive_simpson ~tol:1e-12 ~f 0.0 1.0)

let test_adaptive_empty_interval () =
  close "zero-width" 0.0 (I.adaptive_simpson ~f:exp 1.0 1.0)

let test_samples () =
  let h = 0.25 in
  let ys = Array.init 5 (fun i -> float_of_int i *. h) in
  (* integrating y = x over [0, 1] *)
  close ~eps:1e-12 "sampled identity" 0.5 (I.trapezoid_samples ~h ys)

let test_samples_single () =
  close "single sample integrates to 0" 0.0 (I.trapezoid_samples ~h:1.0 [| 3.0 |])

let test_invalid () =
  Alcotest.check_raises "trapezoid n=0" (Invalid_argument "Integrate.trapezoid: n < 1")
    (fun () -> ignore (I.trapezoid ~f:exp ~lo:0.0 ~hi:1.0 ~n:0));
  Alcotest.check_raises "empty samples"
    (Invalid_argument "Integrate.trapezoid_samples: empty array") (fun () ->
      ignore (I.trapezoid_samples ~h:1.0 [||]))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"adaptive matches simpson on random quadratics"
         ~count:300
         QCheck.(triple (float_range (-3.0) 3.0) (float_range (-3.0) 3.0)
                   (float_range (-3.0) 3.0))
         (fun (a, b, c) ->
           let f x = (a *. x *. x) +. (b *. x) +. c in
           let adaptive = I.adaptive_simpson ~f 0.0 2.0 in
           let reference = I.simpson ~f ~lo:0.0 ~hi:2.0 ~n:2 in
           abs_float (adaptive -. reference) < 1e-7));
  ]

let () =
  Alcotest.run "integrate"
    [
      ( "trapezoid",
        [
          Alcotest.test_case "affine exact" `Quick test_trapezoid_affine_exact;
          Alcotest.test_case "quadratic convergence order" `Quick
            test_trapezoid_quadratic_converges;
          Alcotest.test_case "sampled grid" `Quick test_samples;
          Alcotest.test_case "single sample" `Quick test_samples_single;
        ] );
      ( "simpson",
        [
          Alcotest.test_case "cubic exact" `Quick test_simpson_cubic_exact;
          Alcotest.test_case "odd n" `Quick test_simpson_odd_n_rounded;
          Alcotest.test_case "exponential" `Quick test_simpson_exp;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "smooth" `Quick test_adaptive_smooth;
          Alcotest.test_case "narrow peak" `Quick test_adaptive_peaked;
          Alcotest.test_case "empty interval" `Quick test_adaptive_empty_interval;
        ] );
      ("validation", [ Alcotest.test_case "invalid args" `Quick test_invalid ]);
      ("properties", qcheck_tests);
    ]
