(* Tests for Core.Optimal, the unrestricted quantised optimum, and its
   relationship with the paper's k-indexed dynamic program. *)

module O = Core.Optimal
module Dp = Core.Dp
module P = Fault.Params

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let params = P.paper ~lambda:0.002 ~c:10.0 ~d:5.0

let test_matches_k_indexed_dp () =
  (* The headline: tracking the planned number of checkpoints (and
     restricting re-planning to fewer) does not change the optimum. *)
  List.iter
    (fun (lambda, c, d, horizon) ->
      let params = P.paper ~lambda ~c ~d in
      let opt = O.build ~params ~quantum:1.0 ~horizon () in
      let dp = Dp.build ~params ~quantum:1.0 ~horizon () in
      for n = 1 to O.horizon_quanta opt do
        let v = O.value_q opt ~n ~delta:false in
        let e = Dp.best_expected_work_q dp ~n ~delta:false in
        if abs_float (v -. e) > 1e-9 then
          Alcotest.failf "λ=%g C=%g D=%g n=%d: unrestricted %g vs DP %g" lambda
            c d n v e
      done)
    [
      (0.002, 10.0, 5.0, 300.0);
      (0.01, 5.0, 0.0, 150.0);
      (0.05, 4.0, 2.0, 60.0);
      (0.001, 20.0, 0.0, 400.0);
    ]

let test_never_below_dp () =
  (* Even with recovery starts (where the restriction could in principle
     bind), the unrestricted value dominates. *)
  let horizon = 400.0 in
  let opt = O.build ~params ~quantum:1.0 ~horizon () in
  let dp = Dp.build ~params ~quantum:1.0 ~horizon () in
  for n = 1 to 400 do
    let v = O.value_q opt ~n ~delta:true in
    let e = Dp.best_expected_work_q dp ~n ~delta:true in
    if v < e -. 1e-9 then
      Alcotest.failf "n=%d: unrestricted %g below restricted %g" n v e
  done

let test_value_policy_consistency () =
  let horizon = 350.0 in
  let opt = O.build ~params ~quantum:1.0 ~horizon () in
  let v = O.value opt ~tleft:horizon in
  let by_eval =
    Core.Expected.policy_value ~params ~quantum:1.0 ~horizon
      ~policy:(O.policy opt)
  in
  close ~eps:1e-6 "value = policy evaluator" v by_eval

let test_plan_shape () =
  let horizon = 500.0 in
  let opt = O.build ~params ~quantum:1.0 ~horizon () in
  let plan = O.plan_q opt ~n:500 ~delta:false in
  Alcotest.(check bool) "non-empty" true (plan <> []);
  let rec increasing prev = function
    | [] -> true
    | q :: rest -> q > prev && increasing q rest
  in
  Alcotest.(check bool) "increasing within horizon" true
    (increasing 0 plan && List.for_all (fun q -> q <= 500) plan)

let test_policy_valid_plans () =
  let horizon = 500.0 in
  let opt = O.build ~params ~quantum:1.0 ~horizon () in
  let policy = O.policy opt in
  List.iter
    (fun (tleft, recovering) ->
      Sim.Policy.validate_plan ~params ~tleft ~recovering
        (policy.Sim.Policy.plan ~tleft ~recovering))
    [ (500.0, false); (500.0, true); (77.3, true); (12.0, false); (5.0, true) ]

let test_policy_stateless_replay () =
  (* Unlike the DP policy, the unrestricted policy carries no state:
     the same query always returns the same plan. *)
  let horizon = 300.0 in
  let opt = O.build ~params ~quantum:1.0 ~horizon () in
  let policy = O.policy opt in
  let p1 = policy.Sim.Policy.plan ~tleft:222.0 ~recovering:true in
  let p2 = policy.Sim.Policy.plan ~tleft:222.0 ~recovering:true in
  Alcotest.(check (list (float 0.0))) "same plan" p1 p2

let test_monte_carlo_agreement () =
  let horizon = 400.0 in
  let opt = O.build ~params ~quantum:1.0 ~horizon () in
  let traces =
    Fault.Trace.batch
      ~dist:(Fault.Trace.Exponential { rate = params.P.lambda })
      ~seed:321L ~n:40_000
  in
  let r = Sim.Runner.evaluate ~params ~horizon ~policy:(O.policy opt) traces in
  let ci =
    r.Sim.Runner.proportion.Numerics.Stats.ci95_half_width
    *. (horizon -. params.P.c)
  in
  let v = O.value opt ~tleft:horizon in
  Alcotest.(check bool)
    (Printf.sprintf "V %.2f vs MC %.2f ± %.2f" v r.Sim.Runner.mean_work ci)
    true
    (abs_float (v -. r.Sim.Runner.mean_work) < ci +. 2.0)

let test_validation () =
  (match O.build ~params ~quantum:(-1.0) ~horizon:10.0 () with
  | _ -> Alcotest.fail "negative quantum accepted"
  | exception Invalid_argument _ -> ())

let () =
  Alcotest.run "optimal"
    [
      ( "vs the paper's DP",
        [
          Alcotest.test_case "k-tracking is not restrictive" `Slow
            test_matches_k_indexed_dp;
          Alcotest.test_case "dominates with recovery starts" `Quick
            test_never_below_dp;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "value = policy evaluator" `Quick
            test_value_policy_consistency;
          Alcotest.test_case "plan shape" `Quick test_plan_shape;
          Alcotest.test_case "valid plans" `Quick test_policy_valid_plans;
          Alcotest.test_case "stateless replay" `Quick test_policy_stateless_replay;
          Alcotest.test_case "Monte-Carlo agreement" `Slow test_monte_carlo_agreement;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
