(* Tests for Core.Expected: the Section 4.1 integral equations, the
   until-first-failure evaluator, and the quantised policy evaluator —
   each validated against an independent computation. *)

module E = Core.Expected
module P = Fault.Params

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let params = P.paper ~lambda:0.002 ~c:10.0 ~d:5.0

let mc_value ~params ~horizon ~policy ~traces:n =
  let traces =
    Fault.Trace.batch
      ~dist:(Fault.Trace.Exponential { rate = params.P.lambda })
      ~seed:77L ~n
  in
  let r = Sim.Runner.evaluate ~params ~horizon ~policy traces in
  (r.Sim.Runner.mean_work,
   r.Sim.Runner.proportion.Numerics.Stats.ci95_half_width
   *. (horizon -. params.P.c))

(* first_failure_value *)

let test_ffv_empty () =
  close "no plan, no work" 0.0
    (E.first_failure_value ~params ~recovering:false ~offsets:[])

let test_ffv_single () =
  (* One checkpoint at t: work (t - c) with probability e^{-λt}. *)
  let t = 200.0 in
  close ~eps:1e-12 "single closed form"
    (exp (-0.002 *. t) *. (t -. 10.0))
    (E.first_failure_value ~params ~recovering:false ~offsets:[ t ])

let test_ffv_single_with_recovery () =
  let t = 200.0 in
  close ~eps:1e-12 "recovery charged"
    (exp (-0.002 *. t) *. (t -. 10.0 -. 10.0))
    (E.first_failure_value ~params ~recovering:true ~offsets:[ t ])

let test_ffv_two_by_hand () =
  (* Checkpoints at a and b: E = w1 (P(a) - P(b)) + (w1 + w2) P(b). *)
  let a = 100.0 and b = 250.0 in
  let w1 = a -. 10.0 and w2 = b -. a -. 10.0 in
  let pa = exp (-0.002 *. a) and pb = exp (-0.002 *. b) in
  close ~eps:1e-12 "two-checkpoint expansion"
    ((w1 *. (pa -. pb)) +. ((w1 +. w2) *. pb))
    (E.first_failure_value ~params ~recovering:false ~offsets:[ a; b ])

let test_ffv_monotone_in_offsets () =
  (* Moving the unique checkpoint later always trades probability for
     work; the maximum over a grid must match the best_single analysis
     when no recursion is possible. *)
  let best = ref neg_infinity in
  for i = 1 to 50 do
    let t = float_of_int i *. 10.0 in
    let v = E.first_failure_value ~params ~recovering:false ~offsets:[ t ] in
    if v > !best then best := v
  done;
  Alcotest.(check bool) "bounded by MTBF-ish value" true
    (!best > 0.0 && !best < 500.0)

(* single_final_value: integral equation vs Monte Carlo *)

let test_single_final_no_failure_limit () =
  (* Tiny failure rate: E(T, 1) -> T - C. *)
  let p = P.paper ~lambda:1e-9 ~c:10.0 ~d:0.0 in
  let e, er = E.single_final_value ~params:p ~quantum:1.0 ~horizon:200.0 in
  close ~eps:1e-3 "E ~ T - C" 190.0 e.E.values.(200);
  close ~eps:1e-3 "E_R ~ T - R - C" 180.0 er.E.values.(200)

let test_single_final_zero_below_costs () =
  let e, er = E.single_final_value ~params ~quantum:1.0 ~horizon:100.0 in
  close "E = 0 for T <= C" 0.0 e.E.values.(10);
  close "E_R = 0 for T <= R + C" 0.0 er.E.values.(20)

let test_single_final_matches_monte_carlo () =
  let horizon = 400.0 in
  let e, _ = E.single_final_value ~params ~quantum:0.5 ~horizon in
  let analytic = e.E.values.(Array.length e.E.values - 1) in
  let policy = Sim.Policy.single_final ~params in
  let mc, ci = mc_value ~params ~horizon ~policy ~traces:40_000 in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.2f within MC CI %.2f ± %.2f" analytic mc ci)
    true
    (abs_float (analytic -. mc) < ci +. 1.0)

let test_single_final_grid_refinement_converges () =
  let horizon = 300.0 in
  let value q =
    let e, _ = E.single_final_value ~params ~quantum:q ~horizon in
    e.E.values.(Array.length e.E.values - 1)
  in
  let coarse = value 2.5 and mid = value 1.0 and fine = value 0.25 in
  Alcotest.(check bool) "refinement converges" true
    (abs_float (fine -. mid) < abs_float (mid -. coarse) +. 1e-6);
  Alcotest.(check bool) "fine vs mid small" true (abs_float (fine -. mid) < 0.5)

let test_single_final_rejects_bad_grid () =
  (match E.single_final_value ~params ~quantum:3.0 ~horizon:90.0 with
  | _ -> Alcotest.fail "C=10 not a multiple of 3 accepted"
  | exception Invalid_argument _ -> ())

(* policy_value: quantised evaluator vs Monte Carlo and vs plan algebra *)

let test_policy_value_single_matches_integral_equation () =
  (* Two independent evaluators of the same strategy. *)
  let horizon = 300.0 in
  let e, _ = E.single_final_value ~params ~quantum:0.5 ~horizon in
  let by_integral = e.E.values.(Array.length e.E.values - 1) in
  let by_policy =
    E.policy_value ~params ~quantum:0.5 ~horizon
      ~policy:(Sim.Policy.single_final ~params)
  in
  close ~eps:0.5 "two evaluators agree" by_integral by_policy

let test_policy_value_matches_monte_carlo_threshold () =
  let horizon = 500.0 in
  let policy = Core.Policies.numerical_optimum ~params ~horizon in
  let analytic = E.policy_value ~params ~quantum:0.5 ~horizon ~policy in
  let mc, ci = mc_value ~params ~horizon ~policy ~traces:40_000 in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.2f within MC %.2f ± %.2f" analytic mc ci)
    true
    (abs_float (analytic -. mc) < ci +. 1.5)

let test_policy_value_matches_monte_carlo_young_daly () =
  let horizon = 500.0 in
  let policy = Core.Policies.young_daly ~params in
  let analytic = E.policy_value ~params ~quantum:0.5 ~horizon ~policy in
  let mc, ci = mc_value ~params ~horizon ~policy ~traces:40_000 in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.2f within MC %.2f ± %.2f" analytic mc ci)
    true
    (abs_float (analytic -. mc) < ci +. 1.5)

let test_policy_value_no_checkpoint_zero () =
  close "no checkpoints, no value" 0.0
    (E.policy_value ~params ~quantum:1.0 ~horizon:300.0
       ~policy:Sim.Policy.no_checkpoint)

let test_policy_value_grids_monotone_tail () =
  (* More time cannot hurt a sensible policy: check weak monotonicity of
     the value grid for the threshold heuristic, allowing the small
     non-monotonic dips the paper points out (Section 5 notes the
     heuristic can achieve MORE in a shorter reservation for large λ) —
     so we only check the global trend: v(end) > v(mid) > v(50). *)
  let horizon = 800.0 in
  let policy = Core.Policies.numerical_optimum ~params ~horizon in
  let v, _ = E.policy_value_grids ~params ~quantum:1.0 ~horizon ~policy in
  Alcotest.(check bool) "global growth" true
    (v.E.values.(800) > v.E.values.(400) && v.E.values.(400) > v.E.values.(50))

(* Differential property: the closed-form until-first-failure value
   against a direct Monte-Carlo simulation of that very quantity, on
   randomly generated valid plans. *)

let mc_first_failure ~params ~offsets ~n ~seed =
  let { P.lambda; c; _ } = params in
  let rng = Numerics.Rng.create ~seed in
  let offs = Array.of_list offsets in
  let works =
    Array.mapi
      (fun j o ->
        let prev = if j = 0 then 0.0 else offs.(j - 1) in
        o -. prev -. c)
      offs
  in
  let acc = ref 0.0 in
  for _ = 1 to n do
    let f = Numerics.Rng.exponential rng ~rate:lambda in
    let saved = ref 0.0 in
    Array.iteri (fun j o -> if o < f then saved := !saved +. works.(j)) offs;
    acc := !acc +. !saved
  done;
  !acc /. float_of_int n

let random_plan rng =
  let k = 1 + Numerics.Rng.int rng ~bound:5 in
  let c = 10.0 in
  let rec build j last acc =
    if j = k then List.rev acc
    else begin
      let gap = c +. Numerics.Rng.float_range rng ~lo:0.0 ~hi:150.0 in
      build (j + 1) (last +. gap) ((last +. gap) :: acc)
    end
  in
  build 0 0.0 []

let differential_first_failure =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"first_failure_value = Monte Carlo" ~count:25
       QCheck.(int_bound 1_000_000)
       (fun seed ->
         let rng = Numerics.Rng.create ~seed:(Int64.of_int seed) in
         let offsets = random_plan rng in
         let closed =
           E.first_failure_value ~params ~recovering:false ~offsets
         in
         let n = 60_000 in
         let mc =
           mc_first_failure ~params ~offsets ~n ~seed:(Int64.of_int (seed + 1))
         in
         (* generous 5-sigma-ish band: values are bounded by o_k *)
         let scale = List.fold_left Float.max 1.0 offsets in
         if abs_float (closed -. mc) > 0.03 *. scale then
           QCheck.Test.fail_reportf
             "plan [%s]: closed %.3f vs MC %.3f"
             (String.concat "; " (List.map string_of_float offsets))
             closed mc
         else true))

let () =
  Alcotest.run "expected"
    [
      ( "first-failure evaluator",
        [
          Alcotest.test_case "empty plan" `Quick test_ffv_empty;
          Alcotest.test_case "single checkpoint" `Quick test_ffv_single;
          Alcotest.test_case "with recovery" `Quick test_ffv_single_with_recovery;
          Alcotest.test_case "two checkpoints by hand" `Quick test_ffv_two_by_hand;
          Alcotest.test_case "bounded maximum" `Quick test_ffv_monotone_in_offsets;
        ] );
      ( "integral equation (4.1)",
        [
          Alcotest.test_case "failure-free limit" `Quick
            test_single_final_no_failure_limit;
          Alcotest.test_case "zero below costs" `Quick
            test_single_final_zero_below_costs;
          Alcotest.test_case "matches Monte Carlo" `Slow
            test_single_final_matches_monte_carlo;
          Alcotest.test_case "grid refinement converges" `Quick
            test_single_final_grid_refinement_converges;
          Alcotest.test_case "rejects non-multiple grid" `Quick
            test_single_final_rejects_bad_grid;
        ] );
      ( "policy evaluator",
        [
          Alcotest.test_case "agrees with integral equation" `Quick
            test_policy_value_single_matches_integral_equation;
          Alcotest.test_case "threshold policy vs MC" `Slow
            test_policy_value_matches_monte_carlo_threshold;
          Alcotest.test_case "Young/Daly vs MC" `Slow
            test_policy_value_matches_monte_carlo_young_daly;
          Alcotest.test_case "no-checkpoint is zero" `Quick
            test_policy_value_no_checkpoint_zero;
          Alcotest.test_case "value grows with time" `Quick
            test_policy_value_grids_monotone_tail;
        ] );
      ("differential", [ differential_first_failure ]);
    ]
