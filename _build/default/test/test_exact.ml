(* Tests for Experiments.Exact: noise-free curves against the simulated
   ones, the dominance structure, and input validation. *)

module Ex = Experiments.Exact
module Spec = Experiments.Spec
module Figures = Experiments.Figures

let spec () =
  {
    (Figures.scale ~t_step:150.0 ~t_max:900.0
       (Option.get (Figures.find "fig3")))
    with
    Spec.cs = [ 80.0 ];
  }

let curves = lazy (Ex.figure (spec ()))

let find name =
  List.find (fun (c : Ex.curve) -> c.Ex.name = name) (Lazy.force curves)

let test_all_strategies_present () =
  let names = List.map (fun (c : Ex.curve) -> c.Ex.name) (Lazy.force curves) in
  Alcotest.(check (list string)) "paper strategies"
    [ "YoungDaly"; "FirstOrder"; "NumericalOptimum"; "DynamicProgramming" ]
    names

let test_values_in_unit_interval () =
  List.iter
    (fun (curve : Ex.curve) ->
      Array.iter
        (fun (t, v) ->
          if v < 0.0 || v > 1.0 then
            Alcotest.failf "%s at T=%g: %g outside [0,1]" curve.Ex.name t v)
        curve.Ex.points)
    (Lazy.force curves)

let test_dp_dominates_pointwise () =
  (* Exact values: the optimum must dominate at EVERY grid point, not
     just on average (no sampling noise to hide behind). *)
  let dp = find "DynamicProgramming" in
  List.iter
    (fun name ->
      let other = find name in
      Array.iteri
        (fun i (t, v) ->
          let _, dv = dp.Ex.points.(i) in
          if v > dv +. 1e-9 then
            Alcotest.failf "%s beats DP at T=%g: %g > %g" name t v dv)
        other.Ex.points)
    [ "YoungDaly"; "FirstOrder"; "NumericalOptimum" ]

let test_matches_simulation () =
  (* The simulated means must sit near the exact values (CI + small
     quantisation bias). *)
  let spec = Figures.scale ~n_traces:400 (spec ()) in
  let sim = Experiments.Runner.run spec in
  let exact_dp = find "DynamicProgramming" in
  match
    Experiments.Runner.curve_for sim ~c:80.0
      ~strategy:(Spec.Dynamic_programming { quantum = 1.0 })
  with
  | None -> Alcotest.fail "missing simulated DP curve"
  | Some sim_dp ->
      Array.iteri
        (fun i (p : Experiments.Runner.point) ->
          let t, v = exact_dp.Ex.points.(i) in
          let tolerance = p.Experiments.Runner.ci95 +. 0.02 in
          if abs_float (v -. p.Experiments.Runner.mean) > tolerance then
            Alcotest.failf "T=%g: exact %.4f vs simulated %.4f ± %.4f" t v
              p.Experiments.Runner.mean p.Experiments.Runner.ci95)
        sim_dp.Experiments.Runner.points

let test_rejects_non_exponential () =
  let weibull = Option.get (Figures.find "ext-weibull") in
  (match Ex.figure weibull with
  | _ -> Alcotest.fail "weibull spec accepted"
  | exception Invalid_argument _ -> ());
  let noisy = Option.get (Figures.find "ext-stochastic-ckpt") in
  (match Ex.figure noisy with
  | _ -> Alcotest.fail "stochastic-checkpoint spec accepted"
  | exception Invalid_argument _ -> ())

let test_unsupported_strategies_skipped () =
  Alcotest.(check bool) "VariableSegments unsupported" false
    (Ex.supported_strategy Spec.Variable_segments);
  Alcotest.(check bool) "RenewalDP unsupported" false
    (Ex.supported_strategy (Spec.Renewal_dp { quantum = 1.0 }));
  let ablation =
    Figures.scale ~t_step:300.0 ~t_max:900.0
      (Option.get (Figures.find "ext-ablation"))
  in
  let curves = Ex.figure ablation in
  Alcotest.(check bool) "skips unsupported, keeps the rest" true
    (List.length curves = List.length ablation.Spec.strategies - 1
    && not (List.exists (fun (c : Ex.curve) -> c.Ex.name = "VariableSegments") curves))

let test_csv_export () =
  let path = Filename.temp_file "fixedlen_exact" ".csv" in
  Ex.to_csv ~curves:(Lazy.force curves) ~id:"fig3" ~path;
  let ic = open_in path in
  let header = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "figure,c,strategy,t,exact_proportion" header

let test_plots_render () =
  let s = Ex.plots (spec ()) (Lazy.force curves) in
  Alcotest.(check bool) "non-empty plot" true
    (String.length s > 200 && String.contains s '*')

let () =
  Alcotest.run "exact"
    [
      ( "curves",
        [
          Alcotest.test_case "strategies present" `Quick test_all_strategies_present;
          Alcotest.test_case "values in [0,1]" `Quick test_values_in_unit_interval;
          Alcotest.test_case "DP dominates pointwise" `Quick
            test_dp_dominates_pointwise;
          Alcotest.test_case "matches simulation" `Slow test_matches_simulation;
        ] );
      ( "interface",
        [
          Alcotest.test_case "rejects non-exponential" `Quick
            test_rejects_non_exponential;
          Alcotest.test_case "skips unsupported strategies" `Slow
            test_unsupported_strategies_skipped;
          Alcotest.test_case "csv export" `Quick test_csv_export;
          Alcotest.test_case "plots render" `Quick test_plots_render;
        ] );
    ]
