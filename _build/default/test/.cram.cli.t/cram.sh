  $ ../../bin/main.exe list
  $ ../../bin/main.exe analysis
  $ ../../bin/main.exe thresholds --lambda 0.001 --c 20 --up-to 700
  $ ../../bin/main.exe dp --lambda 0.01 --c 10 --length 150 --quantum 1
  $ ../../bin/main.exe traces --count 5 --horizon 100 --out t.txt --seed 7
  $ ../../bin/main.exe traces --check t.txt
  $ ../../bin/main.exe figure fig99 --quiet 2>/dev/null
  $ ../../bin/main.exe series --lambda 0.01 --c 10 --reservation 150 --work 500 --repetitions 20 --seed 3
  $ ../../bin/main.exe breakdown --lambda 0.01 --c 10 --length 200 --traces 50 --seed 3
  $ ../../bin/main.exe exact fig3 --t-step 400 --no-plot --csv exact.csv
  $ cat exact.csv
