(* Tests for Numerics.Neldermead. *)

module NM = Numerics.Neldermead

let close ?(eps = 1e-5) = Alcotest.(check (float eps))

let test_quadratic_1d () =
  let f x = -.((x.(0) -. 3.0) ** 2.0) in
  let r = NM.maximize ~f [| 0.0 |] in
  close "argmax" 3.0 r.NM.x.(0);
  close ~eps:1e-8 "value" 0.0 r.NM.value;
  Alcotest.(check bool) "converged" true r.NM.converged

let test_quadratic_3d () =
  let target = [| 1.0; -2.0; 0.5 |] in
  let f x =
    let acc = ref 0.0 in
    Array.iteri (fun i xi -> acc := !acc +. ((xi -. target.(i)) ** 2.0)) x;
    -. !acc
  in
  let r = NM.maximize ~max_iter:5000 ~f [| 0.0; 0.0; 0.0 |] in
  Array.iteri
    (fun i t -> close ~eps:1e-4 (Printf.sprintf "coordinate %d" i) t r.NM.x.(i))
    target

let test_rosenbrock_valley () =
  (* Maximise the negated Rosenbrock function: optimum at (1, 1). *)
  let f x =
    let a = 1.0 -. x.(0) and b = x.(1) -. (x.(0) *. x.(0)) in
    -.((a *. a) +. (100.0 *. b *. b))
  in
  let r = NM.maximize ~max_iter:10_000 ~tol:1e-14 ~f [| -1.2; 1.0 |] in
  close ~eps:1e-3 "x" 1.0 r.NM.x.(0);
  close ~eps:1e-3 "y" 1.0 r.NM.x.(1)

let test_rejection_regions () =
  (* neg_infinity outside the unit disc: the optimum of x + y on the
     disc is at (1/sqrt 2, 1/sqrt 2). *)
  let f x =
    if (x.(0) *. x.(0)) +. (x.(1) *. x.(1)) > 1.0 then neg_infinity
    else x.(0) +. x.(1)
  in
  let r = NM.maximize ~max_iter:5000 ~f [| 0.1; 0.2 |] in
  close ~eps:1e-3 "value sqrt 2" (sqrt 2.0) r.NM.value

let test_input_unmodified () =
  let x0 = [| 5.0; 5.0 |] in
  let f x = -.(x.(0) *. x.(0)) -. (x.(1) *. x.(1)) in
  ignore (NM.maximize ~f x0);
  Alcotest.(check (array (float 0.0))) "input intact" [| 5.0; 5.0 |] x0

let test_empty_rejected () =
  (match NM.maximize ~f:(fun _ -> 0.0) [||] with
  | _ -> Alcotest.fail "empty start accepted"
  | exception Invalid_argument _ -> ())

let test_bounded () =
  (* unconstrained argmax at 10, box caps it at 4 *)
  let f x = -.((x.(0) -. 10.0) ** 2.0) in
  let r = NM.maximize_bounded ~f ~lo:[| 0.0 |] ~hi:[| 4.0 |] [| 1.0 |] in
  close ~eps:1e-6 "clamped argmax" 4.0 r.NM.x.(0)

let test_bounded_interior () =
  let f x = -.((x.(0) -. 2.0) ** 2.0) in
  let r = NM.maximize_bounded ~f ~lo:[| 0.0 |] ~hi:[| 4.0 |] [| 3.9 |] in
  close ~eps:1e-4 "interior optimum found" 2.0 r.NM.x.(0)

let test_bounded_validation () =
  (match
     NM.maximize_bounded ~f:(fun _ -> 0.0) ~lo:[| 1.0 |] ~hi:[| 0.0 |] [| 0.5 |]
   with
  | _ -> Alcotest.fail "lo > hi accepted"
  | exception Invalid_argument _ -> ())

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"finds the vertex of random parabolas" ~count:200
         QCheck.(pair (float_range (-20.0) 20.0) (float_range 0.1 10.0))
         (fun (center, curvature) ->
           let f x = -.curvature *. ((x.(0) -. center) ** 2.0) in
           let r = NM.maximize ~f [| 0.0 |] in
           abs_float (r.NM.x.(0) -. center) < 1e-3));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"result never below the start value" ~count:200
         QCheck.(pair (float_range (-5.0) 5.0) (float_range (-5.0) 5.0))
         (fun (a, b) ->
           let f x = sin x.(0) +. cos x.(1) in
           let r = NM.maximize ~f [| a; b |] in
           r.NM.value >= f [| a; b |] -. 1e-12));
  ]

let () =
  Alcotest.run "neldermead"
    [
      ( "unconstrained",
        [
          Alcotest.test_case "1d quadratic" `Quick test_quadratic_1d;
          Alcotest.test_case "3d quadratic" `Quick test_quadratic_3d;
          Alcotest.test_case "rosenbrock valley" `Quick test_rosenbrock_valley;
          Alcotest.test_case "rejection regions" `Quick test_rejection_regions;
          Alcotest.test_case "input unmodified" `Quick test_input_unmodified;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
        ] );
      ( "bounded",
        [
          Alcotest.test_case "clamped optimum" `Quick test_bounded;
          Alcotest.test_case "interior optimum" `Quick test_bounded_interior;
          Alcotest.test_case "validation" `Quick test_bounded_validation;
        ] );
      ("properties", qcheck_tests);
    ]
