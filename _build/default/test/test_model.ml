(* Tests for Core.Model: fixed-work closed forms against both known
   values and direct Monte-Carlo simulation of the fixed-work process. *)

module M = Core.Model
module P = Fault.Params

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let test_young_daly_value () =
  (* λ=0.001, C=20: W_YD = sqrt(2 * 1000 * 20) = 200. *)
  let p = P.paper ~lambda:0.001 ~c:20.0 ~d:0.0 in
  close "W_YD" 200.0 (M.young_daly_period p)

let test_young_daly_scaling () =
  (* W_YD scales as sqrt(C) and as sqrt(mu). *)
  let p1 = P.paper ~lambda:0.001 ~c:10.0 ~d:0.0 in
  let p2 = P.paper ~lambda:0.001 ~c:40.0 ~d:0.0 in
  close ~eps:1e-9 "sqrt(C) scaling" 2.0
    (M.young_daly_period p2 /. M.young_daly_period p1);
  let p3 = P.paper ~lambda:0.004 ~c:10.0 ~d:0.0 in
  close ~eps:1e-9 "sqrt(mu) scaling" 2.0
    (M.young_daly_period p1 /. M.young_daly_period p3)

let test_daly_second_order () =
  let p = P.paper ~lambda:0.001 ~c:20.0 ~d:0.0 in
  (* W = 200 (1 + sqrt(0.01)/3 + 0.01/9) - 20 *)
  let expected = (200.0 *. (1.0 +. (0.1 /. 3.0) +. (0.01 /. 9.0))) -. 20.0 in
  close ~eps:1e-9 "second order" expected (M.daly_second_order_period p);
  (* degenerate regime: C >= 2 mu *)
  let p_bad = P.paper ~lambda:1.0 ~c:5.0 ~d:0.0 in
  close "degenerate = mu" 1.0 (M.daly_second_order_period p_bad)

let test_optimal_period_stationarity () =
  (* The Lambert-form period must be a stationary point of the
     per-work expected time. *)
  let p = P.paper ~lambda:0.002 ~c:30.0 ~d:4.0 in
  let w = M.optimal_period p in
  let h w = M.expected_time_per_work p ~w in
  let eps = 1e-4 *. w in
  Alcotest.(check bool) "local minimum" true
    (h w <= h (w +. eps) && h w <= h (w -. eps))

let test_optimal_period_approaches_young_daly () =
  (* As λ -> 0 the exact optimum converges to the Young/Daly value. *)
  let ratio lambda =
    let p = P.paper ~lambda ~c:10.0 ~d:0.0 in
    M.optimal_period p /. M.young_daly_period p
  in
  Alcotest.(check bool) "ratio -> 1 monotonically" true
    (abs_float (ratio 1e-6 -. 1.0) < abs_float (ratio 1e-3 -. 1.0));
  close ~eps:1e-3 "ratio at tiny lambda" 1.0 (ratio 1e-8)

let test_expected_time_zero_work () =
  (* W = 0 still pays for the checkpoint. *)
  let p = P.paper ~lambda:0.01 ~c:10.0 ~d:0.0 in
  let expected = 100.0 *. exp (0.01 *. 10.0) *. expm1 (0.01 *. 10.0) in
  close ~eps:1e-9 "E(0)" expected (M.expected_time_fixed_work p ~w:0.0)

(* Direct Monte-Carlo of the fixed-work process: execute W + C with
   restart-from-scratch after failures (failures can strike during
   recovery, not during downtime), and compare to the closed form. *)
let simulate_fixed_work p ~w ~seed ~reps =
  let open P in
  let rng = Numerics.Rng.create ~seed in
  let total = ref 0.0 in
  for _ = 1 to reps do
    (* first attempt has no recovery *)
    let rec attempt ~elapsed ~need =
      let iat = Numerics.Rng.exponential rng ~rate:p.lambda in
      if iat >= need then elapsed +. need
      else attempt ~elapsed:(elapsed +. iat +. p.d) ~need:(p.r +. w +. p.c)
    in
    total := !total +. attempt ~elapsed:0.0 ~need:(w +. p.c)
  done;
  !total /. float_of_int reps

let test_expected_time_vs_simulation () =
  let p = P.make ~lambda:0.01 ~c:10.0 ~r:6.0 ~d:3.0 in
  let w = 80.0 in
  let analytic = M.expected_time_fixed_work p ~w in
  let simulated = simulate_fixed_work p ~w ~seed:99L ~reps:200_000 in
  Alcotest.(check bool)
    (Printf.sprintf "analytic %.2f vs simulated %.2f within 1%%" analytic
       simulated)
    true
    (abs_float (analytic -. simulated) /. analytic < 0.01)

let test_expected_lost_time () =
  let p = P.paper ~lambda:0.01 ~c:1.0 ~d:0.0 in
  (* small x: E(lost | failure in x) -> x/2 *)
  close ~eps:1e-4 "short attempt loses half" 0.05 (M.expected_lost_time p ~x:0.1);
  (* large x: -> MTBF *)
  close ~eps:1.0 "long attempt loses ~MTBF" 100.0 (M.expected_lost_time p ~x:10_000.0);
  close "zero x" 0.0 (M.expected_lost_time p ~x:0.0)

let test_checkpoint_count () =
  let p = P.paper ~lambda:0.001 ~c:20.0 ~d:0.0 in
  (* W_YD = 200, stride 220. *)
  Alcotest.(check int) "too short" 0 (M.checkpoint_count_young_daly p ~horizon:15.0);
  Alcotest.(check int) "single" 1 (M.checkpoint_count_young_daly p ~horizon:100.0);
  Alcotest.(check int) "short means one" 1
    (M.checkpoint_count_young_daly p ~horizon:240.0);
  Alcotest.(check int) "two fit" 2 (M.checkpoint_count_young_daly p ~horizon:460.0);
  (* count must agree with the actual policy plan in a failure-free run *)
  List.iter
    (fun horizon ->
      let policy = Core.Policies.young_daly ~params:p in
      let plan = policy.Sim.Policy.plan ~tleft:horizon ~recovering:false in
      Alcotest.(check int)
        (Printf.sprintf "plan length at %g" horizon)
        (M.checkpoint_count_young_daly p ~horizon)
        (List.length plan))
    [ 15.0; 100.0; 240.0; 460.0; 500.0; 1000.0; 1999.0 ]

let test_invalid () =
  let p = P.paper ~lambda:0.01 ~c:1.0 ~d:0.0 in
  Alcotest.check_raises "negative work"
    (Invalid_argument "Model.expected_time_fixed_work: negative work")
    (fun () -> ignore (M.expected_time_fixed_work p ~w:(-1.0)));
  Alcotest.check_raises "per-work at 0"
    (Invalid_argument "Model.expected_time_per_work: w <= 0") (fun () ->
      ignore (M.expected_time_per_work p ~w:0.0))

let qcheck_tests =
  let params_arb =
    QCheck.make
      QCheck.Gen.(
        let* lambda = float_range 1e-5 0.02 in
        let* c = float_range 1.0 100.0 in
        let* d = float_range 0.0 10.0 in
        return (P.paper ~lambda ~c ~d))
      ~print:P.to_string
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"expected time increases with work" ~count:500
         params_arb (fun p ->
           M.expected_time_fixed_work p ~w:50.0
           < M.expected_time_fixed_work p ~w:51.0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"optimal period beats neighbours" ~count:500
         params_arb (fun p ->
           let w = M.optimal_period p in
           let h w = M.expected_time_per_work p ~w in
           h w <= h (w *. 1.05) +. 1e-9 && h w <= h (w *. 0.95) +. 1e-9));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"optimal period below Young/Daly" ~count:500
         params_arb (fun p ->
           (* The exact optimum is always smaller than the first-order
              Young/Daly approximation. *)
           M.optimal_period p <= M.young_daly_period p +. 1e-9));
  ]

let () =
  Alcotest.run "model"
    [
      ( "young-daly",
        [
          Alcotest.test_case "known value" `Quick test_young_daly_value;
          Alcotest.test_case "scaling laws" `Quick test_young_daly_scaling;
          Alcotest.test_case "second order" `Quick test_daly_second_order;
        ] );
      ( "optimal period",
        [
          Alcotest.test_case "stationarity" `Quick test_optimal_period_stationarity;
          Alcotest.test_case "Young/Daly limit" `Quick
            test_optimal_period_approaches_young_daly;
        ] );
      ( "fixed-work expectation",
        [
          Alcotest.test_case "zero work" `Quick test_expected_time_zero_work;
          Alcotest.test_case "matches simulation" `Slow
            test_expected_time_vs_simulation;
          Alcotest.test_case "expected lost time" `Quick test_expected_lost_time;
        ] );
      ( "checkpoint counts",
        [
          Alcotest.test_case "Young/Daly counts" `Quick test_checkpoint_count;
          Alcotest.test_case "invalid inputs" `Quick test_invalid;
        ] );
      ("properties", qcheck_tests);
    ]
