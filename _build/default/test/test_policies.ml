(* Tests for Core.Policies: naming, composition, and the behaviour of
   the assembled paper strategies. *)

module Po = Core.Policies
module P = Fault.Params
module Th = Core.Threshold

let params = P.paper ~lambda:0.001 ~c:20.0 ~d:0.0
let offsets = Alcotest.(list (float 1e-9))

let test_names () =
  Alcotest.(check string) "young daly" "YoungDaly"
    (Po.young_daly ~params).Sim.Policy.name;
  Alcotest.(check string) "daly2" "DalySecondOrder"
    (Po.daly_second_order ~params).Sim.Policy.name;
  Alcotest.(check string) "lambert" "LambertPeriod"
    (Po.lambert_optimal_period ~params).Sim.Policy.name;
  Alcotest.(check string) "fo" "FirstOrder"
    (Po.first_order ~params ~horizon:500.0).Sim.Policy.name;
  Alcotest.(check string) "no" "NumericalOptimum"
    (Po.numerical_optimum ~params ~horizon:500.0).Sim.Policy.name

let test_all_paper_roster () =
  let names =
    List.map
      (fun p -> p.Sim.Policy.name)
      (Po.all_paper ~params ~quantum:1.0 ~horizon:400.0)
  in
  Alcotest.(check (list string)) "paper order"
    [ "YoungDaly"; "FirstOrder"; "NumericalOptimum"; "DynamicProgramming" ]
    names

let test_young_daly_period_in_plan () =
  (* First checkpoint of a long fresh plan completes at W_YD + C. *)
  let policy = Po.young_daly ~params in
  match policy.Sim.Policy.plan ~tleft:2000.0 ~recovering:false with
  | first :: _ ->
      Alcotest.(check (float 1e-9)) "W_YD + C" 220.0 first
  | [] -> Alcotest.fail "empty plan"

let test_threshold_policy_counts () =
  (* The threshold policy must plan exactly segments_for(span) equal
     segments. *)
  let table = Th.table_numerical ~params ~up_to:2000.0 in
  let policy = Po.of_threshold_table ~name:"x" ~params table in
  List.iter
    (fun tleft ->
      let expected = Th.segments_for table ~tleft in
      let plan = policy.Sim.Policy.plan ~tleft ~recovering:false in
      Alcotest.(check int)
        (Printf.sprintf "count at %g" tleft)
        expected (List.length plan);
      (* equal spacing *)
      match plan with
      | [] -> Alcotest.fail "no plan for feasible tleft"
      | first :: _ ->
          let seg = tleft /. float_of_int expected in
          Alcotest.(check (float 1e-6)) "equal segments" seg first)
    [ 100.0; 400.0; 700.0; 1500.0; 1999.0 ]

let test_threshold_policy_recovery_span () =
  (* With a pending recovery, the threshold is applied to the usable
     span (tleft - R) and segments shift accordingly. *)
  let table = Th.table_numerical ~params ~up_to:2000.0 in
  let policy = Po.of_threshold_table ~name:"x" ~params table in
  let tleft = 500.0 in
  let span = tleft -. params.P.r in
  let expected = Th.segments_for table ~tleft:span in
  let plan = policy.Sim.Policy.plan ~tleft ~recovering:true in
  Alcotest.(check int) "count from span" expected (List.length plan);
  (match plan with
  | first :: _ ->
      Alcotest.(check (float 1e-6)) "offset includes recovery"
        (params.P.r +. (span /. float_of_int expected))
        first
  | [] -> Alcotest.fail "no plan");
  Sim.Policy.validate_plan ~params ~tleft ~recovering:true plan

let test_threshold_policy_short () =
  let table = Th.table_numerical ~params ~up_to:2000.0 in
  let policy = Po.of_threshold_table ~name:"x" ~params table in
  Alcotest.(check offsets) "too short" []
    (policy.Sim.Policy.plan ~tleft:30.0 ~recovering:true);
  Alcotest.(check offsets) "single final" [ 30.0 ]
    (policy.Sim.Policy.plan ~tleft:30.0 ~recovering:false)

let test_first_order_switches_at_t2 () =
  let policy = Po.first_order ~params ~horizon:2000.0 in
  let t2 = Th.threshold_first_order ~params ~n:1 in
  Alcotest.(check int) "one below" 1
    (List.length (policy.Sim.Policy.plan ~tleft:(t2 -. 5.0) ~recovering:false));
  Alcotest.(check int) "two above" 2
    (List.length (policy.Sim.Policy.plan ~tleft:(t2 +. 5.0) ~recovering:false))

let test_periods_ordering () =
  (* Lambert-exact < Young/Daly; Daly's second-order estimate sits next
     to the exact value (no guaranteed side), far from Young/Daly. *)
  let wyd = Core.Model.young_daly_period params in
  let daly2 = Core.Model.daly_second_order_period params in
  let lambert = Core.Model.optimal_period params in
  Alcotest.(check bool)
    (Printf.sprintf "lambert %.2f < wyd %.2f" lambert wyd)
    true (lambert < wyd);
  Alcotest.(check bool)
    (Printf.sprintf "daly2 %.2f within 1%% of lambert %.2f" daly2 lambert)
    true
    (abs_float (daly2 -. lambert) /. lambert < 0.01)

let test_dynamic_programming_smoke () =
  let policy =
    Po.dynamic_programming ~params ~quantum:2.0 ~horizon:300.0 ()
  in
  Alcotest.(check string) "name" "DynamicProgramming" policy.Sim.Policy.name;
  let plan = policy.Sim.Policy.plan ~tleft:300.0 ~recovering:false in
  Sim.Policy.validate_plan ~params ~tleft:300.0 ~recovering:false plan;
  (* all offsets on the u = 2 grid *)
  List.iter
    (fun off ->
      let q = off /. 2.0 in
      Alcotest.(check (float 1e-9)) "on the quantum grid" (Float.round q) q)
    plan

let qcheck_tests =
  let arb =
    QCheck.make
      QCheck.Gen.(
        let* lambda = float_range 1e-4 0.02 in
        let* c = float_range 2.0 60.0 in
        let* tleft = float_range 1.0 2000.0 in
        let* recovering = bool in
        return (P.paper ~lambda ~c ~d:0.0, tleft, recovering))
      ~print:(fun (p, tleft, r) ->
        Printf.sprintf "%s tleft=%g rec=%b" (P.to_string p) tleft r)
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"threshold policies always emit valid plans"
         ~count:300 arb (fun (params, tleft, recovering) ->
           let policy = Po.numerical_optimum ~params ~horizon:2000.0 in
           match
             Sim.Policy.validate_plan ~params ~tleft ~recovering
               (policy.Sim.Policy.plan ~tleft ~recovering)
           with
           | () -> true
           | exception Invalid_argument msg ->
               QCheck.Test.fail_reportf "invalid: %s" msg));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"young_daly always emits valid plans" ~count:300
         arb (fun (params, tleft, recovering) ->
           let policy = Po.young_daly ~params in
           match
             Sim.Policy.validate_plan ~params ~tleft ~recovering
               (policy.Sim.Policy.plan ~tleft ~recovering)
           with
           | () -> true
           | exception Invalid_argument msg ->
               QCheck.Test.fail_reportf "invalid: %s" msg));
  ]

let () =
  Alcotest.run "policies"
    [
      ( "composition",
        [
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "paper roster" `Quick test_all_paper_roster;
          Alcotest.test_case "DP smoke (u=2)" `Quick test_dynamic_programming_smoke;
          Alcotest.test_case "Young/Daly first checkpoint" `Quick
            test_young_daly_period_in_plan;
        ] );
      ( "threshold policies",
        [
          Alcotest.test_case "segment counts" `Quick test_threshold_policy_counts;
          Alcotest.test_case "recovery span" `Quick
            test_threshold_policy_recovery_span;
          Alcotest.test_case "short reservations" `Quick test_threshold_policy_short;
          Alcotest.test_case "first-order switch at T2" `Quick
            test_first_order_switches_at_t2;
        ] );
      ( "periods",
        [ Alcotest.test_case "orderings" `Quick test_periods_ordering ] );
      ("properties", qcheck_tests);
    ]
