(* Tests for Numerics.Specfun. *)

module S = Numerics.Specfun

let close ?(eps = 1e-12) = Alcotest.(check (float eps))

let test_erf_known_values () =
  close "erf 0" 0.0 (S.erf 0.0);
  (* reference values from standard tables *)
  close ~eps:1e-7 "erf 0.5" 0.5204998778130465 (S.erf 0.5);
  close ~eps:1e-7 "erf 1" 0.8427007929497149 (S.erf 1.0);
  close ~eps:1e-7 "erf 2" 0.9953222650189527 (S.erf 2.0);
  close ~eps:1e-9 "erf 5 ~ 1" 1.0 (S.erf 5.0)

let test_erf_odd () =
  List.iter
    (fun x -> close ~eps:1e-12 (Printf.sprintf "odd at %g" x) (-.S.erf x) (S.erf (-.x)))
    [ 0.1; 0.7; 1.3; 2.9 ]

let test_erfc_complement () =
  List.iter
    (fun x ->
      close ~eps:1e-12 (Printf.sprintf "complement at %g" x) 1.0
        (S.erf x +. S.erfc x))
    [ -2.0; -0.5; 0.0; 0.3; 1.0; 3.0 ]

let test_erfc_tail_positive () =
  (* Far tail: must stay positive and decrease. *)
  let tail x = S.erfc x in
  Alcotest.(check bool) "positive" true (tail 6.0 > 0.0);
  Alcotest.(check bool) "decreasing" true (tail 6.0 < tail 5.0);
  (* erfc(6) ~ 2.15e-17 *)
  Alcotest.(check bool) "right order of magnitude" true
    (tail 6.0 < 1e-15 && tail 6.0 > 1e-18)

let test_normal_cdf () =
  close ~eps:1e-12 "median" 0.5 (S.normal_cdf 0.0);
  close ~eps:1e-7 "one sigma" 0.8413447460685429 (S.normal_cdf 1.0);
  close ~eps:1e-7 "shifted" 0.5 (S.normal_cdf ~mu:3.0 ~sigma:2.0 3.0);
  close ~eps:1e-7 "scaled" (S.normal_cdf 1.0) (S.normal_cdf ~mu:3.0 ~sigma:2.0 5.0)

let test_normal_sf () =
  List.iter
    (fun x ->
      close ~eps:1e-12 (Printf.sprintf "sf at %g" x) 1.0
        (S.normal_cdf x +. S.normal_sf x))
    [ -1.5; 0.0; 0.8; 2.5 ];
  Alcotest.check_raises "sigma 0" (Invalid_argument "Specfun.normal_sf: sigma <= 0")
    (fun () -> ignore (S.normal_sf ~sigma:0.0 1.0))

let test_gamma () =
  close ~eps:1e-10 "gamma 1" 1.0 (S.gamma 1.0);
  close ~eps:1e-10 "gamma 5 = 24" 24.0 (S.gamma 5.0);
  close ~eps:1e-9 "gamma 1/2 = sqrt pi" (sqrt Float.pi) (S.gamma 0.5);
  (* recurrence *)
  close ~eps:1e-9 "recurrence" (3.7 *. S.gamma 3.7) (S.gamma 4.7)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"erf is increasing" ~count:500
         QCheck.(pair (float_range (-4.0) 4.0) (float_range 1e-6 0.5))
         (fun (x, dx) -> S.erf (x +. dx) > S.erf x));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"normal_cdf in [0, 1]" ~count:500
         QCheck.(float_range (-20.0) 20.0)
         (fun x ->
           let p = S.normal_cdf x in
           p >= 0.0 && p <= 1.0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"log_gamma recurrence" ~count:500
         QCheck.(float_range 0.6 50.0)
         (fun x ->
           abs_float (S.log_gamma (x +. 1.0) -. (S.log_gamma x +. log x))
           < 1e-9 *. (1.0 +. abs_float (S.log_gamma x))));
  ]

let () =
  Alcotest.run "specfun"
    [
      ( "erf",
        [
          Alcotest.test_case "known values" `Quick test_erf_known_values;
          Alcotest.test_case "odd symmetry" `Quick test_erf_odd;
          Alcotest.test_case "erfc complement" `Quick test_erfc_complement;
          Alcotest.test_case "tail behaviour" `Quick test_erfc_tail_positive;
        ] );
      ( "normal",
        [
          Alcotest.test_case "cdf" `Quick test_normal_cdf;
          Alcotest.test_case "survival" `Quick test_normal_sf;
        ] );
      ("gamma", [ Alcotest.test_case "values" `Quick test_gamma ]);
      ("properties", qcheck_tests);
    ]
