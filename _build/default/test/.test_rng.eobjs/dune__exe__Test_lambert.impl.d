test/test_lambert.ml: Alcotest List Numerics Printf QCheck QCheck_alcotest
