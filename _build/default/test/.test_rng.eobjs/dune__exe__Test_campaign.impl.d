test/test_campaign.ml: Alcotest Array Experiments Filename Fun List Output String Sys
