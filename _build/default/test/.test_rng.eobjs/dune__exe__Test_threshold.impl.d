test/test_threshold.ml: Alcotest Array Core Fault List Printf QCheck QCheck_alcotest
