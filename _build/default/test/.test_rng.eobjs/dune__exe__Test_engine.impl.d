test/test_engine.ml: Alcotest Array Fault Int64 List Printf QCheck QCheck_alcotest Sim
