test/test_plan_opt.ml: Alcotest Core Fault List Printf Sim String
