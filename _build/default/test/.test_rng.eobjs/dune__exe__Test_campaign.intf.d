test/test_campaign.mli:
