test/test_policy.ml: Alcotest Fault Printf QCheck QCheck_alcotest Sim
