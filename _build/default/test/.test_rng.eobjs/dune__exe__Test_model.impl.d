test/test_model.ml: Alcotest Core Fault List Numerics Printf QCheck QCheck_alcotest Sim
