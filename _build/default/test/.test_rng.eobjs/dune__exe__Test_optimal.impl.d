test/test_optimal.ml: Alcotest Core Fault List Numerics Printf Sim
