test/test_integrate.mli:
