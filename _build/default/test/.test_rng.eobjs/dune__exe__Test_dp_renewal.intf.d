test/test_dp_renewal.mli:
