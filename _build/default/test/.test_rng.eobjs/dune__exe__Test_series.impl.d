test/test_series.ml: Alcotest Array Fault List Numerics Printf Sim
