test/test_specfun.ml: Alcotest Float List Numerics Printf QCheck QCheck_alcotest
