test/test_trace_io.ml: Alcotest Array Fault Filename Float Fun Printf Sim String Sys
