test/test_fault.ml: Alcotest Array Fault Float Int64 Printf QCheck QCheck_alcotest
