test/test_experiments.ml: Alcotest Array Experiments Fault Filename Lazy List Option Output Parallel Printf String Sys
