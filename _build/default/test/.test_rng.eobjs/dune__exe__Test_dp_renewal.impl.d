test/test_dp_renewal.ml: Alcotest Core Fault List Numerics Printf Sim
