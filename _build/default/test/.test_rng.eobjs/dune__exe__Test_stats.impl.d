test/test_stats.ml: Alcotest Array Float Gen Numerics QCheck QCheck_alcotest
