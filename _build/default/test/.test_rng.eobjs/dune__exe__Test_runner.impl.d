test/test_runner.ml: Alcotest Array Fault Format Numerics Printf Sim String
