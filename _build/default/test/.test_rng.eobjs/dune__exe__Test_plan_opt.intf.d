test/test_plan_opt.mli:
