test/test_parallel.ml: Alcotest Array Core Fault Parallel Printf QCheck QCheck_alcotest
