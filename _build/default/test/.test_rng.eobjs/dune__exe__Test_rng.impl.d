test/test_rng.ml: Alcotest Array Float Int64 Numerics Printf QCheck QCheck_alcotest
