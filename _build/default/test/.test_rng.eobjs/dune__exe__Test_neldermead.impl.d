test/test_neldermead.ml: Alcotest Array Numerics Printf QCheck QCheck_alcotest
