test/test_slack.mli:
