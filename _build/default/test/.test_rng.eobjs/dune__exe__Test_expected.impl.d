test/test_expected.ml: Alcotest Array Core Fault Float Int64 List Numerics Printf QCheck QCheck_alcotest Sim String
