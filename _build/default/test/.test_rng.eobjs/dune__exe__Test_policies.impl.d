test/test_policies.ml: Alcotest Core Fault Float List Printf QCheck QCheck_alcotest Sim
