test/test_integrate.ml: Alcotest Array Float Numerics QCheck QCheck_alcotest
