test/test_dp.ml: Alcotest Array Core Fault Float List Numerics Printf QCheck QCheck_alcotest Sim
