test/test_lambert.mli:
