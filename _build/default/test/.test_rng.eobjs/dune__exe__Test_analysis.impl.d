test/test_analysis.ml: Alcotest Core Fault List Printf QCheck QCheck_alcotest Sim
