test/test_output.ml: Alcotest Filename List Output String Sys
