test/test_neldermead.mli:
