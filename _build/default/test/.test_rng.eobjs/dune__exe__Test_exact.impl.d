test/test_exact.ml: Alcotest Array Experiments Filename Lazy List Option String Sys
