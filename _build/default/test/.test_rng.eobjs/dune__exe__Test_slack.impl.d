test/test_slack.ml: Alcotest Core Fault List Numerics Printf QCheck QCheck_alcotest Sim
