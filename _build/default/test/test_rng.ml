(* Tests for Numerics.Rng: determinism, independence, and the first two
   moments of every distribution. *)

module Rng = Numerics.Rng

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

let draws rng n f = Array.init n (fun _ -> f rng)

let mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let variance xs =
  let m = mean xs in
  Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
  /. float_of_int (Array.length xs - 1)

let test_determinism () =
  let a = Rng.create ~seed:123L and b = Rng.create ~seed:123L in
  for i = 1 to 1000 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different seeds diverge" true (!same < 2)

let test_copy () =
  let a = Rng.create ~seed:77L in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.bits64 a) (Rng.bits64 b)

let test_split_independent () =
  let parent = Rng.create ~seed:9L in
  let child1 = Rng.split parent in
  let child2 = Rng.split parent in
  let x1 = draws child1 256 Rng.float and x2 = draws child2 256 Rng.float in
  let identical = ref true in
  Array.iteri (fun i x -> if x <> x2.(i) then identical := false) x1;
  Alcotest.(check bool) "children differ" false !identical

let test_float_range_unit () =
  let rng = Rng.create ~seed:5L in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    if x < 0.0 || x >= 1.0 then Alcotest.fail "float outside [0, 1)"
  done

let test_uniform_moments () =
  let rng = Rng.create ~seed:11L in
  let xs = draws rng 200_000 Rng.float in
  check_close ~eps:5e-3 "mean 1/2" 0.5 (mean xs);
  check_close ~eps:5e-3 "variance 1/12" (1.0 /. 12.0) (variance xs)

let test_int_bounds () =
  let rng = Rng.create ~seed:17L in
  let counts = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let v = Rng.int rng ~bound:7 in
    if v < 0 || v >= 7 then Alcotest.fail "int outside bound";
    counts.(v) <- counts.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 9_000 || c > 11_000 then
        Alcotest.failf "bucket %d count %d far from uniform" i c)
    counts

let test_int_invalid () =
  let rng = Rng.create ~seed:1L in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng ~bound:0))

let test_exponential_moments () =
  let rng = Rng.create ~seed:23L in
  let rate = 0.01 in
  let xs = draws rng 200_000 (fun r -> Rng.exponential r ~rate) in
  check_close ~eps:2.0 "mean 1/rate" (1.0 /. rate) (mean xs);
  check_close ~eps:(0.05 /. (rate *. rate)) "variance 1/rate^2"
    (1.0 /. (rate *. rate))
    (variance xs)

let test_exponential_memoryless_tail () =
  (* P(X > a + b | X > a) = P(X > b): compare tail frequencies. *)
  let rng = Rng.create ~seed:29L in
  let xs = draws rng 200_000 (fun r -> Rng.exponential r ~rate:1.0) in
  let tail t = Array.fold_left (fun acc x -> if x > t then acc + 1 else acc) 0 xs in
  let p1 = float_of_int (tail 2.0) /. float_of_int (tail 1.0) in
  let p0 = float_of_int (tail 1.0) /. float_of_int (Array.length xs) in
  check_close ~eps:0.02 "memorylessness" p0 p1

let test_weibull_shape_one_is_exponential () =
  let a = Rng.create ~seed:31L and b = Rng.create ~seed:31L in
  for _ = 1 to 1000 do
    let w = Rng.weibull a ~shape:1.0 ~scale:10.0 in
    let e = Rng.exponential b ~rate:0.1 in
    check_close ~eps:1e-9 "weibull(1) = exp" e w
  done

let test_weibull_mean () =
  let rng = Rng.create ~seed:37L in
  let shape = 2.0 and scale = 5.0 in
  let xs = draws rng 200_000 (fun r -> Rng.weibull r ~shape ~scale) in
  (* mean = scale * Γ(1 + 1/2) = scale * sqrt(pi)/2 *)
  check_close ~eps:0.05 "weibull mean" (scale *. sqrt Float.pi /. 2.0) (mean xs)

let test_normal_moments () =
  let rng = Rng.create ~seed:41L in
  let xs = draws rng 200_000 (fun r -> Rng.normal r ~mu:3.0 ~sigma:2.0) in
  check_close ~eps:0.03 "normal mean" 3.0 (mean xs);
  check_close ~eps:0.1 "normal variance" 4.0 (variance xs)

let test_lognormal_mean () =
  let rng = Rng.create ~seed:43L in
  let mu = 0.5 and sigma = 0.75 in
  let xs = draws rng 300_000 (fun r -> Rng.lognormal r ~mu ~sigma) in
  check_close ~eps:0.05 "lognormal mean"
    (exp (mu +. (0.5 *. sigma *. sigma)))
    (mean xs)

let test_gamma_int_moments () =
  let rng = Rng.create ~seed:47L in
  let shape = 4 and scale = 2.5 in
  let xs = draws rng 100_000 (fun r -> Rng.gamma_int r ~shape ~scale) in
  check_close ~eps:0.1 "erlang mean" (float_of_int shape *. scale) (mean xs);
  check_close ~eps:0.8 "erlang variance"
    (float_of_int shape *. scale *. scale)
    (variance xs)

let test_invalid_args () =
  let rng = Rng.create ~seed:1L in
  Alcotest.check_raises "exponential rate 0"
    (Invalid_argument "Rng.exponential: rate must be positive") (fun () ->
      ignore (Rng.exponential rng ~rate:0.0));
  Alcotest.check_raises "weibull shape 0"
    (Invalid_argument "Rng.weibull: shape and scale must be positive")
    (fun () -> ignore (Rng.weibull rng ~shape:0.0 ~scale:1.0));
  Alcotest.check_raises "gamma shape 0"
    (Invalid_argument "Rng.gamma_int: shape must be >= 1") (fun () ->
      ignore (Rng.gamma_int rng ~shape:0 ~scale:1.0))

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"exponential draws are positive" ~count:1000
         QCheck.(pair (int_bound 1_000_000) (float_range 1e-6 10.0))
         (fun (seed, rate) ->
           let rng = Rng.create ~seed:(Int64.of_int seed) in
           Rng.exponential rng ~rate > 0.0));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"float_range stays in range" ~count:1000
         QCheck.(pair (int_bound 1_000_000) (pair (float_range (-5.0) 5.0) (float_range 0.0 10.0)))
         (fun (seed, (lo, span)) ->
           let rng = Rng.create ~seed:(Int64.of_int seed) in
           let hi = lo +. span in
           let x = Rng.float_range rng ~lo ~hi in
           x >= lo && (x < hi || hi = lo)));
  ]

let () =
  Alcotest.run "rng"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same stream" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy replays" `Quick test_copy;
          Alcotest.test_case "split independence" `Quick test_split_independent;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "float in [0,1)" `Quick test_float_range_unit;
          Alcotest.test_case "uniform moments" `Slow test_uniform_moments;
          Alcotest.test_case "int bounds and uniformity" `Slow test_int_bounds;
          Alcotest.test_case "int invalid bound" `Quick test_int_invalid;
          Alcotest.test_case "exponential moments" `Slow test_exponential_moments;
          Alcotest.test_case "exponential memorylessness" `Slow
            test_exponential_memoryless_tail;
          Alcotest.test_case "weibull(1) = exponential" `Quick
            test_weibull_shape_one_is_exponential;
          Alcotest.test_case "weibull mean" `Slow test_weibull_mean;
          Alcotest.test_case "normal moments" `Slow test_normal_moments;
          Alcotest.test_case "lognormal mean" `Slow test_lognormal_mean;
          Alcotest.test_case "erlang moments" `Slow test_gamma_int_moments;
          Alcotest.test_case "invalid arguments" `Quick test_invalid_args;
        ] );
      ("properties", qcheck_tests);
    ]
