(* Tests for Numerics.Rootfind. *)

module R = Numerics.Rootfind

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

let test_bisect_linear () =
  close "root of 2x - 3" 1.5 (R.bisect ~f:(fun x -> (2.0 *. x) -. 3.0) 0.0 10.0)

let test_bisect_cos () =
  close "root of cos" (Float.pi /. 2.0) (R.bisect ~f:cos 0.0 3.0)

let test_bisect_exact_endpoint () =
  close "zero at left end" 2.0 (R.bisect ~f:(fun x -> x -. 2.0) 2.0 5.0)

let test_bisect_no_bracket () =
  Alcotest.check_raises "no sign change"
    (R.No_bracket "bisect: no sign change on [1, 2]") (fun () ->
      ignore (R.bisect ~f:(fun x -> x) 1.0 2.0))

let test_brent_polynomial () =
  (* x^3 - 2x - 5 = 0 has a root near 2.0945514815423265 (classic Brent
     test function). *)
  let f x = (x *. x *. x) -. (2.0 *. x) -. 5.0 in
  close ~eps:1e-10 "brent cubic" 2.0945514815423265 (R.brent ~f 2.0 3.0)

let test_brent_flat_then_steep () =
  let f x = if x < 1.0 then -1e-12 else exp (x -. 1.0) -. 1.0 in
  let root = R.brent ~f 0.0 5.0 in
  Alcotest.(check bool) "in bracket" true (root >= 0.0 && root <= 5.0);
  close ~eps:1e-6 "residual small" 0.0 (f root)

let test_brent_matches_bisect () =
  let f x = log x -. 1.0 in
  close ~eps:1e-9 "brent = bisect = e" (R.bisect ~f 1.0 10.0) (R.brent ~f 1.0 10.0)

let test_expand_bracket () =
  let f x = x -. 100.0 in
  let lo, hi = R.expand_bracket ~f 0.0 1.0 in
  Alcotest.(check bool) "bracket found" true (f lo *. f hi <= 0.0);
  close ~eps:1e-9 "root via expanded bracket" 100.0 (R.brent ~f lo hi)

let test_expand_bracket_failure () =
  (match R.expand_bracket ~max_iter:10 ~f:(fun _ -> 1.0) 0.0 1.0 with
  | _ -> Alcotest.fail "expected No_bracket"
  | exception R.No_bracket _ -> ())

let test_first_crossing () =
  (* sin has zeros at pi, 2 pi, ...: the scan must find the FIRST one. *)
  match R.first_crossing ~f:sin ~lo:1.0 ~hi:10.0 ~steps:500 with
  | None -> Alcotest.fail "no crossing found"
  | Some (a, b) ->
      Alcotest.(check bool) "brackets pi" true (a <= Float.pi && Float.pi <= b);
      close ~eps:1e-9 "refined" Float.pi (R.brent ~f:sin a b)

let test_first_crossing_none () =
  Alcotest.(check bool)
    "no crossing on positive function" true
    (R.first_crossing ~f:(fun x -> (x *. x) +. 1.0) ~lo:0.0 ~hi:5.0 ~steps:100
    = None)

let test_newton () =
  let f x = (x *. x) -. 2.0 and df x = 2.0 *. x in
  close ~eps:1e-10 "sqrt 2" (sqrt 2.0) (R.newton ~f ~df 1.0)

let test_newton_zero_derivative () =
  (match R.newton ~f:(fun _ -> 1.0) ~df:(fun _ -> 0.0) 1.0 with
  | _ -> Alcotest.fail "expected No_bracket"
  | exception R.No_bracket _ -> ())

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"brent solves random monotone lines" ~count:500
         QCheck.(pair (float_range 0.1 100.0) (float_range (-50.0) 50.0))
         (fun (a, b) ->
           let f x = (a *. x) +. b in
           let root = R.brent ~f (-1000.0) 1000.0 in
           abs_float (f root) < 1e-6));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"bisect residual small on random cubics"
         ~count:300
         QCheck.(float_range (-5.0) 5.0)
         (fun shift ->
           let f x = ((x -. shift) ** 3.0) +. (x -. shift) in
           let root = R.bisect ~f (shift -. 10.0) (shift +. 10.0) in
           abs_float (root -. shift) < 1e-6));
  ]

let () =
  Alcotest.run "rootfind"
    [
      ( "bisect",
        [
          Alcotest.test_case "linear" `Quick test_bisect_linear;
          Alcotest.test_case "cos" `Quick test_bisect_cos;
          Alcotest.test_case "root at endpoint" `Quick test_bisect_exact_endpoint;
          Alcotest.test_case "no bracket" `Quick test_bisect_no_bracket;
        ] );
      ( "brent",
        [
          Alcotest.test_case "cubic" `Quick test_brent_polynomial;
          Alcotest.test_case "flat then steep" `Quick test_brent_flat_then_steep;
          Alcotest.test_case "agrees with bisect" `Quick test_brent_matches_bisect;
        ] );
      ( "bracketing",
        [
          Alcotest.test_case "expand" `Quick test_expand_bracket;
          Alcotest.test_case "expand failure" `Quick test_expand_bracket_failure;
          Alcotest.test_case "first crossing" `Quick test_first_crossing;
          Alcotest.test_case "no crossing" `Quick test_first_crossing_none;
        ] );
      ( "newton",
        [
          Alcotest.test_case "sqrt 2" `Quick test_newton;
          Alcotest.test_case "zero derivative" `Quick test_newton_zero_derivative;
        ] );
      ("properties", qcheck_tests);
    ]
