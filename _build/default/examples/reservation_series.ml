(* Reservation series: the motivating scenario of the paper's
   introduction. A long-running application with a fixed total amount of
   work executes as a series of fixed-length reservations; the work saved
   by the last checkpoint of each reservation carries over to the next
   one. The checkpointing strategy used inside each reservation decides
   how many reservations (hence how much billed machine time) the
   campaign needs.

   Run with:  dune exec examples/reservation_series.exe *)

let total_work = 3000.0
let reservation_length = 160.0

let campaign ~params ~policy ~seed =
  (* Simulate reservations until the accumulated saved work reaches the
     target. Each reservation gets its own failure trace. *)
  let dist =
    Fault.Trace.Exponential { rate = params.Fault.Params.lambda }
  in
  let master = Numerics.Rng.create ~seed in
  let rec go ~done_work ~reservations ~idle_reservations =
    if done_work >= total_work then (reservations, done_work)
    else if idle_reservations > 50 then
      (* Pathological policy (e.g. NoCheckpoint) that never progresses. *)
      (reservations, done_work)
    else begin
      let trace =
        Fault.Trace.create ~dist ~seed:(Numerics.Rng.bits64 master)
      in
      let outcome =
        Sim.Engine.run ~params ~horizon:reservation_length ~policy trace
      in
      let saved = outcome.Sim.Engine.work_saved in
      go
        ~done_work:(done_work +. saved)
        ~reservations:(reservations + 1)
        ~idle_reservations:(if saved <= 0.0 then idle_reservations + 1 else 0)
    end
  in
  go ~done_work:0.0 ~reservations:0 ~idle_reservations:0

let () =
  let params = Fault.Params.paper ~lambda:0.002 ~c:15.0 ~d:5.0 in
  Printf.printf
    "campaign: %g units of work in reservations of length %g, platform %s\n\n"
    total_work reservation_length
    (Fault.Params.to_string params);
  let strategies =
    Core.Policies.all_paper ~params ~quantum:1.0 ~horizon:reservation_length
    @ [ Core.Policies.single_final ~params ]
  in
  let repetitions = 200 in
  let table =
    Output.Table.create
      ~columns:
        [
          ("strategy", Output.Table.Left);
          ("reservations (mean)", Output.Table.Right);
          ("billed time (mean)", Output.Table.Right);
          ("vs DynamicProgramming", Output.Table.Right);
        ]
  in
  let results =
    List.map
      (fun policy ->
        let acc = Numerics.Stats.acc_create () in
        for rep = 1 to repetitions do
          let n, _ =
            campaign ~params ~policy ~seed:(Int64.of_int (rep * 7919))
          in
          Numerics.Stats.acc_add acc (float_of_int n)
        done;
        (policy.Sim.Policy.name, Numerics.Stats.acc_mean acc))
      strategies
  in
  let dp_mean =
    match List.assoc_opt "DynamicProgramming" results with
    | Some m -> m
    | None -> nan
  in
  List.iter
    (fun (name, mean) ->
      Output.Table.add_row table
        [
          name;
          Printf.sprintf "%.2f" mean;
          Printf.sprintf "%.0f" (mean *. reservation_length);
          Printf.sprintf "%+.1f%%" (100.0 *. ((mean /. dp_mean) -. 1.0));
        ])
    results;
  Output.Table.print table;
  print_newline ();
  print_endline
    "every extra percent is machine time billed to the project: the\n\
     fixed-time-optimal strategies need fewer reservations than Young/Daly\n\
     when reservations are short relative to the Young/Daly period."
