examples/quickstart.mli:
