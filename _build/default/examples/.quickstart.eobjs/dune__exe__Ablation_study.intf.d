examples/ablation_study.mli:
