examples/robustness.ml: Core Fault List Numerics Output Printf Sim
