examples/platform_sizing.ml: Core Fault List Output Printf
