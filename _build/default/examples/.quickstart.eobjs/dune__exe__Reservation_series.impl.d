examples/reservation_series.ml: Core Fault Int64 List Numerics Output Printf Sim
