examples/quickstart.ml: Core Fault List Numerics Output Printf Sim
