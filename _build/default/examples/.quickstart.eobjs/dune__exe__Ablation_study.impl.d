examples/ablation_study.ml: Core Fault Float List Output Printf
