examples/robustness.mli:
