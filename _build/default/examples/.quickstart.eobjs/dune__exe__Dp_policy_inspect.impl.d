examples/dp_policy_inspect.ml: Core Fault Float List Output Printf Sim String
