examples/dp_policy_inspect.mli:
