examples/threshold_explorer.ml: Array Core Fault List Output Printf
