examples/reservation_series.mli:
