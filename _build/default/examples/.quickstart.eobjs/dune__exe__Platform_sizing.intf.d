examples/platform_sizing.mli:
