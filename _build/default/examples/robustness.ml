(* Robustness: what happens when the model's assumptions are violated?

   The strategies are computed under the paper's assumptions —
   exponential failures and deterministic checkpoint durations. This
   example stresses both assumptions:
   1. non-memoryless failures (Weibull with decreasing hazard, heavy-
      tailed log-normal), calibrated to the same MTBF;
   2. stochastic checkpoint durations (Erlang with mean C).

   Run with:  dune exec examples/robustness.exe *)

let params = Fault.Params.paper ~lambda:0.002 ~c:25.0 ~d:0.0
let horizon = 700.0
let n_traces = 3000

let evaluate ?ckpt_sampler traces policy =
  let r = Sim.Runner.evaluate ?ckpt_sampler ~params ~horizon ~policy traces in
  r.Sim.Runner.proportion.Numerics.Stats.mean

let () =
  let mtbf = Fault.Params.mtbf params in
  Printf.printf "platform %s, T = %g, %d traces per scenario\n\n"
    (Fault.Params.to_string params) horizon n_traces;
  let strategies = Core.Policies.all_paper ~params ~quantum:1.0 ~horizon in
  (* The renewal-aware optimum is rebuilt per failure distribution; for
     the scenarios whose IATs it models, it is the exact optimum. *)
  let renewal_for dist =
    Core.Dp_renewal.policy
      (Core.Dp_renewal.build ~params ~dist ~quantum:1.0 ~horizon ())
  in
  let scenarios =
    [
      ("exponential (model)", Fault.Trace.Exponential { rate = params.Fault.Params.lambda }, None);
      ("Weibull k=0.7", Fault.Trace.weibull_with_mtbf ~shape:0.7 ~mtbf, None);
      ("Weibull k=2.0", Fault.Trace.weibull_with_mtbf ~shape:2.0 ~mtbf, None);
      ("LogNormal σ=1.2", Fault.Trace.lognormal_with_mtbf ~sigma:1.2 ~mtbf, None);
      ("Erlang(4) checkpoints", Fault.Trace.Exponential { rate = params.Fault.Params.lambda },
       Some 4);
    ]
  in
  let table =
    Output.Table.create
      ~columns:
        (("scenario", Output.Table.Left)
        :: (List.map
              (fun p -> (p.Sim.Policy.name, Output.Table.Right))
              strategies
           @ [ ("RenewalDP", Output.Table.Right) ]))
  in
  List.iter
    (fun (name, dist, erlang) ->
      let traces = Fault.Trace.batch ~dist ~seed:91L ~n:n_traces in
      let ckpt_sampler_for () =
        match erlang with
        | None -> None
        | Some shape ->
            let rng = Numerics.Rng.create ~seed:17L in
            Some
              (fun () ->
                Numerics.Rng.gamma_int rng ~shape
                  ~scale:(params.Fault.Params.c /. float_of_int shape))
      in
      let cells =
        List.map
          (fun policy ->
            Printf.sprintf "%.4f"
              (evaluate ?ckpt_sampler:(ckpt_sampler_for ()) traces policy))
          strategies
      in
      let renewal_cell =
        if erlang = None then
          Printf.sprintf "%.4f"
            (evaluate ?ckpt_sampler:None traces (renewal_for dist))
        else "-"
      in
      Output.Table.add_row table (name :: (cells @ [ renewal_cell ])))
    scenarios;
  print_endline "mean proportion of work done:";
  Output.Table.print table;
  print_newline ();
  (* The stochastic-checkpoint cure: finish the last checkpoint early. *)
  let erlang_traces =
    Fault.Trace.batch
      ~dist:(Fault.Trace.Exponential { rate = params.Fault.Params.lambda })
      ~seed:91L ~n:n_traces
  in
  let sampler () =
    let rng = Numerics.Rng.create ~seed:17L in
    fun () ->
      Numerics.Rng.gamma_int rng ~shape:4 ~scale:(params.Fault.Params.c /. 4.0)
  in
  let dp = List.nth strategies 3 in
  let slack = Core.Slack.first_order_slack ~params ~shape:4 ~tleft:horizon in
  let plain = evaluate ~ckpt_sampler:(sampler ()) erlang_traces dp in
  let slacked =
    evaluate ~ckpt_sampler:(sampler ()) erlang_traces
      (Core.Slack.with_slack ~params ~slack dp)
  in
  Printf.printf
    "the cure for checkpoint jitter: finishing the last checkpoint %.0f\n\
     early lifts the DP from %.4f to %.4f under Erlang(4) durations\n\
     (Core.Slack.first_order_slack).\n\n"
    slack plain slacked;
  print_endline
    "observations:\n\
     - decreasing-hazard Weibull (k = 0.7) clusters failures: everyone\n\
    \  loses absolute performance, the orderings survive;\n\
     - increasing-hazard Weibull (k = 2) makes failures predictable and\n\
    \  everyone gains; the exponential-derived plans stay near-optimal;\n\
     - stochastic checkpoints hurt the strategies that plan their last\n\
    \  checkpoint flush against the reservation end (the DP and the\n\
    \  threshold heuristics) more than the periodic Young/Daly strategy —\n\
    \  the paper's future-work direction, quantified."
