(* Ablation study: which ingredients of the optimal fixed-time strategy
   actually matter?

   Compares, on one platform and a range of reservation lengths, the
   exact expected work (no Monte-Carlo noise) of:
   - the paper's four strategies;
   - fixed-work-optimal periods (Daly second-order, Lambert): optimal
     for the WRONG objective;
   - a single final checkpoint (no intermediate protection);
   - VariableSegments (continuous offsets, threshold counts);
   - the unrestricted k-free optimum.

   Run with:  dune exec examples/ablation_study.exe *)

let params = Fault.Params.paper ~lambda:0.005 ~c:20.0 ~d:0.0
let quantum = 1.0

let () =
  Printf.printf "platform %s (Young/Daly period %.0f)\n\n"
    (Fault.Params.to_string params)
    (Core.Model.young_daly_period params);
  let horizons = [ 100.0; 200.0; 400.0; 800.0 ] in
  let dp_tables =
    Core.Dp.build ~params ~quantum ~horizon:(List.fold_left Float.max 0.0 horizons) ()
  in
  let opt_tables =
    Core.Optimal.build ~params ~quantum
      ~horizon:(List.fold_left Float.max 0.0 horizons) ()
  in
  let strategies horizon =
    [
      ("YoungDaly", Core.Policies.young_daly ~params);
      ("DalySecondOrder", Core.Policies.daly_second_order ~params);
      ("LambertPeriod", Core.Policies.lambert_optimal_period ~params);
      ("SingleFinal", Core.Policies.single_final ~params);
      ("FirstOrder", Core.Policies.first_order ~params ~horizon);
      ("NumericalOptimum", Core.Policies.numerical_optimum ~params ~horizon);
      ("VariableSegments",
       Core.Plan_opt.variable_segments_policy ~params ~horizon ~dp:dp_tables);
      ("DynamicProgramming", Core.Dp.policy dp_tables);
      ("OptimalUnrestricted", Core.Optimal.policy opt_tables);
    ]
  in
  let table =
    Output.Table.create
      ~columns:
        (("strategy", Output.Table.Left)
        :: List.map
             (fun t -> (Printf.sprintf "T=%g" t, Output.Table.Right))
             horizons)
  in
  let names = List.map fst (strategies 100.0) in
  List.iter
    (fun name ->
      let cells =
        List.map
          (fun horizon ->
            let policy = List.assoc name (strategies horizon) in
            let v =
              Core.Expected.policy_value ~params ~quantum ~horizon ~policy
            in
            Printf.sprintf "%.4f" (v /. (horizon -. params.Fault.Params.c)))
          horizons
      in
      Output.Table.add_row table (name :: cells))
    names;
  print_endline
    "exact expected proportion of work (quantised model, u = 1), per\n\
     reservation length:";
  Output.Table.print table;
  print_newline ();
  print_endline
    "reading the ablation:\n\
     - SingleFinal collapses as T grows: intermediate checkpoints are the\n\
    \  first-order ingredient;\n\
     - the fixed-work periods (Daly / Lambert) fix part of YoungDaly's gap\n\
    \  but not the final-checkpoint placement;\n\
     - NumericalOptimum ~ VariableSegments ~ DynamicProgramming: equal\n\
    \  segments with the right COUNT capture nearly all of the optimum,\n\
    \  the exact offsets and the quantisation are second-order;\n\
     - OptimalUnrestricted = DynamicProgramming: tracking the planned\n\
    \  number of checkpoints loses nothing."
