(* Quickstart: evaluate the paper's four checkpointing strategies on one
   fixed-length reservation.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A platform where the application sees one failure every 1000 time
     units, checkpoints cost 20, recoveries cost 20, no downtime. *)
  let params = Fault.Params.paper ~lambda:0.001 ~c:20.0 ~d:0.0 in
  let horizon = 600.0 in

  (* 1. The strategies. The threshold heuristics precompute their
     threshold tables up to the horizon; the DP strategy builds its
     tables for quantum u = 1. *)
  let strategies = Core.Policies.all_paper ~params ~quantum:1.0 ~horizon in

  (* 2. A common set of random failure scenarios: every strategy faces
     exactly the same failures. *)
  let traces =
    Fault.Trace.batch
      ~dist:(Fault.Trace.Exponential { rate = params.Fault.Params.lambda })
      ~seed:2024L ~n:2000
  in

  (* 3. Evaluate and report the proportion of work saved (the metric of
     the paper: saved work divided by the T - C upper bound). *)
  Printf.printf "reservation of length %g on platform %s\n\n" horizon
    (Fault.Params.to_string params);
  let table =
    Output.Table.create
      ~columns:
        [
          ("strategy", Output.Table.Left);
          ("proportion of work", Output.Table.Right);
          ("±95%", Output.Table.Right);
        ]
  in
  List.iter
    (fun policy ->
      let r = Sim.Runner.evaluate ~params ~horizon ~policy traces in
      Output.Table.add_row table
        [
          r.Sim.Runner.policy;
          Printf.sprintf "%.4f" r.Sim.Runner.proportion.Numerics.Stats.mean;
          Printf.sprintf "%.4f"
            r.Sim.Runner.proportion.Numerics.Stats.ci95_half_width;
        ])
    strategies;
  Output.Table.print table;

  (* 4. The same comparison without Monte-Carlo noise: exact expected
     work on the quantised model. *)
  print_newline ();
  print_endline "exact expected work (quantised model, u = 1):";
  List.iter
    (fun policy ->
      let v =
        Core.Expected.policy_value ~params ~quantum:1.0 ~horizon ~policy
      in
      Printf.printf "  %-20s %8.2f  (proportion %.4f)\n" policy.Sim.Policy.name
        v
        (v /. (horizon -. params.Fault.Params.c)))
    strategies
