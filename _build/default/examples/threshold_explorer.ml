(* Threshold explorer: how the Section 5 thresholds behave across
   platforms, and how they relate to the Young/Daly period.

   Run with:  dune exec examples/threshold_explorer.exe *)

let show_thresholds ~lambda ~c =
  let params = Fault.Params.paper ~lambda ~c ~d:0.0 in
  let wyd = Core.Model.young_daly_period params in
  Printf.printf "λ=%g, C=%g (Young/Daly period %.1f)\n" lambda c wyd;
  let numerical = Core.Threshold.table_numerical ~params ~up_to:2000.0 in
  let table =
    Output.Table.create
      ~columns:
        [
          ("n", Output.Table.Right);
          ("T_n numerical", Output.Table.Right);
          ("T_n first-order", Output.Table.Right);
          ("T_n / W_YD", Output.Table.Right);
        ]
  in
  Array.iteri
    (fun i t ->
      if i > 0 then
        Output.Table.add_row table
          [
            string_of_int (i + 1);
            Printf.sprintf "%.1f" t;
            Printf.sprintf "%.1f"
              (Core.Threshold.threshold_first_order ~params ~n:i);
            Printf.sprintf "%.2f" (t /. wyd);
          ])
    numerical.Core.Threshold.thresholds;
  Output.Table.print table;
  print_newline ()

let show_gain_curve ~lambda ~c ~n =
  (* Where does the n-th threshold come from? Plot the gain of using
     n + 1 instead of n checkpoints as the reservation grows. *)
  let params = Fault.Params.paper ~lambda ~c ~d:0.0 in
  let t_n1 = Core.Threshold.threshold_numerical ~params n in
  let points =
    List.init 60 (fun i ->
        let t = float_of_int (i + 1) *. (2.0 *. t_n1 /. 60.0) in
        (t, Core.Threshold.gain ~params ~t ~n))
  in
  Output.Ascii_plot.print
    ~config:
      {
        Output.Ascii_plot.default_config with
        height = 14;
        x_label = "reservation length T";
        y_label = Printf.sprintf "Gain(T, %d -> %d ckpts)" n (n + 1);
      }
    ~title:
      (Printf.sprintf
         "gain of %d over %d checkpoints (λ=%g, C=%g): zero at T_%d = %.1f"
         (n + 1) n lambda c (n + 1) t_n1)
    [ { Output.Ascii_plot.label = "gain"; points } ]

let () =
  print_endline "== thresholds across platforms ==";
  List.iter
    (fun (lambda, c) -> show_thresholds ~lambda ~c)
    [ (0.001, 20.0); (0.001, 80.0); (0.01, 20.0) ];
  print_endline "== the gain function behind a threshold ==";
  show_gain_curve ~lambda:0.001 ~c:20.0 ~n:1;
  print_newline ();
  print_endline
    "reading: below T_2 a single final checkpoint wins; the first-order\n\
     thresholds approach the numerical ones as λ decreases; T_2 sits at\n\
     about sqrt(2) Young/Daly periods, and T_{n+1}/W_YD grows like\n\
     sqrt(n (n+1))."
