(* Capacity planning: how does the checkpointing picture change as an
   application scales out?

   The application-level failure rate is the per-node rate times the
   node count (Params.scale_platform). As the platform grows, the MTBF
   shrinks, the Young/Daly period shrinks like 1/sqrt(p), and the
   threshold table compresses — so a reservation that needed a single
   checkpoint on 1k nodes needs several on 16k nodes, and the gap
   between Young/Daly and the fixed-time-optimal strategies widens.

   Run with:  dune exec examples/platform_sizing.exe *)

let node_mtbf_years = 8.0
let checkpoint_minutes = 4.0
let reservation_minutes = 600.0  (* a 10-hour reservation *)

let () =
  (* Everything in minutes. *)
  let lambda_node = 1.0 /. (node_mtbf_years *. 365.25 *. 24.0 *. 60.0) in
  let base =
    Fault.Params.make ~lambda:lambda_node ~c:checkpoint_minutes
      ~r:checkpoint_minutes ~d:1.0
  in
  Printf.printf
    "per-node MTBF %.0f years, checkpoint %.0f min, reservation %.0f min\n\n"
    node_mtbf_years checkpoint_minutes reservation_minutes;
  let table =
    Output.Table.create
      ~columns:
        [
          ("nodes", Output.Table.Right);
          ("app MTBF (h)", Output.Table.Right);
          ("W_YD (min)", Output.Table.Right);
          ("ckpts planned", Output.Table.Right);
          ("YoungDaly", Output.Table.Right);
          ("NumericalOptimum", Output.Table.Right);
          ("DP optimum", Output.Table.Right);
        ]
  in
  List.iter
    (fun nodes ->
      let params = Fault.Params.scale_platform base ~processors:nodes in
      let wyd = Core.Model.young_daly_period params in
      let thresholds =
        Core.Threshold.table_numerical ~params ~up_to:reservation_minutes
      in
      let planned =
        Core.Threshold.segments_for thresholds ~tleft:reservation_minutes
      in
      let value policy =
        Core.Expected.policy_value ~params ~quantum:1.0
          ~horizon:reservation_minutes ~policy
        /. (reservation_minutes -. params.Fault.Params.c)
      in
      let dp =
        Core.Dp.build
          ~kmax:(Core.Dp.suggested_kmax ~params ~horizon:reservation_minutes)
          ~params ~quantum:1.0 ~horizon:reservation_minutes ()
      in
      Output.Table.add_row table
        [
          string_of_int nodes;
          Printf.sprintf "%.1f" (Fault.Params.mtbf params /. 60.0);
          Printf.sprintf "%.0f" wyd;
          string_of_int planned;
          Printf.sprintf "%.4f" (value (Core.Policies.young_daly ~params));
          Printf.sprintf "%.4f"
            (value
               (Core.Policies.of_threshold_table ~name:"NumericalOptimum"
                  ~params thresholds));
          Printf.sprintf "%.4f"
            (Core.Dp.expected_work dp ~tleft:reservation_minutes
            /. (reservation_minutes -. params.Fault.Params.c));
        ])
    [ 1_000; 4_000; 16_000; 64_000; 256_000 ];
  print_endline
    "expected proportion of work saved in the reservation (exact, u = 1):";
  Output.Table.print table;
  print_newline ();
  print_endline
    "two regimes to read off the table: on mid-size platforms the\n\
     reservation spans only a few Young/Daly periods and the threshold\n\
     strategies close most of the gap; on extreme platforms the checkpoint\n\
     cost becomes a large fraction of the (short) Young/Daly period, the\n\
     first-order approximations degrade, and only the optimum keeps the\n\
     margin — plan capacity accordingly."
