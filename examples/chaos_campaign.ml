(* Chaos campaign: a fault-injection drill for the experiment pipeline.

   The paper is about surviving failures during a fixed-length run; this
   demo shows the reproduction pipeline itself surviving failures, using
   the lib/robust toolkit:

   1. chaos + retry: with 5% of tasks crashing on their first attempt,
      bounded retries reproduce the fault-free curves bit-for-bit;
   2. kill/restart: a run whose tasks keep dying mid-sweep leaves its
      completed points in a journal; the relaunch resumes from it and
      finishes only the missing work;
   3. corrupted journal: garbage appended to the journal (a crash mid-
      write) is truncated at open time and the good records survive.

   Run with:  dune exec examples/chaos_campaign.exe *)

module Spec = Experiments.Spec
module Runner = Experiments.Runner

let spec =
  {
    Spec.id = "chaos-demo";
    description = "small sweep for the resilience drill";
    lambda = 0.01;
    d = 0.0;
    cs = [ 5.0 ];
    t_max = 120.0;
    t_step = 20.0;
    strategies = [ Spec.Young_daly; Spec.Dynamic_programming { quantum = 1.0 } ];
    n_traces = 200;
    seed = 42L;
    failure_dist = Spec.Exp;
    ckpt_noise = Spec.Deterministic;
    platform = None;
    predictor = None;
  }

let points result =
  List.concat_map
    (fun (curve : Runner.curve) ->
      Array.to_list
        (Array.map (fun (p : Runner.point) -> (curve.Runner.name, p)) curve.Runner.points))
    result.Runner.curves

let identical a b =
  List.for_all2
    (fun (na, (pa : Runner.point)) (nb, (pb : Runner.point)) ->
      na = nb && pa.Runner.t = pb.Runner.t && pa.Runner.mean = pb.Runner.mean
      && pa.Runner.ci95 = pb.Runner.ci95)
    (points a) (points b)

let section title = Printf.printf "\n=== %s ===\n" title

let () =
  let pool = Parallel.Pool.create () in
  let dir = Filename.temp_file "chaos_campaign" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let journal_path = Filename.concat dir (spec.Spec.id ^ ".journal") in
  let key = Spec.fingerprint spec in
  let n_points =
    List.length spec.Spec.strategies * Array.length (Spec.t_grid spec ~c:5.0)
  in
  Printf.printf "spec %s: %d grid points, journal key %s\n" spec.Spec.id
    n_points key;

  let baseline = Runner.run ~pool spec in

  section "1. chaos + retry reproduces the fault-free curves";
  let chaos = Robust.Chaos.create ~failure_rate:0.05 ~seed:2L () in
  let retry = Robust.Retry.make ~attempts:5 ~base_delay:0.01 () in
  let under_chaos = Runner.run ~pool ~retry ~chaos spec in
  Printf.printf "injected %d task failure(s) at 5%% rate; curves identical: %b\n"
    (Robust.Chaos.injected_failures chaos)
    (identical baseline under_chaos);
  assert (identical baseline under_chaos);

  section "2. kill/restart: the journal turns a crash into a resume";
  (* Aggressive chaos and no retries: the sweep is guaranteed to lose
     points, like a campaign killed partway. Completed points are already
     on disk when Sweep_failure surfaces. *)
  let violent = Robust.Chaos.create ~failure_rate:0.5 ~seed:7L () in
  let j = Robust.Journal.open_ ~path:journal_path ~key () in
  (try
     ignore (Runner.run ~pool ~journal:j ~chaos:violent spec);
     print_endline "unexpectedly survived"
   with Runner.Sweep_failure { completed; failed; _ } ->
     Printf.printf "crashed mid-sweep: %d point(s) completed, %d lost\n"
       completed failed);
  Robust.Journal.close j;
  let j = Robust.Journal.open_ ~strict:true ~path:journal_path ~key () in
  Printf.printf "relaunch finds %d journaled point(s); computing the rest\n"
    (Robust.Journal.length j);
  let resumed = Runner.run ~pool ~journal:j spec in
  Robust.Journal.close j;
  Printf.printf "resumed curves identical to fault-free: %b\n"
    (identical baseline resumed);
  assert (identical baseline resumed);

  section "3. corrupted journal tail is truncated, good records survive";
  let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 journal_path in
  output_string oc "p 5 YoungDaly torn-write-without-its-checksum";
  close_out oc;
  let j = Robust.Journal.open_ ~path:journal_path ~key () in
  List.iter (fun w -> Printf.printf "recovery: %s\n" w) (Robust.Journal.warnings j);
  Printf.printf "%d of %d point(s) intact after recovery\n"
    (Robust.Journal.length j) n_points;
  let recovered = Runner.run ~pool ~journal:j spec in
  Robust.Journal.close j;
  Printf.printf "curves after recovery identical to fault-free: %b\n"
    (identical baseline recovered);
  assert (identical baseline recovered);

  Array.iter
    (fun f -> Sys.remove (Filename.concat dir f))
    (Sys.readdir dir);
  Sys.rmdir dir;
  Parallel.Pool.shutdown pool;
  print_endline "\nall resilience drills passed"
