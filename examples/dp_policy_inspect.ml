(* Inspect the optimal (DP) strategy: where does it place checkpoints,
   when does it deviate from the equal-segment heuristics, and how does a
   reservation actually unfold against a failure trace?

   Run with:  dune exec examples/dp_policy_inspect.exe *)

let params = Fault.Params.paper ~lambda:0.005 ~c:30.0 ~d:5.0
let horizon = 900.0

let show_plans dp =
  let table =
    Output.Table.create
      ~columns:
        [
          ("T", Output.Table.Right);
          ("k*", Output.Table.Right);
          ("DP checkpoint completions", Output.Table.Left);
          ("last ckpt before end?", Output.Table.Left);
        ]
  in
  List.iter
    (fun t ->
      let n = int_of_float t in
      let k = Core.Dp.best_k dp ~n ~delta:false in
      if k = 0 then Output.Table.add_row table [ Printf.sprintf "%g" t; "0"; "-"; "-" ]
      else begin
        let plan = Core.Dp.plan_q dp ~n ~k ~delta:false in
        let last = List.fold_left max 0 plan in
        Output.Table.add_row table
          [
            Printf.sprintf "%g" t;
            string_of_int k;
            String.concat ", " (List.map string_of_int plan);
            (if last < n then
               Printf.sprintf "yes, %d before the end" (n - last)
             else "no, exactly at the end");
          ]
      end)
    [ 60.0; 100.0; 150.0; 250.0; 400.0; 600.0; 900.0 ];
  Output.Table.print table

let show_timeline dp =
  let policy = Core.Dp.policy dp in
  (* A hand-crafted trace: failures after 260 and then 180 exposed time
     units, then nothing for a long while. *)
  let trace = Fault.Trace.of_iats [| 260.0; 180.0; 10_000.0 |] in
  let outcome = Sim.Engine.run ~record:true ~params ~horizon ~policy trace in
  Printf.printf
    "one reservation of %g against failures at exposed times 260 and 440:\n"
    horizon;
  List.iter
    (fun event ->
      match event with
      | Sim.Engine.Segment_saved { start; finish; work } ->
          Printf.printf "  [%7.1f, %7.1f] segment committed, %.1f work saved\n"
            start finish work
      | Sim.Engine.Failure { at; lost } ->
          Printf.printf "  %9.1f          FAILURE, %.1f uncommitted time lost\n"
            at lost
      | Sim.Engine.Gave_up { at } ->
          Printf.printf "  %9.1f          stop: nothing more can be saved\n" at
      | Sim.Engine.Platform_change { at; survivors } ->
          Printf.printf "  %9.1f          platform now %d node(s), re-planned\n"
            at survivors
      | Sim.Engine.Prediction { at; true_positive } ->
          Printf.printf "  %9.1f          prediction fired (%s)\n" at
            (if true_positive then "true positive" else "false alarm"))
    outcome.Sim.Engine.events;
  Printf.printf "  total: %.1f work saved, %d checkpoints, %d failures\n"
    outcome.Sim.Engine.work_saved outcome.Sim.Engine.checkpoints
    outcome.Sim.Engine.failures

let () =
  Printf.printf "platform %s, DP quantum 1\n\n" (Fault.Params.to_string params);
  let dp =
    Core.Dp.build
      ~kmax:(Core.Dp.suggested_kmax ~params ~horizon)
      ~params ~quantum:1.0 ~horizon ()
  in
  print_endline "== optimal plans across reservation lengths ==";
  show_plans dp;
  print_newline ();
  print_endline
    "note the hallmarks of the fixed-time optimum: segments are not all\n\
     equal, and for failure-heavy settings the last checkpoint can\n\
     complete strictly before the end of the reservation.";
  print_newline ();
  print_endline "== a reservation unfolding against failures ==";
  show_timeline dp;
  print_newline ();
  print_endline "== expected-work profile ==";
  let points =
    List.init 90 (fun i ->
        let t = 10.0 *. float_of_int (i + 1) in
        (t, Core.Dp.expected_work dp ~tleft:t /. Float.max 1.0 (t -. params.Fault.Params.c)))
  in
  Output.Ascii_plot.print
    ~config:
      {
        Output.Ascii_plot.default_config with
        height = 12;
        x_label = "reservation length";
        y_label = "expected proportion of work";
      }
    ~title:"DP expected proportion of work vs reservation length"
    [ { Output.Ascii_plot.label = "E_opt(T) / (T - C)"; points } ]
