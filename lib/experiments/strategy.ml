(* The strategy registry: the one place that knows how a Spec.strategy
   is spelled, parsed, documented and compiled into a Sim.Policy.t.
   See strategy.mli for the architecture notes. *)

module Cache = struct
  type kind =
    | Threshold_numerical
    | Threshold_first_order
    | Dp of { quantum : float }
    | Optimal of { quantum : float }
    | Renewal of { quantum : float; dist : Fault.Trace.dist }

  let pp_dist ppf = function
    | Fault.Trace.Exponential { rate } -> Format.fprintf ppf "exp(%g)" rate
    | Fault.Trace.Weibull { shape; scale } ->
        Format.fprintf ppf "weibull(%g, %g)" shape scale
    | Fault.Trace.Lognormal { mu; sigma } ->
        Format.fprintf ppf "lognormal(%g, %g)" mu sigma

  let pp_kind ppf = function
    | Threshold_numerical -> Format.pp_print_string ppf "threshold-numerical"
    | Threshold_first_order -> Format.pp_print_string ppf "threshold-first-order"
    | Dp { quantum } -> Format.fprintf ppf "dp(u=%g)" quantum
    | Optimal { quantum } -> Format.fprintf ppf "optimal(u=%g)" quantum
    | Renewal { quantum; dist } ->
        Format.fprintf ppf "renewal(u=%g, %a)" quantum pp_dist dist

  type table =
    | T_threshold of Core.Threshold.table
    | T_dp of Core.Dp.t
    | T_optimal of Core.Optimal.t
    | T_renewal of Core.Dp_renewal.t

  (* What the memory bound charges per table: the exact buffer bytes
     reported by each core's [bytes] accessor (threshold tables are one
     float array). Headers and closure envelopes are noise next to the
     quadratic DP buffers, so they are not modelled. *)
  let table_bytes = function
    | T_threshold tbl -> 8 * Array.length tbl.Core.Threshold.thresholds
    | T_dp dp -> Core.Dp.bytes dp
    | T_optimal opt -> Core.Optimal.bytes opt
    | T_renewal dp -> Core.Dp_renewal.bytes dp

  (* Each slot keeps its structured identity next to the table: the
     horizon range query below cannot recover (params, horizon, kind)
     from the rendered string key. *)
  type slot = {
    table : table;
    size : int;
    s_params : Fault.Params.t;
    s_horizon : float;
    s_kind : kind;
    mutable stamp : int;
  }

  type t = {
    store : (string, slot) Hashtbl.t;
    lock : Mutex.t;
    max_tables : int option;
    max_bytes : int option;
    jobs : int;
    mutable tick : int;
    mutable builds : int;
    mutable hits : int;
    mutable evictions : int;
    mutable resident : int;
  }

  (* Build parallelism comes from the machine, not the experiment spec
     (the tables are bit-identical at any job count), so the default is
     an environment knob: FIXEDLEN_JOBS. Unparsable or non-positive
     values fall back to serial rather than failing a run. *)
  let default_jobs () =
    match Sys.getenv_opt "FIXEDLEN_JOBS" with
    | None -> 1
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some j when j >= 1 -> j
        | _ -> 1)

  let create ?max_tables ?max_bytes ?jobs () =
    let check name = function
      | Some v when v < 1 ->
          invalid_arg (Printf.sprintf "Strategy.Cache.create: %s < 1" name)
      | _ -> ()
    in
    check "max_tables" max_tables;
    check "max_bytes" max_bytes;
    check "jobs" jobs;
    {
      store = Hashtbl.create 16;
      lock = Mutex.create ();
      max_tables;
      max_bytes;
      jobs = (match jobs with Some j -> j | None -> default_jobs ());
      tick = 0;
      builds = 0;
      hits = 0;
      evictions = 0;
      resident = 0;
    }

  let locked t f =
    Mutex.lock t.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

  let jobs t = t.jobs
  let builds t = locked t (fun () -> t.builds)
  let hits t = locked t (fun () -> t.hits)
  let evictions t = locked t (fun () -> t.evictions)
  let resident_tables t = locked t (fun () -> Hashtbl.length t.store)
  let resident_bytes t = locked t (fun () -> t.resident)

  type stats = {
    s_builds : int;
    s_hits : int;
    s_evictions : int;
    s_resident_tables : int;
    s_resident_bytes : int;
  }

  let stats t =
    locked t (fun () ->
        {
          s_builds = t.builds;
          s_hits = t.hits;
          s_evictions = t.evictions;
          s_resident_tables = Hashtbl.length t.store;
          s_resident_bytes = t.resident;
        })

  let record_hits t n = locked t (fun () -> t.hits <- t.hits + n)

  let touch t slot =
    t.tick <- t.tick + 1;
    slot.stamp <- t.tick

  (* Canonical key: every float rendered with %.17g so distinct values
     can never collide through formatting (same convention as
     Spec.fingerprint). *)
  let dist_key = function
    | Fault.Trace.Exponential { rate } -> Printf.sprintf "exp:%.17g" rate
    | Fault.Trace.Weibull { shape; scale } ->
        Printf.sprintf "weibull:%.17g:%.17g" shape scale
    | Fault.Trace.Lognormal { mu; sigma } ->
        Printf.sprintf "lognormal:%.17g:%.17g" mu sigma

  let kind_key = function
    | Threshold_numerical -> "thr-num"
    | Threshold_first_order -> "thr-fo"
    | Dp { quantum } -> Printf.sprintf "dp:%.17g" quantum
    | Optimal { quantum } -> Printf.sprintf "opt:%.17g" quantum
    | Renewal { quantum; dist } ->
        Printf.sprintf "renewal:%.17g|%s" quantum (dist_key dist)

  let key ~(params : Fault.Params.t) ~horizon kind =
    Printf.sprintf "lambda=%.17g,c=%.17g,r=%.17g,d=%.17g|h=%.17g|%s"
      params.Fault.Params.lambda params.Fault.Params.c params.Fault.Params.r
      params.Fault.Params.d horizon (kind_key kind)

  let new_slot t ~params ~horizon kind table =
    let slot =
      {
        table;
        size = table_bytes table;
        s_params = params;
        s_horizon = horizon;
        s_kind = kind;
        stamp = 0;
      }
    in
    touch t slot;
    slot

  let over_bound t =
    (match t.max_tables with
    | Some m -> Hashtbl.length t.store > m
    | None -> false)
    ||
    match t.max_bytes with Some m -> t.resident > m | None -> false

  let evict_oldest t =
    let victim =
      Hashtbl.fold
        (fun k slot acc ->
          match acc with
          | Some (_, best) when best.stamp <= slot.stamp -> acc
          | _ -> Some (k, slot))
        t.store None
    in
    match victim with
    | None -> ()
    | Some (k, slot) ->
        Hashtbl.remove t.store k;
        t.resident <- t.resident - slot.size;
        t.evictions <- t.evictions + 1

  (* Horizon range query, DP tables only (lock held): a DP cell never
     depends on the horizon, so a resident build for the same platform
     and quantum at a longer horizon answers this lookup through a
     zero-copy prefix (Dp.prefix_view). The view is materialised once,
     cached under the exact key it answers — later lookups are plain
     exact hits — and it never counts as a build: its slot charges only
     the private argmax row (the shared buffers stay the parent's; see
     the view accounting test). The smallest covering horizon wins, so
     the recomputed best-k row is as short as possible. A view can
     itself cover an even shorter horizon later: prefix views compose.
     Eviction may drop the parent before the view — the view keeps the
     shared buffers alive through the GC, it only loses them their
     byte charge. *)
  let materialize_view t ~params ~horizon kind =
    match kind with
    | Dp _ ->
        let parent =
          Hashtbl.fold
            (fun _ slot acc ->
              if
                slot.s_kind = kind && slot.s_params = params
                && slot.s_horizon > horizon
              then
                match acc with
                | Some best when best.s_horizon <= slot.s_horizon -> acc
                | _ -> Some slot
              else acc)
            t.store None
        in
        (match parent with
        | Some ({ table = T_dp dp; _ } as pslot) ->
            touch t pslot;
            let view =
              Core.Dp.prefix_view
                ~kmax:(Core.Dp.suggested_kmax ~params ~horizon)
                dp ~horizon
            in
            let slot = new_slot t ~params ~horizon kind (T_dp view) in
            Hashtbl.replace t.store (key ~params ~horizon kind) slot;
            t.resident <- t.resident + slot.size;
            while over_bound t && Hashtbl.length t.store > 1 do
              evict_oldest t
            done;
            Some slot
        | _ -> None)
    | _ -> None

  (* Lookups touch the LRU stamp: a table an [ensure] or a [compile]
     just used is the one a bounded cache should keep. An exact miss
     falls through to the horizon range query, so [mem] and [find]
     agree on what is answerable without a build. *)
  let lookup t ~params ~horizon kind =
    match Hashtbl.find_opt t.store (key ~params ~horizon kind) with
    | Some slot ->
        touch t slot;
        Some slot
    | None -> materialize_view t ~params ~horizon kind

  let mem t ~params ~horizon kind =
    locked t (fun () -> lookup t ~params ~horizon kind <> None)

  let find t ~params ~horizon kind =
    locked t (fun () ->
        Option.map (fun slot -> slot.table) (lookup t ~params ~horizon kind))

  (* The build calls replicate what the pre-registry runner did per
     C block, so the tables — and therefore the figures — are
     bit-identical. In particular the DP keeps its suggested_kmax cap,
     and [t.jobs] only reshapes the build schedule, never the cells. *)
  let build t ~params ~horizon kind =
    match kind with
    | Threshold_numerical ->
        T_threshold (Core.Threshold.table_numerical ~params ~up_to:horizon)
    | Threshold_first_order ->
        T_threshold (Core.Threshold.table_first_order ~params ~up_to:horizon)
    | Dp { quantum } ->
        T_dp
          (Core.Dp.build
             ~kmax:(Core.Dp.suggested_kmax ~params ~horizon)
             ~jobs:t.jobs ~params ~quantum ~horizon ())
    | Optimal { quantum } ->
        T_optimal (Core.Optimal.build ~params ~quantum ~horizon ())
    | Renewal { quantum; dist } ->
        T_renewal (Core.Dp_renewal.build ~params ~dist ~quantum ~horizon ())

  let insert t ~params ~horizon kind table =
    locked t (fun () ->
        let k = key ~params ~horizon kind in
        (* A replace (two racing builders of the same key) must not
           double-charge the bytes. *)
        (match Hashtbl.find_opt t.store k with
        | Some old -> t.resident <- t.resident - old.size
        | None -> ());
        let slot = new_slot t ~params ~horizon kind table in
        Hashtbl.replace t.store k slot;
        t.builds <- t.builds + 1;
        t.resident <- t.resident + slot.size;
        (* Shed least-recently-used entries until back under the bound,
           but never the entry just inserted (it holds the newest stamp
           and the [> 1] guard keeps it when it alone exceeds the byte
           bound — a lone oversized table must stay answerable). *)
        while over_bound t && Hashtbl.length t.store > 1 do
          evict_oldest t
        done)
end

type error =
  | Missing_table of {
      kind : Cache.kind;
      params : Fault.Params.t;
      horizon : float;
    }

let error_message = function
  | Missing_table { kind; params; horizon } ->
      Format.asprintf
        "Strategy: table %a for %s, horizon %g was never built — call \
         Strategy.ensure before compiling (configuration error)"
        Cache.pp_kind kind
        (Fault.Params.to_string params)
        horizon

(* Typed lookups: the key encodes the kind, so a present entry always
   carries the matching constructor; absence is the diagnosed error. *)
let missing kind ~params ~horizon = Error (Missing_table { kind; params; horizon })

let find_threshold cache ~params ~horizon kind =
  match Cache.find cache ~params ~horizon kind with
  | Some (Cache.T_threshold t) -> Ok t
  | _ -> missing kind ~params ~horizon

let find_dp cache ~params ~horizon kind =
  match Cache.find cache ~params ~horizon kind with
  | Some (Cache.T_dp t) -> Ok t
  | _ -> missing kind ~params ~horizon

let find_optimal cache ~params ~horizon kind =
  match Cache.find cache ~params ~horizon kind with
  | Some (Cache.T_optimal t) -> Ok t
  | _ -> missing kind ~params ~horizon

let find_renewal cache ~params ~horizon kind =
  match Cache.find cache ~params ~horizon kind with
  | Some (Cache.T_renewal t) -> Ok t
  | _ -> missing kind ~params ~horizon

(* Raw DP table lookup for callers that answer table queries directly
   (the serve daemon) instead of compiling a policy. *)
let dp_table cache ~params ~horizon ~quantum =
  find_dp cache ~params ~horizon (Cache.Dp { quantum })

type entry = {
  cli : string;
  doc : string;
  arg_docv : string option;
  example : Spec.strategy;
  parse : arg:string option -> (Spec.strategy, string) result;
  print_arg : Spec.strategy -> string option;
  owns : Spec.strategy -> bool;
  requires : dist:Fault.Trace.dist -> Spec.strategy -> Cache.kind list;
  compile :
    Cache.t ->
    params:Fault.Params.t ->
    horizon:float ->
    dist:Fault.Trace.dist ->
    Spec.strategy ->
    (Sim.Policy.t, error) result;
}

let ( let* ) = Result.bind

(* CLI argument rendering: "%g" when it round-trips (every shipped value
   does), an exact 17-digit rendering otherwise — so to_string/of_string
   is a bijection on representable strategies. *)
let render_float v =
  let s = Printf.sprintf "%g" v in
  if float_of_string s = v then s else Printf.sprintf "%.17g" v

(* Per-entry argument parsers. Each entry owns the grammar of its [:ARG]
   suffix; these helpers cover the three shapes in the registry (a
   positive quantum, a probability, a non-negative width). *)
let no_arg ~cli strategy ~arg =
  match arg with
  | None -> Ok strategy
  | Some _ -> Error (Printf.sprintf "%s takes no argument" cli)

let parse_quantum ~cli ~arg =
  match arg with
  | None -> Ok None
  | Some qt -> (
      match float_of_string_opt qt with
      | Some q when q > 0.0 -> Ok (Some q)
      | Some _ ->
          Error (Printf.sprintf "quantum must be > 0 in %S" (cli ^ ":" ^ qt))
      | None ->
          Error (Printf.sprintf "bad quantum %S in %S" qt (cli ^ ":" ^ qt)))

let parse_probability name text =
  match float_of_string_opt (String.trim text) with
  | Some v when Float.is_finite v && v >= 0.0 && v <= 1.0 -> Ok v
  | _ -> Error (Printf.sprintf "%s must lie in [0, 1], got %S" name text)

let parse_width name text =
  match float_of_string_opt (String.trim text) with
  | Some v when Float.is_finite v && v >= 0.0 -> Ok v
  | _ -> Error (Printf.sprintf "%s must be finite >= 0, got %S" name text)

(* Helper for the entries that need no tables and ignore the cache. *)
let simple ~cli ~doc ~strategy ~policy =
  {
    cli;
    doc;
    arg_docv = None;
    example = strategy;
    parse = no_arg ~cli strategy;
    print_arg = (fun _ -> None);
    owns = (fun s -> s = strategy);
    requires = (fun ~dist:_ _ -> []);
    compile =
      (fun _cache ~params ~horizon:_ ~dist:_ _ -> Ok (policy ~params));
  }

let rec quantum_of = function
  | Spec.Dynamic_programming { quantum }
  | Spec.Optimal_unrestricted { quantum }
  | Spec.Renewal_dp { quantum } ->
      quantum
  | Spec.Adaptive s -> quantum_of s
  | _ -> 1.0

let base_entries =
  [
    simple ~cli:"young-daly" ~strategy:Spec.Young_daly
      ~doc:
        "periodic checkpoints every sqrt(2µC) of work, final checkpoint at \
         the end"
      ~policy:(fun ~params -> Core.Policies.young_daly ~params);
    {
      cli = "first-order";
      doc =
        "threshold heuristic with the first-order thresholds of Equation (5)";
      arg_docv = None;
      example = Spec.First_order;
      parse = no_arg ~cli:"first-order" Spec.First_order;
      print_arg = (fun _ -> None);
      owns = (fun s -> s = Spec.First_order);
      requires = (fun ~dist:_ _ -> [ Cache.Threshold_first_order ]);
      compile =
        (fun cache ~params ~horizon ~dist:_ _ ->
          let* table =
            find_threshold cache ~params ~horizon Cache.Threshold_first_order
          in
          Ok (Core.Policies.of_threshold_table ~name:"FirstOrder" ~params table));
    };
    {
      cli = "numerical-optimum";
      doc = "threshold heuristic with numerically computed thresholds";
      arg_docv = None;
      example = Spec.Numerical_optimum;
      parse = no_arg ~cli:"numerical-optimum" Spec.Numerical_optimum;
      print_arg = (fun _ -> None);
      owns = (fun s -> s = Spec.Numerical_optimum);
      requires = (fun ~dist:_ _ -> [ Cache.Threshold_numerical ]);
      compile =
        (fun cache ~params ~horizon ~dist:_ _ ->
          let* table =
            find_threshold cache ~params ~horizon Cache.Threshold_numerical
          in
          Ok
            (Core.Policies.of_threshold_table ~name:"NumericalOptimum" ~params
               table));
    };
    {
      cli = "dp";
      doc = "the Section 6 dynamic program over time quanta (optimal)";
      arg_docv = Some "U";
      example = Spec.Dynamic_programming { quantum = 1.0 };
      parse =
        (fun ~arg ->
          let* quantum = parse_quantum ~cli:"dp" ~arg in
          Ok
            (Spec.Dynamic_programming
               { quantum = Option.value quantum ~default:1.0 }));
      print_arg =
        (fun s ->
          let q = quantum_of s in
          if Float.equal q 1.0 then None else Some (render_float q));
      owns = (function Spec.Dynamic_programming _ -> true | _ -> false);
      requires =
        (fun ~dist:_ s -> [ Cache.Dp { quantum = quantum_of s } ]);
      compile =
        (fun cache ~params ~horizon ~dist:_ s ->
          let* dp =
            find_dp cache ~params ~horizon (Cache.Dp { quantum = quantum_of s })
          in
          (* Stateful across one reservation: a fresh policy per compile
             (tables are shared, the closure is cheap). *)
          Ok (Core.Dp.policy dp));
    };
    simple ~cli:"single-final" ~strategy:Spec.Single_final
      ~doc:"one checkpoint at the very end of the reservation (Strat1)"
      ~policy:(fun ~params -> Core.Policies.single_final ~params);
    simple ~cli:"daly-second-order" ~strategy:Spec.Daly_second_order
      ~doc:"Young/Daly scheme with Daly's higher-order period (ablation)"
      ~policy:(fun ~params -> Core.Policies.daly_second_order ~params);
    simple ~cli:"lambert-period" ~strategy:Spec.Lambert_period
      ~doc:
        "Young/Daly scheme with the exact fixed-work-optimal period \
         (ablation: optimal for the wrong objective)"
      ~policy:(fun ~params -> Core.Policies.lambert_optimal_period ~params);
    simple ~cli:"no-checkpoint" ~strategy:Spec.No_checkpoint
      ~doc:"never checkpoint (lower-bound baseline)"
      ~policy:(fun ~params:_ -> Sim.Policy.no_checkpoint);
    {
      cli = "variable-segments";
      doc =
        "threshold checkpoint count with continuously optimised offsets \
         over the DP value tables (ablation)";
      arg_docv = None;
      example = Spec.Variable_segments;
      parse = no_arg ~cli:"variable-segments" Spec.Variable_segments;
      print_arg = (fun _ -> None);
      owns = (fun s -> s = Spec.Variable_segments);
      requires =
        (* The u = 1 DP value tables serve as the continuation function. *)
        (fun ~dist:_ _ -> [ Cache.Dp { quantum = 1.0 } ]);
      compile =
        (fun cache ~params ~horizon ~dist:_ _ ->
          let* dp =
            find_dp cache ~params ~horizon (Cache.Dp { quantum = 1.0 })
          in
          Ok (Core.Plan_opt.variable_segments_policy ~params ~horizon ~dp));
    };
    {
      cli = "optimal";
      doc = "the k-free quantised optimum of Core.Optimal (ablation)";
      arg_docv = Some "U";
      example = Spec.Optimal_unrestricted { quantum = 1.0 };
      parse =
        (fun ~arg ->
          let* quantum = parse_quantum ~cli:"optimal" ~arg in
          Ok
            (Spec.Optimal_unrestricted
               { quantum = Option.value quantum ~default:1.0 }));
      print_arg =
        (fun s ->
          let q = quantum_of s in
          if Float.equal q 1.0 then None else Some (render_float q));
      owns = (function Spec.Optimal_unrestricted _ -> true | _ -> false);
      requires =
        (fun ~dist:_ s -> [ Cache.Optimal { quantum = quantum_of s } ]);
      compile =
        (fun cache ~params ~horizon ~dist:_ s ->
          let* opt =
            find_optimal cache ~params ~horizon
              (Cache.Optimal { quantum = quantum_of s })
          in
          Ok (Core.Optimal.policy opt));
    };
    {
      cli = "renewal-dp";
      doc =
        "renewal-aware DP built for the spec's IAT distribution \
         (non-memoryless-aware optimum, extension)";
      arg_docv = Some "U";
      example = Spec.Renewal_dp { quantum = 1.0 };
      parse =
        (fun ~arg ->
          let* quantum = parse_quantum ~cli:"renewal-dp" ~arg in
          Ok (Spec.Renewal_dp { quantum = Option.value quantum ~default:1.0 }));
      print_arg =
        (fun s ->
          let q = quantum_of s in
          if Float.equal q 1.0 then None else Some (render_float q));
      owns = (function Spec.Renewal_dp _ -> true | _ -> false);
      requires =
        (fun ~dist s -> [ Cache.Renewal { quantum = quantum_of s; dist } ]);
      compile =
        (fun cache ~params ~horizon ~dist s ->
          let* renewal =
            find_renewal cache ~params ~horizon
              (Cache.Renewal { quantum = quantum_of s; dist })
          in
          Ok (Core.Dp_renewal.policy renewal));
    };
    simple ~cli:"restart" ~strategy:Spec.Restart
      ~doc:
        "pure restart baseline: no intermediate checkpoints, a failure \
         loses everything and only a final commit banks work"
      ~policy:(fun ~params ->
        {
          (Core.Policies.single_final ~params) with
          Sim.Policy.name = Spec.strategy_name Spec.Restart;
        });
    {
      cli = "predicted-young-daly";
      doc =
        "Young/Daly with the recall-corrected period sqrt(2µC/(1-r)) and \
         a proactive checkpoint on every fired prediction (prediction \
         extension; defaults p=1, r=1)";
      arg_docv = Some "P,R";
      example = Spec.Predicted_young_daly { p = 1.0; r = 1.0 };
      parse =
        (fun ~arg ->
          match arg with
          | None -> Ok (Spec.Predicted_young_daly { p = 1.0; r = 1.0 })
          | Some a -> (
              match String.split_on_char ',' a with
              | [ ps; rs ] ->
                  let* p = parse_probability "precision" ps in
                  let* r = parse_probability "recall" rs in
                  Ok (Spec.Predicted_young_daly { p; r })
              | _ ->
                  Error
                    (Printf.sprintf
                       "expected P,R after predicted-young-daly: in %S" a)));
      print_arg =
        (function
        | Spec.Predicted_young_daly { p; r } ->
            if Float.equal p 1.0 && Float.equal r 1.0 then None
            else Some (render_float p ^ "," ^ render_float r)
        | _ -> None);
      owns = (function Spec.Predicted_young_daly _ -> true | _ -> false);
      requires = (fun ~dist:_ _ -> []);
      compile =
        (fun _cache ~params ~horizon:_ ~dist:_ s ->
          match s with
          | Spec.Predicted_young_daly { p = _; r } ->
              let mu = Fault.Params.mtbf params in
              let c = params.Fault.Params.c in
              (* With full recall every failure is announced, so periodic
                 checkpoints only guard against missed faults: the
                 corrected period diverges and the plan degenerates to a
                 single final commit. *)
              let period =
                if Float.equal r 1.0 then infinity
                else sqrt (2.0 *. mu *. c /. (1.0 -. r))
              in
              let policy = Sim.Policy.periodic ~params ~period in
              let policy =
                { policy with Sim.Policy.name = Spec.strategy_name s }
              in
              Ok
                (Sim.Policy.set_on_prediction policy
                   (fun ~tleft:_ ~since_commit:_ ~window:_ -> true))
          | _ -> invalid_arg "Strategy: predicted-young-daly compile");
    };
    {
      cli = "proactive-window";
      doc =
        "the Section 6 DP plan, trusting predictions whose window is at \
         most W with a proactive checkpoint (prediction extension; \
         default W=60)";
      arg_docv = Some "W";
      example = Spec.Proactive_window { w = 60.0 };
      parse =
        (fun ~arg ->
          match arg with
          | None -> Ok (Spec.Proactive_window { w = 60.0 })
          | Some a ->
              let* w = parse_width "window" a in
              Ok (Spec.Proactive_window { w }));
      print_arg =
        (function
        | Spec.Proactive_window { w } ->
            if Float.equal w 60.0 then None else Some (render_float w)
        | _ -> None);
      owns = (function Spec.Proactive_window _ -> true | _ -> false);
      requires =
        (* Rides on the u = 1 DP value tables, shared with dp/adaptive-dp
           through the campaign cache. *)
        (fun ~dist:_ _ -> [ Cache.Dp { quantum = 1.0 } ]);
      compile =
        (fun cache ~params ~horizon ~dist:_ s ->
          match s with
          | Spec.Proactive_window { w } ->
              let* dp =
                find_dp cache ~params ~horizon (Cache.Dp { quantum = 1.0 })
              in
              let policy = Core.Dp.policy dp in
              let policy =
                { policy with Sim.Policy.name = Spec.strategy_name s }
              in
              (* Trust only tight windows: a wide window would park the
                 proactive checkpoint too early to help. *)
              Ok
                (Sim.Policy.set_on_prediction policy
                   (fun ~tleft:_ ~since_commit:_ ~window -> window <= w))
          | _ -> invalid_arg "Strategy: proactive-window compile");
    };
  ]

let base_entry_of strategy =
  match List.find_opt (fun e -> e.owns strategy) base_entries with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "Strategy: no base registry entry owns %s"
           (Spec.strategy_name strategy))

(* Synchronous ensure for one strategy, used from inside a policy's
   adapt hook: an online re-plan cannot wait for a batch ensure, and it
   must count a hit when the degraded-λ tables are already resident (a
   shrinking platform revisiting a λ level — the malleability drills
   assert on exactly this counter). *)
let ensure_one cache ~params ~horizon ~dist strategy =
  List.iter
    (fun kind ->
      if Cache.mem cache ~params ~horizon kind then Cache.record_hits cache 1
      else
        Cache.insert cache ~params ~horizon kind
          (Cache.build cache ~params ~horizon kind))
    ((base_entry_of strategy).requires ~dist strategy)

(* Wrap a compiled base policy so every platform change recompiles it
   against the degraded parameters — through the shared cache, so a
   revisited failure rate is a table hit, not a rebuild. The rebuilt
   policy is adaptified again: repeated shrinks keep re-planning. *)
let rec adaptify cache ~horizon ~dist ~inner policy =
  let policy =
    { policy with Sim.Policy.name = "Adaptive" ^ policy.Sim.Policy.name }
  in
  Sim.Policy.set_adapt policy (fun params' ->
      ensure_one cache ~params:params' ~horizon ~dist inner;
      match
        (base_entry_of inner).compile cache ~params:params' ~horizon ~dist inner
      with
      | Ok p -> adaptify cache ~horizon ~dist ~inner p
      | Error e -> failwith (error_message e))

(* Adaptive entries delegate spelling, quantum handling, table needs and
   compilation to the wrapped base entry, then adaptify the result. *)
let adaptive_entry ~cli ~doc inner_cli =
  let inner_entry = List.find (fun e -> e.cli = inner_cli) base_entries in
  {
    cli;
    doc;
    arg_docv = inner_entry.arg_docv;
    example = Spec.Adaptive inner_entry.example;
    parse =
      (fun ~arg ->
        Result.map (fun s -> Spec.Adaptive s) (inner_entry.parse ~arg));
    print_arg =
      (function Spec.Adaptive s -> inner_entry.print_arg s | _ -> None);
    owns = (function Spec.Adaptive s -> inner_entry.owns s | _ -> false);
    requires =
      (fun ~dist s ->
        match s with
        | Spec.Adaptive inner -> inner_entry.requires ~dist inner
        | _ -> []);
    compile =
      (fun cache ~params ~horizon ~dist s ->
        match s with
        | Spec.Adaptive inner ->
            let* p = inner_entry.compile cache ~params ~horizon ~dist inner in
            Ok (adaptify cache ~horizon ~dist ~inner p)
        | _ ->
            invalid_arg
              (Printf.sprintf "Strategy: %s compiled on a non-adaptive %s" cli
                 (Spec.strategy_name s)));
  }

let entries =
  base_entries
  @ [
      adaptive_entry ~cli:"adaptive-young-daly"
        ~doc:
          "Young/Daly, re-planned online against the surviving-node failure \
           rate on every platform change"
        "young-daly";
      adaptive_entry ~cli:"adaptive-dp"
        ~doc:
          "the Section 6 DP, re-planned online on every platform change \
           (degraded-λ tables share the campaign cache)"
        "dp";
    ]

let name = Spec.strategy_name

let entry_of strategy =
  match List.find_opt (fun e -> e.owns strategy) entries with
  | Some e -> e
  | None ->
      (* Unreachable while the registry covers the Spec.strategy variant;
         a loud failure beats a silent miscompile if they ever drift. *)
      invalid_arg
        (Printf.sprintf "Strategy: no registry entry owns %s"
           (Spec.strategy_name strategy))

let spelling e =
  match e.arg_docv with None -> e.cli | Some d -> e.cli ^ "[:" ^ d ^ "]"

let to_string strategy =
  let e = entry_of strategy in
  match e.print_arg strategy with
  | None -> e.cli
  | Some a -> Printf.sprintf "%s:%s" e.cli a

let known_spellings () = String.concat ", " (List.map spelling entries)

let of_string text =
  let keyword, arg =
    match String.index_opt text ':' with
    | None -> (text, None)
    | Some i ->
        ( String.sub text 0 i,
          Some (String.sub text (i + 1) (String.length text - i - 1)) )
  in
  match List.find_opt (fun e -> e.cli = keyword) entries with
  | None ->
      Error
        (Printf.sprintf "unknown strategy %S (known: %s)" text
           (known_spellings ()))
  | Some e -> e.parse ~arg

(* A comma both separates strategies and separates the arguments of one
   (predicted-young-daly:0.8,0.9), so the list split is keyword-aware: a
   token opens a new strategy only when it starts with a registered cli
   spelling; otherwise it continues the previous token's argument. *)
let starts_strategy token =
  List.exists
    (fun e ->
      token = e.cli
      || String.length token > String.length e.cli
         && String.sub token 0 (String.length e.cli + 1) = e.cli ^ ":")
    entries

let of_string_list text =
  let tokens = List.map String.trim (String.split_on_char ',' text) in
  let groups =
    List.fold_left
      (fun acc tok ->
        match acc with
        | group :: rest when not (starts_strategy tok) ->
            (group ^ "," ^ tok) :: rest
        | _ -> tok :: acc)
      [] tokens
    |> List.rev
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
        match of_string spec with
        | Ok s -> go (s :: acc) rest
        | Error _ as e -> e)
  in
  match groups with
  | [ "" ] -> Error "empty strategy list"
  | specs -> ( match go [] specs with Ok [] -> Error "empty strategy list" | r -> r)

let requires ~dist strategy = (entry_of strategy).requires ~dist strategy

let ensure ?pool cache ~params ~horizon ~dist strategies =
  let wanted =
    List.sort_uniq compare
      (List.concat_map (fun s -> requires ~dist s) strategies)
  in
  let missing, present =
    List.partition (fun k -> not (Cache.mem cache ~params ~horizon k)) wanted
  in
  Cache.record_hits cache (List.length present);
  match missing with
  | [] -> ()
  | _ ->
      let kinds = Array.of_list missing in
      let tables =
        match pool with
        | Some pool ->
            Parallel.Pool.map pool kinds ~f:(fun kind ->
                Cache.build cache ~params ~horizon kind)
        | None ->
            Array.map (fun kind -> Cache.build cache ~params ~horizon kind) kinds
      in
      (* Inserts stay in the caller: workers only ever read the cache. *)
      Array.iteri
        (fun i table -> Cache.insert cache ~params ~horizon kinds.(i) table)
        tables

type warm_point = {
  wp_params : Fault.Params.t;
  wp_horizon : float;
  wp_dist : Fault.Trace.dist;
  wp_strategies : Spec.strategy list;
}

let warm_up ?pool cache points =
  (* Collect the distinct table keys the whole campaign will need, in
     first-seen order (deterministic for a fixed spec list), keeping
     only the ones the cache does not already hold. Keys dedup through
     the same canonical rendering the cache itself uses, so a table
     shared by two figures is collected once. *)
  let seen = Hashtbl.create 32 in
  let jobs = ref [] in
  List.iter
    (fun wp ->
      List.iter
        (fun kind ->
          let k = Cache.key ~params:wp.wp_params ~horizon:wp.wp_horizon kind in
          if not (Hashtbl.mem seen k) then begin
            Hashtbl.add seen k ();
            if not (Cache.mem cache ~params:wp.wp_params ~horizon:wp.wp_horizon kind)
            then jobs := (wp.wp_params, wp.wp_horizon, kind) :: !jobs
          end)
        (List.concat_map (fun s -> requires ~dist:wp.wp_dist s) wp.wp_strategies))
    points;
  let jobs = Array.of_list (List.rev !jobs) in
  let build (params, horizon, kind) = Cache.build cache ~params ~horizon kind in
  let tables =
    match pool with
    | Some pool -> Parallel.Pool.map pool jobs ~f:build
    | None -> Array.map build jobs
  in
  (* Inserts stay in the caller, same as {!ensure}: workers only read.
     The hits counter is untouched — warm-up is not a lookup, and later
     {!ensure} calls will count their (now guaranteed) hits. *)
  Array.iteri
    (fun i table ->
      let params, horizon, kind = jobs.(i) in
      Cache.insert cache ~params ~horizon kind table)
    tables;
  Array.length jobs

let warm_points_of_spec spec =
  let dist = Spec.trace_dist spec in
  List.filter_map
    (fun c ->
      let grid = Spec.t_grid spec ~c in
      if Array.length grid = 0 then None
      else
        Some
          {
            wp_params =
              Fault.Params.paper ~lambda:spec.Spec.lambda ~c ~d:spec.Spec.d;
            wp_horizon = grid.(Array.length grid - 1);
            wp_dist = dist;
            wp_strategies = spec.Spec.strategies;
          })
    spec.Spec.cs

let warm_up_specs ?pool cache specs =
  warm_up ?pool cache (List.concat_map warm_points_of_spec specs)

let compile cache ~params ~horizon ~dist strategy =
  (entry_of strategy).compile cache ~params ~horizon ~dist strategy

let compile_exn cache ~params ~horizon ~dist strategy =
  match compile cache ~params ~horizon ~dist strategy with
  | Ok policy -> policy
  | Error e -> failwith (error_message e)

let listing () =
  List.map
    (fun e ->
      (spelling e, Spec.strategy_name e.example, e.doc))
    entries

let markdown_table () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "| CLI spelling | Strategy | Description |\n";
  Buffer.add_string buf "|---|---|---|\n";
  List.iter
    (fun (cli, name, doc) ->
      Buffer.add_string buf (Printf.sprintf "| `%s` | %s | %s |\n" cli name doc))
    (listing ());
  Buffer.contents buf
