(** The prediction scenario: sweep a cartesian (p, r, w) predictor grid
    and compare the prediction-aware strategies
    ([predicted-young-daly], [proactive-window]) against an unpredicted
    Young/Daly baseline on identical failure traces.

    Every grid point derives its prediction streams under common random
    numbers (one seed per (p, r, w), salt -1 of the trace stream), so
    predicted and unpredicted runs are paired comparisons. The baseline
    strategy is also re-run {e with} each point's predictions: a policy
    without an [on_prediction] hook must ignore them at zero cost, and
    {!checks} requires those runs to be bit-identical. *)

type series = {
  strategy : Spec.strategy;
  name : string;
  mean : float;  (** mean proportion of work done *)
  ci95 : float;
  mean_proactive : float;  (** proactive checkpoints per trace *)
  mean_pred_true : float;  (** fired true positives per trace *)
  mean_pred_false : float;  (** fired false alarms per trace *)
}

type combo = {
  pr : Fault.Predictor.params;
  series : series list;
      (** [predicted-young-daly], [proactive-window], then the baseline
          strategy re-run with this combo's predictions *)
}

type result = {
  params : Fault.Params.t;
  horizon : float;
  n_traces : int;
  baseline : series;  (** Young/Daly with no predictions at all *)
  combos : combo list;
  cache : Strategy.Cache.stats;
      (** proactive-window shares the u = 1 DP table across the whole
          grid through the strategy cache — builds stay at 1 *)
}

val run :
  ?progress:(string -> unit) ->
  ?cache:Strategy.Cache.t ->
  params:Fault.Params.t ->
  horizon:float ->
  ps:float array ->
  rs:float array ->
  ws:float array ->
  n_traces:int ->
  seed:int64 ->
  unit ->
  result
(** Evaluates the cartesian product of the three grids. Raises
    [Invalid_argument] on an empty grid, [n_traces < 1] or
    [horizon <= C]. Deterministic for fixed inputs. *)

val to_csv : ?chaos_fs:Robust.Chaos_fs.t -> result -> path:string -> unit
(** One row per (combo, strategy) plus a leading baseline row with
    empty p/r/w columns. *)

val plot : ?width:int -> ?height:int -> result -> string
(** Mean proportion of [predicted-young-daly] against recall, one line
    per (p, w) pair, with the unpredicted baseline as a flat
    reference. *)

val checks : result -> Report.check list
(** Pass/fail rows: unhooked strategies ignore predictions
    bit-identically; [r = 0] collapses [predicted-young-daly] onto the
    baseline bit-identically (exact-float law); a perfect predictor
    ([p = r = 1], [w >= C]) strictly beats the baseline and matches the
    first-order waste λT(w+D+R)/(T-C) within 5% (plus Monte-Carlo
    noise); imperfect predictors never lose more than noise. *)
