type strategy =
  | Young_daly
  | First_order
  | Numerical_optimum
  | Dynamic_programming of { quantum : float }
  | Single_final
  | Daly_second_order
  | Lambert_period
  | No_checkpoint
  | Variable_segments
  | Optimal_unrestricted of { quantum : float }
  | Renewal_dp of { quantum : float }
  | Restart
  | Predicted_young_daly of { p : float; r : float }
  | Proactive_window of { w : float }
  | Adaptive of strategy

let rec strategy_name = function
  | Young_daly -> "YoungDaly"
  | First_order -> "FirstOrder"
  | Numerical_optimum -> "NumericalOptimum"
  | Dynamic_programming { quantum } ->
      if Float.equal quantum 1.0 then "DynamicProgramming"
      else Printf.sprintf "DP(u=%g)" quantum
  | Single_final -> "SingleFinal"
  | Daly_second_order -> "DalySecondOrder"
  | Lambert_period -> "LambertPeriod"
  | No_checkpoint -> "NoCheckpoint"
  | Variable_segments -> "VariableSegments"
  | Optimal_unrestricted { quantum } ->
      if Float.equal quantum 1.0 then "OptimalUnrestricted"
      else Printf.sprintf "Optimal(u=%g)" quantum
  | Renewal_dp { quantum } ->
      if Float.equal quantum 1.0 then "RenewalDP"
      else Printf.sprintf "RenewalDP(u=%g)" quantum
  | Restart -> "Restart"
  | Predicted_young_daly { p; r } ->
      if Float.equal p 1.0 && Float.equal r 1.0 then "PredictedYoungDaly"
      else Printf.sprintf "PredictedYoungDaly(p=%g,r=%g)" p r
  | Proactive_window { w } -> Printf.sprintf "ProactiveWindow(w=%g)" w
  | Adaptive s -> "Adaptive" ^ strategy_name s

type failure_dist = Exp | Weibull_shape of float | Lognormal_sigma of float
type ckpt_noise = Deterministic | Erlang of int

type t = {
  id : string;
  description : string;
  lambda : float;
  d : float;
  cs : float list;
  t_max : float;
  t_step : float;
  strategies : strategy list;
  n_traces : int;
  seed : int64;
  failure_dist : failure_dist;
  ckpt_noise : ckpt_noise;
  platform : Fault.Trace.node_model option;
  predictor : Fault.Predictor.params option;
}

let trace_dist spec =
  let mtbf = 1.0 /. spec.lambda in
  match spec.failure_dist with
  | Exp -> Fault.Trace.Exponential { rate = spec.lambda }
  | Weibull_shape shape -> Fault.Trace.weibull_with_mtbf ~shape ~mtbf
  | Lognormal_sigma sigma -> Fault.Trace.lognormal_with_mtbf ~sigma ~mtbf

let t_grid spec ~c =
  let rec go acc t =
    if t > spec.t_max +. 1e-9 then List.rev acc else go (t :: acc) (t +. spec.t_step)
  in
  Array.of_list (go [] (c +. spec.t_step))

(* Canonical, version-tagged rendering of everything that determines a
   spec's results. Floats use %.17g so distinct quanta/grids can never
   collide through formatting. *)
let rec strategy_canonical = function
  | Young_daly -> "young_daly"
  | First_order -> "first_order"
  | Numerical_optimum -> "numerical_optimum"
  | Dynamic_programming { quantum } -> Printf.sprintf "dp:%.17g" quantum
  | Single_final -> "single_final"
  | Daly_second_order -> "daly_second_order"
  | Lambert_period -> "lambert_period"
  | No_checkpoint -> "no_checkpoint"
  | Variable_segments -> "variable_segments"
  | Optimal_unrestricted { quantum } -> Printf.sprintf "optimal:%.17g" quantum
  | Renewal_dp { quantum } -> Printf.sprintf "renewal:%.17g" quantum
  | Restart -> "restart"
  | Predicted_young_daly { p; r } ->
      Printf.sprintf "predicted_young_daly:%.17g,%.17g" p r
  | Proactive_window { w } -> Printf.sprintf "proactive_window:%.17g" w
  | Adaptive s -> "adaptive+" ^ strategy_canonical s

let fingerprint spec =
  let dist =
    match spec.failure_dist with
    | Exp -> "exp"
    | Weibull_shape shape -> Printf.sprintf "weibull:%.17g" shape
    | Lognormal_sigma sigma -> Printf.sprintf "lognormal:%.17g" sigma
  in
  let noise =
    match spec.ckpt_noise with
    | Deterministic -> "det"
    | Erlang shape -> Printf.sprintf "erlang:%d" shape
  in
  (* A malleable platform changes every Monte-Carlo stream, so it must
     key the journal — but specs without one keep their exact v2
     fingerprint (the suffix is only rendered when present), so
     journals from before the field existed still resume. *)
  let platform =
    match spec.platform with
    | None -> ""
    | Some m ->
        Printf.sprintf "|platform=nodes:%d,spares:%d,loss:%.17g,rejoin:%.17g"
          m.Fault.Trace.nodes m.Fault.Trace.spares m.Fault.Trace.loss_prob
          m.Fault.Trace.rejoin_delay
  in
  (* Same conditional-suffix discipline as [platform]: a predictor
     changes the swept results, so it keys the journal, but
     predictor-less specs keep their exact pre-prediction fingerprint. *)
  let predictor =
    match spec.predictor with
    | None -> ""
    | Some pr ->
        Printf.sprintf "|predictor=p:%.17g,r:%.17g,w:%.17g"
          pr.Fault.Predictor.p pr.Fault.Predictor.r pr.Fault.Predictor.w
  in
  let canonical =
    Printf.sprintf
      (* v2: the per-(c, salt) trace-seed derivation changed (checksum
         of the decimal rendering of c instead of the collision-prone
         integer salt), shifting every Monte-Carlo stream. Bumping the
         version makes v1 journals key-mismatch instead of resuming
         stale numbers. *)
      "fixedlen-spec v2|%s|lambda=%.17g|d=%.17g|cs=%s|t_max=%.17g|t_step=%.17g|strategies=%s|n_traces=%d|seed=%Ld|dist=%s|noise=%s%s%s"
      spec.id spec.lambda spec.d
      (String.concat "," (List.map (Printf.sprintf "%.17g") spec.cs))
      spec.t_max spec.t_step
      (String.concat "," (List.map strategy_canonical spec.strategies))
      spec.n_traces spec.seed dist noise platform predictor
  in
  Numerics.Checksum.to_hex (Numerics.Checksum.fnv1a64 canonical)

let pp ppf spec =
  Format.fprintf ppf
    "%s: λ=%g D=%g C={%s} T<=%g step %g, %d traces, strategies: %s" spec.id
    spec.lambda spec.d
    (String.concat ", " (List.map (Printf.sprintf "%g") spec.cs))
    spec.t_max spec.t_step spec.n_traces
    (String.concat ", " (List.map strategy_name spec.strategies))
