(* The prediction scenario: how much work does a fault predictor with
   imperfect precision/recall recover, and does trusting it ever hurt?

   One sweep evaluates, over a cartesian (p, r, w) grid, the strategies
   that act on predictions (predicted-young-daly, proactive-window)
   against an unpredicted Young/Daly baseline. Every grid point faces
   the {e same} failure traces, and the baseline is also re-evaluated
   {e with} each point's prediction stream: a policy without an
   [on_prediction] hook must ignore predictions at zero cost, so those
   runs are required to be bit-identical to the baseline — the scenario
   checks both that invariant and the exact-float law (p = 0 or r = 0
   yields an empty stream, hence a bit-identical run even for the
   predicted strategies' plans when they coincide). *)

type series = {
  strategy : Spec.strategy;
  name : string;
  mean : float;
  ci95 : float;
  mean_proactive : float;
  mean_pred_true : float;
  mean_pred_false : float;
}

type combo = {
  pr : Fault.Predictor.params;
  series : series list;  (* predicted-young-daly, proactive-window,
                            baseline-with-predictions — in that order *)
}

type result = {
  params : Fault.Params.t;
  horizon : float;
  n_traces : int;
  baseline : series;  (* Young/Daly without any predictions *)
  combos : combo list;
  cache : Strategy.Cache.stats;
}

(* Same convention as Runner.seed_for: hash the exact decimal rendering
   of the grid coordinates so distinct (p, r, w) points can never
   collide onto one prediction stream. Salt -1 keeps the stream disjoint
   from the trace stream (salt 0) by the runner's convention. *)
let seed_for base (pr : Fault.Predictor.params) =
  Int64.add base
    (Numerics.Checksum.fold_int
       (Numerics.Checksum.fnv1a64
          (Printf.sprintf "%.17g,%.17g,%.17g" pr.Fault.Predictor.p
             pr.Fault.Predictor.r pr.Fault.Predictor.w))
       (-1))

let series_of ~strategy (r : Sim.Runner.result) =
  {
    strategy;
    name = Spec.strategy_name strategy;
    mean = r.Sim.Runner.proportion.Numerics.Stats.mean;
    ci95 = r.Sim.Runner.proportion.Numerics.Stats.ci95_half_width;
    mean_proactive = r.Sim.Runner.mean_proactive;
    mean_pred_true = r.Sim.Runner.mean_predictions_true;
    mean_pred_false = r.Sim.Runner.mean_predictions_false;
  }

let run ?(progress = fun _ -> ()) ?cache ~params ~horizon ~ps ~rs ~ws
    ~n_traces ~seed () =
  if Array.length ps = 0 || Array.length rs = 0 || Array.length ws = 0 then
    invalid_arg "Predict.run: empty (p, r, w) grid";
  if n_traces < 1 then invalid_arg "Predict.run: n_traces < 1";
  if horizon <= params.Fault.Params.c then
    invalid_arg "Predict.run: horizon <= C";
  let cache =
    match cache with Some c -> c | None -> Strategy.Cache.create ()
  in
  let rate = params.Fault.Params.lambda in
  let dist = Fault.Trace.Exponential { rate } in
  let traces = Fault.Trace.batch ~dist ~seed ~n:n_traces in
  Array.iter (fun tr -> Fault.Trace.prefetch tr ~until:horizon |> ignore) traces;
  let combos_params =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun r ->
            List.map
              (fun w -> { Fault.Predictor.p; r; w })
              (Array.to_list ws))
          (Array.to_list rs))
      (Array.to_list ps)
  in
  let strategies_for pr =
    Spec.
      [
        Predicted_young_daly
          { p = pr.Fault.Predictor.p; r = pr.Fault.Predictor.r };
        Proactive_window { w = pr.Fault.Predictor.w };
        Young_daly;
      ]
  in
  (* One ensure covers the whole grid: only proactive-window needs a
     table (the u = 1 DP), shared across every combo through the cache. *)
  Strategy.ensure cache ~params ~horizon ~dist
    (Spec.Young_daly :: List.concat_map strategies_for combos_params);
  let evaluate ?predictions strategy =
    let policy = Strategy.compile_exn cache ~params ~horizon ~dist strategy in
    series_of ~strategy
      (Sim.Runner.evaluate ?predictions ~params ~horizon ~policy traces)
  in
  let baseline = evaluate Spec.Young_daly in
  let combos =
    List.map
      (fun pr ->
        let predictions =
          Fault.Predictor.batch ~params:pr ~rate ~horizon
            ~seed:(seed_for seed pr) traces
        in
        let fired =
          Array.fold_left (fun n evs -> n + List.length evs) 0 predictions
        in
        progress
          (Printf.sprintf
             "[predict] p=%g r=%g w=%g: %d predicted event(s) across %d traces"
             pr.Fault.Predictor.p pr.Fault.Predictor.r pr.Fault.Predictor.w
             fired n_traces);
        {
          pr;
          series =
            List.map (evaluate ~predictions) (strategies_for pr);
        })
      combos_params
  in
  {
    params;
    horizon;
    n_traces;
    baseline;
    combos;
    cache = Strategy.Cache.stats cache;
  }

let to_csv ?chaos_fs result ~path =
  let row ~p ~r ~w (s : series) =
    [
      p;
      r;
      w;
      s.name;
      Printf.sprintf "%.6f" s.mean;
      Printf.sprintf "%.6f" s.ci95;
      Printf.sprintf "%.4f" s.mean_proactive;
      Printf.sprintf "%.4f" s.mean_pred_true;
      Printf.sprintf "%.4f" s.mean_pred_false;
    ]
  in
  let rows =
    row ~p:"" ~r:"" ~w:"" result.baseline
    :: List.concat_map
         (fun combo ->
           List.map
             (row
                ~p:(Printf.sprintf "%g" combo.pr.Fault.Predictor.p)
                ~r:(Printf.sprintf "%g" combo.pr.Fault.Predictor.r)
                ~w:(Printf.sprintf "%g" combo.pr.Fault.Predictor.w))
             combo.series)
         result.combos
  in
  Output.Csv.write ?chaos:chaos_fs ~path
    ~header:
      [
        "p"; "r"; "w"; "strategy"; "mean_proportion"; "ci95";
        "mean_proactive"; "mean_pred_tp"; "mean_pred_fa";
      ]
    rows

(* One plotted line per (p, w) pair: mean proportion of the predicted
   Young/Daly against recall, with the unpredicted baseline as a flat
   reference. Recall is the axis because it is the knob the corrected
   period sqrt(2µC/(1-r)) responds to. *)
let plot ?(width = 72) ?(height = 20) result =
  let rs =
    List.sort_uniq compare
      (List.map (fun c -> c.pr.Fault.Predictor.r) result.combos)
  in
  let pws =
    List.sort_uniq compare
      (List.map
         (fun c -> (c.pr.Fault.Predictor.p, c.pr.Fault.Predictor.w))
         result.combos)
  in
  let line_for (p, w) =
    let points =
      List.filter_map
        (fun c ->
          if
            Float.equal c.pr.Fault.Predictor.p p
            && Float.equal c.pr.Fault.Predictor.w w
          then
            List.find_opt
              (fun s ->
                match s.strategy with
                | Spec.Predicted_young_daly _ -> true
                | _ -> false)
              c.series
            |> Option.map (fun s -> (c.pr.Fault.Predictor.r, s.mean))
          else None)
        result.combos
    in
    {
      Output.Ascii_plot.label = Printf.sprintf "PredictedYD p=%g w=%g" p w;
      points = List.sort compare points;
    }
  in
  let baseline_line =
    {
      Output.Ascii_plot.label = result.baseline.name ^ " (no predictor)";
      points = List.map (fun r -> (r, result.baseline.mean)) rs;
    }
  in
  let config =
    {
      Output.Ascii_plot.width;
      height;
      x_label = "recall r";
      y_label = "proportion of work done";
      y_min = Some 0.0;
      y_max = Some 1.0;
    }
  in
  Output.Ascii_plot.render ~config
    ~title:
      (Printf.sprintf "prediction: %s, T=%g, %d traces"
         (Fault.Params.to_string result.params)
         result.horizon result.n_traces)
    (baseline_line :: List.map line_for pws)

let find_series combo f = List.find_opt f combo.series

let predicted_yd combo =
  find_series combo (fun s ->
      match s.strategy with Spec.Predicted_young_daly _ -> true | _ -> false)

let unhooked_yd combo =
  find_series combo (fun s -> s.strategy = Spec.Young_daly)

(* Labelled pass/fail rows in the Report.qualitative_checks shape.

   The bit-identity rows are exact: a policy without an on_prediction
   hook never spends time on a prediction, and an empty stream (p = 0
   or r = 0, the exact-float law) makes the prediction machinery
   unreachable, so those simulations must reproduce the baseline to the
   last bit.

   The first-order waste row applies to the perfect predictor
   (p = r = 1, w >= C): every failure is announced w ahead, the
   proactive checkpoint (cost C) completes before the fault, and the
   per-failure cost is the checkpoint C plus the remaining exposed lead
   (w - C), plus downtime D and recovery R — i.e. exactly w + D + R
   against a failure-free run whose only overhead is the final commit.
   At small λT the expected waste is then λT(w + D + R)/(T - C) to
   first order. *)
let checks result =
  let params = result.params in
  let c = params.Fault.Params.c in
  let rows = ref [] in
  let add label passed detail =
    rows := { Report.label; passed; detail } :: !rows
  in
  List.iter
    (fun combo ->
      let pr = combo.pr in
      let tag =
        Printf.sprintf "p=%g r=%g w=%g" pr.Fault.Predictor.p
          pr.Fault.Predictor.r pr.Fault.Predictor.w
      in
      (match unhooked_yd combo with
      | Some s ->
          add
            (Printf.sprintf "%s: unhooked %s ignores predictions" tag
               result.baseline.name)
            (Float.equal s.mean result.baseline.mean
            && Float.equal s.ci95 result.baseline.ci95
            && Float.equal s.mean_proactive 0.0)
            (Printf.sprintf "%.6f vs %.6f (bit-identical required)" s.mean
               result.baseline.mean)
      | None -> ());
      (match predicted_yd combo with
      | Some s ->
          if
            Float.equal pr.Fault.Predictor.p 0.0
            || Float.equal pr.Fault.Predictor.r 0.0
          then
            (* Empty stream, and for r = 0 the corrected period equals
               Young/Daly's: the whole simulation collapses onto the
               baseline. Only assert when the plans coincide. *)
            (if Float.equal pr.Fault.Predictor.r 0.0 then
               add
                 (Printf.sprintf "%s: %s == %s (empty stream)" tag s.name
                    result.baseline.name)
                 (Float.equal s.mean result.baseline.mean
                 && Float.equal s.ci95 result.baseline.ci95)
                 (Printf.sprintf "%.6f vs %.6f (bit-identical required)"
                    s.mean result.baseline.mean))
          else if
            Float.equal pr.Fault.Predictor.p 1.0
            && Float.equal pr.Fault.Predictor.r 1.0
            && pr.Fault.Predictor.w >= c
          then begin
            add
              (Printf.sprintf "%s: %s > %s" tag s.name result.baseline.name)
              (s.mean > result.baseline.mean)
              (Printf.sprintf "%.4f vs %.4f" s.mean result.baseline.mean);
            let t = result.horizon in
            let lam = params.Fault.Params.lambda in
            let waste_fo =
              lam *. t
              *. (pr.Fault.Predictor.w +. params.Fault.Params.d
                 +. params.Fault.Params.r)
              /. (t -. c)
            in
            let waste_mc = 1.0 -. s.mean in
            (* 5% relative, with a Monte-Carlo noise floor: the CI of
               the mean bounds the sampling error of the waste too. *)
            let tol = Float.max (0.05 *. waste_fo) (4.0 *. s.ci95) in
            add
              (Printf.sprintf "%s: first-order waste within 5%%" tag)
              (Float.abs (waste_mc -. waste_fo) <= tol)
              (Printf.sprintf "MC %.4f vs λT(w+D+R)/(T-C) %.4f (tol %.4f)"
                 waste_mc waste_fo tol)
          end
          else
            add
              (Printf.sprintf "%s: %s >= %s - noise" tag s.name
                 result.baseline.name)
              (s.mean +. 0.02 +. s.ci95 +. result.baseline.ci95
              >= result.baseline.mean)
              (Printf.sprintf "%.4f vs %.4f" s.mean result.baseline.mean)
      | None -> ()))
    result.combos;
  List.rev !rows
