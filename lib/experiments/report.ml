let to_csv ?chaos_fs (result : Runner.result) ~path =
  let rows =
    List.concat_map
      (fun (curve : Runner.curve) ->
        Array.to_list
          (Array.map
             (fun (p : Runner.point) ->
               [
                 result.Runner.spec.Spec.id;
                 Printf.sprintf "%g" curve.Runner.c;
                 curve.Runner.name;
                 Printf.sprintf "%g" p.Runner.t;
                 Printf.sprintf "%.6f" p.Runner.mean;
                 Printf.sprintf "%.6f" p.Runner.ci95;
                 Printf.sprintf "%.4f" p.Runner.mean_failures;
                 Printf.sprintf "%.4f" p.Runner.mean_checkpoints;
               ])
             curve.Runner.points))
      result.Runner.curves
  in
  Output.Csv.write ?chaos:chaos_fs ~path
    ~header:
      [
        "figure"; "c"; "strategy"; "t"; "mean_proportion"; "ci95";
        "mean_failures"; "mean_checkpoints";
      ]
    rows

let curve_series (curve : Runner.curve) =
  {
    Output.Ascii_plot.label = curve.Runner.name;
    points =
      Array.to_list
        (Array.map (fun (p : Runner.point) -> (p.Runner.t, p.Runner.mean))
           curve.Runner.points);
  }

let plots ?(width = 72) ?(height = 20) (result : Runner.result) =
  let spec = result.Runner.spec in
  let buf = Buffer.create 4096 in
  List.iter
    (fun c ->
      let curves =
        List.filter (fun (cv : Runner.curve) -> cv.Runner.c = c)
          result.Runner.curves
      in
      let config =
        {
          Output.Ascii_plot.width;
          height;
          x_label = "reservation length T";
          y_label = "proportion of work done";
          y_min = Some 0.0;
          y_max = Some 1.0;
        }
      in
      Buffer.add_string buf
        (Output.Ascii_plot.render ~config
           ~title:
             (Printf.sprintf "%s: λ=%g D=%g C=%g" spec.Spec.id spec.Spec.lambda
                spec.Spec.d c)
           (List.map curve_series curves));
      Buffer.add_char buf '\n')
    spec.Spec.cs;
  Buffer.contents buf

let mean_of (curve : Runner.curve) =
  let pts = curve.Runner.points in
  if Array.length pts = 0 then nan
  else
    Array.fold_left (fun acc (p : Runner.point) -> acc +. p.Runner.mean) 0.0 pts
    /. float_of_int (Array.length pts)

let worst_of (curve : Runner.curve) =
  Array.fold_left
    (fun acc (p : Runner.point) -> Float.min acc p.Runner.mean)
    infinity curve.Runner.points

let dp_reference (result : Runner.result) ~c =
  List.find_opt
    (fun (cv : Runner.curve) ->
      cv.Runner.c = c
      &&
      match cv.Runner.strategy with
      | Spec.Dynamic_programming { quantum } -> Float.equal quantum 1.0
      | _ -> false)
    result.Runner.curves

let gap_to (reference : Runner.curve) (curve : Runner.curve) =
  let n = min (Array.length reference.points) (Array.length curve.points) in
  if n = 0 then nan
  else begin
    let acc = ref 0.0 in
    for i = 0 to n - 1 do
      acc := !acc +. (reference.points.(i).Runner.mean -. curve.points.(i).Runner.mean)
    done;
    !acc /. float_of_int n
  end

let summary_rows (result : Runner.result) =
  List.concat_map
    (fun c ->
      let reference = dp_reference result ~c in
      List.filter_map
        (fun (curve : Runner.curve) ->
          if curve.Runner.c = c then
            Some
              [
                Printf.sprintf "%g" c;
                curve.Runner.name;
                Printf.sprintf "%.4f" (mean_of curve);
                Printf.sprintf "%.4f" (worst_of curve);
                (match reference with
                | None -> "-"
                | Some r ->
                    if r == curve then "0"
                    else Printf.sprintf "%+.4f" (-.gap_to r curve));
              ]
          else None)
        result.Runner.curves)
    result.Runner.spec.Spec.cs

let summary_header = [ "C"; "strategy"; "mean prop."; "worst prop."; "avg gap to DP" ]

let summary_table (result : Runner.result) =
  let table =
    Output.Table.create
      ~columns:(List.map (fun h -> (h, Output.Table.Right)) summary_header)
  in
  let last_c = ref "" in
  List.iter
    (fun row ->
      (match row with
      | c :: _ when !last_c <> "" && c <> !last_c -> Output.Table.add_separator table
      | _ -> ());
      (match row with c :: _ -> last_c := c | [] -> ());
      Output.Table.add_row table row)
    (summary_rows result);
  table

type check = { label : string; passed : bool; detail : string }

let find_curve result ~c ~strategy =
  Runner.curve_for result ~c ~strategy

let qualitative_checks (result : Runner.result) =
  let spec = result.Runner.spec in
  let noise = 0.02 in
  let checks = ref [] in
  let add label passed detail = checks := { label; passed; detail } :: !checks in
  List.iter
    (fun c ->
      let get strategy = find_curve result ~c ~strategy in
      let pair label (a : Runner.curve option) (b : Runner.curve option)
          ~expect_geq =
        match (a, b) with
        | Some ca, Some cb ->
            let ga = mean_of ca and gb = mean_of cb in
            let ok = ga +. noise >= gb in
            add
              (Printf.sprintf "C=%g: %s" c label)
              (if expect_geq then ok else true)
              (Printf.sprintf "%s=%.4f vs %s=%.4f" ca.Runner.name ga
                 cb.Runner.name gb)
        | _ -> ()
      in
      pair "NumericalOptimum >= FirstOrder" (get Spec.Numerical_optimum)
        (get Spec.First_order) ~expect_geq:true;
      pair "DynamicProgramming >= NumericalOptimum"
        (get (Spec.Dynamic_programming { quantum = 1.0 }))
        (get Spec.Numerical_optimum) ~expect_geq:true;
      pair "DynamicProgramming >= YoungDaly"
        (get (Spec.Dynamic_programming { quantum = 1.0 }))
        (get Spec.Young_daly) ~expect_geq:true;
      (* Convergence at the longest reservation of the grid. *)
      (match
         ( get (Spec.Dynamic_programming { quantum = 1.0 }),
           get Spec.Young_daly )
       with
      | Some dp, Some yd
        when Array.length dp.points > 0 && Array.length yd.points > 0 ->
          let last (cv : Runner.curve) =
            cv.points.(Array.length cv.points - 1).Runner.mean
          in
          let diff = last dp -. last yd in
          let params = Fault.Params.paper ~lambda:spec.Spec.lambda ~c ~d:spec.Spec.d in
          let wyd = Core.Model.young_daly_period params in
          let periods = spec.Spec.t_max /. wyd in
          if periods >= 10.0 then
            add
              (Printf.sprintf "C=%g: convergence to YoungDaly at T=%g" c
                 spec.Spec.t_max)
              (abs_float diff <= 0.05)
              (Printf.sprintf "final gap %.4f over %.1f Young/Daly periods"
                 diff periods)
      | _ -> ());
      (* Prediction specs: with a perfect predictor (p = r = 1 exactly)
         whose window covers a proactive checkpoint, the corrected-period
         Young/Daly must beat the unpredicted one at {e every} grid
         point — clean traces are bit-identical and every failing trace
         strictly gains. Imperfect predictors only owe the usual
         no-worse-than-noise bound. *)
      (match spec.Spec.predictor with
      | Some pr -> (
          let perfect =
            Float.equal pr.Fault.Predictor.p 1.0
            && Float.equal pr.Fault.Predictor.r 1.0
            && pr.Fault.Predictor.w >= c
          in
          let pyd =
            List.find_opt
              (fun (cv : Runner.curve) ->
                cv.Runner.c = c
                &&
                match cv.Runner.strategy with
                | Spec.Predicted_young_daly _ -> true
                | _ -> false)
              result.Runner.curves
          in
          match (pyd, get Spec.Young_daly) with
          | Some p, Some yd
            when perfect && Array.length p.points = Array.length yd.points ->
              let every = ref true and worst = ref infinity and at = ref nan in
              Array.iteri
                (fun i (pt : Runner.point) ->
                  let gain = pt.Runner.mean -. yd.points.(i).Runner.mean in
                  if gain < !worst then begin
                    worst := gain;
                    at := pt.Runner.t
                  end;
                  if gain <= 0.0 then every := false)
                p.points;
              add
                (Printf.sprintf
                   "C=%g: %s > YoungDaly at every T (perfect predictor)" c
                   p.Runner.name)
                !every
                (Printf.sprintf "min gain %.4f at T=%g" !worst !at)
          | Some p, Some yd -> pair (p.Runner.name ^ " >= YoungDaly")
                                 (Some p) (Some yd) ~expect_geq:true
          | _ -> ())
      | None -> ());
      (* Short-reservation advantage where it is observable: the worst
         YoungDaly point against the matching DP point. *)
      (match
         ( get (Spec.Dynamic_programming { quantum = 1.0 }),
           get Spec.Young_daly )
       with
      | Some dp, Some yd when Array.length dp.points = Array.length yd.points ->
          let worst = ref 0.0 and at = ref nan in
          Array.iteri
            (fun i (p : Runner.point) ->
              let gap = dp.points.(i).Runner.mean -. p.Runner.mean in
              if gap > !worst then begin
                worst := gap;
                at := p.Runner.t
              end)
            yd.points;
          add
            (Printf.sprintf "C=%g: max DP advantage over YoungDaly" c)
            true
            (Printf.sprintf "%.4f at T=%g" !worst !at)
      | _ -> ()))
    spec.Spec.cs;
  List.rev !checks

let render_checks checks =
  String.concat "\n"
    (List.map
       (fun { label; passed; detail } ->
         Printf.sprintf "  [%s] %s — %s" (if passed then "ok" else "??") label
           detail)
       checks)
