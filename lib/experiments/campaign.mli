(** Whole-campaign orchestration: run every figure (or a subset), export
    the data, and build the Markdown experiment report used as the basis
    of EXPERIMENTS.md. *)

type journal_mode =
  | No_journal
  | Journal of string
      (** journal each figure to [<dir>/<figure>.journal]; an existing
          journal whose key matches the (scaled) spec is resumed, a
          mismatched or foreign file is reset with a warning *)
  | Resume of string
      (** like [Journal], but a mismatched journal is an error — the
          contract of an explicit [--resume]: never silently discard
          someone's completed points *)

type config = {
  out_dir : string;  (** CSVs land here, one per figure *)
  n_traces : int option;
  t_step : float option;
  t_max : float option;
  figure_ids : string list option;  (** [None] = all *)
  strategies : Spec.strategy list option;
      (** override every selected spec's strategy list (registry
          spellings are parsed by {!Strategy.of_string_list}); affects
          the specs' fingerprints, so journals keyed on the unmodified
          specs are detected as mismatched *)
  platform : Fault.Trace.node_model option;
      (** override every selected spec's malleable-platform model (the
          [--platform-events]/[--spares]/[--loss-rate] flags); like the
          strategy override it changes fingerprints, so mismatched
          journals are detected. Requires exponential specs. *)
  predictor : Fault.Predictor.params option;
      (** override every selected spec's fault predictor (the
          [--predictor P,R,W] flag): each trace gains a predicted-event
          stream derived under common random numbers, and strategies
          with an [on_prediction] hook may checkpoint proactively.
          Changes fingerprints like the other overrides, so mismatched
          journals are detected. *)
  journal : journal_mode;
  retry : Robust.Retry.t;  (** per-grid-point retry budget *)
  chaos : Robust.Chaos.t option;  (** task-level fault injection *)
  chaos_fs : Robust.Chaos_fs.t option;
      (** filesystem fault injection (short writes, I/O errors, crash
          points) threaded into every artifact write: journal appends,
          CSV exports and the Markdown report *)
  deadline : float option;
      (** wall-clock seconds for the {e whole} campaign; when the budget
          runs out, in-flight points drain, the journal is synced, and
          remaining work is reported as partial instead of crashing *)
  task_timeout : float option;
      (** per-grid-point watchdog (seconds); implies process isolation,
          since only a forked worker can be killed and re-dispatched *)
  isolate : bool;
      (** run grid points in supervised forked workers
          ({!Parallel.Proc_pool}) instead of domains *)
  shards : int option;
      (** split each figure's grid across this many forked shard workers
          ([--shards N]); requires a journal. Task keys are partitioned
          by residue class, each worker appends its completed points to
          a private ledger [<dir>/<figure>.shard<s>.journal] (chaos-fs
          point [shard<s>]), and the leader merges the ledgers into the
          shared journal — before dispatch (recovering a crashed run's
          progress) and after — then assembles the curves from it. The
          resulting CSV is byte-identical to an unsharded run's. When a
          worker dies (e.g. SIGKILL) the campaign fails {e after}
          merging every surviving ledger, so [--resume --shards N]
          finishes only the remaining points. [isolate]/[task_timeout]
          apply to the leader's assembly pass only; shard workers sweep
          on their own domain pools. *)
}

val default_config : config
(** out_dir "results", paper-scale everything, all figures, no journal,
    no retries, no chaos, no deadline, in-process domains. *)

type outcome = {
  results : (Spec.t * Runner.result) list;  (** figures that ran *)
  partial : bool;
      (** the deadline cut something short — some figure is missing
          points, or some figure was never started *)
  skipped : string list;
      (** figure ids not started because the budget was already gone *)
}

val run :
  ?pool:Parallel.Pool.t ->
  ?cache:Strategy.Cache.t ->
  ?progress:(string -> unit) ->
  config ->
  outcome
(** Runs the selected figures sequentially (each internally parallel over
    the pool), writing [<out_dir>/<figure>.csv] as results complete.
    One {!Strategy.Cache} (a fresh one unless [cache] is given) spans
    the whole campaign, so compiled threshold/DP/optimal/renewal tables
    are built at most once per [(params, horizon, quantum, kind)] and
    shared across figures and duplicated sub-plots.
    With journaling enabled, every completed grid point is persisted as
    it lands and already-journaled points are skipped, so a killed
    campaign relaunched on the same journal directory finishes the
    remaining work only. Journal keys are [Spec.fingerprint]s of the
    {e scaled} specs: resuming with different [--traces]/[--t-step]
    overrides is detected as a mismatch rather than silently mixing
    incompatible points.

    With [deadline] set, one {!Robust.Deadline} reservation spans all
    figures: when it expires mid-figure the sweep stops dispatching and
    returns its complete curves ([partial = true] on that figure's
    result); figures not yet started are listed in [skipped]. With
    [isolate] (or [task_timeout], which implies it), grid points run in
    forked workers supervised by a wall-clock watchdog — a hung point is
    SIGKILLed and re-dispatched within the retry budget rather than
    hanging the campaign.

    Raises [Invalid_argument] on an unknown figure id, [Failure] on a
    strict-resume mismatch, [Runner.Sweep_failure] when points fail
    after retries (completed points stay journaled). *)

val markdown_report : outcome -> Output.Markdown.t
(** Per figure: parameters, the summary table, and the qualitative
    paper-shape checks; prefixed by a campaign-wide verdict and, for a
    partial run, which figures are incomplete or unstarted. *)

val write_report :
  ?retry:Robust.Retry.t ->
  ?chaos_fs:Robust.Chaos_fs.t ->
  outcome ->
  path:string ->
  unit
(** {!markdown_report} published atomically and durably to [path].
    [retry] (default {!Robust.Retry.no_retry}) covers transient write
    failures, e.g. those injected by [chaos_fs]. *)
