(** Whole-campaign orchestration: run every figure (or a subset), export
    the data, and build the Markdown experiment report used as the basis
    of EXPERIMENTS.md. *)

type journal_mode =
  | No_journal
  | Journal of string
      (** journal each figure to [<dir>/<figure>.journal]; an existing
          journal whose key matches the (scaled) spec is resumed, a
          mismatched or foreign file is reset with a warning *)
  | Resume of string
      (** like [Journal], but a mismatched journal is an error — the
          contract of an explicit [--resume]: never silently discard
          someone's completed points *)

type config = {
  out_dir : string;  (** CSVs land here, one per figure *)
  n_traces : int option;
  t_step : float option;
  t_max : float option;
  figure_ids : string list option;  (** [None] = all *)
  journal : journal_mode;
  retry : Robust.Retry.t;  (** per-grid-point retry budget *)
  chaos : Robust.Chaos.t option;  (** fault injection, for drills *)
}

val default_config : config
(** out_dir "results", paper-scale everything, all figures, no journal,
    no retries, no chaos. *)

val run :
  ?pool:Parallel.Pool.t ->
  ?progress:(string -> unit) ->
  config ->
  (Spec.t * Runner.result) list
(** Runs the selected figures sequentially (each internally parallel over
    the pool), writing [<out_dir>/<figure>.csv] as results complete.
    With journaling enabled, every completed grid point is persisted as
    it lands and already-journaled points are skipped, so a killed
    campaign relaunched on the same journal directory finishes the
    remaining work only. Journal keys are [Spec.fingerprint]s of the
    {e scaled} specs: resuming with different [--traces]/[--t-step]
    overrides is detected as a mismatch rather than silently mixing
    incompatible points. Raises [Invalid_argument] on an unknown figure
    id, [Failure] on a strict-resume mismatch, [Runner.Sweep_failure]
    when points fail after retries (completed points stay journaled). *)

val markdown_report : (Spec.t * Runner.result) list -> Output.Markdown.t
(** Per figure: parameters, the summary table, and the qualitative
    paper-shape checks; prefixed by a campaign-wide verdict. *)

val write_report : (Spec.t * Runner.result) list -> path:string -> unit
