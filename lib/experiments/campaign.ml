type journal_mode = No_journal | Journal of string | Resume of string

type config = {
  out_dir : string;
  n_traces : int option;
  t_step : float option;
  t_max : float option;
  figure_ids : string list option;
  journal : journal_mode;
  retry : Robust.Retry.t;
  chaos : Robust.Chaos.t option;
}

let default_config =
  {
    out_dir = "results";
    n_traces = None;
    t_step = None;
    t_max = None;
    figure_ids = None;
    journal = No_journal;
    retry = Robust.Retry.no_retry;
    chaos = None;
  }

let selected_specs config =
  match config.figure_ids with
  | None -> Figures.all
  | Some ids ->
      List.map
        (fun id ->
          match Figures.find id with
          | Some spec -> spec
          | None ->
              invalid_arg
                (Printf.sprintf "Campaign: unknown figure %s (known: %s)" id
                   (String.concat ", " Figures.ids)))
        ids

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Campaign: %s exists and is not a directory" dir)

let journal_path ~dir (spec : Spec.t) =
  Filename.concat dir (spec.Spec.id ^ ".journal")

let open_journal ~progress config (scaled : Spec.t) =
  match config.journal with
  | No_journal -> None
  | Journal dir | Resume dir ->
      ensure_dir dir;
      let strict = match config.journal with Resume _ -> true | _ -> false in
      let j =
        Robust.Journal.open_ ?chaos:config.chaos ~strict
          ~path:(journal_path ~dir scaled)
          ~key:(Spec.fingerprint scaled) ()
      in
      List.iter
        (fun w -> progress (Printf.sprintf "[%s] %s" scaled.Spec.id w))
        (Robust.Journal.warnings j);
      if Robust.Journal.length j > 0 then
        progress
          (Printf.sprintf "[%s] journal holds %d completed point(s)"
             scaled.Spec.id (Robust.Journal.length j));
      Some j

let run ?pool ?(progress = fun _ -> ()) config =
  let own_pool = pool = None in
  let pool = match pool with Some p -> p | None -> Parallel.Pool.create () in
  Fun.protect
    ~finally:(fun () -> if own_pool then Parallel.Pool.shutdown pool)
    (fun () ->
      ensure_dir config.out_dir;
      List.map
        (fun spec ->
          let scaled =
            Figures.scale ?n_traces:config.n_traces ?t_step:config.t_step
              ?t_max:config.t_max spec
          in
          progress (Printf.sprintf "== %s ==" scaled.Spec.id);
          let journal = open_journal ~progress config scaled in
          let result =
            Fun.protect
              ~finally:(fun () -> Option.iter Robust.Journal.close journal)
              (fun () ->
                Runner.run ~pool ~progress ?journal ~retry:config.retry
                  ?chaos:config.chaos scaled)
          in
          let path = Filename.concat config.out_dir (scaled.Spec.id ^ ".csv") in
          Report.to_csv result ~path;
          progress (Printf.sprintf "wrote %s" path);
          (scaled, result))
        (selected_specs config))

let markdown_report results =
  let md = Output.Markdown.create () in
  Output.Markdown.heading md ~level:1 "Experiment report";
  let all_checks =
    List.concat_map (fun (_, result) -> Report.qualitative_checks result) results
  in
  let failed =
    List.filter (fun c -> not c.Report.passed) all_checks |> List.length
  in
  Output.Markdown.paragraph md
    (Printf.sprintf
       "%d figures regenerated; %d of %d qualitative paper-shape checks hold."
       (List.length results)
       (List.length all_checks - failed)
       (List.length all_checks));
  (match Robust.Guard.peek () with
  | [] -> ()
  | ws ->
      Output.Markdown.paragraph md
        (Printf.sprintf
           "%d numerical degradation(s) absorbed during the run \
            (closed-form fallback substituted for a failed solver call):"
           (List.length ws));
      Output.Markdown.bullet md
        (List.map (Format.asprintf "%a" Robust.Guard.pp_warning) ws));
  List.iter
    (fun ((spec : Spec.t), result) ->
      Output.Markdown.heading md ~level:2 spec.Spec.id;
      Output.Markdown.paragraph md spec.Spec.description;
      Output.Markdown.paragraph md
        (Printf.sprintf
           "Parameters: λ=%g, D=%g, R=C, C ∈ {%s}, T ≤ %g (step %g), %d \
            traces per point."
           spec.Spec.lambda spec.Spec.d
           (String.concat ", " (List.map (Printf.sprintf "%g") spec.Spec.cs))
           spec.Spec.t_max spec.Spec.t_step spec.Spec.n_traces);
      Output.Markdown.table md ~header:Report.summary_header
        (Report.summary_rows result);
      match Report.qualitative_checks result with
      | [] -> ()
      | checks ->
          Output.Markdown.bullet md
            (List.map
               (fun c ->
                 Printf.sprintf "%s %s — %s"
                   (if c.Report.passed then "[ok]" else "[??]")
                   c.Report.label c.Report.detail)
               checks))
    results;
  md

let write_report results ~path =
  Output.Markdown.to_file (markdown_report results) ~path
