type journal_mode = No_journal | Journal of string | Resume of string

type config = {
  out_dir : string;
  n_traces : int option;
  t_step : float option;
  t_max : float option;
  figure_ids : string list option;
  strategies : Spec.strategy list option;
  platform : Fault.Trace.node_model option;
  predictor : Fault.Predictor.params option;
  journal : journal_mode;
  retry : Robust.Retry.t;
  chaos : Robust.Chaos.t option;
  chaos_fs : Robust.Chaos_fs.t option;
  deadline : float option;
  task_timeout : float option;
  isolate : bool;
  shards : int option;
}

let default_config =
  {
    out_dir = "results";
    n_traces = None;
    t_step = None;
    t_max = None;
    figure_ids = None;
    strategies = None;
    platform = None;
    predictor = None;
    journal = No_journal;
    retry = Robust.Retry.no_retry;
    chaos = None;
    chaos_fs = None;
    deadline = None;
    task_timeout = None;
    isolate = false;
    shards = None;
  }

type outcome = {
  results : (Spec.t * Runner.result) list;
  partial : bool;
  skipped : string list;
}

let selected_specs config =
  match config.figure_ids with
  | None -> Figures.all
  | Some ids ->
      List.map
        (fun id ->
          match Figures.find id with
          | Some spec -> spec
          | None ->
              invalid_arg
                (Printf.sprintf "Campaign: unknown figure %s (known: %s)" id
                   (String.concat ", " Figures.ids)))
        ids

let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Campaign: %s exists and is not a directory" dir)

let journal_path ~dir (spec : Spec.t) =
  Filename.concat dir (spec.Spec.id ^ ".journal")

(* Artifact writes share the grid points' retry budget: under --chaos-fs
   a journal header or a CSV publish can fail with an injected I/O error
   too, and --retry should cover those the same way it covers compute. A
   torn header left by a failed attempt is quarantined and recreated on
   the next one; a failed atomic publish leaves the previous version. *)
let retry_write retry ~key f =
  match Robust.Retry.run retry ~key (fun ~attempt:_ -> f ()) with
  | Ok v -> v
  | Error e -> raise e

let open_journal ~progress config (scaled : Spec.t) =
  match config.journal with
  | No_journal -> None
  | Journal dir | Resume dir ->
      ensure_dir dir;
      let strict = match config.journal with Resume _ -> true | _ -> false in
      let j =
        retry_write config.retry
          ~key:(Hashtbl.hash (scaled.Spec.id, "journal"))
          (fun () ->
            Robust.Journal.open_ ?chaos:config.chaos ?fs:config.chaos_fs
              ~strict
              ~path:(journal_path ~dir scaled)
              ~key:(Spec.fingerprint scaled) ())
      in
      List.iter
        (fun w -> progress (Printf.sprintf "[%s] %s" scaled.Spec.id w))
        (Robust.Journal.warnings j);
      if Robust.Journal.length j > 0 then
        progress
          (Printf.sprintf "[%s] journal holds %d completed point(s)"
             scaled.Spec.id (Robust.Journal.length j));
      Some j

let shard_ledger_path ~dir (spec : Spec.t) s =
  Filename.concat dir (Printf.sprintf "%s.shard%d.journal" spec.Spec.id s)

(* Fold every shard ledger found on disk into the shared journal, then
   delete the ledger files. Entries already journaled are skipped, so
   the merge is idempotent — it runs both before dispatch (recovering
   whatever a previously crashed sharded run left behind) and after
   (collecting this run's shards, including the partial ledger of a
   worker that was killed mid-sweep: its completed points survive). *)
let merge_ledgers config (scaled : Spec.t) ~dir ~shards main_j =
  let merged = ref 0 in
  for s = 0 to shards - 1 do
    let path = shard_ledger_path ~dir scaled s in
    if Sys.file_exists path then begin
      let ledger =
        retry_write config.retry
          ~key:(Hashtbl.hash (scaled.Spec.id, "ledger", s))
          (fun () ->
            Robust.Journal.open_ ~path ~key:(Spec.fingerprint scaled) ())
      in
      List.iter
        (fun (e : Robust.Journal.entry) ->
          if
            Robust.Journal.find main_j ~c:e.Robust.Journal.c
              ~strategy:e.Robust.Journal.strategy ~t:e.Robust.Journal.t
            = None
          then begin
            retry_write config.retry
              ~key:(Hashtbl.hash (scaled.Spec.id, "merge", s, !merged))
              (fun () -> Robust.Journal.append main_j e);
            incr merged
          end)
        (Robust.Journal.entries ledger);
      Robust.Journal.close ledger;
      Sys.remove path
    end
  done;
  Robust.Journal.sync main_j;
  !merged

(* One figure, sharded: partition the grid's task keys across [shards]
   forked workers, each journaling to a private ledger, then assemble
   the curves from the merged journal. The CSV this produces is
   byte-identical to an unsharded run's: every point is computed by
   exactly one worker from the same seeds, committed with %.17g
   round-tripping floats, and served back from the journal. *)
let run_sharded ~pool ~backend ~cache ~progress ~deadline config
    (scaled : Spec.t) ~shards =
  let dir =
    match config.journal with
    | Journal dir | Resume dir -> dir
    | No_journal -> invalid_arg "Campaign: sharding requires a journal"
  in
  let reopen () =
    match open_journal ~progress config scaled with
    | Some j -> j
    | None -> assert false
  in
  (* Recover: a crashed sharded run leaves ledgers behind; fold them in
     before dispatch so workers skip everything already computed. *)
  let j = reopen () in
  let recovered = merge_ledgers config scaled ~dir ~shards j in
  if recovered > 0 then
    progress
      (Printf.sprintf "[%s] recovered %d point(s) from shard ledger(s)"
         scaled.Spec.id recovered);
  Robust.Journal.close j;
  (* Dispatch one forked worker per shard. Each opens the shared journal
     read-only-in-practice (its appends go to the private ledger) and
     its ledger under a distinct chaos point (shard0, shard1, …), so
     [--chaos-crash-at shard0:N] SIGKILLs exactly one worker. Workers
     fork before any domain is live ({!Parallel.Pool} joins its domains
     per call) and spawn their own reduced-width pools after the fork. *)
  let worker_domains =
    max 1 (Parallel.Pool.domains pool / max 1 shards)
  in
  let worker ~attempt:_ _i s =
    let journal =
      Robust.Journal.open_
        ~path:(journal_path ~dir scaled)
        ~key:(Spec.fingerprint scaled) ()
    in
    let ledger =
      Robust.Journal.open_ ?chaos:config.chaos ?fs:config.chaos_fs
        ~point:(Printf.sprintf "shard%d" s)
        ~path:(shard_ledger_path ~dir scaled s)
        ~key:(Spec.fingerprint scaled) ()
    in
    let wcache = Strategy.Cache.create ~jobs:(Strategy.Cache.jobs cache) () in
    let wpool = Parallel.Pool.create ~domains:worker_domains () in
    Fun.protect
      ~finally:(fun () ->
        Parallel.Pool.shutdown wpool;
        Robust.Journal.close ledger;
        Robust.Journal.close journal)
      (fun () ->
        let result =
          Runner.run ~pool:wpool ~deadline
            ~progress:(fun m -> progress (Printf.sprintf "[shard %d] %s" s m))
            ~journal ~ledger ~shard:(s, shards) ~retry:config.retry
            ?chaos:config.chaos ~cache:wcache scaled
        in
        (* The worker's curves are bookkeeping only (its shard alone
           cannot complete one); the points live in the ledger. *)
        ignore (result : Runner.result))
  in
  let outcomes =
    Parallel.Proc_pool.with_pool ~workers:shards ~attempts:1 (fun pp ->
        Parallel.Proc_pool.try_mapi pp ~f:worker (Array.init shards Fun.id))
  in
  (* Collect: merge every ledger — a killed worker's completed points
     included — then fail or assemble. *)
  let j = reopen () in
  let merged = merge_ledgers config scaled ~dir ~shards j in
  progress
    (Printf.sprintf "[%s] merged %d point(s) from %d shard(s)" scaled.Spec.id
       merged shards);
  let failures =
    Array.to_list outcomes
    |> List.filter_map (function Ok () -> None | Error e -> Some e)
  in
  match failures with
  | e :: _ ->
      Robust.Journal.close j;
      failwith
        (Printf.sprintf
           "Campaign: %d of %d shard worker(s) failed (completed points are \
            journaled; rerun with --resume to finish): %s"
           (List.length failures) shards (Printexc.to_string e))
  | [] ->
      (* Assemble: an unsharded pass over the merged journal. When the
         workers finished everything, every point is served from the
         journal and this computes nothing; under an expired deadline
         the unfinished remainder surfaces as [partial] as usual. *)
      Fun.protect
        ~finally:(fun () -> Robust.Journal.close j)
        (fun () ->
          Runner.run ~pool ~backend ~deadline ~progress ~journal:j
            ~retry:config.retry ?chaos:config.chaos ~cache scaled)

let run ?pool ?cache ?(progress = fun _ -> ()) config =
  (match config.shards with
  | Some n when n < 1 ->
      invalid_arg "Campaign: shards must be >= 1"
  | Some _ when config.journal = No_journal ->
      invalid_arg "Campaign: sharding requires --journal or --resume"
  | _ -> ());
  let own_pool = pool = None in
  let pool = match pool with Some p -> p | None -> Parallel.Pool.create () in
  (* One compiled-table cache spans the whole campaign: figures sharing
     a (params, horizon, quantum) point — fig2 and fig7 are identical,
     fig2/fig4 share C = 20 — reuse each other's DP/threshold tables. *)
  let cache =
    match cache with Some c -> c | None -> Strategy.Cache.create ()
  in
  (* One reservation budget spans the whole campaign: figures that start
     late inherit whatever the earlier ones left. *)
  let deadline =
    match config.deadline with
    | None -> Robust.Deadline.unlimited
    | Some budget -> Robust.Deadline.start ~budget ()
  in
  (* The watchdog budget for killed/hung dispatches mirrors the in-task
     retry budget, so "--retry N" bounds both failure modes. *)
  let backend =
    if config.isolate || config.task_timeout <> None then
      Runner.Processes
        (Parallel.Proc_pool.create
           ~workers:(Parallel.Pool.domains pool)
           ?task_timeout:config.task_timeout
           ~attempts:config.retry.Robust.Retry.attempts ())
    else Runner.Domains
  in
  Fun.protect
    ~finally:(fun () -> if own_pool then Parallel.Pool.shutdown pool)
    (fun () ->
      ensure_dir config.out_dir;
      let scale spec =
        let scaled =
          Figures.scale ?n_traces:config.n_traces ?t_step:config.t_step
            ?t_max:config.t_max spec
        in
        (* Strategy, platform and predictor overrides change the spec
           (and therefore its fingerprint) before any journal is opened
           against it. *)
        let scaled =
          match config.strategies with
          | None -> scaled
          | Some strategies -> { scaled with Spec.strategies }
        in
        let scaled =
          match config.platform with
          | None -> scaled
          | Some _ as platform -> { scaled with Spec.platform }
        in
        match config.predictor with
        | None -> scaled
        | Some _ as predictor -> { scaled with Spec.predictor }
      in
      (* Campaign-wide warm-up: with neither a journal (a resume may
         need no tables at all) nor a deadline (an exhausted budget must
         not pay for builds), every figure's table needs are known
         upfront, so build them in one pool-saturating pass. Figures
         sharing tables (fig2/fig7, fig2/fig4 at C = 20) dedup through
         the cache key before any build is scheduled. *)
      (match (config.journal, config.deadline) with
      | No_journal, None ->
          let built =
            Strategy.warm_up_specs ~pool cache
              (List.map scale (selected_specs config))
          in
          if built > 0 then
            progress
              (Printf.sprintf "warmed %d table(s) for the campaign" built)
      | _ -> ());
      let skipped = ref [] in
      let results =
        List.filter_map
          (fun spec ->
            let scaled = scale spec in
            if Robust.Deadline.expired deadline then begin
              progress
                (Printf.sprintf "== %s == skipped: deadline exhausted"
                   scaled.Spec.id);
              skipped := scaled.Spec.id :: !skipped;
              None
            end
            else begin
              progress (Printf.sprintf "== %s ==" scaled.Spec.id);
              let result =
                match config.shards with
                | Some n when n > 1 ->
                    run_sharded ~pool ~backend ~cache ~progress ~deadline
                      config scaled ~shards:n
                | _ ->
                    let journal = open_journal ~progress config scaled in
                    Fun.protect
                      ~finally:(fun () ->
                        Option.iter Robust.Journal.close journal)
                      (fun () ->
                        Runner.run ~pool ~backend ~deadline ~progress ?journal
                          ~retry:config.retry ?chaos:config.chaos ~cache
                          scaled)
              in
              let path =
                Filename.concat config.out_dir (scaled.Spec.id ^ ".csv")
              in
              retry_write config.retry
                ~key:(Hashtbl.hash (scaled.Spec.id, "csv"))
                (fun () ->
                  Report.to_csv ?chaos_fs:config.chaos_fs result ~path);
              progress
                (Printf.sprintf "wrote %s%s" path
                   (if result.Runner.partial then
                      Printf.sprintf " (partial: %d point(s) missed)"
                        result.Runner.missed
                    else ""));
              Some (scaled, result)
            end)
          (selected_specs config)
      in
      let skipped = List.rev !skipped in
      let partial =
        skipped <> []
        || List.exists (fun (_, r) -> r.Runner.partial) results
      in
      { results; partial; skipped })

let markdown_report outcome =
  let results = outcome.results in
  let md = Output.Markdown.create () in
  Output.Markdown.heading md ~level:1 "Experiment report";
  let all_checks =
    List.concat_map (fun (_, result) -> Report.qualitative_checks result) results
  in
  let failed =
    List.filter (fun c -> not c.Report.passed) all_checks |> List.length
  in
  Output.Markdown.paragraph md
    (Printf.sprintf
       "%d figures regenerated; %d of %d qualitative paper-shape checks hold."
       (List.length results)
       (List.length all_checks - failed)
       (List.length all_checks));
  if outcome.partial then begin
    let missed_figures =
      List.filter_map
        (fun ((spec : Spec.t), (r : Runner.result)) ->
          if r.Runner.partial then
            Some (Printf.sprintf "%s (%d point(s) missed)" spec.Spec.id r.missed)
          else None)
        results
    in
    Output.Markdown.paragraph md
      (Printf.sprintf
         "**Partial report**: the reservation deadline expired before the \
          campaign finished. Completed points are journaled; rerun with \
          [--resume] to finish the rest.%s%s"
         (match missed_figures with
         | [] -> ""
         | fs -> " Incomplete: " ^ String.concat ", " fs ^ ".")
         (match outcome.skipped with
         | [] -> ""
         | ids -> " Not started: " ^ String.concat ", " ids ^ "."))
  end;
  (match Robust.Guard.peek () with
  | [] -> ()
  | ws ->
      Output.Markdown.paragraph md
        (Printf.sprintf
           "%d numerical degradation(s) absorbed during the run \
            (closed-form fallback substituted for a failed solver call):"
           (List.length ws));
      Output.Markdown.bullet md
        (List.map (Format.asprintf "%a" Robust.Guard.pp_warning) ws));
  List.iter
    (fun ((spec : Spec.t), result) ->
      Output.Markdown.heading md ~level:2 spec.Spec.id;
      Output.Markdown.paragraph md spec.Spec.description;
      Output.Markdown.paragraph md
        (Printf.sprintf
           "Parameters: λ=%g, D=%g, R=C, C ∈ {%s}, T ≤ %g (step %g), %d \
            traces per point."
           spec.Spec.lambda spec.Spec.d
           (String.concat ", " (List.map (Printf.sprintf "%g") spec.Spec.cs))
           spec.Spec.t_max spec.Spec.t_step spec.Spec.n_traces);
      Output.Markdown.table md ~header:Report.summary_header
        (Report.summary_rows result);
      match Report.qualitative_checks result with
      | [] -> ()
      | checks ->
          Output.Markdown.bullet md
            (List.map
               (fun c ->
                 Printf.sprintf "%s %s — %s"
                   (if c.Report.passed then "[ok]" else "[??]")
                   c.Report.label c.Report.detail)
               checks))
    results;
  md

let write_report ?(retry = Robust.Retry.no_retry) ?chaos_fs outcome ~path =
  retry_write retry ~key:(Hashtbl.hash ("report", path)) (fun () ->
      Output.Markdown.to_file ?chaos:chaos_fs (markdown_report outcome) ~path)
