(** Declarative description of one experiment of the paper's evaluation
    (one figure = one spec). *)

type strategy =
  | Young_daly
  | First_order
  | Numerical_optimum
  | Dynamic_programming of { quantum : float }
  | Single_final
  | Daly_second_order
  | Lambert_period
  | No_checkpoint
  | Variable_segments
      (** threshold count, continuously optimised offsets (ablation) *)
  | Optimal_unrestricted of { quantum : float }
      (** the k-free dynamic program of {!Core.Optimal} (ablation) *)
  | Renewal_dp of { quantum : float }
      (** {!Core.Dp_renewal} built for the spec's IAT distribution —
          the non-memoryless-aware optimum (extension); cubic build
          cost, use moderate horizons *)
  | Restart
      (** pure-restart baseline: never checkpoints mid-reservation, a
          single commit at the very end of the remaining horizon banks
          the work — so every failure restarts the attempt from scratch
          (heavy-tail ROADMAP item, arXiv 1802.07455) *)
  | Predicted_young_daly of { p : float; r : float }
      (** YoungDaly corrected for a predictor with recall [r]: period
          [sqrt (2 * mu * C / (1 - r))] between checkpoints
          (Aupy–Robert–Vivien–Zaidouni), plus a proactive checkpoint on
          every trusted prediction. [r = 1] degenerates to a single
          final checkpoint — everything is saved proactively. *)
  | Proactive_window of { w : float }
      (** the DP policy ([quantum = 1]) extended with a window-trust
          hook: proactively checkpoint on predictions whose window
          width is at most [w], ignore wider (vaguer) ones *)
  | Adaptive of strategy
      (** the wrapped strategy, re-planned online: whenever the platform
          shrinks or grows mid-reservation the policy is recompiled
          against the degraded failure rate (see
          {!Fault.Params.degrade}). Only meaningful on specs with
          [platform <> None]; without platform events it behaves
          bit-identically to the wrapped strategy. *)

val strategy_name : strategy -> string
(** Display name; DP variants carry their quantum ("DP(u=0.5)") except
    the canonical [quantum = 1] one, named "DynamicProgramming" as in the
    paper. *)

type failure_dist =
  | Exp  (** the paper's model: Exponential of rate λ *)
  | Weibull_shape of float  (** same MTBF (1/λ), Weibull IATs *)
  | Lognormal_sigma of float  (** same MTBF, log-normal IATs *)

type ckpt_noise =
  | Deterministic  (** checkpoints last exactly C *)
  | Erlang of int  (** Erlang(shape) with mean C *)

type t = {
  id : string;  (** e.g. "fig2" *)
  description : string;
  lambda : float;
  d : float;
  cs : float list;  (** one sub-plot per checkpoint cost *)
  t_max : float;
  t_step : float;  (** reservation-length grid step *)
  strategies : strategy list;
  n_traces : int;
  seed : int64;
  failure_dist : failure_dist;
  ckpt_noise : ckpt_noise;
  platform : Fault.Trace.node_model option;
      (** when [Some], traces are drawn from the node-level malleable
          model ({!Fault.Trace.platform_batch}) instead of the aggregate
          IAT distribution, and every trace carries its own loss/rejoin
          event schedule. Requires [failure_dist = Exp] — the node model
          is exponential by construction. *)
  predictor : Fault.Predictor.params option;
      (** when [Some], every trace additionally carries a deterministic
          predicted-event stream ({!Fault.Predictor.batch}, seeded from
          the spec seed) replayed by the engine; strategies with an
          [on_prediction] hook take proactive checkpoints. [None] is
          bit-identical to the pre-prediction engine. *)
}

val trace_dist : t -> Fault.Trace.dist
(** The IAT distribution of the spec, calibrated to MTBF [1 / lambda]. *)

val t_grid : t -> c:float -> float array
(** Reservation lengths [c + t_step, c + 2·t_step, …, <= t_max] — the
    proportion-of-work metric needs [t > c]. *)

val fingerprint : t -> string
(** Stable 16-hex-digit content hash of every result-determining field
    of the spec (parameters, grid, strategies, trace count, seed,
    distributions). Two specs share a fingerprint iff a campaign over
    them produces the same grid points, which is exactly the key a
    resume journal must be matched against — see [Robust.Journal].
    Specs with [platform = None] hash the exact pre-malleability v2
    string, and specs with [predictor = None] the exact pre-prediction
    one, so existing journals still resume. *)

val pp : Format.formatter -> t -> unit
