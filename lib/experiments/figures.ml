let paper_strategies =
  Spec.
    [
      Young_daly;
      First_order;
      Numerical_optimum;
      Dynamic_programming { quantum = 1.0 };
    ]

let quantum_strategies =
  Spec.
    [
      Dynamic_programming { quantum = 0.5 };
      Dynamic_programming { quantum = 1.0 };
      Dynamic_programming { quantum = 2.0 };
      Dynamic_programming { quantum = 5.0 };
      Dynamic_programming { quantum = 10.0 };
      Young_daly;
      First_order;
      Numerical_optimum;
    ]

let all_cs = [ 10.0; 20.0; 40.0; 80.0; 160.0 ]

let base ~id ~description ~lambda ~d ~cs ?(t_max = 2000.0) ?(t_step = 50.0)
    ?(strategies = paper_strategies) ?(failure_dist = Spec.Exp)
    ?(ckpt_noise = Spec.Deterministic) ?platform ?predictor () =
  {
    Spec.id;
    description;
    lambda;
    d;
    cs;
    t_max;
    t_step;
    strategies;
    n_traces = 1000;
    seed = 0x5EED_2024L;
    failure_dist;
    ckpt_noise;
    platform;
    predictor;
  }

let all =
  [
    base ~id:"fig2" ~description:"proportion of work, λ=0.001, D=0, all C"
      ~lambda:0.001 ~d:0.0 ~cs:all_cs ();
    base ~id:"fig3"
      ~description:"extreme case: λ=0.01, D=0, C ∈ {80, 160}" ~lambda:0.01
      ~d:0.0 ~cs:[ 80.0; 160.0 ] ();
    base ~id:"fig4"
      ~description:"impact of the DP quantum, λ=0.001, D=0, C=20"
      ~lambda:0.001 ~d:0.0 ~cs:[ 20.0 ] ~strategies:quantum_strategies ();
    base ~id:"fig5"
      ~description:"quantum impact, short reservations (fig4, T <= 100)"
      ~lambda:0.001 ~d:0.0 ~cs:[ 20.0 ] ~strategies:quantum_strategies
      ~t_max:100.0 ~t_step:5.0 ();
    base ~id:"fig6" ~description:"proportion of work, λ=0.01, D=0, all C"
      ~lambda:0.01 ~d:0.0 ~cs:all_cs ();
    base ~id:"fig7"
      ~description:"proportion of work, λ=0.001, D=0, all C (= fig2)"
      ~lambda:0.001 ~d:0.0 ~cs:all_cs ();
    base ~id:"fig8" ~description:"proportion of work, λ=0.0001, D=0, all C"
      ~lambda:0.0001 ~d:0.0 ~cs:all_cs ();
    base ~id:"fig9" ~description:"proportion of work, λ=0.01, D=5, all C"
      ~lambda:0.01 ~d:5.0 ~cs:all_cs ();
    base ~id:"fig10" ~description:"proportion of work, λ=0.001, D=5, all C"
      ~lambda:0.001 ~d:5.0 ~cs:all_cs ();
    base ~id:"fig11" ~description:"proportion of work, λ=0.0001, D=5, all C"
      ~lambda:0.0001 ~d:5.0 ~cs:all_cs ();
    base ~id:"fig12"
      ~description:"quantum impact across C, λ=0.0001, D=0"
      ~lambda:0.0001 ~d:0.0 ~cs:all_cs ~strategies:quantum_strategies ();
    (* Extensions: the paper's future-work directions, as robustness
       studies (policies still assume exponential failures). *)
    base ~id:"ext-weibull"
      ~description:
        "robustness: Weibull(k=0.7) failures with the exponential-model \
         policies, λ-equivalent MTBF 1000, D=0"
      ~lambda:0.001 ~d:0.0 ~cs:[ 20.0; 80.0 ]
      ~failure_dist:(Spec.Weibull_shape 0.7) ();
    base ~id:"ext-lognormal"
      ~description:
        "robustness: LogNormal(σ=1.2) failures, MTBF 1000, D=0"
      ~lambda:0.001 ~d:0.0 ~cs:[ 20.0; 80.0 ]
      ~failure_dist:(Spec.Lognormal_sigma 1.2) ();
    base ~id:"ext-renewal"
      ~description:
        "extension: renewal-aware DP vs exponential-derived strategies on \
         Weibull(k=0.7) failures, MTBF 1000, C=20, D=0"
      ~lambda:0.001 ~d:0.0 ~cs:[ 20.0 ] ~t_max:600.0
      ~failure_dist:(Spec.Weibull_shape 0.7)
      ~strategies:
        (paper_strategies @ Spec.[ Renewal_dp { quantum = 1.0 } ])
      ();
    base ~id:"ext-ablation"
      ~description:
        "ablation: fixed-work-optimal periods, single-final checkpoint, \
         continuous-offset and k-free optima against the paper strategies \
         (λ=0.001, D=0, C=20)"
      ~lambda:0.001 ~d:0.0 ~cs:[ 20.0 ] ~t_max:1200.0
      ~strategies:
        (paper_strategies
        @ Spec.
            [
              Single_final; Daly_second_order; Lambert_period;
              Variable_segments; Optimal_unrestricted { quantum = 1.0 };
            ])
      ();
    base ~id:"ext-stochastic-ckpt"
      ~description:
        "robustness: checkpoint duration Erlang(4) with mean C, λ=0.001, \
         D=0"
      ~lambda:0.001 ~d:0.0 ~cs:[ 20.0; 80.0 ] ~ckpt_noise:(Spec.Erlang 4) ();
    base ~id:"ext-replan"
      ~description:
        "malleability: 16-node platform, each failure fatal to its node \
         with probability 0.25, 2 spares rejoining after one downtime — \
         static-λ strategies vs online re-planning (λ=0.001, D=5, C=20)"
      ~lambda:0.001 ~d:5.0 ~cs:[ 20.0 ] ~t_max:1200.0
      ~strategies:
        Spec.
          [
            Young_daly;
            Adaptive Young_daly;
            Dynamic_programming { quantum = 1.0 };
            Adaptive (Dynamic_programming { quantum = 1.0 });
          ]
      ~platform:
        {
          Fault.Trace.nodes = 16;
          spares = 2;
          loss_prob = 0.25;
          rejoin_delay = 5.0;
        }
      ();
    base ~id:"ext-predict"
      ~description:
        "prediction: perfect predictor (p=1, r=1) with window w=30 >= C — \
         corrected-period YoungDaly and window-trusting DP with proactive \
         checkpoints vs the unpredicted strategies (λ=0.001, D=5, C=20)"
      ~lambda:0.001 ~d:5.0 ~cs:[ 20.0 ] ~t_max:1200.0
      ~strategies:
        Spec.
          [
            Young_daly;
            Predicted_young_daly { p = 1.0; r = 1.0 };
            Dynamic_programming { quantum = 1.0 };
            Proactive_window { w = 30.0 };
          ]
      ~predictor:{ Fault.Predictor.p = 1.0; r = 1.0; w = 30.0 }
      ();
  ]

let find id = List.find_opt (fun s -> s.Spec.id = id) all
let ids = List.map (fun s -> s.Spec.id) all

let scale ?n_traces ?t_step ?t_max spec =
  let spec =
    match n_traces with
    | None -> spec
    | Some n ->
        if n < 1 then invalid_arg "Figures.scale: n_traces < 1";
        { spec with Spec.n_traces = n }
  in
  let spec =
    match t_step with
    | None -> spec
    | Some s ->
        if s <= 0.0 then invalid_arg "Figures.scale: t_step <= 0";
        { spec with Spec.t_step = s }
  in
  match t_max with
  | None -> spec
  | Some m ->
      if m <= 0.0 then invalid_arg "Figures.scale: t_max <= 0";
      { spec with Spec.t_max = m }
