(** The malleability scenario: static-λ strategies vs online re-planning
    across a grid of node-loss probabilities.

    At each loss rate, every strategy is evaluated on the same platform
    histories — failure traces plus loss/rejoin schedules drawn from
    {!Fault.Trace.platform_batch} — so static/adaptive gaps are paired
    comparisons on identical scenarios. Evaluation is sequential: the
    adaptive re-plan hooks write degraded-λ tables into the shared
    {!Strategy.Cache} mid-simulation, and a single evaluation thread
    keeps the builds/hits counters deterministic (the replan drill pins
    them). *)

type series = {
  strategy : Spec.strategy;
  name : string;
  means : float array;  (** mean proportion of work, one per loss rate *)
  cis : float array;  (** 95% CI half-widths *)
  mean_replans : float array;  (** platform re-plans per trace *)
}

type result = {
  params : Fault.Params.t;
  horizon : float;
  nodes : int;
  spares : int;
  rejoin_delay : float;
  loss_probs : float array;
  n_traces : int;
  series : series list;
  cache : Strategy.Cache.stats;
      (** table-cache counters after the sweep: adaptive strategies
          revisiting a degraded λ level score hits, not builds *)
}

val run :
  ?progress:(string -> unit) ->
  ?cache:Strategy.Cache.t ->
  params:Fault.Params.t ->
  horizon:float ->
  nodes:int ->
  spares:int ->
  rejoin_delay:float ->
  loss_probs:float array ->
  n_traces:int ->
  seed:int64 ->
  Spec.strategy list ->
  result
(** Deterministic in [seed]; the per-loss-rate trace streams derive from
    it by the same decimal-rendering checksum convention as
    [Runner]. Raises [Invalid_argument] on an empty loss grid,
    [n_traces < 1], or [horizon <= C]; node-model validation errors
    surface from {!Fault.Trace.platform_batch}. *)

val to_csv : ?chaos_fs:Robust.Chaos_fs.t -> result -> path:string -> unit
(** Columns: loss_prob, strategy, mean_proportion, ci95, mean_replans.
    Published atomically ({!Robust.Durable.write_atomic}). *)

val plot : ?width:int -> ?height:int -> result -> string
(** Mean proportion of work vs loss probability, one glyph per
    strategy. *)

val checks : result -> Report.check list
(** For every [Adaptive s] series whose inner [s] was also swept:
    bit-identical means/CIs at loss 0 (no events — the same
    simulation), and adaptive >= static minus Monte-Carlo noise at
    every positive loss rate. *)
