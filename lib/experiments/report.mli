(** Rendering and sanity-checking of experiment results. *)

val to_csv :
  ?chaos_fs:Robust.Chaos_fs.t -> Runner.result -> path:string -> unit
(** Columns: figure, c, strategy, t, mean_proportion, ci95,
    mean_failures, mean_checkpoints. The file is published atomically
    and durably ({!Robust.Durable.write_atomic}); [chaos_fs] injects
    filesystem faults into the write path for drills. *)

val plots : ?width:int -> ?height:int -> Runner.result -> string
(** One ASCII plot per checkpoint cost: proportion of work vs reservation
    length, one glyph per strategy — the terminal rendition of the
    paper's figure. *)

val summary_header : string list

val summary_rows : Runner.result -> string list list
(** Per (C, strategy): mean proportion over the grid, worst point, and
    average gap to the DP strategy (when present); cells match
    {!summary_header}. *)

val summary_table : Runner.result -> Output.Table.t
(** {!summary_rows} as an aligned text table. *)

type check = { label : string; passed : bool; detail : string }

val qualitative_checks : Runner.result -> check list
(** The paper's qualitative claims evaluated on this run:
    NumericalOptimum >= FirstOrder, DynamicProgramming >=
    NumericalOptimum, every strategy converges to YoungDaly for long
    reservations, and YoungDaly loses significantly on short
    reservations (the latter is only asserted where the failure rate
    makes it observable). Tolerances account for Monte-Carlo noise. *)

val render_checks : check list -> string
