(** First-class strategy registry.

    One entry per {!Spec.strategy} family. Each entry owns everything a
    strategy needs to exist across the stack: its spec constructor, its
    stable display name, its CLI spelling (with parse/print
    round-trip), the tables it depends on, and a [compile] function
    that turns a spec strategy into an executable {!Sim.Policy.t}.
    Adding a strategy means adding one entry here — the runner, the
    campaign driver, the CLI and the docs all read this list.

    Compilation is backed by a campaign-wide {!Cache} of the expensive
    numerical tables ({!Core.Threshold}, {!Core.Dp}, {!Core.Optimal},
    {!Core.Dp_renewal}), keyed by [(params, horizon, quantum, kind)] so
    each table is built at most once per campaign no matter how many
    sub-plots, figures or strategies request it. *)

module Cache : sig
  type t
  (** Mutable table store plus instrumentation counters. Every cache
      operation is guarded by an internal mutex, so lookups, inserts and
      the counters are safe from concurrent domains and threads; the
      expensive table builds themselves run outside the lock (two racing
      builders of one key waste a build but converge on identical
      tables — builds are deterministic).

      By default the cache is unbounded, matching campaign use where
      every table is needed until the end. {!create} optionally bounds
      the resident set by table count and/or by (exact buffer) bytes;
      over the bound the least-recently-{e used} entry is evicted —
      lookups and inserts refresh recency — and counted in
      {!evictions}. The entry being inserted is never the victim, so a
      lone table larger than the byte bound stays resident and
      answerable.

      DP lookups are range queries over the key's horizon component: a
      resident build for the same platform and quantum at horizon T
      answers any lookup at T' <= T through a zero-copy prefix view
      ({!Core.Dp.prefix_view}), materialised once and cached under the
      exact key it answers. A view counts as a {e hit}, never a build,
      and its slot charges only the recomputed best-k row — the shared
      table buffers stay charged to the parent build, so a horizon
      sweep costs one table's bytes, not the grid's. *)

  type kind =
    | Threshold_numerical
    | Threshold_first_order
    | Dp of { quantum : float }
    | Optimal of { quantum : float }
    | Renewal of { quantum : float; dist : Fault.Trace.dist }
        (** The renewal table depends on the IAT distribution, not just
            on [params] — two specs with the same grid but different
            failure laws must not share it. *)

  val pp_kind : Format.formatter -> kind -> unit

  val create : ?max_tables:int -> ?max_bytes:int -> ?jobs:int -> unit -> t
  (** Unbounded unless a bound is given. [max_tables] caps the resident
      table count, [max_bytes] the summed {!Core.Dp.bytes}-style buffer
      footprint; either alone or both together. [jobs] is the domain
      count DP table builds run with ({!Core.Dp.build}'s [?jobs] —
      bit-identical tables at any value, so it is a machine knob, not
      part of the cache key); default [FIXEDLEN_JOBS] from the
      environment, else 1. Raises [Invalid_argument] on a bound or job
      count [< 1]. *)

  val jobs : t -> int
  (** The domain count DP builds run with. *)

  val builds : t -> int
  (** Number of tables built so far (cache misses). A prefix view
      materialised by the horizon range query is not a build. *)

  val hits : t -> int
  (** Number of {!ensure} requests answered from the cache. *)

  val evictions : t -> int
  (** Number of tables dropped by the LRU bound (0 when unbounded). *)

  val resident_tables : t -> int
  (** Tables currently held. *)

  val resident_bytes : t -> int
  (** Summed exact buffer footprint of the resident tables, the value
      the [max_bytes] bound is enforced against. *)

  type stats = {
    s_builds : int;
    s_hits : int;
    s_evictions : int;
    s_resident_tables : int;
    s_resident_bytes : int;
  }

  val stats : t -> stats
  (** All counters in one consistent snapshot (taken under the cache
      lock — the individual accessors can tear across concurrent
      inserts). *)
end

type error =
  | Missing_table of {
      kind : Cache.kind;
      params : Fault.Params.t;
      horizon : float;
    }
      (** {!val-compile} was asked for a table {!ensure} never built — a
          configuration error in the calling code, reported as data
          instead of crashing the sweep. *)

val error_message : error -> string

type entry = {
  cli : string;  (** stable CLI keyword, e.g. ["dp"] *)
  doc : string;  (** one-line description for [--help] and the README *)
  arg_docv : string option;
      (** metavariable of the optional [:ARG] suffix ([Some "U"],
          [Some "P,R"], [Some "W"]); [None] when the entry is bare *)
  example : Spec.strategy;  (** canonical instance, default argument *)
  parse : arg:string option -> (Spec.strategy, string) result;
      (** spec constructor from the raw text after the colon ([None]
          when the keyword was bare — entries supply their default) *)
  print_arg : Spec.strategy -> string option;
      (** inverse of [parse]: the [:ARG] rendering of an owned
          strategy, or [None] when the default spelling suffices *)
  owns : Spec.strategy -> bool;
  requires : dist:Fault.Trace.dist -> Spec.strategy -> Cache.kind list;
      (** the tables this entry's [compile] will look up *)
  compile :
    Cache.t ->
    params:Fault.Params.t ->
    horizon:float ->
    dist:Fault.Trace.dist ->
    Spec.strategy ->
    (Sim.Policy.t, error) result;
}

val entries : entry list
(** The registry, in the paper's presentation order. *)

val name : Spec.strategy -> string
(** Display name — identical to {!Spec.strategy_name}, which is the
    label used in reports, CSV columns and resume journals. *)

val to_string : Spec.strategy -> string
(** CLI spelling, e.g. ["dp:0.5"]. Guaranteed to round-trip:
    [of_string (to_string s) = Ok s] for every strategy, including
    non-representable-in-%g quanta (falls back to an exact rendering). *)

val of_string : string -> (Spec.strategy, string) result
(** Parse a CLI spelling ([KEYWORD] or [KEYWORD:ARG], e.g. ["dp:0.5"],
    ["predicted-young-daly:0.8,0.9"]). The error lists the known
    spellings. *)

val of_string_list : string -> (Spec.strategy list, string) result
(** Parse a comma-separated list of CLI spellings. The split is
    keyword-aware: a comma opens a new strategy only when the next
    token starts with a registered keyword, so multi-argument
    spellings like ["predicted-young-daly:0.8,0.9"] survive. *)

val requires : dist:Fault.Trace.dist -> Spec.strategy -> Cache.kind list
(** The tables the strategy's [compile] will look up. *)

val ensure :
  ?pool:Parallel.Pool.t ->
  Cache.t ->
  params:Fault.Params.t ->
  horizon:float ->
  dist:Fault.Trace.dist ->
  Spec.strategy list ->
  unit
(** Build (in parallel when [pool] is given) every table the strategies
    need at this [(params, horizon)] point that the cache does not
    already hold. The cache itself is lock-protected, so concurrent
    [ensure] calls (the serve daemon's workers) are safe; racing callers
    may duplicate a build but always converge on identical tables. Only
    pass [pool] from the parent domain — nested pool use deadlocks. *)

type warm_point = {
  wp_params : Fault.Params.t;
  wp_horizon : float;
  wp_dist : Fault.Trace.dist;
  wp_strategies : Spec.strategy list;
}
(** One [(params, horizon, dist, strategies)] point a campaign will
    sweep — the unit of {!warm_up} collection. *)

val warm_up : ?pool:Parallel.Pool.t -> Cache.t -> warm_point list -> int
(** Collect the distinct table keys the given points will need, drop
    the ones the cache already holds, and build the rest — concurrently
    when [pool] is given (builds are independent; inserts happen in the
    caller). Returns the number of tables built. Unlike {!ensure} this
    crosses [(params, horizon)] boundaries, so a whole campaign's tables
    can saturate the pool upfront instead of being built serially
    between per-block simulation bursts. Does not count cache hits:
    later {!ensure} calls observe and count their (now guaranteed)
    hits. Call from the parent process/domain only. *)

val warm_points_of_spec : Spec.t -> warm_point list
(** The warm-up points of one spec: one per sub-plot ([cs] entry) with a
    non-empty reservation grid, at that sub-plot's maximal horizon —
    exactly the [(params, horizon)] keys {!Runner.run}'s sweeps will
    {!ensure}. *)

val warm_up_specs : ?pool:Parallel.Pool.t -> Cache.t -> Spec.t list -> int
(** [warm_up] over the concatenated {!warm_points_of_spec} of a
    campaign's specs. *)

val dp_table :
  Cache.t ->
  params:Fault.Params.t ->
  horizon:float ->
  quantum:float ->
  (Core.Dp.t, error) result
(** The raw Section 6 DP table at [(params, horizon, quantum)], for
    callers that answer table queries directly (the serve daemon's
    next-checkpoint lookups) instead of compiling a simulation policy.
    Same contract as {!val-compile}: read-only, the table must have been
    built by {!ensure} first. *)

val compile :
  Cache.t ->
  params:Fault.Params.t ->
  horizon:float ->
  dist:Fault.Trace.dist ->
  Spec.strategy ->
  (Sim.Policy.t, error) result
(** Compile a strategy against the cache. Cheap (table lookups plus
    policy closure allocation) and read-only, but note that some
    policies — the Section 6 DP — are stateful across one simulated
    reservation: compile a fresh policy per concurrent evaluation.

    {!Spec.Adaptive} strategies compile to the wrapped policy with an
    online re-plan hook: on every platform change the engine hands the
    degraded parameters back and the wrapped strategy is recompiled
    against them {e through this cache} — a degraded-λ point already
    resident (e.g. a shrinking platform revisiting a level) scores a
    hit, a new one builds and inserts synchronously. Compiling adaptive
    strategies is therefore the one write path reachable from worker
    domains; the cache lock makes it safe, but builds/hits counters are
    only deterministic under a single evaluation domain. *)

val compile_exn :
  Cache.t ->
  params:Fault.Params.t ->
  horizon:float ->
  dist:Fault.Trace.dist ->
  Spec.strategy ->
  Sim.Policy.t
(** [compile] with the error raised as [Failure (error_message e)]. *)

val listing : unit -> (string * string * string) list
(** One [(cli spelling, display name, doc)] row per registry entry —
    the single source for the README table and the [strategies]
    subcommand. *)

val markdown_table : unit -> string
(** The listing as a GitHub-flavoured Markdown table. *)
