type point = {
  t : float;
  mean : float;
  ci95 : float;
  mean_failures : float;
  mean_checkpoints : float;
}

type curve = {
  c : float;
  strategy : Spec.strategy;
  name : string;
  points : point array;
}

type result = {
  spec : Spec.t;
  curves : curve list;
  partial : bool;
  missed : int;
}

type backend = Domains | Processes of Parallel.Proc_pool.t

(* Per-(c, salt) trace seeds. The salt-0 stream feeds trace generation,
   salt i+1 the checkpoint-noise sampler of task i. The derivation
   hashes the exact decimal rendering of [c] (FNV-1a over "%.17g") so
   distinct checkpoint costs can never collide — the previous
   [int_of_float (c *. 97.0) * 1009] salt collapsed e.g. c = 10.0 and
   c = 10.001 onto the same seed. Seed compatibility note: this change
   shifts every Monte-Carlo stream, so goldens generated before it do
   not match (Spec.fingerprint was bumped to v2 in the same change, so
   stale journals are detected rather than silently resumed). *)
let seed_for base ~c ~salt =
  Int64.add base
    (Numerics.Checksum.fold_int
       (Numerics.Checksum.fnv1a64 (Printf.sprintf "%.17g" c))
       salt)

exception Sweep_failure of { completed : int; failed : int; first : exn }

let () =
  Printexc.register_printer (function
    | Sweep_failure { completed; failed; first } ->
        Some
          (Printf.sprintf
             "Runner.Sweep_failure: %d grid point(s) failed after retries \
              (%d completed%s); first failure: %s"
             failed completed
             " — completed points are preserved in the journal, if any"
             (Printexc.to_string first))
    | _ -> None)

let point_of_entry (e : Robust.Journal.entry) =
  {
    t = e.Robust.Journal.t;
    mean = e.Robust.Journal.mean;
    ci95 = e.Robust.Journal.ci95;
    mean_failures = e.Robust.Journal.mean_failures;
    mean_checkpoints = e.Robust.Journal.mean_checkpoints;
  }

let entry_of_point ~c ~strategy (p : point) =
  {
    Robust.Journal.c;
    strategy;
    t = p.t;
    mean = p.mean;
    ci95 = p.ci95;
    mean_failures = p.mean_failures;
    mean_checkpoints = p.mean_checkpoints;
  }

(* One C block's Monte-Carlo phase: build the shared tables, then sweep
   every uncached (strategy, t) task through the selected backend with
   per-task fault isolation. Each completed point is committed to the
   journal (if any) as soon as it settles — from inside the worker on the
   [Domains] backend, from the supervising parent on [Processes] (a
   forked child's journal writes would die with its copy-on-write heap)
   — so an interruption loses at most the points still in flight. *)
let sweep ~pool ~backend ~deadline ~progress ~journal ~ledger ~shard ~retry
    ~chaos ~cache ~spec ~dist ~params ~c ~grid ~horizon_max ~tasks ~cached
    ~base =
  (* A malleable spec draws traces from the node-level model instead of
     the aggregate distribution: each trace then carries its own
     loss/rejoin schedule, replayed for every strategy so static and
     adaptive policies face identical platform histories. *)
  let traces, platforms =
    match spec.Spec.platform with
    | None ->
        ( Fault.Trace.batch ~dist
            ~seed:(seed_for spec.Spec.seed ~c ~salt:0)
            ~n:spec.Spec.n_traces,
          None )
    | Some model ->
        let histories =
          Fault.Trace.platform_batch ~model ~rate:spec.Spec.lambda
            ~d:spec.Spec.d ~horizon:horizon_max
            ~seed:(seed_for spec.Spec.seed ~c ~salt:0)
            ~n:spec.Spec.n_traces
        in
        ( Array.map fst histories,
          Some
            (Array.map
               (fun (_, events) ->
                 { Sim.Engine.initial = model.Fault.Trace.nodes; events })
               histories) )
  in
  (* Materialise every IAT any grid point can consume, so the
     parallel phase only reads the traces. *)
  Parallel.Pool.map pool traces ~f:(fun tr ->
      Fault.Trace.prefetch tr ~until:horizon_max)
  |> ignore;
  (* Predicted-event streams are derived from the (now memoised) traces
     under common random numbers — salt -1, disjoint from the trace
     stream (salt 0) and every checkpoint-noise stream (salt i+1) — and
     replayed for every strategy, so predicted and unpredicted policies
     face identical fault scenarios and identical announcements. *)
  let predictions =
    match spec.Spec.predictor with
    | None -> None
    | Some pr ->
        Some
          (Fault.Predictor.batch ~params:pr ~rate:spec.Spec.lambda
             ~horizon:horizon_max
             ~seed:(seed_for spec.Spec.seed ~c ~salt:(-1))
             traces)
  in
  (* Build whatever tables this (params, horizon) point still needs —
     in the parent, before any task runs, so compiles below are pure
     reads (safe from worker domains and forked workers alike). Tables
     already in the campaign cache (an earlier figure, a duplicated
     sub-plot) are reused as-is. *)
  Strategy.ensure ~pool cache ~params ~horizon:horizon_max ~dist
    spec.Spec.strategies;
  progress
    (Printf.sprintf "[%s] C = %g: sweeping %d lengths x %d strategies"
       spec.Spec.id c (Array.length grid)
       (List.length spec.Spec.strategies));
  let eval i (strategy, horizon) =
    let policy =
      Strategy.compile_exn cache ~params ~horizon:horizon_max ~dist strategy
    in
    let ckpt_sampler =
      match spec.Spec.ckpt_noise with
      | Spec.Deterministic -> None
      | Spec.Erlang shape ->
          let rng =
            Numerics.Rng.create
              ~seed:(seed_for spec.Spec.seed ~c ~salt:(i + 1))
          in
          Some
            (fun () ->
              Numerics.Rng.gamma_int rng ~shape
                ~scale:(c /. float_of_int shape))
    in
    let r =
      Sim.Runner.evaluate ?ckpt_sampler ?platforms ?predictions ~params
        ~horizon ~policy traces
    in
    {
      t = horizon;
      mean = r.Sim.Runner.proportion.Numerics.Stats.mean;
      ci95 = r.Sim.Runner.proportion.Numerics.Stats.ci95_half_width;
      mean_failures = r.Sim.Runner.mean_failures;
      mean_checkpoints = r.Sim.Runner.mean_checkpoints;
    }
  in
  (* Cached points never travel through a backend: they are free, so a
     deadline that expires mid-block cannot cancel them, and they must
     not be journaled a second time. A shard keeps only its residue
     class of the task-key space — task keys are stable across runs, so
     the same point always lands on the same shard and the shards'
     ledgers partition the grid with no overlap. *)
  let mine i =
    match shard with
    | None -> true
    | Some (index, count) -> (base + i) mod count = index
  in
  let todo =
    Array.of_list
      (List.filter
         (fun i -> cached.(i) = None && mine i)
         (List.init (Array.length tasks) Fun.id))
  in
  (* The task key feeds chaos injection and retry jitter; the evaluation
     itself is a pure function of (i, task), so a retried attempt
     reproduces the fault-free value exactly. [dispatch_attempt] counts
     watchdog re-dispatches on the process backend (always 0 on domains):
     folding it into the chaos attempt number means a task whose previous
     incarnation was killed mid-hang draws {e fresh} chaos decisions, so
     a deterministic hang cannot livelock a retried dispatch. *)
  let compute ~dispatch_attempt i =
    let key = base + i in
    let run_attempt ~attempt =
      (match chaos with
      | Some ch ->
          Robust.Chaos.inject ch ~key
            ~attempt:((dispatch_attempt * retry.Robust.Retry.attempts) + attempt)
      | None -> ());
      eval i tasks.(i)
    in
    match Robust.Retry.run retry ~key run_attempt with
    | Ok p -> p
    | Error e -> raise e
  in
  (* Appends share the per-point retry budget: a transient I/O failure
     (real or injected) mid-append leaves the journal repaired back to
     the previous record boundary, so retrying the append is sound and
     "--retry N" covers the persistence path as well as the compute. *)
  let commit i p =
    (* A sharded worker appends to its private ledger, never to the
       shared journal it reads from — concurrent appends from several
       worker processes to one file would interleave frames. *)
    match (match ledger with Some _ -> ledger | None -> journal) with
    | Some j ->
        let entry =
          entry_of_point ~c ~strategy:(Spec.strategy_name (fst tasks.(i))) p
        in
        (match
           Robust.Retry.run retry ~key:(base + i) (fun ~attempt:_ ->
               Robust.Journal.append j entry)
         with
        | Ok () -> ()
        | Error e -> raise e)
    | None -> ()
  in
  let computed =
    match backend with
    | Domains ->
        (* Commit runs inside the task body: a failing append (e.g. under
           journal fault injection) fails the task, same as the process
           backend's parent-side commit failing a settled result. *)
        Parallel.Pool.try_mapi pool todo ~f:(fun _j i ->
            Robust.Deadline.check deadline;
            let p = compute ~dispatch_attempt:0 i in
            commit i p;
            p)
    | Processes pp ->
        Parallel.Proc_pool.try_mapi pp todo
          ~should_stop:(fun () -> Robust.Deadline.expired deadline)
          ~on_result:(fun j p -> commit todo.(j) p)
          ~f:(fun ~attempt _j i -> compute ~dispatch_attempt:attempt i)
  in
  let outcomes =
    Array.map
      (function
        | Some p -> Ok p
        | None -> Error Robust.Deadline.Deadline_exceeded)
      cached
  in
  Array.iteri (fun j i -> outcomes.(i) <- computed.(j)) todo;
  outcomes

(* Deadline misses are bookkept apart from real failures: a point the
   budget cancelled is not broken, merely not yet computed, and must
   surface as [partial]/[missed] rather than as a {!Sweep_failure}. *)
let is_deadline_miss = function
  | Robust.Deadline.Deadline_exceeded | Parallel.Proc_pool.Cancelled -> true
  | _ -> false

let run ?pool ?(backend = Domains) ?(deadline = Robust.Deadline.unlimited)
    ?(progress = fun _ -> ()) ?journal ?ledger ?shard
    ?(retry = Robust.Retry.no_retry) ?chaos ?cache spec =
  (match shard with
  | Some (index, count) when count < 1 || index < 0 || index >= count ->
      invalid_arg
        (Printf.sprintf "Runner.run: invalid shard %d/%d" index count)
  | _ -> ());
  let cache =
    match cache with Some c -> c | None -> Strategy.Cache.create ()
  in
  let own_pool = pool = None in
  let pool = match pool with Some p -> p | None -> Parallel.Pool.create () in
  Fun.protect
    ~finally:(fun () -> if own_pool then Parallel.Pool.shutdown pool)
    (fun () ->
      (* The node-level model is exponential by construction, so a
         malleable spec must not also claim a non-exponential IAT
         distribution (the two would silently disagree). *)
      (match (spec.Spec.platform, spec.Spec.failure_dist) with
      | Some _, (Spec.Weibull_shape _ | Spec.Lognormal_sigma _) ->
          invalid_arg "Runner.run: platform model requires failure_dist = Exp"
      | _ -> ());
      let dist = Spec.trace_dist spec in
      (* Task keys must be unique across the whole spec (not just within
         one C block) so chaos injection and retry jitter never correlate
         between sub-plots. *)
      let task_base = ref 0 in
      (* Warm the table cache across every C block this run will
         actually sweep, before the first block's simulations start:
         tables for different (params, horizon) points are independent,
         so one pool-wide pass builds them concurrently instead of
         serially between per-block simulation bursts. Fully journaled
         blocks build nothing (a resume stays table-free), and an
         already-expired deadline skips the pass the same way it skips
         the sweeps. The per-block [Strategy.ensure] stays in [sweep] as
         the correctness anchor; after warm-up it only scores hits. *)
      if not (Robust.Deadline.expired deadline) then begin
        (* A shard worker warms tables only for the points it will
           compute itself — the other shards' workers warm their own. *)
        let journaled j ~c ~name ~t =
          match j with
          | None -> false
          | Some j -> Robust.Journal.find j ~c ~strategy:name ~t <> None
        in
        let block_done ~base ~c grid =
          (journal <> None || ledger <> None)
          &&
          let strategies = spec.Spec.strategies in
          List.for_all
            (fun si ->
              let strategy = List.nth strategies si in
              let name = Spec.strategy_name strategy in
              Array.for_all
                (fun ti ->
                  let t = grid.(ti) in
                  let i = (si * Array.length grid) + ti in
                  let mine =
                    match shard with
                    | None -> true
                    | Some (index, count) -> (base + i) mod count = index
                  in
                  (not mine)
                  || journaled journal ~c ~name ~t
                  || journaled ledger ~c ~name ~t)
                (Array.init (Array.length grid) Fun.id))
            (List.init (List.length strategies) Fun.id)
        in
        let _, rev_points =
          List.fold_left
            (fun (base, acc) c ->
              let grid = Spec.t_grid spec ~c in
              if Array.length grid = 0 then (base, acc)
              else
                let n_tasks =
                  List.length spec.Spec.strategies * Array.length grid
                in
                let acc =
                  if block_done ~base ~c grid then acc
                  else
                    {
                      Strategy.wp_params =
                        Fault.Params.paper ~lambda:spec.Spec.lambda ~c
                          ~d:spec.Spec.d;
                      wp_horizon = grid.(Array.length grid - 1);
                      wp_dist = dist;
                      wp_strategies = spec.Spec.strategies;
                    }
                    :: acc
                in
                (base + n_tasks, acc))
            (0, []) spec.Spec.cs
        in
        let points = List.rev rev_points in
        let built = Strategy.warm_up ~pool cache points in
        if built > 0 then
          progress
            (Printf.sprintf "[%s] warmed %d table(s) across %d block(s)"
               spec.Spec.id built (List.length points))
      end;
      (* Failures are collected across every C block — the whole grid is
         attempted (and its successes journaled) before the run gives
         up, so a relaunch has the most progress possible to resume. *)
      let total_completed = ref 0 and all_failures = ref [] in
      let total_missed = ref 0 in
      let curves =
        List.concat_map
          (fun c ->
            progress (Printf.sprintf "[%s] C = %g: preparing" spec.Spec.id c);
            let params =
              Fault.Params.paper ~lambda:spec.Spec.lambda ~c ~d:spec.Spec.d
            in
            let grid = Spec.t_grid spec ~c in
            if Array.length grid = 0 then []
            else begin
              let horizon_max = grid.(Array.length grid - 1) in
              let tasks =
                Array.of_list
                  (List.concat_map
                     (fun strategy ->
                       Array.to_list (Array.map (fun t -> (strategy, t)) grid))
                     spec.Spec.strategies)
              in
              let base = !task_base in
              task_base := base + Array.length tasks;
              (* Points already committed to the journal are reused
                 verbatim: journaled floats round-trip exactly, so a
                 resumed sweep reproduces the interrupted one's curves. *)
              (* A sharded worker also consults its own ledger: a
                 re-dispatched or resumed shard skips the points its
                 previous incarnation already committed. *)
              let find_cached ~strategy ~t =
                let look = function
                  | None -> None
                  | Some j ->
                      Robust.Journal.find j ~c
                        ~strategy:(Spec.strategy_name strategy) ~t
                in
                match look journal with None -> look ledger | some -> some
              in
              let cached =
                Array.map
                  (fun (strategy, t) ->
                    Option.map point_of_entry (find_cached ~strategy ~t))
                  tasks
              in
              let n_cached =
                Array.fold_left
                  (fun acc o -> if o = None then acc else acc + 1)
                  0 cached
              in
              if n_cached > 0 then
                progress
                  (Printf.sprintf
                     "[%s] C = %g: %d/%d points resumed from journal"
                     spec.Spec.id c n_cached (Array.length tasks));
              let outcomes =
                if n_cached = Array.length tasks then
                  (* Fully journaled: skip trace generation and table
                     builds entirely (even past the deadline — cached
                     points are free). *)
                  Array.map (fun o -> Ok (Option.get o)) cached
                else if Robust.Deadline.expired deadline then begin
                  (* The budget ran out before this block: serve what the
                     journal has and mark the rest missed, without paying
                     for trace generation or table builds. *)
                  progress
                    (Printf.sprintf
                       "[%s] C = %g: deadline exhausted, skipping block"
                       spec.Spec.id c);
                  Array.map
                    (function
                      | Some p -> Ok p
                      | None -> Error Robust.Deadline.Deadline_exceeded)
                    cached
                end
                else
                  sweep ~pool ~backend ~deadline ~progress ~journal ~ledger
                    ~shard ~retry ~chaos ~cache ~spec ~dist ~params ~c ~grid
                    ~horizon_max ~tasks ~cached ~base
              in
              (match (match ledger with Some _ -> ledger | None -> journal) with
              | Some j -> Robust.Journal.sync j
              | None -> ());
              let failures = ref [] and missed = ref 0 in
              Array.iter
                (function
                  | Ok _ -> incr total_completed
                  | Error e when is_deadline_miss e -> incr missed
                  | Error e -> failures := e :: !failures)
                outcomes;
              total_missed := !total_missed + !missed;
              if !missed > 0 then
                progress
                  (Printf.sprintf
                     "[%s] C = %g: %d point(s) missed the deadline"
                     spec.Spec.id c !missed);
              (match List.rev !failures with
              | _ :: _ as fs ->
                  (* Keep going: later C blocks still run and journal
                     their successes; the raise happens once at the end. *)
                  all_failures := !all_failures @ fs
              | [] -> ());
              (* A curve is emitted only when every one of its points is
                 Ok: partial curves would plot as distorted lines, and
                 the journal already preserves the completed points for a
                 resumed run to finish the rest. *)
              let strategy_of i = fst tasks.(i) in
              List.filter_map
                (fun strategy ->
                  let idx =
                    List.filter
                      (fun i -> strategy_of i = strategy)
                      (List.init (Array.length tasks) Fun.id)
                  in
                  let pts =
                    List.filter_map
                      (fun i ->
                        match outcomes.(i) with
                        | Ok p -> Some p
                        | Error _ -> None)
                      idx
                  in
                  if List.length pts = List.length idx then
                    Some
                      {
                        c;
                        strategy;
                        name = Spec.strategy_name strategy;
                        points = Array.of_list pts;
                      }
                  else None)
                spec.Spec.strategies
            end)
          spec.Spec.cs
      in
      (match !all_failures with
      | [] -> ()
      | first :: _ as fs ->
          raise
            (Sweep_failure
               {
                 completed = !total_completed;
                 failed = List.length fs;
                 first;
               }));
      { spec; curves; partial = !total_missed > 0; missed = !total_missed })

let curve_for result ~c ~strategy =
  List.find_opt
    (fun curve -> curve.c = c && curve.strategy = strategy)
    result.curves
