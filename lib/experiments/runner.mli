(** Executes a figure spec: sweeps the reservation-length grid for every
    (checkpoint cost, strategy) pair, in parallel over a domain pool. *)

type point = {
  t : float;  (** reservation length *)
  mean : float;  (** mean proportion of work done *)
  ci95 : float;  (** 95% confidence half-width of the mean *)
  mean_failures : float;
  mean_checkpoints : float;
}

type curve = {
  c : float;
  strategy : Spec.strategy;
  name : string;
  points : point array;  (** ordered by [t] *)
}

type result = { spec : Spec.t; curves : curve list }

exception
  Sweep_failure of { completed : int; failed : int; first : exn }
(** Raised when grid points still fail after the retry budget. Completed
    points were already committed to the journal (when one is in use),
    so a relaunch with the same journal resumes instead of restarting. *)

val run :
  ?pool:Parallel.Pool.t ->
  ?progress:(string -> unit) ->
  ?journal:Robust.Journal.t ->
  ?retry:Robust.Retry.t ->
  ?chaos:Robust.Chaos.t ->
  Spec.t ->
  result
(** Precomputations (threshold tables, DP tables — one per distinct
    quantum, covering the whole grid) are shared across the sweep; each
    grid point replays the same prefetched traces, so strategies are
    compared on identical failure scenarios. [progress] receives
    human-readable stage messages.

    Resilience knobs:
    - [journal]: must be keyed by [Spec.fingerprint] of this spec. Grid
      points already present are {e not} recomputed (a C block that is
      fully journaled skips trace generation and table builds
      altogether); each newly computed point is appended as soon as it
      completes and the journal is fsync'd at every C-block boundary.
    - [retry]: per-task bounded retries with deterministic jittered
      backoff for transient failures ([Robust.Retry.no_retry] by
      default). Because each task is a pure function of the spec, a
      retried task yields the identical point, so curves under
      chaos-with-retry equal fault-free curves exactly.
    - [chaos]: deterministic fault injection at task boundaries, for
      resilience tests and demos.
    One task failing (after retries) no longer abandons the others:
    every remaining task completes (and is journaled) before
    {!Sweep_failure} is raised. *)

val curve_for : result -> c:float -> strategy:Spec.strategy -> curve option
