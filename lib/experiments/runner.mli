(** Executes a figure spec: sweeps the reservation-length grid for every
    (checkpoint cost, strategy) pair, in parallel over a domain pool. *)

type point = {
  t : float;  (** reservation length *)
  mean : float;  (** mean proportion of work done *)
  ci95 : float;  (** 95% confidence half-width of the mean *)
  mean_failures : float;
  mean_checkpoints : float;
}

type curve = {
  c : float;
  strategy : Spec.strategy;
  name : string;
  points : point array;  (** ordered by [t] *)
}

type result = {
  spec : Spec.t;
  curves : curve list;
  partial : bool;
      (** true when the deadline cut the sweep short: some grid points
          were never computed. Completed points are in the journal (when
          one is in use); a relaunch with [--resume] finishes the rest. *)
  missed : int;  (** grid points cancelled or skipped by the deadline *)
}

(** How grid-point tasks execute. [Domains] (the default) shares one
    address space — fast, but a hung or crashing task takes the whole
    run down. [Processes] runs each task in a supervised forked worker
    ({!Parallel.Proc_pool}): a task that hangs past the pool's watchdog
    timeout is SIGKILLed and re-dispatched, and a segfaulting task
    surfaces as that one point's error. Precomputations (trace
    prefetch, DP table builds) always run on the domain pool; the
    backends interleave safely because {!Parallel.Pool} joins its
    domains before each [map] returns, so no domain is live at fork
    time. *)
type backend = Domains | Processes of Parallel.Proc_pool.t

val seed_for : int64 -> c:float -> salt:int -> int64
(** RNG seed for one stream of a sweep: [base] is the spec seed, salt 0
    is the failure-trace batch of the C block and salt [i + 1] the
    checkpoint-noise stream of strategy [i]. The cost enters through a
    checksum of its decimal rendering, so distinct costs — however
    close — can never collide onto the same Monte-Carlo stream. *)

exception
  Sweep_failure of { completed : int; failed : int; first : exn }
(** Raised when grid points still fail after the retry budget. Completed
    points were already committed to the journal (when one is in use),
    so a relaunch with the same journal resumes instead of restarting.
    Deadline misses are {e not} failures: they surface as
    [partial]/[missed] in the result instead. *)

val run :
  ?pool:Parallel.Pool.t ->
  ?backend:backend ->
  ?deadline:Robust.Deadline.t ->
  ?progress:(string -> unit) ->
  ?journal:Robust.Journal.t ->
  ?ledger:Robust.Journal.t ->
  ?shard:int * int ->
  ?retry:Robust.Retry.t ->
  ?chaos:Robust.Chaos.t ->
  ?cache:Strategy.Cache.t ->
  Spec.t ->
  result
(** Policies are compiled through the {!Strategy} registry against
    [cache] (a private cache per run by default). Pass a shared cache —
    as {!Campaign.run} does — and the expensive threshold/DP tables are
    built at most once per [(params, horizon, quantum, kind)] across
    every figure and sub-plot of the campaign, instead of once per
    sweep. Each grid point replays the same prefetched traces, so
    strategies are compared on identical failure scenarios. [progress]
    receives human-readable stage messages.

    Resilience knobs:
    - [journal]: must be keyed by [Spec.fingerprint] of this spec. Grid
      points already present are {e not} recomputed (a C block that is
      fully journaled skips trace generation and table builds
      altogether); each newly computed point is appended as soon as it
      completes and the journal is fsync'd at every C-block boundary.
      On the [Processes] backend the append happens in the supervising
      parent as results settle (a forked child's writes would be lost
      with its copy-on-write heap).
    - [shard]: [(index, count)] restricts the sweep to the task keys in
      residue class [index mod count]. Task keys are stable across runs,
      so [count] workers given shards [0 .. count - 1] partition the
      grid exactly. Points outside the shard are neither computed nor
      failed — they surface as [missed] (the worker's [result] is
      bookkeeping only; curve assembly happens in the leader from the
      merged journal). Raises [Invalid_argument] unless
      [0 <= index < count].
    - [ledger]: where newly computed points are appended when it differs
      from the read-side [journal]. A sharded worker reads completed
      points from the shared (merged) journal but writes to a private
      per-shard ledger — concurrent appends from several processes to
      one journal file would interleave frames. The ledger is also
      consulted for cached points, so a re-dispatched worker skips what
      its previous incarnation committed.
    - [retry]: per-task bounded retries with deterministic jittered
      backoff for transient failures ([Robust.Retry.no_retry] by
      default). Because each task is a pure function of the spec, a
      retried task yields the identical point, so curves under
      chaos-with-retry equal fault-free curves exactly — on either
      backend, since [Marshal] round-trips float bits.
    - [chaos]: deterministic fault injection at task boundaries, for
      resilience tests and demos.
    - [deadline]: a reservation budget ({!Robust.Deadline.unlimited} by
      default). Once it expires no new task is dispatched (in-flight
      tasks drain); remaining points are counted in [missed], the
      journal is fsync'd, and whatever curves are complete are returned
      with [partial = true] — the run ends gracefully instead of dying.
      A curve is emitted only when {e all} its points completed.
    One task failing (after retries) no longer abandons the others:
    every remaining task completes (and is journaled) before
    {!Sweep_failure} is raised. *)

val curve_for : result -> c:float -> strategy:Spec.strategy -> curve option
