type curve = {
  c : float;
  name : string;
  points : (float * float) array;
}

let supported_strategy = function
  (* Adaptive re-plans only matter on malleable platforms, which the
     closed forms do not model — likewise predicted-event strategies
     (Monte-Carlo only) and the restart baseline. *)
  | Spec.Variable_segments | Spec.Renewal_dp _ | Spec.Adaptive _ | Spec.Restart
  | Spec.Predicted_young_daly _ | Spec.Proactive_window _ ->
      false
  | Spec.Young_daly | Spec.First_order | Spec.Numerical_optimum
  | Spec.Dynamic_programming _ | Spec.Single_final | Spec.Daly_second_order
  | Spec.Lambert_period | Spec.No_checkpoint | Spec.Optimal_unrestricted _ ->
      true

let policy_for ~params ~horizon = function
  | Spec.Young_daly -> Core.Policies.young_daly ~params
  | Spec.First_order -> Core.Policies.first_order ~params ~horizon
  | Spec.Numerical_optimum -> Core.Policies.numerical_optimum ~params ~horizon
  | Spec.Single_final -> Core.Policies.single_final ~params
  | Spec.Daly_second_order -> Core.Policies.daly_second_order ~params
  | Spec.Lambert_period -> Core.Policies.lambert_optimal_period ~params
  | Spec.No_checkpoint -> Sim.Policy.no_checkpoint
  | Spec.Dynamic_programming { quantum } | Spec.Optimal_unrestricted { quantum }
    ->
      Core.Optimal.policy
        (Core.Optimal.build ~params ~quantum ~horizon ())
  | Spec.Variable_segments | Spec.Renewal_dp _ | Spec.Adaptive _ | Spec.Restart
  | Spec.Predicted_young_daly _ | Spec.Proactive_window _ ->
      invalid_arg "Exact: unsupported strategy"

let figure ?(quantum = 1.0) (spec : Spec.t) =
  (match spec.Spec.failure_dist with
  | Spec.Exp -> ()
  | Spec.Weibull_shape _ | Spec.Lognormal_sigma _ ->
      invalid_arg "Exact.figure: exponential failures required");
  (match spec.Spec.ckpt_noise with
  | Spec.Deterministic -> ()
  | Spec.Erlang _ ->
      invalid_arg "Exact.figure: deterministic checkpoints required");
  List.concat_map
    (fun c ->
      let params = Fault.Params.paper ~lambda:spec.Spec.lambda ~c ~d:spec.Spec.d in
      let grid = Spec.t_grid spec ~c in
      if Array.length grid = 0 then []
      else begin
        let horizon = grid.(Array.length grid - 1) in
        List.filter_map
          (fun strategy ->
            if not (supported_strategy strategy) then None
            else begin
              let policy = policy_for ~params ~horizon strategy in
              let v0, _ =
                Core.Expected.policy_value_grids ~params ~quantum ~horizon
                  ~policy
              in
              let points =
                Array.map
                  (fun t ->
                    let n =
                      min
                        (Array.length v0.Core.Expected.values - 1)
                        (int_of_float (floor ((t /. quantum) +. 1e-9)))
                    in
                    (t, v0.Core.Expected.values.(n) /. (t -. c)))
                  grid
              in
              Some { c; name = Spec.strategy_name strategy; points }
            end)
          spec.Spec.strategies
      end)
    spec.Spec.cs

let to_csv ~curves ~id ~path =
  let rows =
    List.concat_map
      (fun curve ->
        Array.to_list
          (Array.map
             (fun (t, v) ->
               [
                 id;
                 Printf.sprintf "%g" curve.c;
                 curve.name;
                 Printf.sprintf "%g" t;
                 Printf.sprintf "%.8f" v;
               ])
             curve.points))
      curves
  in
  Output.Csv.write ~path
    ~header:[ "figure"; "c"; "strategy"; "t"; "exact_proportion" ]
    rows

let plots ?(width = 72) ?(height = 20) (spec : Spec.t) curves =
  let buf = Buffer.create 4096 in
  List.iter
    (fun c ->
      let series =
        List.filter_map
          (fun curve ->
            if curve.c = c then
              Some
                {
                  Output.Ascii_plot.label = curve.name;
                  points = Array.to_list curve.points;
                }
            else None)
          curves
      in
      let config =
        {
          Output.Ascii_plot.width;
          height;
          x_label = "reservation length T";
          y_label = "exact expected proportion";
          y_min = Some 0.0;
          y_max = Some 1.0;
        }
      in
      Buffer.add_string buf
        (Output.Ascii_plot.render ~config
           ~title:
             (Printf.sprintf "%s (exact): λ=%g D=%g C=%g" spec.Spec.id
                spec.Spec.lambda spec.Spec.d c)
           series);
      Buffer.add_char buf '\n')
    spec.Spec.cs;
  Buffer.contents buf
