(* The malleability scenario: how much work does online re-planning
   recover when the platform shrinks mid-reservation?

   One sweep evaluates a strategy list over a grid of node-loss
   probabilities. At each loss rate every strategy faces the {e same}
   platform histories (traces + loss/rejoin schedules), so the
   static-vs-adaptive gap is a paired comparison, not two independent
   Monte-Carlo estimates. Evaluation is sequential by design: the
   adaptive policies write degraded-λ tables into the shared cache from
   inside their re-plan hooks, and a single evaluation thread keeps the
   builds/hits counters deterministic — the replan drill asserts on
   them. *)

type series = {
  strategy : Spec.strategy;
  name : string;
  means : float array;  (* one entry per loss probability *)
  cis : float array;
  mean_replans : float array;
}

type result = {
  params : Fault.Params.t;
  horizon : float;
  nodes : int;
  spares : int;
  rejoin_delay : float;
  loss_probs : float array;
  n_traces : int;
  series : series list;
  cache : Strategy.Cache.stats;
}

(* Same convention as Runner.seed_for: hash the exact decimal rendering
   of the grid coordinate (here the loss probability) so distinct grid
   points can never collide onto one trace stream. *)
let seed_for base ~loss =
  Int64.add base
    (Numerics.Checksum.fold_int
       (Numerics.Checksum.fnv1a64 (Printf.sprintf "%.17g" loss))
       0)

let run ?(progress = fun _ -> ()) ?cache ~params ~horizon ~nodes ~spares
    ~rejoin_delay ~loss_probs ~n_traces ~seed strategies =
  if Array.length loss_probs = 0 then invalid_arg "Replan.run: empty loss grid";
  if n_traces < 1 then invalid_arg "Replan.run: n_traces < 1";
  if horizon <= params.Fault.Params.c then
    invalid_arg "Replan.run: horizon <= C";
  let cache =
    match cache with Some c -> c | None -> Strategy.Cache.create ()
  in
  let dist =
    Fault.Trace.Exponential { rate = params.Fault.Params.lambda }
  in
  Strategy.ensure cache ~params ~horizon ~dist strategies;
  let n_loss = Array.length loss_probs in
  let acc =
    List.map
      (fun strategy ->
        ( strategy,
          Array.make n_loss nan,
          Array.make n_loss nan,
          Array.make n_loss nan ))
      strategies
  in
  Array.iteri
    (fun li loss_prob ->
      let model =
        { Fault.Trace.nodes; spares; loss_prob; rejoin_delay }
      in
      let histories =
        Fault.Trace.platform_batch ~model ~rate:params.Fault.Params.lambda
          ~d:params.Fault.Params.d ~horizon ~seed:(seed_for seed ~loss:loss_prob)
          ~n:n_traces
      in
      let traces = Array.map fst histories in
      let platforms =
        Array.map
          (fun (_, events) -> { Sim.Engine.initial = nodes; events })
          histories
      in
      let event_count =
        Array.fold_left
          (fun n (_, es) -> n + List.length es)
          0 histories
      in
      progress
        (Printf.sprintf "[replan] loss=%g: %d platform event(s) across %d traces"
           loss_prob event_count n_traces);
      List.iter
        (fun (strategy, means, cis, replans) ->
          let policy =
            Strategy.compile_exn cache ~params ~horizon ~dist strategy
          in
          (* One engine pass per trace: Runner's aggregate does not carry
             the re-plan counter, so the fold is done here directly. *)
          let prop = Numerics.Stats.acc_create () in
          let total_replans = ref 0 in
          Array.iteri
            (fun i tr ->
              let o =
                Sim.Engine.run ~platform:platforms.(i) ~params ~horizon
                  ~policy tr
              in
              Numerics.Stats.acc_add prop
                (Sim.Engine.proportion_of_work ~params ~horizon o);
              total_replans := !total_replans + o.Sim.Engine.replans_platform)
            traces;
          let s = Numerics.Stats.summarize prop in
          means.(li) <- s.Numerics.Stats.mean;
          cis.(li) <- s.Numerics.Stats.ci95_half_width;
          replans.(li) <- float_of_int !total_replans /. float_of_int n_traces)
        acc)
    loss_probs;
  {
    params;
    horizon;
    nodes;
    spares;
    rejoin_delay;
    loss_probs;
    n_traces;
    series =
      List.map
        (fun (strategy, means, cis, replans) ->
          {
            strategy;
            name = Spec.strategy_name strategy;
            means;
            cis;
            mean_replans = replans;
          })
        acc;
    cache = Strategy.Cache.stats cache;
  }

let to_csv ?chaos_fs result ~path =
  let rows =
    List.concat_map
      (fun s ->
        List.init
          (Array.length result.loss_probs)
          (fun i ->
            [
              Printf.sprintf "%g" result.loss_probs.(i);
              s.name;
              Printf.sprintf "%.6f" s.means.(i);
              Printf.sprintf "%.6f" s.cis.(i);
              Printf.sprintf "%.4f" s.mean_replans.(i);
            ]))
      result.series
  in
  Output.Csv.write ?chaos:chaos_fs ~path
    ~header:
      [ "loss_prob"; "strategy"; "mean_proportion"; "ci95"; "mean_replans" ]
    rows

let plot ?(width = 72) ?(height = 20) result =
  let config =
    {
      Output.Ascii_plot.width;
      height;
      x_label = "node-loss probability per failure";
      y_label = "proportion of work done";
      y_min = Some 0.0;
      y_max = Some 1.0;
    }
  in
  Output.Ascii_plot.render ~config
    ~title:
      (Printf.sprintf
         "malleability: %s, T=%g, %d nodes, %d spare(s), rejoin %g"
         (Fault.Params.to_string result.params)
         result.horizon result.nodes result.spares result.rejoin_delay)
    (List.map
       (fun s ->
         {
           Output.Ascii_plot.label = s.name;
           points =
             List.init
               (Array.length result.loss_probs)
               (fun i -> (result.loss_probs.(i), s.means.(i)));
         })
       result.series)

let find_series result strategy =
  List.find_opt (fun s -> s.strategy = strategy) result.series

(* Same shape as Report.qualitative_checks: labelled pass/fail rows the
   CLI renders, with a noise allowance on the Monte-Carlo comparisons.
   The loss = 0 identity is exact — with no fatal failures the node
   model draws the same streams and no event ever fires, so adaptive and
   static are the same simulation, bit for bit. *)
let checks result =
  let noise = 0.02 in
  let rows = ref [] in
  let add label passed detail =
    rows := { Report.label; passed; detail } :: !rows
  in
  let zero_idx =
    let found = ref None in
    Array.iteri
      (fun i p -> if p = 0.0 && !found = None then found := Some i)
      result.loss_probs;
    !found
  in
  List.iter
    (fun s ->
      match s.strategy with
      | Spec.Adaptive inner -> (
          match find_series result inner with
          | None -> ()
          | Some st ->
              (match zero_idx with
              | Some i ->
                  add
                    (Printf.sprintf "loss=0: %s == %s" s.name st.name)
                    (Float.equal s.means.(i) st.means.(i)
                    && Float.equal s.cis.(i) st.cis.(i))
                    (Printf.sprintf "%.6f vs %.6f (bit-identical required)"
                       s.means.(i) st.means.(i))
              | None -> ());
              Array.iteri
                (fun i loss ->
                  if loss > 0.0 then
                    add
                      (Printf.sprintf "loss=%g: %s >= %s" loss s.name st.name)
                      (s.means.(i) +. noise >= st.means.(i))
                      (Printf.sprintf "%.4f vs %.4f (%.2f replans/trace)"
                         s.means.(i) st.means.(i) s.mean_replans.(i)))
                result.loss_probs)
      | _ -> ())
    result.series;
  List.rev !rows
