(* Sense-reversing barrier. The last arriver flips [sense]; everyone
   else waits for the flip. Waiting spins briefly (the parties are
   expected to arrive within a few microseconds of each other when one
   core per domain is available) and then falls back to a
   mutex/condition sleep, so oversubscribed runs — more domains than
   cores — degrade to scheduler blocking instead of burning the one
   core the peers need to make progress. *)

type t = {
  parties : int;
  count : int Atomic.t;
  sense : bool Atomic.t;
  lock : Mutex.t;
  cond : Condition.t;
}

let create parties =
  if parties < 1 then invalid_arg "Barrier.create: parties < 1";
  {
    parties;
    count = Atomic.make 0;
    sense = Atomic.make false;
    lock = Mutex.create ();
    cond = Condition.create ();
  }

let parties t = t.parties

(* Bounded spin before blocking: long enough to cover the common
   all-cores-available rendezvous, short enough that an oversubscribed
   run yields within ~a scheduling quantum. *)
let spin_budget = 2000

let await t =
  if t.parties > 1 then begin
    let my_sense = not (Atomic.get t.sense) in
    let arrived = 1 + Atomic.fetch_and_add t.count 1 in
    if arrived = t.parties then begin
      Atomic.set t.count 0;
      (* Flip under the lock so a waiter that checked the sense and is
         about to sleep cannot miss the broadcast. *)
      Mutex.lock t.lock;
      Atomic.set t.sense my_sense;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock
    end
    else begin
      let spins = ref 0 in
      while Atomic.get t.sense <> my_sense && !spins < spin_budget do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get t.sense <> my_sense then begin
        Mutex.lock t.lock;
        while Atomic.get t.sense <> my_sense do
          Condition.wait t.cond t.lock
        done;
        Mutex.unlock t.lock
      end
    end
  end
