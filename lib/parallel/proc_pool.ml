(* Workers are forked per [try_mapi] call, like [Pool] spawns its
   domains per [map]: the children see the caller's state at call time
   through copy-on-write memory, so only the task index travels down the
   request pipe and only the result comes back (length-prefixed Marshal
   frames). The parent is the supervisor: it dispatches from a queue,
   selects on the response pipes with a heartbeat, SIGKILLs workers
   whose task outlived [task_timeout], and respawns on demand. *)

type t = {
  workers : int;
  task_timeout : float option;
  attempts : int;
  heartbeat : float;
  mutable closed : bool;
}

exception Task_failed of { index : int; detail : string }
exception Task_timeout of { index : int; timeout : float; attempts : int }
exception Worker_crashed of { index : int; detail : string }
exception Cancelled

let () =
  Printexc.register_printer (function
    | Task_failed { index; detail } ->
        Some (Printf.sprintf "Proc_pool.Task_failed: task %d raised: %s" index detail)
    | Task_timeout { index; timeout; attempts } ->
        Some
          (Printf.sprintf
             "Proc_pool.Task_timeout: task %d exceeded %gs on each of %d \
              dispatch attempt(s); worker killed"
             index timeout attempts)
    | Worker_crashed { index; detail } ->
        Some
          (Printf.sprintf
             "Proc_pool.Worker_crashed: worker died while running task %d: %s"
             index detail)
    | Cancelled -> Some "Proc_pool.Cancelled: not dispatched (budget exhausted)"
    | _ -> None)

let default_workers () = min 8 (Domain.recommended_domain_count ())

let create ?workers ?task_timeout ?(attempts = 1) ?(heartbeat = 0.05) () =
  let workers =
    match workers with
    | None -> default_workers ()
    | Some w ->
        if w < 1 then invalid_arg "Proc_pool.create: workers < 1";
        w
  in
  (match task_timeout with
  | Some l when l <= 0.0 -> invalid_arg "Proc_pool.create: task_timeout <= 0"
  | _ -> ());
  if attempts < 1 then invalid_arg "Proc_pool.create: attempts < 1";
  if heartbeat <= 0.0 then invalid_arg "Proc_pool.create: heartbeat <= 0";
  { workers; task_timeout; attempts; heartbeat; closed = false }

let workers t = t.workers

(* ---- framed transport over pipes ---- *)

let rec write_all fd buf ofs len =
  if len > 0 then
    match Unix.write fd buf ofs len with
    | n -> write_all fd buf (ofs + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd buf ofs len

(* [None] on end-of-file, including mid-buffer: the torn last write of a
   killed worker must read as "no frame", never as a short frame. *)
let really_read fd n =
  let buf = Bytes.create n in
  let rec go ofs =
    if ofs = n then Some buf
    else
      match Unix.read fd buf ofs (n - ofs) with
      | 0 -> None
      | k -> go (ofs + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
  in
  go 0

let write_frame fd payload =
  let n = String.length payload in
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string payload 0 buf 4 n;
  write_all fd buf 0 (4 + n)

let read_frame fd =
  match really_read fd 4 with
  | None -> None
  | Some hdr -> really_read fd (Int32.to_int (Bytes.get_int32_be hdr 0))

type worker = {
  pid : int;
  to_child : Unix.file_descr;
  from_child : Unix.file_descr;
  mutable job : (int * int * float) option;
      (* task index, dispatch attempt, dispatched-at (wall clock) *)
}

let try_mapi t ?(should_stop = fun () -> false) ?on_result ~f xs =
  if t.closed then invalid_arg "Proc_pool: used after shutdown";
  let count = Array.length xs in
  if count = 0 then [||]
  else begin
    let results = Array.make count None in
    let settled = ref 0 in
    let settle i outcome =
      if Option.is_none results.(i) then begin
        incr settled;
        let outcome =
          (* A failing [on_result] (e.g. a journal append under fault
             injection) fails the task, matching the in-process backend
             where the commit runs inside the task body. *)
          match (outcome, on_result) with
          | Ok v, Some g -> ( match g i v with () -> outcome | exception e -> Error e)
          | _ -> outcome
        in
        results.(i) <- Some outcome
      end
    in
    let pending = Queue.create () in
    Array.iteri (fun i _ -> Queue.add (i, 0) pending) xs;
    let cancel_pending () =
      let rec drain () =
        match Queue.take_opt pending with
        | None -> ()
        | Some (i, _) ->
            settle i (Error Cancelled);
            drain ()
      in
      drain ()
    in
    (* The child's whole life: serve dispatches until the request pipe
       closes, then hard-exit — never run the parent's at_exit or flush
       its buffered channels from the child. *)
    let serve req res =
      let rec loop () =
        match read_frame req with
        | None -> ()
        | Some frame ->
            let (i, attempt) : int * int = Marshal.from_bytes frame 0 in
            let outcome : (_, string) result =
              match f ~attempt i xs.(i) with
              | v -> Ok v
              | exception e -> Error (Printexc.to_string e)
            in
            let payload =
              match Marshal.to_string (i, outcome) [] with
              | s -> s
              | exception _ ->
                  Marshal.to_string
                    (i, (Error "Proc_pool: result not marshallable" : (_, string) result))
                    []
            in
            write_frame res payload;
            loop ()
      in
      loop ()
    in
    let spawn () =
      let req_r, req_w = Unix.pipe () in
      let res_r, res_w = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
          Unix.close req_w;
          Unix.close res_r;
          (try serve req_r res_w with _ -> ());
          Unix._exit 0
      | pid ->
          Unix.close req_r;
          Unix.close res_w;
          { pid; to_child = req_w; from_child = res_r; job = None }
    in
    let reap pid =
      let rec go () =
        match Unix.waitpid [] pid with
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
      in
      go ()
    in
    let close_fds w =
      (try Unix.close w.to_child with Unix.Unix_error _ -> ());
      (try Unix.close w.from_child with Unix.Unix_error _ -> ())
    in
    let kill w =
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap w.pid;
      close_fds w
    in
    let n_workers = min t.workers count in
    let ws : worker option array = Array.make n_workers None in
    let kill_all () =
      Array.iteri
        (fun k w ->
          match w with
          | None -> ()
          | Some w ->
              kill w;
              ws.(k) <- None)
        ws
    in
    (* Hand the idle worker in slot [k] its next task. A worker that died
       while idle surfaces here as EPIPE on the dispatch write: replace
       it and retry with the same task. *)
    let rec dispatch k =
      match ws.(k) with
      | Some w when w.job = None -> (
          if should_stop () then cancel_pending ()
          else
            match Queue.take_opt pending with
            | None -> ()
            | Some (i, attempt) -> (
                match write_frame w.to_child (Marshal.to_string (i, attempt) []) with
                | () -> w.job <- Some (i, attempt, Unix.gettimeofday ())
                | exception Unix.Unix_error _ ->
                    kill w;
                    Queue.add (i, attempt) pending;
                    ws.(k) <- Some (spawn ());
                    dispatch k))
      | _ -> ()
    in
    let requeue_or ~mk i attempt =
      if attempt + 1 < t.attempts then Queue.add (i, attempt + 1) pending
      else settle i (Error (mk ()))
    in
    let handle_death k w detail =
      kill w;
      (match w.job with
      | Some (i, attempt, _) ->
          requeue_or i attempt ~mk:(fun () -> Worker_crashed { index = i; detail })
      | None -> ());
      ws.(k) <- None
    in
    let handle_readable k w =
      match read_frame w.from_child with
      | None -> handle_death k w "worker process died"
      | exception Unix.Unix_error _ -> handle_death k w "response pipe failed"
      | Some frame -> (
          match (Marshal.from_bytes frame 0 : int * (_, string) result) with
          | i, outcome ->
              (match outcome with
              | Ok v -> settle i (Ok v)
              | Error detail -> settle i (Error (Task_failed { index = i; detail })));
              w.job <- None
          | exception _ -> handle_death k w "unreadable result frame")
    in
    let check_timeouts () =
      match t.task_timeout with
      | None -> ()
      | Some limit ->
          let now = Unix.gettimeofday () in
          Array.iteri
            (fun k w ->
              match w with
              | Some ({ job = Some (i, attempt, since); _ } as w)
                when now -. since >= limit ->
                  kill w;
                  requeue_or i attempt ~mk:(fun () ->
                      Task_timeout { index = i; timeout = limit; attempts = t.attempts });
                  ws.(k) <- None
              | _ -> ())
            ws
    in
    let select_timeout () =
      match t.task_timeout with
      | None -> t.heartbeat
      | Some limit ->
          let now = Unix.gettimeofday () in
          let next =
            Array.fold_left
              (fun acc w ->
                match w with
                | Some { job = Some (_, _, since); _ } ->
                    Float.min acc (since +. limit -. now)
                | _ -> acc)
              t.heartbeat ws
          in
          Float.max 0.0 (Float.min next t.heartbeat)
    in
    (* A worker killed mid-write must not SIGPIPE the parent; dispatch
       writes surface EPIPE instead and take the respawn path. *)
    let old_sigpipe =
      try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
      with Invalid_argument _ | Sys_error _ -> None
    in
    Fun.protect
      ~finally:(fun () ->
        kill_all ();
        match old_sigpipe with
        | Some h -> Sys.set_signal Sys.sigpipe h
        | None -> ())
      (fun () ->
        while !settled < count do
          Array.iteri
            (fun k w ->
              match w with
              | Some _ -> dispatch k
              | None ->
                  if (not (Queue.is_empty pending)) && not (should_stop ()) then begin
                    ws.(k) <- Some (spawn ());
                    dispatch k
                  end)
            ws;
          if should_stop () && not (Queue.is_empty pending) then cancel_pending ();
          if !settled < count then begin
            let busy =
              Array.to_list ws
              |> List.filter_map (function
                   | Some w when w.job <> None -> Some w.from_child
                   | _ -> None)
            in
            if busy <> [] then begin
              (match Unix.select busy [] [] (select_timeout ()) with
              | readable, _, _ ->
                  List.iter
                    (fun fd ->
                      Array.iteri
                        (fun k w ->
                          match w with
                          | Some w when w.from_child = fd && w.job <> None ->
                              handle_readable k w
                          | _ -> ())
                        ws)
                    readable
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
              check_timeouts ()
            end
          end
        done;
        Array.map
          (function Some r -> r | None -> Error Cancelled)
          results)
  end

let try_map t ~f xs = try_mapi t ~f:(fun ~attempt:_ _ x -> f x) xs

let shutdown t = t.closed <- true

let with_pool ?workers ?task_timeout ?attempts fn =
  let t = create ?workers ?task_timeout ?attempts () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> fn t)
