(** A small fixed-size pool of OCaml 5 domains for embarrassingly
    parallel sweeps (the experiment campaign grid).

    Tasks are pulled from a shared atomic counter (self-scheduling), so
    uneven task durations — e.g. DP table builds next to cheap
    simulations — balance automatically. Results preserve input order,
    making parallel runs bit-identical to sequential ones as long as each
    task is deterministic (which they are: every task derives its
    randomness from its own seed).

    Domains share one address space and one fate: a crash or a hang in
    any task takes the whole process with it, and a running task cannot
    be cancelled. When tasks are untrusted in that sense — may not
    terminate, may exhaust memory — prefer {!Proc_pool}, which runs them
    in supervised forked processes with a wall-clock watchdog at the
    cost of a fork per call and marshalled results. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns [domains - 1] worker domains (the caller
    participates as the last worker during {!map}). Default:
    [Domain.recommended_domain_count ()], capped to 8. [domains = 1]
    degrades to sequential execution. *)

val domains : t -> int

val map : t -> f:('a -> 'b) -> 'a array -> 'b array
(** [map pool ~f xs] applies [f] to every element, in parallel, returning
    results in input order. Exceptions raised by [f] are re-raised in the
    caller (the first one encountered); remaining tasks are abandoned.
    Scheduling contract on failure: once a task has raised, workers stop
    pulling {e new} tasks promptly (tasks already running complete, and
    their results are retained internally — use {!try_mapi} to observe
    them). Not reentrant: do not call [map] from within [f] on the same
    pool. *)

val mapi : t -> f:(int -> 'a -> 'b) -> 'a array -> 'b array

val try_mapi :
  t -> f:(int -> 'a -> 'b) -> 'a array -> ('b, exn) result array
(** Fault-isolating variant of {!mapi}: every task runs to completion
    regardless of other tasks' failures, and the outcome of task [i] —
    [Ok (f i xs.(i))] or [Error e] with the exception it raised — lands
    at index [i]. One poisoned grid point can no longer abandon the rest
    of a sweep. Compose with [Robust.Retry.run] inside [f] to absorb
    transient failures before they reach the result array. *)

val try_map : t -> f:('a -> 'b) -> 'a array -> ('b, exn) result array

val parallel_for : t -> lo:int -> hi:int -> f:(int -> unit) -> unit
(** [parallel_for pool ~lo ~hi ~f] runs [f i] for [lo <= i < hi]. *)

val shutdown : t -> unit
(** Joins the worker domains. The pool must not be used afterwards.
    Idempotent. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** Scoped creation: shuts the pool down on exit, including on
    exceptions. *)
