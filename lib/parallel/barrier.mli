(** Reusable sense-reversing barrier for fixed teams of domains.

    The parallel DP build synchronises its worker team twice per table
    column (compute cells, then reduce the column maxima), so the
    barrier is the innermost synchronisation primitive of the whole
    build. Arrival spins briefly on an atomic sense flag — the fast
    path when each domain has a core — and then parks on a
    mutex/condition variable, so runs with more domains than cores
    degrade to scheduler blocking instead of spinning the shared core
    away from the peers they are waiting for.

    All plain (non-atomic) writes made by a party before {!await}
    happen-before the return of every other party's same-phase
    {!await}: the arrival counter and sense flag are [Atomic.t], and
    every party reads the flag the last arriver wrote. *)

type t

val create : int -> t
(** [create parties] builds a barrier for a team of [parties] domains.
    Raises [Invalid_argument] when [parties < 1]. *)

val parties : t -> int

val await : t -> unit
(** Blocks until all [parties] domains have called {!await} for the
    current phase, then releases them together. Reusable: the next
    [parties] calls form the next phase. With [parties = 1] this is a
    no-op. *)
