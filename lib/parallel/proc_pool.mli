(** A fork-based worker pool: process isolation for the campaign sweep.

    {!Pool} runs grid points on OCaml domains, which is fast but shares
    one fate: a segfault, an OOM kill or a non-terminating root-find in
    one grid point takes the whole sweep with it, and a hung domain can
    never be cancelled. This pool runs each task in a forked Unix
    process instead, supervised by the parent:

    - a task that exceeds [task_timeout] wall-clock seconds is
      SIGKILLed and its worker respawned (the watchdog);
    - a worker that dies (crash, OOM kill, [Unix._exit]) settles its
      task as an error and is respawned — one poisoned point cannot
      stall or kill the sweep;
    - killed or crashed tasks are re-dispatched up to [attempts] times
      before their error is recorded;
    - [should_stop] is polled before every dispatch, so a
      [Robust.Deadline] can stop new work the moment the reservation
      budget runs out while in-flight tasks drain normally.

    The contract mirrors {!Pool.try_mapi}: results land at the index of
    their input, every task is attempted, and parallel execution is
    bit-identical to sequential execution for deterministic tasks
    (results cross the pipe via [Marshal], which preserves float bits).

    Workers are forked per {!try_mapi} call, so tasks read the parent's
    state at call time (prefetched traces, DP tables) through
    copy-on-write memory — nothing needs to be serialised but the task
    index and its result. Two consequences of process isolation to plan
    around: in-child writes to parent state are lost (commit results in
    the parent, e.g. via [on_result]), and the caller must not have live
    domains when {!try_mapi} forks ({!Pool}'s are joined before [map]
    returns, so alternating the two backends is safe).

    Exceptions raised by a task cannot cross the pipe with their
    identity intact, so they are re-raised in the parent as
    {!Task_failed} carrying [Printexc.to_string] of the original. *)

type t

exception Task_failed of { index : int; detail : string }
(** The task body raised; [detail] is the printed child-side exception. *)

exception Task_timeout of { index : int; timeout : float; attempts : int }
(** The task exceeded [task_timeout] on every dispatch attempt and its
    worker was SIGKILLed each time. *)

exception Worker_crashed of { index : int; detail : string }
(** The worker process died without reporting a result (segfault, OOM
    kill, explicit [exit]) on every dispatch attempt. *)

exception Cancelled
(** The task was never dispatched because [should_stop] returned [true]
    — under a deadline this marks work to resume in the next
    reservation, not a failure. *)

val create :
  ?workers:int ->
  ?task_timeout:float ->
  ?attempts:int ->
  ?heartbeat:float ->
  unit ->
  t
(** [workers] (default: cores, capped to 8) processes are forked per
    {!try_mapi} call. [task_timeout] (default: none) is the wall-clock
    watchdog per dispatch attempt — it covers the task body including
    any in-task retry sleeps, so set it well above the task's retry
    backoff. [attempts] (default 1) is the dispatch budget for tasks
    whose worker hung or crashed; task-level exceptions are {e not}
    re-dispatched (compose with [Robust.Retry] inside [f] for those).
    [heartbeat] (default 0.05 s) bounds how long the supervisor sleeps
    between liveness/deadline polls. *)

val workers : t -> int

val try_mapi :
  t ->
  ?should_stop:(unit -> bool) ->
  ?on_result:(int -> 'b -> unit) ->
  f:(attempt:int -> int -> 'a -> 'b) ->
  'a array ->
  ('b, exn) result array
(** Ordered, fault-isolated map: the outcome of task [i] lands at index
    [i] as [Ok (f ~attempt i xs.(i))] or [Error e] with [e] one of the
    exceptions above. [attempt] is the dispatch attempt (0 on the first
    dispatch, incremented after each kill/respawn) so deterministic
    fault injection keyed on [(key, attempt)] draws fresh decisions
    after a watchdog kill instead of hanging forever. [on_result i v]
    runs in the {e parent} as soon as task [i] settles with [Ok v] — the
    hook for journaling completed points as they land. [should_stop] is
    polled (in the parent) before each dispatch; once it returns [true]
    every not-yet-dispatched task settles as [Error Cancelled].
    Not reentrant; raises [Invalid_argument] after {!shutdown}. *)

val try_map :
  t -> f:('a -> 'b) -> 'a array -> ('b, exn) result array
(** {!try_mapi} without index or attempt. *)

val shutdown : t -> unit
(** Flags the pool closed ({!try_mapi} forks no long-lived state).
    Idempotent. *)

val with_pool :
  ?workers:int ->
  ?task_timeout:float ->
  ?attempts:int ->
  (t -> 'a) ->
  'a
(** Scoped creation: shuts the pool down on exit, including on
    exceptions. *)
