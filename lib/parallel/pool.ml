(* Workers are spawned per [map] call and joined before it returns: a
   domain spawn costs ~0.1 ms, negligible next to the sweeps this pool
   runs, and it keeps the pool free of long-lived shared state (no
   condition-variable protocol to get wrong). [create] records the
   parallelism degree; [shutdown] only flags the pool as closed. *)

type t = { domains : int; mutable closed : bool }

let default_domains () = min 8 (Domain.recommended_domain_count ())

let create ?domains () =
  let domains =
    match domains with
    | None -> default_domains ()
    | Some d ->
        if d < 1 then invalid_arg "Pool.create: domains < 1";
        d
  in
  { domains; closed = false }

let domains t = t.domains

exception Worker_failure of exn

let run_tasks t ~count ~run =
  if t.closed then invalid_arg "Pool: used after shutdown";
  if count > 0 then begin
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= count || Atomic.get failure <> None then continue := false
        else begin
          try run i
          with e ->
            (* Keep the first failure; losing subsequent ones is fine,
               the caller only re-raises one. *)
            ignore (Atomic.compare_and_set failure None (Some e))
        end
      done
    in
    let helpers =
      List.init (min (t.domains - 1) (count - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join helpers;
    match Atomic.get failure with
    | Some e -> raise (Worker_failure e)
    | None -> ()
  end

(* Shared accounting for [mapi] and [try_mapi]: completed results are
   kept in [results] even when a task fails, so a failure never discards
   finished work — [mapi] merely chooses to re-raise instead of exposing
   the partial array. *)
let collect_mapi t ~f xs =
  let count = Array.length xs in
  let results = Array.make count None in
  let failure =
    try
      run_tasks t ~count ~run:(fun i -> results.(i) <- Some (f i xs.(i)));
      None
    with Worker_failure e -> Some e
  in
  (results, failure)

let mapi t ~f xs =
  if Array.length xs = 0 then [||]
  else begin
    let results, failure = collect_mapi t ~f xs in
    match failure with
    | Some e -> raise e
    | None ->
        Array.map
          (function
            | Some y -> y
            | None -> failwith "Pool.mapi: missing result (worker aborted)")
          results
  end

let map t ~f xs = mapi t ~f:(fun _ x -> f x) xs

let try_mapi t ~f xs =
  let count = Array.length xs in
  if count = 0 then [||]
  else begin
    let results =
      Array.make count (Error (Failure "Pool.try_mapi: task not run"))
    in
    (* The per-task wrapper never raises, so [run_tasks] never flags a
       failure and every task is scheduled and recorded. *)
    run_tasks t ~count ~run:(fun i ->
        results.(i) <- (try Ok (f i xs.(i)) with e -> Error e));
    results
  end

let try_map t ~f xs = try_mapi t ~f:(fun _ x -> f x) xs

let parallel_for t ~lo ~hi ~f =
  if hi > lo then begin
    try run_tasks t ~count:(hi - lo) ~run:(fun i -> f (lo + i))
    with Worker_failure e -> raise e
  end

let shutdown t = t.closed <- true

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
