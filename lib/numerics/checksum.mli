(** Small, dependency-free content checksums (FNV-1a, 64 bit).

    Used to fingerprint on-disk artefacts (trace files, campaign
    journals) and experiment specs so that corruption and mismatched
    resumes are detected before they silently skew results. Not
    cryptographic — the adversary here is a truncated write or a stale
    file, not a forger. *)

type state
(** Incremental hashing state (mutable). *)

val init : unit -> state
(** Fresh state, FNV-1a offset basis. *)

val feed_string : state -> string -> unit
(** Absorb every byte of the string. *)

val feed_char : state -> char -> unit

val value : state -> int64
(** Current digest. The state stays usable; feeding more bytes continues
    the same stream. *)

val fnv1a64 : string -> int64
(** One-shot digest of a string. *)

val to_hex : int64 -> string
(** Fixed-width (16 chars) lowercase hex rendering of a digest. *)

val fold_float : int64 -> float -> int64
(** [fold_float h x] mixes the IEEE-754 bit pattern of [x] into digest
    [h] — exact, no formatting round-trip involved. *)

val fold_int : int64 -> int -> int64

val to_unit_float : int64 -> float
(** Map a digest to [\[0, 1)] using its top 53 bits. Used for
    deterministic, order-independent pseudo-random decisions (chaos
    injection, retry jitter). *)
