(* FNV-1a, 64-bit: digest = (digest lxor byte) * prime, starting from the
   offset basis. Chosen for being tiny, portable and streamable; collisions
   on accidental corruption are what matters, not adversarial ones. *)

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

type state = { mutable h : int64 }

let init () = { h = offset_basis }

let fold_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let feed_char st c = st.h <- fold_byte st.h (Char.code c)
let feed_string st s = String.iter (feed_char st) s
let value st = st.h

let fnv1a64 s =
  let st = init () in
  feed_string st s;
  value st

let to_hex h = Printf.sprintf "%016Lx" h

let fold_int64 h x =
  let h = ref h in
  for shift = 0 to 7 do
    h :=
      fold_byte !h
        (Int64.to_int (Int64.shift_right_logical x (shift * 8)) land 0xff)
  done;
  !h

let fold_float h x = fold_int64 h (Int64.bits_of_float x)
let fold_int h x = fold_int64 h (Int64.of_int x)

let to_unit_float h =
  (* Same top-53-bits construction as Rng.float: uniform enough for
     rate thresholds. *)
  Int64.to_float (Int64.shift_right_logical h 11) *. 0x1.0p-53
