(** Streaming and batch statistics. *)

type accumulator
(** Welford online accumulator for mean and variance. *)

val acc_create : unit -> accumulator
val acc_add : accumulator -> float -> unit
val acc_count : accumulator -> int
val acc_mean : accumulator -> float
(** Mean of the samples seen so far; [nan] when empty. *)

val acc_variance : accumulator -> float
(** Unbiased sample variance; [nan] with fewer than two samples. *)

val acc_stddev : accumulator -> float
val acc_min : accumulator -> float
val acc_max : accumulator -> float

val acc_merge : accumulator -> accumulator -> accumulator
(** Combine two accumulators as if all their samples had been fed to one
    (parallel reduction of per-domain partial statistics). *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95_half_width : float;
      (** Half-width of the normal-approximation 95% confidence interval
          of the mean; 0 for fewer than two samples. *)
}

val summarize : accumulator -> summary
val of_array : float array -> summary

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float

module P2 : sig
  (** P² streaming quantile estimator (Jain & Chlamtac, 1985). O(1)
      memory per tracked quantile; exact for the first five samples,
      piecewise-parabolic marker interpolation after. Accuracy is a few
      parts per thousand on smooth distributions — use the exact
      {!quantile} when the sample array is affordable. *)

  type t

  val create : q:float -> t
  (** [create ~q] tracks the [q]-quantile, [0 <= q <= 1]. *)

  val add : t -> float -> unit
  val count : t -> int

  val value : t -> float
  (** Current estimate; exact for five or fewer samples, [nan] when
      empty. *)
end

val quantile : float array -> q:float -> float
(** [quantile xs ~q] with [0 <= q <= 1], linear interpolation between
    order statistics (type-7). Does not modify [xs]. *)

val median : float array -> float
