type accumulator = {
  mutable n : int;
  mutable mu : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let acc_create () =
  { n = 0; mu = 0.0; m2 = 0.0; lo = infinity; hi = neg_infinity }

let acc_add acc x =
  acc.n <- acc.n + 1;
  let delta = x -. acc.mu in
  acc.mu <- acc.mu +. (delta /. float_of_int acc.n);
  acc.m2 <- acc.m2 +. (delta *. (x -. acc.mu));
  if x < acc.lo then acc.lo <- x;
  if x > acc.hi then acc.hi <- x

let acc_count acc = acc.n
let acc_mean acc = if acc.n = 0 then nan else acc.mu

let acc_variance acc =
  if acc.n < 2 then nan else acc.m2 /. float_of_int (acc.n - 1)

let acc_stddev acc = sqrt (acc_variance acc)
let acc_min acc = if acc.n = 0 then nan else acc.lo
let acc_max acc = if acc.n = 0 then nan else acc.hi

let acc_merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let delta = b.mu -. a.mu in
    let mu = a.mu +. (delta *. float_of_int b.n /. float_of_int n) in
    let m2 =
      a.m2 +. b.m2
      +. (delta *. delta *. float_of_int a.n *. float_of_int b.n /. float_of_int n)
    in
    { n; mu; m2; lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }
  end

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95_half_width : float;
}

let summarize acc =
  let count = acc.n in
  let mean = acc_mean acc in
  let stddev = if count < 2 then 0.0 else acc_stddev acc in
  let ci95_half_width =
    if count < 2 then 0.0 else 1.96 *. stddev /. sqrt (float_of_int count)
  in
  { count; mean; stddev; min = acc_min acc; max = acc_max acc; ci95_half_width }

let of_array xs =
  let acc = acc_create () in
  Array.iter (acc_add acc) xs;
  summarize acc

let mean xs = (of_array xs).mean

let variance xs =
  let acc = acc_create () in
  Array.iter (acc_add acc) xs;
  acc_variance acc

let stddev xs = sqrt (variance xs)

(* P² streaming quantile estimator (Jain & Chlamtac, CACM 1985): five
   markers track (min, q/2-ish, q, (1+q)/2-ish, max); marker heights are
   adjusted with a piecewise-parabolic interpolation as observations
   stream by. O(1) memory per quantile, ~3 significant digits of
   accuracy on smooth distributions — the streaming companion to the
   exact sort-based {!quantile} below. *)
module P2 = struct
  type t = {
    q : float;  (** target quantile *)
    heights : float array;  (** marker heights q0..q4 *)
    pos : float array;  (** marker positions n0..n4 (1-based) *)
    want : float array;  (** desired positions n'0..n'4 *)
    dwant : float array;  (** desired-position increments *)
    first : float array;  (** buffer for the first five observations *)
    mutable count : int;
  }

  let create ~q =
    if q < 0.0 || q > 1.0 then invalid_arg "Stats.P2.create: q outside [0, 1]";
    {
      q;
      heights = Array.make 5 0.0;
      pos = [| 1.0; 2.0; 3.0; 4.0; 5.0 |];
      want = [| 1.0; 1.0 +. (2.0 *. q); 1.0 +. (4.0 *. q); 3.0 +. (2.0 *. q); 5.0 |];
      dwant = [| 0.0; q /. 2.0; q; (1.0 +. q) /. 2.0; 1.0 |];
      first = Array.make 5 0.0;
      count = 0;
    }

  let count t = t.count

  let parabolic t i d =
    let q = t.heights and n = t.pos in
    q.(i)
    +. d
       /. (n.(i + 1) -. n.(i - 1))
       *. (((n.(i) -. n.(i - 1) +. d) *. (q.(i + 1) -. q.(i)) /. (n.(i + 1) -. n.(i)))
          +. ((n.(i + 1) -. n.(i) -. d) *. (q.(i) -. q.(i - 1)) /. (n.(i) -. n.(i - 1))))

  let linear t i d =
    let q = t.heights and n = t.pos in
    q.(i) +. (d *. (q.(i + int_of_float d) -. q.(i)) /. (n.(i + int_of_float d) -. n.(i)))

  let add t x =
    if t.count < 5 then begin
      t.first.(t.count) <- x;
      t.count <- t.count + 1;
      if t.count = 5 then begin
        let sorted = Array.copy t.first in
        Array.sort compare sorted;
        Array.blit sorted 0 t.heights 0 5
      end
    end
    else begin
      t.count <- t.count + 1;
      let q = t.heights and n = t.pos in
      (* Cell of the new observation; extremes also update the end markers. *)
      let k =
        if x < q.(0) then begin
          q.(0) <- x;
          0
        end
        else if x >= q.(4) then begin
          q.(4) <- x;
          3
        end
        else begin
          let k = ref 0 in
          for i = 0 to 3 do
            if q.(i) <= x && x < q.(i + 1) then k := i
          done;
          !k
        end
      in
      for i = k + 1 to 4 do
        n.(i) <- n.(i) +. 1.0
      done;
      for i = 0 to 4 do
        t.want.(i) <- t.want.(i) +. t.dwant.(i)
      done;
      (* Nudge the inner markers toward their desired positions. *)
      for i = 1 to 3 do
        let d = t.want.(i) -. n.(i) in
        if
          (d >= 1.0 && n.(i + 1) -. n.(i) > 1.0)
          || (d <= -1.0 && n.(i - 1) -. n.(i) < -1.0)
        then begin
          let d = if d >= 0.0 then 1.0 else -1.0 in
          let candidate = parabolic t i d in
          let candidate =
            if q.(i - 1) < candidate && candidate < q.(i + 1) then candidate
            else linear t i d
          in
          q.(i) <- candidate;
          n.(i) <- n.(i) +. d
        end
      done
    end

  let exact_small t =
    let sorted = Array.sub t.first 0 t.count in
    Array.sort compare sorted;
    let n = Array.length sorted in
    let pos = t.q *. float_of_int (n - 1) in
    let lo = int_of_float (floor pos) in
    let hi = int_of_float (ceil pos) in
    if lo = hi then sorted.(lo)
    else begin
      let w = pos -. float_of_int lo in
      ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
    end

  let value t =
    if t.count = 0 then nan
    else if t.count <= 5 then exact_small t
    else t.heights.(2)
end

let quantile xs ~q =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.quantile: empty array";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.quantile: q outside [0, 1]";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (floor pos) in
  let hi = int_of_float (ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let w = pos -. float_of_int lo in
    ((1.0 -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let median xs = quantile xs ~q:0.5
