type t = {
  name : string;
  plan : tleft:float -> recovering:bool -> float list;
  adapt : (Fault.Params.t -> t) option;
  on_prediction :
    (tleft:float -> since_commit:float -> window:float -> bool) option;
}

let make ?adapt ?on_prediction ~name plan = { name; plan; adapt; on_prediction }

let set_adapt p adapt = { p with adapt = Some adapt }

let set_on_prediction p f = { p with on_prediction = Some f }

(* Numerical slack for plan validation: offsets are produced by floating
   arithmetic, so exact comparisons would reject valid plans. *)
let eps = 1e-9

let validate_plan ~params ~tleft ~recovering plan =
  let c = params.Fault.Params.c and r = params.Fault.Params.r in
  let base = if recovering then r else 0.0 in
  let fail fmt = Format.kasprintf invalid_arg fmt in
  let rec check prev = function
    | [] -> ()
    | off :: rest ->
        if off > tleft +. eps then
          fail "plan: checkpoint completion %g exceeds tleft %g" off tleft;
        if prev = 0.0 && off < base +. c -. eps then
          fail "plan: first checkpoint %g before base %g + C %g" off base c;
        if prev > 0.0 && off -. prev < c -. eps then
          fail "plan: segment [%g, %g] shorter than C = %g" prev off c;
        if off <= prev then fail "plan: offsets not increasing at %g" off;
        check off rest
  in
  check 0.0 plan

let no_checkpoint = make ~name:"NoCheckpoint" (fun ~tleft:_ ~recovering:_ -> [])

let usable ~params ~tleft ~recovering =
  if recovering then tleft -. params.Fault.Params.r else tleft

let single_final ~params =
  let c = params.Fault.Params.c in
  let plan ~tleft ~recovering =
    if usable ~params ~tleft ~recovering < c then [] else [ tleft ]
  in
  make ~name:"SingleFinal" plan

let single_at ~params ~offset_from_end =
  if offset_from_end < 0.0 then
    invalid_arg "Policy.single_at: offset_from_end must be nonnegative";
  let c = params.Fault.Params.c and r = params.Fault.Params.r in
  let plan ~tleft ~recovering =
    let base = if recovering then r else 0.0 in
    if tleft -. base < c then []
    else begin
      (* Clamp so the checkpoint still fits after [base + c]. *)
      let off = Float.max (base +. c) (tleft -. offset_from_end) in
      [ Float.min off tleft ]
    end
  in
  make ~name:(Printf.sprintf "SingleAt(-%g)" offset_from_end) plan

(* [count] equal segments filling [tleft], last checkpoint at the end.
   Shared by [equal_segments] and the threshold policies of lib/core. *)
let equal_plan ~params ~tleft ~recovering ~count =
  let c = params.Fault.Params.c and r = params.Fault.Params.r in
  let base = if recovering then r else 0.0 in
  let span = tleft -. base in
  if span < c || count < 1 then []
  else begin
    (* Each segment must be able to hold its checkpoint. *)
    let n = min count (int_of_float (floor (span /. c))) in
    let n = max n 1 in
    let seg = span /. float_of_int n in
    List.init n (fun i -> base +. (float_of_int (i + 1) *. seg))
  end

let equal_segments ~params ~count =
  if count < 1 then invalid_arg "Policy.equal_segments: count < 1";
  let plan ~tleft ~recovering = equal_plan ~params ~tleft ~recovering ~count in
  make ~name:(Printf.sprintf "Equal(%d)" count) plan

let two_checkpoints ~params ~alpha =
  if alpha <= 0.0 || alpha >= 1.0 then
    invalid_arg "Policy.two_checkpoints: alpha must lie in (0, 1)";
  let c = params.Fault.Params.c and r = params.Fault.Params.r in
  let plan ~tleft ~recovering =
    let base = if recovering then r else 0.0 in
    let span = tleft -. base in
    if span < 2.0 *. c then
      (* No room for two checkpoints: degrade to a single final one. *)
      if span < c then [] else [ tleft ]
    else begin
      let first = base +. (alpha *. span) in
      let first = Float.max (base +. c) (Float.min first (tleft -. c)) in
      [ first; tleft ]
    end
  in
  make ~name:(Printf.sprintf "Two(%.3f)" alpha) plan

let periodic ~params ~period =
  if period <= 0.0 then invalid_arg "Policy.periodic: period must be positive";
  let c = params.Fault.Params.c and r = params.Fault.Params.r in
  let plan ~tleft ~recovering =
    let base = if recovering then r else 0.0 in
    if tleft -. base < c then []
    else begin
      (* Checkpoints complete every [period + c]; when the remaining
         stretch cannot hold a further full period, the final checkpoint
         completes exactly at the end of the reservation. *)
      let stride = period +. c in
      let rec build acc last =
        let rem = tleft -. last in
        if rem <= stride +. c then
          (* Final (possibly short) segment, checkpoint at the end; if
             even a bare checkpoint does not fit, stop here. *)
          if rem < c then List.rev acc else List.rev (tleft :: acc)
        else build ((last +. stride) :: acc) (last +. stride)
      in
      build [] base
    end
  in
  make ~name:(Printf.sprintf "Periodic(%g)" period) plan

let max_work ~params ~tleft ~recovering =
  let c = params.Fault.Params.c in
  let span = usable ~params ~tleft ~recovering in
  Float.max 0.0 (span -. c)
