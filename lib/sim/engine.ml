type event =
  | Segment_saved of { start : float; finish : float; work : float }
  | Failure of { at : float; lost : float }
  | Gave_up of { at : float }
  | Platform_change of { at : float; survivors : int }
  | Prediction of { at : float; true_positive : bool }

type platform = { initial : int; events : Fault.Trace.platform_event list }

type breakdown = {
  working : float;
  checkpointing : float;
  recovering : float;
  down : float;
  lost : float;
  unused : float;
}

type outcome = {
  work_saved : float;
  checkpoints : int;
  failures : int;
  replans : int;
  replans_platform : int;
  predictions_true : int;
  predictions_false : int;
  proactive_checkpoints : int;
  breakdown : breakdown;
  events : event list;
}

(* The engine keeps two clocks:
   - [wall]: elapsed reservation time;
   - [exposed]: elapsed failure-exposed time (wall minus downtimes).
   Failure dates from the trace cursor live on the exposed clock, so a
   failure never strikes during a downtime, as the model requires.
   Platform events live on the wall clock: one that lands inside a
   downtime window takes effect at the re-plan that follows it.
   Predicted events live on the exposed clock like the failures they
   announce: a prediction cannot fire during a downtime. *)
let run ?(record = false) ?ckpt_sampler ?platform ?predictions ?proactive_c
    ~params ~horizon ~policy trace =
  if horizon < 0.0 then invalid_arg "Engine.run: negative horizon";
  let c = params.Fault.Params.c
  and r = params.Fault.Params.r
  and d = params.Fault.Params.d in
  let cp =
    match proactive_c with
    | None -> c
    | Some v ->
        if not (Float.is_finite v) || v < 0.0 || v > c then
          invalid_arg "Engine.run: proactive_c must be finite in [0, C]";
        v
  in
  let initial =
    match platform with
    | None -> 1
    | Some p ->
        if p.initial < 1 then invalid_arg "Engine.run: platform initial < 1";
        Fault.Trace.validate_platform_events p.events;
        p.initial
  in
  (* Events at or past the horizon can never re-plan anything. *)
  let pending =
    ref
      (match platform with
      | None -> []
      | Some p ->
          List.filter (fun e -> Fault.Trace.event_at e < horizon) p.events)
  in
  (* Like platform events: predictions at or past the horizon can never
     matter (the fault they announce cannot strike inside the run). *)
  let pq =
    ref
      (match predictions with
      | None -> []
      | Some evs ->
          Fault.Predictor.validate_events evs;
          List.filter
            (fun (ev : Fault.Predictor.event) -> ev.Fault.Predictor.at < horizon)
            evs)
  in
  let cur = Fault.Trace.cursor trace in
  let wall = ref 0.0 and exposed = ref 0.0 in
  let saved = ref 0.0 and ckpts = ref 0 and fails = ref 0 and replans = ref 0 in
  let replans_platform = ref 0 in
  let preds_true = ref 0 and preds_false = ref 0 and proactive = ref 0 in
  let cur_policy = ref policy in
  let recovering = ref false in
  let b_ckpt = ref 0.0 and b_recov = ref 0.0 and b_down = ref 0.0 in
  let b_lost = ref 0.0 in
  let events = ref [] in
  let push e = if record then events := e :: !events in
  let draw_ckpt () = match ckpt_sampler with None -> c | Some f -> f () in
  let finished = ref false in
  while not !finished do
    (* Platform events due by now (including any that landed during the
       last downtime) take effect before the next plan is drawn: the
       params are degraded to the surviving node count and an adaptive
       policy re-compiles itself against them. *)
    (let rec take () =
       match !pending with
       | e :: rest when Fault.Trace.event_at e <= !wall ->
           pending := rest;
           let survivors = Fault.Trace.event_survivors e in
           incr replans_platform;
           push
             (Platform_change { at = Fault.Trace.event_at e; survivors });
           (match !cur_policy.Policy.adapt with
           | Some f ->
               cur_policy := f (Fault.Params.degrade params ~initial ~survivors)
           | None -> ());
           take ()
       | _ -> ()
     in
     take ());
    let tleft = horizon -. !wall in
    let plan = !cur_policy.Policy.plan ~tleft ~recovering:!recovering in
    incr replans;
    Policy.validate_plan ~params ~tleft ~recovering:!recovering plan;
    (match plan with
    | [] ->
        push (Gave_up { at = !wall });
        finished := true
    | offsets ->
        let plan_start_wall = !wall in
        let committed_wall = ref !wall in
        let first_overhead = if !recovering then r else 0.0 in
        (* [shift] accumulates the deviation of actual checkpoint
           durations from the nominal C (stochastic-checkpoint mode;
           zero otherwise). *)
        let rec walk prev_off shift segs ~first =
          match segs with
          | [] -> finished := true
          | off :: rest -> (
              let nominal_len = off -. prev_off in
              let actual_c = draw_ckpt () in
              let shift' = shift +. (actual_c -. c) in
              let seg_len = nominal_len +. (shift' -. shift) in
              let completion_wall = plan_start_wall +. off +. shift' in
              let seg_end_e = !exposed +. seg_len in
              (* Ignored predictions cost no time, so the segment is
                 re-attempted with the same clocks and the same drawn
                 checkpoint duration until something observable happens. *)
              let rec attempt () =
              let fail_e = Fault.Trace.next_failure_exposed cur in
              let fail_wall = !wall +. (fail_e -. !exposed) in
              let next_event_wall =
                match !pending with
                | [] -> infinity
                | e :: _ -> Fault.Trace.event_at e
              in
              (* An overdue prediction (announced before the clocks got
                 here, e.g. clamped to 0 or landed inside a downtime)
                 fires immediately. *)
              let pred_e =
                match !pq with
                | [] -> infinity
                | ev :: _ -> Float.max ev.Fault.Predictor.at !exposed
              in
              let pred_wall = !wall +. (pred_e -. !exposed) in
              if
                next_event_wall < fail_wall
                && next_event_wall < completion_wall
                && next_event_wall <= pred_wall
              then begin
                (* A platform event interrupts the plan before this
                   checkpoint completes (and before the next failure):
                   advance both clocks to the event and fall back to the
                   re-planning loop, which consumes it. The in-flight
                   span since the last commit is abandoned — it lands in
                   the [unused] share. *)
                let delta = Float.max 0.0 (next_event_wall -. !wall) in
                wall := !wall +. delta;
                exposed := !exposed +. delta
              end
              else if pred_e < fail_e && pred_wall < completion_wall then begin
                (* A prediction fires before this checkpoint completes
                   and before the next failure. The policy's hook never
                   sees [true_positive] — there is no oracle. *)
                let ev = List.hd !pq in
                pq := List.tl !pq;
                if ev.Fault.Predictor.true_positive then incr preds_true
                else incr preds_false;
                push
                  (Prediction
                     { at = pred_wall;
                       true_positive = ev.Fault.Predictor.true_positive });
                let since_commit = pred_wall -. !committed_wall in
                let overhead = if first then first_overhead else 0.0 in
                (* The bankable work: what has elapsed since the last
                   commit, net of the initial recovery, capped by the
                   segment's work share (a prediction landing inside the
                   in-flight nominal checkpoint cannot bank checkpoint
                   time as work — the excess is abandoned into
                   [unused]). *)
                let seg_work = Float.max 0.0 (seg_len -. actual_c -. overhead) in
                let work =
                  Float.min (Float.max 0.0 (since_commit -. overhead)) seg_work
                in
                let take =
                  work > 0.0
                  && pred_wall +. cp <= horizon
                  &&
                  match !cur_policy.Policy.on_prediction with
                  | None -> false
                  | Some f ->
                      f ~tleft:(horizon -. pred_wall) ~since_commit
                        ~window:ev.Fault.Predictor.window
                in
                if not take then
                  (* Ignored (by the policy, or nothing to bank, or no
                     room left): zero time cost, same segment again. *)
                  attempt ()
                else begin
                  (* Proactive checkpoint: advance to the firing instant
                     and checkpoint for [cp], exposed to failures. *)
                  let delta = pred_e -. !exposed in
                  wall := !wall +. delta;
                  exposed := pred_e;
                  let ckpt_end_e = !exposed +. cp in
                  if fail_e < ckpt_end_e then begin
                    (* The announced (or another) fault strikes before
                       the proactive checkpoint completes: everything
                       since the last commit is lost, as usual. *)
                    let delta = fail_e -. !exposed in
                    wall := !wall +. delta;
                    exposed := fail_e;
                    Fault.Trace.consume cur;
                    incr fails;
                    let lost = !wall -. !committed_wall in
                    b_lost := !b_lost +. lost;
                    push (Failure { at = !wall; lost });
                    b_down :=
                      !b_down +. Float.max 0.0 (Float.min d (horizon -. !wall));
                    wall := !wall +. d;
                    recovering := true;
                    if horizon -. !wall < r +. c then finished := true
                  end
                  else begin
                    wall := !wall +. cp;
                    exposed := ckpt_end_e;
                    saved := !saved +. work;
                    b_ckpt := !b_ckpt +. cp;
                    if first then begin
                      (* [work > 0] implies the initial recovery fully
                         elapsed before the prediction fired; commit it
                         with this checkpoint. *)
                      b_recov := !b_recov +. first_overhead;
                      recovering := false
                    end;
                    incr ckpts;
                    incr proactive;
                    push
                      (Segment_saved
                         { start = !committed_wall; finish = !wall; work });
                    committed_wall := !wall;
                    (* Abandon the rest of the plan and fall back to the
                       re-planning loop: the policy re-plans the
                       remaining horizon from the fresh commit. *)
                    ()
                  end
                end
              end
              else if fail_e < seg_end_e then begin
                (* Failure strikes before this checkpoint completes. *)
                let delta = fail_e -. !exposed in
                wall := !wall +. delta;
                exposed := fail_e;
                Fault.Trace.consume cur;
                incr fails;
                let lost = !wall -. !committed_wall in
                b_lost := !b_lost +. lost;
                push (Failure { at = !wall; lost });
                (* A stochastic-checkpoint shift can push [wall] past the
                   horizon before the failure strikes; the downtime share
                   is then empty, not negative. *)
                b_down := !b_down +. Float.max 0.0 (Float.min d (horizon -. !wall));
                wall := !wall +. d;
                recovering := true;
                if horizon -. !wall < r +. c then finished := true
              end
              else if completion_wall > horizon then begin
                (* Stochastic checkpoint overran the reservation: this
                   checkpoint (and a fortiori the following ones) can no
                   longer complete. *)
                push (Gave_up { at = horizon });
                finished := true
              end
              else begin
                let overhead = actual_c +. (if first then first_overhead else 0.0) in
                let work = Float.max 0.0 (seg_len -. overhead) in
                saved := !saved +. work;
                b_ckpt := !b_ckpt +. actual_c;
                if first then begin
                  b_recov := !b_recov +. first_overhead;
                  (* The recovery (if any) is committed with the first
                     checkpoint: a plan started by a later platform
                     event continues from here without re-recovering. *)
                  recovering := false
                end;
                incr ckpts;
                wall := !wall +. seg_len;
                committed_wall := !wall;
                exposed := seg_end_e;
                push
                  (Segment_saved
                     { start = !wall -. seg_len; finish = !wall; work });
                walk off shift' rest ~first:false
              end
              in
              attempt ())
        in
        walk 0.0 0.0 offsets ~first:true)
  done;
  let breakdown =
    let accounted = !saved +. !b_ckpt +. !b_recov +. !b_down +. !b_lost in
    let unused = horizon -. accounted in
    (* A downtime can overrun the horizon; clip it rather than report a
       negative unused share. *)
    if unused < 0.0 then
      {
        working = !saved;
        checkpointing = !b_ckpt;
        recovering = !b_recov;
        down = Float.max 0.0 (!b_down +. unused);
        lost = !b_lost;
        unused = 0.0;
      }
    else
      {
        working = !saved;
        checkpointing = !b_ckpt;
        recovering = !b_recov;
        down = !b_down;
        lost = !b_lost;
        unused;
      }
  in
  {
    work_saved = !saved;
    checkpoints = !ckpts;
    failures = !fails;
    replans = !replans;
    replans_platform = !replans_platform;
    predictions_true = !preds_true;
    predictions_false = !preds_false;
    proactive_checkpoints = !proactive;
    breakdown;
    events = List.rev !events;
  }

let proportion_of_work ~params ~horizon outcome =
  let c = params.Fault.Params.c in
  if horizon <= c then
    invalid_arg "Engine.proportion_of_work: horizon must exceed C";
  outcome.work_saved /. (horizon -. c)
