type result = {
  policy : string;
  horizon : float;
  traces : int;
  proportion : Numerics.Stats.summary;
  quantiles : float * float * float;
  mean_work : float;
  mean_failures : float;
  mean_checkpoints : float;
  mean_proactive : float;
  mean_predictions_true : float;
  mean_predictions_false : float;
}

type quantile_mode = Exact | Streaming

(* Quantile state for the fold: the exact path buffers every sample
   (type-7 interpolation needs the full order statistics and is the
   golden-output default); the streaming path keeps three P² marker
   sets and is O(1) in [n_traces]. *)
type quantile_acc =
  | Buffered of { mutable buf : float array; mutable len : int }
  | P2 of { p5 : Numerics.Stats.P2.t; p50 : Numerics.Stats.P2.t; p95 : Numerics.Stats.P2.t }

type stream = {
  s_params : Fault.Params.t;
  s_horizon : float;
  s_policy : Policy.t;
  s_ckpt_sampler : (unit -> float) option;
  s_proactive_c : float option;
  s_prop : Numerics.Stats.accumulator;
  s_quant : quantile_acc;
  mutable s_traces : int;
  mutable s_work : float;
  mutable s_fails : int;
  mutable s_ckpts : int;
  mutable s_proactive : int;
  mutable s_pred_true : int;
  mutable s_pred_false : int;
}

let stream_create ?ckpt_sampler ?proactive_c ?(quantile_mode = Exact) ~params
    ~horizon ~policy () =
  let s_quant =
    match quantile_mode with
    | Exact -> Buffered { buf = Array.make 64 0.0; len = 0 }
    | Streaming ->
        P2
          {
            p5 = Numerics.Stats.P2.create ~q:0.05;
            p50 = Numerics.Stats.P2.create ~q:0.5;
            p95 = Numerics.Stats.P2.create ~q:0.95;
          }
  in
  {
    s_params = params;
    s_horizon = horizon;
    s_policy = policy;
    s_ckpt_sampler = ckpt_sampler;
    s_proactive_c = proactive_c;
    s_prop = Numerics.Stats.acc_create ();
    s_quant;
    s_traces = 0;
    s_work = 0.0;
    s_fails = 0;
    s_ckpts = 0;
    s_proactive = 0;
    s_pred_true = 0;
    s_pred_false = 0;
  }

let quant_add q x =
  match q with
  | Buffered b ->
      if b.len = Array.length b.buf then begin
        let bigger = Array.make (2 * b.len) 0.0 in
        Array.blit b.buf 0 bigger 0 b.len;
        b.buf <- bigger
      end;
      b.buf.(b.len) <- x;
      b.len <- b.len + 1
  | P2 { p5; p50; p95 } ->
      Numerics.Stats.P2.add p5 x;
      Numerics.Stats.P2.add p50 x;
      Numerics.Stats.P2.add p95 x

let quant_result = function
  | Buffered b ->
      let samples = Array.sub b.buf 0 b.len in
      ( Numerics.Stats.quantile samples ~q:0.05,
        Numerics.Stats.median samples,
        Numerics.Stats.quantile samples ~q:0.95 )
  | P2 { p5; p50; p95 } ->
      ( Numerics.Stats.P2.value p5,
        Numerics.Stats.P2.value p50,
        Numerics.Stats.P2.value p95 )

let stream_feed ?platform ?predictions s trace =
  let outcome =
    Engine.run ?ckpt_sampler:s.s_ckpt_sampler ?platform ?predictions
      ?proactive_c:s.s_proactive_c ~params:s.s_params ~horizon:s.s_horizon
      ~policy:s.s_policy trace
  in
  let p = Engine.proportion_of_work ~params:s.s_params ~horizon:s.s_horizon outcome in
  Numerics.Stats.acc_add s.s_prop p;
  quant_add s.s_quant p;
  s.s_traces <- s.s_traces + 1;
  s.s_work <- s.s_work +. outcome.Engine.work_saved;
  s.s_fails <- s.s_fails + outcome.Engine.failures;
  s.s_ckpts <- s.s_ckpts + outcome.Engine.checkpoints;
  s.s_proactive <- s.s_proactive + outcome.Engine.proactive_checkpoints;
  s.s_pred_true <- s.s_pred_true + outcome.Engine.predictions_true;
  s.s_pred_false <- s.s_pred_false + outcome.Engine.predictions_false

let stream_count s = s.s_traces

let stream_result s =
  if s.s_traces = 0 then invalid_arg "Runner.stream_result: no traces";
  let fn = float_of_int s.s_traces in
  {
    policy = s.s_policy.Policy.name;
    horizon = s.s_horizon;
    traces = s.s_traces;
    proportion = Numerics.Stats.summarize s.s_prop;
    quantiles = quant_result s.s_quant;
    mean_work = s.s_work /. fn;
    mean_failures = float_of_int s.s_fails /. fn;
    mean_checkpoints = float_of_int s.s_ckpts /. fn;
    mean_proactive = float_of_int s.s_proactive /. fn;
    mean_predictions_true = float_of_int s.s_pred_true /. fn;
    mean_predictions_false = float_of_int s.s_pred_false /. fn;
  }

let evaluate ?ckpt_sampler ?quantile_mode ?platforms ?predictions ?proactive_c
    ~params ~horizon ~policy traces =
  if Array.length traces = 0 then invalid_arg "Runner.evaluate: no traces";
  (match platforms with
  | Some ps when Array.length ps <> Array.length traces ->
      invalid_arg "Runner.evaluate: platforms and traces length mismatch"
  | _ -> ());
  (match predictions with
  | Some ps when Array.length ps <> Array.length traces ->
      invalid_arg "Runner.evaluate: predictions and traces length mismatch"
  | _ -> ());
  let s =
    stream_create ?ckpt_sampler ?proactive_c ?quantile_mode ~params ~horizon
      ~policy ()
  in
  Array.iteri
    (fun i tr ->
      let platform = Option.map (fun ps -> ps.(i)) platforms in
      let predictions = Option.map (fun ps -> ps.(i)) predictions in
      stream_feed ?platform ?predictions s tr)
    traces;
  stream_result s

let pp_result ppf r =
  Format.fprintf ppf
    "%-22s T=%-8g traces=%-5d work=%.4f (±%.4f) failures=%.2f ckpts=%.2f"
    r.policy r.horizon r.traces r.proportion.Numerics.Stats.mean
    r.proportion.Numerics.Stats.ci95_half_width r.mean_failures
    r.mean_checkpoints
