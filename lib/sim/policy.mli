(** Checkpointing policies.

    A policy is queried at the start of the reservation and again after
    every failure (once downtime has elapsed). Given the time left [tleft]
    and whether the execution must begin with a recovery, it returns its
    {e failure-free plan}: the increasing list of instants (offsets from
    now) at which its checkpoints would {e complete} if no failure struck.

    A well-formed plan for [(tleft, recovering)] satisfies, with
    [base = if recovering then r else 0]:
    - offsets are strictly increasing and every offset is [<= tleft];
    - the first offset is [>= base + c];
    - consecutive offsets differ by at least [c]
      (each segment must contain its own checkpoint).

    The empty plan means "nothing more can be saved": the engine then
    stops, losing any work after the last completed checkpoint. *)

type t = {
  name : string;
  plan : tleft:float -> recovering:bool -> float list;
  adapt : (Fault.Params.t -> t) option;
      (** How this policy reacts to a platform change: given the updated
          params (the degraded or restored failure rate), return the
          policy to continue the reservation with. [None] — the common
          case — means the policy is static: the engine keeps querying
          the same plan closure after a platform event. The returned
          policy should itself carry an [adapt] so later events re-plan
          too. *)
  on_prediction :
    (tleft:float -> since_commit:float -> window:float -> bool) option;
      (** How this policy reacts to a fired fault prediction: given the
          time left in the reservation, the time elapsed since the last
          committed checkpoint, and the prediction's window width,
          return [true] to take a proactive checkpoint now (banking the
          work accumulated since the last commit, then re-planning) or
          [false] to ignore the event. [None] — the common case —
          ignores every prediction. The hook never sees whether the
          prediction is a true positive: policies have no oracle. *)
}

val make :
  ?adapt:(Fault.Params.t -> t) ->
  ?on_prediction:(tleft:float -> since_commit:float -> window:float -> bool) ->
  name:string ->
  (tleft:float -> recovering:bool -> float list) ->
  t

val set_adapt : t -> (Fault.Params.t -> t) -> t
(** [set_adapt p f] is [p] re-planning through [f] on platform change —
    functional update, [p] itself is untouched. *)

val set_on_prediction :
  t -> (tleft:float -> since_commit:float -> window:float -> bool) -> t
(** [set_on_prediction p f] is [p] answering fired predictions with [f]
    — functional update, [p] itself is untouched. *)

val validate_plan :
  params:Fault.Params.t -> tleft:float -> recovering:bool -> float list -> unit
(** Raises [Invalid_argument] if the plan violates the contract above
    (with a small numerical tolerance). *)

(** {2 Generic geometric policies}

    Baselines that need no paper-specific machinery. *)

val no_checkpoint : t
(** Never checkpoints; saves nothing. Lower bound for sanity checks. *)

val single_final : params:Fault.Params.t -> t
(** "Strat1" of the paper's Section 4: one checkpoint completing exactly
    at the end of the remaining reservation. *)

val single_at : params:Fault.Params.t -> offset_from_end:float -> t
(** One checkpoint completing [offset_from_end] before the end (clamped so
    the plan stays feasible). [offset_from_end = 0] is {!single_final}.
    "Strat2" of Section 4.2. *)

val equal_segments : params:Fault.Params.t -> count:int -> t
(** Exactly [count] equal-length segments, each ending with a checkpoint,
    the last one completing at the end of the remaining reservation —
    regardless of [tleft]. Used by the Section 4.3 and Section 5 gain
    analyses. If fewer than [count] checkpoints fit, uses as many as fit. *)

val two_checkpoints : params:Fault.Params.t -> alpha:float -> t
(** "Strat2(α)" of Section 4.3: first checkpoint completes at
    [alpha * tleft], second at [tleft]. [alpha] is clamped to keep both
    segments feasible. *)

val periodic : params:Fault.Params.t -> period:float -> t
(** Fixed-period baseline: work [period], checkpoint, repeat; when the
    remaining length after a checkpoint is shorter than [period + c], a
    final checkpoint completes exactly at the end of the reservation.
    With [period = W_YD] this is the paper's YoungDaly strategy. *)

val max_work : params:Fault.Params.t -> tleft:float -> recovering:bool -> float
(** Work saved by a plan that completes in full: [tleft] minus the initial
    recovery (if any) minus one checkpoint — an upper bound used by
    metrics ([tleft - c] at reservation start). *)
