(** Execution engine: replays one failure trace against one policy.

    Time accounting follows the paper's model:
    - work, checkpoints and recoveries are exposed to failures;
    - downtime [D] is not (the failed node is being replaced);
    - after a failure at time [t], the time left is [T - t - D] and the
      next execution attempt starts with a recovery [R];
    - only work committed by a {e completed} checkpoint counts;
    - the engine re-queries the policy after every failure, which is
      exactly the recursive definition of a strategy in the paper. *)

type event =
  | Segment_saved of { start : float; finish : float; work : float }
      (** checkpoint completed at [finish]; [work] units committed *)
  | Failure of { at : float; lost : float }
      (** failure at wall-clock [at]; [lost] uncommitted units *)
  | Gave_up of { at : float }
      (** policy returned an empty plan: nothing more can be saved *)
  | Platform_change of { at : float; survivors : int }
      (** a platform event took effect: the engine re-planned against
          the rate degraded to [survivors] processors *)
  | Prediction of { at : float; true_positive : bool }
      (** a predicted event fired at wall-clock [at]; whether the live
          policy took a proactive checkpoint shows as a following
          [Segment_saved] *)

type platform = { initial : int; events : Fault.Trace.platform_event list }
(** A malleable-platform schedule for one reservation: the initial
    processor count the run's [params.lambda] corresponds to, plus the
    wall-clock loss/rejoin events (see {!Fault.Trace.platform_event}).
    On each event the engine rescales the rate with
    [Fault.Params.degrade ~initial ~survivors] and re-queries the
    policy — through its [adapt] hook when it has one, otherwise the
    same static plan closure. *)

type breakdown = {
  working : float;  (** committed useful work *)
  checkpointing : float;  (** completed checkpoints (actual durations) *)
  recovering : float;  (** completed recoveries *)
  down : float;  (** downtime after failures (clipped at the horizon) *)
  lost : float;  (** time destroyed by failures (work, checkpoint or
                     recovery in progress since the last commit) *)
  unused : float;  (** everything else: the tail after the final
                       checkpoint, leftovers too short to exploit,
                       abandoned partial work after a checkpoint overrun *)
}
(** Wall-clock accounting of the reservation; the six components sum to
    the horizon (within floating tolerance). *)

type outcome = {
  work_saved : float;  (** total committed work *)
  checkpoints : int;  (** checkpoints completed *)
  failures : int;  (** failures that struck the execution *)
  replans : int;  (** times the policy was queried *)
  replans_platform : int;
      (** platform events processed (re-plans not caused by a failure) *)
  predictions_true : int;  (** fired predictions backed by a real fault *)
  predictions_false : int;  (** fired false alarms *)
  proactive_checkpoints : int;
      (** completed proactive checkpoints (also counted in
          [checkpoints]) *)
  breakdown : breakdown;
  events : event list;  (** chronological; empty unless [record] *)
}

val run :
  ?record:bool ->
  ?ckpt_sampler:(unit -> float) ->
  ?platform:platform ->
  ?predictions:Fault.Predictor.event list ->
  ?proactive_c:float ->
  params:Fault.Params.t ->
  horizon:float ->
  policy:Policy.t ->
  Fault.Trace.t ->
  outcome
(** [run ~params ~horizon ~policy trace] simulates the full reservation
    of length [horizon].

    [ckpt_sampler], when given, draws the {e actual} duration of each
    checkpoint as it starts (stochastic-checkpoint extension); the policy
    still plans with the nominal [params.c], completions shift
    accordingly, and a checkpoint whose shifted completion exceeds the
    horizon never completes. Plans are validated against the policy
    contract; a malformed plan raises [Invalid_argument].

    [platform], when given, replays its loss/rejoin events against the
    run: an event interrupts the current plan at its wall-clock date
    (abandoning the uncommitted span since the last checkpoint into the
    [unused] share — no recovery is charged, the execution simply
    re-plans), degrades the params to the surviving processor count and
    re-queries the policy, via its [adapt] hook when present. Events
    landing during a downtime take effect when the downtime ends; events
    at or past the horizon are ignored. With an empty event list the run
    is bit-identical to one without [platform].

    [predictions], when given, replays a sorted predicted-event stream
    (see {!Fault.Predictor}) on the exposed clock. When a prediction
    fires before the next failure and before the in-flight checkpoint
    completes, the live policy's [on_prediction] hook decides: [true]
    takes a {e proactive checkpoint} of duration [proactive_c]
    (default [params.c], must lie in [\[0, C\]]), banking the work
    accumulated since the last commit and then re-planning the rest of
    the horizon; [false] — or a policy without the hook, or nothing
    bankable, or no room before the horizon — ignores the event at
    zero cost. Proactive checkpoints are exposed to failures like any
    other checkpoint, count in both [checkpoints] and
    [proactive_checkpoints], and preserve the breakdown sum-to-horizon
    invariant. With [predictions] absent or [\[\]] the run is
    bit-identical to one without predictions; an always-ignoring policy
    reproduces the same work, timing and breakdown to the last bit, with
    only the prediction counters (and recorded [Prediction] events)
    registering the fired stream. *)

val proportion_of_work :
  params:Fault.Params.t -> horizon:float -> outcome -> float
(** The paper's reported metric: [work_saved / (horizon - c)].
    Requires [horizon > c]. *)
