(** Multi-trace evaluation of a policy at one parameter point. *)

type result = {
  policy : string;
  horizon : float;
  traces : int;
  proportion : Numerics.Stats.summary;
      (** distribution of [work_saved / (horizon - c)] across traces *)
  quantiles : float * float * float;
      (** (p5, median, p95) of the proportion across traces *)
  mean_work : float;
  mean_failures : float;
  mean_checkpoints : float;
  mean_proactive : float;  (** proactive checkpoints per trace *)
  mean_predictions_true : float;  (** fired true positives per trace *)
  mean_predictions_false : float;  (** fired false alarms per trace *)
}

type quantile_mode =
  | Exact  (** buffer samples, type-7 interpolation (golden default) *)
  | Streaming  (** P² marker estimates, O(1) memory in the trace count *)

type stream
(** Online evaluation state: traces are folded in one at a time and
    every aggregate (mean, CI, quantiles, work/failure/checkpoint
    totals) is maintained incrementally. *)

val stream_create :
  ?ckpt_sampler:(unit -> float) ->
  ?proactive_c:float ->
  ?quantile_mode:quantile_mode ->
  params:Fault.Params.t ->
  horizon:float ->
  policy:Policy.t ->
  unit ->
  stream
(** [quantile_mode] defaults to [Exact], which reproduces the batch
    results bit-for-bit; [Streaming] trades exactness of the three
    quantiles for flat memory. [proactive_c] is the proactive-checkpoint
    cost forwarded to {!Engine.run} (default [params.c]). *)

val stream_feed :
  ?platform:Engine.platform ->
  ?predictions:Fault.Predictor.event list ->
  stream ->
  Fault.Trace.t ->
  unit
(** Run the policy on one trace and fold its outcome in. [platform]
    replays that trace's malleable-platform events (see
    {!Engine.platform}) — per-trace, because each trace of a batch draws
    its own loss/rejoin history. [predictions] likewise replays that
    trace's predicted-event stream (see {!Fault.Predictor}). *)

val stream_count : stream -> int

val stream_result : stream -> result
(** Aggregate of everything fed so far. Raises [Invalid_argument] when
    no trace has been fed. The stream remains usable: more traces can be
    fed and a new result taken. *)

val evaluate :
  ?ckpt_sampler:(unit -> float) ->
  ?quantile_mode:quantile_mode ->
  ?platforms:Engine.platform array ->
  ?predictions:Fault.Predictor.event list array ->
  ?proactive_c:float ->
  params:Fault.Params.t ->
  horizon:float ->
  policy:Policy.t ->
  Fault.Trace.t array ->
  result
(** Runs the policy on every trace and aggregates — a fold of
    {!stream_feed} over the array. Each trace is replayed from its
    beginning, so passing the same array to several policies compares
    them on identical failure scenarios. [platforms] and [predictions],
    when given, must align with [traces]: entry [i] is trace [i]'s
    event schedule / predicted stream, so policies are also compared on
    identical platform histories and predictions (common random
    numbers). *)

val pp_result : Format.formatter -> result -> unit
