type t = { buf : Buffer.t }

let create () = { buf = Buffer.create 4096 }

let newline_separated t body =
  Buffer.add_string t.buf body;
  Buffer.add_string t.buf "\n\n"

let heading t ~level text =
  if level < 1 || level > 6 then invalid_arg "Markdown.heading: level outside 1..6";
  newline_separated t (String.make level '#' ^ " " ^ text)

let paragraph t text = newline_separated t text

let bullet t items =
  newline_separated t
    (String.concat "\n" (List.map (fun item -> "- " ^ item) items))

let code_block ?(lang = "") t body =
  newline_separated t (Printf.sprintf "```%s\n%s\n```" lang body)

let escape_cell cell =
  String.concat "\\|" (String.split_on_char '|' cell)

let table t ~header rows =
  if header = [] then invalid_arg "Markdown.table: empty header";
  let arity = List.length header in
  List.iteri
    (fun i row ->
      if List.length row <> arity then
        invalid_arg
          (Printf.sprintf "Markdown.table: row %d has wrong arity" i))
    rows;
  let render_row cells =
    "| " ^ String.concat " | " (List.map escape_cell cells) ^ " |"
  in
  let rule = "|" ^ String.concat "|" (List.map (fun _ -> "---") header) ^ "|" in
  newline_separated t
    (String.concat "\n" (render_row header :: rule :: List.map render_row rows))

let contents t = Buffer.contents t.buf

let to_file ?chaos t ~path =
  Robust.Durable.write_atomic ?chaos ~point:"report" ~path (contents t)
