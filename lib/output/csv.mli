(** Minimal CSV writing (RFC 4180 quoting) for experiment outputs. *)

val escape : string -> string
(** Quote a field if it contains a comma, quote, or newline. *)

val row_to_string : string list -> string

val write : ?chaos:Robust.Chaos_fs.t -> path:string -> header:string list ->
  string list list -> unit
(** Write a whole file atomically and durably (temporary file + fsync +
    rename + directory fsync, via {!Robust.Durable.write_atomic});
    [chaos] injects filesystem faults for drills. Raises
    [Invalid_argument] on an empty header or a row of the wrong
    arity. *)

type writer

val open_out : path:string -> header:string list -> writer
val write_row : writer -> string list -> unit
val write_floats : writer -> label:string list -> float list -> unit
(** [label] cells first, then floats formatted with [%.17g]
    (round-trippable). *)

val close : writer -> unit
