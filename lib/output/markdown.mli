(** Minimal Markdown generation for experiment reports (EXPERIMENTS.md
    is produced with this). *)

type t
(** A document under construction. *)

val create : unit -> t
val heading : t -> level:int -> string -> unit
val paragraph : t -> string -> unit
val bullet : t -> string list -> unit
val code_block : ?lang:string -> t -> string -> unit

val table : t -> header:string list -> string list list -> unit
(** GitHub-flavoured pipe table; cells containing [|] are escaped.
    Raises [Invalid_argument] on an empty header or a row of the wrong
    arity. *)

val contents : t -> string

val to_file : ?chaos:Robust.Chaos_fs.t -> t -> path:string -> unit
(** Publish atomically and durably (via
    {!Robust.Durable.write_atomic}). *)
