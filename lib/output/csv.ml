let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf ch)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string cells = String.concat "," (List.map escape cells)

type writer = { oc : out_channel; arity : int }

let open_out ~path ~header =
  if header = [] then invalid_arg "Csv.open_out: empty header";
  let oc = Stdlib.open_out path in
  output_string oc (row_to_string header);
  output_char oc '\n';
  { oc; arity = List.length header }

let write_row w cells =
  if List.length cells <> w.arity then
    invalid_arg "Csv.write_row: cell count differs from header";
  output_string w.oc (row_to_string cells);
  output_char w.oc '\n'

let write_floats w ~label xs =
  write_row w (label @ List.map (Printf.sprintf "%.17g") xs)

let close w = close_out w.oc

let write ?chaos ~path ~header rows =
  if header = [] then invalid_arg "Csv.write: empty header";
  let arity = List.length header in
  let buf = Buffer.create 4096 in
  let add_row cells =
    if List.length cells <> arity then
      invalid_arg "Csv.write: cell count differs from header";
    Buffer.add_string buf (row_to_string cells);
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf (row_to_string header);
  Buffer.add_char buf '\n';
  List.iter add_row rows;
  Robust.Durable.write_atomic ?chaos ~point:"csv" ~path (Buffer.contents buf)
