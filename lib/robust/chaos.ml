exception Injected of string

type t = {
  failure_rate : float;
  delay_rate : float;
  delay : float;
  hang_rate : float;
  hang : unit -> unit;
  sleep : float -> unit;
  seed : int64;
  raised : int Atomic.t;
}

let check_rate name r =
  if r < 0.0 || r > 1.0 then
    invalid_arg (Printf.sprintf "Chaos.create: %s outside [0, 1]" name)

(* The default hang never returns: the task is gone for good unless a
   supervisor (Proc_pool's watchdog) kills its process. *)
let rec hang_forever () =
  Unix.sleepf 3600.0;
  hang_forever ()

let create ?(failure_rate = 0.0) ?(delay_rate = 0.0) ?(delay = 0.01)
    ?(hang_rate = 0.0) ?(hang = hang_forever) ?(sleep = Unix.sleepf) ~seed () =
  check_rate "failure_rate" failure_rate;
  check_rate "delay_rate" delay_rate;
  check_rate "hang_rate" hang_rate;
  if delay < 0.0 then invalid_arg "Chaos.create: delay < 0";
  {
    failure_rate;
    delay_rate;
    delay;
    hang_rate;
    hang;
    sleep;
    seed;
    raised = Atomic.make 0;
  }

let unit_draw t ~salt ~key ~attempt =
  let h = Numerics.Checksum.fnv1a64 salt in
  let h = Numerics.Checksum.fold_int h (Int64.to_int t.seed) in
  let h = Numerics.Checksum.fold_int h key in
  let h = Numerics.Checksum.fold_int h attempt in
  Numerics.Checksum.to_unit_float h

let should_fail t ~key ~attempt =
  unit_draw t ~salt:"chaos-fail" ~key ~attempt < t.failure_rate

let should_delay t ~key ~attempt =
  unit_draw t ~salt:"chaos-delay" ~key ~attempt < t.delay_rate

let should_hang t ~key ~attempt =
  unit_draw t ~salt:"chaos-hang" ~key ~attempt < t.hang_rate

let injected_failures t = Atomic.get t.raised

let inject t ~key ~attempt =
  if should_delay t ~key ~attempt then t.sleep t.delay;
  if should_fail t ~key ~attempt then begin
    Atomic.incr t.raised;
    raise
      (Injected
         (Printf.sprintf "chaos: injected failure (key %d, attempt %d)" key
            attempt))
  end;
  if should_hang t ~key ~attempt then t.hang ()

let wrap t ~key f ~attempt =
  inject t ~key ~attempt;
  f ~attempt
