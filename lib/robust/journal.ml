type entry = {
  c : float;
  strategy : string;
  t : float;
  mean : float;
  ci95 : float;
  mean_failures : float;
  mean_checkpoints : float;
}

type t = {
  path : string;
  key : string;
  chaos : Chaos.t option;
  lock : Mutex.t;
  index : (float * string * float, entry) Hashtbl.t;
  mutable order : entry list;  (* newest first *)
  writer : Durable.Framed.writer;
  mutable appended : int;  (* total appends: chaos key stream *)
  mutable notes : string list;  (* newest first *)
  mutable closed : bool;
}

let header_of key = Printf.sprintf "# fixedlen-journal v2 %s" key

let no_whitespace what s =
  String.iter
    (fun ch ->
      if ch = ' ' || ch = '\t' || ch = '\n' || ch = '\r' then
        invalid_arg (Printf.sprintf "Journal: %s contains whitespace: %S" what s))
    s

let payload e =
  Printf.sprintf "p %.17g %s %.17g %.17g %.17g %.17g %.17g" e.c e.strategy e.t
    e.mean e.ci95 e.mean_failures e.mean_checkpoints

(* The frame layer already checksummed the payload; this only has to
   parse it. [None] marks the record (and everything after) as the
   corrupt tail. *)
let parse_payload p =
  match List.filter (fun s -> s <> "") (String.split_on_char ' ' p) with
  | [ "p"; c; strategy; t; mean; ci95; mf; mc ] -> (
      match
        ( float_of_string_opt c,
          float_of_string_opt t,
          float_of_string_opt mean,
          float_of_string_opt ci95,
          float_of_string_opt mf,
          float_of_string_opt mc )
      with
      | Some c, Some t, Some mean, Some ci95, Some mf, Some mc ->
          Some
            {
              c;
              strategy;
              t;
              mean;
              ci95;
              mean_failures = mf;
              mean_checkpoints = mc;
            }
      | _ -> None)
  | _ -> None

(* A well-formed journal header for some other producer — as opposed to
   bytes that are not a journal header at all. The distinction decides
   strict-mode behaviour: refusing to resume someone else's valid
   journal protects their data; a corrupt header has no data to protect
   and is quarantined instead. *)
let foreign_header h =
  match String.split_on_char ' ' h with
  | [ "#"; "fixedlen-journal"; "v2"; key ] -> key <> ""
  | _ -> false

let open_ ?chaos ?fs ?(durable = true) ?(strict = false) ?(point = "journal")
    ~path ~key () =
  no_whitespace "key" key;
  no_whitespace "point" point;
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let wrap_open f =
    try f ()
    with Unix.Unix_error (err, _, _) ->
      failwith
        (Printf.sprintf "cannot open journal %s: %s" path
           (Unix.error_message err))
  in
  let start_fresh () =
    wrap_open (fun () ->
        Durable.Framed.create ?chaos:fs ~durable ~point ~path
          ~header:(header_of key) ())
  in
  let quarantine_and_restart reason =
    let qpath = Durable.quarantine ~path ~reason in
    note "journal %s: %s; quarantined to %s, starting fresh" path reason qpath;
    (start_fresh (), [])
  in
  let writer, accepted =
    if not (Sys.file_exists path) then begin
      (* Notable under --resume: a mistyped path quietly recomputes
         everything, so say that a brand-new journal was started. *)
      if strict then note "journal %s did not exist: starting fresh" path;
      (start_fresh (), [])
    end
    else begin
      let scan = wrap_open (fun () -> Durable.Framed.scan ~path) in
      match scan.Durable.Framed.header with
      | None when scan.Durable.Framed.length = 0 ->
          if strict then note "journal %s was empty: starting fresh" path;
          (start_fresh (), [])
      | None -> quarantine_and_restart "torn header (no complete header line)"
      | Some h when h <> header_of key ->
          if foreign_header h then
            if strict then
              failwith
                (Printf.sprintf
                   "Journal.open_: %s was written by a different spec/seed \
                    (expected header %S); refusing to resume — delete the \
                    file or drop --resume to start over"
                   path (header_of key))
            else begin
              let qpath =
                Durable.quarantine ~path
                  ~reason:
                    (Printf.sprintf "journal key mismatch (expected %S)"
                       (header_of key))
              in
              note
                "journal %s did not match this spec; quarantined to %s, \
                 starting fresh"
                path qpath;
              (start_fresh (), [])
            end
          else quarantine_and_restart "unrecognised journal header"
      | Some _ ->
          (* Our header. Accept intact records up to the first one that
             is torn, checksum-damaged, or semantically unparsable; the
             tail after that point is truncated — the expected outcome
             of a crash mid-append. *)
          let accepted = ref [] in
          let keep = ref scan.Durable.Framed.length in
          let corrupt = ref None in
          List.iter
            (fun (offset, p) ->
              if !corrupt = None then
                match parse_payload p with
                | Some e -> accepted := e :: !accepted
                | None -> corrupt := Some offset)
            scan.Durable.Framed.records;
          (match (!corrupt, scan.Durable.Framed.tail_error) with
          | Some offset, _ | None, Some (offset, _) -> keep := offset
          | None, None -> ());
          if !keep < scan.Durable.Framed.length then
            note
              "journal %s: corrupted tail at byte %d truncated (%d good \
               records kept)"
              path !keep
              (List.length !accepted);
          let writer =
            wrap_open (fun () ->
                Durable.Framed.open_append ?chaos:fs ~durable ~point ~path
                  ~keep:!keep ())
          in
          (writer, List.rev !accepted)
    end
  in
  let index = Hashtbl.create 256 in
  List.iter
    (fun e -> Hashtbl.replace index (e.c, e.strategy, e.t) e)
    accepted;
  {
    path;
    key;
    chaos;
    lock = Mutex.create ();
    index;
    order = List.rev accepted;
    writer;
    appended = 0;
    notes = !notes;
    closed = false;
  }

let check_open t = if t.closed then invalid_arg "Journal: used after close"
let warnings t = List.rev t.notes
let entries t = List.rev t.order
let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.index)
let path t = t.path
let key t = t.key

let find t ~c ~strategy ~t:horizon =
  Mutex.protect t.lock (fun () ->
      Hashtbl.find_opt t.index (c, strategy, horizon))

let append t e =
  no_whitespace "strategy" e.strategy;
  Mutex.protect t.lock (fun () ->
      check_open t;
      let seq = t.appended in
      t.appended <- seq + 1;
      (match t.chaos with
      | Some chaos -> Chaos.inject chaos ~key:seq ~attempt:0
      | None -> ());
      Durable.Framed.append t.writer (payload e);
      Hashtbl.replace t.index (e.c, e.strategy, e.t) e;
      t.order <- e :: t.order)

let sync t =
  Mutex.protect t.lock (fun () ->
      check_open t;
      Durable.Framed.sync t.writer)

let close t =
  Mutex.protect t.lock (fun () ->
      check_open t;
      t.closed <- true;
      Durable.Framed.close t.writer)
