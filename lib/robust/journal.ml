type entry = {
  c : float;
  strategy : string;
  t : float;
  mean : float;
  ci95 : float;
  mean_failures : float;
  mean_checkpoints : float;
}

type t = {
  path : string;
  key : string;
  chaos : Chaos.t option;
  lock : Mutex.t;
  index : (float * string * float, entry) Hashtbl.t;
  mutable order : entry list;  (* newest first *)
  mutable oc : out_channel;
  mutable dirty : int;  (* appends since last fsync *)
  mutable appended : int;  (* total appends: chaos key stream *)
  mutable notes : string list;  (* newest first *)
  mutable closed : bool;
}

let header_of key = Printf.sprintf "# fixedlen-journal v1 %s" key

let no_whitespace what s =
  String.iter
    (fun ch ->
      if ch = ' ' || ch = '\t' || ch = '\n' || ch = '\r' then
        invalid_arg (Printf.sprintf "Journal: %s contains whitespace: %S" what s))
    s

let payload e =
  Printf.sprintf "p %.17g %s %.17g %.17g %.17g %.17g %.17g" e.c e.strategy e.t
    e.mean e.ci95 e.mean_failures e.mean_checkpoints

let render e =
  let p = payload e in
  Printf.sprintf "%s %s" p
    (Numerics.Checksum.to_hex (Numerics.Checksum.fnv1a64 p))

(* A record line is [<payload> <16-hex-digest>]. Returns [None] on any
   mismatch: the caller treats that as the corrupt tail. *)
let parse_line line =
  let len = String.length line in
  if len < 18 || line.[len - 17] <> ' ' then None
  else begin
    let p = String.sub line 0 (len - 17) in
    let digest = String.sub line (len - 16) 16 in
    if Numerics.Checksum.to_hex (Numerics.Checksum.fnv1a64 p) <> digest then
      None
    else
      match
        List.filter (fun s -> s <> "") (String.split_on_char ' ' p)
      with
      | [ "p"; c; strategy; t; mean; ci95; mf; mc ] -> (
          match
            ( float_of_string_opt c,
              float_of_string_opt t,
              float_of_string_opt mean,
              float_of_string_opt ci95,
              float_of_string_opt mf,
              float_of_string_opt mc )
          with
          | Some c, Some t, Some mean, Some ci95, Some mf, Some mc ->
              Some
                {
                  c;
                  strategy;
                  t;
                  mean;
                  ci95;
                  mean_failures = mf;
                  mean_checkpoints = mc;
                }
          | _ -> None)
      | _ -> None
  end

type loaded = {
  accepted : entry list;  (* oldest first *)
  truncate_at : int option;  (* byte offset of the corrupt tail, if any *)
  header_ok : bool;
  empty : bool;
}

let load_existing ~path ~key =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  match String.index_opt content '\n' with
  | None ->
      (* No complete header line: empty file or torn header write. *)
      { accepted = []; truncate_at = None; header_ok = false; empty = len = 0 }
  | Some header_end ->
      if String.sub content 0 header_end <> header_of key then
        { accepted = []; truncate_at = None; header_ok = false; empty = false }
      else begin
        let accepted = ref [] in
        let corrupt = ref None in
        let offset = ref (header_end + 1) in
        while !corrupt = None && !offset < len do
          match String.index_from_opt content !offset '\n' with
          | None ->
              (* Torn final write: a record without its newline may be a
                 truncated prefix even if its digest happens to parse. *)
              corrupt := Some !offset
          | Some line_end -> (
              let line = String.sub content !offset (line_end - !offset) in
              match parse_line line with
              | Some e ->
                  accepted := e :: !accepted;
                  offset := line_end + 1
              | None -> corrupt := Some !offset)
        done;
        {
          accepted = List.rev !accepted;
          truncate_at = !corrupt;
          header_ok = true;
          empty = false;
        }
      end

let open_ ?chaos ?(strict = false) ~path ~key () =
  no_whitespace "key" key;
  let notes = ref [] in
  let note fmt = Printf.ksprintf (fun s -> notes := s :: !notes) fmt in
  let start_fresh () =
    let oc = open_out_bin path in
    output_string oc (header_of key);
    output_char oc '\n';
    flush oc;
    (oc, [])
  in
  let oc, accepted =
    if not (Sys.file_exists path) then begin
      (* Notable under --resume: a mistyped path quietly recomputes
         everything, so say that a brand-new journal was started. *)
      if strict then note "journal %s did not exist: starting fresh" path;
      start_fresh ()
    end
    else begin
      let loaded = load_existing ~path ~key in
      if not loaded.header_ok then begin
        if strict then
          failwith
            (Printf.sprintf
               "Journal.open_: %s %s (expected header %S); refusing to \
                resume — delete the file or drop --resume to start over"
               path
               (if loaded.empty then "is empty"
                else "was written by a different spec/seed or is not a journal")
               (header_of key));
        note "journal %s did not match this spec: starting fresh" path;
        start_fresh ()
      end
      else begin
        (match loaded.truncate_at with
        | None -> ()
        | Some offset ->
            note
              "journal %s: corrupted tail at byte %d truncated (%d good \
               records kept)"
              path offset
              (List.length loaded.accepted);
            Unix.truncate path offset);
        let oc =
          open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path
        in
        (oc, loaded.accepted)
      end
    end
  in
  let index = Hashtbl.create 256 in
  List.iter
    (fun e -> Hashtbl.replace index (e.c, e.strategy, e.t) e)
    accepted;
  {
    path;
    key;
    chaos;
    lock = Mutex.create ();
    index;
    order = List.rev accepted;
    oc;
    dirty = 0;
    appended = 0;
    notes = !notes;
    closed = false;
  }

let check_open t = if t.closed then invalid_arg "Journal: used after close"
let warnings t = List.rev t.notes
let entries t = List.rev t.order
let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.index)
let path t = t.path
let key t = t.key

let find t ~c ~strategy ~t:horizon =
  Mutex.protect t.lock (fun () ->
      Hashtbl.find_opt t.index (c, strategy, horizon))

let append t e =
  no_whitespace "strategy" e.strategy;
  Mutex.protect t.lock (fun () ->
      check_open t;
      let seq = t.appended in
      t.appended <- seq + 1;
      (match t.chaos with
      | Some chaos -> Chaos.inject chaos ~key:seq ~attempt:0
      | None -> ());
      output_string t.oc (render e);
      output_char t.oc '\n';
      flush t.oc;
      Hashtbl.replace t.index (e.c, e.strategy, e.t) e;
      t.order <- e :: t.order;
      t.dirty <- t.dirty + 1)

let sync t =
  Mutex.protect t.lock (fun () ->
      check_open t;
      if t.dirty > 0 then begin
        flush t.oc;
        Unix.fsync (Unix.descr_of_out_channel t.oc);
        t.dirty <- 0
      end)

let close t =
  sync t;
  Mutex.protect t.lock (fun () ->
      check_open t;
      t.closed <- true;
      close_out_noerr t.oc)
