let fsync_dir dir =
  (* Directory fsync makes the rename itself durable. Some filesystems
     refuse to open or fsync a directory; losing that last nine of
     durability there is better than failing the publish. *)
  match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* Write the whole string, looping on partial writes. [chaos] intercepts
   the first syscall of the payload: a planned short write exercises
   this very loop; a planned error or crash leaves a deterministic
   prefix on disk first, like a full disk or a power cut would. *)
let write_all ?chaos ~point fd s =
  let bytes = Bytes.unsafe_of_string s in
  let len = Bytes.length bytes in
  let plan =
    match chaos with
    | Some c -> Chaos_fs.plan c ~point ~len
    | None -> Chaos_fs.Write_all
  in
  let write_exactly ofs n =
    let written = ref 0 in
    while !written < n do
      written := !written + Unix.write fd bytes (ofs + !written) (n - !written)
    done
  in
  match plan with
  | Chaos_fs.Write_all -> write_exactly 0 len
  | Chaos_fs.Short_write n ->
      (* The injected syscall "returns" n < len; the loop must finish. *)
      write_exactly 0 n;
      write_exactly n (len - n)
  | Chaos_fs.Fail_after (n, err) ->
      write_exactly 0 n;
      raise (Unix.Unix_error (err, "write", point))
  | Chaos_fs.Crash_after n ->
      write_exactly 0 n;
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.kill (Unix.getpid ()) Sys.sigkill;
      (* SIGKILL cannot be handled; this point is unreachable. *)
      assert false

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_atomic ?chaos ?(point = "publish") ~path content =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  (try
     write_all ?chaos ~point fd content;
     Unix.fsync fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Unix.close fd;
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let quarantine ~path ~reason =
  let qpath = path ^ ".quarantine" in
  Sys.rename path qpath;
  (* The sidecar is best-effort: quarantining must survive the very
     disk conditions that corrupted the file in the first place. *)
  (try
     write_atomic ~path:(qpath ^ ".reason")
       (Printf.sprintf "file: %s\nquarantined-to: %s\nreason: %s\n" path qpath
          reason)
   with Unix.Unix_error _ | Sys_error _ -> ());
  qpath

module Framed = struct
  type scan = {
    header : string option;
    records : (int * string) list;
    tail_error : (int * string) option;
    length : int;
  }

  let digest payload =
    Numerics.Checksum.to_hex (Numerics.Checksum.fnv1a64 payload)

  let frame payload =
    Printf.sprintf "%d %s %s\n" (String.length payload) payload
      (digest payload)

  let is_digit ch = ch >= '0' && ch <= '9'

  let scan_content content =
    let len = String.length content in
    match String.index_opt content '\n' with
    | None -> { header = None; records = []; tail_error = None; length = len }
    | Some header_end ->
        let header = String.sub content 0 header_end in
        let records = ref [] in
        let tail_error = ref None in
        let offset = ref (header_end + 1) in
        let stop ~at cause = tail_error := Some (at, cause) in
        while !tail_error = None && !offset < len do
          let o = !offset in
          (* <decimal-len> ' ' <payload> ' ' <16-hex-fnv64> '\n' *)
          let j = ref o in
          while !j < len && is_digit content.[!j] && !j - o <= 9 do
            incr j
          done;
          if !j = o || !j >= len || content.[!j] <> ' ' then
            stop ~at:o "torn or malformed length prefix"
          else begin
            let plen = int_of_string (String.sub content o (!j - o)) in
            let payload_start = !j + 1 in
            (* payload + ' ' + 16 hex + '\n' *)
            if payload_start + plen + 18 > len then
              stop ~at:o "record extends past end of file (torn write)"
            else if content.[payload_start + plen] <> ' '
                    || content.[payload_start + plen + 17] <> '\n' then
              stop ~at:o "record framing bytes corrupt"
            else begin
              let payload = String.sub content payload_start plen in
              let found =
                String.sub content (payload_start + plen + 1) 16
              in
              if digest payload <> found then
                stop ~at:o "record checksum mismatch"
              else begin
                records := (o, payload) :: !records;
                offset := payload_start + plen + 18
              end
            end
          end
        done;
        {
          header = Some header;
          records = List.rev !records;
          tail_error = !tail_error;
          length = len;
        }

  let scan ~path = scan_content (read_file path)

  type writer = {
    fd : Unix.file_descr;
    path : string;
    point : string;
    chaos : Chaos_fs.t option;
    durable : bool;
    mutable dirty : bool;
    mutable closed : bool;
  }

  let create ?chaos ?(durable = true) ~point ~path ~header () =
    let fd =
      Unix.openfile path
        [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
        0o644
    in
    (try
       write_all ?chaos ~point:(point ^ "-header") fd (header ^ "\n");
       if durable then begin
         Unix.fsync fd;
         fsync_dir (Filename.dirname path)
       end
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; path; point; chaos; durable; dirty = false; closed = false }

  let open_append ?chaos ?(durable = true) ~point ~path ~keep () =
    let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CLOEXEC ] 0o644 in
    (try
       Unix.ftruncate fd keep;
       ignore (Unix.lseek fd 0 Unix.SEEK_END)
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; path; point; chaos; durable; dirty = false; closed = false }

  let check_open w =
    if w.closed then invalid_arg "Durable.Framed: writer used after close"

  let append w payload =
    check_open w;
    let start = Unix.lseek w.fd 0 Unix.SEEK_CUR in
    (try write_all ?chaos:w.chaos ~point:w.point w.fd (frame payload)
     with e ->
       (* Repair: a failed append may have left a prefix of the frame on
          disk; truncating back keeps the store appendable — without
          this, a retried append would land after torn bytes and the
          recovery scan would discard it along with the tear. *)
       (try
          Unix.ftruncate w.fd start;
          ignore (Unix.lseek w.fd start Unix.SEEK_SET)
        with Unix.Unix_error _ -> ());
       raise e);
    if w.durable then Unix.fsync w.fd else w.dirty <- true

  let sync w =
    check_open w;
    if w.dirty then begin
      Unix.fsync w.fd;
      w.dirty <- false
    end

  let close w =
    check_open w;
    (try sync w with Unix.Unix_error _ -> ());
    w.closed <- true;
    try Unix.close w.fd with Unix.Unix_error _ -> ()
end
