type warning = { context : string; detail : string; fallback : string }

let lock = Mutex.create ()
let store : warning list ref = ref []

let record ~context ~detail ~fallback =
  Mutex.protect lock (fun () ->
      store := { context; detail; fallback } :: !store)

let drain () =
  Mutex.protect lock (fun () ->
      let ws = List.rev !store in
      store := [];
      ws)

let peek () = Mutex.protect lock (fun () -> List.rev !store)
let count () = Mutex.protect lock (fun () -> List.length !store)

let protect ~context ~recover f =
  try f ()
  with e -> (
    match recover e with
    | None -> raise e
    | Some (fallback, v) ->
        record ~context ~detail:(Printexc.to_string e) ~fallback;
        v)

let pp_warning ppf w =
  Format.fprintf ppf "%s: %s -> fell back to %s" w.context w.detail w.fallback
