(** Deterministic fault injection for resilience testing.

    Decisions are a pure function of [(seed, key, attempt)] — no global
    RNG state — so the same faults strike the same tasks regardless of
    scheduling order or domain count, and a chaos run is exactly
    replayable. A task that fails on attempt 0 will (at realistic rates)
    succeed when retried, which is how the campaign-under-chaos tests
    prove that retries restore the fault-free curves. *)

exception Injected of string
(** The synthetic failure raised by {!inject}. Carries the key/attempt so
    logs show which task was hit. *)

type t

val create :
  ?failure_rate:float ->
  ?delay_rate:float ->
  ?delay:float ->
  ?hang_rate:float ->
  ?hang:(unit -> unit) ->
  ?sleep:(float -> unit) ->
  seed:int64 ->
  unit ->
  t
(** [failure_rate] (default 0) is the probability that a given
    [(key, attempt)] raises {!Injected}; [delay_rate] (default 0) the
    probability that it first sleeps [delay] seconds (default 0.01,
    via [sleep], default [Unix.sleepf]); [hang_rate] (default 0) the
    probability that it never returns ([hang], default: sleep forever) —
    the drill for watchdog supervision: only a process-isolated backend
    ([Parallel.Proc_pool] with a [task_timeout]) can recover a hung
    task, so do not inject hangs into domain pools. Rates must lie in
    [\[0, 1\]]. *)

val should_fail : t -> key:int -> attempt:int -> bool
(** Pure decision: would [inject] raise for this [(key, attempt)]? *)

val should_delay : t -> key:int -> attempt:int -> bool
(** Pure decision: would [inject] sleep for this [(key, attempt)]? *)

val should_hang : t -> key:int -> attempt:int -> bool
(** Pure decision: would [inject] hang this [(key, attempt)]? *)

val inject : t -> key:int -> attempt:int -> unit
(** Possibly sleep, then possibly raise {!Injected}, then possibly hang,
    per the rates (in that order: an attempt drawn for both failure and
    hang raises rather than hangs, so {!injected_failures} stays
    accountable). Call it at the head of a task body (or before an I/O
    write) to simulate a crash at that point. *)

val injected_failures : t -> int
(** How many times {!inject} actually raised so far (thread-safe
    counter) — lets tests assert that chaos really struck. *)

val wrap : t -> key:int -> (attempt:int -> 'a) -> attempt:int -> 'a
(** [wrap t ~key f] is [f] preceded by [inject t ~key]: convenient to
    compose with {!Retry.run}. *)
