type plan =
  | Write_all
  | Short_write of int
  | Fail_after of int * Unix.error
  | Crash_after of int

type t = {
  short_write_rate : float;
  error_rate : float;
  crash_at : (string * int) list;
  seed : int64;
  lock : Mutex.t;
  seqs : (string, int) Hashtbl.t;  (* per-point write counter *)
  short_writes : int Atomic.t;
  errors : int Atomic.t;
}

let check_rate name r =
  if r < 0.0 || r > 1.0 then
    invalid_arg (Printf.sprintf "Chaos_fs.create: %s outside [0, 1]" name)

let create ?(short_write_rate = 0.0) ?(error_rate = 0.0) ?(crash_at = [])
    ~seed () =
  check_rate "short_write_rate" short_write_rate;
  check_rate "error_rate" error_rate;
  List.iter
    (fun (point, n) ->
      if point = "" then invalid_arg "Chaos_fs.create: empty crash point name";
      if n < 0 then
        invalid_arg
          (Printf.sprintf "Chaos_fs.create: negative crash index for %s" point))
    crash_at;
  {
    short_write_rate;
    error_rate;
    crash_at;
    seed;
    lock = Mutex.create ();
    seqs = Hashtbl.create 8;
    short_writes = Atomic.make 0;
    errors = Atomic.make 0;
  }

let draw t ~salt ~point ~seq =
  let h = Numerics.Checksum.fnv1a64 salt in
  let h = Numerics.Checksum.fold_int h (Int64.to_int t.seed) in
  let h = Numerics.Checksum.fnv1a64 (Numerics.Checksum.to_hex h ^ point) in
  let h = Numerics.Checksum.fold_int h seq in
  Numerics.Checksum.to_unit_float h

(* A deterministic prefix length strictly inside (0, len): the injected
   event happens mid-record, leaving a genuinely torn tail. *)
let prefix_of t ~salt ~point ~seq ~len =
  if len <= 1 then len
  else 1 + int_of_float (draw t ~salt:(salt ^ "-prefix") ~point ~seq
                         *. float_of_int (len - 1))

let plan t ~point ~len =
  let seq =
    Mutex.protect t.lock (fun () ->
        let seq = Option.value ~default:0 (Hashtbl.find_opt t.seqs point) in
        Hashtbl.replace t.seqs point (seq + 1);
        seq)
  in
  if List.mem (point, seq) t.crash_at then
    Crash_after (prefix_of t ~salt:"chaos-fs-crash" ~point ~seq ~len)
  else if len > 0 && draw t ~salt:"chaos-fs-error" ~point ~seq < t.error_rate
  then begin
    Atomic.incr t.errors;
    let err =
      if draw t ~salt:"chaos-fs-errno" ~point ~seq < 0.5 then Unix.EIO
      else Unix.ENOSPC
    in
    Fail_after (prefix_of t ~salt:"chaos-fs-error" ~point ~seq ~len, err)
  end
  else if len > 1
          && draw t ~salt:"chaos-fs-short" ~point ~seq < t.short_write_rate
  then begin
    Atomic.incr t.short_writes;
    Short_write (prefix_of t ~salt:"chaos-fs-short" ~point ~seq ~len)
  end
  else Write_all

let injected_errors t = Atomic.get t.errors
let injected_short_writes t = Atomic.get t.short_writes

let parse_crash_at spec =
  match String.rindex_opt spec ':' with
  | None -> None
  | Some i ->
      let point = String.sub spec 0 i in
      let n = String.sub spec (i + 1) (String.length spec - i - 1) in
      if point = "" then None
      else
        match int_of_string_opt n with
        | Some n when n >= 0 -> Some (point, n)
        | _ -> None
