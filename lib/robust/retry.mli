(** Bounded retries with deterministic jittered backoff.

    A transient failure (an injected chaos fault, a flaky I/O error)
    should cost one retry, not a whole sweep. The policy is a value, so
    the same policy object gives the same delays on every run: jitter is
    derived from [(seed, key, attempt)] by hashing, never from global
    RNG state, which keeps parallel campaigns replayable.

    {2 Attempt numbering}

    One convention everywhere: attempts are numbered from 0, and
    attempt [k > 0] is preceded by exactly one backoff delay,
    [delay_before ~attempt:k].

    - {!run} calls its body with [~attempt:0] first; a body observing
      [attempt = k] is on its [k+1]-th try.
    - {!delay_before} is the sleep {e before} attempt [k], so its domain
      is [k >= 1]: the first attempt is never delayed, and asking for
      the "delay before attempt 0" is a programming error
      ([Invalid_argument]), not 0.
    - The delays actually slept by [run ~key] are therefore exactly
      [delay_before ~key ~attempt:1; delay_before ~key ~attempt:2; …]
      up to [attempts - 1] of them — a pure function of
      [(policy, key)], asserted against an injected [sleep] in the test
      suite. The numbering is identical in both jitter modes:
      [decorrelated] changes how the delay before attempt [k] is
      {e computed} (see below), never which attempts are delayed.

    {2 Jitter modes}

    - {e Exponential} (default): delay before attempt [k] is
      [base * multiplier^(k-1) * (1 - jitter + jitter * u_k)].
      Same-key clients share the schedule shape; the [jitter] fraction
      spreads them inside each step.
    - {e Decorrelated} ([~decorrelated:true]): the AWS "decorrelated
      jitter" scheme, [d_k = base + u_k * (3 d_(k-1) - base)] with
      [d_0 = base] — each delay is drawn between the base and three
      times the previous delay, so a thundering herd of clients
      retrying the same overloaded server decorrelates within a couple
      of attempts instead of re-colliding at every exponential step.
      [multiplier] and [jitter] are ignored in this mode.

    Both modes clamp every delay to [max_delay] and both stay
    deterministic: [u_k] is a pure function of [(seed, key, attempt)],
    never global RNG state, so parallel campaigns remain replayable. *)

type t = private {
  attempts : int;  (** total tries, including the first; [>= 1] *)
  base_delay : float;  (** seconds before the first retry *)
  multiplier : float;  (** exponential backoff factor between retries *)
  jitter : float;
      (** fraction of each delay that is randomised: the delay for retry
          [k] is [base * multiplier^k * (1 - jitter + jitter * u)] with
          [u] in [\[0, 1)] a pure function of [(seed, key, attempt)] *)
  decorrelated : bool;
      (** when set, delays come from the decorrelated-jitter recurrence
          instead of the exponential formula (see above); off by
          default *)
  max_delay : float;  (** upper clamp on every delay; [infinity] = none *)
  seed : int64;
}

val no_retry : t
(** One attempt, no backoff: failures surface immediately. *)

val make :
  ?attempts:int ->
  ?base_delay:float ->
  ?multiplier:float ->
  ?jitter:float ->
  ?decorrelated:bool ->
  ?max_delay:float ->
  ?seed:int64 ->
  unit ->
  t
(** Defaults: 3 attempts, 0.05 s base delay, multiplier 2, jitter 0.5,
    exponential mode ([decorrelated = false]), no [max_delay] clamp,
    seed 0. Raises [Invalid_argument] on [attempts < 1], negative
    delays/multiplier/[max_delay], or jitter outside [\[0, 1\]]. *)

val delay_before : t -> key:int -> attempt:int -> float
(** Backoff before attempt [attempt] (>= 1) of task [key]. Deterministic:
    equal inputs give equal delays. *)

val run :
  ?sleep:(float -> unit) ->
  t ->
  key:int ->
  (attempt:int -> 'a) ->
  ('a, exn) result
(** [run policy ~key f] calls [f ~attempt:0]; on an exception it backs
    off ([sleep], default [Unix.sleepf]) and retries with the next
    attempt number, up to [attempts] tries in total. Returns the first
    success or [Error e] with the last exception. [key] distinguishes
    tasks so their jitter streams do not collide. *)
