(** Reservation budget for the pipeline itself.

    The paper's applications run inside a fixed-length reservation: work
    not committed before the deadline is lost. A campaign sweep is in
    the same situation when it runs under a batch scheduler, so the
    runner threads one of these through the sweep and stops dispatching
    new grid points once the budget is exhausted — completed points are
    already in the journal, and the run exits with an explicit partial
    marker instead of being killed mid-write.

    A deadline is armed once ({!start}) and read many times, possibly
    from several domains: {!remaining}/{!expired} are pure reads of the
    clock and never mutate. The clock is injectable for tests; the
    default is [Unix.gettimeofday] (the sub-second drift of a wall clock
    over a reservation is negligible next to the safety margin any
    sensible budget keeps). *)

type t

exception Deadline_exceeded
(** Raised by {!check} (and by task wrappers in
    [Experiments.Runner]) when the budget has run out. *)

val unlimited : t
(** Never expires: [remaining] is [infinity]. The default everywhere a
    deadline is optional. *)

val start : ?now:(unit -> float) -> budget:float -> unit -> t
(** Arm a deadline [budget] seconds from now. [budget] must be finite
    and [>= 0] ([0] is legal and immediately expired — useful to drill
    the partial-exit path deterministically). [now] (default
    [Unix.gettimeofday]) is sampled once here and again at every
    {!remaining}/{!expired} query. *)

val is_unlimited : t -> bool

val budget : t -> float
(** The armed budget in seconds; [infinity] for {!unlimited}. *)

val elapsed : t -> float
(** Seconds since {!start}; [0.] for {!unlimited}. *)

val remaining : t -> float
(** [budget - elapsed], clamped to [>= 0]; [infinity] for
    {!unlimited}. *)

val expired : t -> bool
(** [remaining t = 0]. Thread-safe (reads the clock, mutates nothing). *)

val check : t -> unit
(** Raise {!Deadline_exceeded} if {!expired}. *)
