type t = {
  attempts : int;
  base_delay : float;
  multiplier : float;
  jitter : float;
  decorrelated : bool;
  max_delay : float;
  seed : int64;
}

let make ?(attempts = 3) ?(base_delay = 0.05) ?(multiplier = 2.0)
    ?(jitter = 0.5) ?(decorrelated = false) ?(max_delay = infinity)
    ?(seed = 0L) () =
  if attempts < 1 then invalid_arg "Retry.make: attempts < 1";
  if base_delay < 0.0 then invalid_arg "Retry.make: base_delay < 0";
  if multiplier < 0.0 then invalid_arg "Retry.make: multiplier < 0";
  if jitter < 0.0 || jitter > 1.0 then invalid_arg "Retry.make: jitter outside [0, 1]";
  if max_delay < 0.0 then invalid_arg "Retry.make: max_delay < 0";
  { attempts; base_delay; multiplier; jitter; decorrelated; max_delay; seed }

let no_retry = make ~attempts:1 ~base_delay:0.0 ()

let unit_draw t ~key ~attempt =
  let h = Numerics.Checksum.fnv1a64 "retry" in
  let h = Numerics.Checksum.fold_int h (Int64.to_int t.seed) in
  let h = Numerics.Checksum.fold_int h key in
  let h = Numerics.Checksum.fold_int h attempt in
  Numerics.Checksum.to_unit_float h

(* Decorrelated jitter (the "decorrelated" scheme of the AWS backoff
   study): d_k = base + u_k * (3 d_{k-1} - base) with d_0 = base, each
   delay drawn uniformly between the base and three times the previous
   delay. Unrolled from attempt 1 so the whole sequence stays a pure
   function of (policy, key) — stateless like the exponential mode,
   replayable like everything else built on Checksum draws. *)
let decorrelated_delay t ~key ~attempt =
  if t.base_delay <= 0.0 then 0.0
  else begin
    let prev = ref t.base_delay in
    for k = 1 to attempt do
      let u = unit_draw t ~key ~attempt:k in
      prev :=
        Float.min t.max_delay
          (t.base_delay +. (u *. ((3.0 *. !prev) -. t.base_delay)))
    done;
    !prev
  end

let delay_before t ~key ~attempt =
  if attempt < 1 then invalid_arg "Retry.delay_before: attempt < 1";
  if t.decorrelated then decorrelated_delay t ~key ~attempt
  else
    let nominal =
      t.base_delay *. (t.multiplier ** float_of_int (attempt - 1))
    in
    Float.min t.max_delay
      (nominal
      *. (1.0 -. t.jitter +. (t.jitter *. unit_draw t ~key ~attempt)))

let run ?(sleep = Unix.sleepf) t ~key f =
  let rec go attempt =
    match f ~attempt with
    | v -> Ok v
    | exception e ->
        if attempt + 1 >= t.attempts then Error e
        else begin
          let d = delay_before t ~key ~attempt:(attempt + 1) in
          if d > 0.0 then sleep d;
          go (attempt + 1)
        end
  in
  go 0
