(** Graceful numerical degradation.

    A solver that fails to converge in the middle of a multi-hour sweep
    should not abort it: the caller usually has a safe closed-form
    fallback (Young/Daly instead of the numerical threshold, the equal
    split instead of the optimised offsets). [protect] runs the primary
    computation, and on a recoverable exception substitutes the fallback
    while recording a structured warning, so degradations are visible in
    reports instead of silently swallowed or fatally raised.

    The warning store is global and thread-safe (campaign tasks run on
    multiple domains). *)

type warning = {
  context : string;  (** where the degradation happened, with parameters *)
  detail : string;  (** the exception that triggered it *)
  fallback : string;  (** what was used instead *)
}

val protect :
  context:string -> recover:(exn -> (string * 'a) option) -> (unit -> 'a) -> 'a
(** [protect ~context ~recover f] returns [f ()]. If [f] raises [e] and
    [recover e = Some (what, v)], a warning is recorded and [v] is
    returned; if [recover e = None] the exception propagates unchanged
    (so genuine bugs still surface). *)

val record : context:string -> detail:string -> fallback:string -> unit
(** Record a degradation that was handled by other means. *)

val drain : unit -> warning list
(** All warnings recorded since the last [drain], oldest first; clears
    the store. *)

val peek : unit -> warning list
(** Like {!drain} without clearing. *)

val count : unit -> int

val pp_warning : Format.formatter -> warning -> unit
