(** Append-only campaign journal: crash-safe persistence of completed
    grid points.

    The journal applies the paper's own lesson to the reproduction
    pipeline: a long sweep commits each completed [(c, strategy, t)]
    point to disk the moment it is computed, so an interrupted campaign
    resumes from its last checkpoint instead of restarting from zero.

    On-disk format (text, one record per line):
    {v
    # fixedlen-journal v1 <key>
    p <c> <strategy> <t> <mean> <ci95> <failures> <checkpoints> <fnv64>
    v}
    where [<key>] identifies the producing spec (a content hash of the
    spec and its seed — see [Experiments.Spec.fingerprint]) and [<fnv64>]
    is the FNV-1a checksum of the rest of the line. Floats are printed
    with ["%.17g"], so journaled values round-trip bit-exactly and a
    resumed campaign reproduces the same curves as an uninterrupted one.

    Recovery rules at {!open_}:
    - missing file: created with a fresh header;
    - key mismatch or unrecognised header: the journal is reset (with a
      warning) unless [strict] is set, in which case it fails — [strict]
      is the [--resume] contract, where silently discarding someone's
      journal would be worse than stopping;
    - corrupted or truncated tail (a line that does not parse or whose
      checksum disagrees): the tail is truncated and the journal
      continues from the last good record — the expected outcome of a
      crash mid-append.

    [append] is thread-safe (campaign tasks run on multiple domains);
    each record is flushed on append and fsync'd on {!sync}/{!close}
    (batch boundaries), bounding loss to the current batch. *)

type entry = {
  c : float;
  strategy : string;  (** display name; must contain no whitespace *)
  t : float;
  mean : float;
  ci95 : float;
  mean_failures : float;
  mean_checkpoints : float;
}

type t

val open_ :
  ?chaos:Chaos.t -> ?strict:bool -> path:string -> key:string -> unit -> t
(** Open (creating or recovering as described above) a journal for
    producer [key]. [chaos], if given, injects faults into subsequent
    {!append} calls (for resilience tests). Raises [Failure] in [strict]
    mode on a key/header mismatch, and [Invalid_argument] on a key
    containing whitespace. *)

val warnings : t -> string list
(** Human-readable notes from recovery at open time (reset journal,
    truncated tail, …), oldest first. *)

val entries : t -> entry list
(** Entries live in the journal, in append order (loaded + appended). *)

val length : t -> int

val find : t -> c:float -> strategy:string -> t:float -> entry option
(** Lookup by grid point. Coordinates compare exactly; this is sound
    because journaled floats round-trip through ["%.17g"]. *)

val append : t -> entry -> unit
(** Persist one completed point (thread-safe, atomic line append,
    flushed). Raises [Invalid_argument] if [strategy] contains
    whitespace, [Chaos.Injected] under injection. *)

val sync : t -> unit
(** fsync the file if any record was appended since the last sync. *)

val close : t -> unit
(** {!sync} then close. The journal must not be used afterwards. *)

val path : t -> string
val key : t -> string
