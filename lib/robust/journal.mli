(** Append-only campaign journal: crash-safe persistence of completed
    grid points.

    The journal applies the paper's own lesson to the reproduction
    pipeline: a long sweep commits each completed [(c, strategy, t)]
    point to disk the moment it is computed, so an interrupted campaign
    resumes from its last checkpoint instead of restarting from zero.

    On-disk format: a {!Durable.Framed} store —
    {v
    # fixedlen-journal v2 <key>
    <len> p <c> <strategy> <t> <mean> <ci95> <failures> <checkpoints> <fnv64>
    v}
    where [<key>] identifies the producing spec (a content hash of the
    spec and its seed — see [Experiments.Spec.fingerprint]) and each
    record is length-prefixed and FNV-64-checksummed by the frame
    layer. Floats are printed with ["%.17g"], so journaled values
    round-trip bit-exactly and a resumed campaign reproduces the same
    curves as an uninterrupted one.

    Recovery rules at {!open_}:
    - missing or empty file: created with a fresh header;
    - corrupted or truncated tail (a torn frame, a checksum mismatch, or
      an unparsable record): the tail is truncated and the journal
      continues from the last good record — the expected outcome of a
      crash mid-append;
    - well-formed header for a {e different} spec/seed: quarantined to
      [<path>.quarantine] and restarted (with a warning) — unless
      [strict] is set, in which case it fails: [strict] is the
      [--resume] contract, where silently discarding someone's journal
      would be worse than stopping;
    - unrecognisable or torn header: quarantined and restarted in
      {e both} modes — an irrecoverably corrupt journal costs a
      recomputation of this point, never the whole campaign.

    [append] is thread-safe (campaign tasks run on multiple domains).
    With [durable] (the default) every record is fsync'd as it is
    appended, bounding loss after a crash to the record being written;
    with [~durable:false] records are only flushed per append and
    fsync'd at {!sync}/{!close} (batch boundaries). *)

type entry = {
  c : float;
  strategy : string;  (** display name; must contain no whitespace *)
  t : float;
  mean : float;
  ci95 : float;
  mean_failures : float;
  mean_checkpoints : float;
}

type t

val open_ :
  ?chaos:Chaos.t ->
  ?fs:Chaos_fs.t ->
  ?durable:bool ->
  ?strict:bool ->
  ?point:string ->
  path:string ->
  key:string ->
  unit ->
  t
(** Open (creating or recovering as described above) a journal for
    producer [key]. [chaos], if given, injects synthetic failures into
    subsequent {!append} calls; [fs] injects filesystem faults (short
    writes, [EIO]/[ENOSPC], crash points) into the write path itself.
    [point] (default ["journal"]) names this journal's write site for
    [fs] fault selection — a sharded campaign opens each shard's ledger
    under its own point (["shard0"], ["shard1"], …) so a crash spec like
    [--chaos-crash-at shard0:2] kills exactly one worker. Raises
    [Failure] in [strict] mode on a key mismatch, [Failure] with a
    [cannot open journal] message on an unwritable path, and
    [Invalid_argument] on a key or point containing whitespace. *)

val warnings : t -> string list
(** Human-readable notes from recovery at open time (quarantined
    journal, truncated tail, …), oldest first. *)

val entries : t -> entry list
(** Entries live in the journal, in append order (loaded + appended). *)

val length : t -> int

val find : t -> c:float -> strategy:string -> t:float -> entry option
(** Lookup by grid point. Coordinates compare exactly; this is sound
    because journaled floats round-trip through ["%.17g"]. *)

val append : t -> entry -> unit
(** Persist one completed point (thread-safe, framed append, fsync'd
    when the journal is durable). If the write fails midway the file is
    repaired back to the previous record boundary before the exception
    propagates, so a retried append finds a clean tail. Raises
    [Invalid_argument] if [strategy] contains whitespace,
    [Chaos.Injected] under injection, [Unix.Unix_error] on (injected or
    real) I/O failure. *)

val sync : t -> unit
(** fsync the file if any record was appended since the last sync (a
    no-op on durable journals, which fsync per append). *)

val close : t -> unit
(** {!sync} then close. The journal must not be used afterwards. *)

val path : t -> string
val key : t -> string
