exception Deadline_exceeded

let () =
  Printexc.register_printer (function
    | Deadline_exceeded ->
        Some
          "Robust.Deadline.Deadline_exceeded: reservation budget exhausted \
           (completed points are preserved in the journal, if any)"
    | _ -> None)

type t = { now : unit -> float; started : float; budget : float }

let unlimited = { now = (fun () -> 0.0); started = 0.0; budget = infinity }

let start ?(now = Unix.gettimeofday) ~budget () =
  if Float.is_nan budget || budget = infinity || budget < 0.0 then
    invalid_arg "Deadline.start: budget must be finite and >= 0";
  { now; started = now (); budget }

let is_unlimited t = t.budget = infinity
let budget t = t.budget
let elapsed t = if is_unlimited t then 0.0 else t.now () -. t.started
let remaining t = Float.max 0.0 (t.budget -. elapsed t)
let expired t = (not (is_unlimited t)) && t.budget -. elapsed t <= 0.0
let check t = if expired t then raise Deadline_exceeded
