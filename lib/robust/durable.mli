(** Crash-consistent writes for every artifact the pipeline produces.

    The paper's premise is that work not captured by a {e completed}
    checkpoint is lost; this module makes our own checkpoints (journal,
    trace files, CSV, reports) live up to that definition. Two
    disciplines, one per artifact shape:

    - {e atomic publish} ({!write_atomic}) for whole-file artifacts:
      temp file, full write (looping on short writes), [fsync] of the
      file, [rename] over the destination, [fsync] of the directory.
      Readers see the old file or the new one, never a torn middle.
    - {e framed append} ({!Framed}) for append-only stores: each record
      is length-prefixed and FNV-64-checksummed, so the recovery scan
      can tell a clean tail from a torn one without trusting record
      contents, and truncate exactly at the first bad byte.

    Files whose {e header} is unreadable are not silently destroyed:
    {!quarantine} moves them to [<path>.quarantine] with a structured
    reason sidecar, and the producer restarts from scratch — a
    quarantined journal costs a recomputation, never a crash.

    All write paths accept a {!Chaos_fs.t} for deterministic fault
    injection (short writes, [EIO]/[ENOSPC], named crash points). *)

val write_atomic : ?chaos:Chaos_fs.t -> ?point:string -> path:string ->
  string -> unit
(** [write_atomic ~path content] publishes [content] at [path]
    atomically and durably (see above). The temporary file
    [path ^ ".tmp"] is removed on failure. [point] (default
    ["publish"]) names the write site for chaos injection. *)

val quarantine : path:string -> reason:string -> string
(** Move [path] to [path ^ ".quarantine"] (replacing any previous
    quarantine) and record [reason] in a [.quarantine.reason] sidecar
    with [file:]/[quarantined-to:]/[reason:] fields. Returns the
    quarantine path. The sidecar write is best-effort: quarantining
    itself must not fail on the sick disk it exists to survive. *)

val fsync_dir : string -> unit
(** fsync a directory so a just-renamed entry survives a crash.
    Best-effort: platforms that cannot open or fsync directories are
    silently tolerated. *)

(** Length-prefixed, checksummed record framing for append-only files.

    On-disk layout, after a caller-supplied header line:
    {v
    <header>\n
    <len> <payload bytes> <fnv64-hex>\n
    ...
    v}
    [<len>] is the decimal byte length of the payload, so payloads may
    contain anything — newlines, spaces, binary — and a recovery scan
    never misparses content as structure. *)
module Framed : sig
  type scan = {
    header : string option;
        (** the first line; [None] if no newline exists yet (empty file
            or torn header write) *)
    records : (int * string) list;
        (** [(start_offset, payload)] of every intact record, oldest
            first, stopping at the first damaged byte *)
    tail_error : (int * string) option;
        (** where and why the scan stopped early; [None] means the file
            is clean to its last byte *)
    length : int;  (** file length in bytes *)
  }

  val scan : path:string -> scan
  (** Recovery scan. Never raises on damaged content (only on I/O
      errors): damage is reported as a short [records] list plus
      [tail_error]. Truncating the file at [tail_error]'s offset (or at
      the start offset of the first record whose {e payload} the caller
      rejects) restores a clean store. *)

  val frame : string -> string
  (** The exact bytes {!append} writes for a payload — exposed so tests
      can build corrupt files surgically. *)

  type writer

  val create :
    ?chaos:Chaos_fs.t -> ?durable:bool -> point:string -> path:string ->
    header:string -> unit -> writer
  (** Start a fresh store (truncating any existing file): write the
      header line, and — when [durable] (default true) — fsync the file
      and its directory so the store itself survives a crash. [point]
      names the chaos-injection site; the header write uses
      [point ^ "-header"]. *)

  val open_append :
    ?chaos:Chaos_fs.t -> ?durable:bool -> point:string -> path:string ->
    keep:int -> unit -> writer
  (** Reopen an existing store for appending, first truncating it to
      [keep] bytes — the caller passes the clean prefix length its
      {!scan} established. *)

  val append : writer -> string -> unit
  (** Append one framed record; fsync it when the writer is durable.
      If the write fails midway (injected or real [EIO]/[ENOSPC]), the
      store is repaired by truncating back to the record's start before
      the exception propagates, so a retried append lands on a clean
      tail. *)

  val sync : writer -> unit
  (** fsync if any record was appended since the last sync (a no-op on
      durable writers, which fsync per append). *)

  val close : writer -> unit
  (** {!sync} (best-effort) then close the descriptor. The writer must
      not be used afterwards. *)
end
