(** Deterministic filesystem fault injection for durability drills.

    The companion of {!Chaos} one layer down: where [Chaos] strikes task
    bodies, [Chaos_fs] strikes the write path of every durable artifact
    (journal, trace files, CSV, reports). Decisions are a pure function
    of [(seed, point, seq)], where [point] names the write site (e.g.
    ["journal"]) and [seq] counts writes at that site — so the same
    faults strike the same writes on every replay, regardless of
    scheduling.

    Three fault families, mirroring what real filesystems do:
    - {e short writes}: [write(2)] reports fewer bytes than asked —
      harmless iff the caller loops, which is exactly what the drill
      proves;
    - {e I/O errors}: [EIO] or [ENOSPC] raised {e after} a prefix of
      the payload reached the file, as a full disk does;
    - {e named crash points}: at write [seq] of point [p] (selected with
      [crash_at = [(p, seq)]], the CLI's [--chaos-crash-at p:seq]), a
      prefix is written and fsync'd and then the process SIGKILLs
      itself — a guaranteed torn record on disk, the raw material of
      every recovery test. *)

type plan =
  | Write_all  (** no injection: write the whole payload *)
  | Short_write of int
      (** the first [write] call must report only this many bytes
          written; the caller's loop then finishes the rest normally *)
  | Fail_after of int * Unix.error
      (** write this prefix, then raise [Unix.Unix_error] *)
  | Crash_after of int
      (** write this prefix, fsync it, then SIGKILL the process *)

type t

val create :
  ?short_write_rate:float ->
  ?error_rate:float ->
  ?crash_at:(string * int) list ->
  seed:int64 ->
  unit ->
  t
(** [short_write_rate] (default 0) is the probability that a write is
    split; [error_rate] (default 0) the probability that it fails with
    [EIO]/[ENOSPC] after a partial write; [crash_at] the named crash
    points. Rates must lie in [\[0, 1\]]; crash indices must be [>= 0].
    Raises [Invalid_argument] otherwise. *)

val plan : t -> point:string -> len:int -> plan
(** Decide the fate of the next [len]-byte payload written at [point],
    advancing the point's write counter (thread-safe). Injected prefixes
    are strictly inside [(0, len)] so the record is genuinely torn.
    Crash points take precedence over drawn faults; a retried write
    draws fresh (its [seq] advanced), so error chaos at realistic rates
    is survivable by retry, like {!Chaos}. *)

val injected_errors : t -> int
(** How many [Fail_after] plans were issued so far — lets tests assert
    that chaos really struck. *)

val injected_short_writes : t -> int

val parse_crash_at : string -> (string * int) option
(** Parse a [POINT:N] crash-point spec ([None] on malformed input);
    shared by the CLI flag and tests. *)
