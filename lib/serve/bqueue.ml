type 'a t = {
  items : 'a Queue.t;
  capacity : int;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Bqueue.create: capacity < 0";
  {
    items = Queue.create ();
    capacity;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_push t x =
  locked t (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  locked t (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.nonempty t.lock
      done;
      Queue.take_opt t.items)

let drain_locked t max =
  let rec go acc n =
    if n >= max then List.rev acc
    else
      match Queue.take_opt t.items with
      | None -> List.rev acc
      | Some x -> go (x :: acc) (n + 1)
  in
  go [] 0

let pop_batch t ~max =
  if max < 1 then invalid_arg "Bqueue.pop_batch: max < 1";
  locked t (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.nonempty t.lock
      done;
      drain_locked t max)

let try_drain t ~max =
  if max < 1 then invalid_arg "Bqueue.try_drain: max < 1";
  locked t (fun () -> drain_locked t max)

let evict t ~f =
  locked t (fun () ->
      let kept = Queue.create () in
      let out = ref [] in
      Queue.iter
        (fun x -> if f x then out := x :: !out else Queue.push x kept)
        t.items;
      Queue.clear t.items;
      Queue.transfer kept t.items;
      List.rev !out)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.nonempty)

let length t = locked t (fun () -> Queue.length t.items)
