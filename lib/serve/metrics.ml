type t = {
  accepted : int Atomic.t;
  shed : int Atomic.t;
  requests : int Atomic.t;
  answered : int Atomic.t;
  timeouts : int Atomic.t;
  failed : int Atomic.t;
  batches : int Atomic.t;
  idle_closed : int Atomic.t;
}

let create () =
  {
    accepted = Atomic.make 0;
    shed = Atomic.make 0;
    requests = Atomic.make 0;
    answered = Atomic.make 0;
    timeouts = Atomic.make 0;
    failed = Atomic.make 0;
    batches = Atomic.make 0;
    idle_closed = Atomic.make 0;
  }

let bump c = Atomic.incr c
let incr_accepted t = bump t.accepted
let incr_shed t = bump t.shed
let incr_requests t = bump t.requests
let incr_answered t = bump t.answered
let incr_timeouts t = bump t.timeouts
let incr_failed t = bump t.failed
let incr_batches t = bump t.batches
let incr_idle_closed t = bump t.idle_closed
let accepted t = Atomic.get t.accepted
let shed t = Atomic.get t.shed
let requests t = Atomic.get t.requests
let answered t = Atomic.get t.answered
let timeouts t = Atomic.get t.timeouts
let failed t = Atomic.get t.failed
let batches t = Atomic.get t.batches
let idle_closed t = Atomic.get t.idle_closed

(* New fields go at the end: drill scripts match the head of this line
   with substring greps. *)
let summary t =
  Printf.sprintf
    "accepted=%d shed=%d requests=%d answered=%d timeouts=%d failed=%d \
     batches=%d idle-closed=%d"
    (accepted t) (shed t) (requests t) (answered t) (timeouts t) (failed t)
    (batches t) (idle_closed t)
