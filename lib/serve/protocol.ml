type query = {
  params : Fault.Params.t;
  horizon : float;
  quantum : float;
  tleft : float;
  kleft : int option;
  recovering : bool;
}

type platform = {
  plat_params : Fault.Params.t;
  plat_horizon : float;
  plat_quantum : float;
}

type session_query = {
  sid : int;
  sq_tleft : float;
  sq_kleft : int option;
  sq_recovering : bool;
}

type request =
  | Ping
  | Stats
  | Query of query
  | Session_open of platform
  | Session_query of session_query
  | Session_close of int

type answer = { next : float; k : int; work : float }

type response =
  | Answer of answer
  | Stats_reply of Experiments.Strategy.Cache.stats
  | Pong
  | Overloaded
  | Timeout
  | Failed of string
  | Session of int

let g = Printf.sprintf "%.17g"

let request_to_string = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Query q ->
      Printf.sprintf
        "query lambda=%s c=%s r=%s d=%s horizon=%s quantum=%s tleft=%s \
         kleft=%s recovering=%d"
        (g q.params.Fault.Params.lambda)
        (g q.params.Fault.Params.c) (g q.params.Fault.Params.r)
        (g q.params.Fault.Params.d) (g q.horizon) (g q.quantum) (g q.tleft)
        (match q.kleft with None -> "-" | Some k -> string_of_int k)
        (if q.recovering then 1 else 0)
  | Session_open p ->
      Printf.sprintf
        "session-open lambda=%s c=%s r=%s d=%s horizon=%s quantum=%s"
        (g p.plat_params.Fault.Params.lambda)
        (g p.plat_params.Fault.Params.c)
        (g p.plat_params.Fault.Params.r)
        (g p.plat_params.Fault.Params.d)
        (g p.plat_horizon) (g p.plat_quantum)
  | Session_query sq ->
      Printf.sprintf "session-query sid=%d tleft=%s kleft=%s recovering=%d"
        sq.sid (g sq.sq_tleft)
        (match sq.sq_kleft with None -> "-" | Some k -> string_of_int k)
        (if sq.sq_recovering then 1 else 0)
  | Session_close sid -> Printf.sprintf "session-close sid=%d" sid

(* key=value fields after the leading keyword; order-insensitive,
   duplicates rejected, every field mandatory — a stricter parse than
   the single producer needs, but the journal outlives the producer. *)
let fields_of tokens =
  let rec go acc = function
    | [] -> Ok acc
    | tok :: rest -> (
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "malformed field %S" tok)
        | Some i ->
            let k = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            if List.mem_assoc k acc then
              Error (Printf.sprintf "duplicate field %S" k)
            else go ((k, v) :: acc) rest)
  in
  go [] tokens

let float_field fields name =
  match List.assoc_opt name fields with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "bad float %S for %S" v name))

let int_field fields name =
  match List.assoc_opt name fields with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "bad int %S for %S" v name))

let ( let* ) = Result.bind

(* Shared validation behind both the text and binary decoders, so a
   query is legal or not independently of its spelling. *)

let validate_params ~lambda ~c ~r ~d =
  match Fault.Params.make ~lambda ~c ~r ~d with
  | p -> Ok p
  | exception Invalid_argument msg -> Error msg

let validate_platform ~lambda ~c ~r ~d ~horizon ~quantum =
  let* plat_params = validate_params ~lambda ~c ~r ~d in
  if quantum <= 0.0 then Error "quantum must be > 0"
  else if horizon <= 0.0 then Error "horizon must be > 0"
  else Ok { plat_params; plat_horizon = horizon; plat_quantum = quantum }

let validate_query ~lambda ~c ~r ~d ~horizon ~quantum ~tleft ~kleft ~recovering
    =
  let* p = validate_platform ~lambda ~c ~r ~d ~horizon ~quantum in
  Ok
    {
      params = p.plat_params;
      horizon = p.plat_horizon;
      quantum = p.plat_quantum;
      tleft;
      kleft;
      recovering;
    }

let kleft_field fields =
  match List.assoc_opt "kleft" fields with
  | None -> Error "missing field \"kleft\""
  | Some "-" -> Ok None
  | Some v -> (
      match int_of_string_opt v with
      | Some k when k >= 0 -> Ok (Some k)
      | _ -> Error (Printf.sprintf "bad kleft %S" v))

let recovering_field fields =
  let* i = int_field fields "recovering" in
  match i with
  | 0 -> Ok false
  | 1 -> Ok true
  | _ -> Error "recovering must be 0 or 1"

let platform_fields fields =
  let* lambda = float_field fields "lambda" in
  let* c = float_field fields "c" in
  let* r = float_field fields "r" in
  let* d = float_field fields "d" in
  let* horizon = float_field fields "horizon" in
  let* quantum = float_field fields "quantum" in
  validate_platform ~lambda ~c ~r ~d ~horizon ~quantum

let query_of_fields fields =
  let* p = platform_fields fields in
  let* tleft = float_field fields "tleft" in
  let* kleft = kleft_field fields in
  let* recovering = recovering_field fields in
  Ok
    {
      params = p.plat_params;
      horizon = p.plat_horizon;
      quantum = p.plat_quantum;
      tleft;
      kleft;
      recovering;
    }

let session_query_of_fields fields =
  let* sid = int_field fields "sid" in
  let* sq_tleft = float_field fields "tleft" in
  let* sq_kleft = kleft_field fields in
  let* sq_recovering = recovering_field fields in
  if sid < 1 then Error (Printf.sprintf "bad sid %d" sid)
  else Ok { sid; sq_tleft; sq_kleft; sq_recovering }

let request_of_string text =
  match String.split_on_char ' ' (String.trim text) with
  | [ "ping" ] -> Ok Ping
  | [ "stats" ] -> Ok Stats
  | "query" :: rest ->
      let* fields = fields_of rest in
      let* q = query_of_fields fields in
      Ok (Query q)
  | "session-open" :: rest ->
      let* fields = fields_of rest in
      let* p = platform_fields fields in
      Ok (Session_open p)
  | "session-query" :: rest ->
      let* fields = fields_of rest in
      let* sq = session_query_of_fields fields in
      Ok (Session_query sq)
  | "session-close" :: rest ->
      let* fields = fields_of rest in
      let* sid = int_field fields "sid" in
      if sid < 1 then Error (Printf.sprintf "bad sid %d" sid)
      else Ok (Session_close sid)
  | keyword :: _ -> Error (Printf.sprintf "unknown request %S" keyword)
  | [] -> Error "empty request"

let response_to_string = function
  | Pong -> "pong"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Failed msg -> "error " ^ msg
  | Answer a -> Printf.sprintf "answer next=%s k=%d work=%s" (g a.next) a.k (g a.work)
  | Session sid -> Printf.sprintf "session sid=%d" sid
  | Stats_reply s ->
      Printf.sprintf "stats builds=%d hits=%d evictions=%d tables=%d bytes=%d"
        s.Experiments.Strategy.Cache.s_builds s.s_hits s.s_evictions
        s.s_resident_tables s.s_resident_bytes

let response_of_string text =
  let text = String.trim text in
  match String.split_on_char ' ' text with
  | [ "pong" ] -> Ok Pong
  | [ "overloaded" ] -> Ok Overloaded
  | [ "timeout" ] -> Ok Timeout
  | "error" :: _ ->
      (* the message is free text: everything after the keyword *)
      let msg =
        if String.length text > 6 then String.sub text 6 (String.length text - 6)
        else ""
      in
      Ok (Failed msg)
  | "answer" :: rest ->
      let* fields = fields_of rest in
      let* next = float_field fields "next" in
      let* k = int_field fields "k" in
      let* work = float_field fields "work" in
      Ok (Answer { next; k; work })
  | "session" :: rest ->
      let* fields = fields_of rest in
      let* sid = int_field fields "sid" in
      Ok (Session sid)
  | "stats" :: rest ->
      let* fields = fields_of rest in
      let* s_builds = int_field fields "builds" in
      let* s_hits = int_field fields "hits" in
      let* s_evictions = int_field fields "evictions" in
      let* s_resident_tables = int_field fields "tables" in
      let* s_resident_bytes = int_field fields "bytes" in
      Ok
        (Stats_reply
           {
             Experiments.Strategy.Cache.s_builds;
             s_hits;
             s_evictions;
             s_resident_tables;
             s_resident_bytes;
           })
  | keyword :: _ -> Error (Printf.sprintf "unknown response %S" keyword)
  | [] -> Error "empty response"

(* Binary codec: one tag byte, then a fixed little-endian layout per
   variant — float64 bit patterns, int32 counters, [-1] spelling an
   absent [kleft]. The layout exists for the hot path only: the journal
   and every human surface keep the text spelling, and the server
   re-encodes binary requests to canonical text before journaling. *)

let tag_ping = '\001'
let tag_stats = '\002'
let tag_query = '\003'
let tag_session_open = '\004'
let tag_session_query = '\005'
let tag_session_close = '\006'

let rtag_pong = '\001'
let rtag_overloaded = '\002'
let rtag_timeout = '\003'
let rtag_failed = '\004'
let rtag_answer = '\005'
let rtag_stats = '\006'
let rtag_session = '\007'

let put_float b off v = Bytes.set_int64_le b off (Int64.bits_of_float v)
let get_float s off = Int64.float_of_bits (String.get_int64_le s off)
let put_int32 b off v = Bytes.set_int32_le b off (Int32.of_int v)
let get_int32 s off = Int32.to_int (String.get_int32_le s off)

let put_kleft b off = function
  | None -> put_int32 b off (-1)
  | Some k -> put_int32 b off k

let get_kleft s off =
  match get_int32 s off with
  | -1 -> Ok None
  | k when k >= 0 -> Ok (Some k)
  | k -> Error (Printf.sprintf "bad kleft %d" k)

let request_to_binary = function
  | Ping -> String.make 1 tag_ping
  | Stats -> String.make 1 tag_stats
  | Query q ->
      let b = Bytes.create 62 in
      Bytes.set b 0 tag_query;
      put_float b 1 q.params.Fault.Params.lambda;
      put_float b 9 q.params.Fault.Params.c;
      put_float b 17 q.params.Fault.Params.r;
      put_float b 25 q.params.Fault.Params.d;
      put_float b 33 q.horizon;
      put_float b 41 q.quantum;
      put_float b 49 q.tleft;
      put_kleft b 57 q.kleft;
      Bytes.set b 61 (if q.recovering then '\001' else '\000');
      Bytes.unsafe_to_string b
  | Session_open p ->
      let b = Bytes.create 49 in
      Bytes.set b 0 tag_session_open;
      put_float b 1 p.plat_params.Fault.Params.lambda;
      put_float b 9 p.plat_params.Fault.Params.c;
      put_float b 17 p.plat_params.Fault.Params.r;
      put_float b 25 p.plat_params.Fault.Params.d;
      put_float b 33 p.plat_horizon;
      put_float b 41 p.plat_quantum;
      Bytes.unsafe_to_string b
  | Session_query sq ->
      let b = Bytes.create 18 in
      Bytes.set b 0 tag_session_query;
      put_int32 b 1 sq.sid;
      put_float b 5 sq.sq_tleft;
      put_kleft b 13 sq.sq_kleft;
      Bytes.set b 17 (if sq.sq_recovering then '\001' else '\000');
      Bytes.unsafe_to_string b
  | Session_close sid ->
      let b = Bytes.create 5 in
      Bytes.set b 0 tag_session_close;
      put_int32 b 1 sid;
      Bytes.unsafe_to_string b

let bool_byte s off =
  match s.[off] with
  | '\000' -> Ok false
  | '\001' -> Ok true
  | c -> Error (Printf.sprintf "bad boolean byte %d" (Char.code c))

let expect_len s n what =
  if String.length s = n then Ok ()
  else
    Error
      (Printf.sprintf "%s payload is %d bytes, expected %d" what
         (String.length s) n)

let request_of_binary s =
  if String.length s = 0 then Error "empty request"
  else
    match s.[0] with
    | c when Char.equal c tag_ping ->
        let* () = expect_len s 1 "ping" in
        Ok Ping
    | c when Char.equal c tag_stats ->
        let* () = expect_len s 1 "stats" in
        Ok Stats
    | c when Char.equal c tag_query ->
        let* () = expect_len s 62 "query" in
        let* kleft = get_kleft s 57 in
        let* recovering = bool_byte s 61 in
        let* q =
          validate_query ~lambda:(get_float s 1) ~c:(get_float s 9)
            ~r:(get_float s 17) ~d:(get_float s 25) ~horizon:(get_float s 33)
            ~quantum:(get_float s 41) ~tleft:(get_float s 49) ~kleft
            ~recovering
        in
        Ok (Query q)
    | c when Char.equal c tag_session_open ->
        let* () = expect_len s 49 "session-open" in
        let* p =
          validate_platform ~lambda:(get_float s 1) ~c:(get_float s 9)
            ~r:(get_float s 17) ~d:(get_float s 25) ~horizon:(get_float s 33)
            ~quantum:(get_float s 41)
        in
        Ok (Session_open p)
    | c when Char.equal c tag_session_query ->
        let* () = expect_len s 18 "session-query" in
        let sid = get_int32 s 1 in
        let* sq_kleft = get_kleft s 13 in
        let* sq_recovering = bool_byte s 17 in
        if sid < 1 then Error (Printf.sprintf "bad sid %d" sid)
        else
          Ok
            (Session_query
               { sid; sq_tleft = get_float s 5; sq_kleft; sq_recovering })
    | c when Char.equal c tag_session_close ->
        let* () = expect_len s 5 "session-close" in
        let sid = get_int32 s 1 in
        if sid < 1 then Error (Printf.sprintf "bad sid %d" sid)
        else Ok (Session_close sid)
    | c -> Error (Printf.sprintf "unknown request tag %d" (Char.code c))

let response_to_binary = function
  | Pong -> String.make 1 rtag_pong
  | Overloaded -> String.make 1 rtag_overloaded
  | Timeout -> String.make 1 rtag_timeout
  | Failed msg -> String.make 1 rtag_failed ^ msg
  | Answer a ->
      let b = Bytes.create 21 in
      Bytes.set b 0 rtag_answer;
      put_float b 1 a.next;
      put_int32 b 9 a.k;
      put_float b 13 a.work;
      Bytes.unsafe_to_string b
  | Stats_reply s ->
      let b = Bytes.create 41 in
      Bytes.set b 0 rtag_stats;
      Bytes.set_int64_le b 1
        (Int64.of_int s.Experiments.Strategy.Cache.s_builds);
      Bytes.set_int64_le b 9 (Int64.of_int s.s_hits);
      Bytes.set_int64_le b 17 (Int64.of_int s.s_evictions);
      Bytes.set_int64_le b 25 (Int64.of_int s.s_resident_tables);
      Bytes.set_int64_le b 33 (Int64.of_int s.s_resident_bytes);
      Bytes.unsafe_to_string b
  | Session sid ->
      let b = Bytes.create 5 in
      Bytes.set b 0 rtag_session;
      put_int32 b 1 sid;
      Bytes.unsafe_to_string b

let response_of_binary s =
  if String.length s = 0 then Error "empty response"
  else
    match s.[0] with
    | c when Char.equal c rtag_pong ->
        let* () = expect_len s 1 "pong" in
        Ok Pong
    | c when Char.equal c rtag_overloaded ->
        let* () = expect_len s 1 "overloaded" in
        Ok Overloaded
    | c when Char.equal c rtag_timeout ->
        let* () = expect_len s 1 "timeout" in
        Ok Timeout
    | c when Char.equal c rtag_failed ->
        Ok (Failed (String.sub s 1 (String.length s - 1)))
    | c when Char.equal c rtag_answer ->
        let* () = expect_len s 21 "answer" in
        Ok
          (Answer
             { next = get_float s 1; k = get_int32 s 9; work = get_float s 13 })
    | c when Char.equal c rtag_stats ->
        let* () = expect_len s 41 "stats" in
        let int64 off = Int64.to_int (String.get_int64_le s off) in
        Ok
          (Stats_reply
             {
               Experiments.Strategy.Cache.s_builds = int64 1;
               s_hits = int64 9;
               s_evictions = int64 17;
               s_resident_tables = int64 25;
               s_resident_bytes = int64 33;
             })
    | c when Char.equal c rtag_session ->
        let* () = expect_len s 5 "session" in
        Ok (Session (get_int32 s 1))
    | c -> Error (Printf.sprintf "unknown response tag %d" (Char.code c))

let render_response = function
  | Pong -> "pong"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Failed msg -> "error: " ^ msg
  | Answer a -> Printf.sprintf "next=%g k=%d work=%g" a.next a.k a.work
  | Session sid -> Printf.sprintf "sid=%d" sid
  | Stats_reply s ->
      Printf.sprintf "builds=%d hits=%d evictions=%d tables=%d bytes=%d"
        s.Experiments.Strategy.Cache.s_builds s.s_hits s.s_evictions
        s.s_resident_tables s.s_resident_bytes
