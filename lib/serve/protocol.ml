type query = {
  params : Fault.Params.t;
  horizon : float;
  quantum : float;
  tleft : float;
  kleft : int option;
  recovering : bool;
}

type request = Ping | Stats | Query of query

type answer = { next : float; k : int; work : float }

type response =
  | Answer of answer
  | Stats_reply of Experiments.Strategy.Cache.stats
  | Pong
  | Overloaded
  | Timeout
  | Failed of string

let g = Printf.sprintf "%.17g"

let request_to_string = function
  | Ping -> "ping"
  | Stats -> "stats"
  | Query q ->
      Printf.sprintf
        "query lambda=%s c=%s r=%s d=%s horizon=%s quantum=%s tleft=%s \
         kleft=%s recovering=%d"
        (g q.params.Fault.Params.lambda)
        (g q.params.Fault.Params.c) (g q.params.Fault.Params.r)
        (g q.params.Fault.Params.d) (g q.horizon) (g q.quantum) (g q.tleft)
        (match q.kleft with None -> "-" | Some k -> string_of_int k)
        (if q.recovering then 1 else 0)

(* key=value fields after the leading keyword; order-insensitive,
   duplicates rejected, every field mandatory — a stricter parse than
   the single producer needs, but the journal outlives the producer. *)
let fields_of tokens =
  let rec go acc = function
    | [] -> Ok acc
    | tok :: rest -> (
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "malformed field %S" tok)
        | Some i ->
            let k = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            if List.mem_assoc k acc then
              Error (Printf.sprintf "duplicate field %S" k)
            else go ((k, v) :: acc) rest)
  in
  go [] tokens

let float_field fields name =
  match List.assoc_opt name fields with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "bad float %S for %S" v name))

let int_field fields name =
  match List.assoc_opt name fields with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> Ok i
      | None -> Error (Printf.sprintf "bad int %S for %S" v name))

let ( let* ) = Result.bind

let query_of_fields fields =
  let* lambda = float_field fields "lambda" in
  let* c = float_field fields "c" in
  let* r = float_field fields "r" in
  let* d = float_field fields "d" in
  let* horizon = float_field fields "horizon" in
  let* quantum = float_field fields "quantum" in
  let* tleft = float_field fields "tleft" in
  let* kleft =
    match List.assoc_opt "kleft" fields with
    | None -> Error "missing field \"kleft\""
    | Some "-" -> Ok None
    | Some v -> (
        match int_of_string_opt v with
        | Some k when k >= 0 -> Ok (Some k)
        | _ -> Error (Printf.sprintf "bad kleft %S" v))
  in
  let* recovering =
    let* i = int_field fields "recovering" in
    match i with
    | 0 -> Ok false
    | 1 -> Ok true
    | _ -> Error "recovering must be 0 or 1"
  in
  let* params =
    match Fault.Params.make ~lambda ~c ~r ~d with
    | p -> Ok p
    | exception Invalid_argument msg -> Error msg
  in
  if quantum <= 0.0 then Error "quantum must be > 0"
  else if horizon <= 0.0 then Error "horizon must be > 0"
  else Ok { params; horizon; quantum; tleft; kleft; recovering }

let request_of_string text =
  match String.split_on_char ' ' (String.trim text) with
  | [ "ping" ] -> Ok Ping
  | [ "stats" ] -> Ok Stats
  | "query" :: rest ->
      let* fields = fields_of rest in
      let* q = query_of_fields fields in
      Ok (Query q)
  | keyword :: _ -> Error (Printf.sprintf "unknown request %S" keyword)
  | [] -> Error "empty request"

let response_to_string = function
  | Pong -> "pong"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Failed msg -> "error " ^ msg
  | Answer a -> Printf.sprintf "answer next=%s k=%d work=%s" (g a.next) a.k (g a.work)
  | Stats_reply s ->
      Printf.sprintf "stats builds=%d hits=%d evictions=%d tables=%d bytes=%d"
        s.Experiments.Strategy.Cache.s_builds s.s_hits s.s_evictions
        s.s_resident_tables s.s_resident_bytes

let response_of_string text =
  let text = String.trim text in
  match String.split_on_char ' ' text with
  | [ "pong" ] -> Ok Pong
  | [ "overloaded" ] -> Ok Overloaded
  | [ "timeout" ] -> Ok Timeout
  | "error" :: _ ->
      (* the message is free text: everything after the keyword *)
      let msg =
        if String.length text > 6 then String.sub text 6 (String.length text - 6)
        else ""
      in
      Ok (Failed msg)
  | "answer" :: rest ->
      let* fields = fields_of rest in
      let* next = float_field fields "next" in
      let* k = int_field fields "k" in
      let* work = float_field fields "work" in
      Ok (Answer { next; k; work })
  | "stats" :: rest ->
      let* fields = fields_of rest in
      let* s_builds = int_field fields "builds" in
      let* s_hits = int_field fields "hits" in
      let* s_evictions = int_field fields "evictions" in
      let* s_resident_tables = int_field fields "tables" in
      let* s_resident_bytes = int_field fields "bytes" in
      Ok
        (Stats_reply
           {
             Experiments.Strategy.Cache.s_builds;
             s_hits;
             s_evictions;
             s_resident_tables;
             s_resident_bytes;
           })
  | keyword :: _ -> Error (Printf.sprintf "unknown response %S" keyword)
  | [] -> Error "empty response"

let render_response = function
  | Pong -> "pong"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Failed msg -> "error: " ^ msg
  | Answer a -> Printf.sprintf "next=%g k=%d work=%g" a.next a.k a.work
  | Stats_reply s ->
      Printf.sprintf "builds=%d hits=%d evictions=%d tables=%d bytes=%d"
        s.Experiments.Strategy.Cache.s_builds s.s_hits s.s_evictions
        s.s_resident_tables s.s_resident_bytes
