(** Bounded multi-producer/multi-consumer queue — the admission gate.

    The accept loop pushes, worker domains pop. The bound is the
    server's overload contract: {!try_push} never blocks and never
    grows the queue past [capacity] — a full queue is the caller's cue
    to shed the request with an explicit [overloaded] reply instead of
    letting latency grow without bound. [capacity = 0] is legal and
    sheds everything (the deterministic overload drill).

    {!close} is the drain signal: pushers are refused from then on,
    poppers drain what is already queued and then get [None] — exactly
    the SIGTERM semantics (finish in-flight work, accept nothing
    new). *)

type 'a t

val create : capacity:int -> 'a t
(** Raises [Invalid_argument] when [capacity < 0]. *)

val try_push : 'a t -> 'a -> bool
(** [false] when full or closed; never blocks. *)

val pop : 'a t -> 'a option
(** Block until an item is available or the queue is closed {e and}
    drained; [None] only in the latter case. *)

val pop_batch : 'a t -> max:int -> 'a list
(** Block like {!pop}, then take up to [max] items in one critical
    section — the server's batched pool hop. [[]] only when the queue
    is closed and drained. FIFO order is preserved across and within
    batches. Raises [Invalid_argument] when [max < 1]. *)

val try_drain : 'a t -> max:int -> 'a list
(** Take up to [max] items without ever blocking ([[]] when nothing is
    queued) — how a worker already holding a batch tops it up
    opportunistically. Raises [Invalid_argument] when [max < 1]. *)

val evict : 'a t -> f:('a -> bool) -> 'a list
(** Remove and return (in FIFO order) every queued item satisfying [f],
    preserving the order of the rest; never blocks. How the accept loop
    sweeps connections that expired while waiting for a worker —
    without it, a queue kept full by busy workers would hold idle
    sockets forever. *)

val close : 'a t -> unit
(** Refuse further pushes and wake every blocked popper. Idempotent. *)

val length : 'a t -> int
