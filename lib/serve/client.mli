(** Client side of the serve protocol.

    A thin wrapper over {!Wire} plus the overload etiquette the server's
    shedding asks for: when the daemon answers [overloaded] (or is not
    accepting connections at all), {!query} backs off through a
    {!Robust.Retry} policy — jittered, deterministic, and ideally
    decorrelated ([Retry.make ~decorrelated:true]) so a herd of shed
    clients does not re-arrive in lockstep. The retry key is derived
    from the request payload's checksum, so distinct queries spread
    over distinct jitter streams while a replayed client stays
    replayable; the jitter seed can be pinned per invocation ([?seed],
    or the [FIXEDLEN_SERVE_SEED] environment variable) so a
    shedding-retry test is deterministic end to end.

    Endpoints: a [socket] string containing [':'] is a TCP [HOST:PORT]
    endpoint (an empty host means loopback); anything else is a
    Unix-domain socket path. *)

val connect : socket:string -> Wire.conn
(** Connect to the daemon (Unix-domain path or TCP [HOST:PORT]; TCP
    connections set [TCP_NODELAY]). Raises [Unix.Unix_error] (e.g.
    [ENOENT]/[ECONNREFUSED] when the daemon is not up). *)

val close : Wire.conn -> unit
(** Close the underlying socket, swallowing [Unix_error]. *)

val wait_ready :
  ?attempts:int -> ?pause:float -> socket:string -> unit -> bool
(** Poll until a connection succeeds — for scripts that just launched
    the daemon. Default: 100 attempts, 0.05 s apart. *)

val handshake :
  ?max_frame:int -> Wire.conn -> binary:bool -> (bool, string) result
(** Negotiate the connection's mode and frame bound with
    {!Wire.client_hello}. A no-op [Ok true] when neither [binary] nor
    [max_frame] asks for anything; [Ok false] when the server answered
    with a legacy text frame instead (the frame — typically
    [overloaded] — stays buffered for the next read and the connection
    remains text). *)

val request :
  Wire.conn -> Protocol.request -> (Protocol.response, string) result
(** Send one request on an open connection (in the connection's
    negotiated encoding) and read its reply. [Error] carries a
    transport-level diagnosis (torn frame, closed connection);
    protocol-level failures arrive as [Ok (Failed _)]. *)

val query :
  ?retry:Robust.Retry.t ->
  ?sleep:(float -> unit) ->
  ?seed:int64 ->
  ?binary:bool ->
  ?max_frame:int ->
  socket:string ->
  Protocol.request ->
  (Protocol.response, string) result
(** One-shot: connect, handshake if asked ([binary]/[max_frame]), send,
    read, close — retrying (fresh connection each attempt) while the
    answer is [overloaded] or the connection is refused. Default [retry]
    is {!Robust.Retry.no_retry} (single attempt); when every attempt is
    shed the final answer is [Ok Overloaded], mirroring what the server
    said. [sleep] overrides the backoff sleeper for tests. [seed]
    re-seeds the retry jitter stream (overriding [FIXEDLEN_SERVE_SEED],
    which overrides the policy's own seed) without touching its shape. *)
