(** Client side of the serve protocol.

    A thin wrapper over {!Wire} plus the overload etiquette the server's
    shedding asks for: when the daemon answers [overloaded] (or is not
    accepting connections at all), {!query} backs off through a
    {!Robust.Retry} policy — jittered, deterministic, and ideally
    decorrelated ([Retry.make ~decorrelated:true]) so a herd of shed
    clients does not re-arrive in lockstep. The retry key is derived
    from the request payload's checksum, so distinct queries spread
    over distinct jitter streams while a replayed client stays
    replayable. *)

val connect : socket:string -> Unix.file_descr
(** Connect to the daemon's Unix-domain socket. Raises
    [Unix.Unix_error] (e.g. [ENOENT]/[ECONNREFUSED] when the daemon is
    not up). *)

val wait_ready :
  ?attempts:int -> ?pause:float -> socket:string -> unit -> bool
(** Poll until a connection succeeds — for scripts that just launched
    the daemon. Default: 100 attempts, 0.05 s apart. *)

val request :
  Unix.file_descr -> Protocol.request -> (Protocol.response, string) result
(** Send one request on an open connection and read its reply.
    [Error] carries a transport-level diagnosis (torn frame, closed
    connection); protocol-level failures arrive as [Ok (Failed _)]. *)

val query :
  ?retry:Robust.Retry.t ->
  ?sleep:(float -> unit) ->
  socket:string ->
  Protocol.request ->
  (Protocol.response, string) result
(** One-shot: connect, send, read, close — retrying (fresh connection
    each attempt) while the answer is [overloaded] or the connection is
    refused. Default [retry] is {!Robust.Retry.no_retry} (single
    attempt); when every attempt is shed the final answer is
    [Ok Overloaded], mirroring what the server said. [sleep] overrides
    the backoff sleeper for tests. *)
