(* An endpoint containing ':' is HOST:PORT (TCP); anything else is a
   Unix-domain socket path. Unix paths with colons lose, but the CLI
   default and every drill use plain filenames. *)
let is_tcp socket = String.contains socket ':'

let resolve_host host =
  if String.equal host "" then Unix.inet_addr_loopback
  else
    try Unix.inet_addr_of_string host
    with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)

let connect_fd ~socket =
  if is_tcp socket then begin
    let i = String.rindex socket ':' in
    let host = String.sub socket 0 i in
    let port =
      match
        int_of_string_opt (String.sub socket (i + 1) (String.length socket - i - 1))
      with
      | Some p when p > 0 && p <= 65535 -> p
      | _ -> invalid_arg (Printf.sprintf "Client.connect: bad port in %S" socket)
    in
    let addr = resolve_host host in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      Unix.setsockopt fd Unix.TCP_NODELAY true
    with
    | () -> fd
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  end
  else begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> fd
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
  end

let connect ~socket = Wire.of_fd (connect_fd ~socket)

let close conn = try Unix.close (Wire.fd conn) with Unix.Unix_error _ -> ()

let wait_ready ?(attempts = 100) ?(pause = 0.05) ~socket () =
  let rec go n =
    if n <= 0 then false
    else
      match connect ~socket with
      | conn ->
          close conn;
          true
      | exception Unix.Unix_error _ ->
          Unix.sleepf pause;
          go (n - 1)
  in
  go attempts

let handshake ?max_frame conn ~binary =
  if (not binary) && max_frame = None then Ok true
  else
    match
      Wire.client_hello conn
        ~mode:(if binary then Wire.Binary else Wire.Text)
        ?max_frame ()
    with
    | Ok negotiated -> Ok negotiated
    | Error e -> Error (Wire.error_message e)
    | exception Unix.Unix_error (err, _, _) ->
        Error ("hello failed: " ^ Unix.error_message err)

let encode_request conn req =
  match Wire.mode conn with
  | Wire.Text -> Protocol.request_to_string req
  | Wire.Binary -> Protocol.request_to_binary req

let decode_response conn payload =
  match Wire.mode conn with
  | Wire.Text -> Protocol.response_of_string payload
  | Wire.Binary -> Protocol.response_of_binary payload

let request conn req =
  (* A shedding server replies and closes before reading the request, so
     the send can fail (EPIPE) while a perfectly good [overloaded] frame
     sits in our receive buffer — always try the read, and only report
     the send failure when nothing came back. *)
  let send_error =
    match Wire.send conn (encode_request conn req) with
    | () -> None
    | exception Unix.Unix_error (err, _, _) ->
        Some ("send failed: " ^ Unix.error_message err)
  in
  match Wire.recv conn with
  | Ok payload -> (
      match decode_response conn payload with
      | Ok resp -> Ok resp
      | Error msg -> Error ("bad response: " ^ msg))
  | Error e -> (
      match send_error with
      | Some msg -> Error msg
      | None -> Error (Wire.error_message e))

(* Retry currency: shedding and an absent daemon are the transient
   conditions backoff exists for; anything else surfaces immediately. *)
exception Shed
exception Unavailable of string

(* The policy stays what the caller built; only the jitter stream is
   re-seeded, so FIXEDLEN_SERVE_SEED (or ?seed) makes a shedding-retry
   drill deterministic without touching its attempt/backoff shape. *)
let reseed (retry : Robust.Retry.t) seed =
  match seed with
  | None -> retry
  | Some seed ->
      Robust.Retry.make ~attempts:retry.Robust.Retry.attempts
        ~base_delay:retry.Robust.Retry.base_delay
        ~multiplier:retry.Robust.Retry.multiplier
        ~jitter:retry.Robust.Retry.jitter
        ~decorrelated:retry.Robust.Retry.decorrelated
        ~max_delay:retry.Robust.Retry.max_delay ~seed ()

let env_seed () =
  match Sys.getenv_opt "FIXEDLEN_SERVE_SEED" with
  | None -> None
  | Some v -> Int64.of_string_opt v

let query ?(retry = Robust.Retry.no_retry) ?sleep ?seed ?(binary = false)
    ?max_frame ~socket req =
  let retry =
    reseed retry (match seed with Some _ -> seed | None -> env_seed ())
  in
  let key =
    Int64.to_int (Numerics.Checksum.fnv1a64 (Protocol.request_to_string req))
  in
  let once ~attempt:_ =
    match connect ~socket with
    | exception Unix.Unix_error (err, _, _) ->
        raise (Unavailable (Unix.error_message err))
    | conn -> (
        let result =
          Fun.protect
            ~finally:(fun () -> close conn)
            (fun () ->
              match handshake ?max_frame conn ~binary with
              | Error msg -> Error msg
              | Ok _negotiated -> request conn req)
        in
        match result with Ok Protocol.Overloaded -> raise Shed | r -> r)
  in
  match Robust.Retry.run ?sleep retry ~key once with
  | Ok r -> r
  | Error Shed -> Ok Protocol.Overloaded
  | Error (Unavailable msg) -> Error ("daemon unavailable: " ^ msg)
  | Error e -> Error (Printexc.to_string e)
