let connect ~socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> fd
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let wait_ready ?(attempts = 100) ?(pause = 0.05) ~socket () =
  let rec go n =
    if n <= 0 then false
    else
      match connect ~socket with
      | fd ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          true
      | exception Unix.Unix_error _ ->
          Unix.sleepf pause;
          go (n - 1)
  in
  go attempts

let request fd req =
  (* A shedding server replies and closes before reading the request, so
     the send can fail (EPIPE) while a perfectly good [overloaded] frame
     sits in our receive buffer — always try the read, and only report
     the send failure when nothing came back. *)
  let send_error =
    match Wire.send fd (Protocol.request_to_string req) with
    | () -> None
    | exception Unix.Unix_error (err, _, _) ->
        Some ("send failed: " ^ Unix.error_message err)
  in
  match Wire.recv fd with
  | Ok payload -> (
      match Protocol.response_of_string payload with
      | Ok resp -> Ok resp
      | Error msg -> Error ("bad response: " ^ msg))
  | Error e -> (
      match send_error with
      | Some msg -> Error msg
      | None -> Error (Wire.error_message e))

(* Retry currency: shedding and an absent daemon are the transient
   conditions backoff exists for; anything else surfaces immediately. *)
exception Shed
exception Unavailable of string

let query ?(retry = Robust.Retry.no_retry) ?sleep ~socket req =
  let key = Int64.to_int (Numerics.Checksum.fnv1a64 (Protocol.request_to_string req)) in
  let once ~attempt:_ =
    match connect ~socket with
    | exception Unix.Unix_error (err, _, _) ->
        raise (Unavailable (Unix.error_message err))
    | fd -> (
        let result =
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () -> request fd req)
        in
        match result with Ok Protocol.Overloaded -> raise Shed | r -> r)
  in
  match Robust.Retry.run ?sleep retry ~key once with
  | Ok r -> r
  | Error Shed -> Ok Protocol.Overloaded
  | Error (Unavailable msg) -> Error ("daemon unavailable: " ^ msg)
  | Error e -> Error (Printexc.to_string e)
