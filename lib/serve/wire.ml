type mode = Text | Binary

type error = Closed | Torn of string

let error_message = function
  | Closed -> "connection closed"
  | Torn why -> "torn frame: " ^ why

let default_max_frame = 1 lsl 20
let hard_max_frame = 1 lsl 26
let min_max_frame = 4096

type conn = {
  fd : Unix.file_descr;
  mutable mode : mode;
  mutable max_frame : int;
  (* Read buffer: one [Unix.read] refills a whole segment's worth of
     bytes, so a frame costs O(1) syscalls instead of one per prefix
     byte. [pos, len) is the unread window. *)
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
}

let of_fd ?(mode = Text) ?(max_frame = default_max_frame) fd =
  if max_frame < 1 || max_frame > hard_max_frame then
    invalid_arg "Wire.of_fd: max_frame out of range";
  { fd; mode; max_frame; buf = Bytes.create 8192; pos = 0; len = 0 }

let fd conn = conn.fd
let mode conn = conn.mode
let max_frame conn = conn.max_frame
let buffered conn = conn.pos < conn.len

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

(* A socket receive timeout (SO_RCVTIMEO) expiring mid-read. Raised out
   of [refill] and converted to [Torn] at every public read entry point,
   so a peer that stalls half way through a frame surfaces as a damaged
   connection, never as an exception escaping the caller's loop. *)
exception Stalled

let stall_guard f =
  try f ()
  with Stalled -> Error (Torn "receive timed out waiting for frame bytes")

let write_all fd bytes =
  let len = String.length bytes in
  let off = ref 0 in
  while !off < len do
    let n =
      restart_on_eintr (fun () ->
          Unix.write_substring fd bytes !off (len - !off))
    in
    off := !off + n
  done

(* [false] on EOF. *)
let refill conn =
  let n =
    try
      restart_on_eintr (fun () ->
          Unix.read conn.fd conn.buf 0 (Bytes.length conn.buf))
    with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      raise Stalled
  in
  conn.pos <- 0;
  conn.len <- n;
  n > 0

let rec read_byte conn =
  if conn.pos < conn.len then begin
    let c = Bytes.get conn.buf conn.pos in
    conn.pos <- conn.pos + 1;
    Some c
  end
  else if refill conn then read_byte conn
  else None

let rec peek_byte conn =
  if conn.pos < conn.len then Some (Bytes.get conn.buf conn.pos)
  else if refill conn then peek_byte conn
  else None

type read_result = Rok of string | Reof_start | Reof_mid

let read_exact conn n =
  let out = Bytes.create n in
  let rec go off =
    if off >= n then Rok (Bytes.unsafe_to_string out)
    else if conn.pos < conn.len then begin
      let take = min (conn.len - conn.pos) (n - off) in
      Bytes.blit conn.buf conn.pos out off take;
      conn.pos <- conn.pos + take;
      go (off + take)
    end
    else if refill conn then go off
    else if off = 0 then Reof_start
    else Reof_mid
  in
  go 0

(* binary framing: 4-byte LE length, payload, 8-byte LE fnv1a64 *)

let binary_frame payload =
  let len = String.length payload in
  let b = Bytes.create (4 + len + 8) in
  Bytes.set_int32_le b 0 (Int32.of_int len);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.set_int64_le b (4 + len) (Numerics.Checksum.fnv1a64 payload);
  Bytes.unsafe_to_string b

let frame_for conn payload =
  if String.length payload > conn.max_frame then
    invalid_arg
      (Printf.sprintf "Wire.send: payload length %d exceeds max frame %d"
         (String.length payload) conn.max_frame);
  match conn.mode with
  | Text -> Robust.Durable.Framed.frame payload
  | Binary -> binary_frame payload

let send conn payload = write_all conn.fd (frame_for conn payload)

let send_many conn payloads =
  (* One write for the whole burst: framing per payload is unchanged,
     only the syscalls are amortized — a receiver cannot tell the
     difference, but a reply batch costs one [write] instead of one per
     frame. *)
  match payloads with
  | [] -> ()
  | [ payload ] -> send conn payload
  | payloads ->
      write_all conn.fd (String.concat "" (List.map (frame_for conn) payloads))

(* The decimal length prefix, ended by the separating space. Kept as the
   raw digit string so the final byte-for-byte comparison against
   [Framed.frame payload] also rejects non-canonical renderings (leading
   zeros) instead of silently normalising them. *)
let read_prefix conn =
  let buf = Buffer.create 8 in
  let rec go () =
    match read_byte conn with
    | None ->
        if Buffer.length buf = 0 then Error Closed
        else Error (Torn "eof inside length prefix")
    | Some ' ' when Buffer.length buf > 0 -> (
        let digits = Buffer.contents buf in
        match int_of_string_opt digits with
        | Some len when len >= 0 && len <= conn.max_frame -> Ok (digits, len)
        | Some len ->
            Error
              (Torn
                 (Printf.sprintf "frame length %d exceeds max frame %d" len
                    conn.max_frame))
        | None -> Error (Torn "unparseable length prefix"))
    | Some ('0' .. '9' as c) ->
        if Buffer.length buf >= 8 then Error (Torn "oversized length prefix")
        else begin
          Buffer.add_char buf c;
          go ()
        end
    | Some _ -> Error (Torn "non-digit in length prefix")
  in
  go ()

let recv_text conn =
  match read_prefix conn with
  | Error _ as e -> e
  | Ok (digits, len) -> (
      (* payload, then " <16-hex>\n". *)
      match read_exact conn (len + 18) with
      | Reof_start | Reof_mid -> Error (Torn "eof inside frame body")
      | Rok body ->
          let payload = String.sub body 0 len in
          let received = digits ^ " " ^ body in
          if String.equal received (Robust.Durable.Framed.frame payload) then
            Ok payload
          else Error (Torn "checksum mismatch"))

let recv_binary conn =
  match read_exact conn 4 with
  | Reof_start -> Error Closed
  | Reof_mid -> Error (Torn "eof inside frame header")
  | Rok header -> (
      let len = Int32.to_int (String.get_int32_le header 0) in
      if len < 0 then Error (Torn (Printf.sprintf "negative frame length %d" len))
      else if len > conn.max_frame then
        Error
          (Torn
             (Printf.sprintf "frame length %d exceeds max frame %d" len
                conn.max_frame))
      else
        match read_exact conn (len + 8) with
        | Reof_start | Reof_mid -> Error (Torn "eof inside frame body")
        | Rok body ->
            let payload = String.sub body 0 len in
            let sum = String.get_int64_le body len in
            if Int64.equal sum (Numerics.Checksum.fnv1a64 payload) then
              Ok payload
            else Error (Torn "checksum mismatch"))

let recv conn =
  stall_guard (fun () ->
      match conn.mode with Text -> recv_text conn | Binary -> recv_binary conn)

(* hello negotiation: 5 bytes each way, [mode byte; 4-byte LE max
   frame]. A text frame always opens with a decimal digit, so a
   non-digit first byte from a fresh connection is unambiguously a
   hello — legacy text clients never send one and are never asked
   to. *)

let hello_char = function Text -> 'T' | Binary -> 'B'

let client_hello conn ~mode ?max_frame () =
  let requested = match max_frame with None -> 0 | Some m -> m in
  if requested < 0 || requested > hard_max_frame then
    invalid_arg "Wire.client_hello: max_frame out of range";
  let hello = Bytes.create 5 in
  Bytes.set hello 0 (hello_char mode);
  Bytes.set_int32_le hello 1 (Int32.of_int requested);
  write_all conn.fd (Bytes.unsafe_to_string hello);
  stall_guard @@ fun () ->
  match peek_byte conn with
  | None -> Error Closed
  | Some '0' .. '9' ->
      (* A pre-negotiation server (or one shedding at admission)
         answered with a legacy text frame; leave it buffered for the
         caller's [recv] and stay in text mode. *)
      Ok false
  | Some _ -> (
      match read_exact conn 5 with
      | Reof_start | Reof_mid -> Error (Torn "eof inside hello ack")
      | Rok ack ->
          if not (Char.equal ack.[0] (hello_char mode)) then
            Error
              (Torn
                 (Printf.sprintf "hello ack mode %C, expected %C" ack.[0]
                    (hello_char mode)))
          else
            let granted = Int32.to_int (String.get_int32_le ack 1) in
            if granted < 1 || granted > hard_max_frame then
              Error
                (Torn
                   (Printf.sprintf "hello ack granted absurd max frame %d"
                      granted))
            else begin
              conn.mode <- mode;
              conn.max_frame <- granted;
              Ok true
            end)

let server_negotiate conn =
  stall_guard @@ fun () ->
  match peek_byte conn with
  | None -> Error Closed
  | Some '0' .. '9' -> Ok () (* legacy text client: nothing consumed *)
  | Some _ -> (
      match read_exact conn 5 with
      | Reof_start | Reof_mid -> Error (Torn "eof inside hello")
      | Rok hello -> (
          match hello.[0] with
          | ('T' | 'B') as m ->
              let requested = Int32.to_int (String.get_int32_le hello 1) in
              if requested < 0 then
                Error
                  (Torn
                     (Printf.sprintf "hello requested negative max frame %d"
                        requested))
              else begin
                (* The grant is clamped into [min_max_frame,
                   hard_max_frame]: a floor as well as a ceiling, because
                   the server must always be able to frame its own
                   replies — a 1-byte grant would make every answer an
                   oversized send and hand the client a remote crash. *)
                let granted =
                  if requested = 0 then default_max_frame
                  else min (max requested min_max_frame) hard_max_frame
                in
                let ack = Bytes.create 5 in
                Bytes.set ack 0 m;
                Bytes.set_int32_le ack 1 (Int32.of_int granted);
                write_all conn.fd (Bytes.unsafe_to_string ack);
                conn.mode <- (if Char.equal m 'B' then Binary else Text);
                conn.max_frame <- granted;
                Ok ()
              end
          | c -> Error (Torn (Printf.sprintf "unknown hello mode byte %C" c))))
