type error = Closed | Torn of string

let error_message = function
  | Closed -> "connection closed"
  | Torn why -> "torn frame: " ^ why

let max_frame = 1 lsl 20

let rec restart_on_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart_on_eintr f

let send fd payload =
  let bytes = Robust.Durable.Framed.frame payload in
  let len = String.length bytes in
  let off = ref 0 in
  while !off < len do
    let n =
      restart_on_eintr (fun () ->
          Unix.write_substring fd bytes !off (len - !off))
    in
    off := !off + n
  done

let read_byte fd =
  let b = Bytes.create 1 in
  if restart_on_eintr (fun () -> Unix.read fd b 0 1) = 0 then None
  else Some (Bytes.get b 0)

(* [None] on EOF before [len] bytes arrived. *)
let read_exact fd len =
  let buf = Bytes.create len in
  let rec go off =
    if off >= len then Some (Bytes.unsafe_to_string buf)
    else
      let n = restart_on_eintr (fun () -> Unix.read fd buf off (len - off)) in
      if n = 0 then None else go (off + n)
  in
  go 0

(* The decimal length prefix, ended by the separating space. Kept as the
   raw digit string so the final byte-for-byte comparison against
   [Framed.frame payload] also rejects non-canonical renderings (leading
   zeros) instead of silently normalising them. *)
let read_prefix fd =
  let buf = Buffer.create 8 in
  let rec go () =
    match read_byte fd with
    | None ->
        if Buffer.length buf = 0 then Error Closed
        else Error (Torn "eof inside length prefix")
    | Some ' ' when Buffer.length buf > 0 -> (
        let digits = Buffer.contents buf in
        match int_of_string_opt digits with
        | Some len when len >= 0 && len <= max_frame -> Ok (digits, len)
        | Some _ -> Error (Torn "frame larger than max_frame")
        | None -> Error (Torn "unparseable length prefix"))
    | Some ('0' .. '9' as c) ->
        if Buffer.length buf >= 8 then Error (Torn "oversized length prefix")
        else begin
          Buffer.add_char buf c;
          go ()
        end
    | Some _ -> Error (Torn "non-digit in length prefix")
  in
  go ()

let recv fd =
  match read_prefix fd with
  | Error _ as e -> e
  | Ok (digits, len) -> (
      (* payload, then " <16-hex>\n". *)
      match read_exact fd (len + 18) with
      | None -> Error (Torn "eof inside frame body")
      | Some body ->
          let payload = String.sub body 0 len in
          let received = digits ^ " " ^ body in
          if String.equal received (Robust.Durable.Framed.frame payload) then
            Ok payload
          else Error (Torn "checksum mismatch"))
