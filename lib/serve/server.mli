(** The policy-as-a-service daemon.

    One Unix-domain listening socket; the main thread runs the accept
    loop and admission control, worker loops run on {!Parallel.Pool}
    domains and pull accepted connections from a bounded {!Bqueue}. A
    connection carries any number of framed requests ({!Wire}), each
    answered in order by the shared {!Handler}.

    Lifecycle and failure story:

    - {e admission}: a connection that does not fit in the queue is
      answered [overloaded] and closed by the accept loop itself —
      bounded queue, bounded latency, explicit shedding.
    - {e drain} (SIGTERM/SIGINT): the accept loop stops, the queue is
      closed, workers finish every connection already admitted, the
      request journal is synced and closed, a final summary line is
      printed, exit 0. No in-flight request is abandoned.
    - {e crash} (SIGKILL, power loss): the optional request journal is a
      {!Seglog} (a live {!Robust.Durable.Framed} file plus sealed
      rotation segments), so a restart scans segments oldest-first and
      the live tail last, truncates torn bytes, reports how many
      requests it recovered, and serves again — and because answers are
      pure functions of the tables, re-asked queries produce
      bit-identical replies after the crash.
    - {e chaos}: [chaos] injects faults into the handler (answered as
      typed errors); [chaos_fs] injects filesystem faults — including
      named crash points — into the journal writes, which is how the
      crash drill above is made deterministic.

    The daemon never re-raises out of a request: a sick request gets a
    typed reply, a sick connection gets closed, the process stays up
    until asked (or SIGKILLed). *)

type config = {
  socket_path : string;
  workers : int;  (** concurrent worker loops; [>= 1] *)
  queue_capacity : int;
      (** admission bound; 0 sheds every connection (overload drill) *)
  budget : float option;  (** per-query seconds; [None] = unlimited *)
  slow : float;  (** injected per-query delay (timeout drill); default 0 *)
  journal : string option;  (** framed request journal path *)
  journal_rotate : int option;
      (** rotation threshold in bytes: once an append pushes the live
          journal past it, the bytes are sealed as an immutable
          [<path>.N] segment ({!Seglog}) and the live file restarts;
          [None] never rotates *)
  journal_compact : bool;
      (** merge the sealed segments into one (dropping byte-identical
          duplicate records) before the journal opens — see
          {!Seglog.compact}; a no-op below two segments *)
  chaos : Robust.Chaos.t option;
  chaos_fs : Robust.Chaos_fs.t option;
  max_tables : int option;  (** cache LRU bound, tables *)
  max_bytes : int option;  (** cache LRU bound, summed table bytes *)
  jobs : int option;
      (** domains per DP table build ({!Experiments.Strategy.Cache}'s
          [jobs]); [None] defers to [FIXEDLEN_JOBS], else 1 *)
  quiet : bool;  (** suppress the listening/drained lines *)
}

val journal_header : string
(** First line of the request journal file. *)

val run : config -> int
(** Serve until SIGTERM/SIGINT, then drain; returns the process exit
    code (0 after a clean drain, 1 on a startup error such as an
    unbindable socket). Installs SIGTERM/SIGINT/SIGPIPE handlers —
    call once, from the main thread of a process that owns them. *)
