(** The policy-as-a-service daemon.

    One Unix-domain listening socket, plus an optional TCP listener
    ([listen = Some "host:port"]) sharing the same accept loop and
    admission machinery. The main accept thread runs admission control;
    worker loops run on {!Parallel.Pool} domains and pull accepted
    connections from a bounded {!Bqueue} in batches of up to [batch].
    A connection carries any number of framed requests ({!Wire}) —
    text by default, binary after a hello negotiation — each answered
    in order by the shared {!Handler}; queries landing in the same
    worker round share one table-cache round trip per distinct
    (params, horizon, quantum) ({!Handler.handle_batch}).

    Sessions: a [session-open] pins a client's platform in a bounded
    LRU {!Session} table and subsequent [session-query] requests carry
    only the [tleft]/[kleft]/[recovering] deltas; the server resolves
    them into full queries before handling. Session ids are not
    durable — the journal stores the resolved canonical-text query, so
    crash replay never needs the session table.

    Lifecycle and failure story:

    - {e admission}: a connection that does not fit in the queue — or
      would push live connections past [max_conns] — is answered
      [overloaded] and closed by the accept loop itself — bounded
      queue, bounded latency, explicit shedding. Connections silent
      for longer than [idle_timeout] are closed by their worker.
    - {e drain} (SIGTERM/SIGINT under {!run}, or {!stop}): the accept
      loop stops, the queue is closed, workers finish every connection
      already admitted, the request journal is synced and closed, a
      final summary line is printed, exit 0. No in-flight request is
      abandoned.
    - {e crash} (SIGKILL, power loss): the optional request journal is a
      {!Seglog} (a live {!Robust.Durable.Framed} file plus sealed
      rotation segments), so a restart scans segments oldest-first and
      the live tail last, truncates torn bytes, reports how many
      requests it recovered, and serves again — and because answers are
      pure functions of the tables, re-asked queries produce
      bit-identical replies after the crash. The journal is canonical
      text whatever the client spoke: binary and session queries are
      re-encoded before the append.
    - {e chaos}: [chaos] injects faults into the handler (answered as
      typed errors); [chaos_fs] injects filesystem faults — including
      named crash points — into the journal writes, which is how the
      crash drill above is made deterministic.

    The daemon never re-raises out of a request: a sick request gets a
    typed reply, a sick connection gets closed, the process stays up
    until asked (or SIGKILLed). *)

type config = {
  socket_path : string;
  listen : string option;
      (** additional TCP endpoint as [HOST:PORT]; port 0 binds an
          ephemeral port, reported on the
          [serve: listening on tcp HOST:PORT] line *)
  workers : int;  (** concurrent worker loops; [>= 1] *)
  queue_capacity : int;
      (** admission bound; 0 sheds every connection (overload drill) *)
  batch : int;
      (** connections a worker multiplexes per pool hop, and therefore
          the most requests one {!Handler.handle_batch} round answers;
          [1] reproduces the unbatched daemon exactly; [>= 1] *)
  max_conns : int option;
      (** cap on concurrently admitted connections, checked at
          admission on top of the queue bound; [None] = uncapped *)
  idle_timeout : float option;
      (** close connections silent this many seconds (swept at the
          worker's 0.2 s select cadence); [None] = never *)
  max_sessions : int;  (** {!Session} table LRU bound; [>= 1] *)
  budget : float option;  (** per-query seconds; [None] = unlimited *)
  slow : float;  (** injected per-query delay (timeout drill); default 0 *)
  journal : string option;  (** framed request journal path *)
  journal_rotate : int option;
      (** rotation threshold in bytes: once an append pushes the live
          journal past it, the bytes are sealed as an immutable
          [<path>.N] segment ({!Seglog}) and the live file restarts;
          [None] never rotates *)
  journal_compact : bool;
      (** merge the sealed segments into one (dropping byte-identical
          duplicate records) before the journal opens — see
          {!Seglog.compact}; a no-op below two segments *)
  chaos : Robust.Chaos.t option;
  chaos_fs : Robust.Chaos_fs.t option;
  max_tables : int option;  (** cache LRU bound, tables *)
  max_bytes : int option;  (** cache LRU bound, summed table bytes *)
  jobs : int option;
      (** domains per DP table build ({!Experiments.Strategy.Cache}'s
          [jobs]); [None] defers to [FIXEDLEN_JOBS], else 1 *)
  quiet : bool;  (** suppress the listening/drained lines *)
}

val journal_header : string
(** First line of the request journal file. *)

val run : config -> int
(** Serve until SIGTERM/SIGINT, then drain; returns the process exit
    code (0 after a clean drain, 1 on a startup error such as an
    unbindable socket). Installs SIGTERM/SIGINT/SIGPIPE handlers —
    call once, from the main thread of a process that owns them. *)

type handle
(** A daemon started in-process by {!start}. *)

val start : config -> handle
(** Launch the daemon on background threads — accept loop and workers —
    and return once every listener is bound. For embedding a live
    server in a test or benchmark; installs only the SIGPIPE-ignore
    disposition, no termination handlers. Raises ([Unix.Unix_error],
    [Invalid_argument]) on a startup error instead of returning an
    exit code. *)

val stop : handle -> unit
(** SIGTERM semantics for {!start}: stop accepting, drain admitted
    connections, close the journal durably, print the summary line.
    Blocks until the drain completes. Call once. *)

val tcp_port : handle -> int option
(** The bound TCP port (resolves [listen] port 0), when configured. *)

val metrics : handle -> Metrics.t
(** Live counters of a started daemon. *)
