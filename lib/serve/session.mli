(** Bounded LRU table of per-client sessions.

    A session pins a client's {!Protocol.platform} (params, horizon,
    quantum) server-side so each subsequent query shrinks to the
    [tleft]/[kleft]/[recovering] deltas — the re-plan shape the
    malleable-platform work wants, where a degraded client re-asks
    every few minutes against an unchanged platform. The table also
    accumulates the client's elapsed/failure history ({!history}):
    every resolved query bumps the query count, every [recovering]
    query bumps the failure count.

    The bound is the same discipline as the DP table cache: at
    capacity, opening a new session evicts the least recently used one
    (least recently {e resolved} or opened — stamps refresh on both).
    An evicted or never-opened sid resolves to [None] and is answered
    as a typed error, so a shed session costs the client one
    [session-open] round trip, never a wrong answer.

    Session ids are dense positive integers in open order. They are
    deliberately {e not} durable: the request journal stores resolved
    canonical-text queries (never sids), so crash-recovery replay does
    not depend on this table — a restarted daemon starts empty and
    clients simply re-open.

    Thread-safe: workers share one table behind a mutex. *)

type t

type stats = { st_opened : int; st_evicted : int; st_resident : int }

val create : capacity:int -> t
(** Raises [Invalid_argument] when [capacity < 1]. *)

val open_ : t -> Protocol.platform -> int
(** Pin a platform and return its fresh sid (evicting the LRU session
    at capacity). *)

val resolve :
  t -> sid:int -> tleft:float -> recovering:bool -> Protocol.platform option
(** Look up a session's platform and fold this query into its history
    (refreshing its LRU stamp). [None] when the sid is unknown —
    never opened, closed, or evicted. *)

val close : t -> int -> bool
(** Release a session; [false] when the sid is unknown. *)

val history : t -> int -> (int * int) option
(** [(queries, failures)] resolved so far through a live session. *)

val stats : t -> stats
