(** Segmented request journal: a live {!Robust.Durable.Framed} file plus
    sealed, numbered segments.

    A single append-only journal grows without bound under a long-lived
    daemon. This store bounds the {e live} file instead: once an append
    pushes it past [rotate_bytes], the live bytes are sealed as
    [<path>.<n>] via {!Robust.Durable.write_atomic} (temp file, fsync,
    rename, directory fsync) and the live file restarts from its header.
    Sealed segments are immutable and individually crash-consistent;
    only the live file ever has a torn tail to repair.

    Recovery scans sealed segments oldest-first ([<path>.1], [<path>.2],
    ...), then the live file. The one crash window rotation adds — dying
    after the seal is published but before the live file is reset —
    leaves the live file byte-identical to the newest segment; the scan
    detects that duplicate and drops it, so no request is recovered
    twice. A live file whose header is unreadable is quarantined
    ({!Robust.Durable.quarantine}), never silently destroyed.

    Appends and rotation are not thread-safe; callers serialise (the
    server holds its journal mutex across {!append}). *)

type t

type recovery = {
  payloads : string list;  (** every recovered record, oldest first *)
  sealed : int;  (** sealed segments found on disk *)
  warnings : string list;
      (** human-readable damage reports: torn tails truncated,
          quarantined files, dropped rotation duplicates *)
}

val open_ :
  ?chaos:Robust.Chaos_fs.t ->
  ?rotate_bytes:int ->
  point:string ->
  path:string ->
  header:string ->
  unit ->
  t * recovery
(** Open (creating if absent) the journal at [path], recovering every
    intact record first. [rotate_bytes] enables rotation: an append
    leaving the live file strictly larger seals it. [None] (the
    default) never rotates — the single-file behaviour. [point] names
    the chaos-injection site for live appends; seals use
    [point ^ "-seal"]. Raises [Invalid_argument] if [rotate_bytes] is
    not positive. *)

val append : t -> string -> unit
(** Append one record to the live file (fsync'd), then rotate if the
    threshold is crossed. If sealing fails (injected or real I/O
    error), the live writer is left intact and the exception
    propagates: the record is already durable, and the next append
    retries the rotation. *)

val sealed : t -> int
(** Sealed segments on disk, including those found by recovery. *)

val close : t -> unit
(** Sync and close the live writer. The journal must not be used
    afterwards. *)

type compaction = {
  segments_merged : int;  (** sealed segments merged (>= 2) *)
  records_kept : int;  (** records in the merged segment *)
  duplicates_dropped : int;  (** byte-identical records removed *)
  compact_warnings : string list;
      (** damage reports from scanning the sealed segments *)
}

val compact :
  ?chaos:Robust.Chaos_fs.t ->
  point:string ->
  path:string ->
  header:string ->
  unit ->
  compaction option
(** Merge every sealed segment of the journal at [path] into a single
    [path.1], dropping byte-identical duplicate records (first
    occurrence wins, order otherwise preserved). [None] when fewer than
    two sealed segments exist — compaction is idempotent. The merged
    segment is published with {!Robust.Durable.write_atomic}
    ([point ^ "-compact"] names the chaos-injection site) before the
    old segments are unlinked highest-first, so a crash at any point
    leaves a dense, recoverable segment sequence; records briefly
    duplicated across the merged and a not-yet-unlinked segment are
    byte-identical and removed by the next run. Must only be called
    while the journal is closed — typically right before {!open_}. The
    live file is never touched. *)
