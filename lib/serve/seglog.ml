module Framed = Robust.Durable.Framed

type t = {
  path : string;
  header : string;
  point : string;
  chaos : Robust.Chaos_fs.t option;
  rotate_bytes : int option;
  mutable writer : Framed.writer;
  mutable live_bytes : int;
  mutable sealed : int;
}

type recovery = {
  payloads : string list;
  sealed : int;
  warnings : string list;
}

let segment_path path n = Printf.sprintf "%s.%d" path n

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

(* Sealed segments are numbered densely from 1; the first gap ends the
   sequence, so a crash can never resurrect a stale higher-numbered
   segment from a previous journal generation (seals replace atomically
   and the numbering restarts only when the whole journal is removed). *)
let count_segments path =
  let rec go n =
    if Sys.file_exists (segment_path path (n + 1)) then go (n + 1) else n
  in
  go 0

let scan_segment ~header ~warnings path =
  let scan = Framed.scan ~path in
  match scan.Framed.header with
  | Some h when String.equal h header ->
      (match scan.Framed.tail_error with
      | None -> ()
      | Some (off, why) ->
          (* Should be impossible for an atomically published file;
             report it and keep the intact prefix. *)
          warnings :=
            Printf.sprintf "segment %s: damaged at byte %d (%s); %d record(s) kept"
              path off why
              (List.length scan.Framed.records)
            :: !warnings);
      List.map snd scan.Framed.records
  | _ ->
      let q = Robust.Durable.quarantine ~path ~reason:"unrecognised journal segment header" in
      warnings := Printf.sprintf "segment %s: unrecognised header, quarantined to %s" path q :: !warnings;
      []

let open_ ?chaos ?rotate_bytes ~point ~path ~header () =
  (match rotate_bytes with
  | Some b when b <= 0 -> invalid_arg "Seglog.open_: rotate_bytes must be positive"
  | _ -> ());
  let warnings = ref [] in
  let sealed = count_segments path in
  let sealed_payloads =
    List.concat_map
      (fun n -> scan_segment ~header ~warnings (segment_path path n))
      (List.init sealed (fun i -> i + 1))
  in
  let fresh () =
    Framed.create ?chaos ~point ~path ~header ()
  in
  let writer, live_payloads =
    if not (Sys.file_exists path) then (fresh (), [])
    else begin
      let scan = Framed.scan ~path in
      match scan.Framed.header with
      | Some h when String.equal h header ->
          let newest_seal =
            if sealed = 0 then None
            else Some (read_file (segment_path path sealed))
          in
          let live = read_file path in
          if newest_seal = Some live then begin
            (* Rotation died between publishing the seal and resetting
               the live file: the live bytes are already recovered from
               the segment. Start the live file over. *)
            warnings :=
              Printf.sprintf
                "live file duplicates segment %s (crash mid-rotation); dropped"
                (segment_path path sealed)
              :: !warnings;
            (fresh (), [])
          end
          else begin
            let keep =
              match scan.Framed.tail_error with
              | None -> scan.Framed.length
              | Some (off, why) ->
                  warnings :=
                    Printf.sprintf
                      "corrupted tail at byte %d (%s) truncated (%d good record(s) kept)"
                      off why
                      (List.length scan.Framed.records)
                    :: !warnings;
                  off
            in
            ( Framed.open_append ?chaos ~point ~path ~keep (),
              List.map snd scan.Framed.records )
          end
      | _ ->
          let q = Robust.Durable.quarantine ~path ~reason:"unrecognised serve journal header" in
          warnings := Printf.sprintf "unrecognised header, quarantined to %s" q :: !warnings;
          (fresh (), [])
    end
  in
  let live_bytes = (Unix.stat path).Unix.st_size in
  let t =
    { path; header; point; chaos; rotate_bytes; writer; live_bytes; sealed }
  in
  ( t,
    {
      payloads = sealed_payloads @ live_payloads;
      sealed;
      warnings = List.rev !warnings;
    } )

let rotate t =
  (* Publish first, reset second: if the seal fails the live writer is
     untouched, and the crash window between the two steps is exactly
     the duplicate the recovery scan drops. *)
  Framed.sync t.writer;
  let n = t.sealed + 1 in
  Robust.Durable.write_atomic ?chaos:t.chaos ~point:(t.point ^ "-seal")
    ~path:(segment_path t.path n)
    (read_file t.path);
  t.sealed <- n;
  Framed.close t.writer;
  t.writer <- Framed.create ?chaos:t.chaos ~point:t.point ~path:t.path ~header:t.header ();
  t.live_bytes <- String.length t.header + 1

let append t payload =
  Framed.append t.writer payload;
  t.live_bytes <- t.live_bytes + String.length (Framed.frame payload);
  match t.rotate_bytes with
  | Some limit when t.live_bytes > limit -> rotate t
  | _ -> ()

let sealed (t : t) = t.sealed

let close t = Framed.close t.writer

type compaction = {
  segments_merged : int;
  records_kept : int;
  duplicates_dropped : int;
  compact_warnings : string list;
}

(* Merge every sealed segment into a single [path.1]. Runs on a closed
   journal only (before {!open_}): the live file is never touched, so a
   torn live tail is still repaired by the subsequent open. Publish
   first, unlink second, highest number first — a crash mid-compaction
   leaves either the old dense segment sequence (publish never landed:
   write_atomic is all-or-nothing) or a dense prefix whose first segment
   already holds every record; the duplicated bytes in not-yet-unlinked
   segments are byte-identical records, which the next compaction run
   drops again. *)
let compact ?chaos ~point ~path ~header () =
  let n = count_segments path in
  if n < 2 then None
  else begin
    let warnings = ref [] in
    let payloads =
      List.concat_map
        (fun i -> scan_segment ~header ~warnings (segment_path path i))
        (List.init n (fun i -> i + 1))
    in
    let seen = Hashtbl.create (List.length payloads) in
    let kept =
      List.filter
        (fun payload ->
          if Hashtbl.mem seen payload then false
          else begin
            Hashtbl.add seen payload ();
            true
          end)
        payloads
    in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf header;
    Buffer.add_char buf '\n';
    List.iter (fun payload -> Buffer.add_string buf (Framed.frame payload)) kept;
    Robust.Durable.write_atomic ?chaos ~point:(point ^ "-compact")
      ~path:(segment_path path 1) (Buffer.contents buf);
    for i = n downto 2 do
      try Sys.remove (segment_path path i) with Sys_error _ -> ()
    done;
    Some
      {
        segments_merged = n;
        records_kept = List.length kept;
        duplicates_dropped = List.length payloads - List.length kept;
        compact_warnings = List.rev !warnings;
      }
  end
