(** Lock-free serving counters.

    Atomics, not a mutex: workers bump them on the hot path and the
    drain summary reads them once at the end. Counts are per daemon
    lifetime; the cache's own counters (builds/hits/evictions) live in
    {!Experiments.Strategy.Cache} and are reported by the [stats]
    query, not here. *)

type t

val create : unit -> t

val incr_accepted : t -> unit
(** A connection made it past admission into the queue. *)

val incr_shed : t -> unit
(** A connection was refused with [overloaded] (queue full). *)

val incr_requests : t -> unit
(** A request frame was read and dispatched to the handler. *)

val incr_answered : t -> unit
(** An [answer]/[pong]/[stats] reply was sent. *)

val incr_timeouts : t -> unit
val incr_failed : t -> unit

val incr_batches : t -> unit
(** A worker round dispatched at least one request to the handler. *)

val incr_idle_closed : t -> unit
(** A connection was closed for exceeding the idle timeout. *)

val accepted : t -> int
val shed : t -> int
val requests : t -> int
val answered : t -> int
val timeouts : t -> int
val failed : t -> int
val batches : t -> int
val idle_closed : t -> int

val summary : t -> string
(** One deterministic line for the drain message:
    [accepted=N shed=N requests=N answered=N timeouts=N failed=N
    batches=N idle-closed=N]. New fields are only ever appended — drill
    scripts substring-match the head of this line. *)
