type t = {
  cache : Experiments.Strategy.Cache.t;
  budget : float;
  now : (unit -> float) option;
  slow : float;
  sleep : float -> unit;
  chaos : Robust.Chaos.t option;
  counter : int Atomic.t;
}

let create ?(budget = infinity) ?now ?(slow = 0.0) ?(sleep = Unix.sleepf)
    ?chaos ~cache () =
  if budget <= 0.0 then invalid_arg "Handler.create: budget <= 0";
  if slow < 0.0 then invalid_arg "Handler.create: slow < 0";
  { cache; budget; now; slow; sleep; chaos; counter = Atomic.make 0 }

let cache t = t.cache

let no_plan = { Protocol.next = 0.0; k = 0; work = 0.0 }

let answer dp q =
  let u = Core.Dp.quantum dp in
  let tq = Core.Dp.horizon_quanta dp in
  let kmax = Core.Dp.kmax dp in
  (* Same clamp as Dp.clamp_n: remaining time in whole quanta. *)
  let n = int_of_float (Float.floor ((q.Protocol.tleft /. u) +. 1e-9)) in
  let n = if n < 0 then 0 else min n tq in
  let state =
    if n = 0 then None
    else if not q.Protocol.recovering then
      (* Fresh plan: δ = 0, the precomputed best initial k. *)
      match Core.Dp.best_k dp ~n ~delta:false with
      | 0 -> None
      | k -> Some (k, false)
    else
      (* Re-plan after a failure: δ = 1, best m within the checkpoints
         the client still has — Equation (8)'s recursion, with kleft
         playing the k_remaining the simulation policy tracks. *)
      let cap =
        match q.Protocol.kleft with
        | None -> kmax
        | Some k -> min (max 1 k) kmax
      in
      match Core.Dp.arg_best_m dp ~n ~k:cap with
      | 0 -> None
      | m -> Some (m, true)
  in
  match state with
  | None -> Protocol.Answer no_plan
  | Some (k, delta) ->
      Protocol.Answer
        {
          Protocol.next =
            float_of_int (Core.Dp.first_checkpoint_q dp ~n ~k ~delta) *. u;
          k;
          work = Core.Dp.expected_work_q dp ~n ~k ~delta;
        }

(* One cache round trip: build on miss, then look the table up. *)
let fetch_table t q =
  let dist =
    Fault.Trace.Exponential { rate = q.Protocol.params.Fault.Params.lambda }
  in
  Experiments.Strategy.ensure t.cache ~params:q.Protocol.params
    ~horizon:q.Protocol.horizon ~dist
    [ Experiments.Spec.Dynamic_programming { quantum = q.Protocol.quantum } ];
  match
    Experiments.Strategy.dp_table t.cache ~params:q.Protocol.params
      ~horizon:q.Protocol.horizon ~quantum:q.Protocol.quantum
  with
  | Error e -> Error (Experiments.Strategy.error_message e)
  | Ok dp -> Ok dp

(* Per-query policy (budget, chaos, injected slowness) around a
   pluggable table fetch — [query] fetches straight from the cache,
   [handle_batch] memoizes the fetch across the batch. *)
let query_with t ~fetch q =
  let deadline =
    if t.budget = infinity then Robust.Deadline.unlimited
    else Robust.Deadline.start ?now:t.now ~budget:t.budget ()
  in
  let key = Atomic.fetch_and_add t.counter 1 in
  (match t.chaos with
  | Some chaos -> Robust.Chaos.inject chaos ~key ~attempt:0
  | None -> ());
  if t.slow > 0.0 then t.sleep t.slow;
  if Robust.Deadline.expired deadline then Protocol.Timeout
  else
    (* The build runs to completion even when it overruns the budget:
       the table stays cached, the client's retry will hit it. *)
    match fetch q with
    | Error msg -> Protocol.Failed msg
    | Ok dp ->
        if Robust.Deadline.expired deadline then Protocol.Timeout
        else answer dp q

let handle_with t ~fetch request =
  match request with
  | Protocol.Ping -> Protocol.Pong
  | Protocol.Stats ->
      Protocol.Stats_reply (Experiments.Strategy.Cache.stats t.cache)
  | Protocol.Session_open _ | Protocol.Session_query _
  | Protocol.Session_close _ ->
      (* Sessions are server state; a handler reached directly has
         none. The server resolves session requests into full queries
         before they get here. *)
      Protocol.Failed "session requests need the daemon"
  | Protocol.Query q -> (
      try query_with t ~fetch q with
      | Robust.Chaos.Injected msg -> Protocol.Failed ("injected: " ^ msg)
      | Invalid_argument msg | Failure msg -> Protocol.Failed msg)

let handle t request = handle_with t ~fetch:(fetch_table t) request

let handle_payload t payload =
  match Protocol.request_of_string payload with
  | Ok request -> handle t request
  | Error msg -> Protocol.Failed msg

(* Answer a batch sharing one cache round trip per distinct table: the
   first query against a (params, horizon, quantum) triple pays the
   ensure-and-lookup, its batchmates reuse the result without touching
   the cache lock. Per-query policy (budget, chaos, slow) still runs
   per member, in order, so a batched timeout drill behaves exactly
   like a sequential one. *)
let handle_batch t requests =
  let memo = ref [] in
  let fetch q =
    let key = (q.Protocol.params, q.Protocol.horizon, q.Protocol.quantum) in
    match List.assoc_opt key !memo with
    | Some r -> r
    | None ->
        let r = fetch_table t q in
        memo := (key, r) :: !memo;
        r
  in
  List.map
    (function
      | Error msg -> Protocol.Failed msg
      | Ok request -> handle_with t ~fetch request)
    requests
