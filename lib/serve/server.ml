type config = {
  socket_path : string;
  listen : string option;
  workers : int;
  queue_capacity : int;
  batch : int;
  max_conns : int option;
  idle_timeout : float option;
  max_sessions : int;
  budget : float option;
  slow : float;
  journal : string option;
  journal_rotate : int option;
  journal_compact : bool;
  chaos : Robust.Chaos.t option;
  chaos_fs : Robust.Chaos_fs.t option;
  max_tables : int option;
  max_bytes : int option;
  jobs : int option;
  quiet : bool;
}

let journal_header = "fixedlen-serve-journal v1"
let journal_point = "serve-journal"

type state = {
  cfg : config;
  handler : Handler.t;
  metrics : Metrics.t;
  sessions : Session.t;
  queue : conn Bqueue.t;
  active : int Atomic.t;
  journal : Seglog.t option;
  journal_lock : Mutex.t;
  stop : bool Atomic.t;
}

and conn = {
  wire : Wire.conn;
  mutable negotiated : bool;
  mutable last_active : float;
  mutable alive : bool;
}

let is_query payload =
  String.length payload >= 5 && String.equal (String.sub payload 0 5) "query"

(* Journal the request before answering it. Best-effort on injected
   I/O errors (Framed.append already repaired the tail, a failed seal
   leaves the live writer intact; the answer is worth more than the
   journal line) — but a chaos {e crash} point is a SIGKILL inside the
   append, which is the whole point of the drill. *)
let journal_line t payload =
  match t.journal with
  | Some log -> (
      Mutex.lock t.journal_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.journal_lock)
        (fun () ->
          try Seglog.append log payload
          with Unix.Unix_error _ | Sys_error _ -> ()))
  | None -> ()

let reply_string = Protocol.response_to_string

let encode_response wire resp =
  match Wire.mode wire with
  | Wire.Text -> Protocol.response_to_string resp
  | Wire.Binary -> Protocol.response_to_binary resp

(* [Invalid_argument] here is [Wire.send] refusing a reply beyond the
   connection's negotiated frame bound: a connection problem, never a
   worker-killing one — the caller hangs up exactly as for a dead
   peer. *)
let send_or_give_up c resp =
  try
    Wire.send c.wire (encode_response c.wire resp);
    true
  with Unix.Unix_error _ | Invalid_argument _ -> false

let close_conn t c =
  if c.alive then begin
    c.alive <- false;
    Atomic.decr t.active;
    try Unix.close (Wire.fd c.wire) with Unix.Unix_error _ -> ()
  end

(* Framing is gone on this connection; answer what we can and hang up. *)
let hang_up_torn t c why =
  Metrics.incr_failed t.metrics;
  ignore (send_or_give_up c (Protocol.Failed ("torn frame: " ^ why)));
  close_conn t c

(* What one readable connection contributes to a worker round. *)
type event =
  | Nothing  (** nothing actionable yet (hello consumed, or conn gone) *)
  | Direct of Protocol.response  (** answered by the server itself *)
  | Batch_item of (Protocol.request, string) result
      (** goes to the handler with the rest of the round's batch *)

(* Decode one payload, journal what must survive a crash, and resolve
   session requests against the session table.

   Journal discipline — the journal is canonical text, always:
   - text-mode [query ...] payloads are journaled as the raw bytes that
     crossed the wire (they are already canonical text; byte-identity
     with the wire is what the crash drill compares);
   - binary queries are re-encoded through [request_to_string] first;
   - session queries are journaled only after resolving, as the full
     canonical [query ...] line — sids are not durable, the resolved
     platform is, so replay after a crash is bit-identical without the
     session table. *)
let decode t c payload =
  let journaling = t.journal <> None in
  let req =
    match Wire.mode c.wire with
    | Wire.Text ->
        if journaling && is_query payload then journal_line t payload;
        Protocol.request_of_string payload
    | Wire.Binary -> (
        match Protocol.request_of_binary payload with
        | Ok (Protocol.Query _ as r) ->
            (* The %.17g re-encoding is pure journal work; skip it on
               the hot path when nothing is journaled. *)
            if journaling then journal_line t (Protocol.request_to_string r);
            Ok r
        | r -> r)
  in
  match req with
  | Ok (Protocol.Session_open p) ->
      Direct (Protocol.Session (Session.open_ t.sessions p))
  | Ok (Protocol.Session_close sid) ->
      if Session.close t.sessions sid then Direct (Protocol.Session sid)
      else Direct (Protocol.Failed (Printf.sprintf "unknown session sid=%d" sid))
  | Ok (Protocol.Session_query sq) -> (
      match
        Session.resolve t.sessions ~sid:sq.Protocol.sid
          ~tleft:sq.Protocol.sq_tleft ~recovering:sq.Protocol.sq_recovering
      with
      | None ->
          Direct
            (Protocol.Failed
               (Printf.sprintf "unknown session sid=%d" sq.Protocol.sid))
      | Some plat ->
          let q =
            {
              Protocol.params = plat.Protocol.plat_params;
              horizon = plat.Protocol.plat_horizon;
              quantum = plat.Protocol.plat_quantum;
              tleft = sq.Protocol.sq_tleft;
              kleft = sq.Protocol.sq_kleft;
              recovering = sq.Protocol.sq_recovering;
            }
          in
          if journaling then
            journal_line t (Protocol.request_to_string (Protocol.Query q));
          Batch_item (Ok (Protocol.Query q)))
  | r -> Batch_item r

let read_frame t c =
  match Wire.recv c.wire with
  | Error Wire.Closed ->
      close_conn t c;
      Nothing
  | Error (Wire.Torn why) ->
      hang_up_torn t c why;
      Nothing
  | Ok payload ->
      Metrics.incr_requests t.metrics;
      c.last_active <- Unix.gettimeofday ();
      decode t c payload

let read_event t c =
  if c.negotiated then read_frame t c
  else
    match Wire.server_negotiate c.wire with
    | Error Wire.Closed ->
        close_conn t c;
        Nothing
    | Error (Wire.Torn why) ->
        hang_up_torn t c why;
        Nothing
    | Ok () ->
        c.negotiated <- true;
        c.last_active <- Unix.gettimeofday ();
        (* The hello may be all that has arrived; only read a frame when
           its bytes are already buffered. *)
        if Wire.buffered c.wire then read_frame t c else Nothing

(* Frames one connection may contribute to a single worker round: high
   enough that a pipelining client fills real batches, low enough that
   one hot connection cannot starve its batchmates. *)
let max_frames_per_round = 32

(* One worker round over the connections that have input: drain every
   frame already buffered on each (up to {!max_frames_per_round}), so a
   pipelining client's burst becomes one {!Handler.handle_batch} round
   sharing cache round trips. Each connection's events are decoded and
   answered strictly in arrival order — session opens land before the
   session queries pipelined behind them, and replies never reorder
   within a connection. *)
let answer_round t ready =
  let drain_conn c =
    let rec go acc n =
      if n = 0 || not c.alive then List.rev acc
      else
        let acc =
          match read_event t c with Nothing -> acc | ev -> ev :: acc
        in
        if c.alive && Wire.buffered c.wire then go acc (n - 1)
        else List.rev acc
    in
    (c, go [] max_frames_per_round)
  in
  let events = List.map drain_conn ready in
  let items =
    List.concat_map
      (fun (_, evs) ->
        List.filter_map
          (function Batch_item r -> Some r | _ -> None)
          evs)
      events
  in
  if items <> [] then Metrics.incr_batches t.metrics;
  let replies = ref (Handler.handle_batch t.handler items) in
  let next_reply () =
    match !replies with
    | [] -> Protocol.Failed "internal: batch reply underrun"
    | r :: rest ->
        replies := rest;
        r
  in
  let count resp =
    match resp with
    | Protocol.Timeout -> Metrics.incr_timeouts t.metrics
    | Protocol.Failed _ -> Metrics.incr_failed t.metrics
    | _ -> Metrics.incr_answered t.metrics
  in
  List.iter
    (fun (c, evs) ->
      let out = ref [] in
      List.iter
        (fun ev ->
          match ev with
          | Nothing -> ()
          | Direct resp ->
              if c.alive then begin
                count resp;
                out := resp :: !out
              end
          | Batch_item _ ->
              (* Consume the reply even for a connection that died
                 mid-round: pairing is positional. *)
              let resp = next_reply () in
              if c.alive then begin
                count resp;
                out := resp :: !out
              end)
        evs;
      match List.rev !out with
      | [] -> ()
      | resps -> (
          (* The whole round's replies to this connection go out in one
             write — with batched rounds, the per-reply syscall is the
             dominant cost this amortizes. *)
          try
            Wire.send_many c.wire (List.map (encode_response c.wire) resps)
          with Unix.Unix_error _ | Invalid_argument _ -> close_conn t c))
    events

let sweep_idle t live =
  match t.cfg.idle_timeout with
  | None -> ()
  | Some limit ->
      let cutoff = Unix.gettimeofday () -. limit in
      List.iter
        (fun c ->
          if c.alive && c.last_active < cutoff then begin
            Metrics.incr_idle_closed t.metrics;
            close_conn t c
          end)
        live

(* Serve a batch of connections until every one of them is gone. Bytes
   already sitting in a connection buffer trump [select] (the kernel
   does not know about them); otherwise the 0.2 s select timeout bounds
   the idle-sweep cadence. The worker tops its batch up from the
   queue opportunistically, so a long-lived connection does not strand
   queued ones behind it. The idle sweep runs on {e every} iteration —
   after the round, so freshly answered connections carry fresh
   timestamps — because one hot connection must not keep its expired
   batchmates open past the idle timeout. *)
let multiplex t first =
  let live = ref first in
  while !live <> [] do
    let room = t.cfg.batch - List.length !live in
    if room > 0 then
      match Bqueue.try_drain t.queue ~max:room with
      | [] -> ()
      | more -> live := !live @ more
    else ();
    let buffered = List.filter (fun c -> Wire.buffered c.wire) !live in
    let ready =
      if buffered <> [] then buffered
      else
        match
          Unix.select (List.map (fun c -> Wire.fd c.wire) !live) [] [] 0.2
        with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
        | [], _, _ -> []
        | fds, _, _ -> List.filter (fun c -> List.mem (Wire.fd c.wire) fds) !live
    in
    if ready <> [] then answer_round t ready;
    sweep_idle t !live;
    live := List.filter (fun c -> c.alive) !live
  done

let rec worker_loop t =
  match Bqueue.pop_batch t.queue ~max:t.cfg.batch with
  | [] -> ()
  | conns ->
      multiplex t conns;
      worker_loop t

let make_conn fd =
  {
    wire = Wire.of_fd fd;
    negotiated = false;
    last_active = Unix.gettimeofday ();
    alive = true;
  }

(* How long a worker's blocking read may wait for the rest of a
   half-sent frame before the connection is torn. [select] only promises
   one readable byte, so without this bound a client that stalls
   mid-frame would pin its whole worker round inside [Wire.recv]. *)
let recv_stall_timeout = 5.0

(* Admission control lives in the accept loop: a connection the queue
   (or the connection cap) will not take is answered and closed here,
   so shedding stays O(1) and cannot be starved by busy workers. *)
let accept_one t lsock =
  match Unix.accept lsock with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | fd, addr ->
      (match addr with
      | Unix.ADDR_INET _ -> (
          try Unix.setsockopt fd Unix.TCP_NODELAY true
          with Unix.Unix_error _ -> ())
      | _ -> ());
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO recv_stall_timeout
       with Unix.Unix_error _ | Invalid_argument _ -> ());
      let shed () =
        Metrics.incr_shed t.metrics;
        (try Wire.send (Wire.of_fd fd) (reply_string Protocol.Overloaded)
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      in
      let capped =
        match t.cfg.max_conns with
        | Some m -> Atomic.get t.active >= m
        | None -> false
      in
      if capped then shed ()
      else begin
        Atomic.incr t.active;
        if Bqueue.try_push t.queue (make_conn fd) then
          Metrics.incr_accepted t.metrics
        else begin
          Atomic.decr t.active;
          shed ()
        end
      end

(* Connections still waiting in the admission queue age too: when every
   worker is pinned on long-lived connections, a queued socket would
   otherwise hold its slot (and its [active] count) forever. *)
let sweep_queued t =
  match t.cfg.idle_timeout with
  | None -> ()
  | Some limit ->
      let cutoff = Unix.gettimeofday () -. limit in
      List.iter
        (fun c ->
          Metrics.incr_idle_closed t.metrics;
          close_conn t c)
        (Bqueue.evict t.queue ~f:(fun c -> c.last_active < cutoff))

let rec accept_loop t lsocks =
  if not (Atomic.get t.stop) then begin
    (* The timeout is the shutdown-latency bound: signal handlers only
       set the flag; this loop observes it within 0.2 s. *)
    (match Unix.select lsocks [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | ready, _, _ -> List.iter (accept_one t) ready);
    sweep_queued t;
    accept_loop t lsocks
  end

(* Recovery (torn tails, quarantine, rotation duplicates) lives in
   {!Seglog}; the server just opens the store and reports the count. *)
let open_journal (cfg : config) =
  match cfg.journal with
  | None -> (None, None, { Seglog.payloads = []; sealed = 0; warnings = [] })
  | Some path ->
      (* Compaction runs strictly before the journal opens: it only
         rewrites sealed segments, and the open below re-scans whatever
         it produced. *)
      let compaction =
        if cfg.journal_compact then
          Seglog.compact ?chaos:cfg.chaos_fs ~point:journal_point ~path
            ~header:journal_header ()
        else None
      in
      let log, recovery =
        Seglog.open_ ?chaos:cfg.chaos_fs ?rotate_bytes:cfg.journal_rotate
          ~point:journal_point ~path ~header:journal_header ()
      in
      (Some log, compaction, recovery)

let say cfg fmt =
  Printf.ksprintf
    (fun line ->
      if not cfg.quiet then begin
        print_string line;
        print_newline ();
        flush stdout
      end)
    fmt

let parse_listen spec =
  let bad () =
    invalid_arg (Printf.sprintf "serve: --listen %S is not HOST:PORT" spec)
  in
  match String.rindex_opt spec ':' with
  | None -> bad ()
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p <= 65535 -> (host, p)
      | _ -> bad ())

let resolve_host host =
  if String.equal host "" then Unix.inet_addr_any
  else
    try Unix.inet_addr_of_string host
    with Failure _ -> (
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found ->
        invalid_arg (Printf.sprintf "serve: cannot resolve host %S" host))

let validate (cfg : config) =
  if cfg.workers < 1 then invalid_arg "Server: workers < 1";
  if cfg.batch < 1 then invalid_arg "Server: batch < 1";
  if cfg.max_sessions < 1 then invalid_arg "Server: max-sessions < 1";
  (match cfg.max_conns with
  | Some m when m < 1 -> invalid_arg "Server: max-conns < 1"
  | _ -> ());
  match cfg.idle_timeout with
  | Some s when s <= 0.0 -> invalid_arg "Server: idle-timeout <= 0"
  | _ -> ()

(* Bind every listener and build the shared state; raises on a socket
   or journal error (callers decide between exit code 1 and a bubbled
   exception). *)
let setup ~stop cfg =
  validate cfg;
  let cache =
    Experiments.Strategy.Cache.create ?max_tables:cfg.max_tables
      ?max_bytes:cfg.max_bytes ?jobs:cfg.jobs ()
  in
  let handler =
    Handler.create ?budget:cfg.budget ~slow:cfg.slow ?chaos:cfg.chaos ~cache ()
  in
  let journal, compaction, recovery = open_journal cfg in
  let t =
    {
      cfg;
      handler;
      metrics = Metrics.create ();
      sessions = Session.create ~capacity:cfg.max_sessions;
      queue = Bqueue.create ~capacity:cfg.queue_capacity;
      active = Atomic.make 0;
      journal;
      journal_lock = Mutex.create ();
      stop;
    }
  in
  (* The daemon owns its socket path: a stale file left by a SIGKILLed
     predecessor would make bind fail, so clear it first. *)
  if Sys.file_exists cfg.socket_path then Unix.unlink cfg.socket_path;
  let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lsock (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen lsock 64;
  let tcp =
    match cfg.listen with
    | None -> None
    | Some spec ->
        let host, port = parse_listen spec in
        let addr = resolve_host host in
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt s Unix.SO_REUSEADDR true;
        (try
           Unix.bind s (Unix.ADDR_INET (addr, port));
           Unix.listen s 64
         with e ->
           (try Unix.close s with Unix.Unix_error _ -> ());
           (try Unix.close lsock with Unix.Unix_error _ -> ());
           raise e);
        let bound_port =
          match Unix.getsockname s with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> port
        in
        let shown = if String.equal host "" then "0.0.0.0" else host in
        Some (s, shown, bound_port)
  in
  (match cfg.journal with
  | Some path ->
      (match compaction with
      | Some c ->
          List.iter (say cfg "serve: journal %s: %s" path)
            c.Seglog.compact_warnings;
          say cfg "serve: journal %s compacted segments=%d kept=%d dropped=%d"
            path c.Seglog.segments_merged c.Seglog.records_kept
            c.Seglog.duplicates_dropped
      | None -> ());
      List.iter (say cfg "serve: journal %s: %s" path) recovery.Seglog.warnings;
      say cfg "serve: journal %s recovered=%d segments=%d" path
        (List.length recovery.Seglog.payloads)
        recovery.Seglog.sealed
  | None -> ());
  say cfg "serve: listening on %s workers=%d queue=%d" cfg.socket_path
    cfg.workers cfg.queue_capacity;
  (match tcp with
  | Some (_, host, port) -> say cfg "serve: listening on tcp %s:%d" host port
  | None -> ());
  (t, lsock, tcp)

type handle = {
  h_state : state;
  h_lsocks : Unix.file_descr list;
  h_tcp_port : int option;
  h_pool : Parallel.Pool.t;
  h_workers : Thread.t;
  h_accepter : Thread.t option;
}

let tcp_port h = h.h_tcp_port
let metrics h = h.h_state.metrics

let spawn_workers (t : state) =
  (* Worker loops live on pool domains; the dispatcher thread
     participates as the pool's calling worker, so [workers] loops
     run concurrently while the accept loop (and, under [run], signal
     delivery) stays on its own thread. *)
  let pool = Parallel.Pool.create ~domains:t.cfg.workers () in
  let workers =
    Thread.create
      (fun () ->
        Parallel.Pool.map pool
          ~f:(fun _ -> worker_loop t)
          (Array.init t.cfg.workers Fun.id))
      ()
  in
  (pool, workers)

(* Drain: no new admissions, finish everything already admitted, then
   make the journal durable before reporting. *)
let drain h =
  let t = h.h_state in
  List.iter
    (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
    h.h_lsocks;
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  Bqueue.close t.queue;
  ignore (Thread.join h.h_workers);
  Parallel.Pool.shutdown h.h_pool;
  (match t.journal with Some log -> Seglog.close log | None -> ());
  say t.cfg "serve: drained %s" (Metrics.summary t.metrics)

let start cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = Atomic.make false in
  let t, lsock, tcp = setup ~stop cfg in
  let lsocks = lsock :: (match tcp with Some (s, _, _) -> [ s ] | None -> []) in
  let pool, workers = spawn_workers t in
  let accepter = Thread.create (fun () -> accept_loop t lsocks) () in
  {
    h_state = t;
    h_lsocks = lsocks;
    h_tcp_port = (match tcp with Some (_, _, p) -> Some p | None -> None);
    h_pool = pool;
    h_workers = workers;
    h_accepter = Some accepter;
  }

let stop h =
  Atomic.set h.h_state.stop true;
  (match h.h_accepter with Some th -> Thread.join th | None -> ());
  drain h

let run cfg =
  (* A dead client mid-reply must be EPIPE, not a process kill. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = Atomic.make false in
  let request_stop _ = Atomic.set stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  match setup ~stop cfg with
  | exception Unix.Unix_error (err, fn, _) ->
      Printf.eprintf "serve: cannot listen: %s (%s)\n%!"
        (Unix.error_message err) fn;
      1
  | exception Invalid_argument msg ->
      Printf.eprintf "%s\n%!" msg;
      1
  | t, lsock, tcp ->
      let lsocks =
        lsock :: (match tcp with Some (s, _, _) -> [ s ] | None -> [])
      in
      let pool, workers = spawn_workers t in
      let h =
        {
          h_state = t;
          h_lsocks = lsocks;
          h_tcp_port = (match tcp with Some (_, _, p) -> Some p | None -> None);
          h_pool = pool;
          h_workers = workers;
          h_accepter = None;
        }
      in
      accept_loop t lsocks;
      drain h;
      0
