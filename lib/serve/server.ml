type config = {
  socket_path : string;
  workers : int;
  queue_capacity : int;
  budget : float option;
  slow : float;
  journal : string option;
  journal_rotate : int option;
  journal_compact : bool;
  chaos : Robust.Chaos.t option;
  chaos_fs : Robust.Chaos_fs.t option;
  max_tables : int option;
  max_bytes : int option;
  jobs : int option;
  quiet : bool;
}

let journal_header = "fixedlen-serve-journal v1"
let journal_point = "serve-journal"

type state = {
  cfg : config;
  handler : Handler.t;
  metrics : Metrics.t;
  queue : Unix.file_descr Bqueue.t;
  journal : Seglog.t option;
  journal_lock : Mutex.t;
  stop : bool Atomic.t;
}

let is_query payload =
  String.length payload >= 5 && String.equal (String.sub payload 0 5) "query"

(* Journal the request before answering it. Best-effort on injected
   I/O errors (Framed.append already repaired the tail, a failed seal
   leaves the live writer intact; the answer is worth more than the
   journal line) — but a chaos {e crash} point is a SIGKILL inside the
   append, which is the whole point of the drill. *)
let journal_request t payload =
  match t.journal with
  | Some log when is_query payload -> (
      Mutex.lock t.journal_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.journal_lock)
        (fun () ->
          try Seglog.append log payload
          with Unix.Unix_error _ | Sys_error _ -> ()))
  | _ -> ()

let reply_string = Protocol.response_to_string

let serve_connection t fd =
  let send_or_give_up resp =
    try
      Wire.send fd (reply_string resp);
      true
    with Unix.Unix_error _ -> false
  in
  let rec loop () =
    match Wire.recv fd with
    | Error Wire.Closed -> ()
    | Error (Wire.Torn why) ->
        (* Framing is gone; answer what we can and hang up. *)
        Metrics.incr_failed t.metrics;
        ignore (send_or_give_up (Protocol.Failed ("torn frame: " ^ why)))
    | Ok payload ->
        Metrics.incr_requests t.metrics;
        journal_request t payload;
        let resp = Handler.handle_payload t.handler payload in
        (match resp with
        | Protocol.Timeout -> Metrics.incr_timeouts t.metrics
        | Protocol.Failed _ -> Metrics.incr_failed t.metrics
        | _ -> Metrics.incr_answered t.metrics);
        if send_or_give_up resp then loop ()
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    loop

let rec worker_loop t =
  match Bqueue.pop t.queue with
  | None -> ()
  | Some fd ->
      serve_connection t fd;
      worker_loop t

(* Admission control lives in the accept loop: a connection the queue
   will not take is answered and closed here, so shedding stays O(1)
   and cannot be starved by busy workers. *)
let accept_one t lsock =
  match Unix.accept lsock with
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | fd, _ ->
      if Bqueue.try_push t.queue fd then Metrics.incr_accepted t.metrics
      else begin
        Metrics.incr_shed t.metrics;
        (try Wire.send fd (reply_string Protocol.Overloaded)
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end

let rec accept_loop t lsock =
  if not (Atomic.get t.stop) then begin
    (* The timeout is the shutdown-latency bound: signal handlers only
       set the flag; this loop observes it within 0.2 s. *)
    (match Unix.select [ lsock ] [] [] 0.2 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | [], _, _ -> ()
    | _ -> accept_one t lsock);
    accept_loop t lsock
  end

(* Recovery (torn tails, quarantine, rotation duplicates) lives in
   {!Seglog}; the server just opens the store and reports the count. *)
let open_journal (cfg : config) =
  match cfg.journal with
  | None -> (None, None, { Seglog.payloads = []; sealed = 0; warnings = [] })
  | Some path ->
      (* Compaction runs strictly before the journal opens: it only
         rewrites sealed segments, and the open below re-scans whatever
         it produced. *)
      let compaction =
        if cfg.journal_compact then
          Seglog.compact ?chaos:cfg.chaos_fs ~point:journal_point ~path
            ~header:journal_header ()
        else None
      in
      let log, recovery =
        Seglog.open_ ?chaos:cfg.chaos_fs ?rotate_bytes:cfg.journal_rotate
          ~point:journal_point ~path ~header:journal_header ()
      in
      (Some log, compaction, recovery)

let say cfg fmt =
  Printf.ksprintf
    (fun line ->
      if not cfg.quiet then begin
        print_string line;
        print_newline ();
        flush stdout
      end)
    fmt

let run cfg =
  if cfg.workers < 1 then invalid_arg "Server.run: workers < 1";
  (* A dead client mid-reply must be EPIPE, not a process kill. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let stop = Atomic.make false in
  let request_stop _ = Atomic.set stop true in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
  Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
  match
    let cache =
      Experiments.Strategy.Cache.create ?max_tables:cfg.max_tables
        ?max_bytes:cfg.max_bytes ?jobs:cfg.jobs ()
    in
    let handler =
      Handler.create
        ?budget:cfg.budget
        ~slow:cfg.slow ?chaos:cfg.chaos ~cache ()
    in
    let journal, compaction, recovery = open_journal cfg in
    let t =
      {
        cfg;
        handler;
        metrics = Metrics.create ();
        queue = Bqueue.create ~capacity:cfg.queue_capacity;
        journal;
        journal_lock = Mutex.create ();
        stop;
      }
    in
    (* The daemon owns its socket path: a stale file left by a SIGKILLed
       predecessor would make bind fail, so clear it first. *)
    if Sys.file_exists cfg.socket_path then Unix.unlink cfg.socket_path;
    let lsock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind lsock (Unix.ADDR_UNIX cfg.socket_path);
    Unix.listen lsock 64;
    (t, lsock, compaction, recovery)
  with
  | exception Unix.Unix_error (err, fn, _) ->
      Printf.eprintf "serve: cannot listen: %s (%s)\n%!"
        (Unix.error_message err) fn;
      1
  | t, lsock, compaction, recovery ->
      (match cfg.journal with
      | Some path ->
          (match compaction with
          | Some c ->
              List.iter (say cfg "serve: journal %s: %s" path)
                c.Seglog.compact_warnings;
              say cfg
                "serve: journal %s compacted segments=%d kept=%d dropped=%d"
                path c.Seglog.segments_merged c.Seglog.records_kept
                c.Seglog.duplicates_dropped
          | None -> ());
          List.iter (say cfg "serve: journal %s: %s" path)
            recovery.Seglog.warnings;
          say cfg "serve: journal %s recovered=%d segments=%d" path
            (List.length recovery.Seglog.payloads)
            recovery.Seglog.sealed
      | None -> ());
      say cfg "serve: listening on %s workers=%d queue=%d" cfg.socket_path
        cfg.workers cfg.queue_capacity;
      (* Worker loops live on pool domains; the dispatcher thread
         participates as the pool's calling worker, so [workers] loops
         run concurrently while the main thread keeps the accept loop
         (and signal delivery) to itself. *)
      let pool = Parallel.Pool.create ~domains:cfg.workers () in
      let workers =
        Thread.create
          (fun () ->
            Parallel.Pool.map pool
              ~f:(fun _ -> worker_loop t)
              (Array.init cfg.workers Fun.id))
          ()
      in
      accept_loop t lsock;
      (* Drain: no new admissions, finish everything already admitted,
         then make the journal durable before reporting. *)
      (try Unix.close lsock with Unix.Unix_error _ -> ());
      (try Unix.unlink cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
      Bqueue.close t.queue;
      ignore (Thread.join workers);
      Parallel.Pool.shutdown pool;
      (match t.journal with
      | Some log -> Seglog.close log
      | None -> ());
      say cfg "serve: drained %s" (Metrics.summary t.metrics);
      0
