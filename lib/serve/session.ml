type entry = {
  platform : Protocol.platform;
  mutable queries : int;
  mutable failures : int;
  mutable last_tleft : float;
  mutable stamp : int;
}

type stats = { st_opened : int; st_evicted : int; st_resident : int }

type t = {
  lock : Mutex.t;
  table : (int, entry) Hashtbl.t;
  capacity : int;
  mutable next_sid : int;
  mutable tick : int;
  mutable opened : int;
  mutable evicted : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Session.create: capacity < 1";
  {
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    capacity;
    next_sid = 1;
    tick = 0;
    opened = 0;
    evicted = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let touch t entry =
  t.tick <- t.tick + 1;
  entry.stamp <- t.tick

(* Same discipline as {!Experiments.Strategy.Cache}: scan for the
   minimum stamp. O(n) per eviction, and n is the session bound — the
   scan is noise next to even one DP answer. *)
let evict_oldest t =
  let victim =
    Hashtbl.fold
      (fun sid entry acc ->
        match acc with
        | Some (_, best) when best.stamp <= entry.stamp -> acc
        | _ -> Some (sid, entry))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (sid, _) ->
      Hashtbl.remove t.table sid;
      t.evicted <- t.evicted + 1

let open_ t platform =
  locked t (fun () ->
      if Hashtbl.length t.table >= t.capacity then evict_oldest t;
      let sid = t.next_sid in
      t.next_sid <- sid + 1;
      let entry =
        { platform; queries = 0; failures = 0; last_tleft = nan; stamp = 0 }
      in
      touch t entry;
      Hashtbl.replace t.table sid entry;
      t.opened <- t.opened + 1;
      sid)

let resolve t ~sid ~tleft ~recovering =
  locked t (fun () ->
      match Hashtbl.find_opt t.table sid with
      | None -> None
      | Some entry ->
          touch t entry;
          entry.queries <- entry.queries + 1;
          if recovering then entry.failures <- entry.failures + 1;
          entry.last_tleft <- tleft;
          Some entry.platform)

let close t sid =
  locked t (fun () ->
      match Hashtbl.find_opt t.table sid with
      | None -> false
      | Some _ ->
          Hashtbl.remove t.table sid;
          true)

let history t sid =
  locked t (fun () ->
      match Hashtbl.find_opt t.table sid with
      | None -> None
      | Some e -> Some (e.queries, e.failures))

let stats t =
  locked t (fun () ->
      {
        st_opened = t.opened;
        st_evicted = t.evicted;
        st_resident = Hashtbl.length t.table;
      })
