(** The serve request/reply language.

    The canonical spelling is one line of [key=value] text per message,
    floats rendered with [%.17g] so every query parameter round-trips
    exactly — two clients asking about the same platform hash to the
    same cache key on the server, and a journaled request replays
    bit-identically. Parsing is total: a malformed payload becomes an
    [Error] string (answered as {!Failed}), never an exception out of a
    worker.

    Requests:
    {v
    ping
    stats
    query lambda=G c=G r=G d=G horizon=G quantum=G tleft=G kleft=(INT|-) recovering=(0|1)
    session-open lambda=G c=G r=G d=G horizon=G quantum=G
    session-query sid=N tleft=G kleft=(INT|-) recovering=(0|1)
    session-close sid=N
    v}

    Replies:
    {v
    pong
    stats builds=N hits=N evictions=N tables=N bytes=N
    answer next=G k=N work=G
    session sid=N
    overloaded
    timeout
    error MESSAGE
    v}

    A fixed-layout binary spelling of the same messages exists for the
    hot path ({!request_to_binary} and friends): one tag byte, then
    little-endian float64 bit patterns and int32/int64 counters, with
    [kleft = None] spelled as int32 [-1]. Both spellings decode through
    the same validation, so a query is legal or not independently of
    its encoding — and the binary spelling never reaches the journal
    (the server re-encodes to canonical text first), so crash-recovery
    replay stays bit-identical whatever the client spoke. *)

type query = {
  params : Fault.Params.t;
  horizon : float;  (** reservation length [T] the DP tables cover *)
  quantum : float;  (** DP time quantum [u] *)
  tleft : float;  (** remaining reservation time at the query instant *)
  kleft : int option;
      (** checkpoints still available when re-planning after a failure;
          [None] means unconstrained ([kmax]). Ignored unless
          [recovering]. *)
  recovering : bool;
      (** true when the execution just recovered from a failure — the
          [δ = 1] re-plan states of Equation (8) *)
}

type platform = {
  plat_params : Fault.Params.t;
  plat_horizon : float;
  plat_quantum : float;
}
(** The per-client state a session pins server-side: everything a
    {!query} carries except the per-instant [tleft]/[kleft]/[recovering]
    deltas. *)

type session_query = {
  sid : int;  (** session id granted by [session-open]; [>= 1] *)
  sq_tleft : float;
  sq_kleft : int option;
  sq_recovering : bool;
}

type request =
  | Ping
  | Stats
  | Query of query
  | Session_open of platform
      (** pin the platform server-side; answered [session sid=N] *)
  | Session_query of session_query
      (** a {!query} against a pinned platform: just the deltas *)
  | Session_close of int  (** release the session slot *)

type answer = {
  next : float;
      (** completion time of the optimal first checkpoint, in time
          units from the query instant; [0] = checkpointing now is not
          worth it (or nothing fits) *)
  k : int;  (** the checkpoint count the plan commits to; [0] = none *)
  work : float;  (** optimal expected work for the remaining time *)
}

type response =
  | Answer of answer
  | Stats_reply of Experiments.Strategy.Cache.stats
  | Pong
  | Overloaded
      (** shed at admission: the bounded request queue was full *)
  | Timeout  (** the per-request budget expired before an answer *)
  | Failed of string  (** malformed request or server-side error *)
  | Session of int  (** session id: the reply to open and close *)

val request_to_string : request -> string
val request_of_string : string -> (request, string) result

val response_to_string : response -> string
val response_of_string : string -> (response, string) result

val request_to_binary : request -> string
val request_of_binary : string -> (request, string) result

val response_to_binary : response -> string
val response_of_binary : string -> (response, string) result

val render_response : response -> string
(** Human-facing one-liner for the CLI ([next=120 k=3 work=1500] style),
    as opposed to the wire spelling. *)
