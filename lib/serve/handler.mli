(** The request brain: {!Protocol.request} in, {!Protocol.response} out.

    Deliberately socket-free so the same code path is unit-testable and
    micro-benchmarkable without a daemon around it. All server-side
    robustness policy lives here:

    - {e budgets}: every query arms a {!Robust.Deadline} (injectable
      clock). The deadline is checked before and after the expensive
      table build — a request that blows its budget gets a typed
      [timeout] reply instead of an open-ended stall. A table finished
      past the deadline {e stays cached}, so the client's retry is a
      cache hit: the budget bounds one request's latency, it does not
      waste the work.
    - {e bounded cache}: queries compile through a shared
      {!Experiments.Strategy.Cache}; give {!create} a bounded cache and
      eviction/hit counters flow back through the [stats] request.
    - {e chaos}: an optional {!Robust.Chaos} is consulted once per
      query (keyed by a monotonic request counter), so fault-injection
      drills exercise the full reply path deterministically.
    - {e no escaping exceptions}: any exception out of a query —
      [Invalid_argument] from table code, an injected fault — is caught
      and answered as [error ...]; the daemon never dies on a request.

    Queries answer with the optimal first-checkpoint completion time
    for the client's remaining reservation, mirroring
    {!Core.Dp.policy}'s re-planning recursion: fresh plans read the
    [δ = 0] tables at [best_k]; recovering plans read the [δ = 1]
    tables at [arg_best_m] capped by the client's [kleft]. *)

type t

val create :
  ?budget:float ->
  ?now:(unit -> float) ->
  ?slow:float ->
  ?sleep:(float -> unit) ->
  ?chaos:Robust.Chaos.t ->
  cache:Experiments.Strategy.Cache.t ->
  unit ->
  t
(** [budget] is the per-query wall-clock allowance in seconds (default
    unlimited); [now] the injectable clock behind it. [slow] (default
    0) sleeps that many seconds (via [sleep], default [Unix.sleepf]) at
    the head of every query — the deterministic way to drill the
    timeout path from the CLI. *)

val cache : t -> Experiments.Strategy.Cache.t

val handle : t -> Protocol.request -> Protocol.response
(** Thread-safe: workers share one handler. Session requests are
    answered [error ...]: sessions are daemon state, resolved into full
    queries by the server before the handler sees them. *)

val handle_payload : t -> string -> Protocol.response
(** Parse-then-handle; a payload that does not parse is answered
    [error ...] without touching the tables. *)

val handle_batch :
  t -> (Protocol.request, string) result list -> Protocol.response list
(** Answer a batch in order, one reply per element ([Error msg]
    elements — decode failures — answer [error msg]). Queries sharing a
    (params, horizon, quantum) table pay one cache round trip for the
    whole batch instead of one each; per-query policy (budget, chaos,
    injected slowness) still runs per member, so replies are identical
    to [handle] called element-wise on a warm cache. *)
