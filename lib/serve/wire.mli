(** Checksummed message framing over a stream socket.

    A {!conn} wraps a connected socket with a read buffer and two
    negotiated parameters: the framing {!mode} and the per-connection
    frame bound ({!max_frame}).

    {e Text} mode (the default, and the only journal format) {e is} the
    {!Robust.Durable.Framed} record format — one
    [<len> <payload> <fnv64-hex>\n] frame per message, no header line.
    Reusing the journal framing buys the wire the same properties the
    on-disk store has: a frame torn by a dying peer or a corrupted byte
    is detected by the length/checksum pair and rejected as {!Torn},
    never half-parsed, and the serve request journal can store request
    payloads byte-identically to how they crossed the wire.

    {e Binary} mode replaces the decimal rendering with a fixed layout —
    4-byte little-endian length, payload, 8-byte little-endian FNV-1a 64
    checksum — for hot paths where the [%.17g] round-trip is the cost
    that matters. It is opt-in per connection via the hello below; the
    journal never stores binary bytes (the server re-encodes journaled
    requests to canonical text first).

    {e Hello negotiation}: a client that wants binary framing (or a
    non-default frame bound) opens with a 5-byte hello
    [mode byte ('T'|'B'); 4-byte LE requested max frame (0 = default)]
    and the server answers a 5-byte ack [mode byte; granted max frame],
    the grant clamped into [\[min_max_frame, hard_max_frame\]] — a floor
    as well as a ceiling, so a hostile request for a 1-byte bound cannot
    make the server's own replies oversized. A text frame always starts
    with a decimal digit, so a fresh connection's first byte
    disambiguates: digit = legacy text client (no hello, defaults
    apply), anything else = hello. Legacy clients and servers therefore
    interoperate unchanged.

    Frames are bounded by the connection's {!max_frame} so a malformed
    length prefix cannot make the server allocate unbounded memory. *)

type mode = Text | Binary

type error =
  | Closed  (** clean EOF at a frame boundary *)
  | Torn of string
      (** damaged or truncated frame: bad length prefix, short body,
          checksum mismatch, or a frame beyond the connection's
          {!max_frame} (the message reports both the offending length
          and the limit) *)

val error_message : error -> string

val default_max_frame : int
(** Per-connection frame bound when none is negotiated (1 MiB) — far
    above any protocol message, far below harm. *)

val hard_max_frame : int
(** Ceiling on any negotiated frame bound (64 MiB): the server clamps
    hello requests to this, and {!of_fd}/{!client_hello} reject larger
    asks outright. *)

val min_max_frame : int
(** Floor on any {e negotiated} frame bound (4 KiB): the server raises
    hello requests below this so its replies always fit the grant.
    [of_fd] still accepts smaller local bounds (down to 1) for callers
    that want them. *)

type conn
(** A connected socket plus read buffer and negotiated parameters. Not
    thread-safe: one owner at a time. *)

val of_fd : ?mode:mode -> ?max_frame:int -> Unix.file_descr -> conn
(** Wrap a connected socket. Defaults: [Text], {!default_max_frame}.
    Raises [Invalid_argument] when [max_frame] is outside
    [\[1, hard_max_frame\]]. *)

val fd : conn -> Unix.file_descr
val mode : conn -> mode

val max_frame : conn -> int
(** The connection's current frame bound (updated by negotiation). *)

val buffered : conn -> bool
(** Whether already-read bytes are waiting in the connection buffer — a
    multiplexing loop must drain these before trusting [select], which
    only sees the kernel's side. *)

val send : conn -> string -> unit
(** Write one framed payload in the connection's mode (loops on short
    writes, restarts on [EINTR]). Raises [Unix.Unix_error] on a dead
    peer — with [SIGPIPE] ignored that is [EPIPE], not a process kill —
    and [Invalid_argument] on a payload beyond {!max_frame}. *)

val send_many : conn -> string list -> unit
(** Write several framed payloads with one [write]. Framing is exactly
    [send] applied in order — a receiver cannot tell the difference —
    but a burst of replies costs one syscall instead of one per frame.
    Same errors as {!send}; on [Invalid_argument] nothing is written. *)

val recv : conn -> (string, error) result
(** Read one frame in the connection's mode and return its verified
    payload. Text frames are re-framed with
    {!Robust.Durable.Framed.frame} and compared byte-for-byte, so
    acceptance means exactly: this is the framing the sender's [frame]
    produced for this payload. Binary frames verify the FNV-1a 64
    checksum.

    Reads block until a whole frame arrives — unless the socket carries
    a receive timeout ([SO_RCVTIMEO]), in which case a peer that goes
    silent mid-frame for longer than the timeout is reported as [Torn]
    (the server sets one on every accepted socket so a stalled
    connection cannot pin a multiplexing worker). The same conversion
    applies inside {!client_hello} and {!server_negotiate}. *)

val client_hello :
  conn -> mode:mode -> ?max_frame:int -> unit -> (bool, error) result
(** Send the 5-byte hello and read the server's ack, switching the
    connection to the negotiated mode and granted frame bound.
    [max_frame] is the requested bound (omitted = server default).
    [Ok true] on a successful negotiation; [Ok false] when the peer
    answered with a legacy text frame instead (a pre-negotiation server,
    or one shedding at admission) — the frame is left buffered for
    {!recv} and the connection stays in text mode. *)

val server_negotiate : conn -> (unit, error) result
(** Accept a possible hello at the head of a fresh connection: a digit
    first byte means a legacy text client (nothing is consumed, text
    defaults stand); otherwise the hello is read, the requested bound
    clamped into [\[min_max_frame, hard_max_frame\]]
    (0 = {!default_max_frame}), the ack written, and the connection
    switched. Call once, before the first {!recv}. *)
