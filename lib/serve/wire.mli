(** Checksummed message framing over a stream socket.

    The wire format {e is} the {!Robust.Durable.Framed} record format —
    one [<len> <payload> <fnv64-hex>\n] frame per message, no header
    line. Reusing the journal framing buys the wire the same properties
    the on-disk store has: a frame torn by a dying peer or a corrupted
    byte is detected by the length/checksum pair and rejected as
    {!Torn}, never half-parsed, and the serve request journal can store
    request payloads byte-identically to how they crossed the wire.

    Frames are bounded by {!max_frame} so a malformed length prefix
    cannot make the server allocate unbounded memory. *)

type error =
  | Closed  (** clean EOF at a frame boundary *)
  | Torn of string
      (** damaged or truncated frame: bad length prefix, short body,
          checksum mismatch, or a frame beyond {!max_frame} *)

val error_message : error -> string

val max_frame : int
(** Maximum accepted payload length (1 MiB) — far above any protocol
    message, far below harm. *)

val send : Unix.file_descr -> string -> unit
(** Write one framed payload (loops on short writes, restarts on
    [EINTR]). Raises [Unix.Unix_error] on a dead peer — with [SIGPIPE]
    ignored that is [EPIPE], not a process kill. *)

val recv : Unix.file_descr -> (string, error) result
(** Read one frame and return its verified payload. The received bytes
    are re-framed with {!Robust.Durable.Framed.frame} and compared
    byte-for-byte, so acceptance means exactly: this is the framing the
    sender's [frame] produced for this payload. *)
