type dist =
  | Exponential of { rate : float }
  | Weibull of { shape : float; scale : float }
  | Lognormal of { mu : float; sigma : float }

let gamma_fn = Numerics.Specfun.gamma

let dist_mean = function
  | Exponential { rate } -> 1.0 /. rate
  | Weibull { shape; scale } -> scale *. gamma_fn (1.0 +. (1.0 /. shape))
  | Lognormal { mu; sigma } -> exp (mu +. (0.5 *. sigma *. sigma))

let dist_survival dist x =
  if x <= 0.0 then 1.0
  else
    match dist with
    | Exponential { rate } -> exp (-.rate *. x)
    | Weibull { shape; scale } -> exp (-.((x /. scale) ** shape))
    | Lognormal { mu; sigma } ->
        Numerics.Specfun.normal_sf ~mu ~sigma (log x)

let weibull_with_mtbf ~shape ~mtbf =
  if shape <= 0.0 || mtbf <= 0.0 then
    invalid_arg "Trace.weibull_with_mtbf: arguments must be positive";
  let scale = mtbf /. gamma_fn (1.0 +. (1.0 /. shape)) in
  Weibull { shape; scale }

let lognormal_with_mtbf ~sigma ~mtbf =
  if sigma < 0.0 || mtbf <= 0.0 then
    invalid_arg "Trace.lognormal_with_mtbf: sigma >= 0 and mtbf > 0 required";
  let mu = log mtbf -. (0.5 *. sigma *. sigma) in
  Lognormal { mu; sigma }

type source = Generator of Numerics.Rng.t * dist | Fixed

type t = {
  mutable iats : float array;  (* memoised prefix *)
  mutable len : int;  (* number of valid entries in [iats] *)
  source : source;
}

let create ~dist ~seed =
  {
    iats = Array.make 16 0.0;
    len = 0;
    source = Generator (Numerics.Rng.create ~seed, dist);
  }

let of_iats iats =
  Array.iter
    (fun x ->
      if not (Float.is_finite x && x > 0.0) then
        invalid_arg "Trace.of_iats: IATs must be positive and finite")
    iats;
  { iats = Array.copy iats; len = Array.length iats; source = Fixed }

let draw rng = function
  | Exponential { rate } -> Numerics.Rng.exponential rng ~rate
  | Weibull { shape; scale } -> Numerics.Rng.weibull rng ~shape ~scale
  | Lognormal { mu; sigma } -> Numerics.Rng.lognormal rng ~mu ~sigma

let ensure t j =
  if j >= t.len then begin
    match t.source with
    | Fixed ->
        invalid_arg
          (Printf.sprintf "Trace.iat: index %d beyond fixed trace of length %d"
             j t.len)
    | Generator (rng, dist) ->
        if j >= Array.length t.iats then begin
          let cap = max (j + 1) (2 * Array.length t.iats) in
          let bigger = Array.make cap 0.0 in
          Array.blit t.iats 0 bigger 0 t.len;
          t.iats <- bigger
        end;
        for i = t.len to j do
          t.iats.(i) <- draw rng dist
        done;
        t.len <- j + 1
  end

let iat t j =
  if j < 0 then invalid_arg "Trace.iat: negative index";
  ensure t j;
  t.iats.(j)

let batch ~dist ~seed ~n =
  if n < 0 then invalid_arg "Trace.batch: n < 0";
  let master = Numerics.Rng.create ~seed in
  Array.init n (fun _ ->
      let sub = Numerics.Rng.split master in
      {
        iats = Array.make 16 0.0;
        len = 0;
        source = Generator (sub, dist);
      })

let rec prefetch_from t ~until ~index ~clock =
  if clock <= until then
    prefetch_from t ~until ~index:(index + 1) ~clock:(clock +. iat t (index + 1))

let iats_until t ~until =
  let rec count i acc =
    let stop =
      match t.source with
      | Fixed -> i >= t.len
      | Generator _ -> false
    in
    if stop then i
    else begin
      let acc = acc +. iat t i in
      if acc > until then i + 1 else count (i + 1) acc
    end
  in
  let n = count 0 0.0 in
  Array.init n (iat t)

let prefetch t ~until =
  match t.source with
  | Fixed -> ()  (* fully materialised by construction *)
  | Generator _ -> prefetch_from t ~until ~index:0 ~clock:(iat t 0)

type platform_event =
  | Node_lost of { at : float; survivors : int }
  | Node_joined of { at : float; survivors : int }

let event_at = function Node_lost { at; _ } | Node_joined { at; _ } -> at

let event_survivors = function
  | Node_lost { survivors; _ } | Node_joined { survivors; _ } -> survivors

let validate_platform_events events =
  let rec go prev = function
    | [] -> ()
    | e :: rest ->
        let at = event_at e in
        if not (Float.is_finite at && at >= 0.0) then
          invalid_arg
            "Trace.validate_platform_events: event times must be nonnegative \
             and finite";
        if at < prev then
          invalid_arg
            "Trace.validate_platform_events: event times must be \
             non-decreasing";
        if event_survivors e < 1 then
          invalid_arg "Trace.validate_platform_events: survivors < 1";
        go at rest
  in
  go 0.0 events

type node_model = {
  nodes : int;
  spares : int;
  loss_prob : float;
  rejoin_delay : float;
}

let validate_node_model m =
  if m.nodes < 1 then invalid_arg "Trace.platform: nodes < 1";
  if m.spares < 0 then invalid_arg "Trace.platform: spares < 0";
  if not (Float.is_finite m.loss_prob && m.loss_prob >= 0.0 && m.loss_prob <= 1.0)
  then invalid_arg "Trace.platform: loss_prob must lie in [0, 1]";
  if not (Float.is_finite m.rejoin_delay && m.rejoin_delay >= 0.0) then
    invalid_arg "Trace.platform: rejoin_delay must be nonnegative and finite"

(* One platform history from one RNG stream. Failures are drawn from the
   aggregate exponential of the currently-alive node count (equivalent
   to per-node draws by superposition; a rate change mid-gap redraws the
   remainder, which is exact by memorylessness). Failure IATs live on
   the exposed clock; event timestamps live on the wall clock, mapped by
   adding one downtime [d] per preceding failure — the clock the engine
   compares them against. A fatal failure of the last surviving node is
   treated as transient: the model never degrades below one node. *)
let platform_with_rng rng ~model ~rate ~d ~horizon =
  let per_node = rate /. float_of_int model.nodes in
  let iats = ref [] and events = ref [] in
  let alive = ref model.nodes and spares = ref model.spares in
  let exposed = ref 0.0 and wall = ref 0.0 in
  let since_last = ref 0.0 in
  (* Pending spare rejoin dates (wall clock); appended in non-decreasing
     order, so the head is always the earliest. *)
  let rejoins = ref [] in
  let last_fail_exposed = ref 0.0 in
  while !last_fail_exposed <= horizon do
    let gap =
      Numerics.Rng.exponential rng ~rate:(float_of_int !alive *. per_node)
    in
    match !rejoins with
    | wr :: rest when wr < !wall +. gap ->
        (* The spare comes up before the next failure: advance to it,
           then redraw at the new aggregate rate. [wr] can precede
           [wall] when the rejoin landed inside the last downtime — no
           time elapses then, only the rate changes. *)
        let dt = Float.max 0.0 (wr -. !wall) in
        exposed := !exposed +. dt;
        since_last := !since_last +. dt;
        wall := Float.max wr !wall;
        rejoins := rest;
        incr alive;
        events :=
          Node_joined { at = Float.max wr 0.0; survivors = !alive } :: !events
    | _ ->
        exposed := !exposed +. gap;
        since_last := !since_last +. gap;
        wall := !wall +. gap;
        iats := !since_last :: !iats;
        since_last := 0.0;
        last_fail_exposed := !exposed;
        let fatal = Numerics.Rng.float rng < model.loss_prob in
        let fail_wall = !wall in
        wall := !wall +. d;
        if fatal && !alive > 1 then begin
          decr alive;
          events := Node_lost { at = fail_wall; survivors = !alive } :: !events;
          if !spares > 0 then begin
            decr spares;
            rejoins := !rejoins @ [ !wall +. model.rejoin_delay ]
          end
        end
  done;
  let events = List.rev !events in
  validate_platform_events events;
  (of_iats (Array.of_list (List.rev !iats)), events)

let check_platform_args ~rate ~d ~horizon =
  if not (Float.is_finite rate && rate > 0.0) then
    invalid_arg "Trace.platform: rate must be positive and finite";
  if not (Float.is_finite d && d >= 0.0) then
    invalid_arg "Trace.platform: d must be nonnegative and finite";
  if not (Float.is_finite horizon && horizon >= 0.0) then
    invalid_arg "Trace.platform: horizon must be nonnegative and finite"

let platform ~model ~rate ~d ~horizon ~seed =
  validate_node_model model;
  check_platform_args ~rate ~d ~horizon;
  platform_with_rng (Numerics.Rng.create ~seed) ~model ~rate ~d ~horizon

let platform_batch ~model ~rate ~d ~horizon ~seed ~n =
  if n < 0 then invalid_arg "Trace.platform_batch: n < 0";
  validate_node_model model;
  check_platform_args ~rate ~d ~horizon;
  let master = Numerics.Rng.create ~seed in
  Array.init n (fun _ ->
      let sub = Numerics.Rng.split master in
      platform_with_rng sub ~model ~rate ~d ~horizon)

type cursor = {
  trace : t;
  mutable index : int;  (* next failure not yet consumed *)
  mutable clock : float;  (* exposed time of failure [index] *)
}

let cursor trace = { trace; index = 0; clock = iat trace 0 }

let next_failure_exposed cur = cur.clock

let consume cur =
  cur.index <- cur.index + 1;
  cur.clock <- cur.clock +. iat cur.trace cur.index

let failures_seen cur = cur.index
