(** Persistence of failure traces.

    A saved trace set makes a whole campaign replayable without the
    generator: traces are stored as text, one trace per line, IATs
    space-separated with full round-trip precision. Loading yields fixed
    traces that replay identically on any platform.

    Files written by {!save} start with a self-describing header line
    {v
    # fixedlen-traces v1 <count> <horizon> <fnv64>
    v}
    where [<fnv64>] is the FNV-1a checksum of everything after the
    header. {!load} verifies the version, the checksum and the trace
    count, so a truncated copy or bit-rot fails with a clear message
    instead of silently feeding a shortened trace set to a campaign.
    Headerless files from older versions still load. *)

val save : path:string -> horizon:float -> Trace.t array -> unit
(** [save ~path ~horizon traces] materialises each trace far enough to
    cover any reservation of length [<= horizon] and writes them,
    prefixed by the checksummed header. The write is atomic (temporary
    file + rename). *)

val load : path:string -> Trace.t array
(** Re-read a trace set as fixed traces. Raises [Failure] with a message
    naming the file and cause on a corrupted or truncated headered file
    (checksum or count mismatch, unsupported version), and with a
    message naming the line on malformed input (non-numeric field,
    non-positive IAT, empty line). *)
