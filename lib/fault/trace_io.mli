(** Persistence of failure traces.

    A saved trace set makes a whole campaign replayable without the
    generator: traces are stored as text, one trace per line, IATs
    space-separated with full round-trip precision. Loading yields fixed
    traces that replay identically on any platform.

    Files written by {!save} start with a self-describing header line
    {v
    # fixedlen-traces v1 <count> <horizon> <fnv64>
    v}
    where [<fnv64>] is the FNV-1a checksum of everything after the
    header. {!read} verifies the version, the checksum and the trace
    count, so a truncated copy or bit-rot yields a typed {!error}
    (rendered by {!error_message}) instead of silently feeding a
    shortened trace set to a campaign. Headerless files from older
    versions still load. *)

type error =
  | Unreadable of { path : string; cause : string }
  | Malformed_header of { path : string; header : string }
  | Unsupported_version of { path : string; version : string }
  | Checksum_mismatch of { path : string; expected : string; actual : string }
      (** the header announced [expected]; the payload hashes to
          [actual] — corruption or truncation *)
  | Count_mismatch of { path : string; announced : int; found : int }
  | Malformed_trace of { path : string; line : int; cause : string }
      (** non-numeric field, non-positive IAT, or empty line *)

val error_message : error -> string
(** One-line human rendering, naming the file and the cause. *)

val save : ?chaos:Robust.Chaos_fs.t -> path:string -> horizon:float ->
  Trace.t array -> unit
(** [save ~path ~horizon traces] materialises each trace far enough to
    cover any reservation of length [<= horizon] and writes them,
    prefixed by the checksummed header. The write is atomic and durable
    (temporary file + fsync + rename + directory fsync, via
    {!Robust.Durable.write_atomic}); [chaos] injects filesystem faults
    for drills. *)

val read : path:string -> (Trace.t array, error) result
(** Re-read a trace set as fixed traces, returning a typed error on a
    corrupted, truncated, unreadable or malformed file. *)

val load : path:string -> Trace.t array
(** {!read}, raising [Failure (error_message e)] on error — for callers
    predating the typed interface. *)
