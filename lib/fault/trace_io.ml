type error =
  | Unreadable of { path : string; cause : string }
  | Malformed_header of { path : string; header : string }
  | Unsupported_version of { path : string; version : string }
  | Checksum_mismatch of { path : string; expected : string; actual : string }
  | Count_mismatch of { path : string; announced : int; found : int }
  | Malformed_trace of { path : string; line : int; cause : string }

let error_message = function
  | Unreadable { path; cause } ->
      Printf.sprintf "Trace_io.load: cannot read %s: %s" path cause
  | Malformed_header { path; header } ->
      Printf.sprintf "Trace_io.load: %s: malformed trace-file header %S" path
        header
  | Unsupported_version { path; version } ->
      Printf.sprintf
        "Trace_io.load: %s has unsupported trace-file version %s (this build \
         reads v1)"
        path version
  | Checksum_mismatch { path; expected; actual } ->
      Printf.sprintf
        "Trace_io.load: %s is corrupted or truncated: payload checksum %s \
         does not match header %s"
        path actual expected
  | Count_mismatch { path; announced; found } ->
      Printf.sprintf
        "Trace_io.load: %s is truncated: header announces %d traces, file \
         holds %d"
        path announced found
  | Malformed_trace { path = _; line; cause } ->
      Printf.sprintf "Trace_io.load: %s on line %d" cause line

let magic = "# fixedlen-traces"
let version = "v1"

let header ~count ~horizon ~checksum =
  Printf.sprintf "%s %s %d %.17g %s" magic version count horizon
    (Numerics.Checksum.to_hex checksum)

let save ?chaos ~path ~horizon traces =
  (* The payload is materialised first so its checksum can go into the
     header line; trace files are text and comfortably fit in memory
     (they are read back whole anyway). Publication is atomic and
     durable: a crash mid-save leaves the previous file (or none), never
     a torn one. *)
  let buf = Buffer.create 65536 in
  Array.iter
    (fun trace ->
      let iats = Trace.iats_until trace ~until:horizon in
      Array.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (Printf.sprintf "%.17g" x))
        iats;
      Buffer.add_char buf '\n')
    traces;
  let payload = Buffer.contents buf in
  let checksum = Numerics.Checksum.fnv1a64 payload in
  Robust.Durable.write_atomic ?chaos ~point:"trace" ~path
    (header ~count:(Array.length traces) ~horizon ~checksum ^ "\n" ^ payload)

exception Error of error

let parse_line ~path ~lineno line =
  let fields =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  in
  if fields = [] then
    raise
      (Error (Malformed_trace { path; line = lineno; cause = "empty trace" }));
  let iats =
    List.map
      (fun field ->
        match float_of_string_opt field with
        | Some x when Float.is_finite x && x > 0.0 -> x
        | Some _ ->
            raise
              (Error
                 (Malformed_trace
                    { path; line = lineno; cause = "non-positive IAT" }))
        | None ->
            raise
              (Error
                 (Malformed_trace
                    {
                      path;
                      line = lineno;
                      cause = Printf.sprintf "malformed number %S" field;
                    })))
      fields
  in
  Trace.of_iats (Array.of_list iats)

let split_lines payload =
  (* Drop only the empty fragment after a terminating final newline:
     interior empty lines must still reach [parse_line] and fail loudly,
     as they always have. *)
  if payload = "" then []
  else
    match List.rev (String.split_on_char '\n' payload) with
    | "" :: rest -> List.rev rest
    | parts -> List.rev parts

let validate_header ~path ~first ~payload =
  match List.filter (fun s -> s <> "") (String.split_on_char ' ' first) with
  | [ "#"; "fixedlen-traces"; v; count; _horizon; checksum ] ->
      if v <> version then
        raise (Error (Unsupported_version { path; version = v }));
      let count =
        match int_of_string_opt count with
        | Some n when n >= 0 -> n
        | _ -> raise (Error (Malformed_header { path; header = first }))
      in
      let actual = Numerics.Checksum.to_hex (Numerics.Checksum.fnv1a64 payload) in
      if actual <> checksum then
        raise (Error (Checksum_mismatch { path; expected = checksum; actual }));
      let lines = split_lines payload in
      if List.length lines <> count then
        raise
          (Error
             (Count_mismatch { path; announced = count; found = List.length lines }));
      lines
  | _ -> raise (Error (Malformed_header { path; header = first }))

let read ~path =
  match
    let content =
      try
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with Sys_error cause -> raise (Error (Unreadable { path; cause }))
    in
    let headered =
      String.length content >= String.length magic
      && String.sub content 0 (String.length magic) = magic
    in
    let lines =
      match String.index_opt content '\n' with
      | Some first_end when headered ->
          let first = String.sub content 0 first_end in
          let payload =
            String.sub content (first_end + 1)
              (String.length content - first_end - 1)
          in
          validate_header ~path ~first ~payload
      | _ ->
          (* Headerless legacy file: every line is a trace. *)
          split_lines content
    in
    (* In headered files the first trace sits on file line 2. *)
    let first_lineno = if headered then 2 else 1 in
    Array.of_list
      (List.mapi
         (fun i line -> parse_line ~path ~lineno:(i + first_lineno) line)
         lines)
  with
  | traces -> Ok traces
  | exception Error e -> Result.Error e

let load ~path =
  match read ~path with
  | Ok traces -> traces
  | Error e -> failwith (error_message e)
