let magic = "# fixedlen-traces"
let version = "v1"

let header ~count ~horizon ~checksum =
  Printf.sprintf "%s %s %d %.17g %s" magic version count horizon
    (Numerics.Checksum.to_hex checksum)

let save ~path ~horizon traces =
  (* The payload is materialised first so its checksum can go into the
     header line; trace files are text and comfortably fit in memory
     (they are read back whole anyway). *)
  let buf = Buffer.create 65536 in
  Array.iter
    (fun trace ->
      let iats = Trace.iats_until trace ~until:horizon in
      Array.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ' ';
          Buffer.add_string buf (Printf.sprintf "%.17g" x))
        iats;
      Buffer.add_char buf '\n')
    traces;
  let payload = Buffer.contents buf in
  let checksum = Numerics.Checksum.fnv1a64 payload in
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc (header ~count:(Array.length traces) ~horizon ~checksum);
     output_char oc '\n';
     output_string oc payload
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  close_out oc;
  Sys.rename tmp path

let parse_line ~lineno line =
  let fields =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  in
  if fields = [] then
    failwith (Printf.sprintf "Trace_io.load: empty trace on line %d" lineno);
  let iats =
    List.map
      (fun field ->
        match float_of_string_opt field with
        | Some x when Float.is_finite x && x > 0.0 -> x
        | Some _ ->
            failwith
              (Printf.sprintf "Trace_io.load: non-positive IAT on line %d"
                 lineno)
        | None ->
            failwith
              (Printf.sprintf "Trace_io.load: malformed number %S on line %d"
                 field lineno))
      fields
  in
  Trace.of_iats (Array.of_list iats)

let split_lines payload =
  (* Drop only the empty fragment after a terminating final newline:
     interior empty lines must still reach [parse_line] and fail loudly,
     as they always have. *)
  if payload = "" then []
  else
    match List.rev (String.split_on_char '\n' payload) with
    | "" :: rest -> List.rev rest
    | parts -> List.rev parts

let validate_header ~path ~first ~payload =
  match
    List.filter (fun s -> s <> "") (String.split_on_char ' ' first)
  with
  | [ "#"; "fixedlen-traces"; v; count; _horizon; checksum ] ->
      if v <> version then
        failwith
          (Printf.sprintf
             "Trace_io.load: %s has unsupported trace-file version %s \
              (this build reads %s)"
             path v version);
      let count =
        match int_of_string_opt count with
        | Some n when n >= 0 -> n
        | _ ->
            failwith
              (Printf.sprintf "Trace_io.load: %s: malformed header count %S"
                 path count)
      in
      let actual = Numerics.Checksum.to_hex (Numerics.Checksum.fnv1a64 payload) in
      if actual <> checksum then
        failwith
          (Printf.sprintf
             "Trace_io.load: %s is corrupted or truncated: payload checksum \
              %s does not match header %s"
             path actual checksum);
      let lines = split_lines payload in
      if List.length lines <> count then
        failwith
          (Printf.sprintf
             "Trace_io.load: %s is truncated: header announces %d traces, \
              file holds %d"
             path count (List.length lines));
      lines
  | _ ->
      failwith
        (Printf.sprintf "Trace_io.load: %s: malformed trace-file header %S"
           path first)

let load ~path =
  let ic = open_in_bin path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lines =
    match String.index_opt content '\n' with
    | Some first_end
      when String.length content >= String.length magic
           && String.sub content 0 (String.length magic) = magic ->
        let first = String.sub content 0 first_end in
        let payload =
          String.sub content (first_end + 1)
            (String.length content - first_end - 1)
        in
        validate_header ~path ~first ~payload
    | _ ->
        (* Headerless legacy file: every line is a trace. *)
        split_lines content
  in
  let first_lineno =
    (* In headered files the first trace sits on file line 2. *)
    if String.length content >= String.length magic
       && String.sub content 0 (String.length magic) = magic
    then 2
    else 1
  in
  Array.of_list
    (List.mapi (fun i line -> parse_line ~lineno:(i + first_lineno) line) lines)
