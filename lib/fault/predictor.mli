(** Fault predictor with precision/recall and prediction windows
    (Aupy–Robert–Vivien–Zaidouni, arXiv 1207.6936 / 1302.4558).

    A predictor is characterized by precision [p] (fraction of
    predictions that are true), recall [r] (fraction of faults that are
    predicted) and a window width [w]. Prediction streams are derived
    deterministically from a memoised {!Trace} under common random
    numbers: identical (trace, seed, params, horizon, rate) inputs
    yield a bit-identical event list, so paired strategy comparisons
    see the same predictions. *)

type params = { p : float  (** precision, in [\[0, 1\]] *)
              ; r : float  (** recall, in [\[0, 1\]] *)
              ; w : float  (** window width, finite [>= 0] *) }

val validate : params -> unit
(** @raise Invalid_argument when a field is out of range. *)

type event = {
  at : float;  (** firing date on the exposed clock *)
  window : float;  (** the fault is announced inside [\[at, at + window)] *)
  true_positive : bool;  (** whether an actual fault backs the event *)
}

val validate_events : event list -> unit
(** Checks finiteness, non-negativity and sortedness of a stream.
    @raise Invalid_argument otherwise. *)

val events :
  params:params ->
  rate:float ->
  horizon:float ->
  seed:int64 ->
  Trace.t ->
  event list
(** [events ~params ~rate ~horizon ~seed trace] derives the predicted
    events for [trace] on the exposed clock, sorted by firing date.

    True positives: every fault strictly before [horizon] is predicted
    with probability [r] and announced [w] ahead of its date (clamped
    at 0), window [\[at, at + w)]. False alarms: a Poisson process of
    rate [rate * r * (1 - p) / p], where [rate] is the platform fault
    rate, so the expected precision is exactly [p].

    Exact-float law: [p = 0.0 || r = 0.0] returns [[]].

    @raise Invalid_argument on invalid params, non-positive [rate] or
    negative [horizon]. *)

val batch :
  params:params ->
  rate:float ->
  horizon:float ->
  seed:int64 ->
  Trace.t array ->
  event list array
(** Per-trace streams from one master seed, split per trace in order —
    the {!Trace.batch} convention: stream [i] is independent of how
    many traces follow it. *)
