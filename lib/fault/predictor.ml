(* Fault predictor with precision/recall and prediction windows.

   Follows Aupy–Robert–Vivien–Zaidouni (arXiv 1207.6936, 1302.4558): a
   predictor is characterized by its recall [r] (fraction of actual
   faults that are predicted) and its precision [p] (fraction of
   predictions that correspond to an actual fault), and each predicted
   event carries a window [\[at, at + w)] inside which the fault is
   announced to strike.

   The stream is derived from a memoised {!Trace} under the
   common-random-numbers discipline: for a fixed (trace, seed, params,
   horizon, rate) the event list is reproducible bit for bit, so paired
   comparisons across strategies reuse identical predictions. *)

type params = { p : float; r : float; w : float }

let validate { p; r; w } =
  let check name v lo hi =
    if not (Float.is_finite v) || v < lo || v > hi then
      invalid_arg
        (Printf.sprintf "Predictor: %s = %g out of range [%g, %g]" name v lo hi)
  in
  check "precision" p 0.0 1.0;
  check "recall" r 0.0 1.0;
  if not (Float.is_finite w) || w < 0.0 then
    invalid_arg (Printf.sprintf "Predictor: window = %g must be finite >= 0" w)

type event = { at : float; window : float; true_positive : bool }

let validate_events events =
  let last = ref neg_infinity in
  List.iter
    (fun ev ->
      if not (Float.is_finite ev.at) || ev.at < 0.0 then
        invalid_arg "Predictor: event time must be finite >= 0";
      if not (Float.is_finite ev.window) || ev.window < 0.0 then
        invalid_arg "Predictor: event window must be finite >= 0";
      if ev.at < !last then invalid_arg "Predictor: events must be sorted";
      last := ev.at)
    events

(* Sort by firing date; a true positive fires before a coincident false
   alarm so that ordering never depends on generation order. *)
let compare_events a b =
  match Float.compare a.at b.at with
  | 0 -> Bool.compare b.true_positive a.true_positive
  | c -> c

let events_rng ~params:pr ~rate ~horizon rng trace =
  validate pr;
  if not (Float.is_finite rate) || rate <= 0.0 then
    invalid_arg "Predictor.events: rate must be finite > 0";
  if not (Float.is_finite horizon) || horizon < 0.0 then
    invalid_arg "Predictor.events: horizon must be finite >= 0";
  (* Exact-float law: a predictor with no recall predicts nothing, and
     one with no precision is pure noise we refuse to model — both
     yield the empty stream so [p = 0 ∨ r = 0] is bit-identical to
     running without a predictor at all. *)
  if pr.p = 0.0 || pr.r = 0.0 then []
  else begin
    (* True positives: each actual fault before the horizon is caught
       with probability [r] and announced [w] ahead (clamped at 0), so
       a perfect predictor with [w >= C] always leaves room to complete
       a proactive checkpoint before the fault strikes. Faults at or
       past the horizon cannot strike inside the reservation and are
       not announced. *)
    let tps = ref [] in
    let clock = ref 0.0 in
    Array.iter
      (fun gap ->
        clock := !clock +. gap;
        if !clock < horizon && Numerics.Rng.float rng < pr.r then
          tps :=
            { at = Float.max 0.0 (!clock -. pr.w);
              window = pr.w;
              true_positive = true }
            :: !tps)
      (Trace.iats_until trace ~until:horizon);
    (* False alarms: a Poisson process on the exposed clock whose rate
       [rate * r * (1 - p) / p] makes the expected fraction of true
       predictions exactly [p] (true positives arrive at rate
       [rate * r]). *)
    let fas = ref [] in
    let fa_rate = rate *. pr.r *. (1.0 -. pr.p) /. pr.p in
    if fa_rate > 0.0 then begin
      let t = ref (Numerics.Rng.exponential rng ~rate:fa_rate) in
      while !t < horizon do
        fas := { at = !t; window = pr.w; true_positive = false } :: !fas;
        t := !t +. Numerics.Rng.exponential rng ~rate:fa_rate
      done
    end;
    List.stable_sort compare_events (List.rev_append !tps (List.rev !fas))
  end

let events ~params ~rate ~horizon ~seed trace =
  events_rng ~params ~rate ~horizon (Numerics.Rng.create ~seed) trace

(* One master seed, one split per trace — the same convention as
   {!Trace.batch}, so trace [i] keeps its prediction stream no matter
   how many traces follow it. *)
let batch ~params ~rate ~horizon ~seed traces =
  let master = Numerics.Rng.create ~seed in
  Array.map
    (fun trace ->
      events_rng ~params ~rate ~horizon (Numerics.Rng.split master) trace)
    traces
