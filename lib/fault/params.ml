type t = { lambda : float; c : float; r : float; d : float }

let make ~lambda ~c ~r ~d =
  if not (Float.is_finite lambda && lambda > 0.0) then
    invalid_arg "Params.make: lambda must be positive and finite";
  if not (Float.is_finite c && c >= 0.0) then
    invalid_arg "Params.make: c must be nonnegative and finite";
  if not (Float.is_finite r && r >= 0.0) then
    invalid_arg "Params.make: r must be nonnegative and finite";
  if not (Float.is_finite d && d >= 0.0) then
    invalid_arg "Params.make: d must be nonnegative and finite";
  { lambda; c; r; d }

let paper ~lambda ~c ~d = make ~lambda ~c ~r:c ~d
let mtbf t = 1.0 /. t.lambda

let scale_platform t ~processors =
  if processors < 1 then invalid_arg "Params.scale_platform: processors < 1";
  { t with lambda = t.lambda *. float_of_int processors }

let with_lambda t ~lambda = make ~lambda ~c:t.c ~r:t.r ~d:t.d

let degrade t ~initial ~survivors =
  if initial < 1 then invalid_arg "Params.degrade: initial < 1";
  if survivors < 1 then invalid_arg "Params.degrade: survivors < 1";
  with_lambda t
    ~lambda:(t.lambda *. float_of_int survivors /. float_of_int initial)

let psucc t x = if x <= 0.0 then 1.0 else exp (-.t.lambda *. x)
let pfail t x = if x <= 0.0 then 0.0 else -.expm1 (-.t.lambda *. x)

let pp ppf t =
  Format.fprintf ppf "{λ=%g; C=%g; R=%g; D=%g}" t.lambda t.c t.r t.d

let to_string t = Format.asprintf "%a" pp t

let equal a b =
  Float.equal a.lambda b.lambda && Float.equal a.c b.c && Float.equal a.r b.r
  && Float.equal a.d b.d
