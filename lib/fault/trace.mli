(** Failure traces.

    A trace is a sequence of failure inter-arrival times (IATs): IAT [j] is
    the exposed time (time during which failures may strike, i.e. excluding
    downtime) between the restart after failure [j-1] and failure [j]
    (or from the start of the reservation for [j = 0]).

    Traces are generated lazily and memoised, so the same trace object can
    be replayed by every checkpointing strategy — common random numbers,
    which is how the paper compares strategies on identical instances. *)

type dist =
  | Exponential of { rate : float }
      (** the paper's model; memoryless, MTBF [1/rate] *)
  | Weibull of { shape : float; scale : float }
      (** robustness extension: non-memoryless IATs *)
  | Lognormal of { mu : float; sigma : float }
      (** robustness extension: heavy-tailed IATs *)

val dist_mean : dist -> float
(** Expected IAT of the distribution. *)

val dist_survival : dist -> float -> float
(** [dist_survival dist x] is [P(IAT > x)]; 1 for [x <= 0]. Used by the
    renewal-aware dynamic program. *)

val weibull_with_mtbf : shape:float -> mtbf:float -> dist
(** Weibull distribution with the given shape, scale calibrated so the
    mean IAT equals [mtbf]. *)

val lognormal_with_mtbf : sigma:float -> mtbf:float -> dist
(** Log-normal distribution with the given [sigma], [mu] calibrated so
    the mean IAT equals [mtbf]. *)

type t
(** A single memoised trace. *)

val create : dist:dist -> seed:int64 -> t
(** Fresh trace; IATs are drawn on demand from a generator seeded with
    [seed] and remembered, so [iat] is deterministic and replayable. *)

val of_iats : float array -> t
(** Fixed trace for tests; reading past the end raises
    [Invalid_argument]. All IATs must be positive. *)

val iat : t -> int -> float
(** [iat t j] is the [j]-th inter-arrival time, [j >= 0]. *)

val prefetch : t -> until:float -> unit
(** Force memoisation of every IAT up to cumulative exposed time [until]
    (plus one). After prefetching, concurrent read-only replay of the
    trace from several domains is safe as long as no simulation runs past
    [until]. *)

val iats_until : t -> until:float -> float array
(** The prefix of IATs whose cumulative sum first exceeds [until]
    (forcing generation as needed): enough to replay any reservation of
    length [<= until]. On a fixed trace, returns at most the stored
    IATs. *)

val batch : dist:dist -> seed:int64 -> n:int -> t array
(** [batch ~dist ~seed ~n] builds [n] independent traces whose streams are
    derived from [seed]; trace [i] is identical across calls with the
    same arguments. *)

(** {2 Platform events}

    A malleable platform changes size mid-reservation: failed nodes can
    be permanently lost, spares can rejoin. Each event carries the wall
    clock date at which it takes effect and the processor count
    surviving it — the count the aggregate failure rate must be rescaled
    to (see [Fault.Params.degrade]). Event dates are on the {e wall}
    clock (downtime included), because the simulation engine consumes
    them against its wall clock; an event landing inside a downtime
    window simply takes effect when the downtime ends. *)

type platform_event =
  | Node_lost of { at : float; survivors : int }
      (** a node died for good at wall time [at] *)
  | Node_joined of { at : float; survivors : int }
      (** a spare came up at wall time [at] *)

val event_at : platform_event -> float
val event_survivors : platform_event -> int

val validate_platform_events : platform_event list -> unit
(** Raises [Invalid_argument] unless dates are nonnegative, finite and
    non-decreasing, and every survivor count is [>= 1]. *)

type node_model = {
  nodes : int;  (** initial node count, [>= 1] *)
  spares : int;  (** replacement pool size, [>= 0] *)
  loss_prob : float;
      (** probability in [\[0, 1\]] that a failure permanently kills its
          node (otherwise the node is repaired within the downtime) *)
  rejoin_delay : float;
      (** wall-clock delay before a spare replaces a lost node *)
}
(** Seeded node-level platform model: failures strike the aggregate of
    the alive nodes (per-node rate [rate / nodes]); each failure is
    fatal to its node with probability [loss_prob]; a fatal loss
    consumes a spare (when one is left) that rejoins [rejoin_delay]
    after the downtime. The platform never degrades below one node. *)

val platform :
  model:node_model ->
  rate:float ->
  d:float ->
  horizon:float ->
  seed:int64 ->
  t * platform_event list
(** [platform ~model ~rate ~d ~horizon ~seed] draws one platform
    history: the failure trace (exposed-clock IATs, covering at least
    [horizon]) together with the chronological loss/rejoin events
    (wall-clock dates, one downtime [d] accrued per preceding failure).
    [rate] is the aggregate failure rate at full platform size.
    Deterministic in [seed]. *)

val platform_batch :
  model:node_model ->
  rate:float ->
  d:float ->
  horizon:float ->
  seed:int64 ->
  n:int ->
  (t * platform_event list) array
(** [n] independent platform histories derived from [seed], same
    convention as {!batch}: history [i] is identical across calls with
    the same arguments. *)

(** {2 Cursors}

    A cursor walks one trace during one simulated reservation, converting
    IATs into absolute failure dates on the exposed-time clock. *)

type cursor

val cursor : t -> cursor
(** Fresh cursor positioned before the first failure. *)

val next_failure_exposed : cursor -> float
(** Absolute exposed time of the next failure (without consuming it). *)

val consume : cursor -> unit
(** Mark the next failure as having struck; subsequent
    [next_failure_exposed] returns the following failure date. *)

val failures_seen : cursor -> int
