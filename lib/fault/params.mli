(** Platform and application parameters of the checkpointing model.

    All quantities are in the same arbitrary time unit (the paper uses an
    unnamed unit so scenarios can be read as seconds, minutes or hours). *)

type t = private {
  lambda : float;  (** failure rate [λ] of the Exponential IAT distribution *)
  c : float;  (** checkpoint duration [C] *)
  r : float;  (** recovery duration [R] *)
  d : float;  (** downtime [D] (failures cannot strike during downtime) *)
}

val make : lambda:float -> c:float -> r:float -> d:float -> t
(** Validates: [lambda > 0], [c >= 0], [r >= 0], [d >= 0] ([c = 0]
    models instantaneous checkpoints, useful as a degenerate limit in
    tests). Raises [Invalid_argument] otherwise. *)

val paper : lambda:float -> c:float -> d:float -> t
(** Paper convention: [R = C]. *)

val mtbf : t -> float
(** Mean time between failures [µ = 1/λ]. *)

val scale_platform : t -> processors:int -> t
(** [scale_platform t ~processors] divides the MTBF by [processors]:
    the application-level rate when [t.lambda] is the individual
    per-processor rate. Requires [processors >= 1]. *)

val with_lambda : t -> lambda:float -> t
(** [with_lambda t ~lambda] is [t] with its failure rate replaced,
    revalidated ([lambda > 0] and finite) — the one sanctioned way to
    rebuild params at a different rate; do not rebuild the record by
    hand. *)

val degrade : t -> initial:int -> survivors:int -> t
(** [degrade t ~initial ~survivors] rescales the aggregate rate of a
    platform of [initial] processors to [survivors] of them:
    [λ' = λ · survivors / initial] — the {!scale_platform} convention
    applied to the per-node rate, so
    [degrade (scale_platform p ~processors:n) ~initial:n ~survivors:m
     ≡ scale_platform p ~processors:m]. [survivors] may exceed
    [initial] (spares joining beyond the original size). Requires both
    [>= 1]. *)

val psucc : t -> float -> float
(** [psucc t x] is [exp (-λ x)]: probability that an execution span of
    length [x] sees no failure. [x < 0] is treated as [0]. *)

val pfail : t -> float -> float
(** [pfail t x = 1 - psucc t x], computed with [expm1] for accuracy at
    small [λ x]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
