type objective = {
  offsets : float list;
  expected_work : float;
  converged : bool;
}

let expected_work ~params ~tleft ~recovering ~continuation ~offsets =
  let { Fault.Params.lambda; c; r; d } = params in
  let base = if recovering then r else 0.0 in
  match offsets with
  | [] -> 0.0
  | _ ->
      let offs = Array.of_list offsets in
      let k = Array.length offs in
      (* committed work after checkpoint j (1-based); index 0 = none *)
      let committed = Array.make (k + 1) 0.0 in
      for j = 1 to k do
        let prev = if j = 1 then 0.0 else offs.(j - 2) in
        let overhead = c +. (if j = 1 then base else 0.0) in
        committed.(j) <-
          committed.(j - 1) +. Float.max 0.0 (offs.(j - 1) -. prev -. overhead)
      done;
      let acc = ref (exp (-.lambda *. offs.(k - 1)) *. committed.(k)) in
      (* failure during segment j+1 (between o_j and o_{j+1}) *)
      for j = 0 to k - 1 do
        let lo = if j = 0 then 0.0 else offs.(j - 1) in
        let hi = offs.(j) in
        if hi > lo then begin
          let f t =
            lambda *. exp (-.lambda *. t)
            *. (committed.(j) +. continuation (tleft -. t -. d))
          in
          (* Fixed-panel Simpson: the integrand is smooth except for the
             (piecewise) continuation, so a moderate panel count is
             enough for the optimisation's purposes. *)
          acc := !acc +. Numerics.Integrate.simpson ~f ~lo ~hi ~n:64
        end
      done;
      !acc

let feasible ~params ~tleft ~recovering offs =
  let c = params.Fault.Params.c and r = params.Fault.Params.r in
  let base = if recovering then r else 0.0 in
  let k = Array.length offs in
  let ok = ref (k > 0 && offs.(0) >= base +. c && offs.(k - 1) <= tleft) in
  for j = 1 to k - 1 do
    if offs.(j) -. offs.(j - 1) < c then ok := false
  done;
  !ok

let equal_start ~params ~tleft ~recovering ~k =
  let c = params.Fault.Params.c and r = params.Fault.Params.r in
  let base = if recovering then r else 0.0 in
  let span = tleft -. base in
  if span < float_of_int k *. c then None
  else
    Some
      (Array.init k (fun j ->
           base +. (float_of_int (j + 1) *. span /. float_of_int k)))

let optimize ?(restarts = 3) ~params ~tleft ~recovering ~k ~continuation () =
  if k < 1 then invalid_arg "Plan_opt.optimize: k < 1";
  match equal_start ~params ~tleft ~recovering ~k with
  | None -> { offsets = []; expected_work = 0.0; converged = true }
  | Some start ->
      let objective offs =
        if feasible ~params ~tleft ~recovering offs then
          expected_work ~params ~tleft ~recovering ~continuation
            ~offsets:(Array.to_list offs)
        else neg_infinity
      in
      let perturb factor =
        (* squeeze the plan towards the start of the reservation,
           a direction the examples of Section 4 suggest is useful *)
        Array.map (fun o -> o -. (factor *. (tleft -. o) /. 4.0)) start
      in
      let starts =
        start
        :: List.init (max 0 (restarts - 1)) (fun i ->
               perturb (float_of_int (i + 1) /. float_of_int restarts))
      in
      let best = ref None in
      List.iter
        (fun x0 ->
          if feasible ~params ~tleft ~recovering x0 then begin
            let r = Numerics.Neldermead.maximize ~max_iter:400 ~f:objective x0 in
            match !best with
            | Some (b : Numerics.Neldermead.result) when b.value >= r.value -> ()
            | _ -> best := Some r
          end)
        starts;
      let warn_fallback detail =
        Robust.Guard.record
          ~context:
            (Printf.sprintf "Plan_opt.optimize: k=%d, tleft=%g, %s" k tleft
               (Fault.Params.to_string params))
          ~detail
          ~fallback:"equal-segment (Young/Daly-style) split"
      in
      (match !best with
      | None ->
          warn_fallback "no feasible Nelder-Mead start";
          {
            offsets = Array.to_list start;
            expected_work = objective start;
            converged = false;
          }
      | Some r ->
          if not r.converged then
            warn_fallback
              "Nelder-Mead did not converge; keeping best of (search, \
               equal split)";
          (* keep the best of (optimised, equal start): Nelder-Mead can
             wander on flat plateaus *)
          let eq_value = objective start in
          if eq_value > r.value then
            { offsets = Array.to_list start; expected_work = eq_value;
              converged = r.converged }
          else begin
            let offsets = Array.to_list r.x in
            { offsets = List.sort compare offsets; expected_work = r.value;
              converged = r.converged }
          end)

let variable_segments_policy ~params ~horizon ~dp =
  let table = Threshold.table_numerical ~params ~up_to:horizon in
  let u = Dp.quantum dp in
  let continuation tleft' =
    if tleft' <= 0.0 then 0.0
    else begin
      let n = min (Dp.horizon_quanta dp) (int_of_float (floor (tleft' /. u))) in
      if n < 1 then 0.0 else Dp.best_expected_work_q dp ~n ~delta:true
    end
  in
  (* Memoise per (quantised tleft, recovering): simulations query the
     same states over and over. *)
  let cache : (int * bool, float list) Hashtbl.t = Hashtbl.create 256 in
  let plan ~tleft ~recovering =
    let key = (int_of_float (floor (tleft /. u +. 1e-9)), recovering) in
    match Hashtbl.find_opt cache key with
    | Some plan ->
        (* cached plans were computed for the quantised tleft, which is
           never larger than the true one: always feasible *)
        plan
    | None ->
        let qtleft = float_of_int (fst key) *. u in
        let span =
          if recovering then qtleft -. params.Fault.Params.r else qtleft
        in
        let result =
          if span < params.Fault.Params.c then []
          else begin
            let k = Threshold.segments_for table ~tleft:span in
            (optimize ~params ~tleft:qtleft ~recovering ~k ~continuation ())
              .offsets
          end
        in
        Hashtbl.replace cache key result;
        result
  in
  Sim.Policy.make ~name:"VariableSegments" plan
