type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let check_dims ~what rows cols =
  if rows < 0 || cols < 0 then
    invalid_arg (Printf.sprintf "Tables.%s: negative dimensions" what)

module F = struct
  (* [stride] is the row pitch in the flat buffer: equal to [cols] for
     an owning table, equal to the parent's stride for a prefix view
     (whose logical [cols] is smaller). All index arithmetic goes
     through it, so views work transparently through both the safe
     accessors and the [data]/[row] hot path. *)
  type t = { rows : int; cols : int; stride : int; owner : bool; data : farr }

  let create ~rows ~cols =
    check_dims ~what:"F.create" rows cols;
    let data = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout (rows * cols) in
    Bigarray.Array1.fill data 0.0;
    { rows; cols; stride = cols; owner = true; data }

  let rows t = t.rows
  let cols t = t.cols
  let is_view t = not t.owner

  let view t ~rows ~cols =
    check_dims ~what:"F.view" rows cols;
    if rows > t.rows || cols > t.cols then
      invalid_arg
        (Printf.sprintf "Tables.F.view: %d x %d outside parent %d x %d" rows
           cols t.rows t.cols);
    { rows; cols; stride = t.stride; owner = false; data = t.data }

  let check t r c =
    if r < 0 || r >= t.rows || c < 0 || c >= t.cols then
      invalid_arg
        (Printf.sprintf "Tables.F: (%d, %d) outside %d x %d" r c t.rows t.cols)

  let get t r c =
    check t r c;
    Bigarray.Array1.unsafe_get t.data ((r * t.stride) + c)

  let set t r c x =
    check t r c;
    Bigarray.Array1.unsafe_set t.data ((r * t.stride) + c) x

  let data t = t.data

  let row t r =
    if r < 0 || r >= t.rows then
      invalid_arg (Printf.sprintf "Tables.F.row: %d outside %d rows" r t.rows);
    r * t.stride

  let stride t = t.stride

  (* A view borrows its parent's buffer: it owns no bytes of its own,
     so memory accounting (the cache byte bound) must not charge the
     shared buffer twice. *)
  let words t = if t.owner then t.rows * t.cols else 0
  let bytes t = if t.owner then 8 * t.rows * t.cols else 0
end

module I = struct
  type buf =
    | I16 of (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t
    | I32 of (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

  type t = { rows : int; cols : int; stride : int; owner : bool; buf : buf }

  let make_buf ~what ~cells ~max_value =
    if max_value < 0 then
      invalid_arg (Printf.sprintf "Tables.%s: negative max_value" what);
    if max_value <= 0x7FFF then begin
      let a = Bigarray.Array1.create Bigarray.Int16_signed Bigarray.C_layout cells in
      Bigarray.Array1.fill a 0;
      I16 a
    end
    else if max_value <= Int32.to_int Int32.max_int then begin
      let a = Bigarray.Array1.create Bigarray.Int32 Bigarray.C_layout cells in
      Bigarray.Array1.fill a 0l;
      I32 a
    end
    else invalid_arg (Printf.sprintf "Tables.%s: max_value beyond int32" what)

  let create ~rows ~cols ~max_value =
    check_dims ~what:"I.create" rows cols;
    {
      rows;
      cols;
      stride = cols;
      owner = true;
      buf = make_buf ~what:"I.create" ~cells:(rows * cols) ~max_value;
    }

  let rows t = t.rows
  let cols t = t.cols
  let is_view t = not t.owner

  let view t ~rows ~cols =
    check_dims ~what:"I.view" rows cols;
    if rows > t.rows || cols > t.cols then
      invalid_arg
        (Printf.sprintf "Tables.I.view: %d x %d outside parent %d x %d" rows
           cols t.rows t.cols);
    { rows; cols; stride = t.stride; owner = false; buf = t.buf }

  let check t r c =
    if r < 0 || r >= t.rows || c < 0 || c >= t.cols then
      invalid_arg
        (Printf.sprintf "Tables.I: (%d, %d) outside %d x %d" r c t.rows t.cols)

  let get t r c =
    check t r c;
    let i = (r * t.stride) + c in
    match t.buf with
    | I16 a -> Bigarray.Array1.unsafe_get a i
    | I32 a -> Int32.to_int (Bigarray.Array1.unsafe_get a i)

  let set t r c v =
    check t r c;
    let i = (r * t.stride) + c in
    match t.buf with
    | I16 a -> Bigarray.Array1.unsafe_set a i v
    | I32 a -> Bigarray.Array1.unsafe_set a i (Int32.of_int v)

  let set_row t r src =
    if Array.length src <> t.cols then
      invalid_arg "Tables.I.set_row: source length is not the column count";
    if r < 0 || r >= t.rows then invalid_arg "Tables.I.set_row: row outside table";
    let off = r * t.stride in
    match t.buf with
    | I16 a ->
        for c = 0 to t.cols - 1 do
          Bigarray.Array1.unsafe_set a (off + c) (Array.unsafe_get src c)
        done
    | I32 a ->
        for c = 0 to t.cols - 1 do
          Bigarray.Array1.unsafe_set a (off + c)
            (Int32.of_int (Array.unsafe_get src c))
        done

  let bytes_per_cell t = match t.buf with I16 _ -> 2 | I32 _ -> 4
  let bytes t = if t.owner then t.rows * t.cols * bytes_per_cell t else 0
  let words t = (bytes t + 7) / 8
end

(* Triangular layout shared by Tri and Itri: row n of a side-s table
   holds columns 0 .. s - n and starts at offset
   n (s + 1) - n (n - 1) / 2. *)
let tri_cells side = (side + 1) * (side + 2) / 2
let tri_off side n = (n * (side + 1)) - (n * (n - 1) / 2)

let tri_check ~what side n a =
  if n < 0 || n > side || a < 0 || a > side - n then
    invalid_arg
      (Printf.sprintf "Tables.%s: (%d, %d) outside triangle of side %d" what n a
         side)

module Tri = struct
  type t = { side : int; data : farr }

  let create ~side =
    if side < 0 then invalid_arg "Tables.Tri.create: negative side";
    let data = Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout (tri_cells side) in
    Bigarray.Array1.fill data 0.0;
    { side; data }

  let side t = t.side

  let get t n a =
    tri_check ~what:"Tri" t.side n a;
    Bigarray.Array1.unsafe_get t.data (tri_off t.side n + a)

  let set t n a x =
    tri_check ~what:"Tri" t.side n a;
    Bigarray.Array1.unsafe_set t.data (tri_off t.side n + a) x

  let data t = t.data

  let row t n =
    if n < 0 || n > t.side then
      invalid_arg (Printf.sprintf "Tables.Tri.row: %d outside side %d" n t.side);
    tri_off t.side n

  let words t = tri_cells t.side
  let bytes t = 8 * tri_cells t.side
end

module Itri = struct
  type t = { side : int; buf : I.buf }

  let create ~side ~max_value =
    if side < 0 then invalid_arg "Tables.Itri.create: negative side";
    {
      side;
      buf = I.make_buf ~what:"Itri.create" ~cells:(tri_cells side) ~max_value;
    }

  let side t = t.side

  let get t n a =
    tri_check ~what:"Itri" t.side n a;
    let i = tri_off t.side n + a in
    match t.buf with
    | I.I16 b -> Bigarray.Array1.unsafe_get b i
    | I.I32 b -> Int32.to_int (Bigarray.Array1.unsafe_get b i)

  let set t n a v =
    tri_check ~what:"Itri" t.side n a;
    let i = tri_off t.side n + a in
    match t.buf with
    | I.I16 b -> Bigarray.Array1.unsafe_set b i v
    | I.I32 b -> Bigarray.Array1.unsafe_set b i (Int32.of_int v)

  let bytes_per_cell t = match t.buf with I.I16 _ -> 2 | I.I32 _ -> 4
  let bytes t = tri_cells t.side * bytes_per_cell t
  let words t = (bytes t + 7) / 8
end
