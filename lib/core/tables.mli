(** Flat, single-allocation numeric tables for the DP cores.

    The dynamic programs of {!Dp} and {!Dp_renewal} are table-bound:
    their state spaces are dense 2-D (or triangular) grids of float
    values and small integer indices, filled once bottom-up and then
    read on every policy re-plan. Boxed [float array array] /
    [int array array] state scatters rows across the heap (one header
    and one pointer indirection per row) and stores every index in a
    full native word. This module replaces that state with flat
    [Bigarray] buffers:

    - {!F} — row-major Float64 matrix in one allocation; reads on the
      hot path go through {!F.data} + {!F.row} with
      [Bigarray.Array1.unsafe_get], which the compiler turns into a
      direct unboxed load;
    - {!I} — row-major integer matrix whose element width is chosen
      from the declared value range at creation: int16 when every value
      fits (the common case — DP indices are quanta counts), int32
      otherwise;
    - {!Tri} / {!Itri} — lower-storage triangular variants for the
      age-indexed renewal DP, where row [n] only holds columns
      [0 .. side - n].

    All tables are zero-filled at creation, matching the DP convention
    that an unreachable state has value 0 and index 0 ("no
    checkpoint"). Safe accessors ([get]/[set]) bounds-check; the raw
    [data]/[row] escape hatch is for the build loops, which own their
    index arithmetic. *)

type farr = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The underlying flat Float64 buffer, exposed for unsafe hot-path
    access ([Bigarray.Array1.unsafe_get]). *)

module F : sig
  type t

  val create : rows:int -> cols:int -> t
  (** Zero-filled [rows × cols] Float64 matrix in one allocation. *)

  val rows : t -> int
  val cols : t -> int

  val view : t -> rows:int -> cols:int -> t
  (** [view t ~rows ~cols] is a zero-copy prefix of [t]: the top-left
      [rows × cols] sub-matrix, sharing [t]'s buffer. Cell [(r, c)] of
      the view is cell [(r, c)] of the parent — this is what lets a
      horizon-T DP table answer any horizon T' ≤ T lookup. Views of
      views compose. Raises [Invalid_argument] when the requested shape
      exceeds the parent's. *)

  val is_view : t -> bool

  val get : t -> int -> int -> float
  (** [get t r c]; bounds-checked. *)

  val set : t -> int -> int -> float -> unit

  val data : t -> farr
  (** The flat buffer; element [(r, c)] lives at [row t r + c]. For a
      view this is the {e parent's} buffer. *)

  val row : t -> int -> int
  (** Offset of row [r] in {!data} ([r * stride], where the stride is
      the owning table's column count). Raises [Invalid_argument] when
      [r] is outside [0, rows). *)

  val stride : t -> int
  (** Row pitch of {!data}; equals [cols] for an owning table and the
      parent's stride for a view. *)

  val words : t -> int
  (** Heap footprint in 8-byte words (for bench accounting). 0 for a
      view — the parent owns the buffer. *)

  val bytes : t -> int
  (** Exact buffer footprint in bytes: [8 * rows * cols]. The unit the
      cache memory bound is expressed in — no guessing from [words]
      rounding. A view reports 0: its buffer belongs to the parent
      table, and charging it again would double-count the bytes. *)
end

module I : sig
  type t

  val create : rows:int -> cols:int -> max_value:int -> t
  (** Zero-filled [rows × cols] integer matrix able to hold values in
      [[0, max_value]]: int16 storage when [max_value <= 32767], int32
      otherwise. Raises [Invalid_argument] on a negative [max_value] or
      one beyond int32 range. *)

  val rows : t -> int
  val cols : t -> int

  val view : t -> rows:int -> cols:int -> t
  (** Zero-copy top-left prefix sharing the parent's buffer, as
      {!F.view}. *)

  val is_view : t -> bool
  val get : t -> int -> int -> int
  val set : t -> int -> int -> int -> unit

  val set_row : t -> int -> int array -> unit
  (** [set_row t r src] copies [src] (length = [cols t]) into row [r]. *)

  val bytes_per_cell : t -> int
  (** 2 or 4 — which width the value range selected. *)

  val bytes : t -> int
  (** Exact buffer footprint in bytes:
      [rows * cols * bytes_per_cell]. 0 for a view (the parent owns the
      buffer; see {!F.bytes}). *)

  val words : t -> int
end

module Tri : sig
  type t
  (** Lower-triangular Float64 table: rows [0 .. side], row [n] holds
      columns [0 .. side - n], all in one flat allocation of
      [(side + 1)(side + 2)/2] cells. *)

  val create : side:int -> t
  val side : t -> int
  val get : t -> int -> int -> float
  val set : t -> int -> int -> float -> unit

  val data : t -> farr
  val row : t -> int -> int
  (** Offset of row [n] in {!data}: element [(n, a)] lives at
      [row t n + a] for [a <= side - n]. *)

  val bytes : t -> int
  (** Exact buffer footprint in bytes: [8 * (side + 1)(side + 2)/2]. *)

  val words : t -> int
end

module Itri : sig
  type t
  (** Triangular integer table with the same width selection as {!I}. *)

  val create : side:int -> max_value:int -> t
  val side : t -> int
  val get : t -> int -> int -> int
  val set : t -> int -> int -> int -> unit

  val bytes : t -> int
  (** Exact buffer footprint in bytes: triangle cells times the selected
      cell width (2 or 4). *)

  val words : t -> int
end
