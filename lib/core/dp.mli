(** Optimal checkpointing strategy by dynamic programming over time
    quanta (Section 6).

    Time is discretised into quanta of length [u]: the reservation has
    [Tq = T/u] quanta, checkpoints last [Cq = C/u] quanta, and failures
    strike at quantum boundaries. [E(n, k, δ)] is the optimal expected
    work achievable in [n] quanta when planning exactly [k] checkpoints,
    starting with a recovery iff [δ = 1] (Equations (7) and (8)).

    The tables are computed bottom-up for every [n <= Tq], so one build
    serves every reservation length up to the horizon — including all the
    re-planning states reached after failures. The inner failure term is
    evaluated with a running sum and the [max_{m<=k}] tables are updated
    incrementally, for an overall cost quadratic in the number of quanta
    and linear in [kmax]. *)

type t

val build :
  ?kmax:int ->
  ?jobs:int ->
  params:Fault.Params.t ->
  quantum:float ->
  horizon:float ->
  unit ->
  t
(** Builds the tables. [c], [r] and [d] are rounded to whole quanta
    (they are exact multiples in all the paper's scenarios). [kmax]
    defaults to the exact bound floor(Tq/Cq); a smaller cap speeds up
    the build and is safe as long as it exceeds the optimal checkpoint
    count (see {!suggested_kmax}).

    [jobs] (default 1) splits the k-dimension of the sweep across that
    many domains; the n recurrence stays serial. The result is
    bit-identical to the serial build — every state's additions run in
    the same order on the same operands, and the [max_{m<=k}] fold
    keeps the serial strict-greater tie-breaking — so callers may pick
    [jobs] from the machine, not from the experiment. Speed-up requires
    that many free cores; oversubscribed runs degrade gracefully (the
    column barriers block instead of spinning). Raises
    [Invalid_argument] on a non-positive quantum or horizon, or
    [jobs < 1]. *)

val prefix_view : ?kmax:int -> t -> horizon:float -> t
(** [prefix_view t ~horizon] is the table for a shorter horizon,
    sharing [t]'s buffers: a DP cell (n, k) never depends on the
    horizon or on rows above k, so the top-left prefix of a horizon-T
    table {e is} the horizon-T' table for any T' <= T (same params and
    quantum, [kmax] capped at the parent's). Cell-identical to a fresh
    build at [horizon] with the same effective [kmax] — the property
    suite checks this. O(kmax × T'/u) time for the recomputed
    [best_k] row and one small array; {!bytes} of the view charges
    only that row, never the shared buffers. Raises [Invalid_argument]
    when [horizon] exceeds the parent's or is below one quantum. *)

val is_view : t -> bool
(** Whether this table borrows another build's buffers
    (see {!prefix_view}). *)

val suggested_kmax : params:Fault.Params.t -> horizon:float -> int
(** A generous cap on the useful number of checkpoints: roughly four
    times the Young/Daly count over the horizon, plus slack; never more
    than the exact bound [T/C]. When [C = 0] (free checkpoints) the
    exact bound does not exist and the cap degrades to one checkpoint
    per time unit. *)

val quantum : t -> float
val horizon_quanta : t -> int
val kmax : t -> int

val bytes : t -> int
(** Exact resident footprint of the tables in bytes (the {!Tables}
    buffers plus the flat argmax row) — what a memory-bounded cache
    charges for holding this build. A {!prefix_view} charges only its
    private argmax row: the shared buffers are the parent's, and
    counting them twice would double-charge the cache's byte bound. *)

val expected_work_q : t -> n:int -> k:int -> delta:bool -> float
(** [E(n, k, δ)] in time units (quanta × u). *)

val first_checkpoint_q : t -> n:int -> k:int -> delta:bool -> int
(** Completion quantum of the optimal first checkpoint in state
    [(n, k, δ)]; 0 when no checkpoint improves on doing nothing. *)

val arg_best_m : t -> n:int -> k:int -> int
(** [argmax_{1<=m<=k} E(n, m, 1)] — the checkpoint count the re-planning
    recursion selects after a failure with [k] checkpoints still
    available; 0 when every such state is worthless. *)

val best_expected_work_q : t -> n:int -> delta:bool -> float
(** [max_{1<=k<=kmax} E(n, k, δ)] in time units. *)

val expected_work : t -> tleft:float -> float
(** The optimum of Equation (6) for a reservation of [tleft] time units
    (rounded down to whole quanta). *)

val best_k : t -> n:int -> delta:bool -> int
(** The optimal initial number of checkpoints for [n] quanta (smallest
    maximiser); 0 when no checkpoint fits. *)

val plan_q : t -> n:int -> k:int -> delta:bool -> int list
(** Failure-free plan in quanta: completion quantum of each checkpoint,
    obtained by unrolling the argmax tables from state [(n, k, δ)]. *)

val policy : t -> Sim.Policy.t
(** The DP strategy as an executable policy. At the start of the
    reservation it plans [best_k] checkpoints; after each failure it
    re-plans with the best [m <= k_remaining] checkpoints, where
    [k_remaining] is tracked from the number of checkpoints completed
    before the failure — exactly the recursion of Equation (8). The
    policy is stateful across one simulated reservation; create a fresh
    policy (cheap, tables are shared) per concurrent simulation. *)
