(** Threshold-based dynamic heuristic (Section 5).

    The heuristic always splits the remaining reservation into [n]
    equal-length segments, each ending with a checkpoint, the last
    checkpoint completing exactly at the end. The thresholds [T_n]
    determine [n]: plan exactly [n] checkpoints when
    [T_n <= tleft <= T_{n+1}], with [T_1 = 0]. *)

val gain : params:Fault.Params.t -> t:float -> n:int -> float
(** [gain ~params ~t ~n] is [Gain(t, n+1) = E(t, n+1) − E(t, n)]: the
    expected-work difference {e until the first failure} between the
    strategies with [n+1] and [n] equally spaced checkpoints over a
    reservation of length [t] (the slice decomposition of Section 5).
    Requires [n >= 1] and [t > 0]. The downtime plays no role in this
    comparison. *)

val gain_brute_force : params:Fault.Params.t -> t:float -> n:int -> float
(** Same quantity computed directly from
    {!Expected.first_failure_value} on the two explicit plans — an
    independent implementation used to validate {!gain}. *)

val threshold_numerical :
  ?t_prev:float -> params:Fault.Params.t -> int -> float
(** [threshold_numerical ~params n] is [T_{n+1}]: the smallest
    [t >= max (t_prev, (n+1) c)] with [gain ~t ~n = 0] crossing from
    negative to positive ([t_prev] defaults to [n c]; pass the previous
    threshold to enforce monotonicity). If no crossing exists below an
    internal search cap (~40 first-order periods) or the root refinement
    fails to bracket — which does not happen for sensible parameters —
    the function degrades gracefully: it returns the first-order
    (Young/Daly-style) closed form {!threshold_first_order} and records
    a [Robust.Guard] warning instead of raising mid-sweep. *)

val threshold_first_order : params:Fault.Params.t -> n:int -> float
(** Equation (5): [T_{n+1} ≈ sqrt (2 n (n+1) C / λ)]. *)

type table = { thresholds : float array }
(** [thresholds.(i)] is [T_{i+1}]; [thresholds.(0) = T_1 = 0]. The table
    covers all thresholds up to its construction bound. *)

val table_numerical : params:Fault.Params.t -> up_to:float -> table
val table_first_order : params:Fault.Params.t -> up_to:float -> table
(** Threshold tables containing every [T_n <= up_to] (plus the sentinel
    [T_1 = 0]). *)

val segments_for : table -> tleft:float -> int
(** The number [n >= 1] of checkpoints to provision for a remaining
    reservation [tleft]: the largest [n] with [T_n <= tleft]. *)

val geometric_mean_approx : params:Fault.Params.t -> n:int -> float
(** Sanity-check approximation from the paper:
    [sqrt (n (n+1) · 2µC)], the geometric mean of the lengths of [n] and
    [n+1] Young/Daly segments, close to [T_{n+1}]. *)
