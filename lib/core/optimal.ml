type t = {
  u : float;
  tstar : int;
  cq : int;
  rq : int;
  dq : int;
  v0 : float array;
  v1 : float array;
  i0 : int array;  (* optimal next-checkpoint quantum; 0 = stop *)
  i1 : int array;
}

let quanta_round x ~u = int_of_float (Float.round (x /. u))

let build ~params ~quantum ~horizon () =
  if quantum <= 0.0 then invalid_arg "Optimal.build: quantum must be positive";
  if horizon < quantum then invalid_arg "Optimal.build: horizon below one quantum";
  let open Fault.Params in
  let u = quantum in
  let tstar = int_of_float (floor ((horizon /. u) +. 1e-9)) in
  let cq = max 1 (quanta_round params.c ~u) in
  let rq = max 0 (quanta_round params.r ~u) in
  let dq = max 0 (quanta_round params.d ~u) in
  let lam = params.lambda in
  let psucc = Array.init (tstar + 1) (fun i -> exp (-.lam *. float_of_int i *. u)) in
  let p = Array.make (tstar + 1) 0.0 in
  for f = 1 to tstar do
    p.(f) <- psucc.(f - 1) -. psucc.(f)
  done;
  let v0 = Array.make (tstar + 1) 0.0 in
  let v1 = Array.make (tstar + 1) 0.0 in
  let i0 = Array.make (tstar + 1) 0 in
  let i1 = Array.make (tstar + 1) 0 in
  (* Bottom-up over n; every reference is to a strictly smaller index
     (i >= cq + 1 >= 1 for the success branch, f >= 1 for failures). *)
  for n = 1 to tstar do
    let solve ~base =
      let ilo = base + cq + 1 in
      if ilo > n then (0.0, 0)
      else begin
        let running = ref 0.0 in
        for f = 1 to ilo - 1 do
          let n' = n - f - dq in
          if n' >= 1 then running := !running +. (p.(f) *. v1.(n'))
        done;
        let best = ref 0.0 and besti = ref 0 in
        for i = ilo to n do
          let n' = n - i - dq in
          if n' >= 1 then running := !running +. (p.(i) *. v1.(n'));
          let work = float_of_int (i - cq - base) in
          let cand = (psucc.(i) *. (work +. v0.(n - i))) +. !running in
          if cand > !best then begin
            best := cand;
            besti := i
          end
        done;
        (!best, !besti)
      end
    in
    let x1, j1 = solve ~base:rq in
    v1.(n) <- x1;
    i1.(n) <- j1;
    let x0, j0 = solve ~base:0 in
    v0.(n) <- x0;
    i0.(n) <- j0
  done;
  { u; tstar; cq; rq; dq; v0; v1; i0; i1 }

let quantum t = t.u
let horizon_quanta t = t.tstar

let check_n t n = if n < 0 || n > t.tstar then invalid_arg "Optimal: n outside range"

let value_q t ~n ~delta =
  check_n t n;
  (if delta then t.v1 else t.v0).(n) *. t.u

let clamp_n t tleft =
  let n = int_of_float (floor ((tleft /. t.u) +. 1e-9)) in
  if n < 0 then 0 else min n t.tstar

let value t ~tleft = value_q t ~n:(clamp_n t tleft) ~delta:false

let plan_q t ~n ~delta =
  check_n t n;
  let rec go n delta acc base =
    let i = (if delta then t.i1 else t.i0).(n) in
    if i = 0 then List.rev acc
    else go (n - i) false ((base + i) :: acc) (base + i)
  in
  go n delta [] 0

let policy t =
  let plan ~tleft ~recovering =
    let n = clamp_n t tleft in
    if n = 0 then []
    else
      List.map
        (fun q -> float_of_int q *. t.u)
        (plan_q t ~n ~delta:recovering)
  in
  Sim.Policy.make ~name:"OptimalUnrestricted" plan

let bytes t =
  (* Four flat arrays of tstar + 1 native words each. *)
  8 * 4 * Array.length t.v0
