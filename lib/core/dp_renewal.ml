type t = {
  u : float;
  tstar : int;
  cq : int;
  rq : int;
  dq : int;
  v : Tables.Tri.t;  (* v.(n, a), a <= tstar - n; fresh execution *)
  iv : Tables.Itri.t;  (* argmax completion quantum; 0 = stop *)
  vr : float array;  (* post-failure: age 0, recovery pending *)
  ir : int array;
}

let quanta_round x ~u = int_of_float (Float.round (x /. u))

let build ~params ~dist ~quantum ~horizon () =
  if quantum <= 0.0 then invalid_arg "Dp_renewal.build: quantum must be positive";
  if horizon < quantum then
    invalid_arg "Dp_renewal.build: horizon below one quantum";
  let open Fault.Params in
  let u = quantum in
  let tstar = int_of_float (floor ((horizon /. u) +. 1e-9)) in
  let cq = max 1 (quanta_round params.c ~u) in
  let rq = max 0 (quanta_round params.r ~u) in
  let dq = max 0 (quanta_round params.d ~u) in
  (* Survival of the IAT distribution on the quantum grid. *)
  let sq =
    Array.init (tstar + 1) (fun x ->
        Fault.Trace.dist_survival dist (float_of_int x *. u))
  in
  let v = Tables.Tri.create ~side:tstar in
  let iv = Tables.Itri.create ~side:tstar ~max_value:tstar in
  let vd = Tables.Tri.data v in
  (* Row offsets of the triangular value table, hoisted so the inner
     candidate scan reads [vd] with one add instead of re-deriving the
     row start from the quadratic offset formula. *)
  let row_off = Array.init (tstar + 1) (fun m -> Tables.Tri.row v m) in
  let vr = Array.make (tstar + 1) 0.0 in
  let ir = Array.make (tstar + 1) 0 in
  for n = 1 to tstar do
    (* Fresh execution at every reachable age. *)
    let off_n = Array.unsafe_get row_off n in
    for a = 0 to tstar - n do
      let s_a = Array.unsafe_get sq a in
      if s_a > 1e-300 then begin
        let running = ref 0.0 in
        for f = 1 to cq do
          let n' = n - f - dq in
          if n' >= 1 then
            running :=
              !running
              +. (Array.unsafe_get sq (a + f - 1) -. Array.unsafe_get sq (a + f))
                 /. s_a
                 *. Array.unsafe_get vr n'
        done;
        let best = ref 0.0 and besti = ref 0 in
        for i = cq + 1 to n do
          let n' = n - i - dq in
          if n' >= 1 then
            running :=
              !running
              +. (Array.unsafe_get sq (a + i - 1) -. Array.unsafe_get sq (a + i))
                 /. s_a
                 *. Array.unsafe_get vr n';
          let cont =
            Bigarray.Array1.unsafe_get vd
              (Array.unsafe_get row_off (n - i) + a + i)
          in
          let cand =
            (Array.unsafe_get sq (a + i) /. s_a *. (float_of_int (i - cq) +. cont))
            +. !running
          in
          if cand > !best then begin
            best := cand;
            besti := i
          end
        done;
        Bigarray.Array1.unsafe_set vd (off_n + a) !best;
        if !besti <> 0 then Tables.Itri.set iv n a !besti
      end
    done;
    (* Post-failure state: age 0, recovery charged to the first segment. *)
    let ilo = rq + cq + 1 in
    if ilo <= n then begin
      let running = ref 0.0 in
      for f = 1 to ilo - 1 do
        let n' = n - f - dq in
        if n' >= 1 then
          running := !running +. ((sq.(f - 1) -. sq.(f)) *. vr.(n'))
      done;
      let best = ref 0.0 and besti = ref 0 in
      for i = ilo to n do
        let n' = n - i - dq in
        if n' >= 1 then
          running := !running +. ((sq.(i - 1) -. sq.(i)) *. vr.(n'));
        let cont =
          Bigarray.Array1.unsafe_get vd (Array.unsafe_get row_off (n - i) + i)
        in
        let cand =
          (sq.(i) *. (float_of_int (i - cq - rq) +. cont)) +. !running
        in
        if cand > !best then begin
          best := cand;
          besti := i
        end
      done;
      vr.(n) <- !best;
      ir.(n) <- !besti
    end
  done;
  { u; tstar; cq; rq; dq; v; iv; vr; ir }

let quantum t = t.u
let horizon_quanta t = t.tstar

let check t ~n ~age =
  if n < 0 || n > t.tstar then invalid_arg "Dp_renewal: n outside range";
  if age < 0 || age + n > t.tstar then
    invalid_arg "Dp_renewal: age outside the reachable triangle"

let value_q t ~n ~age =
  check t ~n ~age;
  Tables.Tri.get t.v n age *. t.u

let clamp_n t tleft =
  let n = int_of_float (floor ((tleft /. t.u) +. 1e-9)) in
  if n < 0 then 0 else min n t.tstar

let value t ~tleft = value_q t ~n:(clamp_n t tleft) ~age:0

let plan_q t ~n ~age ~delta =
  check t ~n ~age;
  if delta && age <> 0 then
    invalid_arg "Dp_renewal.plan_q: recovery only happens at age 0";
  let rec fresh n a acc base =
    let i = Tables.Itri.get t.iv n a in
    if i = 0 then List.rev acc
    else fresh (n - i) (a + i) ((base + i) :: acc) (base + i)
  in
  if delta then begin
    let i = t.ir.(n) in
    if i = 0 then [] else fresh (n - i) i [ i ] i
  end
  else fresh n age [] 0

let policy t =
  let plan ~tleft ~recovering =
    let n = clamp_n t tleft in
    if n = 0 then []
    else
      List.map
        (fun q -> float_of_int q *. t.u)
        (plan_q t ~n ~age:0 ~delta:recovering)
  in
  Sim.Policy.make ~name:"RenewalDP" plan

let bytes t =
  Tables.Tri.bytes t.v + Tables.Itri.bytes t.iv
  + (8 * (Array.length t.vr + Array.length t.ir))
