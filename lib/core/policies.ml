let rename name p = { p with Sim.Policy.name }

let young_daly ~params =
  rename "YoungDaly"
    (Sim.Policy.periodic ~params ~period:(Model.young_daly_period params))

let daly_second_order ~params =
  rename "DalySecondOrder"
    (Sim.Policy.periodic ~params ~period:(Model.daly_second_order_period params))

let lambert_optimal_period ~params =
  rename "LambertPeriod"
    (Sim.Policy.periodic ~params ~period:(Model.optimal_period params))

let of_threshold_table ~name ~params table =
  let plan ~tleft ~recovering =
    let span =
      if recovering then tleft -. params.Fault.Params.r else tleft
    in
    if span < params.Fault.Params.c then []
    else begin
      let count = Threshold.segments_for table ~tleft:span in
      (Sim.Policy.equal_segments ~params ~count).Sim.Policy.plan ~tleft
        ~recovering
    end
  in
  Sim.Policy.make ~name plan

let first_order ~params ~horizon =
  of_threshold_table ~name:"FirstOrder" ~params
    (Threshold.table_first_order ~params ~up_to:horizon)

let numerical_optimum ~params ~horizon =
  of_threshold_table ~name:"NumericalOptimum" ~params
    (Threshold.table_numerical ~params ~up_to:horizon)

let dynamic_programming ?kmax ~params ~quantum ~horizon () =
  Dp.policy (Dp.build ?kmax ~params ~quantum ~horizon ())

let single_final ~params = Sim.Policy.single_final ~params

let rec adaptive build ~params =
  let p = build ~params in
  let p = { p with Sim.Policy.name = "Adaptive" ^ p.Sim.Policy.name } in
  Sim.Policy.set_adapt p (fun params' -> adaptive build ~params:params')

let all_paper ~params ~quantum ~horizon =
  [
    young_daly ~params;
    first_order ~params ~horizon;
    numerical_optimum ~params ~horizon;
    dynamic_programming ~params ~quantum ~horizon
      ~kmax:(Dp.suggested_kmax ~params ~horizon) ();
  ]
