(** Unrestricted quantised optimum.

    A simpler dynamic program than {!Dp}: the state is only (quanta
    left, starts-with-recovery), and the value function is

    [V(n, δ) = max (0, max_i P(i)·(w_i + V(n - i, 0)) + Σ_f p_f · V(n - f - D, 1))]

    where [i] ranges over feasible completion quanta of the next
    checkpoint and [w_i] is the work it commits. Taking no further
    checkpoint is the [0] branch.

    The paper's Section 6 formulation tracks, in addition, the number
    [k] of checkpoints the strategy committed to — and restricts
    re-planning after a failure to at most that many. Since fewer quanta
    never call for more checkpoints, the restriction should not bind:
    this module provides the unrestricted optimum, and the test suite
    verifies that {!Dp} matches it (a nontrivial validation of both
    implementations, and of the paper's formulation). *)

type t

val build : params:Fault.Params.t -> quantum:float -> horizon:float -> unit -> t
(** Same rounding conventions as {!Dp.build}; cost is quadratic in the
    number of quanta (no [kmax] factor). *)

val value_q : t -> n:int -> delta:bool -> float
(** [V(n, δ)] in time units. *)

val value : t -> tleft:float -> float
(** [V] at [tleft] time units (rounded down to quanta), fresh start. *)

val plan_q : t -> n:int -> delta:bool -> int list
(** Failure-free plan (checkpoint completion quanta) from the argmax
    tables; empty when nothing can be saved. *)

val policy : t -> Sim.Policy.t
(** Executable policy; unlike {!Dp.policy} it needs no cross-call state
    (re-planning is by time left only). *)

val quantum : t -> float
val horizon_quanta : t -> int

val bytes : t -> int
(** Exact resident footprint of the value/argmax arrays in bytes, for
    cache memory accounting. *)
