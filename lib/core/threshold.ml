let gain ~params ~t ~n =
  if n < 1 then invalid_arg "Threshold.gain: n < 1";
  if t <= 0.0 then invalid_arg "Threshold.gain: t <= 0";
  let open Fault.Params in
  let c = params.c in
  let fn = float_of_int n in
  let u = t /. (fn *. (fn +. 1.0)) in
  (* Loss if no failure strikes: one extra checkpoint. *)
  let acc = ref (-.psucc params t *. c) in
  (* Failure in slice A_m (m >= 1): Strat_n saved the m chunks of
     B_{m-1} that Strat_{n+1} had not yet committed. *)
  for m = 1 to n - 1 do
    let fm = float_of_int m in
    let start = fm *. (fn +. 1.0) *. u in
    let len = (fn -. fm) *. u in
    acc := !acc -. (psucc params start *. pfail params len *. (fm *. u))
  done;
  (* Failure in slice B_m: Strat_{n+1} saved the n - m chunks of A_m,
     minus its extra checkpoint. *)
  for m = 0 to n - 1 do
    let fm = float_of_int m in
    let start = (fm +. 1.0) *. fn *. u in
    let len = (fm +. 1.0) *. u in
    acc :=
      !acc
      +. (psucc params start *. pfail params len *. (((fn -. fm) *. u) -. c))
  done;
  !acc

let equal_offsets ~t ~n =
  let seg = t /. float_of_int n in
  List.init n (fun i -> float_of_int (i + 1) *. seg)

let gain_brute_force ~params ~t ~n =
  Expected.gain_vs ~params
    ~offsets1:(equal_offsets ~t ~n:(n + 1))
    ~offsets2:(equal_offsets ~t ~n)

let threshold_first_order ~params ~n =
  if n < 1 then invalid_arg "Threshold.threshold_first_order: n < 1";
  let open Fault.Params in
  let fn = float_of_int n in
  sqrt (2.0 *. fn *. (fn +. 1.0) *. params.c /. params.lambda)

let threshold_numerical ?t_prev ~params n =
  if n < 1 then invalid_arg "Threshold.threshold_numerical: n < 1";
  let open Fault.Params in
  let lower =
    Float.max
      (match t_prev with Some t -> t | None -> float_of_int n *. params.c)
      (float_of_int (n + 1) *. params.c)
  in
  let f t = gain ~params ~t ~n in
  if f lower >= 0.0 then lower
  else begin
    (* The gain starts negative (the extra checkpoint dominates), crosses
       zero near the first-order estimate and decays back to 0⁺ at
       infinity: scan left to right for the first sign change, then
       refine. If the solver cannot bracket or refine a crossing, degrade
       to the first-order (Young/Daly-style) closed form instead of
       aborting a sweep mid-flight; the substitution is recorded as a
       [Robust.Guard] warning. *)
    Robust.Guard.protect
      ~context:
        (Printf.sprintf "Threshold.threshold_numerical: n=%d, %s" n
           (Fault.Params.to_string params))
      ~recover:(function
        | Not_found | Numerics.Rootfind.No_bracket _ ->
            Some
              ( "first-order closed form sqrt(2n(n+1)C/lambda)",
                Float.max lower (threshold_first_order ~params ~n) )
        | _ -> None)
      (fun () ->
        let guess = threshold_first_order ~params ~n in
        let upper = Float.max (40.0 *. guess) (lower *. 4.0) in
        match
          Numerics.Rootfind.first_crossing ~f ~lo:lower ~hi:upper ~steps:4000
        with
        | None -> raise Not_found
        | Some (a, b) -> Numerics.Rootfind.brent ~f a b)
  end

type table = { thresholds : float array }

let build_table ~up_to next =
  if up_to < 0.0 then invalid_arg "Threshold: up_to < 0";
  let rec go acc t_prev n =
    let t_next = next ~t_prev ~n in
    if t_next > up_to then List.rev acc
    else go (t_next :: acc) t_next (n + 1)
  in
  { thresholds = Array.of_list (0.0 :: go [] 0.0 1) }

(* With C = 0 every threshold T_n collapses to 0 (an extra free
   checkpoint always pays), so the threshold sequence never exceeds
   [up_to] and [build_table] would not terminate: reject upfront. *)
let check_positive_c ~params fn =
  if params.Fault.Params.c <= 0.0 then
    invalid_arg (fn ^ ": thresholds degenerate for C = 0")

let table_numerical ~params ~up_to =
  check_positive_c ~params "Threshold.table_numerical";
  build_table ~up_to (fun ~t_prev ~n -> threshold_numerical ~t_prev ~params n)

let table_first_order ~params ~up_to =
  check_positive_c ~params "Threshold.table_first_order";
  build_table ~up_to (fun ~t_prev ~n ->
      Float.max t_prev (threshold_first_order ~params ~n))

let segments_for table ~tleft =
  let t = table.thresholds in
  let len = Array.length t in
  (* Largest n (1-based) with T_n <= tleft, by binary search — the
     thresholds are nondecreasing and t.(0) = 0 <= tleft always holds,
     so the invariant "t.(lo) <= tleft < t.(hi + 1)" closes on the
     answer in O(log n) instead of the former linear scan (called once
     per re-plan inside simulation loops). *)
  let lo = ref 0 and hi = ref (len - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if t.(mid) <= tleft then lo := mid else hi := mid - 1
  done;
  !lo + 1

let geometric_mean_approx ~params ~n =
  let open Fault.Params in
  let fn = float_of_int n in
  sqrt (fn *. (fn +. 1.0) *. 2.0 *. mtbf params *. params.c)
