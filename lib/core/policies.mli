(** The checkpointing strategies evaluated in the paper (Section 7), plus
    ablation baselines, as executable {!Sim.Policy.t} values.

    These are one-shot constructors: the table-backed ones build their
    threshold/DP tables on every call. Sweeps and campaigns should not
    call them directly — the experiment pipeline compiles strategies
    through the [Experiments.Strategy] registry instead, which shares
    the compiled tables campaign-wide and reduces to exactly the same
    builder calls (so the two paths are bit-identical). *)

val young_daly : params:Fault.Params.t -> Sim.Policy.t
(** Periodic checkpoints every [W_YD = sqrt (2µC)] of work; final
    checkpoint at the very end of the remaining reservation. *)

val daly_second_order : params:Fault.Params.t -> Sim.Policy.t
(** Same scheme with Daly's higher-order period (ablation baseline). *)

val lambert_optimal_period : params:Fault.Params.t -> Sim.Policy.t
(** Same scheme with the exact fixed-work-optimal period (ablation
    baseline: optimal for the wrong objective). *)

val first_order : params:Fault.Params.t -> horizon:float -> Sim.Policy.t
(** Threshold heuristic with the first-order thresholds of Equation (5):
    [n] equal segments when [T_n <= span < T_{n+1}], last checkpoint
    completing at the end. [horizon] bounds the threshold table. *)

val numerical_optimum : params:Fault.Params.t -> horizon:float -> Sim.Policy.t
(** Threshold heuristic with numerically computed thresholds (zeros of
    the exact gain function). *)

val of_threshold_table : name:string -> params:Fault.Params.t ->
  Threshold.table -> Sim.Policy.t
(** Threshold heuristic from a precomputed table (lets sweeps share the
    table across reservation lengths). *)

val dynamic_programming :
  ?kmax:int -> params:Fault.Params.t -> quantum:float -> horizon:float ->
  unit -> Sim.Policy.t
(** Builds the DP tables and returns the optimal strategy
    ({!Dp.build} + {!Dp.policy}). For sweeps, build the tables once and
    call {!Dp.policy} per evaluation instead. *)

val single_final : params:Fault.Params.t -> Sim.Policy.t
(** Re-export of {!Sim.Policy.single_final} (Strat1 of Section 4). *)

val adaptive :
  (params:Fault.Params.t -> Sim.Policy.t) -> params:Fault.Params.t ->
  Sim.Policy.t
(** [adaptive build ~params] runs [build ~params] and makes the result
    malleability-aware: on every platform change the engine calls the
    policy's [adapt] hook with the degraded parameters and [build] is
    re-run at the new failure rate (the rebuilt policy is itself
    adaptive, so repeated shrinks keep re-planning). The name is
    prefixed with "Adaptive". [build] is called once per platform
    change — table-backed builders should come from the
    [Experiments.Strategy] registry, whose compile closures hit the
    shared table cache. *)

val all_paper :
  params:Fault.Params.t -> quantum:float -> horizon:float -> Sim.Policy.t list
(** The paper's four strategies, in presentation order: YoungDaly,
    FirstOrder, NumericalOptimum, DynamicProgramming (quantum as
    given). *)
