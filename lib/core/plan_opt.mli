(** Continuous-offset plan optimisation.

    The Section 6 dynamic program restricts checkpoint completions to
    quantum boundaries; this module lifts that restriction for the
    {e current} plan: given the number of checkpoints [k] and a
    continuation value function (what a reservation of a given length is
    worth after a failure), it searches the continuous positions of the
    [k] checkpoints with Nelder–Mead. The objective is the exact
    expectation

    [Σ_j ∫_{o_j}^{o_{j+1}} λ e^{-λt} (W_j + V(tleft - t - D)) dt
     + P_succ(o_k) · W_k]

    evaluated with composite Simpson quadrature.

    Used as an ablation ("how much does quantisation cost?") and to
    refine the threshold heuristic's equal segments ("VariableSegments"
    policy). *)

type objective = private {
  offsets : float list;  (** optimised checkpoint completions *)
  expected_work : float;
  converged : bool;
}

val expected_work :
  params:Fault.Params.t ->
  tleft:float ->
  recovering:bool ->
  continuation:(float -> float) ->
  offsets:float list ->
  float
(** The objective above for a fixed plan. [continuation tleft'] must
    return the expected work of a fresh execution of length [tleft']
    starting with a recovery ([0.] is a valid, myopic choice). *)

val optimize :
  ?restarts:int ->
  params:Fault.Params.t ->
  tleft:float ->
  recovering:bool ->
  k:int ->
  continuation:(float -> float) ->
  unit ->
  objective
(** Maximise over the positions of exactly [k] checkpoints (feasibility
    — ordering, [C]-gaps, fitting in [tleft] — is enforced by rejection;
    the search starts from the equal-segment plan plus [restarts - 1]
    perturbed starts, default 3, keeping the best). Returns the
    equal-segment fallback if [k] checkpoints do not fit. Degradations —
    no feasible start, or a search that hit its iteration cap — fall
    back to the equal-segment split and are recorded as [Robust.Guard]
    warnings rather than raised. *)

val variable_segments_policy :
  params:Fault.Params.t -> horizon:float -> dp:Dp.t -> Sim.Policy.t
(** "VariableSegments": checkpoint count from the numerical thresholds
    (Section 5), positions optimised continuously with the DP value
    tables as continuation. Sits between NumericalOptimum and the
    quantised optimum. Plans are cached per quantised [tleft], so
    repeated simulation replays stay cheap. *)
