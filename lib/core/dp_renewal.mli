(** Renewal-aware optimal strategy: the paper's "future work" direction
    (non-memoryless failures), solved by dynamic programming.

    Model: failure inter-arrival times are i.i.d. from an arbitrary
    distribution (Weibull, log-normal, …) on the {e exposed-time} clock
    — exactly the semantics of {!Fault.Trace}. The process renews at
    every failure; the platform is fresh at the start of the
    reservation. Because the distribution is not memoryless, the value
    of the remaining reservation depends on the {e age} [a]: the exposed
    time elapsed since the last failure (or since the start).

    State: [(n, a)] in quanta, with the recovery-pending variant only
    needed at age 0 (a failure resets the age, and downtime is not
    exposed). Transition for placing the next checkpoint completion at
    quantum [i]:

    [V(n, a) = max (0, max_i S(a+i)/S(a) · (w_i + V(n-i, a+i))
                      + Σ_f (S(a+f-1)-S(a+f))/S(a) · V_R(n-f-D))]

    where [S] is the IAT survival function and [V_R(m) = V(m, 0)] with
    the recovery charged to the first segment. Reachable ages satisfy
    [a + n <= T*], so the table is triangular; the build costs
    O(Tq³) — keep horizons moderate (≤ ~1000 quanta).

    With an exponential distribution the age is irrelevant and this
    module coincides with {!Optimal} — a property enforced by the test
    suite. On Weibull/log-normal traces its policy is provably optimal
    for the quantised model, giving an upper reference against which the
    exponential-derived strategies are measured. *)

type t

val build :
  params:Fault.Params.t ->
  dist:Fault.Trace.dist ->
  quantum:float ->
  horizon:float ->
  unit ->
  t
(** [params.lambda] is ignored for failure timing (the [dist] rules);
    costs C/R/D come from [params] and are rounded to quanta. *)

val value_q : t -> n:int -> age:int -> float
(** [V(n, a)] in time units; fresh start (no pending recovery).
    Requires [n + age <= horizon_quanta]. *)

val value : t -> tleft:float -> float
(** Value at the start of the reservation (age 0). *)

val plan_q : t -> n:int -> age:int -> delta:bool -> int list
(** Failure-free plan from a state; [delta] charges a leading recovery
    (only meaningful at [age = 0], the post-failure state). *)

val policy : t -> Sim.Policy.t
(** Executable policy. Age is implicit in the plan queries: fresh
    reservations start at age 0, and re-planning happens only after a
    failure, i.e. again at age 0 — so the policy needs no hidden
    state. *)

val quantum : t -> float
val horizon_quanta : t -> int

val bytes : t -> int
(** Exact resident footprint of the triangular tables plus the
    post-failure rows in bytes, for cache memory accounting. *)
