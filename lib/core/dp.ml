type t = {
  params : Fault.Params.t;
  u : float;
  tstar : int;
  kmax : int;
  cq : int;
  rq : int;
  dq : int;
  e0 : Tables.F.t;  (* e0.(k, n) = E(n, k, 0), in quanta *)
  e1 : Tables.F.t;
  ib0 : Tables.I.t;  (* optimal first-checkpoint quantum; 0 = none *)
  ib1 : Tables.I.t;
  argm1 : Tables.I.t;  (* argm1.(k, n) = argmax_{m<=k} e1.(m, n) *)
  bestk0 : int array;  (* argmax_k e0.(k, n) *)
}

let quanta_round x ~u = int_of_float (Float.round (x /. u))

let suggested_kmax ~params ~horizon =
  let open Fault.Params in
  let u_yd = Model.young_daly_period params in
  (* With C = 0 both the exact bound T/C and the Young/Daly stride
     4T/(W_YD + C) divide by zero (W_YD = sqrt(2µC) vanishes with C);
     degrade to one checkpoint per time unit — free checkpoints make any
     denser cap pointless on the unit-quantum grid the DP uses. *)
  let denom = u_yd +. params.c in
  let guess =
    if denom > 0.0 then int_of_float (ceil (4.0 *. horizon /. denom)) + 8
    else max 1 (int_of_float (ceil horizon))
  in
  if params.c > 0.0 then
    let exact = max 1 (int_of_float (floor (horizon /. params.c))) in
    min exact (max 1 guess)
  else max 1 guess

let build ?kmax ?(jobs = 1) ~params ~quantum ~horizon () =
  if quantum <= 0.0 then invalid_arg "Dp.build: quantum must be positive";
  if horizon < quantum then invalid_arg "Dp.build: horizon below one quantum";
  if jobs < 1 then invalid_arg "Dp.build: jobs < 1";
  let open Fault.Params in
  let u = quantum in
  let tstar = int_of_float (floor ((horizon /. u) +. 1e-9)) in
  let cq = max 1 (quanta_round params.c ~u) in
  let rq = max 0 (quanta_round params.r ~u) in
  let dq = max 0 (quanta_round params.d ~u) in
  let kmax_exact = max 1 (tstar / cq) in
  let kmax =
    match kmax with
    | None -> kmax_exact
    | Some k ->
        if k < 1 then invalid_arg "Dp.build: kmax < 1";
        min k kmax_exact
  in
  let lam = params.lambda in
  let cols = tstar + 1 in
  let psucc = Array.init cols (fun i -> exp (-.lam *. float_of_int i *. u)) in
  let p = Array.make cols 0.0 in
  for f = 1 to tstar do
    p.(f) <- psucc.(f - 1) -. psucc.(f)
  done;
  let e0 = Tables.F.create ~rows:(kmax + 1) ~cols in
  let e1 = Tables.F.create ~rows:(kmax + 1) ~cols in
  let ib0 = Tables.I.create ~rows:(kmax + 1) ~cols ~max_value:tstar in
  let ib1 = Tables.I.create ~rows:(kmax + 1) ~cols ~max_value:tstar in
  let argm1 = Tables.I.create ~rows:(kmax + 1) ~cols ~max_value:kmax in
  let e0d = Tables.F.data e0 and e1d = Tables.F.data e1 in
  let ilo0 = cq + 1 in
  let ilo1 = rq + cq + 1 in
  (* More domains than rows cannot help, and [jobs = 1] must keep the
     original serial sweep byte-for-byte (it is the committed bench
     baseline). The parallel path below is written to replay the exact
     same addition sequence per state, so both paths produce
     bit-identical tables — the property suite checks this. *)
  let jobs = min jobs kmax in
  if jobs <= 1 then begin
  (* bestv.(n) = max_{m<=k} E(n, m, 1) for the sweep's current k;
     updated in place as soon as E(n, k, 1) is known, which is safe
     because states only reference strictly smaller n. *)
  let bestv = Array.make cols 0.0 in
  let argv = Array.make cols 0 in
  (* The hot loop runs entirely on flat [float array] scratch rows —
     the k-1 row read back as the continuation, the k row written — and
     each finished row is copied into the Bigarray tables afterwards.
     This keeps the inner loop free of the Bigarray descriptor
     indirection while the persistent tables stay single-allocation.
     [prev0] is all zeros while k = 1, which makes the k = 1
     continuation (no later checkpoint) the same array read as the
     k >= 2 one instead of a per-iteration branch. *)
  let prev0 = ref (Array.make cols 0.0) in
  let cur0 = ref (Array.make cols 0.0) in
  let cur1 = Array.make cols 0.0 in
  let icur0 = Array.make cols 0 in
  let icur1 = Array.make cols 0 in
  for k = 1 to kmax do
    let row = Tables.F.row e0 k in
    let cont = !prev0 in
    let out0 = !cur0 in
    let head = (k - 1) * cq in  (* quanta reserved for the k - 1 later checkpoints *)
    Array.fill out0 0 cols 0.0;
    Array.fill cur1 0 cols 0.0;
    Array.fill icur0 0 cols 0;
    Array.fill icur1 0 cols 0;
    (* States with n <= k cq cannot fit the k checkpoints even from a
       fresh start: both values stay at the tables' zero fill, exactly
       as the per-state solve used to compute. The loop starts where a
       candidate first exists. *)
    for n = (k * cq) + 1 to tstar do
      (* One state (n, k): maximise over the completion quantum i of the
         first checkpoint for delta = 0 and delta = 1 together, sharing
         the failure-term prefix sum
         S(i) = sum_{f=1..i} p_f bestv(n - f - dq),
         which the two solves used to recompute independently (the
         accumulation sequence — and therefore every rounding — is the
         same, so the shared sum is bit-identical to the two private
         ones). The f < ilo0 ramp runs once instead of twice, and the
         candidate scan runs once instead of twice, split at [ilo1] so
         the delta = 1 candidate needs no range test per iteration. *)
      let ihi = if k >= 2 then n - head else n in
      let acc_hi = n - dq - 1 in  (* beyond this, n - i - dq < 1: no term *)
      let running = ref 0.0 in
      let fhi = min (ilo0 - 1) acc_hi in
      for f = 1 to fhi do
        running :=
          !running
          +. (Array.unsafe_get p f *. Array.unsafe_get bestv (n - f - dq))
      done;
      let best0 = ref 0.0 and besti0 = ref 0 in
      let best1 = ref 0.0 and besti1 = ref 0 in
      (* Each scan is further split at [acc_hi]: the prefix accumulates
         the failure term, the (at most dq + 1 iteration) suffix does
         not, so the accumulation guard never runs inside the hot loop. *)
      (* The work terms i - cq and i - cq - rq advance by exactly 1 per
         iteration; tracking them as float counters (exact on these
         small integers, so bit-identical to the conversion) keeps the
         int-to-float unit out of the hot loops. *)
      let a_hi = min ihi (ilo1 - 1) in
      let w0 = ref (float_of_int (ilo0 - cq)) in
      for i = ilo0 to min a_hi acc_hi do
        running :=
          !running
          +. (Array.unsafe_get p i *. Array.unsafe_get bestv (n - i - dq));
        let pi = Array.unsafe_get psucc i in
        let cand0 =
          (pi *. (!w0 +. Array.unsafe_get cont (n - i))) +. !running
        in
        if cand0 > !best0 then begin
          best0 := cand0;
          besti0 := i
        end;
        w0 := !w0 +. 1.0
      done;
      for i = max ilo0 (acc_hi + 1) to a_hi do
        let pi = Array.unsafe_get psucc i in
        let cand0 =
          (pi *. (float_of_int (i - cq) +. Array.unsafe_get cont (n - i)))
          +. !running
        in
        if cand0 > !best0 then begin
          best0 := cand0;
          besti0 := i
        end
      done;
      let b_lo = max ilo0 ilo1 in
      let b_hi = min ihi acc_hi in
      let w0 = ref (float_of_int (b_lo - cq)) in
      let w1 = ref (float_of_int (b_lo - cq - rq)) in
      (* Main scan, unrolled by two (identical operation sequence, less
         loop overhead); the odd leftover falls through to [i = b_hi]. *)
      let i = ref b_lo in
      while !i < b_hi do
        let i0 = !i in
        running :=
          !running
          +. (Array.unsafe_get p i0 *. Array.unsafe_get bestv (n - i0 - dq));
        let pi = Array.unsafe_get psucc i0 in
        let continuation = Array.unsafe_get cont (n - i0) in
        let cand0 = (pi *. (!w0 +. continuation)) +. !running in
        if cand0 > !best0 then begin
          best0 := cand0;
          besti0 := i0
        end;
        let cand1 = (pi *. (!w1 +. continuation)) +. !running in
        if cand1 > !best1 then begin
          best1 := cand1;
          besti1 := i0
        end;
        let i1 = i0 + 1 in
        running :=
          !running
          +. (Array.unsafe_get p i1 *. Array.unsafe_get bestv (n - i1 - dq));
        let pi = Array.unsafe_get psucc i1 in
        let continuation = Array.unsafe_get cont (n - i1) in
        let cand0 = (pi *. ((!w0 +. 1.0) +. continuation)) +. !running in
        if cand0 > !best0 then begin
          best0 := cand0;
          besti0 := i1
        end;
        let cand1 = (pi *. ((!w1 +. 1.0) +. continuation)) +. !running in
        if cand1 > !best1 then begin
          best1 := cand1;
          besti1 := i1
        end;
        w0 := !w0 +. 2.0;
        w1 := !w1 +. 2.0;
        i := i0 + 2
      done;
      if !i = b_hi then begin
        let i0 = !i in
        running :=
          !running
          +. (Array.unsafe_get p i0 *. Array.unsafe_get bestv (n - i0 - dq));
        let pi = Array.unsafe_get psucc i0 in
        let continuation = Array.unsafe_get cont (n - i0) in
        let cand0 = (pi *. (!w0 +. continuation)) +. !running in
        if cand0 > !best0 then begin
          best0 := cand0;
          besti0 := i0
        end;
        let cand1 = (pi *. (!w1 +. continuation)) +. !running in
        if cand1 > !best1 then begin
          best1 := cand1;
          besti1 := i0
        end
      end;
      for i = max b_lo (acc_hi + 1) to ihi do
        let pi = Array.unsafe_get psucc i in
        let continuation = Array.unsafe_get cont (n - i) in
        let cand0 = (pi *. (float_of_int (i - cq) +. continuation)) +. !running in
        if cand0 > !best0 then begin
          best0 := cand0;
          besti0 := i
        end;
        let cand1 =
          (pi *. (float_of_int (i - cq - rq) +. continuation)) +. !running
        in
        if cand1 > !best1 then begin
          best1 := cand1;
          besti1 := i
        end
      done;
      Array.unsafe_set out0 n !best0;
      Array.unsafe_set cur1 n !best1;
      Array.unsafe_set icur0 n !besti0;
      Array.unsafe_set icur1 n !besti1;
      if !best1 > Array.unsafe_get bestv n then begin
        bestv.(n) <- !best1;
        argv.(n) <- k
      end
    done;
    for n = 0 to tstar do
      Bigarray.Array1.unsafe_set e0d (row + n) (Array.unsafe_get out0 n);
      Bigarray.Array1.unsafe_set e1d (row + n) (Array.unsafe_get cur1 n)
    done;
    Tables.I.set_row ib0 k icur0;
    Tables.I.set_row ib1 k icur1;
    Tables.I.set_row argm1 k argv;
    let swap = !prev0 in
    prev0 := out0;
    cur0 := swap
  done
  end
  else begin
    (* Parallel path: the n recurrence is the only serial chain, so the
       sweep is flipped column-major — columns advance serially, and
       the rows k of one column are split round-robin across a fixed
       team of [jobs] domains (row k's scan shortens as k grows, so
       interleaving balances the work). The serial path's running
       [bestv]/[argv] scratch (max over m <= k of E1, and its argmax)
       becomes a full (k, n) prefix-max table [bmax] plus the [argm1]
       table itself, finalised column by column: after the cells of
       column n are in, worker 0 folds them top-down with the same
       strict-greater comparison the serial sweep uses, so a worker
       computing row k at a later column reads in bmax(k, n) exactly
       the value the serial sweep would have had in bestv(n). Two
       barriers per column keep the phases apart; the plain Bigarray
       accesses on either side are ordered by the barrier's atomics. *)
    let bmax =
      Bigarray.Array1.create Bigarray.Float64 Bigarray.C_layout
        ((kmax + 1) * cols)
    in
    Bigarray.Array1.fill bmax 0.0;
    let barrier = Parallel.Barrier.create jobs in
    let worker w =
      for n = 1 to tstar do
        (* Row k first has a candidate at n = k cq + 1 (the serial loop
           start); earlier columns keep the tables' zero fill. *)
        let khi = min kmax ((n - 1) / cq) in
        let k = ref (w + 1) in
        while !k <= khi do
          let k0 = !k in
          (* Mirror of the serial per-state solve: the continuation
             reads come from row k0 - 1 of e0 directly (finished
             columns < n), the failure-term reads from row k0 of bmax.
             Same operands in the same order, so bit-identical cells. *)
          let coff = (k0 - 1) * cols in
          let boff = k0 * cols in
          let head = (k0 - 1) * cq in
          let ihi = if k0 >= 2 then n - head else n in
          let acc_hi = n - dq - 1 in
          let running = ref 0.0 in
          let fhi = min (ilo0 - 1) acc_hi in
          for f = 1 to fhi do
            running :=
              !running
              +. (Array.unsafe_get p f
                  *. Bigarray.Array1.unsafe_get bmax (boff + (n - f - dq)))
          done;
          let best0 = ref 0.0 and besti0 = ref 0 in
          let best1 = ref 0.0 and besti1 = ref 0 in
          let a_hi = min ihi (ilo1 - 1) in
          let w0 = ref (float_of_int (ilo0 - cq)) in
          for i = ilo0 to min a_hi acc_hi do
            running :=
              !running
              +. (Array.unsafe_get p i
                  *. Bigarray.Array1.unsafe_get bmax (boff + (n - i - dq)));
            let pi = Array.unsafe_get psucc i in
            let cand0 =
              (pi *. (!w0 +. Bigarray.Array1.unsafe_get e0d (coff + (n - i))))
              +. !running
            in
            if cand0 > !best0 then begin
              best0 := cand0;
              besti0 := i
            end;
            w0 := !w0 +. 1.0
          done;
          for i = max ilo0 (acc_hi + 1) to a_hi do
            let pi = Array.unsafe_get psucc i in
            let cand0 =
              (pi
              *. (float_of_int (i - cq)
                 +. Bigarray.Array1.unsafe_get e0d (coff + (n - i))))
              +. !running
            in
            if cand0 > !best0 then begin
              best0 := cand0;
              besti0 := i
            end
          done;
          let b_lo = max ilo0 ilo1 in
          let b_hi = min ihi acc_hi in
          let w0 = ref (float_of_int (b_lo - cq)) in
          let w1 = ref (float_of_int (b_lo - cq - rq)) in
          let i = ref b_lo in
          while !i < b_hi do
            let i0 = !i in
            running :=
              !running
              +. (Array.unsafe_get p i0
                  *. Bigarray.Array1.unsafe_get bmax (boff + (n - i0 - dq)));
            let pi = Array.unsafe_get psucc i0 in
            let continuation =
              Bigarray.Array1.unsafe_get e0d (coff + (n - i0))
            in
            let cand0 = (pi *. (!w0 +. continuation)) +. !running in
            if cand0 > !best0 then begin
              best0 := cand0;
              besti0 := i0
            end;
            let cand1 = (pi *. (!w1 +. continuation)) +. !running in
            if cand1 > !best1 then begin
              best1 := cand1;
              besti1 := i0
            end;
            let i1 = i0 + 1 in
            running :=
              !running
              +. (Array.unsafe_get p i1
                  *. Bigarray.Array1.unsafe_get bmax (boff + (n - i1 - dq)));
            let pi = Array.unsafe_get psucc i1 in
            let continuation =
              Bigarray.Array1.unsafe_get e0d (coff + (n - i1))
            in
            let cand0 = (pi *. ((!w0 +. 1.0) +. continuation)) +. !running in
            if cand0 > !best0 then begin
              best0 := cand0;
              besti0 := i1
            end;
            let cand1 = (pi *. ((!w1 +. 1.0) +. continuation)) +. !running in
            if cand1 > !best1 then begin
              best1 := cand1;
              besti1 := i1
            end;
            w0 := !w0 +. 2.0;
            w1 := !w1 +. 2.0;
            i := i0 + 2
          done;
          if !i = b_hi then begin
            let i0 = !i in
            running :=
              !running
              +. (Array.unsafe_get p i0
                  *. Bigarray.Array1.unsafe_get bmax (boff + (n - i0 - dq)));
            let pi = Array.unsafe_get psucc i0 in
            let continuation =
              Bigarray.Array1.unsafe_get e0d (coff + (n - i0))
            in
            let cand0 = (pi *. (!w0 +. continuation)) +. !running in
            if cand0 > !best0 then begin
              best0 := cand0;
              besti0 := i0
            end;
            let cand1 = (pi *. (!w1 +. continuation)) +. !running in
            if cand1 > !best1 then begin
              best1 := cand1;
              besti1 := i0
            end
          end;
          for i = max b_lo (acc_hi + 1) to ihi do
            let pi = Array.unsafe_get psucc i in
            let continuation =
              Bigarray.Array1.unsafe_get e0d (coff + (n - i))
            in
            let cand0 =
              (pi *. (float_of_int (i - cq) +. continuation)) +. !running
            in
            if cand0 > !best0 then begin
              best0 := cand0;
              besti0 := i
            end;
            let cand1 =
              (pi *. (float_of_int (i - cq - rq) +. continuation)) +. !running
            in
            if cand1 > !best1 then begin
              best1 := cand1;
              besti1 := i
            end
          done;
          Bigarray.Array1.unsafe_set e0d ((k0 * cols) + n) !best0;
          Bigarray.Array1.unsafe_set e1d ((k0 * cols) + n) !best1;
          Tables.I.set ib0 k0 n !besti0;
          Tables.I.set ib1 k0 n !besti1;
          k := k0 + jobs
        done;
        Parallel.Barrier.await barrier;
        if w = 0 then
          (* Column reduction, one worker: rows that are inactive at
             this column hold the zero fill, which the strict-greater
             test rejects — exactly the serial sweep, whose argv only
             moves when a row strictly improves. *)
          for k = 1 to kmax do
            let v = Bigarray.Array1.unsafe_get e1d ((k * cols) + n) in
            let prev =
              Bigarray.Array1.unsafe_get bmax (((k - 1) * cols) + n)
            in
            if v > prev then begin
              Bigarray.Array1.unsafe_set bmax ((k * cols) + n) v;
              Tables.I.set argm1 k n k
            end
            else begin
              Bigarray.Array1.unsafe_set bmax ((k * cols) + n) prev;
              Tables.I.set argm1 k n (Tables.I.get argm1 (k - 1) n)
            end
          done;
        Parallel.Barrier.await barrier
      done
    in
    (* One task per team member: with [domains = jobs] the pool runs
       all [jobs] tasks concurrently (a participant that claimed a task
       blocks in the barrier until the whole build is done, so it never
       claims a second one). *)
    Parallel.Pool.with_pool ~domains:jobs (fun pool ->
        Parallel.Pool.parallel_for pool ~lo:0 ~hi:jobs ~f:worker)
  end;
  let bestk0 = Array.make cols 0 in
  let beste0 = Array.make cols 0.0 in
  for k = 1 to kmax do
    let row = Tables.F.row e0 k in
    for n = 1 to tstar do
      let v = Bigarray.Array1.unsafe_get e0d (row + n) in
      if v > beste0.(n) then begin
        beste0.(n) <- v;
        bestk0.(n) <- k
      end
    done
  done;
  { params; u; tstar; kmax; cq; rq; dq; e0; e1; ib0; ib1; argm1; bestk0 }

(* A DP cell (n, k) never looks at the horizon (tstar is only the loop
   bound) or at rows above k, so the top-left prefix of a horizon-T
   table is cell-identical to a fresh build at any T' <= T with the
   same params and quantum. Only [bestk0] must be recomputed: the
   parent's maximises over rows up to its own kmax, which may exceed
   the view's cap. *)
let prefix_view ?kmax t ~horizon =
  if horizon < t.u then invalid_arg "Dp.prefix_view: horizon below one quantum";
  let tstar = int_of_float (floor ((horizon /. t.u) +. 1e-9)) in
  if tstar > t.tstar then
    invalid_arg "Dp.prefix_view: horizon beyond the parent table";
  let kmax_exact = max 1 (tstar / t.cq) in
  let kmax =
    match kmax with
    | None -> min t.kmax kmax_exact
    | Some k ->
        if k < 1 then invalid_arg "Dp.prefix_view: kmax < 1";
        min (min k kmax_exact) t.kmax
  in
  let cols = tstar + 1 in
  let rows = kmax + 1 in
  let e0 = Tables.F.view t.e0 ~rows ~cols in
  let e1 = Tables.F.view t.e1 ~rows ~cols in
  let ib0 = Tables.I.view t.ib0 ~rows ~cols in
  let ib1 = Tables.I.view t.ib1 ~rows ~cols in
  let argm1 = Tables.I.view t.argm1 ~rows ~cols in
  let bestk0 = Array.make cols 0 in
  let beste0 = Array.make cols 0.0 in
  let e0d = Tables.F.data t.e0 in
  for k = 1 to kmax do
    let row = Tables.F.row t.e0 k in
    for n = 1 to tstar do
      let v = Bigarray.Array1.unsafe_get e0d (row + n) in
      if v > beste0.(n) then begin
        beste0.(n) <- v;
        bestk0.(n) <- k
      end
    done
  done;
  { t with tstar; kmax; e0; e1; ib0; ib1; argm1; bestk0 }

let is_view t = Tables.F.is_view t.e0

let quantum t = t.u
let horizon_quanta t = t.tstar
let kmax t = t.kmax

let bytes t =
  Tables.F.bytes t.e0 + Tables.F.bytes t.e1 + Tables.I.bytes t.ib0
  + Tables.I.bytes t.ib1 + Tables.I.bytes t.argm1
  + (8 * Array.length t.bestk0)

let check_state t ~n ~k =
  if n < 0 || n > t.tstar then invalid_arg "Dp: n outside [0, T*]";
  if k < 1 || k > t.kmax then invalid_arg "Dp: k outside [1, kmax]"

let expected_work_q t ~n ~k ~delta =
  check_state t ~n ~k;
  Tables.F.get (if delta then t.e1 else t.e0) k n *. t.u

let first_checkpoint_q t ~n ~k ~delta =
  check_state t ~n ~k;
  Tables.I.get (if delta then t.ib1 else t.ib0) k n

let arg_best_m t ~n ~k =
  check_state t ~n ~k;
  Tables.I.get t.argm1 k n

let best_expected_work_q t ~n ~delta =
  if n < 0 || n > t.tstar then invalid_arg "Dp: n outside [0, T*]";
  let table = if delta then t.e1 else t.e0 in
  let best = ref 0.0 in
  for k = 1 to t.kmax do
    let v = Tables.F.get table k n in
    if v > !best then best := v
  done;
  !best *. t.u

let clamp_n t tleft =
  let n = int_of_float (floor ((tleft /. t.u) +. 1e-9)) in
  if n < 0 then 0 else min n t.tstar

let expected_work t ~tleft =
  let n = clamp_n t tleft in
  let k = t.bestk0.(n) in
  if k = 0 then 0.0 else Tables.F.get t.e0 k n *. t.u

let best_k t ~n ~delta =
  if n < 0 || n > t.tstar then invalid_arg "Dp: n outside [0, T*]";
  if delta then Tables.I.get t.argm1 t.kmax n else t.bestk0.(n)

let plan_q t ~n ~k ~delta =
  check_state t ~n ~k;
  let rec go n k delta acc base =
    if k = 0 then List.rev acc
    else begin
      let ib = Tables.I.get (if delta then t.ib1 else t.ib0) k n in
      if ib = 0 then List.rev acc
      else go (n - ib) (k - 1) false ((base + ib) :: acc) (base + ib)
    end
  in
  go n k delta [] 0

let policy t =
  (* Per-reservation state to recover k_remaining after a failure: the
     recursion of Equation (8) re-plans with at most as many checkpoints
     as were still outstanding when the failure struck. *)
  let last : (float * float list * int) option ref = ref None in
  let to_offsets quanta = List.map (fun q -> float_of_int q *. t.u) quanta in
  let plan ~tleft ~recovering =
    let n = clamp_n t tleft in
    if n = 0 then []
    else if not recovering then begin
      let k = t.bestk0.(n) in
      if k = 0 then []
      else begin
        let offsets = to_offsets (plan_q t ~n ~k ~delta:false) in
        last := Some (tleft, offsets, k);
        offsets
      end
    end
    else begin
      let k_cap =
        match !last with
        | None -> t.kmax
        | Some (prev_tleft, offsets, k_prev) ->
            let elapsed =
              prev_tleft -. tleft -. t.params.Fault.Params.d
            in
            let completed =
              List.length (List.filter (fun o -> o <= elapsed +. 1e-9) offsets)
            in
            max 1 (k_prev - completed)
      in
      let m = Tables.I.get t.argm1 (min k_cap t.kmax) n in
      if m = 0 then []
      else begin
        let offsets = to_offsets (plan_q t ~n ~k:m ~delta:true) in
        last := Some (tleft, offsets, m);
        offsets
      end
    end
  in
  Sim.Policy.make ~name:"DynamicProgramming" plan
