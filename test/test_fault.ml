(* Tests for the fault library: parameters and failure traces. *)

module P = Fault.Params
module T = Fault.Trace

let close ?(eps = 1e-9) = Alcotest.(check (float eps))

(* Params *)

let test_make_valid () =
  let p = P.make ~lambda:0.01 ~c:5.0 ~r:4.0 ~d:1.0 in
  close "lambda" 0.01 p.P.lambda;
  close "mtbf" 100.0 (P.mtbf p)

let test_paper_convention () =
  let p = P.paper ~lambda:0.01 ~c:7.0 ~d:0.0 in
  close "r = c" 7.0 p.P.r

let test_validation () =
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "lambda 0" (fun () -> P.make ~lambda:0.0 ~c:1.0 ~r:1.0 ~d:0.0);
  expect_invalid "negative c" (fun () -> P.make ~lambda:1.0 ~c:(-1.0) ~r:1.0 ~d:0.0);
  expect_invalid "negative r" (fun () -> P.make ~lambda:1.0 ~c:1.0 ~r:(-0.1) ~d:0.0);
  expect_invalid "nan d" (fun () -> P.make ~lambda:1.0 ~c:1.0 ~r:1.0 ~d:nan)

let test_psucc_pfail () =
  let p = P.paper ~lambda:0.5 ~c:1.0 ~d:0.0 in
  close "psucc" (exp (-1.0)) (P.psucc p 2.0);
  close "complement" 1.0 (P.psucc p 3.0 +. P.pfail p 3.0);
  close "psucc of negative span" 1.0 (P.psucc p (-5.0));
  close "pfail of negative span" 0.0 (P.pfail p (-5.0))

let test_scale_platform () =
  let ind = P.make ~lambda:1e-6 ~c:60.0 ~r:60.0 ~d:0.0 in
  let app = P.scale_platform ind ~processors:1000 in
  close "rate scales" 1e-3 app.P.lambda;
  Alcotest.check_raises "zero processors"
    (Invalid_argument "Params.scale_platform: processors < 1") (fun () ->
      ignore (P.scale_platform ind ~processors:0))

let test_with_lambda () =
  let p = P.make ~lambda:0.01 ~c:5.0 ~r:4.0 ~d:1.0 in
  let q = P.with_lambda p ~lambda:0.02 in
  close ~eps:0.0 "rate replaced" 0.02 q.P.lambda;
  close ~eps:0.0 "c kept" p.P.c q.P.c;
  close ~eps:0.0 "r kept" p.P.r q.P.r;
  close ~eps:0.0 "d kept" p.P.d q.P.d;
  let expect_invalid name lambda =
    match P.with_lambda p ~lambda with
    | _ -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "zero rate" 0.0;
  expect_invalid "negative rate" (-0.01);
  expect_invalid "nan rate" nan;
  expect_invalid "infinite rate" infinity

let test_degrade () =
  let p = P.make ~lambda:0.016 ~c:5.0 ~r:4.0 ~d:1.0 in
  let half = P.degrade p ~initial:16 ~survivors:8 in
  close "half the nodes, half the rate" 0.008 half.P.lambda;
  (* Spares may grow the platform past its initial size. *)
  let grown = P.degrade p ~initial:16 ~survivors:20 in
  close "spares raise the rate" 0.02 grown.P.lambda;
  (* The scale_platform law: degrading an n-node aggregate to m nodes
     is scaling the per-node rate by m. *)
  let per_node = P.make ~lambda:1e-3 ~c:5.0 ~r:4.0 ~d:1.0 in
  Alcotest.(check bool) "degrade/scale_platform law" true
    (P.equal
       (P.degrade (P.scale_platform per_node ~processors:16) ~initial:16
          ~survivors:11)
       (P.scale_platform per_node ~processors:11));
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "initial 0" (fun () -> P.degrade p ~initial:0 ~survivors:1);
  expect_invalid "survivors 0" (fun () -> P.degrade p ~initial:4 ~survivors:0)

(* Traces *)

let test_trace_deterministic () =
  let dist = T.Exponential { rate = 0.01 } in
  let a = T.create ~dist ~seed:5L and b = T.create ~dist ~seed:5L in
  for j = 0 to 100 do
    close ~eps:0.0 (Printf.sprintf "iat %d" j) (T.iat a j) (T.iat b j)
  done

let test_trace_memoized () =
  let tr = T.create ~dist:(T.Exponential { rate = 1.0 }) ~seed:9L in
  let x = T.iat tr 10 in
  (* reading out of order must not change already-drawn values *)
  ignore (T.iat tr 500);
  close ~eps:0.0 "memoized" x (T.iat tr 10)

let test_batch_reproducible () =
  let dist = T.Exponential { rate = 0.1 } in
  let b1 = T.batch ~dist ~seed:7L ~n:5 in
  let b2 = T.batch ~dist ~seed:7L ~n:5 in
  Array.iteri
    (fun i tr -> close ~eps:0.0 (Printf.sprintf "trace %d" i) (T.iat tr 3) (T.iat b2.(i) 3))
    b1;
  (* distinct traces within a batch *)
  Alcotest.(check bool) "traces differ" false
    (T.iat b1.(0) 0 = T.iat b1.(1) 0 && T.iat b1.(0) 1 = T.iat b1.(1) 1)

let test_of_iats () =
  let tr = T.of_iats [| 1.0; 2.0; 3.0 |] in
  close "first" 1.0 (T.iat tr 0);
  close "third" 3.0 (T.iat tr 2);
  (match T.iat tr 3 with
  | _ -> Alcotest.fail "read past fixed trace"
  | exception Invalid_argument _ -> ());
  (match T.of_iats [| 1.0; -2.0 |] with
  | _ -> Alcotest.fail "negative IAT accepted"
  | exception Invalid_argument _ -> ())

let test_cursor () =
  let tr = T.of_iats [| 5.0; 3.0; 2.0; 100.0 |] in
  let cur = T.cursor tr in
  close "first failure" 5.0 (T.next_failure_exposed cur);
  T.consume cur;
  close "second failure" 8.0 (T.next_failure_exposed cur);
  T.consume cur;
  close "third failure" 10.0 (T.next_failure_exposed cur);
  Alcotest.(check int) "failures seen" 2 (T.failures_seen cur)

let test_prefetch_covers () =
  let tr = T.create ~dist:(T.Exponential { rate = 0.1 }) ~seed:3L in
  T.prefetch tr ~until:100.0;
  (* After prefetch, a cursor can walk to 100 exposed time without
     drawing (we cannot observe drawing directly, but the walk must
     produce the same values as a fresh identical trace). *)
  let reference = T.create ~dist:(T.Exponential { rate = 0.1 }) ~seed:3L in
  let c1 = T.cursor tr and c2 = T.cursor reference in
  while T.next_failure_exposed c1 <= 100.0 do
    close ~eps:0.0 "same failure date" (T.next_failure_exposed c2)
      (T.next_failure_exposed c1);
    T.consume c1;
    T.consume c2
  done

let test_exponential_trace_mtbf () =
  let rate = 0.02 in
  let tr = T.create ~dist:(T.Exponential { rate }) ~seed:11L in
  let n = 50_000 in
  let sum = ref 0.0 in
  for j = 0 to n - 1 do
    sum := !sum +. T.iat tr j
  done;
  close ~eps:1.0 "empirical MTBF" (1.0 /. rate) (!sum /. float_of_int n)

(* Platform events *)

let node_model =
  { T.nodes = 8; spares = 2; loss_prob = 0.5; rejoin_delay = 5.0 }

let test_platform_batch_deterministic () =
  let gen () =
    T.platform_batch ~model:node_model ~rate:0.01 ~d:2.0 ~horizon:500.0
      ~seed:21L ~n:4
  in
  let h1 = gen () and h2 = gen () in
  Array.iteri
    (fun i (tr1, ev1) ->
      let tr2, ev2 = h2.(i) in
      Alcotest.(check (array (float 0.0)))
        (Printf.sprintf "history %d iats identical" i)
        (T.iats_until tr1 ~until:500.0)
        (T.iats_until tr2 ~until:500.0);
      Alcotest.(check bool)
        (Printf.sprintf "history %d events identical" i)
        true (ev1 = ev2))
    h1;
  (* The batch draws independent histories. *)
  let ev0 = snd h1.(0) and ev1 = snd h1.(1) in
  Alcotest.(check bool) "histories differ" false
    (ev0 = ev1 && T.iat (fst h1.(0)) 0 = T.iat (fst h1.(1)) 0)

let test_platform_events_well_formed () =
  let histories =
    T.platform_batch ~model:node_model ~rate:0.02 ~d:2.0 ~horizon:800.0
      ~seed:5L ~n:8
  in
  let total = ref 0 in
  Array.iter
    (fun (_, events) ->
      T.validate_platform_events events (* must not raise *);
      total := !total + List.length events;
      List.iter
        (fun e ->
          let s = T.event_survivors e in
          Alcotest.(check bool) "survivors within [1, nodes + spares]" true
            (s >= 1 && s <= node_model.T.nodes + node_model.T.spares))
        events)
    histories;
  Alcotest.(check bool) "a lossy platform produces events" true (!total > 0)

let test_dist_means () =
  close "exponential mean" 50.0 (T.dist_mean (T.Exponential { rate = 0.02 }));
  (* Weibull k=1 mean = scale *)
  close ~eps:1e-9 "weibull k=1 mean" 10.0
    (T.dist_mean (T.Weibull { shape = 1.0; scale = 10.0 }));
  (* Weibull k=2 mean = scale * sqrt(pi)/2 *)
  close ~eps:1e-9 "weibull k=2 mean" (7.0 *. sqrt Float.pi /. 2.0)
    (T.dist_mean (T.Weibull { shape = 2.0; scale = 7.0 }))

let test_calibrated_dists () =
  let mtbf = 123.0 in
  close ~eps:1e-9 "weibull calibrated" mtbf
    (T.dist_mean (T.weibull_with_mtbf ~shape:0.7 ~mtbf));
  close ~eps:1e-9 "lognormal calibrated" mtbf
    (T.dist_mean (T.lognormal_with_mtbf ~sigma:1.2 ~mtbf))

let test_calibrated_empirical () =
  let mtbf = 200.0 in
  let dist = T.weibull_with_mtbf ~shape:0.7 ~mtbf in
  let tr = T.create ~dist ~seed:13L in
  let n = 100_000 in
  let sum = ref 0.0 in
  for j = 0 to n - 1 do
    sum := !sum +. T.iat tr j
  done;
  close ~eps:4.0 "weibull empirical MTBF" mtbf (!sum /. float_of_int n)

(* Predictor *)

module Pred = Fault.Predictor

let pred_params ?(p = 0.8) ?(r = 0.7) ?(w = 10.0) () = { Pred.p; r; w }

let test_predictor_deterministic () =
  let trace = T.create ~dist:(T.Exponential { rate = 0.002 }) ~seed:11L in
  let events () =
    Pred.events ~params:(pred_params ()) ~rate:0.002 ~horizon:5000.0
      ~seed:99L trace
  in
  let a = events () and b = events () in
  Alcotest.(check bool) "bit-identical" true (a = b);
  Alcotest.(check bool) "non-empty" true (a <> [])

let test_predictor_empty_law () =
  let trace = T.create ~dist:(T.Exponential { rate = 0.01 }) ~seed:3L in
  List.iter
    (fun params ->
      Alcotest.(check int) "empty stream" 0
        (List.length
           (Pred.events ~params ~rate:0.01 ~horizon:10000.0 ~seed:5L trace)))
    [
      pred_params ~p:0.0 ();
      pred_params ~r:0.0 ();
      pred_params ~p:0.0 ~r:0.0 ();
    ]

let test_predictor_well_formed () =
  let trace = T.create ~dist:(T.Exponential { rate = 0.005 }) ~seed:21L in
  let w = 12.5 and horizon = 4000.0 in
  let events =
    Pred.events ~params:(pred_params ~w ()) ~rate:0.005 ~horizon ~seed:7L
      trace
  in
  Pred.validate_events events;
  List.iter
    (fun (e : Pred.event) ->
      Alcotest.(check bool) "firing date in range" true
        (e.Pred.at >= 0.0 && e.Pred.at < horizon);
      Alcotest.(check (float 0.0)) "window is w" w e.Pred.window)
    events;
  (* True positives fire exactly w before their fault (clamped at 0), so
     every one must sit at (fault - w) for some fault of the trace. *)
  let faults =
    let iats = T.iats_until trace ~until:horizon in
    let clock = ref 0.0 in
    Array.to_list (Array.map (fun d -> clock := !clock +. d; !clock) iats)
  in
  List.iter
    (fun (e : Pred.event) ->
      if e.Pred.true_positive then
        Alcotest.(check bool) "anchored to a fault" true
          (List.exists
             (fun f -> Float.abs (Float.max 0.0 (f -. w) -. e.Pred.at) < 1e-9)
             faults))
    events

let test_predictor_accounting () =
  (* Precision and recall are statistical promises; check them over a
     large batch. *)
  let n = 400 and horizon = 5000.0 and rate = 0.002 in
  let params = pred_params ~p:0.8 ~r:0.7 ~w:20.0 () in
  let traces = T.batch ~dist:(T.Exponential { rate }) ~seed:77L ~n in
  let streams = Pred.batch ~params ~rate ~horizon ~seed:78L traces in
  let tp = ref 0 and fa = ref 0 and faults = ref 0 in
  Array.iteri
    (fun i tr ->
      let clock = ref 0.0 in
      Array.iter
        (fun d ->
          clock := !clock +. d;
          if !clock < horizon then incr faults)
        (T.iats_until tr ~until:horizon);
      List.iter
        (fun (e : Pred.event) ->
          if e.Pred.true_positive then incr tp else incr fa)
        streams.(i))
    traces;
  let precision = float_of_int !tp /. float_of_int (!tp + !fa) in
  let recall = float_of_int !tp /. float_of_int !faults in
  close ~eps:0.03 "precision ~= p" 0.8 precision;
  close ~eps:0.03 "recall ~= r" 0.7 recall

let test_predictor_batch_prefix_stable () =
  (* The Trace.batch split convention: stream i does not depend on how
     many traces follow it in the array. *)
  let rate = 0.004 in
  let traces = T.batch ~dist:(T.Exponential { rate }) ~seed:31L ~n:5 in
  let params = pred_params () in
  let full = Pred.batch ~params ~rate ~horizon:2000.0 ~seed:32L traces in
  let prefix =
    Pred.batch ~params ~rate ~horizon:2000.0 ~seed:32L (Array.sub traces 0 3)
  in
  for i = 0 to 2 do
    Alcotest.(check bool)
      (Printf.sprintf "stream %d stable" i)
      true
      (full.(i) = prefix.(i))
  done

let test_predictor_validation () =
  let expect_invalid name f =
    match f () with
    | _ -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  expect_invalid "p > 1" (fun () -> Pred.validate (pred_params ~p:1.5 ()));
  expect_invalid "negative r" (fun () ->
      Pred.validate (pred_params ~r:(-0.1) ()));
  expect_invalid "nan w" (fun () -> Pred.validate (pred_params ~w:nan ()));
  expect_invalid "infinite w" (fun () ->
      Pred.validate (pred_params ~w:infinity ()));
  Pred.validate (pred_params ());
  let trace = T.of_iats [| 5.0; 1000.0 |] in
  expect_invalid "unsorted events" (fun () ->
      Pred.validate_events
        [
          { Pred.at = 4.0; window = 1.0; true_positive = true };
          { Pred.at = 2.0; window = 1.0; true_positive = false };
        ]);
  expect_invalid "zero rate" (fun () ->
      Pred.events ~params:(pred_params ()) ~rate:0.0 ~horizon:10.0 ~seed:1L
        trace)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"IATs are positive" ~count:200
         QCheck.(pair small_nat (float_range 1e-4 1.0))
         (fun (seed, rate) ->
           let tr =
             T.create ~dist:(T.Exponential { rate }) ~seed:(Int64.of_int seed)
           in
           let ok = ref true in
           for j = 0 to 50 do
             if T.iat tr j <= 0.0 then ok := false
           done;
           !ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"cursor clock is increasing" ~count:200
         QCheck.small_nat (fun seed ->
           let tr =
             T.create
               ~dist:(T.Exponential { rate = 0.5 })
               ~seed:(Int64.of_int seed)
           in
           let cur = T.cursor tr in
           let ok = ref true in
           let prev = ref 0.0 in
           for _ = 1 to 50 do
             let next = T.next_failure_exposed cur in
             if next <= !prev then ok := false;
             prev := next;
             T.consume cur
           done;
           !ok));
  ]

let () =
  Alcotest.run "fault"
    [
      ( "params",
        [
          Alcotest.test_case "make" `Quick test_make_valid;
          Alcotest.test_case "paper convention" `Quick test_paper_convention;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "psucc/pfail" `Quick test_psucc_pfail;
          Alcotest.test_case "platform scaling" `Quick test_scale_platform;
          Alcotest.test_case "with_lambda" `Quick test_with_lambda;
          Alcotest.test_case "degrade" `Quick test_degrade;
        ] );
      ( "traces",
        [
          Alcotest.test_case "deterministic" `Quick test_trace_deterministic;
          Alcotest.test_case "memoized" `Quick test_trace_memoized;
          Alcotest.test_case "batch reproducible" `Quick test_batch_reproducible;
          Alcotest.test_case "fixed traces" `Quick test_of_iats;
          Alcotest.test_case "cursor" `Quick test_cursor;
          Alcotest.test_case "prefetch" `Quick test_prefetch_covers;
          Alcotest.test_case "empirical MTBF" `Slow test_exponential_trace_mtbf;
        ] );
      ( "platform",
        [
          Alcotest.test_case "batch deterministic" `Quick
            test_platform_batch_deterministic;
          Alcotest.test_case "events well-formed" `Quick
            test_platform_events_well_formed;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "analytic means" `Quick test_dist_means;
          Alcotest.test_case "MTBF calibration" `Quick test_calibrated_dists;
          Alcotest.test_case "calibrated empirical" `Slow test_calibrated_empirical;
        ] );
      ( "predictor",
        [
          Alcotest.test_case "deterministic" `Quick
            test_predictor_deterministic;
          Alcotest.test_case "p=0 or r=0 is empty" `Quick
            test_predictor_empty_law;
          Alcotest.test_case "well-formed events" `Quick
            test_predictor_well_formed;
          Alcotest.test_case "precision/recall accounting" `Slow
            test_predictor_accounting;
          Alcotest.test_case "batch prefix stable" `Quick
            test_predictor_batch_prefix_stable;
          Alcotest.test_case "validation" `Quick test_predictor_validation;
        ] );
      ("properties", qcheck_tests);
    ]
