Predict drill: the fault-prediction figure (perfect predictor, proactive
checkpoints taken by the prediction-aware strategies) survives a SIGKILL
mid-journal append and resumes bit-identical — prediction streams included.

Baseline: the prediction figure at drill scale, uninterrupted. One
evaluation domain keeps the table-cache counters deterministic.

  $ ../../bin/main.exe figure ext-predict --traces 30 --t-step 300 \
  >   --t-max 900 --domains 1 --quiet --no-plot --csv base.csv > /dev/null

The same figure, journaled, dies during the 6th append with exit 137
(= SIGKILL). The predicted-event streams and proactive checkpoints already
simulated for the first 5 grid points are safely journaled.

  $ ../../bin/main.exe figure ext-predict --traces 30 --t-step 300 \
  >   --t-max 900 --domains 1 --quiet --no-plot --csv crash.csv \
  >   --journal j --chaos-crash-at journal:5 > /dev/null 2>&1
  [137]

Recovery on resume: the torn 6th record is truncated, the 5 fsync'd
records are kept, the remaining points are recomputed — re-deriving each
trace's prediction stream from its per-(c, salt) seed.

  $ ../../bin/main.exe figure ext-predict --traces 30 --t-step 300 \
  >   --t-max 900 --domains 1 --no-plot --csv out.csv --resume j \
  >   > /dev/null 2> resume.log
  $ grep -o "truncated (5 good records kept)" resume.log
  truncated (5 good records kept)

The resumed curves are bit-identical to the uninterrupted baseline: the
predictor is seeded under common random numbers (salt -1 of the trace
stream), so crash-surviving and recomputed points are indistinguishable.

  $ cmp base.csv out.csv

The predict scenario itself holds its qualitative checks at drill scale:
r = 0 collapses onto the baseline bit for bit, the unhooked baseline
ignores every stream at zero cost, and the perfect predictor strictly
beats unpredicted Young/Daly while matching the first-order waste. The
whole grid shares one u = 1 DP table through the strategy cache.

  $ ../../bin/main.exe predict --traces 200 --length 800 --lambda 0.001 \
  >   --checkpoint 20 --down 5 --p-grid 1 --r-grid 0,1 --w-grid 30 \
  >   --no-plot --quiet > predict.log
  $ grep -c "\[ok\]" predict.log
  5
  $ grep -c "\[??\]" predict.log
  0
  [1]
  $ grep -o "builds=1" predict.log
  builds=1
