Replan drill: a malleable-platform figure (node losses mid-reservation,
adaptive strategies re-planning online) survives a SIGKILL mid-journal
append and resumes bit-identical — platform events included.

Baseline: the malleability figure at drill scale, uninterrupted. One
evaluation domain keeps the adaptive table-cache counters deterministic.

  $ ../../bin/main.exe figure ext-replan --traces 30 --t-step 300 \
  >   --t-max 900 --domains 1 --quiet --no-plot --csv base.csv > /dev/null

The same figure, journaled, dies during the 6th append with exit 137
(= SIGKILL). Platform events and re-plans already simulated for the
first 5 grid points are safely journaled.

  $ ../../bin/main.exe figure ext-replan --traces 30 --t-step 300 \
  >   --t-max 900 --domains 1 --quiet --no-plot --csv crash.csv \
  >   --journal j --chaos-crash-at journal:5 > /dev/null 2>&1
  [137]

Recovery on resume: the torn 6th record is truncated, the 5 fsync'd
records are kept, the remaining points are recomputed — re-running the
platform-event schedules and the online re-planning they trigger.

  $ ../../bin/main.exe figure ext-replan --traces 30 --t-step 300 \
  >   --t-max 900 --domains 1 --no-plot --csv out.csv --resume j \
  >   > /dev/null 2> resume.log
  $ grep -o "truncated (5 good records kept)" resume.log
  truncated (5 good records kept)

The resumed curves are bit-identical to the uninterrupted baseline:
the platform-event generator is seeded per grid point, so crash-surviving
and recomputed points are indistinguishable.

  $ cmp base.csv out.csv

The replan scenario itself proves the adaptive strategies share the
campaign table cache: re-visited degraded-λ levels score cache hits,
not rebuilds. All qualitative checks hold — adaptive matches static
bit for bit when no nodes are lost and dominates once they are.

  $ ../../bin/main.exe replan --traces 100 --length 400 --lambda 0.002 \
  >   --checkpoint 20 --d 5 --loss-grid 0,0.3 --no-plot --quiet > replan.log
  $ grep -c "\[ok\]" replan.log
  4
  $ grep -c "\[??\]" replan.log
  0
  [1]
  $ grep -o "builds=3 hits=28" replan.log
  builds=3 hits=28
