(* Tests for Output.Markdown and Experiments.Campaign. *)

module Md = Output.Markdown
module C = Experiments.Campaign

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Markdown *)

let test_markdown_heading () =
  let md = Md.create () in
  Md.heading md ~level:2 "Results";
  Alcotest.(check string) "rendered" "## Results\n\n" (Md.contents md)

let test_markdown_heading_validation () =
  let md = Md.create () in
  (match Md.heading md ~level:0 "x" with
  | () -> Alcotest.fail "level 0 accepted"
  | exception Invalid_argument _ -> ())

let test_markdown_table () =
  let md = Md.create () in
  Md.table md ~header:[ "a"; "b" ] [ [ "1"; "2" ]; [ "x|y"; "z" ] ];
  let s = Md.contents md in
  Alcotest.(check bool) "header row" true (contains s "| a | b |");
  Alcotest.(check bool) "rule" true (contains s "|---|---|");
  Alcotest.(check bool) "pipe escaped" true (contains s "x\\|y")

let test_markdown_table_validation () =
  let md = Md.create () in
  (match Md.table md ~header:[ "a" ] [ [ "1"; "2" ] ] with
  | () -> Alcotest.fail "arity mismatch accepted"
  | exception Invalid_argument _ -> ());
  (match Md.table md ~header:[] [] with
  | () -> Alcotest.fail "empty header accepted"
  | exception Invalid_argument _ -> ())

let test_markdown_document () =
  let md = Md.create () in
  Md.heading md ~level:1 "T";
  Md.paragraph md "p";
  Md.bullet md [ "one"; "two" ];
  Md.code_block ~lang:"ocaml" md "let x = 1";
  let s = Md.contents md in
  List.iter
    (fun fragment ->
      Alcotest.(check bool) fragment true (contains s fragment))
    [ "# T"; "p\n"; "- one\n- two"; "```ocaml\nlet x = 1\n```" ]

let test_markdown_to_file () =
  let path = Filename.temp_file "fixedlen_md" ".md" in
  let md = Md.create () in
  Md.heading md ~level:1 "File";
  Md.to_file md ~path;
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "first line" "# File" line

(* Campaign *)

let with_temp_dir f =
  let dir = Filename.temp_file "fixedlen_campaign" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun file -> Sys.remove (Filename.concat dir file))
        (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let test_campaign_runs_selection () =
  with_temp_dir (fun dir ->
      let config =
        {
          C.default_config with
          C.out_dir = dir;
          n_traces = Some 30;
          t_step = Some 300.0;
          t_max = Some 900.0;
          figure_ids = Some [ "fig3" ];
        }
      in
      let outcome = C.run config in
      Alcotest.(check int) "one figure" 1 (List.length outcome.C.results);
      Alcotest.(check bool) "complete" false outcome.C.partial;
      Alcotest.(check (list string)) "nothing skipped" [] outcome.C.skipped;
      Alcotest.(check bool) "csv written" true
        (Sys.file_exists (Filename.concat dir "fig3.csv"));
      let md = Md.contents (C.markdown_report outcome) in
      List.iter
        (fun fragment ->
          Alcotest.(check bool) fragment true (contains md fragment))
        [ "# Experiment report"; "## fig3"; "YoungDaly"; "qualitative" ]
      |> ignore)

let test_campaign_deadline_skips_figures () =
  (* A budget that is gone before the first figure starts: the campaign
     must end gracefully with everything skipped, not raise. *)
  with_temp_dir (fun dir ->
      let config =
        {
          C.default_config with
          C.out_dir = dir;
          n_traces = Some 10;
          t_step = Some 500.0;
          t_max = Some 1000.0;
          figure_ids = Some [ "fig3" ];
          deadline = Some 0.0;
        }
      in
      let outcome = C.run config in
      Alcotest.(check bool) "partial" true outcome.C.partial;
      Alcotest.(check (list string)) "figure skipped" [ "fig3" ]
        outcome.C.skipped;
      Alcotest.(check int) "nothing ran" 0 (List.length outcome.C.results);
      Alcotest.(check bool) "no csv" false
        (Sys.file_exists (Filename.concat dir "fig3.csv"));
      (* The report still renders, flagging the partial campaign. *)
      let md = Md.contents (C.markdown_report outcome) in
      Alcotest.(check bool) "report flags partial" true
        (contains md "Partial report");
      Alcotest.(check bool) "report names the skipped figure" true
        (contains md "fig3"))

let test_campaign_unknown_figure () =
  (match
     C.run { C.default_config with C.figure_ids = Some [ "nope" ] }
   with
  | _ -> Alcotest.fail "unknown figure accepted"
  | exception Invalid_argument _ -> ())

let test_campaign_write_report () =
  with_temp_dir (fun dir ->
      let config =
        {
          C.default_config with
          C.out_dir = dir;
          n_traces = Some 20;
          t_step = Some 500.0;
          t_max = Some 1000.0;
          figure_ids = Some [ "fig3" ];
        }
      in
      let outcome = C.run config in
      let path = Filename.concat dir "report.md" in
      C.write_report outcome ~path;
      Alcotest.(check bool) "report exists" true (Sys.file_exists path))

let () =
  Alcotest.run "campaign"
    [
      ( "markdown",
        [
          Alcotest.test_case "heading" `Quick test_markdown_heading;
          Alcotest.test_case "heading validation" `Quick
            test_markdown_heading_validation;
          Alcotest.test_case "table" `Quick test_markdown_table;
          Alcotest.test_case "table validation" `Quick
            test_markdown_table_validation;
          Alcotest.test_case "document" `Quick test_markdown_document;
          Alcotest.test_case "to_file" `Quick test_markdown_to_file;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "selected figure end-to-end" `Slow
            test_campaign_runs_selection;
          Alcotest.test_case "unknown figure" `Quick test_campaign_unknown_figure;
          Alcotest.test_case "deadline skips figures" `Quick
            test_campaign_deadline_skips_figures;
          Alcotest.test_case "write report" `Slow test_campaign_write_report;
        ] );
    ]
