(* Tests for Fault.Trace_io and Trace.iats_until. *)

module T = Fault.Trace
module Io = Fault.Trace_io

let close ?(eps = 0.0) = Alcotest.(check (float eps))

let with_temp f =
  let path = Filename.temp_file "fixedlen_traces" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let test_iats_until_generator () =
  let tr = T.of_iats [| 10.0; 20.0; 30.0; 40.0 |] in
  Alcotest.(check (array (float 0.0))) "covers 25" [| 10.0; 20.0 |]
    (T.iats_until tr ~until:25.0);
  Alcotest.(check (array (float 0.0))) "exact boundary includes next"
    [| 10.0; 20.0; 30.0 |]
    (T.iats_until tr ~until:30.0);
  Alcotest.(check (array (float 0.0))) "fixed trace exhausts"
    [| 10.0; 20.0; 30.0; 40.0 |]
    (T.iats_until tr ~until:1.0e9)

let test_roundtrip_fixed () =
  with_temp (fun path ->
      let traces =
        [| T.of_iats [| 1.5; 2.25 |]; T.of_iats [| 0.125; 7.0; 100.0 |] |]
      in
      Io.save ~path ~horizon:1.0e9 traces;
      let loaded = Io.load ~path in
      Alcotest.(check int) "count" 2 (Array.length loaded);
      close "exact value" 2.25 (T.iat loaded.(0) 1);
      close "exact value 2" 0.125 (T.iat loaded.(1) 0))

let test_roundtrip_generated_replays_identically () =
  with_temp (fun path ->
      let horizon = 500.0 in
      let dist = T.Exponential { rate = 0.01 } in
      let traces = T.batch ~dist ~seed:99L ~n:20 in
      Io.save ~path ~horizon traces;
      let loaded = Io.load ~path in
      (* Replay both through the engine: outcomes must match exactly. *)
      let params = Fault.Params.paper ~lambda:0.01 ~c:10.0 ~d:0.0 in
      let policy = Sim.Policy.equal_segments ~params ~count:3 in
      Array.iteri
        (fun i original ->
          let o1 = Sim.Engine.run ~params ~horizon ~policy original in
          let o2 = Sim.Engine.run ~params ~horizon ~policy loaded.(i) in
          close
            (Printf.sprintf "trace %d same work" i)
            o1.Sim.Engine.work_saved o2.Sim.Engine.work_saved;
          Alcotest.(check int)
            (Printf.sprintf "trace %d same failures" i)
            o1.Sim.Engine.failures o2.Sim.Engine.failures)
        traces)

let test_precision_roundtrip () =
  with_temp (fun path ->
      let x = 1.0 /. 3.0 and y = Float.pi in
      Io.save ~path ~horizon:1e9 [| T.of_iats [| x; y |] |];
      let loaded = Io.load ~path in
      close "1/3 exact" x (T.iat loaded.(0) 0);
      close "pi exact" y (T.iat loaded.(0) 1))

let test_load_errors () =
  with_temp (fun path ->
      let write content =
        let oc = open_out path in
        output_string oc content;
        close_out oc
      in
      write "1.0 2.0\nnot_a_number\n";
      (match Io.load ~path with
      | _ -> Alcotest.fail "malformed accepted"
      | exception Failure msg ->
          Alcotest.(check bool) "names the line" true
            (String.length msg > 0
            && String.contains msg '2'));
      write "1.0 -2.0\n";
      (match Io.load ~path with
      | _ -> Alcotest.fail "negative IAT accepted"
      | exception Failure _ -> ());
      write "\n";
      (match Io.load ~path with
      | _ -> Alcotest.fail "empty line accepted"
      | exception Failure _ -> ()))

let test_empty_file () =
  with_temp (fun path ->
      let oc = open_out path in
      close_out oc;
      Alcotest.(check int) "no traces" 0 (Array.length (Io.load ~path)))

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let test_header_written_and_validated () =
  with_temp (fun path ->
      Io.save ~path ~horizon:100.0 [| T.of_iats [| 1.0; 2.0 |]; T.of_iats [| 3.0 |] |];
      let content = read_file path in
      Alcotest.(check bool) "magic + version + count" true
        (contains content "# fixedlen-traces v1 2 ");
      Alcotest.(check int) "loads back" 2 (Array.length (Io.load ~path)))

let test_corrupted_payload_detected () =
  with_temp (fun path ->
      Io.save ~path ~horizon:100.0 [| T.of_iats [| 1.5; 2.5 |] |];
      (* Flip one payload digit: 1.5 becomes 7.5 — still a perfectly
         parseable trace, caught only by the checksum. *)
      let content = read_file path in
      let i = String.index_from content (String.index content '\n') '1' in
      write_file path
        (String.sub content 0 i ^ "7"
        ^ String.sub content (i + 1) (String.length content - i - 1));
      match Io.load ~path with
      | _ -> Alcotest.fail "corrupted payload accepted"
      | exception Failure msg ->
          Alcotest.(check bool) "blames the checksum" true
            (contains msg "checksum");
          Alcotest.(check bool) "names the file" true (contains msg path))

let test_truncated_file_detected () =
  with_temp (fun path ->
      Io.save ~path ~horizon:100.0
        [| T.of_iats [| 1.0 |]; T.of_iats [| 2.0 |]; T.of_iats [| 3.0 |] |];
      let content = read_file path in
      (* Drop the final trace line entirely (a clean truncation). *)
      let cut = String.rindex_from content (String.length content - 2) '\n' in
      write_file path (String.sub content 0 (cut + 1));
      match Io.load ~path with
      | _ -> Alcotest.fail "truncated file accepted"
      | exception Failure msg ->
          Alcotest.(check bool) "says corrupted or truncated" true
            (contains msg "corrupted or truncated"))

let test_unsupported_version_rejected () =
  with_temp (fun path ->
      write_file path "# fixedlen-traces v9 1 100 0123456789abcdef\n1.0\n";
      match Io.load ~path with
      | _ -> Alcotest.fail "future version accepted"
      | exception Failure msg ->
          Alcotest.(check bool) "names the version" true (contains msg "v9"))

let test_typed_read_errors () =
  (* The typed interface: corruption comes back as a structured value
     carrying both checksums, not an exception — what the CLI renders as
     a one-line diagnosis. *)
  with_temp (fun path ->
      Io.save ~path ~horizon:100.0 [| T.of_iats [| 1.5; 2.5 |] |];
      let content = read_file path in
      let i = String.index_from content (String.index content '\n') '1' in
      write_file path
        (String.sub content 0 i ^ "7"
        ^ String.sub content (i + 1) (String.length content - i - 1));
      (match Io.read ~path with
      | Ok _ -> Alcotest.fail "corrupted payload accepted"
      | Error (Io.Checksum_mismatch { path = p; expected; actual }) ->
          Alcotest.(check string) "carries the path" path p;
          Alcotest.(check int) "expected is an fnv64 hex" 16
            (String.length expected);
          Alcotest.(check int) "actual is an fnv64 hex" 16
            (String.length actual);
          Alcotest.(check bool) "checksums differ" true (expected <> actual)
      | Error e -> Alcotest.failf "wrong error: %s" (Io.error_message e));
      write_file path "# fixedlen-traces v1 not-a-count 100 0123456789abcdef\n";
      (match Io.read ~path with
      | Error (Io.Malformed_header _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "malformed header not typed");
      match Io.read ~path:(path ^ ".does-not-exist") with
      | Error (Io.Unreadable _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "missing file not typed as unreadable")

let test_legacy_headerless_file_loads () =
  with_temp (fun path ->
      write_file path "1.5 2.5\n0.25 7 100\n";
      let loaded = Io.load ~path in
      Alcotest.(check int) "two traces" 2 (Array.length loaded);
      close "legacy value" 2.5 (T.iat loaded.(0) 1);
      close "legacy value 2" 0.25 (T.iat loaded.(1) 0))

let () =
  Alcotest.run "trace_io"
    [
      ( "iats_until",
        [ Alcotest.test_case "prefix extraction" `Quick test_iats_until_generator ] );
      ( "roundtrip",
        [
          Alcotest.test_case "fixed traces" `Quick test_roundtrip_fixed;
          Alcotest.test_case "generated traces replay identically" `Quick
            test_roundtrip_generated_replays_identically;
          Alcotest.test_case "full float precision" `Quick test_precision_roundtrip;
        ] );
      ( "errors",
        [
          Alcotest.test_case "malformed input" `Quick test_load_errors;
          Alcotest.test_case "empty file" `Quick test_empty_file;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "header written and validated" `Quick
            test_header_written_and_validated;
          Alcotest.test_case "corrupted payload detected" `Quick
            test_corrupted_payload_detected;
          Alcotest.test_case "truncated file detected" `Quick
            test_truncated_file_detected;
          Alcotest.test_case "unsupported version rejected" `Quick
            test_unsupported_version_rejected;
          Alcotest.test_case "typed read errors" `Quick test_typed_read_errors;
          Alcotest.test_case "legacy headerless file loads" `Quick
            test_legacy_headerless_file_loads;
        ] );
    ]
