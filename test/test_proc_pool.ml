(* Tests for Parallel.Proc_pool: the fork-based supervised worker pool.
   These exercise real process machinery — fork, SIGKILL, pipes — so the
   scenarios are kept small and the timeouts short. *)

module P = Parallel.Proc_pool

let results_t = Alcotest.(array (result int string))

let to_strings outcomes =
  Array.map
    (function Ok v -> Ok v | Error e -> Error (Printexc.to_string e))
    outcomes

let test_matches_sequential () =
  P.with_pool ~workers:3 (fun pool ->
      let xs = Array.init 17 (fun i -> i) in
      let f ~attempt:_ _i x = (x * x) + 1 in
      let got = P.try_mapi pool ~f xs in
      let expected = Array.map (fun x -> Ok ((x * x) + 1)) xs in
      Alcotest.check results_t "ordered, complete" expected (to_strings got))

let test_float_results_bit_exact () =
  (* Marshal must round-trip float bits: the process backend may not
     perturb curves relative to the in-process one. *)
  P.with_pool ~workers:2 (fun pool ->
      let xs = [| 1.0 /. 3.0; Float.pi; 1e-300; 4.0 *. atan 1.0 |] in
      let got = P.try_map pool ~f:(fun x -> x /. 7.0) xs in
      Array.iteri
        (fun i x ->
          match got.(i) with
          | Ok v ->
              Alcotest.(check bool)
                (Printf.sprintf "bit-identical %d" i)
                true
                (Int64.equal (Int64.bits_of_float v)
                   (Int64.bits_of_float (x /. 7.0)))
          | Error _ -> Alcotest.fail "task failed")
        xs)

let test_task_failure_isolated () =
  P.with_pool ~workers:2 (fun pool ->
      let xs = Array.init 6 (fun i -> i) in
      let got =
        P.try_mapi pool xs ~f:(fun ~attempt:_ _i x ->
            if x = 3 then failwith "poisoned point" else x)
      in
      Array.iteri
        (fun i outcome ->
          match (i, outcome) with
          | 3, Error (P.Task_failed { index; detail }) ->
              Alcotest.(check int) "failed index" 3 index;
              Alcotest.(check bool) "carries the message" true
                (String.length detail > 0
                && String.index_opt detail 'p' <> None)
          | 3, _ -> Alcotest.fail "poisoned task did not fail"
          | i, Ok v -> Alcotest.(check int) "others unharmed" i v
          | _, Error e ->
              Alcotest.failf "healthy task failed: %s" (Printexc.to_string e))
        got)

let test_worker_crash_isolated () =
  (* A worker that dies outright (here: _exit, standing in for a
     segfault) costs one point, not the pool. *)
  P.with_pool ~workers:2 (fun pool ->
      let xs = Array.init 5 (fun i -> i) in
      let got =
        P.try_mapi pool xs ~f:(fun ~attempt:_ _i x ->
            if x = 2 then Unix._exit 42 else x)
      in
      Array.iteri
        (fun i outcome ->
          match (i, outcome) with
          | 2, Error (P.Worker_crashed { index; _ }) ->
              Alcotest.(check int) "crashed index" 2 index
          | 2, _ -> Alcotest.fail "crash not detected"
          | i, Ok v -> Alcotest.(check int) "others unharmed" i v
          | _, Error e ->
              Alcotest.failf "healthy task failed: %s" (Printexc.to_string e))
        got)

let test_hung_task_times_out () =
  P.with_pool ~workers:2 ~task_timeout:0.2 (fun pool ->
      let xs = Array.init 4 (fun i -> i) in
      let t0 = Unix.gettimeofday () in
      let got =
        P.try_mapi pool xs ~f:(fun ~attempt:_ _i x ->
            if x = 1 then
              while true do
                Unix.sleepf 3600.0
              done;
            x)
      in
      let elapsed = Unix.gettimeofday () -. t0 in
      (match got.(1) with
      | Error (P.Task_timeout { index; timeout; attempts }) ->
          Alcotest.(check int) "timed-out index" 1 index;
          Alcotest.(check (float 0.0)) "timeout echoed" 0.2 timeout;
          Alcotest.(check int) "attempts echoed" 1 attempts
      | _ -> Alcotest.fail "hung task did not time out");
      Array.iteri
        (fun i outcome ->
          if i <> 1 then
            match outcome with
            | Ok v -> Alcotest.(check int) "others unharmed" i v
            | Error e ->
                Alcotest.failf "healthy task failed: %s" (Printexc.to_string e))
        got;
      (* The watchdog must not stall the whole map behind the hang. *)
      Alcotest.(check bool) "killed promptly" true (elapsed < 30.0))

let test_hang_retried_on_fresh_dispatch () =
  (* attempt 0 hangs, attempt 1 succeeds: the watchdog kill must
     re-dispatch with a bumped attempt counter rather than giving up. *)
  P.with_pool ~workers:2 ~task_timeout:0.2 ~attempts:2 (fun pool ->
      let xs = Array.init 3 (fun i -> i) in
      let got =
        P.try_mapi pool xs ~f:(fun ~attempt _i x ->
            if x = 1 && attempt = 0 then
              while true do
                Unix.sleepf 3600.0
              done;
            x + 100)
      in
      let expected = Array.map (fun x -> Ok (x + 100)) xs in
      Alcotest.check results_t "recovered after re-dispatch" expected
        (to_strings got))

let test_should_stop_cancels_pending () =
  (* One worker, stop as soon as the first result lands: later tasks
     must settle as Cancelled without being dispatched. *)
  P.with_pool ~workers:1 (fun pool ->
      let stop = ref false in
      let got =
        P.try_mapi pool
          ~should_stop:(fun () -> !stop)
          ~on_result:(fun _ _ -> stop := true)
          ~f:(fun ~attempt:_ _i x -> x)
          (Array.init 8 (fun i -> i))
      in
      let ok = Array.length (Array.of_seq (Seq.filter Result.is_ok (Array.to_seq got))) in
      let cancelled =
        Array.fold_left
          (fun acc -> function Error P.Cancelled -> acc + 1 | _ -> acc)
          0 got
      in
      Alcotest.(check bool) "some work done" true (ok >= 1);
      Alcotest.(check int) "rest cancelled" (8 - ok) cancelled)

let test_on_result_runs_in_parent () =
  (* The supervisor (not the forked child) must see every settled value:
     this is what lets the runner journal from the parent. *)
  let parent = Unix.getpid () in
  P.with_pool ~workers:2 (fun pool ->
      let seen = ref [] in
      let got =
        P.try_mapi pool
          ~on_result:(fun i v ->
            Alcotest.(check int) "callback in parent" parent (Unix.getpid ());
            seen := (i, v) :: !seen)
          ~f:(fun ~attempt:_ _i x -> 2 * x)
          (Array.init 5 (fun i -> i))
      in
      Alcotest.(check int) "every result observed" 5 (List.length !seen);
      List.iter
        (fun (i, v) ->
          Alcotest.(check int) (Printf.sprintf "value %d" i) (2 * i) v;
          match got.(i) with
          | Ok v' -> Alcotest.(check int) "array agrees" v v'
          | Error _ -> Alcotest.fail "settled result errored")
        !seen)

let test_validation () =
  List.iter
    (fun thunk ->
      match thunk () with
      | (_ : P.t) -> Alcotest.fail "invalid pool accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> P.create ~workers:0 ());
      (fun () -> P.create ~task_timeout:0.0 ());
      (fun () -> P.create ~attempts:0 ());
      (fun () -> P.create ~heartbeat:0.0 ());
    ];
  let pool = P.create ~workers:1 () in
  P.shutdown pool;
  match P.try_map pool ~f:Fun.id [| 1 |] with
  | _ -> Alcotest.fail "use after shutdown accepted"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "proc_pool"
    [
      ( "supervised workers",
        [
          Alcotest.test_case "matches sequential" `Quick test_matches_sequential;
          Alcotest.test_case "float results bit-exact" `Quick
            test_float_results_bit_exact;
          Alcotest.test_case "task failure isolated" `Quick
            test_task_failure_isolated;
          Alcotest.test_case "worker crash isolated" `Quick
            test_worker_crash_isolated;
          Alcotest.test_case "hung task times out" `Quick
            test_hung_task_times_out;
          Alcotest.test_case "hang retried on fresh dispatch" `Quick
            test_hang_retried_on_fresh_dispatch;
          Alcotest.test_case "should_stop cancels pending" `Quick
            test_should_stop_cancels_pending;
          Alcotest.test_case "on_result runs in parent" `Quick
            test_on_result_runs_in_parent;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
