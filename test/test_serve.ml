(* Tests for the serve daemon's socket-free layers: the wire protocol
   text, the framing over a socketpair, the bounded admission queue, and
   the request handler (answers checked against the DP tables directly,
   timeout on an injected clock, chaos, kleft capping). The end-to-end
   daemon drills — crash recovery, shedding under load, SIGTERM drain —
   live in serve_drill.t. *)

module Protocol = Serve.Protocol
module Wire = Serve.Wire
module Bqueue = Serve.Bqueue
module Handler = Serve.Handler
module Strategy = Experiments.Strategy

let params = Fault.Params.paper ~lambda:0.001 ~c:20.0 ~d:0.0

let query ?(tleft = 500.0) ?kleft ?(recovering = false) () =
  {
    Protocol.params;
    horizon = 500.0;
    quantum = 1.0;
    tleft;
    kleft;
    recovering;
  }

let platform ?(lambda = 0.001) () =
  {
    Protocol.plat_params = Fault.Params.paper ~lambda ~c:20.0 ~d:0.0;
    plat_horizon = 500.0;
    plat_quantum = 1.0;
  }

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Every request spelling exercised by the round-trip tests, session
   variants included. *)
let all_requests =
  [
    Protocol.Ping;
    Protocol.Stats;
    Protocol.Query (query ());
    Protocol.Query (query ~tleft:120.5 ~kleft:3 ~recovering:true ());
    (* a quantum %g cannot render exactly: %.17g must round-trip it *)
    Protocol.Query { (query ()) with Protocol.quantum = 1.0 /. 3.0 };
    Protocol.Session_open (platform ());
    Protocol.Session_query
      {
        Protocol.sid = 7;
        sq_tleft = 120.5;
        sq_kleft = Some 2;
        sq_recovering = true;
      };
    Protocol.Session_query
      {
        Protocol.sid = 1;
        sq_tleft = 500.0;
        sq_kleft = None;
        sq_recovering = false;
      };
    Protocol.Session_close 7;
  ]

(* protocol text *)

let test_request_round_trip () =
  let requests = all_requests in
  List.iter
    (fun req ->
      let spelled = Protocol.request_to_string req in
      match Protocol.request_of_string spelled with
      | Ok req' when req' = req -> ()
      | Ok _ -> Alcotest.failf "%S parsed back differently" spelled
      | Error e -> Alcotest.failf "%S rejected: %s" spelled e)
    requests

let all_responses =
  [
    Protocol.Pong;
    Protocol.Overloaded;
    Protocol.Timeout;
    Protocol.Answer { Protocol.next = 245.0; k = 2; work = 395.25 };
    Protocol.Answer { Protocol.next = 0.0; k = 0; work = 0.0 };
    Protocol.Stats_reply
      {
        Strategy.Cache.s_builds = 3;
        s_hits = 6;
        s_evictions = 1;
        s_resident_tables = 2;
        s_resident_bytes = 393786;
      };
    Protocol.Failed "bad float \"nope\" for \"lambda\"";
    Protocol.Session 42;
  ]

let test_response_round_trip () =
  let responses = all_responses in
  List.iter
    (fun resp ->
      let spelled = Protocol.response_to_string resp in
      match Protocol.response_of_string spelled with
      | Ok resp' when resp' = resp -> ()
      | Ok _ -> Alcotest.failf "%S parsed back differently" spelled
      | Error e -> Alcotest.failf "%S rejected: %s" spelled e)
    responses

let test_malformed_requests () =
  let rejected payload =
    match Protocol.request_of_string payload with
    | Ok _ -> Alcotest.failf "%S accepted" payload
    | Error _ -> ()
  in
  rejected "";
  rejected "bogus";
  rejected "query lambda=0.001" (* missing fields *);
  rejected
    "query lambda=x c=20 r=20 d=0 horizon=500 quantum=1 tleft=500 kleft=- \
     recovering=0" (* bad float *);
  rejected
    "query lambda=0.001 c=20 r=20 d=0 horizon=500 quantum=1 tleft=500 \
     kleft=- recovering=0 c=21" (* duplicate field *);
  rejected
    "query lambda=-1 c=20 r=20 d=0 horizon=500 quantum=1 tleft=500 kleft=- \
     recovering=0" (* Params.make must reject, as an Error not a raise *)

(* protocol binary *)

let test_binary_request_round_trip () =
  List.iter
    (fun req ->
      let packed = Protocol.request_to_binary req in
      match Protocol.request_of_binary packed with
      | Ok req' when req' = req -> ()
      | Ok _ ->
          Alcotest.failf "%S decoded back differently" (String.escaped packed)
      | Error e ->
          Alcotest.failf "%S rejected: %s" (String.escaped packed) e)
    all_requests

let test_binary_response_round_trip () =
  List.iter
    (fun resp ->
      let packed = Protocol.response_to_binary resp in
      match Protocol.response_of_binary packed with
      | Ok resp' when resp' = resp -> ()
      | Ok _ ->
          Alcotest.failf "%S decoded back differently" (String.escaped packed)
      | Error e ->
          Alcotest.failf "%S rejected: %s" (String.escaped packed) e)
    all_responses

let test_malformed_binary_requests () =
  let rejected payload =
    match Protocol.request_of_binary payload with
    | Ok _ -> Alcotest.failf "binary %S accepted" (String.escaped payload)
    | Error _ -> ()
  in
  rejected "";
  rejected "\xff" (* unknown tag *);
  let good = Protocol.request_to_binary (Protocol.Query (query ())) in
  rejected (String.sub good 0 (String.length good - 1)) (* truncated *);
  rejected (good ^ "\x00") (* trailing bytes *);
  (* Both spellings run the same validation: a negative lambda is
     rejected by decode, not raised out of Params.make. *)
  let bad = Bytes.of_string good in
  Bytes.set_int64_le bad 1 (Int64.bits_of_float (-1.0));
  rejected (Bytes.to_string bad);
  let sid0 =
    Bytes.of_string (Protocol.request_to_binary (Protocol.Session_close 1))
  in
  Bytes.set_int32_le sid0 1 0l;
  rejected (Bytes.to_string sid0) (* sid must be >= 1 *)

(* The two spellings decode to the same value, so the server can journal
   a binary query as canonical text and replay it bit-identically: for
   any query, decode(binary) spelled as text equals the direct text
   spelling. Floats are drawn to include awkward mantissas. *)
let binary_text_spellings_agree =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"binary and text spellings agree" ~count:500
       (QCheck.make
          QCheck.Gen.(
            let pos lo hi = float_range lo hi in
            tup7 (pos 1e-6 0.1) (pos 0.1 100.0) (pos 0.1 100.0)
              (pos 0.0 10.0) (pos 1.0 1000.0)
              (pair (pos 0.0 1000.0) (opt (int_range 0 20)))
              bool))
       (fun (lambda, c, r, d, horizon, (tleft, kleft), recovering) ->
         let q =
           {
             Protocol.params = Fault.Params.make ~lambda ~c ~r ~d;
             horizon;
             quantum = horizon /. 97.0;
             tleft;
             kleft;
             recovering;
           }
         in
         let req = Protocol.Query q in
         let via_binary =
           Protocol.request_of_binary (Protocol.request_to_binary req)
         in
         let via_text =
           Protocol.request_of_string (Protocol.request_to_string req)
         in
         match (via_binary, via_text) with
         | Ok b, Ok t ->
             b = req && t = req
             && Protocol.request_to_string b = Protocol.request_to_string t
         | _ -> false))

(* wire framing over a socketpair *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b ])
    (fun () -> f a b)

let with_wire_pair ?mode ?max_frame f =
  with_socketpair (fun a b ->
      f (Wire.of_fd ?mode ?max_frame a) (Wire.of_fd ?mode ?max_frame b))

let test_wire_round_trip () =
  List.iter
    (fun mode ->
      with_wire_pair ~mode (fun a b ->
          let payloads = [ "ping"; "stats"; String.make 512 'x'; "" ] in
          List.iter (fun p -> Wire.send a p) payloads;
          List.iter
            (fun p ->
              match Wire.recv b with
              | Ok got -> Alcotest.(check string) "payload" p got
              | Error e ->
                  Alcotest.failf "recv failed: %s" (Wire.error_message e))
            payloads))
    [ Wire.Text; Wire.Binary ]

let test_wire_closed_and_torn () =
  List.iter
    (fun mode ->
      with_wire_pair ~mode (fun a b ->
          Unix.close (Wire.fd a);
          match Wire.recv b with
          | Error Wire.Closed -> ()
          | Error (Wire.Torn why) ->
              Alcotest.failf "EOF diagnosed as torn: %s" why
          | Ok p -> Alcotest.failf "read %S from a closed peer" p))
    [ Wire.Text; Wire.Binary ];
  with_socketpair (fun a b ->
      (* A corrupted checksum must be a torn frame, not a payload. *)
      let frame = Robust.Durable.Framed.frame "ping" in
      let bad = Bytes.of_string frame in
      let last_hex = Bytes.length bad - 2 in
      Bytes.set bad last_hex
        (if Bytes.get bad last_hex = '0' then '1' else '0');
      let n = Unix.write a bad 0 (Bytes.length bad) in
      Alcotest.(check int) "wrote the whole frame" (Bytes.length bad) n;
      match Wire.recv (Wire.of_fd b) with
      | Error (Wire.Torn _) -> ()
      | Error Wire.Closed -> Alcotest.fail "corruption diagnosed as EOF"
      | Ok p -> Alcotest.failf "accepted corrupted frame as %S" p);
  with_socketpair (fun a b ->
      (* Same for a binary frame with a flipped checksum byte. *)
      let payload = "ping" in
      let len = String.length payload in
      let frame = Bytes.create (4 + len + 8) in
      Bytes.set_int32_le frame 0 (Int32.of_int len);
      Bytes.blit_string payload 0 frame 4 len;
      Bytes.set_int64_le frame (4 + len)
        (Int64.lognot (Numerics.Checksum.fnv1a64 payload));
      let n = Unix.write a frame 0 (Bytes.length frame) in
      Alcotest.(check int) "wrote the whole frame" (Bytes.length frame) n;
      match Wire.recv (Wire.of_fd ~mode:Wire.Binary b) with
      | Error (Wire.Torn _) -> ()
      | Error Wire.Closed -> Alcotest.fail "corruption diagnosed as EOF"
      | Ok p -> Alcotest.failf "accepted corrupted frame as %S" p)

let test_wire_max_frame_is_per_connection () =
  (* Send side refuses to emit a frame beyond the connection's bound. *)
  with_wire_pair ~max_frame:16 (fun a _b ->
      match Wire.send a (String.make 17 'x') with
      | () -> Alcotest.fail "oversized send accepted"
      | exception Invalid_argument _ -> ());
  (* Receive side tears the frame, naming both the offending length and
     the negotiated limit. *)
  List.iter
    (fun mode ->
      with_socketpair (fun a b ->
          let sender = Wire.of_fd ~mode a in
          let receiver = Wire.of_fd ~mode ~max_frame:16 b in
          Wire.send sender (String.make 64 'x');
          match Wire.recv receiver with
          | Error (Wire.Torn why) ->
              Alcotest.(check bool) "names the offending length" true
                (contains why "64");
              Alcotest.(check bool) "names the limit" true (contains why "16")
          | Error Wire.Closed -> Alcotest.fail "overrun diagnosed as EOF"
          | Ok p -> Alcotest.failf "accepted %d-byte frame" (String.length p)))
    [ Wire.Text; Wire.Binary ];
  with_socketpair (fun a _b ->
      match Wire.of_fd ~max_frame:0 a with
      | (_ : Wire.conn) -> Alcotest.fail "max_frame 0 accepted"
      | exception Invalid_argument _ -> ())

(* hello negotiation *)

let test_wire_hello_negotiation () =
  with_wire_pair (fun client server ->
      (* client_hello blocks on the ack, so it runs on its own thread
         while the main one plays server. *)
      let client_result = ref (Ok false) in
      let th =
        Thread.create
          (fun () ->
            client_result :=
              Wire.client_hello client ~mode:Wire.Binary
                ~max_frame:(1 lsl 21) ())
          ()
      in
      (match Wire.server_negotiate server with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "negotiate failed: %s" (Wire.error_message e));
      Thread.join th;
      (match !client_result with
      | Ok true -> ()
      | Ok false -> Alcotest.fail "server answered with a legacy frame"
      | Error e -> Alcotest.failf "hello failed: %s" (Wire.error_message e));
      Alcotest.(check bool) "client switched" true
        (Wire.mode client = Wire.Binary);
      Alcotest.(check bool) "server switched" true
        (Wire.mode server = Wire.Binary);
      Alcotest.(check int) "client granted" (1 lsl 21) (Wire.max_frame client);
      Alcotest.(check int) "server granted" (1 lsl 21) (Wire.max_frame server);
      (* The negotiated link carries binary frames both ways. *)
      Wire.send client "hello";
      (match Wire.recv server with
      | Ok "hello" -> ()
      | _ -> Alcotest.fail "binary frame lost client->server");
      Wire.send server "world";
      match Wire.recv client with
      | Ok "world" -> ()
      | _ -> Alcotest.fail "binary frame lost server->client")

let test_wire_legacy_text_client_skips_hello () =
  with_wire_pair (fun client server ->
      (* No hello: the first frame's digit prefix tells the server to
         keep text defaults and consume nothing. *)
      Wire.send client "ping";
      (match Wire.server_negotiate server with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "negotiate failed: %s" (Wire.error_message e));
      Alcotest.(check bool) "stays text" true (Wire.mode server = Wire.Text);
      Alcotest.(check int) "keeps the default bound" Wire.default_max_frame
        (Wire.max_frame server);
      Alcotest.(check bool) "frame still buffered" true (Wire.buffered server);
      match Wire.recv server with
      | Ok "ping" -> ()
      | _ -> Alcotest.fail "first frame lost to negotiation")

let test_wire_hello_against_legacy_server () =
  with_wire_pair (fun client server ->
      (* A peer that never negotiates (a shedding accept loop does
         exactly this) answers the hello with an ordinary text frame:
         the client must fall back to text and keep the frame. *)
      let th = Thread.create (fun () -> Wire.send server "overloaded") () in
      (match Wire.client_hello client ~mode:Wire.Binary () with
      | Ok false -> ()
      | Ok true -> Alcotest.fail "no ack was sent, yet negotiation succeeded"
      | Error e -> Alcotest.failf "hello failed: %s" (Wire.error_message e));
      Thread.join th;
      Alcotest.(check bool) "stays text" true (Wire.mode client = Wire.Text);
      match Wire.recv client with
      | Ok "overloaded" -> ()
      | _ -> Alcotest.fail "shed reply lost to the hello")

let test_wire_hello_grant_has_floor () =
  with_wire_pair (fun client server ->
      (* A hostile hello asking for a 1-byte bound: honoring it would
         make every server reply an oversized send — a remotely
         triggered crash. The grant is raised to the floor instead, and
         replies larger than the ask still flow. *)
      let client_result = ref (Ok false) in
      let th =
        Thread.create
          (fun () ->
            client_result :=
              Wire.client_hello client ~mode:Wire.Binary ~max_frame:1 ())
          ()
      in
      (match Wire.server_negotiate server with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "negotiate failed: %s" (Wire.error_message e));
      Thread.join th;
      (match !client_result with
      | Ok true -> ()
      | Ok false -> Alcotest.fail "server answered with a legacy frame"
      | Error e -> Alcotest.failf "hello failed: %s" (Wire.error_message e));
      Alcotest.(check int) "grant raised to the floor" Wire.min_max_frame
        (Wire.max_frame server);
      Alcotest.(check int) "client adopts the raised grant"
        Wire.min_max_frame (Wire.max_frame client);
      Wire.send server (String.make 64 'x');
      match Wire.recv client with
      | Ok p -> Alcotest.(check int) "reply flows" 64 (String.length p)
      | Error e -> Alcotest.failf "reply lost: %s" (Wire.error_message e))

let test_wire_stalled_read_is_torn () =
  List.iter
    (fun mode ->
      with_socketpair (fun a b ->
          (* A receive timeout on the reading side plus a half-sent
             frame: the stall must surface as a torn frame, not block
             forever or escape as a raw Unix_error. *)
          Unix.setsockopt_float b Unix.SO_RCVTIMEO 0.05;
          let receiver = Wire.of_fd ~mode b in
          let partial =
            match mode with
            | Wire.Text ->
                (* length prefix and part of the payload, no tail *)
                "10 abc"
            | Wire.Binary ->
                let h = Bytes.create 4 in
                Bytes.set_int32_le h 0 10l;
                Bytes.unsafe_to_string h ^ "abc"
          in
          let n = Unix.write_substring a partial 0 (String.length partial) in
          Alcotest.(check int) "partial frame written" (String.length partial)
            n;
          match Wire.recv receiver with
          | Error (Wire.Torn why) ->
              Alcotest.(check bool) "names the timeout" true
                (contains why "timed out")
          | Error Wire.Closed -> Alcotest.fail "stall diagnosed as EOF"
          | Ok p -> Alcotest.failf "read %S from a stalled peer" p))
    [ Wire.Text; Wire.Binary ]

let test_wire_hello_clamps_to_hard_max () =
  with_socketpair (fun a b ->
      (* A raw hello asking for far more than the ceiling: the grant is
         clamped, and the ack carries the clamp. *)
      let hello = Bytes.create 5 in
      Bytes.set hello 0 'B';
      Bytes.set_int32_le hello 1 Int32.max_int;
      let (_ : int) = Unix.write a hello 0 5 in
      let server = Wire.of_fd b in
      (match Wire.server_negotiate server with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "negotiate failed: %s" (Wire.error_message e));
      Alcotest.(check int) "grant clamped" Wire.hard_max_frame
        (Wire.max_frame server);
      let ack = Bytes.create 5 in
      let n = Unix.read a ack 0 5 in
      Alcotest.(check int) "ack is 5 bytes" 5 n;
      Alcotest.(check char) "ack echoes the mode" 'B' (Bytes.get ack 0);
      Alcotest.(check int32) "ack carries the clamp"
        (Int32.of_int Wire.hard_max_frame)
        (Bytes.get_int32_le ack 1);
      (* The client-side guard refuses the absurd ask before it ever
         reaches a server. *)
      match
        Wire.client_hello server ~mode:Wire.Binary
          ~max_frame:(Wire.hard_max_frame + 1) ()
      with
      | _ -> Alcotest.fail "over-hard max_frame accepted"
      | exception Invalid_argument _ -> ())

(* bounded queue *)

let test_bqueue_bound_and_fifo () =
  let q = Bqueue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2);
  Alcotest.(check bool) "full queue refuses" false (Bqueue.try_push q 3);
  Alcotest.(check int) "length" 2 (Bqueue.length q);
  Alcotest.(check (option int)) "fifo" (Some 1) (Bqueue.pop q);
  Alcotest.(check bool) "slot freed" true (Bqueue.try_push q 3);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Bqueue.pop q);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Bqueue.pop q)

let test_bqueue_capacity_zero_sheds_all () =
  let q = Bqueue.create ~capacity:0 in
  Alcotest.(check bool) "sheds everything" false (Bqueue.try_push q 1);
  (match Bqueue.create ~capacity:(-1) with
  | (_ : int Bqueue.t) -> Alcotest.fail "negative capacity accepted"
  | exception Invalid_argument _ -> ())

let test_bqueue_close_drains () =
  let q = Bqueue.create ~capacity:4 in
  Alcotest.(check bool) "push before close" true (Bqueue.try_push q 1);
  Bqueue.close q;
  Bqueue.close q (* idempotent *);
  Alcotest.(check bool) "push after close refused" false (Bqueue.try_push q 2);
  Alcotest.(check (option int)) "drains queued item" (Some 1) (Bqueue.pop q);
  Alcotest.(check (option int)) "then signals done" None (Bqueue.pop q)

let test_bqueue_close_wakes_blocked_popper () =
  let q = Bqueue.create ~capacity:1 in
  let got = ref (Some 0) in
  let popper = Thread.create (fun () -> got := Bqueue.pop q) () in
  Thread.delay 0.05;
  Bqueue.close q;
  Thread.join popper;
  Alcotest.(check (option int)) "blocked pop returns None on close" None !got

let test_bqueue_pop_batch () =
  let q = Bqueue.create ~capacity:8 in
  List.iter (fun i -> ignore (Bqueue.try_push q i)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "takes up to max, fifo" [ 1; 2; 3 ]
    (Bqueue.pop_batch q ~max:3);
  Alcotest.(check (list int)) "rest in order" [ 4; 5 ]
    (Bqueue.pop_batch q ~max:8);
  (match Bqueue.pop_batch q ~max:0 with
  | _ -> Alcotest.fail "max = 0 accepted"
  | exception Invalid_argument _ -> ());
  (* Blocks like pop: a push wakes it. *)
  let got = ref [] in
  let popper = Thread.create (fun () -> got := Bqueue.pop_batch q ~max:4) () in
  Thread.delay 0.05;
  Alcotest.(check bool) "push wakes the popper" true (Bqueue.try_push q 9);
  Thread.join popper;
  Alcotest.(check (list int)) "woken with the pushed item" [ 9 ] !got;
  (* Close semantics: drain what is queued, then []. *)
  ignore (Bqueue.try_push q 10);
  Bqueue.close q;
  Alcotest.(check (list int)) "drains after close" [ 10 ]
    (Bqueue.pop_batch q ~max:4);
  Alcotest.(check (list int)) "then signals done" []
    (Bqueue.pop_batch q ~max:4)

let test_bqueue_close_wakes_blocked_batch_popper () =
  let q = Bqueue.create ~capacity:1 in
  let got = ref [ 0 ] in
  let popper = Thread.create (fun () -> got := Bqueue.pop_batch q ~max:4) () in
  Thread.delay 0.05;
  Bqueue.close q;
  Thread.join popper;
  Alcotest.(check (list int)) "blocked batch pop returns [] on close" [] !got

let test_bqueue_try_drain () =
  let q = Bqueue.create ~capacity:4 in
  Alcotest.(check (list int)) "empty drains nothing" []
    (Bqueue.try_drain q ~max:4);
  List.iter (fun i -> ignore (Bqueue.try_push q i)) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "bounded, fifo" [ 1; 2 ]
    (Bqueue.try_drain q ~max:2);
  Alcotest.(check int) "rest still queued" 1 (Bqueue.length q);
  (match Bqueue.try_drain q ~max:0 with
  | _ -> Alcotest.fail "max = 0 accepted"
  | exception Invalid_argument _ -> ());
  Bqueue.close q;
  Alcotest.(check (list int)) "drains after close" [ 3 ]
    (Bqueue.try_drain q ~max:2);
  Alcotest.(check (list int)) "never blocks once done" []
    (Bqueue.try_drain q ~max:2)

let test_bqueue_evict () =
  let q = Bqueue.create ~capacity:8 in
  Alcotest.(check (list int)) "empty queue evicts nothing" []
    (Bqueue.evict q ~f:(fun _ -> true));
  List.iter (fun i -> ignore (Bqueue.try_push q i)) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (list int)) "evicted in fifo order" [ 2; 4 ]
    (Bqueue.evict q ~f:(fun x -> x mod 2 = 0));
  Alcotest.(check int) "rest still queued" 3 (Bqueue.length q);
  Alcotest.(check bool) "slots freed" true (Bqueue.try_push q 6);
  Alcotest.(check (list int)) "survivors keep their order" [ 1; 3; 5; 6 ]
    (Bqueue.try_drain q ~max:8)

(* sessions *)

module Session = Serve.Session

let test_session_open_resolve_close () =
  let t = Session.create ~capacity:4 in
  let plat = platform () in
  let sid = Session.open_ t plat in
  Alcotest.(check int) "sids start at 1" 1 sid;
  (match Session.resolve t ~sid ~tleft:120.0 ~recovering:false with
  | Some p when p = plat -> ()
  | Some _ -> Alcotest.fail "resolved to a different platform"
  | None -> Alcotest.fail "open session did not resolve");
  ignore (Session.resolve t ~sid ~tleft:80.0 ~recovering:true);
  Alcotest.(check (option (pair int int)))
    "history counts queries and failures" (Some (2, 1))
    (Session.history t sid);
  Alcotest.(check bool) "close releases" true (Session.close t sid);
  Alcotest.(check bool) "double close refused" false (Session.close t sid);
  Alcotest.(check bool) "closed sid gone" true
    (Session.resolve t ~sid ~tleft:1.0 ~recovering:false = None);
  Alcotest.(check bool) "unknown sid refused" true
    (Session.resolve t ~sid:999 ~tleft:1.0 ~recovering:false = None);
  let st = Session.stats t in
  Alcotest.(check int) "opened" 1 st.Session.st_opened;
  Alcotest.(check int) "resident" 0 st.Session.st_resident

let test_session_lru_eviction () =
  let t = Session.create ~capacity:2 in
  let s1 = Session.open_ t (platform ~lambda:0.001 ()) in
  let s2 = Session.open_ t (platform ~lambda:0.002 ()) in
  (* Touch s1 so s2 is the LRU, then overflow. *)
  ignore (Session.resolve t ~sid:s1 ~tleft:100.0 ~recovering:false);
  let s3 = Session.open_ t (platform ~lambda:0.003 ()) in
  Alcotest.(check bool) "lru evicted" true
    (Session.resolve t ~sid:s2 ~tleft:1.0 ~recovering:false = None);
  Alcotest.(check bool) "recently used survives" true
    (Session.resolve t ~sid:s1 ~tleft:1.0 ~recovering:false <> None);
  Alcotest.(check bool) "new session lives" true
    (Session.resolve t ~sid:s3 ~tleft:1.0 ~recovering:false <> None);
  let st = Session.stats t in
  Alcotest.(check int) "evicted" 1 st.Session.st_evicted;
  Alcotest.(check int) "resident" 2 st.Session.st_resident;
  Alcotest.(check int) "sids stay dense" 3 s3;
  match Session.create ~capacity:0 with
  | (_ : Session.t) -> Alcotest.fail "capacity 0 accepted"
  | exception Invalid_argument _ -> ()

(* segmented journal *)

module Seglog = Serve.Seglog

let with_seglog_temp f =
  let path = Filename.temp_file "fixedlen_seglog" ".log" in
  let rm p = try Sys.remove p with Sys_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      rm path;
      List.iter
        (fun suffix -> rm (path ^ suffix))
        [ ".tmp"; ".quarantine"; ".quarantine.reason" ];
      let rec rm_segments n =
        let seg = Printf.sprintf "%s.%d" path n in
        if Sys.file_exists seg then begin
          rm seg;
          rm_segments (n + 1)
        end
      in
      rm_segments 1)
    (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let open_log ?rotate_bytes path =
  Seglog.open_ ?rotate_bytes ~point:"seglog-test" ~path ~header:"# seglog v1" ()

let test_seglog_rotates_and_recovers () =
  with_seglog_temp (fun path ->
      let payloads = List.init 6 (Printf.sprintf "request %d") in
      let log, r0 = open_log ~rotate_bytes:30 path in
      Alcotest.(check (list string)) "fresh store is empty" [] r0.Seglog.payloads;
      List.iter (Seglog.append log) payloads;
      (* Each ~30-byte frame crosses the bound on its own, so every
         append sealed a one-record segment. *)
      Alcotest.(check int) "sealed per append" 6 (Seglog.sealed log);
      Seglog.close log;
      let log, r = open_log ~rotate_bytes:30 path in
      Seglog.close log;
      Alcotest.(check int) "segments found" 6 r.Seglog.sealed;
      Alcotest.(check (list string)) "oldest-first across segments"
        payloads r.Seglog.payloads;
      Alcotest.(check (list string)) "clean recovery warns nothing" []
        r.Seglog.warnings)

let test_seglog_without_rotation_is_single_file () =
  with_seglog_temp (fun path ->
      let log, _ = open_log path in
      List.iter (Seglog.append log) [ "a"; "b"; "c" ];
      Alcotest.(check int) "never seals" 0 (Seglog.sealed log);
      Seglog.close log;
      Alcotest.(check bool) "no segment file" false
        (Sys.file_exists (path ^ ".1"));
      let log, r = open_log path in
      Seglog.close log;
      Alcotest.(check (list string)) "recovers from the live file"
        [ "a"; "b"; "c" ] r.Seglog.payloads)

let test_seglog_drops_mid_rotation_duplicate () =
  with_seglog_temp (fun path ->
      let log, _ = open_log path in
      List.iter (Seglog.append log) [ "a"; "b" ];
      Seglog.close log;
      (* Simulate a crash after the seal was published but before the
         live file was reset: the newest segment is byte-identical to
         the live file. *)
      Robust.Durable.write_atomic ~path:(path ^ ".1") (read_file path);
      let log, r = open_log path in
      Alcotest.(check (list string)) "no record recovered twice"
        [ "a"; "b" ] r.Seglog.payloads;
      Alcotest.(check int) "the seal counts" 1 r.Seglog.sealed;
      (match r.Seglog.warnings with
      | [ w ] ->
          Alcotest.(check bool) "warning names the rotation crash" true
            (String.length w >= 9 && String.sub w 0 9 = "live file")
      | ws ->
          Alcotest.failf "expected one duplicate warning, got %d"
            (List.length ws));
      (* The journal keeps working: the next append lands in the fresh
         live file, and numbering continues after the seal. *)
      Seglog.append log "c";
      Seglog.close log;
      let log, r = open_log path in
      Seglog.close log;
      Alcotest.(check (list string)) "appends continue after the drop"
        [ "a"; "b"; "c" ] r.Seglog.payloads)

let test_seglog_truncates_torn_live_tail () =
  with_seglog_temp (fun path ->
      let log, _ = open_log path in
      List.iter (Seglog.append log) [ "a"; "b" ];
      Seglog.close log;
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "13 torn rec";
      close_out oc;
      let log, r = open_log path in
      Seglog.close log;
      Alcotest.(check (list string)) "intact prefix kept" [ "a"; "b" ]
        r.Seglog.payloads;
      Alcotest.(check int) "one damage warning" 1
        (List.length r.Seglog.warnings))

let test_seglog_validation () =
  with_seglog_temp (fun path ->
      match open_log ~rotate_bytes:0 path with
      | (_ : Seglog.t * Seglog.recovery) ->
          Alcotest.fail "rotate_bytes = 0 accepted"
      | exception Invalid_argument _ -> ())

(* compaction: merge sealed segments, drop byte-identical duplicates,
   keep the sequence dense and the records recoverable *)

let compact_log path =
  Seglog.compact ~point:"seglog-test" ~path ~header:"# seglog v1" ()

let test_seglog_compact_merges_and_dedups () =
  with_seglog_temp (fun path ->
      let log, _ = open_log ~rotate_bytes:1 path in
      List.iter (Seglog.append log)
        [ "alpha"; "beta"; "alpha"; "gamma"; "beta"; "delta" ];
      Alcotest.(check int) "six sealed segments" 6 (Seglog.sealed log);
      Seglog.close log;
      (match compact_log path with
      | None -> Alcotest.fail "compaction skipped six segments"
      | Some c ->
          Alcotest.(check int) "segments merged" 6 c.Seglog.segments_merged;
          Alcotest.(check int) "records kept" 4 c.Seglog.records_kept;
          Alcotest.(check int) "duplicates dropped" 2 c.Seglog.duplicates_dropped;
          Alcotest.(check (list string)) "clean merge warns nothing" []
            c.Seglog.compact_warnings);
      Alcotest.(check bool) "merged segment published" true
        (Sys.file_exists (path ^ ".1"));
      Alcotest.(check bool) "old segments unlinked" false
        (Sys.file_exists (path ^ ".2"));
      let log, r = open_log ~rotate_bytes:1 path in
      Alcotest.(check (list string)) "first occurrence wins, order kept"
        [ "alpha"; "beta"; "gamma"; "delta" ] r.Seglog.payloads;
      Alcotest.(check int) "one segment after the merge" 1 r.Seglog.sealed;
      Alcotest.(check (list string)) "recovery warns nothing" [] r.Seglog.warnings;
      (* The journal keeps working: numbering stays dense after .1. *)
      Seglog.append log "epsilon";
      Seglog.close log;
      let log, r = open_log path in
      Seglog.close log;
      Alcotest.(check (list string)) "appends continue after compaction"
        [ "alpha"; "beta"; "gamma"; "delta"; "epsilon" ] r.Seglog.payloads)

let test_seglog_compact_idempotent () =
  with_seglog_temp (fun path ->
      (* No journal at all, then a single-segment journal: both are
         already compact. *)
      Alcotest.(check bool) "nothing to compact" true (compact_log path = None);
      let log, _ = open_log ~rotate_bytes:1 path in
      List.iter (Seglog.append log) [ "a"; "b" ];
      Seglog.close log;
      (match compact_log path with
      | Some c ->
          Alcotest.(check int) "unique records all kept" 2 c.Seglog.records_kept;
          Alcotest.(check int) "nothing dropped" 0 c.Seglog.duplicates_dropped
      | None -> Alcotest.fail "two segments not compacted");
      Alcotest.(check bool) "second run is a no-op" true
        (compact_log path = None))

let test_seglog_compact_heals_crash_window () =
  with_seglog_temp (fun path ->
      let log, _ = open_log ~rotate_bytes:1 path in
      List.iter (Seglog.append log) [ "a"; "b"; "c" ];
      Seglog.close log;
      (match compact_log path with
      | Some c -> Alcotest.(check int) "merged" 3 c.Seglog.segments_merged
      | None -> Alcotest.fail "three segments not compacted");
      (* Simulate dying between publish and the last unlink: a stale
         segment whose records all live in the merged one. *)
      Robust.Durable.write_atomic ~path:(path ^ ".2") (read_file (path ^ ".1"));
      (match compact_log path with
      | Some c ->
          Alcotest.(check int) "re-merged" 2 c.Seglog.segments_merged;
          Alcotest.(check int) "kept" 3 c.Seglog.records_kept;
          Alcotest.(check int) "stale copies dropped" 3
            c.Seglog.duplicates_dropped
      | None -> Alcotest.fail "crash leftover not healed");
      Alcotest.(check bool) "leftover unlinked" false
        (Sys.file_exists (path ^ ".2"));
      let log, r = open_log path in
      Seglog.close log;
      Alcotest.(check (list string)) "records intact" [ "a"; "b"; "c" ]
        r.Seglog.payloads)

(* handler *)

let test_handler_ping_and_stats () =
  let cache = Strategy.Cache.create () in
  let h = Handler.create ~cache () in
  (match Handler.handle h Protocol.Ping with
  | Protocol.Pong -> ()
  | _ -> Alcotest.fail "ping did not pong");
  (match Handler.handle h Protocol.Stats with
  | Protocol.Stats_reply st ->
      Alcotest.(check int) "cold cache: no builds" 0
        st.Strategy.Cache.s_builds
  | _ -> Alcotest.fail "stats did not reply with stats");
  (match Handler.handle h (Protocol.Query (query ())) with
  | Protocol.Answer _ -> ()
  | r -> Alcotest.failf "query failed: %s" (Protocol.render_response r));
  match Handler.handle h Protocol.Stats with
  | Protocol.Stats_reply st ->
      Alcotest.(check int) "query built one table" 1
        st.Strategy.Cache.s_builds
  | _ -> Alcotest.fail "stats did not reply with stats"

(* The handler's answers restated from the DP table it queried — the
   same recursion Core.Dp.policy replans with. *)
let check_answer_against_table h q =
  let dp =
    Core.Dp.build ~params:q.Protocol.params ~quantum:q.Protocol.quantum
      ~horizon:q.Protocol.horizon ()
  in
  let u = Core.Dp.quantum dp in
  let n =
    min
      (int_of_float (Float.floor ((q.Protocol.tleft /. u) +. 1e-9)))
      (Core.Dp.horizon_quanta dp)
  in
  let expect_k, delta =
    if not q.Protocol.recovering then (Core.Dp.best_k dp ~n ~delta:false, false)
    else
      let cap =
        match q.Protocol.kleft with
        | None -> Core.Dp.kmax dp
        | Some k -> min (max 1 k) (Core.Dp.kmax dp)
      in
      (Core.Dp.arg_best_m dp ~n ~k:cap, true)
  in
  match Handler.handle h (Protocol.Query q) with
  | Protocol.Answer a ->
      if expect_k = 0 || n = 0 then begin
        Alcotest.(check int) "no plan: k" 0 a.Protocol.k;
        Alcotest.(check (float 0.0)) "no plan: next" 0.0 a.Protocol.next
      end
      else begin
        Alcotest.(check int) "k" expect_k a.Protocol.k;
        Alcotest.(check (float 0.0))
          "next"
          (float_of_int (Core.Dp.first_checkpoint_q dp ~n ~k:expect_k ~delta)
          *. u)
          a.Protocol.next;
        Alcotest.(check (float 0.0))
          "work"
          (Core.Dp.expected_work_q dp ~n ~k:expect_k ~delta)
          a.Protocol.work
      end
  | r -> Alcotest.failf "query failed: %s" (Protocol.render_response r)

let test_handler_answers_match_tables () =
  let cache = Strategy.Cache.create () in
  let h = Handler.create ~cache () in
  check_answer_against_table h (query ()) (* fresh plan, full horizon *);
  check_answer_against_table h (query ~tleft:120.0 ()) (* fresh, mid-run *);
  check_answer_against_table h
    (query ~tleft:120.0 ~recovering:true ()) (* re-plan, unconstrained *);
  check_answer_against_table h
    (query ~tleft:120.0 ~kleft:2 ~recovering:true ()) (* re-plan, capped *);
  check_answer_against_table h
    (query ~tleft:120.0 ~kleft:0 ~recovering:true ())
    (* kleft=0 is clamped to 1: a recovering execution may always place
       one more checkpoint if the table says it pays *);
  check_answer_against_table h (query ~tleft:0.0 ()) (* nothing left *);
  (* One table serves every tleft at this (params, horizon, quantum). *)
  Alcotest.(check int) "one build across all queries" 1
    (Strategy.Cache.builds cache)

let test_handler_timeout_on_injected_clock () =
  let time = ref 0.0 in
  let cache = Strategy.Cache.create () in
  let h =
    Handler.create ~budget:0.05
      ~now:(fun () -> !time)
      ~slow:0.1
      ~sleep:(fun d -> time := !time +. d)
      ~cache ()
  in
  (match Handler.handle h (Protocol.Query (query ())) with
  | Protocol.Timeout -> ()
  | r -> Alcotest.failf "expected timeout, got %s" (Protocol.render_response r));
  (* The budget bounds the request, not the handler: a fast handler on
     the same cache still answers. *)
  let fast = Handler.create ~budget:10.0 ~cache () in
  match Handler.handle fast (Protocol.Query (query ())) with
  | Protocol.Answer _ -> ()
  | r -> Alcotest.failf "retry failed: %s" (Protocol.render_response r)

let test_handler_chaos_is_typed_failure () =
  let cache = Strategy.Cache.create () in
  let chaos = Robust.Chaos.create ~failure_rate:1.0 ~seed:7L () in
  let h = Handler.create ~chaos ~cache () in
  match Handler.handle h (Protocol.Query (query ())) with
  | Protocol.Failed msg ->
      Alcotest.(check bool) "names the injection" true
        (String.length msg >= 9 && String.sub msg 0 9 = "injected:")
  | r ->
      Alcotest.failf "chaos leaked through as %s" (Protocol.render_response r)

let test_handler_malformed_payload () =
  let cache = Strategy.Cache.create () in
  let h = Handler.create ~cache () in
  (match Handler.handle_payload h "query lambda=nope" with
  | Protocol.Failed _ -> ()
  | r -> Alcotest.failf "malformed payload answered %s"
           (Protocol.render_response r));
  Alcotest.(check int) "tables untouched" 0 (Strategy.Cache.builds cache)

let test_handler_validation () =
  let cache = Strategy.Cache.create () in
  List.iter
    (fun thunk ->
      match thunk () with
      | (_ : Handler.t) -> Alcotest.fail "invalid handler accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Handler.create ~budget:0.0 ~cache ());
      (fun () -> Handler.create ~slow:(-1.0) ~cache ());
    ]

let test_handler_session_requests_need_daemon () =
  let cache = Strategy.Cache.create () in
  let h = Handler.create ~cache () in
  List.iter
    (fun req ->
      match Handler.handle h req with
      | Protocol.Failed _ -> ()
      | r ->
          Alcotest.failf "session request answered %s"
            (Protocol.render_response r))
    [
      Protocol.Session_open (platform ());
      Protocol.Session_query
        {
          Protocol.sid = 1;
          sq_tleft = 1.0;
          sq_kleft = None;
          sq_recovering = false;
        };
      Protocol.Session_close 1;
    ]

let test_handler_batch_shares_table () =
  let cache = Strategy.Cache.create () in
  let h = Handler.create ~cache () in
  let reqs =
    [
      Ok (Protocol.Query (query ()));
      Ok (Protocol.Query (query ~tleft:120.0 ()));
      Error "torn frame: checksum mismatch";
      Ok Protocol.Ping;
      Ok (Protocol.Query (query ~tleft:80.0 ~recovering:true ()));
    ]
  in
  let replies = Handler.handle_batch h reqs in
  Alcotest.(check int) "one reply per member" (List.length reqs)
    (List.length replies);
  (match replies with
  | [
   Protocol.Answer _;
   Protocol.Answer _;
   Protocol.Failed msg;
   Protocol.Pong;
   Protocol.Answer _;
  ] ->
      Alcotest.(check string) "decode error answered in place"
        "torn frame: checksum mismatch" msg
  | _ -> Alcotest.fail "batch replies out of shape or order");
  (* Five queries on one platform, one table build for the whole
     batch — the shared cache round trip batching exists for. *)
  Alcotest.(check int) "the whole batch paid one build" 1
    (Strategy.Cache.builds cache);
  (* And batching never changes an answer: each member equals its
     sequential handling. *)
  List.iteri
    (fun i (req, batched) ->
      match req with
      | Ok r ->
          if Handler.handle h r <> batched then
            Alcotest.failf "batch member %d diverged from sequential" i
      | Error _ -> ())
    (List.combine reqs replies)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick
            test_request_round_trip;
          Alcotest.test_case "response round-trip" `Quick
            test_response_round_trip;
          Alcotest.test_case "malformed rejected" `Quick
            test_malformed_requests;
          Alcotest.test_case "binary request round-trip" `Quick
            test_binary_request_round_trip;
          Alcotest.test_case "binary response round-trip" `Quick
            test_binary_response_round_trip;
          Alcotest.test_case "malformed binary rejected" `Quick
            test_malformed_binary_requests;
          binary_text_spellings_agree;
        ] );
      ( "wire",
        [
          Alcotest.test_case "round-trip" `Quick test_wire_round_trip;
          Alcotest.test_case "closed and torn" `Quick test_wire_closed_and_torn;
          Alcotest.test_case "max frame is per-connection" `Quick
            test_wire_max_frame_is_per_connection;
          Alcotest.test_case "hello negotiation" `Quick
            test_wire_hello_negotiation;
          Alcotest.test_case "legacy text client skips hello" `Quick
            test_wire_legacy_text_client_skips_hello;
          Alcotest.test_case "hello against legacy server" `Quick
            test_wire_hello_against_legacy_server;
          Alcotest.test_case "hello grant has a floor" `Quick
            test_wire_hello_grant_has_floor;
          Alcotest.test_case "stalled read is torn" `Quick
            test_wire_stalled_read_is_torn;
          Alcotest.test_case "hello clamps to hard max" `Quick
            test_wire_hello_clamps_to_hard_max;
        ] );
      ( "bqueue",
        [
          Alcotest.test_case "bound and fifo" `Quick test_bqueue_bound_and_fifo;
          Alcotest.test_case "capacity zero sheds" `Quick
            test_bqueue_capacity_zero_sheds_all;
          Alcotest.test_case "close drains" `Quick test_bqueue_close_drains;
          Alcotest.test_case "close wakes popper" `Quick
            test_bqueue_close_wakes_blocked_popper;
          Alcotest.test_case "pop batch" `Quick test_bqueue_pop_batch;
          Alcotest.test_case "close wakes batch popper" `Quick
            test_bqueue_close_wakes_blocked_batch_popper;
          Alcotest.test_case "try drain" `Quick test_bqueue_try_drain;
          Alcotest.test_case "evict" `Quick test_bqueue_evict;
        ] );
      ( "session",
        [
          Alcotest.test_case "open, resolve, close" `Quick
            test_session_open_resolve_close;
          Alcotest.test_case "lru eviction" `Quick test_session_lru_eviction;
        ] );
      ( "seglog",
        [
          Alcotest.test_case "rotates and recovers" `Quick
            test_seglog_rotates_and_recovers;
          Alcotest.test_case "no rotation = single file" `Quick
            test_seglog_without_rotation_is_single_file;
          Alcotest.test_case "mid-rotation duplicate dropped" `Quick
            test_seglog_drops_mid_rotation_duplicate;
          Alcotest.test_case "torn live tail truncated" `Quick
            test_seglog_truncates_torn_live_tail;
          Alcotest.test_case "validation" `Quick test_seglog_validation;
          Alcotest.test_case "compact merges and dedups" `Quick
            test_seglog_compact_merges_and_dedups;
          Alcotest.test_case "compact is idempotent" `Quick
            test_seglog_compact_idempotent;
          Alcotest.test_case "compact heals the crash window" `Quick
            test_seglog_compact_heals_crash_window;
        ] );
      ( "handler",
        [
          Alcotest.test_case "ping and stats" `Quick test_handler_ping_and_stats;
          Alcotest.test_case "answers match the tables" `Quick
            test_handler_answers_match_tables;
          Alcotest.test_case "timeout on injected clock" `Quick
            test_handler_timeout_on_injected_clock;
          Alcotest.test_case "chaos is a typed failure" `Quick
            test_handler_chaos_is_typed_failure;
          Alcotest.test_case "malformed payload" `Quick
            test_handler_malformed_payload;
          Alcotest.test_case "validation" `Quick test_handler_validation;
          Alcotest.test_case "session requests need the daemon" `Quick
            test_handler_session_requests_need_daemon;
          Alcotest.test_case "batch shares the table" `Quick
            test_handler_batch_shares_table;
        ] );
    ]
