(* Tests for the serve daemon's socket-free layers: the wire protocol
   text, the framing over a socketpair, the bounded admission queue, and
   the request handler (answers checked against the DP tables directly,
   timeout on an injected clock, chaos, kleft capping). The end-to-end
   daemon drills — crash recovery, shedding under load, SIGTERM drain —
   live in serve_drill.t. *)

module Protocol = Serve.Protocol
module Wire = Serve.Wire
module Bqueue = Serve.Bqueue
module Handler = Serve.Handler
module Strategy = Experiments.Strategy

let params = Fault.Params.paper ~lambda:0.001 ~c:20.0 ~d:0.0

let query ?(tleft = 500.0) ?kleft ?(recovering = false) () =
  {
    Protocol.params;
    horizon = 500.0;
    quantum = 1.0;
    tleft;
    kleft;
    recovering;
  }

(* protocol text *)

let test_request_round_trip () =
  let requests =
    [
      Protocol.Ping;
      Protocol.Stats;
      Protocol.Query (query ());
      Protocol.Query (query ~tleft:120.5 ~kleft:3 ~recovering:true ());
      (* a quantum %g cannot render exactly: %.17g must round-trip it *)
      Protocol.Query { (query ()) with Protocol.quantum = 1.0 /. 3.0 };
    ]
  in
  List.iter
    (fun req ->
      let spelled = Protocol.request_to_string req in
      match Protocol.request_of_string spelled with
      | Ok req' when req' = req -> ()
      | Ok _ -> Alcotest.failf "%S parsed back differently" spelled
      | Error e -> Alcotest.failf "%S rejected: %s" spelled e)
    requests

let test_response_round_trip () =
  let responses =
    [
      Protocol.Pong;
      Protocol.Overloaded;
      Protocol.Timeout;
      Protocol.Answer { Protocol.next = 245.0; k = 2; work = 395.25 };
      Protocol.Answer { Protocol.next = 0.0; k = 0; work = 0.0 };
      Protocol.Stats_reply
        {
          Strategy.Cache.s_builds = 3;
          s_hits = 6;
          s_evictions = 1;
          s_resident_tables = 2;
          s_resident_bytes = 393786;
        };
      Protocol.Failed "bad float \"nope\" for \"lambda\"";
    ]
  in
  List.iter
    (fun resp ->
      let spelled = Protocol.response_to_string resp in
      match Protocol.response_of_string spelled with
      | Ok resp' when resp' = resp -> ()
      | Ok _ -> Alcotest.failf "%S parsed back differently" spelled
      | Error e -> Alcotest.failf "%S rejected: %s" spelled e)
    responses

let test_malformed_requests () =
  let rejected payload =
    match Protocol.request_of_string payload with
    | Ok _ -> Alcotest.failf "%S accepted" payload
    | Error _ -> ()
  in
  rejected "";
  rejected "bogus";
  rejected "query lambda=0.001" (* missing fields *);
  rejected
    "query lambda=x c=20 r=20 d=0 horizon=500 quantum=1 tleft=500 kleft=- \
     recovering=0" (* bad float *);
  rejected
    "query lambda=0.001 c=20 r=20 d=0 horizon=500 quantum=1 tleft=500 \
     kleft=- recovering=0 c=21" (* duplicate field *);
  rejected
    "query lambda=-1 c=20 r=20 d=0 horizon=500 quantum=1 tleft=500 kleft=- \
     recovering=0" (* Params.make must reject, as an Error not a raise *)

(* wire framing over a socketpair *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
        [ a; b ])
    (fun () -> f a b)

let test_wire_round_trip () =
  with_socketpair (fun a b ->
      let payloads = [ "ping"; "stats"; String.make 512 'x'; "" ] in
      List.iter (fun p -> Wire.send a p) payloads;
      List.iter
        (fun p ->
          match Wire.recv b with
          | Ok got -> Alcotest.(check string) "payload" p got
          | Error e -> Alcotest.failf "recv failed: %s" (Wire.error_message e))
        payloads)

let test_wire_closed_and_torn () =
  with_socketpair (fun a b ->
      Unix.close a;
      (match Wire.recv b with
      | Error Wire.Closed -> ()
      | Error (Wire.Torn why) -> Alcotest.failf "EOF diagnosed as torn: %s" why
      | Ok p -> Alcotest.failf "read %S from a closed peer" p));
  with_socketpair (fun a b ->
      (* A corrupted checksum must be a torn frame, not a payload. *)
      let frame = Robust.Durable.Framed.frame "ping" in
      let bad = Bytes.of_string frame in
      let last_hex = Bytes.length bad - 2 in
      Bytes.set bad last_hex
        (if Bytes.get bad last_hex = '0' then '1' else '0');
      let n = Unix.write a bad 0 (Bytes.length bad) in
      Alcotest.(check int) "wrote the whole frame" (Bytes.length bad) n;
      match Wire.recv b with
      | Error (Wire.Torn _) -> ()
      | Error Wire.Closed -> Alcotest.fail "corruption diagnosed as EOF"
      | Ok p -> Alcotest.failf "accepted corrupted frame as %S" p)

(* bounded queue *)

let test_bqueue_bound_and_fifo () =
  let q = Bqueue.create ~capacity:2 in
  Alcotest.(check bool) "push 1" true (Bqueue.try_push q 1);
  Alcotest.(check bool) "push 2" true (Bqueue.try_push q 2);
  Alcotest.(check bool) "full queue refuses" false (Bqueue.try_push q 3);
  Alcotest.(check int) "length" 2 (Bqueue.length q);
  Alcotest.(check (option int)) "fifo" (Some 1) (Bqueue.pop q);
  Alcotest.(check bool) "slot freed" true (Bqueue.try_push q 3);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Bqueue.pop q);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Bqueue.pop q)

let test_bqueue_capacity_zero_sheds_all () =
  let q = Bqueue.create ~capacity:0 in
  Alcotest.(check bool) "sheds everything" false (Bqueue.try_push q 1);
  (match Bqueue.create ~capacity:(-1) with
  | (_ : int Bqueue.t) -> Alcotest.fail "negative capacity accepted"
  | exception Invalid_argument _ -> ())

let test_bqueue_close_drains () =
  let q = Bqueue.create ~capacity:4 in
  Alcotest.(check bool) "push before close" true (Bqueue.try_push q 1);
  Bqueue.close q;
  Bqueue.close q (* idempotent *);
  Alcotest.(check bool) "push after close refused" false (Bqueue.try_push q 2);
  Alcotest.(check (option int)) "drains queued item" (Some 1) (Bqueue.pop q);
  Alcotest.(check (option int)) "then signals done" None (Bqueue.pop q)

let test_bqueue_close_wakes_blocked_popper () =
  let q = Bqueue.create ~capacity:1 in
  let got = ref (Some 0) in
  let popper = Thread.create (fun () -> got := Bqueue.pop q) () in
  Thread.delay 0.05;
  Bqueue.close q;
  Thread.join popper;
  Alcotest.(check (option int)) "blocked pop returns None on close" None !got

(* segmented journal *)

module Seglog = Serve.Seglog

let with_seglog_temp f =
  let path = Filename.temp_file "fixedlen_seglog" ".log" in
  let rm p = try Sys.remove p with Sys_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      rm path;
      List.iter
        (fun suffix -> rm (path ^ suffix))
        [ ".tmp"; ".quarantine"; ".quarantine.reason" ];
      let rec rm_segments n =
        let seg = Printf.sprintf "%s.%d" path n in
        if Sys.file_exists seg then begin
          rm seg;
          rm_segments (n + 1)
        end
      in
      rm_segments 1)
    (fun () -> f path)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let open_log ?rotate_bytes path =
  Seglog.open_ ?rotate_bytes ~point:"seglog-test" ~path ~header:"# seglog v1" ()

let test_seglog_rotates_and_recovers () =
  with_seglog_temp (fun path ->
      let payloads = List.init 6 (Printf.sprintf "request %d") in
      let log, r0 = open_log ~rotate_bytes:30 path in
      Alcotest.(check (list string)) "fresh store is empty" [] r0.Seglog.payloads;
      List.iter (Seglog.append log) payloads;
      (* Each ~30-byte frame crosses the bound on its own, so every
         append sealed a one-record segment. *)
      Alcotest.(check int) "sealed per append" 6 (Seglog.sealed log);
      Seglog.close log;
      let log, r = open_log ~rotate_bytes:30 path in
      Seglog.close log;
      Alcotest.(check int) "segments found" 6 r.Seglog.sealed;
      Alcotest.(check (list string)) "oldest-first across segments"
        payloads r.Seglog.payloads;
      Alcotest.(check (list string)) "clean recovery warns nothing" []
        r.Seglog.warnings)

let test_seglog_without_rotation_is_single_file () =
  with_seglog_temp (fun path ->
      let log, _ = open_log path in
      List.iter (Seglog.append log) [ "a"; "b"; "c" ];
      Alcotest.(check int) "never seals" 0 (Seglog.sealed log);
      Seglog.close log;
      Alcotest.(check bool) "no segment file" false
        (Sys.file_exists (path ^ ".1"));
      let log, r = open_log path in
      Seglog.close log;
      Alcotest.(check (list string)) "recovers from the live file"
        [ "a"; "b"; "c" ] r.Seglog.payloads)

let test_seglog_drops_mid_rotation_duplicate () =
  with_seglog_temp (fun path ->
      let log, _ = open_log path in
      List.iter (Seglog.append log) [ "a"; "b" ];
      Seglog.close log;
      (* Simulate a crash after the seal was published but before the
         live file was reset: the newest segment is byte-identical to
         the live file. *)
      Robust.Durable.write_atomic ~path:(path ^ ".1") (read_file path);
      let log, r = open_log path in
      Alcotest.(check (list string)) "no record recovered twice"
        [ "a"; "b" ] r.Seglog.payloads;
      Alcotest.(check int) "the seal counts" 1 r.Seglog.sealed;
      (match r.Seglog.warnings with
      | [ w ] ->
          Alcotest.(check bool) "warning names the rotation crash" true
            (String.length w >= 9 && String.sub w 0 9 = "live file")
      | ws ->
          Alcotest.failf "expected one duplicate warning, got %d"
            (List.length ws));
      (* The journal keeps working: the next append lands in the fresh
         live file, and numbering continues after the seal. *)
      Seglog.append log "c";
      Seglog.close log;
      let log, r = open_log path in
      Seglog.close log;
      Alcotest.(check (list string)) "appends continue after the drop"
        [ "a"; "b"; "c" ] r.Seglog.payloads)

let test_seglog_truncates_torn_live_tail () =
  with_seglog_temp (fun path ->
      let log, _ = open_log path in
      List.iter (Seglog.append log) [ "a"; "b" ];
      Seglog.close log;
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "13 torn rec";
      close_out oc;
      let log, r = open_log path in
      Seglog.close log;
      Alcotest.(check (list string)) "intact prefix kept" [ "a"; "b" ]
        r.Seglog.payloads;
      Alcotest.(check int) "one damage warning" 1
        (List.length r.Seglog.warnings))

let test_seglog_validation () =
  with_seglog_temp (fun path ->
      match open_log ~rotate_bytes:0 path with
      | (_ : Seglog.t * Seglog.recovery) ->
          Alcotest.fail "rotate_bytes = 0 accepted"
      | exception Invalid_argument _ -> ())

(* compaction: merge sealed segments, drop byte-identical duplicates,
   keep the sequence dense and the records recoverable *)

let compact_log path =
  Seglog.compact ~point:"seglog-test" ~path ~header:"# seglog v1" ()

let test_seglog_compact_merges_and_dedups () =
  with_seglog_temp (fun path ->
      let log, _ = open_log ~rotate_bytes:1 path in
      List.iter (Seglog.append log)
        [ "alpha"; "beta"; "alpha"; "gamma"; "beta"; "delta" ];
      Alcotest.(check int) "six sealed segments" 6 (Seglog.sealed log);
      Seglog.close log;
      (match compact_log path with
      | None -> Alcotest.fail "compaction skipped six segments"
      | Some c ->
          Alcotest.(check int) "segments merged" 6 c.Seglog.segments_merged;
          Alcotest.(check int) "records kept" 4 c.Seglog.records_kept;
          Alcotest.(check int) "duplicates dropped" 2 c.Seglog.duplicates_dropped;
          Alcotest.(check (list string)) "clean merge warns nothing" []
            c.Seglog.compact_warnings);
      Alcotest.(check bool) "merged segment published" true
        (Sys.file_exists (path ^ ".1"));
      Alcotest.(check bool) "old segments unlinked" false
        (Sys.file_exists (path ^ ".2"));
      let log, r = open_log ~rotate_bytes:1 path in
      Alcotest.(check (list string)) "first occurrence wins, order kept"
        [ "alpha"; "beta"; "gamma"; "delta" ] r.Seglog.payloads;
      Alcotest.(check int) "one segment after the merge" 1 r.Seglog.sealed;
      Alcotest.(check (list string)) "recovery warns nothing" [] r.Seglog.warnings;
      (* The journal keeps working: numbering stays dense after .1. *)
      Seglog.append log "epsilon";
      Seglog.close log;
      let log, r = open_log path in
      Seglog.close log;
      Alcotest.(check (list string)) "appends continue after compaction"
        [ "alpha"; "beta"; "gamma"; "delta"; "epsilon" ] r.Seglog.payloads)

let test_seglog_compact_idempotent () =
  with_seglog_temp (fun path ->
      (* No journal at all, then a single-segment journal: both are
         already compact. *)
      Alcotest.(check bool) "nothing to compact" true (compact_log path = None);
      let log, _ = open_log ~rotate_bytes:1 path in
      List.iter (Seglog.append log) [ "a"; "b" ];
      Seglog.close log;
      (match compact_log path with
      | Some c ->
          Alcotest.(check int) "unique records all kept" 2 c.Seglog.records_kept;
          Alcotest.(check int) "nothing dropped" 0 c.Seglog.duplicates_dropped
      | None -> Alcotest.fail "two segments not compacted");
      Alcotest.(check bool) "second run is a no-op" true
        (compact_log path = None))

let test_seglog_compact_heals_crash_window () =
  with_seglog_temp (fun path ->
      let log, _ = open_log ~rotate_bytes:1 path in
      List.iter (Seglog.append log) [ "a"; "b"; "c" ];
      Seglog.close log;
      (match compact_log path with
      | Some c -> Alcotest.(check int) "merged" 3 c.Seglog.segments_merged
      | None -> Alcotest.fail "three segments not compacted");
      (* Simulate dying between publish and the last unlink: a stale
         segment whose records all live in the merged one. *)
      Robust.Durable.write_atomic ~path:(path ^ ".2") (read_file (path ^ ".1"));
      (match compact_log path with
      | Some c ->
          Alcotest.(check int) "re-merged" 2 c.Seglog.segments_merged;
          Alcotest.(check int) "kept" 3 c.Seglog.records_kept;
          Alcotest.(check int) "stale copies dropped" 3
            c.Seglog.duplicates_dropped
      | None -> Alcotest.fail "crash leftover not healed");
      Alcotest.(check bool) "leftover unlinked" false
        (Sys.file_exists (path ^ ".2"));
      let log, r = open_log path in
      Seglog.close log;
      Alcotest.(check (list string)) "records intact" [ "a"; "b"; "c" ]
        r.Seglog.payloads)

(* handler *)

let test_handler_ping_and_stats () =
  let cache = Strategy.Cache.create () in
  let h = Handler.create ~cache () in
  (match Handler.handle h Protocol.Ping with
  | Protocol.Pong -> ()
  | _ -> Alcotest.fail "ping did not pong");
  (match Handler.handle h Protocol.Stats with
  | Protocol.Stats_reply st ->
      Alcotest.(check int) "cold cache: no builds" 0
        st.Strategy.Cache.s_builds
  | _ -> Alcotest.fail "stats did not reply with stats");
  (match Handler.handle h (Protocol.Query (query ())) with
  | Protocol.Answer _ -> ()
  | r -> Alcotest.failf "query failed: %s" (Protocol.render_response r));
  match Handler.handle h Protocol.Stats with
  | Protocol.Stats_reply st ->
      Alcotest.(check int) "query built one table" 1
        st.Strategy.Cache.s_builds
  | _ -> Alcotest.fail "stats did not reply with stats"

(* The handler's answers restated from the DP table it queried — the
   same recursion Core.Dp.policy replans with. *)
let check_answer_against_table h q =
  let dp =
    Core.Dp.build ~params:q.Protocol.params ~quantum:q.Protocol.quantum
      ~horizon:q.Protocol.horizon ()
  in
  let u = Core.Dp.quantum dp in
  let n =
    min
      (int_of_float (Float.floor ((q.Protocol.tleft /. u) +. 1e-9)))
      (Core.Dp.horizon_quanta dp)
  in
  let expect_k, delta =
    if not q.Protocol.recovering then (Core.Dp.best_k dp ~n ~delta:false, false)
    else
      let cap =
        match q.Protocol.kleft with
        | None -> Core.Dp.kmax dp
        | Some k -> min (max 1 k) (Core.Dp.kmax dp)
      in
      (Core.Dp.arg_best_m dp ~n ~k:cap, true)
  in
  match Handler.handle h (Protocol.Query q) with
  | Protocol.Answer a ->
      if expect_k = 0 || n = 0 then begin
        Alcotest.(check int) "no plan: k" 0 a.Protocol.k;
        Alcotest.(check (float 0.0)) "no plan: next" 0.0 a.Protocol.next
      end
      else begin
        Alcotest.(check int) "k" expect_k a.Protocol.k;
        Alcotest.(check (float 0.0))
          "next"
          (float_of_int (Core.Dp.first_checkpoint_q dp ~n ~k:expect_k ~delta)
          *. u)
          a.Protocol.next;
        Alcotest.(check (float 0.0))
          "work"
          (Core.Dp.expected_work_q dp ~n ~k:expect_k ~delta)
          a.Protocol.work
      end
  | r -> Alcotest.failf "query failed: %s" (Protocol.render_response r)

let test_handler_answers_match_tables () =
  let cache = Strategy.Cache.create () in
  let h = Handler.create ~cache () in
  check_answer_against_table h (query ()) (* fresh plan, full horizon *);
  check_answer_against_table h (query ~tleft:120.0 ()) (* fresh, mid-run *);
  check_answer_against_table h
    (query ~tleft:120.0 ~recovering:true ()) (* re-plan, unconstrained *);
  check_answer_against_table h
    (query ~tleft:120.0 ~kleft:2 ~recovering:true ()) (* re-plan, capped *);
  check_answer_against_table h
    (query ~tleft:120.0 ~kleft:0 ~recovering:true ())
    (* kleft=0 is clamped to 1: a recovering execution may always place
       one more checkpoint if the table says it pays *);
  check_answer_against_table h (query ~tleft:0.0 ()) (* nothing left *);
  (* One table serves every tleft at this (params, horizon, quantum). *)
  Alcotest.(check int) "one build across all queries" 1
    (Strategy.Cache.builds cache)

let test_handler_timeout_on_injected_clock () =
  let time = ref 0.0 in
  let cache = Strategy.Cache.create () in
  let h =
    Handler.create ~budget:0.05
      ~now:(fun () -> !time)
      ~slow:0.1
      ~sleep:(fun d -> time := !time +. d)
      ~cache ()
  in
  (match Handler.handle h (Protocol.Query (query ())) with
  | Protocol.Timeout -> ()
  | r -> Alcotest.failf "expected timeout, got %s" (Protocol.render_response r));
  (* The budget bounds the request, not the handler: a fast handler on
     the same cache still answers. *)
  let fast = Handler.create ~budget:10.0 ~cache () in
  match Handler.handle fast (Protocol.Query (query ())) with
  | Protocol.Answer _ -> ()
  | r -> Alcotest.failf "retry failed: %s" (Protocol.render_response r)

let test_handler_chaos_is_typed_failure () =
  let cache = Strategy.Cache.create () in
  let chaos = Robust.Chaos.create ~failure_rate:1.0 ~seed:7L () in
  let h = Handler.create ~chaos ~cache () in
  match Handler.handle h (Protocol.Query (query ())) with
  | Protocol.Failed msg ->
      Alcotest.(check bool) "names the injection" true
        (String.length msg >= 9 && String.sub msg 0 9 = "injected:")
  | r ->
      Alcotest.failf "chaos leaked through as %s" (Protocol.render_response r)

let test_handler_malformed_payload () =
  let cache = Strategy.Cache.create () in
  let h = Handler.create ~cache () in
  (match Handler.handle_payload h "query lambda=nope" with
  | Protocol.Failed _ -> ()
  | r -> Alcotest.failf "malformed payload answered %s"
           (Protocol.render_response r));
  Alcotest.(check int) "tables untouched" 0 (Strategy.Cache.builds cache)

let test_handler_validation () =
  let cache = Strategy.Cache.create () in
  List.iter
    (fun thunk ->
      match thunk () with
      | (_ : Handler.t) -> Alcotest.fail "invalid handler accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Handler.create ~budget:0.0 ~cache ());
      (fun () -> Handler.create ~slow:(-1.0) ~cache ());
    ]

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick
            test_request_round_trip;
          Alcotest.test_case "response round-trip" `Quick
            test_response_round_trip;
          Alcotest.test_case "malformed rejected" `Quick
            test_malformed_requests;
        ] );
      ( "wire",
        [
          Alcotest.test_case "round-trip" `Quick test_wire_round_trip;
          Alcotest.test_case "closed and torn" `Quick test_wire_closed_and_torn;
        ] );
      ( "bqueue",
        [
          Alcotest.test_case "bound and fifo" `Quick test_bqueue_bound_and_fifo;
          Alcotest.test_case "capacity zero sheds" `Quick
            test_bqueue_capacity_zero_sheds_all;
          Alcotest.test_case "close drains" `Quick test_bqueue_close_drains;
          Alcotest.test_case "close wakes popper" `Quick
            test_bqueue_close_wakes_blocked_popper;
        ] );
      ( "seglog",
        [
          Alcotest.test_case "rotates and recovers" `Quick
            test_seglog_rotates_and_recovers;
          Alcotest.test_case "no rotation = single file" `Quick
            test_seglog_without_rotation_is_single_file;
          Alcotest.test_case "mid-rotation duplicate dropped" `Quick
            test_seglog_drops_mid_rotation_duplicate;
          Alcotest.test_case "torn live tail truncated" `Quick
            test_seglog_truncates_torn_live_tail;
          Alcotest.test_case "validation" `Quick test_seglog_validation;
          Alcotest.test_case "compact merges and dedups" `Quick
            test_seglog_compact_merges_and_dedups;
          Alcotest.test_case "compact is idempotent" `Quick
            test_seglog_compact_idempotent;
          Alcotest.test_case "compact heals the crash window" `Quick
            test_seglog_compact_heals_crash_window;
        ] );
      ( "handler",
        [
          Alcotest.test_case "ping and stats" `Quick test_handler_ping_and_stats;
          Alcotest.test_case "answers match the tables" `Quick
            test_handler_answers_match_tables;
          Alcotest.test_case "timeout on injected clock" `Quick
            test_handler_timeout_on_injected_clock;
          Alcotest.test_case "chaos is a typed failure" `Quick
            test_handler_chaos_is_typed_failure;
          Alcotest.test_case "malformed payload" `Quick
            test_handler_malformed_payload;
          Alcotest.test_case "validation" `Quick test_handler_validation;
        ] );
    ]
