Kill drill: SIGKILL the campaign mid-journal-write, then prove the
resumed run reproduces the uninterrupted baseline bit for bit.

The crash point is deterministic: --chaos-crash-at journal:5 plans a
self-SIGKILL during the 6th append at the "journal" write point.
Appends are mutex-serialised and fsync'd one by one, so the file holds
exactly 5 complete records plus a torn prefix of the 6th — regardless
of how the domains scheduled the grid points that produced them.

Baseline: an uninterrupted campaign at drill scale.

  $ ../../bin/main.exe campaign --figures fig3 --traces 30 --t-step 300 \
  >   --t-max 900 --out base --quiet > /dev/null

The same campaign, journaled, dies mid-write with exit 137 (= SIGKILL):

  $ ../../bin/main.exe campaign --figures fig3 --traces 30 --t-step 300 \
  >   --t-max 900 --journal j --out out --quiet \
  >   --chaos-crash-at journal:5 > /dev/null 2>&1
  [137]

Recovery on resume: the torn 6th record is truncated, the 5 fsync'd
records are kept, and the rest of the grid is recomputed. The warning
names the exact damage.

  $ ../../bin/main.exe campaign --figures fig3 --traces 30 --t-step 300 \
  >   --t-max 900 --resume j --out out > /dev/null 2> resume.log
  $ grep -o "truncated (5 good records kept)" resume.log
  truncated (5 good records kept)

The resumed curves are bit-identical to the uninterrupted baseline:
journaled floats round-trip through %.17g, so the 5 crash-surviving
points and the 19 recomputed ones are indistinguishable from a run that
never died.

  $ cmp base/fig3.csv out/fig3.csv

A second resume finds a clean journal (no recovery warnings) and serves
every point from disk.

  $ ../../bin/main.exe campaign --figures fig3 --traces 30 --t-step 300 \
  >   --t-max 900 --resume j --out out2 > /dev/null 2> resume2.log
  $ grep -c "truncated" resume2.log
  0
  [1]
  $ cmp base/fig3.csv out2/fig3.csv

Sharded kill drill: the same campaign split across two forked shard
workers, each appending to a private ledger under its own write point
(shard0, shard1). --chaos-crash-at shard0:2 SIGKILLs worker 0 alone,
during its 3rd ledger append; worker 1 finishes its half untouched.
The leader survives, merges every ledger — the dead worker's completed
points included — and only then fails, asking for a resume.

  $ ../../bin/main.exe campaign --figures fig3 --traces 30 --t-step 300 \
  >   --t-max 900 --journal js --shards 2 --out outs --quiet \
  >   --chaos-crash-at shard0:2 > /dev/null 2> shard.log
  [1]
  $ grep -o "1 of 2 shard worker(s) failed" shard.log
  1 of 2 shard worker(s) failed

After the merge no ledger files remain — the crash-surviving points all
live in the shared journal (shard 1's 8 plus the 2 shard 0 fsync'd
before dying, under the 16-point drill grid's half/half split).

  $ ls js
  fig3.journal

Resume with the same sharding recomputes only the missing points, and
the assembled CSV is byte-identical to the uninterrupted unsharded
baseline: every point is computed by exactly one worker from the same
per-(c, strategy) seeds, and journaled floats round-trip via %.17g.

  $ ../../bin/main.exe campaign --figures fig3 --traces 30 --t-step 300 \
  >   --t-max 900 --resume js --shards 2 --out outs --quiet > /dev/null
  $ cmp base/fig3.csv outs/fig3.csv

A healthy sharded run needs no resume and is byte-identical too:

  $ ../../bin/main.exe campaign --figures fig3 --traces 30 --t-step 300 \
  >   --t-max 900 --journal jh --shards 2 --out outh --quiet > /dev/null
  $ cmp base/fig3.csv outh/fig3.csv

Sharding without a journal is refused — the ledgers and their merge are
the mechanism, not an optimisation:

  $ ../../bin/main.exe campaign --figures fig3 --shards 2 --quiet
  fixedlen: Campaign: sharding requires --journal or --resume
  [1]

Malformed crash-point specs are usage errors:

  $ ../../bin/main.exe campaign --figures fig3 --chaos-crash-at bogus --quiet
  fixedlen: --chaos-crash-at expects POINT:N (e.g. journal:5), got "bogus"
  [2]
