Kill drill: SIGKILL the campaign mid-journal-write, then prove the
resumed run reproduces the uninterrupted baseline bit for bit.

The crash point is deterministic: --chaos-crash-at journal:5 plans a
self-SIGKILL during the 6th append at the "journal" write point.
Appends are mutex-serialised and fsync'd one by one, so the file holds
exactly 5 complete records plus a torn prefix of the 6th — regardless
of how the domains scheduled the grid points that produced them.

Baseline: an uninterrupted campaign at drill scale.

  $ ../../bin/main.exe campaign --figures fig3 --traces 30 --t-step 300 \
  >   --t-max 900 --out base --quiet > /dev/null

The same campaign, journaled, dies mid-write with exit 137 (= SIGKILL):

  $ ../../bin/main.exe campaign --figures fig3 --traces 30 --t-step 300 \
  >   --t-max 900 --journal j --out out --quiet \
  >   --chaos-crash-at journal:5 > /dev/null 2>&1
  [137]

Recovery on resume: the torn 6th record is truncated, the 5 fsync'd
records are kept, and the rest of the grid is recomputed. The warning
names the exact damage.

  $ ../../bin/main.exe campaign --figures fig3 --traces 30 --t-step 300 \
  >   --t-max 900 --resume j --out out > /dev/null 2> resume.log
  $ grep -o "truncated (5 good records kept)" resume.log
  truncated (5 good records kept)

The resumed curves are bit-identical to the uninterrupted baseline:
journaled floats round-trip through %.17g, so the 5 crash-surviving
points and the 19 recomputed ones are indistinguishable from a run that
never died.

  $ cmp base/fig3.csv out/fig3.csv

A second resume finds a clean journal (no recovery warnings) and serves
every point from disk.

  $ ../../bin/main.exe campaign --figures fig3 --traces 30 --t-step 300 \
  >   --t-max 900 --resume j --out out2 > /dev/null 2> resume2.log
  $ grep -c "truncated" resume2.log
  0
  [1]
  $ cmp base/fig3.csv out2/fig3.csv

Malformed crash-point specs are usage errors:

  $ ../../bin/main.exe campaign --figures fig3 --chaos-crash-at bogus --quiet
  fixedlen: --chaos-crash-at expects POINT:N (e.g. journal:5), got "bogus"
  [2]
