(* Tests for Parallel.Pool. *)

module Pool = Parallel.Pool

let test_map_matches_sequential () =
  Pool.with_pool (fun pool ->
      let xs = Array.init 1000 (fun i -> i) in
      let f x = (x * x) + 1 in
      Alcotest.(check (array int))
        "parallel = sequential" (Array.map f xs)
        (Pool.map pool ~f xs))

let test_map_preserves_order_under_skew () =
  (* Uneven task durations must not reorder results. *)
  Pool.with_pool (fun pool ->
      let xs = Array.init 64 (fun i -> i) in
      let f x =
        if x mod 7 = 0 then begin
          (* burn some time *)
          let acc = ref 0.0 in
          for i = 1 to 200_000 do
            acc := !acc +. sqrt (float_of_int i)
          done;
          ignore !acc
        end;
        x * 2
      in
      Alcotest.(check (array int))
        "ordered" (Array.map f xs) (Pool.map pool ~f xs))

let test_mapi () =
  Pool.with_pool (fun pool ->
      let xs = [| "a"; "b"; "c" |] in
      Alcotest.(check (array string))
        "mapi indexes" [| "0a"; "1b"; "2c" |]
        (Pool.mapi pool ~f:(fun i s -> string_of_int i ^ s) xs))

let test_empty_map () =
  Pool.with_pool (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map pool ~f:(fun x -> x) [||]))

let test_single_domain_pool () =
  let pool = Pool.create ~domains:1 () in
  let xs = Array.init 100 (fun i -> i) in
  Alcotest.(check (array int))
    "sequential degradation" (Array.map succ xs)
    (Pool.map pool ~f:succ xs);
  Pool.shutdown pool

let test_parallel_for_covers_range () =
  Pool.with_pool (fun pool ->
      let hits = Array.make 200 0 in
      Pool.parallel_for pool ~lo:50 ~hi:150 ~f:(fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri
        (fun i h ->
          let expected = if i >= 50 && i < 150 then 1 else 0 in
          if h <> expected then Alcotest.failf "index %d hit %d times" i h)
        hits)

let test_parallel_for_empty_range () =
  Pool.with_pool (fun pool ->
      let hit = ref false in
      Pool.parallel_for pool ~lo:5 ~hi:5 ~f:(fun _ -> hit := true);
      Alcotest.(check bool) "no calls" false !hit)

let exception_payload = Failure "task 13 exploded"

let test_exception_propagates () =
  Pool.with_pool (fun pool ->
      match
        Pool.map pool
          ~f:(fun x -> if x = 13 then raise exception_payload else x)
          (Array.init 64 (fun i -> i))
      with
      | _ -> Alcotest.fail "exception swallowed"
      | exception Failure msg ->
          Alcotest.(check string) "original exception" "task 13 exploded" msg)

let test_pool_usable_after_exception () =
  Pool.with_pool (fun pool ->
      (try
         ignore
           (Pool.map pool ~f:(fun _ -> failwith "boom") (Array.init 8 (fun i -> i)))
       with Failure _ -> ());
      Alcotest.(check (array int)) "works again" [| 2; 4 |]
        (Pool.map pool ~f:(fun x -> x * 2) [| 1; 2 |]))

let test_shutdown_blocks_use () =
  let pool = Pool.create () in
  Pool.shutdown pool;
  (match Pool.map pool ~f:succ [| 1 |] with
  | _ -> Alcotest.fail "used after shutdown"
  | exception Invalid_argument _ -> ());
  (* idempotent shutdown *)
  Pool.shutdown pool

let test_create_validation () =
  (match Pool.create ~domains:0 () with
  | _ -> Alcotest.fail "domains 0 accepted"
  | exception Invalid_argument _ -> ())

let test_try_mapi_isolates_failures () =
  Pool.with_pool (fun pool ->
      let xs = Array.init 64 (fun i -> i) in
      let outcomes =
        Pool.try_mapi pool
          ~f:(fun i x ->
            if i = 13 then raise exception_payload else x * 2)
          xs
      in
      Alcotest.(check int) "one outcome per task" 64 (Array.length outcomes);
      Array.iteri
        (fun i outcome ->
          match (i, outcome) with
          | 13, Error (Failure msg) ->
              Alcotest.(check string) "original exception" "task 13 exploded" msg
          | 13, _ -> Alcotest.fail "poisoned task did not report its failure"
          | i, Ok v -> Alcotest.(check int) (Printf.sprintf "task %d" i) (i * 2) v
          | i, Error _ -> Alcotest.failf "healthy task %d failed" i)
        outcomes)

let test_try_mapi_all_tasks_run_despite_failures () =
  (* Unlike [map], a failure must not stop the remaining tasks from being
     scheduled: every index gets executed exactly once. *)
  Pool.with_pool (fun pool ->
      let ran = Array.init 256 (fun _ -> Atomic.make 0) in
      let outcomes =
        Pool.try_mapi pool
          ~f:(fun i _ ->
            Atomic.incr ran.(i);
            if i mod 3 = 0 then failwith "injected" else i)
          (Array.init 256 (fun i -> i))
      in
      Array.iteri
        (fun i counter ->
          Alcotest.(check int) (Printf.sprintf "task %d ran once" i) 1
            (Atomic.get counter))
        ran;
      let failed =
        Array.fold_left
          (fun acc -> function Error _ -> acc + 1 | Ok _ -> acc)
          0 outcomes
      in
      Alcotest.(check int) "every third task failed" 86 failed)

let test_try_mapi_retry_absorbs_flaky_tasks () =
  (* The composition the campaign runner uses: transient failures inside
     the task are retried, so the result array is all Ok. *)
  Pool.with_pool (fun pool ->
      let retry = Robust.Retry.make ~attempts:3 ~base_delay:0.0 () in
      let attempts_seen = Array.init 32 (fun _ -> Atomic.make 0) in
      let outcomes =
        Pool.try_mapi pool
          ~f:(fun i x ->
            let computed =
              Robust.Retry.run retry ~key:i (fun ~attempt ->
                  Atomic.incr attempts_seen.(i);
                  (* Every task fails its first attempt, succeeds after. *)
                  if attempt = 0 then failwith "flaky";
                  x * 10)
            in
            match computed with Ok v -> v | Error e -> raise e)
          (Array.init 32 (fun i -> i))
      in
      Array.iteri
        (fun i outcome ->
          match outcome with
          | Ok v -> Alcotest.(check int) (Printf.sprintf "task %d" i) (i * 10) v
          | Error _ -> Alcotest.failf "retry did not absorb flaky task %d" i)
        outcomes;
      Array.iteri
        (fun i counter ->
          Alcotest.(check int)
            (Printf.sprintf "task %d took two attempts" i)
            2 (Atomic.get counter))
        attempts_seen)

let test_chaos_retry_composition_bit_identical () =
  (* Full resilience stack on the domain pool: deterministic chaos
     injecting both delays and failures, absorbed by retries inside
     try_mapi — the result array must equal the fault-free run bit for
     bit, delays and scheduling shifts notwithstanding. *)
  Pool.with_pool (fun pool ->
      let xs = Array.init 48 (fun i -> float_of_int i) in
      let eval x = sqrt ((x +. 1.0) /. 3.0) in
      let fault_free = Pool.try_mapi pool ~f:(fun _ x -> eval x) xs in
      let chaos =
        Robust.Chaos.create ~failure_rate:0.4 ~delay_rate:0.3 ~delay:0.001
          ~seed:21L ()
      in
      let retry = Robust.Retry.make ~attempts:8 ~base_delay:0.0 () in
      let chaotic =
        Pool.try_mapi pool
          ~f:(fun i x ->
            match
              Robust.Retry.run retry ~key:i (fun ~attempt ->
                  Robust.Chaos.inject chaos ~key:i ~attempt;
                  eval x)
            with
            | Ok v -> v
            | Error e -> raise e)
          xs
      in
      Alcotest.(check bool) "chaos actually struck" true
        (Robust.Chaos.injected_failures chaos > 0);
      Array.iteri
        (fun i outcome ->
          match (fault_free.(i), outcome) with
          | Ok a, Ok b ->
              Alcotest.(check bool)
                (Printf.sprintf "task %d bit-identical" i)
                true
                (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
          | _ -> Alcotest.failf "task %d did not survive chaos" i)
        chaotic)

let test_try_map_empty_and_clean () =
  Pool.with_pool (fun pool ->
      Alcotest.(check int) "empty" 0
        (Array.length (Pool.try_map pool ~f:(fun x -> x) [||]));
      let outcomes = Pool.try_map pool ~f:succ [| 1; 2; 3 |] in
      Array.iteri
        (fun i outcome ->
          match outcome with
          | Ok v -> Alcotest.(check int) "value" (i + 2) v
          | Error _ -> Alcotest.fail "clean task failed")
        outcomes)

let test_heavy_numeric_speed_consistency () =
  (* Not a benchmark: only checks that a realistic workload (many DP
     mini-builds) computes identical results through the pool. *)
  let params = Fault.Params.paper ~lambda:0.01 ~c:5.0 ~d:0.0 in
  let horizons = Array.init 12 (fun i -> 40.0 +. (10.0 *. float_of_int i)) in
  let compute h =
    let dp = Core.Dp.build ~params ~quantum:1.0 ~horizon:h () in
    Core.Dp.expected_work dp ~tleft:h
  in
  let sequential = Array.map compute horizons in
  Pool.with_pool (fun pool ->
      let parallel = Pool.map pool ~f:compute horizons in
      Array.iteri
        (fun i v ->
          Alcotest.(check (float 1e-12))
            (Printf.sprintf "horizon %g" horizons.(i))
            sequential.(i) v)
        parallel)

let qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"map = Array.map for random arrays" ~count:50
         QCheck.(array_of_size (QCheck.Gen.int_range 0 500) small_int)
         (fun xs ->
           Pool.with_pool (fun pool ->
               Pool.map pool ~f:(fun x -> (3 * x) - 7) xs
               = Array.map (fun x -> (3 * x) - 7) xs)));
  ]

let () =
  Alcotest.run "parallel"
    [
      ( "map",
        [
          Alcotest.test_case "matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "order under skew" `Quick
            test_map_preserves_order_under_skew;
          Alcotest.test_case "mapi" `Quick test_mapi;
          Alcotest.test_case "empty input" `Quick test_empty_map;
          Alcotest.test_case "single domain" `Quick test_single_domain_pool;
        ] );
      ( "parallel_for",
        [
          Alcotest.test_case "covers range" `Quick test_parallel_for_covers_range;
          Alcotest.test_case "empty range" `Quick test_parallel_for_empty_range;
        ] );
      ( "failure handling",
        [
          Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
          Alcotest.test_case "usable after exception" `Quick
            test_pool_usable_after_exception;
          Alcotest.test_case "shutdown semantics" `Quick test_shutdown_blocks_use;
          Alcotest.test_case "create validation" `Quick test_create_validation;
        ] );
      ( "fault isolation",
        [
          Alcotest.test_case "try_mapi isolates failures" `Quick
            test_try_mapi_isolates_failures;
          Alcotest.test_case "all tasks run despite failures" `Quick
            test_try_mapi_all_tasks_run_despite_failures;
          Alcotest.test_case "retry absorbs flaky tasks" `Quick
            test_try_mapi_retry_absorbs_flaky_tasks;
          Alcotest.test_case "chaos + retry composition bit-identical" `Quick
            test_chaos_retry_composition_bit_identical;
          Alcotest.test_case "try_map empty and clean" `Quick
            test_try_map_empty_and_clean;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "DP builds in parallel" `Quick
            test_heavy_numeric_speed_consistency;
        ] );
      ("properties", qcheck_tests);
    ]
