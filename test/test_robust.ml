(* Tests for Robust.{Retry, Chaos, Guard, Journal} and the resilience
   behaviour of Experiments.Runner (journal resume, chaos + retry). *)

module Retry = Robust.Retry
module Chaos = Robust.Chaos
module Guard = Robust.Guard
module Journal = Robust.Journal

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let with_temp f =
  let path = Filename.temp_file "fixedlen_journal" ".journal" in
  let rm p = try Sys.remove p with Sys_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      (* Recovery may have quarantined the file instead of deleting it. *)
      List.iter rm [ path; path ^ ".quarantine"; path ^ ".quarantine.reason" ])
    (fun () -> f path)

(* Retry *)

let fast = Retry.make ~attempts:3 ~base_delay:0.0 ()

let test_retry_transient_recovers () =
  let calls = ref 0 in
  let result =
    Retry.run fast ~key:7 (fun ~attempt ->
        incr calls;
        if attempt < 2 then failwith "transient";
        42)
  in
  Alcotest.(check int) "three calls" 3 !calls;
  (match result with
  | Ok v -> Alcotest.(check int) "recovered value" 42 v
  | Error _ -> Alcotest.fail "transient failure not absorbed")

let test_retry_exhaustion () =
  let calls = ref 0 in
  (match
     Retry.run fast ~key:7 (fun ~attempt:_ ->
         incr calls;
         failwith "permanent")
   with
  | Ok _ -> Alcotest.fail "permanent failure succeeded"
  | Error (Failure msg) -> Alcotest.(check string) "last exception" "permanent" msg
  | Error _ -> Alcotest.fail "wrong exception");
  Alcotest.(check int) "budget respected" 3 !calls

let test_retry_no_retry_single_attempt () =
  let calls = ref 0 in
  (match
     Retry.run Retry.no_retry ~key:0 (fun ~attempt:_ ->
         incr calls;
         failwith "boom")
   with
  | Ok _ -> Alcotest.fail "failure succeeded"
  | Error _ -> ());
  Alcotest.(check int) "exactly one attempt" 1 !calls

let test_retry_deterministic_jittered_backoff () =
  let policy =
    Retry.make ~attempts:5 ~base_delay:0.1 ~multiplier:2.0 ~jitter:0.5
      ~seed:42L ()
  in
  for attempt = 1 to 4 do
    let d = Retry.delay_before policy ~key:3 ~attempt in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "attempt %d replayable" attempt)
      d
      (Retry.delay_before policy ~key:3 ~attempt);
    let nominal = 0.1 *. (2.0 ** float_of_int (attempt - 1)) in
    if d < nominal *. 0.5 -. 1e-12 || d > nominal +. 1e-12 then
      Alcotest.failf "attempt %d delay %g outside [%g, %g]" attempt d
        (nominal *. 0.5) nominal
  done;
  (* Different keys draw different jitter (with overwhelming odds). *)
  let distinct =
    List.exists
      (fun key ->
        Retry.delay_before policy ~key ~attempt:1
        <> Retry.delay_before policy ~key:3 ~attempt:1)
      [ 4; 5; 6; 7 ]
  in
  Alcotest.(check bool) "jitter varies with key" true distinct

let test_retry_sleeps_recorded_delays () =
  let policy =
    Retry.make ~attempts:3 ~base_delay:0.25 ~multiplier:2.0 ~jitter:0.5
      ~seed:9L ()
  in
  let slept = ref [] in
  (match
     Retry.run ~sleep:(fun d -> slept := d :: !slept) policy ~key:11
       (fun ~attempt:_ -> failwith "always")
   with
  | Ok _ -> Alcotest.fail "unexpected success"
  | Error _ -> ());
  let expected =
    [
      Retry.delay_before policy ~key:11 ~attempt:1;
      Retry.delay_before policy ~key:11 ~attempt:2;
    ]
  in
  Alcotest.(check (list (float 0.0))) "backoff schedule" expected
    (List.rev !slept)

let test_retry_validation () =
  List.iter
    (fun thunk ->
      match thunk () with
      | (_ : Retry.t) -> Alcotest.fail "invalid policy accepted"
      | exception Invalid_argument _ -> ())
    [
      (fun () -> Retry.make ~attempts:0 ());
      (fun () -> Retry.make ~base_delay:(-1.0) ());
      (fun () -> Retry.make ~jitter:1.5 ());
    ]

let test_retry_attempt_numbering () =
  (* The documented convention: [run] numbers attempts from 0, a delay
     exists only {e before} attempt k >= 1, so [delay_before ~attempt:0]
     is a programming error, and the slept schedule of a failing run is
     exactly [delay_before ~attempt:1 .. attempts-1]. *)
  let policy =
    Retry.make ~attempts:4 ~base_delay:0.125 ~multiplier:2.0 ~jitter:0.5
      ~seed:77L ()
  in
  (match Retry.delay_before policy ~key:0 ~attempt:0 with
  | (_ : float) -> Alcotest.fail "delay before the first attempt accepted"
  | exception Invalid_argument _ -> ());
  let observed = ref [] and slept = ref [] in
  (match
     Retry.run
       ~sleep:(fun d -> slept := d :: !slept)
       policy ~key:13
       (fun ~attempt ->
         observed := attempt :: !observed;
         failwith "always")
   with
  | Ok _ -> Alcotest.fail "unexpected success"
  | Error _ -> ());
  Alcotest.(check (list int)) "attempts numbered from 0" [ 0; 1; 2; 3 ]
    (List.rev !observed);
  Alcotest.(check (list (float 0.0)))
    "exactly one deterministic delay before each attempt k >= 1"
    [
      Retry.delay_before policy ~key:13 ~attempt:1;
      Retry.delay_before policy ~key:13 ~attempt:2;
      Retry.delay_before policy ~key:13 ~attempt:3;
    ]
    (List.rev !slept)

let test_retry_decorrelated_jitter () =
  (* d_k = min (cap, base + u_k * (3 d_(k-1) - base)), d_0 = base: every
     delay is in [base, min (cap, 3 d_(k-1))], deterministic per
     (seed, key, attempt), and key-dependent. *)
  let base = 0.05 and cap = 1.0 in
  let policy =
    Retry.make ~attempts:8 ~base_delay:base ~decorrelated:true ~max_delay:cap
      ~seed:42L ()
  in
  let prev = ref base in
  for attempt = 1 to 7 do
    let d = Retry.delay_before policy ~key:3 ~attempt in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "attempt %d replayable" attempt)
      d
      (Retry.delay_before policy ~key:3 ~attempt);
    let hi = Float.min cap (3.0 *. !prev) in
    if d < base -. 1e-12 || d > hi +. 1e-12 then
      Alcotest.failf "attempt %d delay %g outside [%g, %g]" attempt d base hi;
    prev := d
  done;
  let distinct =
    List.exists
      (fun key ->
        Retry.delay_before policy ~key ~attempt:2
        <> Retry.delay_before policy ~key:3 ~attempt:2)
      [ 4; 5; 6; 7 ]
  in
  Alcotest.(check bool) "jitter varies with key" true distinct

let test_retry_max_delay_clamps_both_modes () =
  (* Exponential growth hits the cap quickly at multiplier 2... *)
  let exp_policy =
    Retry.make ~attempts:12 ~base_delay:0.1 ~multiplier:2.0 ~jitter:0.0
      ~max_delay:0.5 ~seed:1L ()
  in
  for attempt = 1 to 11 do
    let d = Retry.delay_before exp_policy ~key:0 ~attempt in
    if d > 0.5 +. 1e-12 then
      Alcotest.failf "exponential attempt %d delay %g exceeds cap" attempt d
  done;
  Alcotest.(check (float 1e-12))
    "deep exponential attempt sits at the cap" 0.5
    (Retry.delay_before exp_policy ~key:0 ~attempt:11);
  (* ... and decorrelated delays never pierce it either. *)
  let dec_policy =
    Retry.make ~attempts:32 ~base_delay:0.1 ~decorrelated:true ~max_delay:0.3
      ~seed:2L ()
  in
  for attempt = 1 to 31 do
    let d = Retry.delay_before dec_policy ~key:5 ~attempt in
    if d > 0.3 +. 1e-12 then
      Alcotest.failf "decorrelated attempt %d delay %g exceeds cap" attempt d
  done

let test_retry_decorrelated_run_schedule () =
  (* Attempt numbering is mode-independent: a failing run sleeps exactly
     delay_before ~attempt:1 .. attempts-1, same as exponential mode. *)
  let policy =
    Retry.make ~attempts:4 ~base_delay:0.02 ~decorrelated:true ~seed:11L ()
  in
  (match Retry.delay_before policy ~key:0 ~attempt:0 with
  | (_ : float) -> Alcotest.fail "delay before the first attempt accepted"
  | exception Invalid_argument _ -> ());
  let slept = ref [] in
  (match
     Retry.run
       ~sleep:(fun d -> slept := d :: !slept)
       policy ~key:21
       (fun ~attempt:_ -> failwith "always")
   with
  | Ok _ -> Alcotest.fail "unexpected success"
  | Error _ -> ());
  Alcotest.(check (list (float 0.0)))
    "decorrelated backoff schedule"
    [
      Retry.delay_before policy ~key:21 ~attempt:1;
      Retry.delay_before policy ~key:21 ~attempt:2;
      Retry.delay_before policy ~key:21 ~attempt:3;
    ]
    (List.rev !slept)

let test_retry_decorrelated_validation () =
  match Retry.make ~max_delay:(-0.5) () with
  | (_ : Retry.t) -> Alcotest.fail "negative max_delay accepted"
  | exception Invalid_argument _ -> ()

(* Chaos *)

let test_chaos_rate_extremes () =
  let never = Chaos.create ~failure_rate:0.0 ~seed:1L () in
  let always = Chaos.create ~failure_rate:1.0 ~seed:1L () in
  for key = 0 to 99 do
    if Chaos.should_fail never ~key ~attempt:0 then
      Alcotest.failf "rate 0 failed key %d" key;
    if not (Chaos.should_fail always ~key ~attempt:0) then
      Alcotest.failf "rate 1 spared key %d" key
  done

let test_chaos_deterministic_and_counted () =
  let ch = Chaos.create ~failure_rate:0.4 ~seed:5L () in
  let decisions key attempt = Chaos.should_fail ch ~key ~attempt in
  (* Same (key, attempt) always decides the same way; a fresh instance
     with the same seed replays the run. *)
  let ch' = Chaos.create ~failure_rate:0.4 ~seed:5L () in
  for key = 0 to 49 do
    for attempt = 0 to 2 do
      Alcotest.(check bool)
        (Printf.sprintf "replayable (%d, %d)" key attempt)
        (decisions key attempt)
        (Chaos.should_fail ch' ~key ~attempt)
    done
  done;
  let struck = ref 0 in
  for key = 0 to 49 do
    match Chaos.inject ch ~key ~attempt:0 with
    | () -> ()
    | exception Chaos.Injected _ -> incr struck
  done;
  Alcotest.(check int) "counter matches raises" !struck
    (Chaos.injected_failures ch);
  Alcotest.(check bool) "rate 0.4 struck at least once" true (!struck > 0)

let test_chaos_rate_validation () =
  (match Chaos.create ~failure_rate:1.5 ~seed:0L () with
  | (_ : Chaos.t) -> Alcotest.fail "rate > 1 accepted"
  | exception Invalid_argument _ -> ());
  (match Chaos.create ~hang_rate:(-0.1) ~seed:0L () with
  | (_ : Chaos.t) -> Alcotest.fail "negative hang rate accepted"
  | exception Invalid_argument _ -> ())

let test_chaos_delay_deterministic () =
  (* Delay decisions, like failures, are a pure function of
     (seed, key, attempt): a replayed run sleeps at exactly the same
     points, which is what makes delay-chaos drills reproducible. *)
  let make () = Chaos.create ~delay_rate:0.3 ~delay:0.5 ~seed:11L () in
  let a = make () and b = make () in
  let hits = ref 0 in
  for key = 0 to 49 do
    for attempt = 0 to 2 do
      let da = Chaos.should_delay a ~key ~attempt in
      Alcotest.(check bool)
        (Printf.sprintf "replayable (%d, %d)" key attempt)
        da
        (Chaos.should_delay b ~key ~attempt);
      if da then incr hits
    done
  done;
  Alcotest.(check bool) "rate 0.3 delayed some attempt" true (!hits > 0);
  Alcotest.(check bool) "rate 0.3 spared some attempt" true (!hits < 150);
  (* [inject] acts on exactly the decisions [should_delay] reports, with
     the configured duration, through the injected sleep. *)
  let slept = ref [] in
  let ch =
    Chaos.create ~delay_rate:0.3 ~delay:0.5
      ~sleep:(fun d -> slept := d :: !slept)
      ~seed:11L ()
  in
  for key = 0 to 49 do
    Chaos.inject ch ~key ~attempt:0
  done;
  let expected =
    List.filter (fun key -> Chaos.should_delay a ~key ~attempt:0)
      (List.init 50 Fun.id)
  in
  Alcotest.(check int) "inject slept per decision" (List.length expected)
    (List.length !slept);
  List.iter
    (fun d -> Alcotest.(check (float 0.0)) "configured duration" 0.5 d)
    !slept

let test_chaos_hang_deterministic () =
  let hang_hit = ref 0 in
  let ch =
    Chaos.create ~hang_rate:0.25 ~hang:(fun () -> incr hang_hit) ~seed:3L ()
  in
  let ch' = Chaos.create ~hang_rate:0.25 ~seed:3L () in
  let decided = ref 0 in
  for key = 0 to 79 do
    let h = Chaos.should_hang ch ~key ~attempt:0 in
    Alcotest.(check bool)
      (Printf.sprintf "replayable key %d" key)
      h
      (Chaos.should_hang ch' ~key ~attempt:0);
    if h then incr decided;
    Chaos.inject ch ~key ~attempt:0
  done;
  Alcotest.(check bool) "rate 0.25 hung something" true (!decided > 0);
  Alcotest.(check int) "inject hung per decision" !decided !hang_hit;
  (* A later attempt of the same key draws fresh: at rate 0.25 at least
     one of the 80 keys must decide differently on attempt 1. *)
  let differs =
    List.exists
      (fun key ->
        Chaos.should_hang ch ~key ~attempt:0
        <> Chaos.should_hang ch ~key ~attempt:1)
      (List.init 80 Fun.id)
  in
  Alcotest.(check bool) "attempts draw independently" true differs

(* Deadline *)

let fake_clock times =
  let remaining = ref times in
  fun () ->
    match !remaining with
    | [] -> Alcotest.fail "fake clock exhausted"
    | t :: rest ->
        remaining := rest;
        t

let test_deadline_unlimited () =
  let d = Robust.Deadline.unlimited in
  Alcotest.(check bool) "unlimited" true (Robust.Deadline.is_unlimited d);
  Alcotest.(check bool) "never expires" false (Robust.Deadline.expired d);
  Alcotest.(check bool) "infinite remaining" true
    (Robust.Deadline.remaining d = infinity);
  Robust.Deadline.check d

let test_deadline_expiry () =
  (* start reads the clock once (10); then elapsed = now - 10. *)
  let now = fake_clock [ 10.0; 11.0; 14.0; 14.9; 14.95; 15.0 ] in
  let d = Robust.Deadline.start ~now ~budget:5.0 () in
  Alcotest.(check (float 0.0)) "budget" 5.0 (Robust.Deadline.budget d);
  Alcotest.(check (float 1e-12)) "elapsed at 11" 1.0
    (Robust.Deadline.elapsed d);
  Alcotest.(check (float 1e-12)) "remaining at 14" 1.0
    (Robust.Deadline.remaining d);
  Alcotest.(check bool) "not expired at 14.9" false (Robust.Deadline.expired d);
  Robust.Deadline.check d;
  (* at 15.0 the budget is exactly consumed: <= means expired *)
  match Robust.Deadline.check d with
  | () -> Alcotest.fail "expiry not detected"
  | exception Robust.Deadline.Deadline_exceeded -> ()

let test_deadline_zero_budget () =
  let d = Robust.Deadline.start ~budget:0.0 () in
  Alcotest.(check bool) "zero budget starts expired" true
    (Robust.Deadline.expired d)

let test_deadline_validation () =
  List.iter
    (fun budget ->
      match Robust.Deadline.start ~budget () with
      | (_ : Robust.Deadline.t) -> Alcotest.fail "invalid budget accepted"
      | exception Invalid_argument _ -> ())
    [ -1.0; infinity; Float.nan ]

(* Guard *)

let test_guard_passthrough () =
  ignore (Guard.drain ());
  let v =
    Guard.protect ~context:"test" ~recover:(fun _ -> Some ("fallback", 0))
      (fun () -> 17)
  in
  Alcotest.(check int) "primary value" 17 v;
  Alcotest.(check int) "no warning" 0 (List.length (Guard.drain ()))

let test_guard_fallback_records_warning () =
  ignore (Guard.drain ());
  let v =
    Guard.protect ~context:"test ctx"
      ~recover:(function Failure _ -> Some ("closed form", 99) | _ -> None)
      (fun () -> failwith "diverged")
  in
  Alcotest.(check int) "fallback value" 99 v;
  match Guard.drain () with
  | [ w ] ->
      Alcotest.(check string) "context" "test ctx" w.Guard.context;
      Alcotest.(check bool) "detail names exception" true
        (contains w.Guard.detail "diverged");
      Alcotest.(check string) "fallback" "closed form" w.Guard.fallback
  | ws -> Alcotest.failf "expected one warning, got %d" (List.length ws)

let test_guard_unrecoverable_reraises () =
  ignore (Guard.drain ());
  (match
     Guard.protect ~context:"test"
       ~recover:(function Failure _ -> Some ("x", 0) | _ -> None)
       (fun () -> raise Exit)
   with
  | _ -> Alcotest.fail "foreign exception swallowed"
  | exception Exit -> ());
  Alcotest.(check int) "no warning for reraise" 0 (List.length (Guard.drain ()))

let test_guard_fallback_is_young_daly () =
  (* The fallback Threshold installs must be the first-order
     (Young/Daly-style) closed form, so degradation is principled, not
     arbitrary. Reproduce the same recover logic against a forced solver
     failure and compare with the closed form directly. *)
  ignore (Guard.drain ());
  let params = Fault.Params.paper ~lambda:0.001 ~c:60.0 ~d:0.0 in
  let n = 3 in
  let closed_form = Core.Threshold.threshold_first_order ~params ~n in
  let v =
    Guard.protect ~context:"test threshold"
      ~recover:(function
        | Numerics.Rootfind.No_bracket _ ->
            Some ("first-order closed form", closed_form)
        | _ -> None)
      (fun () -> raise (Numerics.Rootfind.No_bracket "forced"))
  in
  Alcotest.(check (float 0.0)) "fallback = Young/Daly closed form"
    closed_form v;
  Alcotest.(check int) "degradation recorded" 1 (List.length (Guard.drain ()))

(* Journal *)

let e1 =
  {
    Journal.c = 60.0;
    strategy = "YoungDaly";
    t = 1.0 /. 3.0;
    mean = Float.pi;
    ci95 = 0.001;
    mean_failures = 1.5;
    mean_checkpoints = 4.0;
  }

let e2 = { e1 with Journal.strategy = "SingleFinal"; mean = 0.25 }
let e3 = { e1 with Journal.t = 500.0; mean = 0.5 }

let entry_eq (a : Journal.entry) (b : Journal.entry) =
  a.Journal.c = b.Journal.c
  && a.Journal.strategy = b.Journal.strategy
  && a.Journal.t = b.Journal.t
  && a.Journal.mean = b.Journal.mean
  && a.Journal.ci95 = b.Journal.ci95
  && a.Journal.mean_failures = b.Journal.mean_failures
  && a.Journal.mean_checkpoints = b.Journal.mean_checkpoints

let test_journal_roundtrip () =
  with_temp (fun path ->
      let j = Journal.open_ ~path ~key:"deadbeef" () in
      List.iter (Journal.append j) [ e1; e2; e3 ];
      Journal.close j;
      let j = Journal.open_ ~path ~key:"deadbeef" () in
      Alcotest.(check (list string)) "clean reopen" [] (Journal.warnings j);
      Alcotest.(check int) "all entries" 3 (Journal.length j);
      List.iter2
        (fun expected got ->
          Alcotest.(check bool) "bit-exact roundtrip" true (entry_eq expected got))
        [ e1; e2; e3 ] (Journal.entries j);
      (match Journal.find j ~c:60.0 ~strategy:"SingleFinal" ~t:(1.0 /. 3.0) with
      | Some e -> Alcotest.(check (float 0.0)) "find" 0.25 e.Journal.mean
      | None -> Alcotest.fail "exact float lookup failed");
      Alcotest.(check bool) "missing point" true
        (Journal.find j ~c:60.0 ~strategy:"YoungDaly" ~t:999.0 = None);
      Journal.close j)

let test_journal_key_mismatch_resets () =
  with_temp (fun path ->
      let j = Journal.open_ ~path ~key:"aaaa" () in
      Journal.append j e1;
      Journal.close j;
      let j = Journal.open_ ~path ~key:"bbbb" () in
      Alcotest.(check int) "reset journal is empty" 0 (Journal.length j);
      Alcotest.(check bool) "warned about the reset" true
        (List.exists (fun w -> contains w "did not match") (Journal.warnings j));
      (* The foreign journal is preserved in quarantine, not destroyed. *)
      Alcotest.(check bool) "foreign data quarantined" true
        (Sys.file_exists (path ^ ".quarantine"));
      Journal.close j)

let test_journal_key_mismatch_strict_fails () =
  with_temp (fun path ->
      let j = Journal.open_ ~path ~key:"aaaa" () in
      Journal.append j e1;
      Journal.close j;
      (match Journal.open_ ~strict:true ~path ~key:"bbbb" () with
      | _ -> Alcotest.fail "strict resume accepted foreign journal"
      | exception Failure msg ->
          Alcotest.(check bool) "explains the refusal" true
            (contains msg "refusing to resume"));
      (* The mismatched file must be untouched by the failed open. *)
      let j = Journal.open_ ~path ~key:"aaaa" () in
      Alcotest.(check int) "original data intact" 1 (Journal.length j);
      Journal.close j)

let test_journal_corrupt_tail_recovery () =
  with_temp (fun path ->
      let j = Journal.open_ ~path ~key:"cafe" () in
      List.iter (Journal.append j) [ e1; e2 ];
      Journal.close j;
      (* Simulate a crash mid-append: garbage after the good records. *)
      let oc = open_out_gen [ Open_wronly; Open_append ] 0o644 path in
      output_string oc "p 60 YoungDaly garbage-without-checksum\n";
      close_out oc;
      let j = Journal.open_ ~path ~key:"cafe" () in
      Alcotest.(check bool) "warned about truncation" true
        (List.exists (fun w -> contains w "truncated") (Journal.warnings j));
      Alcotest.(check int) "good records kept" 2 (Journal.length j);
      (* The journal keeps working after recovery... *)
      Journal.append j e3;
      Journal.close j;
      (* ...and the recovered-then-extended file reloads cleanly. *)
      let j = Journal.open_ ~path ~key:"cafe" () in
      Alcotest.(check (list string)) "clean after recovery" []
        (Journal.warnings j);
      Alcotest.(check int) "three records" 3 (Journal.length j);
      Journal.close j)

let test_journal_torn_final_write () =
  with_temp (fun path ->
      let j = Journal.open_ ~path ~key:"cafe" () in
      List.iter (Journal.append j) [ e1; e2; e3 ];
      Journal.close j;
      (* Chop bytes off the last record, losing its newline. *)
      let len = (Unix.stat path).Unix.st_size in
      Unix.truncate path (len - 5);
      let j = Journal.open_ ~path ~key:"cafe" () in
      Alcotest.(check int) "torn record dropped" 2 (Journal.length j);
      Alcotest.(check bool) "warned" true (Journal.warnings j <> []);
      Journal.close j)

let test_journal_garbage_header_quarantined () =
  (* An irrecoverably corrupt journal (header not even well-formed) is
     quarantined and restarted in BOTH modes: under --resume this costs
     a recomputation of the point, never the campaign. *)
  List.iter
    (fun strict ->
      with_temp (fun path ->
          let oc = open_out path in
          output_string oc "!! this was never a journal\nrandom bytes\n";
          close_out oc;
          let j = Journal.open_ ~strict ~path ~key:"cafe" () in
          Alcotest.(check int) "restarted empty" 0 (Journal.length j);
          Alcotest.(check bool) "warned about the quarantine" true
            (List.exists
               (fun w -> contains w "quarantined")
               (Journal.warnings j));
          Alcotest.(check bool) "sick file preserved" true
            (Sys.file_exists (path ^ ".quarantine"));
          Alcotest.(check bool) "reason sidecar written" true
            (Sys.file_exists (path ^ ".quarantine.reason"));
          (* The restarted journal is fully functional. *)
          Journal.append j e1;
          Journal.close j;
          let j = Journal.open_ ~path ~key:"cafe" () in
          Alcotest.(check int) "restart holds the new record" 1
            (Journal.length j);
          Journal.close j))
    [ false; true ]

let test_journal_torn_header_quarantined () =
  with_temp (fun path ->
      (* A crash during the very first write: a header with no newline. *)
      let oc = open_out path in
      output_string oc "# fixedlen-jour";
      close_out oc;
      let j = Journal.open_ ~strict:true ~path ~key:"cafe" () in
      Alcotest.(check int) "restarted empty" 0 (Journal.length j);
      Alcotest.(check bool) "quarantined, not fatal" true
        (Sys.file_exists (path ^ ".quarantine"));
      Journal.close j)

let test_journal_not_durable_roundtrip () =
  with_temp (fun path ->
      let j = Journal.open_ ~durable:false ~path ~key:"cafe" () in
      List.iter (Journal.append j) [ e1; e2 ];
      Journal.sync j;
      Journal.append j e3;
      Journal.close j;
      let j = Journal.open_ ~path ~key:"cafe" () in
      Alcotest.(check (list string)) "clean reopen" [] (Journal.warnings j);
      Alcotest.(check int) "all records flushed at batch boundaries" 3
        (Journal.length j);
      Journal.close j)

let test_journal_unwritable_path_fails_cleanly () =
  match
    Journal.open_ ~path:"/nonexistent-dir/x.journal" ~key:"cafe" ()
  with
  | _ -> Alcotest.fail "unwritable path accepted"
  | exception Failure msg ->
      Alcotest.(check bool) "names the journal" true
        (contains msg "cannot open journal /nonexistent-dir/x.journal")

let test_journal_chaos_fs_append_repairs () =
  with_temp (fun path ->
      let j = Journal.open_ ~path ~key:"cafe" () in
      Journal.append j e1;
      Journal.close j;
      (* Every append fails after a partial write; the repair must leave
         the file exactly as it was. *)
      let fs = Robust.Chaos_fs.create ~error_rate:1.0 ~seed:2L () in
      let j = Journal.open_ ~fs ~path ~key:"cafe" () in
      Alcotest.(check (list string)) "clean open" [] (Journal.warnings j);
      (match Journal.append j e2 with
      | () -> Alcotest.fail "injected I/O error did not surface"
      | exception Unix.Unix_error ((Unix.EIO | Unix.ENOSPC), _, _) -> ());
      Journal.close j;
      Alcotest.(check bool) "chaos struck" true
        (Robust.Chaos_fs.injected_errors fs > 0);
      let j = Journal.open_ ~path ~key:"cafe" () in
      Alcotest.(check (list string)) "repaired: no recovery needed" []
        (Journal.warnings j);
      Alcotest.(check int) "first record intact" 1 (Journal.length j);
      Journal.append j e2;
      Journal.close j;
      let j = Journal.open_ ~path ~key:"cafe" () in
      Alcotest.(check int) "retried append landed" 2 (Journal.length j);
      Journal.close j)

let test_journal_validation () =
  with_temp (fun path ->
      (match Journal.open_ ~path ~key:"bad key" () with
      | _ -> Alcotest.fail "whitespace key accepted"
      | exception Invalid_argument _ -> ());
      let j = Journal.open_ ~path ~key:"ok" () in
      (match Journal.append j { e1 with Journal.strategy = "a b" } with
      | () -> Alcotest.fail "whitespace strategy accepted"
      | exception Invalid_argument _ -> ());
      Journal.close j;
      (match Journal.append j e1 with
      | () -> Alcotest.fail "append after close accepted"
      | exception Invalid_argument _ -> ()))

(* Runner-level resilience: resume and chaos-equivalence.

   A deliberately tiny spec (2 strategies x 2 grid points x 25 traces)
   keeps these end-to-end tests fast. *)

let tiny_spec =
  {
    Experiments.Spec.id = "robust-tiny";
    description = "tiny spec for resilience tests";
    lambda = 0.01;
    d = 0.0;
    cs = [ 5.0 ];
    t_max = 60.0;
    t_step = 20.0;
    strategies = [ Experiments.Spec.Young_daly; Experiments.Spec.Single_final ];
    n_traces = 25;
    seed = 7L;
    failure_dist = Experiments.Spec.Exp;
    ckpt_noise = Experiments.Spec.Deterministic;
    platform = None;
    predictor = None;
  }

let check_same_result (a : Experiments.Runner.result)
    (b : Experiments.Runner.result) =
  let module R = Experiments.Runner in
  Alcotest.(check int) "curve count" (List.length a.R.curves)
    (List.length b.R.curves);
  List.iter2
    (fun (ca : R.curve) (cb : R.curve) ->
      Alcotest.(check string) "strategy" ca.R.name cb.R.name;
      Alcotest.(check int)
        (ca.R.name ^ " point count")
        (Array.length ca.R.points) (Array.length cb.R.points);
      Array.iteri
        (fun i (pa : R.point) ->
          let pb = cb.R.points.(i) in
          let same label x y =
            Alcotest.(check (float 0.0))
              (Printf.sprintf "%s[%d] %s bit-exact" ca.R.name i label)
              x y
          in
          same "t" pa.R.t pb.R.t;
          same "mean" pa.R.mean pb.R.mean;
          same "ci95" pa.R.ci95 pb.R.ci95;
          same "failures" pa.R.mean_failures pb.R.mean_failures;
          same "checkpoints" pa.R.mean_checkpoints pb.R.mean_checkpoints)
        ca.R.points)
    a.R.curves b.R.curves

let test_chaos_with_retry_matches_fault_free () =
  Parallel.Pool.with_pool (fun pool ->
      let clean = Experiments.Runner.run ~pool tiny_spec in
      let chaos = Chaos.create ~failure_rate:0.5 ~seed:3L () in
      let retry = Retry.make ~attempts:8 ~base_delay:0.0 () in
      let chaotic = Experiments.Runner.run ~pool ~retry ~chaos tiny_spec in
      Alcotest.(check bool) "chaos actually struck" true
        (Chaos.injected_failures chaos > 0);
      check_same_result clean chaotic)

let test_chaos_fs_with_retry_matches_fault_free () =
  (* Filesystem chaos on the journal write path: injected EIO/ENOSPC
     fail some appends mid-record, the repair truncates back to the
     record boundary, and the shared retry budget re-appends — so the
     journaled sweep still matches a fault-free run bit for bit. *)
  Parallel.Pool.with_pool (fun pool ->
      with_temp (fun path ->
          let clean = Experiments.Runner.run ~pool tiny_spec in
          let key = Experiments.Spec.fingerprint tiny_spec in
          let fs = Robust.Chaos_fs.create ~error_rate:0.4 ~seed:1L () in
          let retry = Retry.make ~attempts:8 ~base_delay:0.0 () in
          (* Create the store fault-free first: header publication is a
             one-shot outside the per-point retry budget. *)
          Journal.close (Journal.open_ ~path ~key ());
          let j = Journal.open_ ~fs ~path ~key () in
          let chaotic =
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () ->
                Experiments.Runner.run ~pool ~journal:j ~retry tiny_spec)
          in
          Alcotest.(check bool) "fs chaos actually struck" true
            (Robust.Chaos_fs.injected_errors fs > 0);
          check_same_result clean chaotic;
          (* Every point survived onto disk despite the write faults. *)
          let j = Journal.open_ ~strict:true ~path ~key () in
          Alcotest.(check (list string)) "journal clean on disk" []
            (Journal.warnings j);
          Alcotest.(check int) "all points journaled" 4 (Journal.length j);
          Journal.close j))

let test_resume_skips_journaled_points () =
  Parallel.Pool.with_pool (fun pool ->
      with_temp (fun path ->
          let key = Experiments.Spec.fingerprint tiny_spec in
          let j = Journal.open_ ~path ~key () in
          let first =
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () -> Experiments.Runner.run ~pool ~journal:j tiny_spec)
          in
          Alcotest.(check int) "all points journaled" 4 (Journal.length j);
          (* Relaunch with chaos that fails EVERY computed task and no
             retries: success is only possible if every point is served
             from the journal. *)
          let j = Journal.open_ ~strict:true ~path ~key () in
          let chaos = Chaos.create ~failure_rate:1.0 ~seed:1L () in
          let resumed =
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () ->
                Experiments.Runner.run ~pool ~journal:j ~chaos tiny_spec)
          in
          check_same_result first resumed))

let test_partial_resume_completes_the_rest () =
  Parallel.Pool.with_pool (fun pool ->
      with_temp (fun path ->
          let key = Experiments.Spec.fingerprint tiny_spec in
          let full = Experiments.Runner.run ~pool tiny_spec in
          (* Journal only the YoungDaly half, as if the run died there. *)
          let j = Journal.open_ ~path ~key () in
          let module R = Experiments.Runner in
          List.iter
            (fun (curve : R.curve) ->
              if curve.R.name = "YoungDaly" then
                Array.iter
                  (fun (p : R.point) ->
                    Journal.append j
                      {
                        Journal.c = curve.R.c;
                        strategy = curve.R.name;
                        t = p.R.t;
                        mean = p.R.mean;
                        ci95 = p.R.ci95;
                        mean_failures = p.R.mean_failures;
                        mean_checkpoints = p.R.mean_checkpoints;
                      })
                  curve.R.points)
            full.R.curves;
          Journal.close j;
          let j = Journal.open_ ~strict:true ~path ~key () in
          let resumed =
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () -> Experiments.Runner.run ~pool ~journal:j tiny_spec)
          in
          check_same_result full resumed;
          (* The relaunch computed (and journaled) only the missing half. *)
          let j = Journal.open_ ~strict:true ~path ~key () in
          Alcotest.(check int) "journal completed" 4 (Journal.length j);
          Journal.close j))

let test_sweep_failure_preserves_completed_points () =
  Parallel.Pool.with_pool (fun pool ->
      with_temp (fun path ->
          let key = Experiments.Spec.fingerprint tiny_spec in
          (* Rate-0.5 chaos with no retries: some tasks fail permanently,
             the others must still complete and land in the journal. *)
          let chaos = Chaos.create ~failure_rate:0.5 ~seed:3L () in
          let j = Journal.open_ ~path ~key () in
          (match
             Fun.protect
               ~finally:(fun () -> Journal.close j)
               (fun () ->
                 Experiments.Runner.run ~pool ~journal:j ~chaos tiny_spec)
           with
          | _ -> Alcotest.fail "chaos without retry succeeded"
          | exception Experiments.Runner.Sweep_failure { completed; failed; _ }
            ->
              Alcotest.(check int) "every task accounted for" 4
                (completed + failed);
              Alcotest.(check bool) "some completed" true (completed > 0);
              Alcotest.(check bool) "some failed" true (failed > 0));
          (* Kill/restart: the relaunch on the same journal finishes the
             missing points and matches a fault-free run. *)
          let full = Experiments.Runner.run ~pool tiny_spec in
          let j = Journal.open_ ~strict:true ~path ~key () in
          Alcotest.(check bool) "partial progress persisted" true
            (Journal.length j > 0);
          let resumed =
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () -> Experiments.Runner.run ~pool ~journal:j tiny_spec)
          in
          check_same_result full resumed))

let test_process_backend_matches_domains () =
  (* The fork-based backend must be a drop-in: same curves, bit for bit
     (Marshal round-trips float bits), with journaling done by the
     supervising parent instead of the worker. *)
  Parallel.Pool.with_pool (fun pool ->
      with_temp (fun path ->
          let in_process = Experiments.Runner.run ~pool tiny_spec in
          let key = Experiments.Spec.fingerprint tiny_spec in
          let j = Journal.open_ ~path ~key () in
          let isolated =
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () ->
                Parallel.Proc_pool.with_pool ~workers:2 (fun pp ->
                    Experiments.Runner.run ~pool
                      ~backend:(Experiments.Runner.Processes pp) ~journal:j
                      tiny_spec))
          in
          check_same_result in_process isolated;
          Alcotest.(check bool) "no deadline, no partial" false
            isolated.Experiments.Runner.partial;
          (* Parent-side journaling committed every point. *)
          let j = Journal.open_ ~strict:true ~path ~key () in
          Alcotest.(check int) "journaled from the parent" 4 (Journal.length j);
          Journal.close j))

let test_process_backend_recovers_chaos_hang () =
  (* A deterministically hung grid point is SIGKILLed by the watchdog and
     re-dispatched; the re-dispatch draws fresh chaos decisions (the
     attempt number folds in the dispatch attempt), so the sweep finishes
     and matches the fault-free curves exactly. *)
  Parallel.Pool.with_pool (fun pool ->
      let clean = Experiments.Runner.run ~pool tiny_spec in
      let chaos = Chaos.create ~hang_rate:0.4 ~seed:5L () in
      let retry = Retry.make ~attempts:4 ~base_delay:0.0 () in
      let chaotic =
        Parallel.Proc_pool.with_pool ~workers:2 ~task_timeout:0.5 ~attempts:4
          (fun pp ->
            Experiments.Runner.run ~pool
              ~backend:(Experiments.Runner.Processes pp) ~retry ~chaos
              tiny_spec)
      in
      (* The real hangs happen in forked children, invisible to this
         process's counters — assert on the pure decision function
         instead: some (key, attempt=0) must hang at rate 0.4. *)
      let struck =
        List.exists
          (fun key -> Chaos.should_hang chaos ~key ~attempt:0)
          (List.init 4 Fun.id)
      in
      Alcotest.(check bool) "chaos would hang an attempt" true struck;
      check_same_result clean chaotic)

let test_deadline_partial_then_resume () =
  Parallel.Pool.with_pool (fun pool ->
      with_temp (fun path ->
          let key = Experiments.Spec.fingerprint tiny_spec in
          let full = Experiments.Runner.run ~pool tiny_spec in
          (* A clock that jumps 1s per reading against a 3.5s budget:
             early grid points fit the budget, later ones miss it. *)
          let ticks = Atomic.make 0 in
          let now () = float_of_int (Atomic.fetch_and_add ticks 1) in
          let deadline = Robust.Deadline.start ~now ~budget:3.5 () in
          let j = Journal.open_ ~path ~key () in
          let cut =
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () ->
                Experiments.Runner.run ~pool ~deadline ~journal:j tiny_spec)
          in
          let module R = Experiments.Runner in
          Alcotest.(check bool) "partial" true cut.R.partial;
          Alcotest.(check bool) "some points missed" true (cut.R.missed > 0);
          Alcotest.(check bool) "not everything missed" true (cut.R.missed < 4);
          (* Whatever completed is already durable. *)
          let j = Journal.open_ ~strict:true ~path ~key () in
          Alcotest.(check int) "completed points journaled"
            (4 - cut.R.missed) (Journal.length j);
          (* Resuming without a deadline finishes the rest and matches
             the uninterrupted run bit for bit. *)
          let resumed =
            Fun.protect
              ~finally:(fun () -> Journal.close j)
              (fun () -> Experiments.Runner.run ~pool ~journal:j tiny_spec)
          in
          Alcotest.(check bool) "resume completes" false resumed.R.partial;
          check_same_result full resumed))

let test_deadline_zero_misses_everything () =
  Parallel.Pool.with_pool (fun pool ->
      let deadline = Robust.Deadline.start ~budget:0.0 () in
      let r = Experiments.Runner.run ~pool ~deadline tiny_spec in
      let module R = Experiments.Runner in
      Alcotest.(check bool) "partial" true r.R.partial;
      Alcotest.(check int) "every point missed" 4 r.R.missed;
      Alcotest.(check int) "no curves" 0 (List.length r.R.curves))

let test_fingerprint_distinguishes_specs () =
  let fp = Experiments.Spec.fingerprint in
  let base = fp tiny_spec in
  Alcotest.(check string) "stable" base (fp tiny_spec);
  List.iter
    (fun (label, spec') ->
      if fp spec' = base then Alcotest.failf "%s shares the fingerprint" label)
    [
      ("seed", { tiny_spec with Experiments.Spec.seed = 8L });
      ("n_traces", { tiny_spec with Experiments.Spec.n_traces = 26 });
      ("lambda", { tiny_spec with Experiments.Spec.lambda = 0.02 });
      ( "strategies",
        { tiny_spec with Experiments.Spec.strategies = [ Experiments.Spec.Young_daly ] } );
    ]

let () =
  Alcotest.run "robust"
    [
      ( "retry",
        [
          Alcotest.test_case "transient failure recovers" `Quick
            test_retry_transient_recovers;
          Alcotest.test_case "budget exhaustion" `Quick test_retry_exhaustion;
          Alcotest.test_case "no_retry tries once" `Quick
            test_retry_no_retry_single_attempt;
          Alcotest.test_case "deterministic jittered backoff" `Quick
            test_retry_deterministic_jittered_backoff;
          Alcotest.test_case "sleep schedule" `Quick
            test_retry_sleeps_recorded_delays;
          Alcotest.test_case "validation" `Quick test_retry_validation;
          Alcotest.test_case "attempt numbering convention" `Quick
            test_retry_attempt_numbering;
          Alcotest.test_case "decorrelated jitter" `Quick
            test_retry_decorrelated_jitter;
          Alcotest.test_case "max_delay clamps both modes" `Quick
            test_retry_max_delay_clamps_both_modes;
          Alcotest.test_case "decorrelated run schedule" `Quick
            test_retry_decorrelated_run_schedule;
          Alcotest.test_case "decorrelated validation" `Quick
            test_retry_decorrelated_validation;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "rate extremes" `Quick test_chaos_rate_extremes;
          Alcotest.test_case "deterministic and counted" `Quick
            test_chaos_deterministic_and_counted;
          Alcotest.test_case "rate validation" `Quick test_chaos_rate_validation;
          Alcotest.test_case "delay decisions deterministic" `Quick
            test_chaos_delay_deterministic;
          Alcotest.test_case "hang decisions deterministic" `Quick
            test_chaos_hang_deterministic;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "unlimited" `Quick test_deadline_unlimited;
          Alcotest.test_case "expiry against a fake clock" `Quick
            test_deadline_expiry;
          Alcotest.test_case "zero budget starts expired" `Quick
            test_deadline_zero_budget;
          Alcotest.test_case "validation" `Quick test_deadline_validation;
        ] );
      ( "guard",
        [
          Alcotest.test_case "passthrough" `Quick test_guard_passthrough;
          Alcotest.test_case "fallback records warning" `Quick
            test_guard_fallback_records_warning;
          Alcotest.test_case "unrecoverable reraises" `Quick
            test_guard_unrecoverable_reraises;
          Alcotest.test_case "fallback is Young/Daly" `Quick
            test_guard_fallback_is_young_daly;
        ] );
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "key mismatch resets" `Quick
            test_journal_key_mismatch_resets;
          Alcotest.test_case "key mismatch strict fails" `Quick
            test_journal_key_mismatch_strict_fails;
          Alcotest.test_case "corrupt tail recovery" `Quick
            test_journal_corrupt_tail_recovery;
          Alcotest.test_case "torn final write" `Quick
            test_journal_torn_final_write;
          Alcotest.test_case "garbage header quarantined" `Quick
            test_journal_garbage_header_quarantined;
          Alcotest.test_case "torn header quarantined" `Quick
            test_journal_torn_header_quarantined;
          Alcotest.test_case "non-durable roundtrip" `Quick
            test_journal_not_durable_roundtrip;
          Alcotest.test_case "unwritable path fails cleanly" `Quick
            test_journal_unwritable_path_fails_cleanly;
          Alcotest.test_case "chaos-fs append error repairs" `Quick
            test_journal_chaos_fs_append_repairs;
          Alcotest.test_case "validation" `Quick test_journal_validation;
        ] );
      ( "runner resilience",
        [
          Alcotest.test_case "chaos + retry = fault-free" `Slow
            test_chaos_with_retry_matches_fault_free;
          Alcotest.test_case "fs chaos + retry = fault-free" `Slow
            test_chaos_fs_with_retry_matches_fault_free;
          Alcotest.test_case "resume skips journaled points" `Slow
            test_resume_skips_journaled_points;
          Alcotest.test_case "partial resume completes the rest" `Slow
            test_partial_resume_completes_the_rest;
          Alcotest.test_case "failed sweep preserves completed points" `Slow
            test_sweep_failure_preserves_completed_points;
          Alcotest.test_case "process backend matches domains" `Slow
            test_process_backend_matches_domains;
          Alcotest.test_case "process backend recovers chaos hang" `Slow
            test_process_backend_recovers_chaos_hang;
          Alcotest.test_case "deadline partial then resume" `Slow
            test_deadline_partial_then_resume;
          Alcotest.test_case "zero deadline misses everything" `Slow
            test_deadline_zero_misses_everything;
          Alcotest.test_case "fingerprint distinguishes specs" `Quick
            test_fingerprint_distinguishes_specs;
        ] );
    ]
